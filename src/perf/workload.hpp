#pragma once
// Paper-scale workload descriptions (§IV-A1): the three Rig250 meshes whose
// scaling the evaluation studies. Sizes are the paper's; derived quantities
// (interface faces) follow the annular-row geometry of vcgt::rig.
#include <cmath>
#include <string>

namespace vcgt::perf {

struct WorkloadSpec {
  std::string name;
  double total_cells = 0;   ///< mesh nodes in the paper's counting
  int nrows = 10;
  int steps_per_rev = 2000; ///< outer steps for one revolution (paper §IV-B4)
  int inner_iters = 10;     ///< pseudo-time iterations per outer step
  /// Distinct halo-exchange rounds per physical step (dats x RK stages):
  /// governs message counts in the halo model.
  int exchanges_per_step = 36;

  [[nodiscard]] double cells_per_row() const { return total_cells / nrows; }
  [[nodiscard]] int ninterfaces() const { return nrows - 1; }
  /// Faces per sliding-plane interface side: an annulus cross-section of a
  /// row scales with the 2/3 power of its cell count (rig geometry).
  [[nodiscard]] double iface_faces() const {
    return 2.0 * std::pow(cells_per_row(), 2.0 / 3.0);
  }
};

/// 1-10_430M: full 10-row machine on the coarser grid (incl. swan neck).
inline WorkloadSpec w430m() {
  return {"1-10_430M", 430e6, 10, 2000, 10, 36};
}
/// 1-2_653M: first two rows of the fine grid.
inline WorkloadSpec w653m() {
  return {"1-2_653M", 653e6, 2, 2000, 10, 36};
}
/// 1-10_4.58B: the grand-challenge full-annulus fine mesh.
inline WorkloadSpec w458b() {
  return {"1-10_4.58B", 4.58e9, 10, 2000, 10, 36};
}

}  // namespace vcgt::perf
