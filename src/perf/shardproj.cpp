#include "src/perf/shardproj.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace vcgt::perf {

using op2::gindex_t;

ShardResolution fig9_row_resolution() {
  // 250 x 160 x 11450 = 458,000,000 cells per row; ten rows give the
  // paper's 4.58B exactly. The full-annulus circumferential count carries
  // the mesh's bulk, as in the paper's fine grid.
  return {250, 160, 11450};
}

ShardProjection project_sharded_scaling(const MachineSpec& machine,
                                        const WorkloadSpec& workload,
                                        const ShardResolution& res,
                                        const std::vector<int>& node_counts,
                                        const ModelOptions& opt) {
  if (res.nx < 1 || res.nr < 1 || res.ntheta < 3) {
    throw std::invalid_argument("project_sharded_scaling: bad resolution");
  }
  ShardProjection p;
  p.res = res;
  p.ncell_row = res.ncell();
  p.ncell_total = p.ncell_row * workload.nrows;

  // Ghost rind of a contiguous gid block in the ((k*nr + j)*nx + i)
  // numbering: at most two theta-slabs (k +- 1, the +-nx*nr neighbors of the
  // block ends, wrap included), two radial lines (j +- 1) and two axial
  // cells (i +- 1). Matches rig::generate_row_shard's closure.
  const gindex_t rind_upper =
      2 * static_cast<gindex_t>(res.nx) * res.nr + 2 * res.nx + 2;

  const ScalingModel model(machine, workload);
  for (const int nodes : node_counts) {
    ShardScalePoint pt;
    pt.nodes = nodes;
    pt.ranks = nodes * machine.cores_per_node;  // two-level node x core
    // HS ranks divide evenly over the rows (node-major blocks); the model's
    // coupler ranks ride on top and are costed inside StepCost.
    const int ranks_row = std::max(1, pt.ranks / workload.nrows);

    gindex_t sum = 0;
    pt.owned_min = p.ncell_row;
    pt.owned_max = 0;
    for (int r = 0; r < ranks_row; ++r) {
      const gindex_t lo = (static_cast<gindex_t>(r) * p.ncell_row + ranks_row - 1) / ranks_row;
      const gindex_t hi =
          (static_cast<gindex_t>(r + 1) * p.ncell_row + ranks_row - 1) / ranks_row;
      const gindex_t owned = hi - lo;
      sum += owned;
      pt.owned_min = std::min(pt.owned_min, owned);
      pt.owned_max = std::max(pt.owned_max, owned);
    }
    if (sum != p.ncell_row) {
      throw std::logic_error("project_sharded_scaling: owned blocks do not tile the row");
    }
    pt.window_max = pt.owned_max + rind_upper;
    // The cell window and the face closure (< 3 faces per window cell plus
    // one rind slab) must both narrow to index_t on every rank.
    pt.fits_index_t = pt.window_max <= op2::kMaxMonolithicSetSize &&
                      3 * pt.window_max <= op2::kMaxMonolithicSetSize;
    pt.cost = model.step_cost(nodes, opt);
    p.points.push_back(pt);
  }
  return p;
}

std::string format_shard_table(const ShardProjection& p) {
  std::ostringstream os;
  os << "sharded-setup projection: " << p.ncell_total << " cells ("
     << p.res.nx << "x" << p.res.nr << "x" << p.res.ntheta << " per row)\n";
  os << "  nodes   ranks   owned/rank(max)   window(max)   fits32   s/step   coupling\n";
  for (const auto& pt : p.points) {
    os << "  " << pt.nodes << "\t" << pt.ranks << "\t" << pt.owned_max << "\t"
       << pt.window_max << "\t" << (pt.fits_index_t ? "yes" : "NO") << "\t"
       << pt.cost.total() << "\t" << pt.cost.coupling_fraction() * 100.0 << "%\n";
  }
  return os.str();
}

}  // namespace vcgt::perf
