#pragma once
// Sharded-setup scaling projection for the grand-challenge mesh (fig. 9,
// DESIGN.md §13). The analytic counterpart of rig::generate_row_shard +
// op2::partition_sharded: given an exact 64-bit annulus resolution and a
// machine, it computes every modeled rank's owned block and ghost-rind
// window with the same block_owner() arithmetic the runtime uses, checks
// that each per-rank window fits op2::index_t (the whole point of the
// billion-node path: only *global* counts need 64 bits), and attaches the
// ScalingModel step cost at each node count.
//
// Rank decomposition is two-level node x core, as in "Towards Exascale
// Computation for Turbomachinery Flows" (PAPERS.md): ranks = nodes *
// cores_per_node, with the block numbering laid out node-major so a node's
// ranks own contiguous gid blocks.
#include <vector>

#include "src/op2/types.hpp"
#include "src/perf/costmodel.hpp"
#include "src/perf/machine.hpp"
#include "src/perf/workload.hpp"

namespace vcgt::perf {

/// Exact integer resolution of a modeled annulus row (the WorkloadSpec
/// carries only an approximate double cell count; the overflow analysis
/// needs exact 64-bit arithmetic).
struct ShardResolution {
  int nx = 0, nr = 0, ntheta = 0;
  [[nodiscard]] op2::gindex_t ncell() const {
    return static_cast<op2::gindex_t>(nx) * nr * ntheta;
  }
  [[nodiscard]] op2::gindex_t nface() const {
    return static_cast<op2::gindex_t>(ntheta) * nr * (nx - 1) +
           static_cast<op2::gindex_t>(ntheta) * (nr - 1) * nx +
           static_cast<op2::gindex_t>(ntheta) * nr * nx;
  }
};

/// Per-row resolution of the fig. 9 1-10_4.58B configuration: 4.58B cells
/// over 10 rows, full annulus. 64-bit global counts by construction.
[[nodiscard]] ShardResolution fig9_row_resolution();

/// One node count of the projected scaling table.
struct ShardScalePoint {
  int nodes = 0;
  int ranks = 0;  ///< nodes * cores_per_node (two-level decomposition)
  op2::gindex_t owned_min = 0;  ///< smallest per-rank owned block
  op2::gindex_t owned_max = 0;  ///< largest per-rank owned block
  /// Upper bound on a rank's shard window (owned + ghost rind): the rind of
  /// a contiguous gid block is at most two k-slabs + two j-lines + two
  /// i-cells of the lattice.
  op2::gindex_t window_max = 0;
  bool fits_index_t = false;  ///< window_max <= op2::kMaxMonolithicSetSize
  StepCost cost;              ///< modeled per-step cost at this node count
};

struct ShardProjection {
  ShardResolution res;        ///< per-row resolution
  op2::gindex_t ncell_row = 0;
  op2::gindex_t ncell_total = 0;  ///< all rows
  std::vector<ShardScalePoint> points;
};

/// Projects the sharded setup of `workload` (per-row resolution `res`,
/// `workload.nrows` rows) over the given node counts on `machine`. Every
/// arithmetic step is 64-bit; per-rank owned blocks are exact (they sum to
/// ncell_row over each row's ranks), the rind is an analytic upper bound.
/// Ranks per row = nodes * cores_per_node / nrows (HS ranks; the model's
/// coupler ranks are accounted inside StepCost).
[[nodiscard]] ShardProjection project_sharded_scaling(
    const MachineSpec& machine, const WorkloadSpec& workload, const ShardResolution& res,
    const std::vector<int>& node_counts, const ModelOptions& opt = {});

/// Formats the projection as the scaling table the fig. 9 bench prints
/// (one row per node count).
[[nodiscard]] std::string format_shard_table(const ShardProjection& p);

}  // namespace vcgt::perf
