#include "src/perf/costmodel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vcgt::perf {

namespace {

constexpr double kPayloadBytes = 6 * 8;  ///< 5 conservative + SA, doubles

/// Donor candidates tested per locate() call.
double candidates_per_locate(jm76::SearchKind kind, double donor_faces) {
  if (kind == jm76::SearchKind::BruteForce) return donor_faces;
  // ADT: ~c * log2(n) nodes visited per containment query.
  return 6.0 * std::log2(std::max(2.0, donor_faces)) + 12.0;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

MeasuredPhases attribute_phases(const std::vector<trace::SummaryRow>& rows) {
  MeasuredPhases p;
  for (const auto& r : rows) {
    // A row whose clock misbehaved (negative span, overflowed aggregation)
    // carries NaN/Inf; one such row must not poison every phase total.
    if (!std::isfinite(r.total_seconds)) continue;
    if (starts_with(r.name, "mpi:")) {
      p.mpi_wait += r.total_seconds;
    } else if (starts_with(r.name, "halo:")) {
      p.halo += r.total_seconds;
    } else if (starts_with(r.name, "coupler:") || r.name == "cu:recv_donors") {
      p.coupler_wait += r.total_seconds;
    } else if (r.name == "cu:search_interp") {
      p.search += r.total_seconds;
    } else if (r.name == "hs:step" || r.name == "cu:step" ||
               starts_with(r.name, "hydra:")) {
      // Container spans: the leaf spans inside them carry the time.
    } else {
      // A par_loop span ("row0:rk_update") — it brackets the halo exchange
      // too; the halo total is pulled back out below.
      p.compute += r.total_seconds;
    }
  }
  p.compute = std::max(0.0, p.compute - p.halo);
  return p;
}

ScalingModel::ScalingModel(MachineSpec machine, WorkloadSpec workload,
                           double reference_node_rate)
    : machine_(std::move(machine)), workload_(std::move(workload)),
      reference_node_rate_(reference_node_rate) {
  if (machine_.is_gpu() && reference_node_rate_ <= 0.0) {
    // Default GPU reference: an ARCHER2 node.
    const auto ref = archer2();
    reference_node_rate_ = ref.cores_per_node / ref.cell_step_seconds;
  }
}

StepCost ScalingModel::step_cost(int nodes, const ModelOptions& opt) const {
  if (nodes < 1) throw std::invalid_argument("ScalingModel: nodes must be >= 1");
  StepCost cost;
  const WorkloadSpec& w = workload_;
  const MachineSpec& m = machine_;

  const int ifaces = w.ninterfaces();
  const double F = w.iface_faces();
  const int K = opt.monolithic ? 0 : opt.cus_per_interface;

  // Rank accounting. On CPU nodes the CUs consume cores that would
  // otherwise run HS work (paper §IV-A5: "CUs can only be increased at the
  // cost of reducing HS processes"); on GPU nodes CUs run on otherwise-idle
  // host cores.
  const double ranks_total = static_cast<double>(nodes) * m.cores_per_node;
  double hs_ranks = ranks_total;
  if (!m.is_gpu() && !opt.monolithic) {
    hs_ranks = std::max(1.0, ranks_total - static_cast<double>(K) * ifaces);
  }
  if (m.is_gpu()) hs_ranks = static_cast<double>(nodes) * m.gpus_per_node;

  // --- compute ---------------------------------------------------------------
  const double node_rate = m.node_cellsteps_per_s(reference_node_rate_);
  const double machine_rate = m.is_gpu()
                                  ? node_rate * nodes
                                  : node_rate * nodes * (hs_ranks / ranks_total);
  cost.compute = w.total_cells / machine_rate;

  // --- halo exchange -----------------------------------------------------------
  const double cells_per_rank = w.total_cells / hs_ranks;
  const double halo_faces = 6.0 * std::pow(cells_per_rank, 2.0 / 3.0);
  const int neighbors = 6;
  // Ranks on a node share the NIC.
  const double ranks_per_node = m.is_gpu() ? m.gpus_per_node : m.cores_per_node;
  const double bw_per_rank = m.net_bandwidth_Bps / ranks_per_node;
  double bytes_per_exchange = halo_faces * 5 * 8;  // one 5-component dat
  if (opt.partial_halos) {
    // The share of halo data that boundary-set loops do not need grows as
    // subdomains shrink (paper: 5-7% at low node counts, large at scale).
    const double ph = std::min(
        0.55, 0.07 * (1.0 + std::log2(std::max(1.0, hs_ranks / 2048.0))));
    bytes_per_exchange *= 1.0 - ph;
  }
  double msgs_per_exchange = neighbors;
  double msg_cost = m.net_latency_s + m.device_copy_latency_s;
  // Host-side strided gather/scatter of each message's payload; grouping
  // amortizes it into one sweep per neighbor at memcpy speed.
  double stage_Bps = m.is_gpu() ? 1.5e9 : 8.0e9;
  if (opt.grouped_halos) {
    // One packed message per neighbor instead of one per dat: fewer
    // messages and (on GPUs) fewer device copies, at a small pack cost.
    msgs_per_exchange = neighbors / 3.0;
    stage_Bps = m.is_gpu() ? 8.0e9 : 6.0e9;  // pack cost slightly hurts CPU
  }
  cost.halo = w.exchanges_per_step *
              (msgs_per_exchange * msg_cost + bytes_per_exchange / bw_per_rank +
               bytes_per_exchange / stage_Bps);

  // Calibrated per-row synchronization/interpolation floor (constant in
  // absolute seconds per step per blade row on a given machine; half is
  // booked as coupling, half as halo/imbalance — see EXPERIMENTS.md).
  const double floor = m.coupler_row_floor_s * w.nrows;
  cost.halo += 0.5 * floor;

  // --- sliding planes ----------------------------------------------------------
  const double cand = candidates_per_locate(opt.search, F);
  if (opt.monolithic) {
    // Global assembly of each interface side every step, then an
    // un-overlapped search on the "trapped" ranks whose subdomains touch
    // the plane (roughly ranks_per_row^(2/3) of them). The 0.4 factor on
    // the scan reflects the cache-friendly sequential sweep of the
    // production brute-force routine (calibrated to Table IV's 8-node
    // monolithic rows).
    const double ranks_per_row = std::max(1.0, hs_ranks / w.nrows);
    const double trapped = std::max(1.0, std::pow(ranks_per_row, 2.0 / 3.0));
    const double assembly =
        2.0 * ifaces *
        (F * kPayloadBytes * std::log2(std::max(2.0, hs_ranks)) / m.net_bandwidth_Bps +
         hs_ranks * m.net_latency_s);
    const double search =
        0.4 * 2.0 * ifaces * (F / trapped) * cand * m.search_candidate_s;
    cost.sliding_inline = assembly + search + 0.5 * floor;
    return cost;
  }
  cost.coupler_wait += 0.5 * floor;

  // Coupled: CU work per step (both directions of one interface).
  const double targets_per_cu = 2.0 * F / K;
  const double search_s = targets_per_cu * cand * m.search_candidate_s;
  // Each CU receives the full donor sides; each HS interface rank sends its
  // share to every CU of the interface (the K-fold duplication that turns
  // the Table II curve back up at large K).
  const double hs_ranks_per_row = std::max(1.0, hs_ranks / w.nrows);
  const int msgs_per_payload = opt.staged_gather ? 1 : 7;
  const double recv_msgs = 2.0 * hs_ranks_per_row * msgs_per_payload;
  const double recv_bytes = 2.0 * F * kPayloadBytes;
  const double cu_step = recv_msgs * (m.net_latency_s + m.device_copy_latency_s) +
                         recv_bytes / m.net_bandwidth_Bps + search_s;
  // HS-side transfer cost: send its interface share to K CUs + receive the
  // interpolated ghosts back.
  const double hs_iface_faces = 2.0 * F / hs_ranks_per_row;
  // Without the staged gather the HS stages each payload component
  // separately (slow strided copies on GPU nodes).
  const double hs_stage_Bps = (m.is_gpu() && !opt.staged_gather) ? 1.0e9 : 8.0e9;
  const double hs_transfer =
      K * msgs_per_payload * (m.net_latency_s + m.device_copy_latency_s) +
      K * hs_iface_faces * kPayloadBytes / m.net_bandwidth_Bps +
      hs_iface_faces * kPayloadBytes / m.net_bandwidth_Bps +
      K * hs_iface_faces * kPayloadBytes / hs_stage_Bps;
  if (opt.pipelined) {
    // The CU search overlaps the CFD inner iterations; the HS only waits
    // for whatever the CU could not hide, plus its own transfer cost.
    const double hidden = cost.compute + cost.halo;
    cost.coupler_wait += std::max(0.0, cu_step - hidden) + hs_transfer;
  } else {
    cost.coupler_wait += cu_step + hs_transfer;
  }
  return cost;
}

double ScalingModel::hours_per_rev(int nodes, const ModelOptions& opt) const {
  return step_cost(nodes, opt).total() * workload_.steps_per_rev / 3600.0;
}

double ScalingModel::efficiency(int base_nodes, int nodes, const ModelOptions& opt) const {
  const double t0 = step_cost(base_nodes, opt).total();
  const double t1 = step_cost(nodes, opt).total();
  return (t0 * base_nodes) / (t1 * nodes);
}

double ScalingModel::power_equivalent_nodes(int nodes, const MachineSpec& ref) const {
  return nodes * machine_.node_power_w / ref.node_power_w;
}

int ScalingModel::nodes_for_target_hours(double target_hours, const ModelOptions& opt,
                                         int max_nodes) const {
  if (target_hours <= 0) throw std::invalid_argument("nodes_for_target_hours: target <= 0");
  int lo = std::max(1, min_gpu_nodes());
  if (hours_per_rev(lo, opt) <= target_hours) return lo;
  // hours(n) is monotone decreasing until overheads flatten it; find an
  // upper bracket by doubling, then bisect.
  int hi = lo;
  while (hi < max_nodes) {
    hi = std::min(max_nodes, hi * 2);
    if (hours_per_rev(hi, opt) <= target_hours) break;
    // Non-improving growth means the target is unreachable.
    if (hi == max_nodes) return 0;
  }
  if (hours_per_rev(hi, opt) > target_hours) return 0;
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    (hours_per_rev(mid, opt) <= target_hours ? hi : lo) = mid;
  }
  return hi;
}

double ScalingModel::energy_mwh_per_rev(int nodes, const ModelOptions& opt) const {
  return hours_per_rev(nodes, opt) * nodes * machine_.node_power_w / 1e6;
}

int ScalingModel::min_gpu_nodes(double bytes_per_cell) const {
  if (!machine_.is_gpu()) return 0;
  const double node_mem = machine_.gpu_mem_gb * 1e9 * machine_.gpus_per_node;
  return static_cast<int>(std::ceil(workload_.total_cells * bytes_per_cell / node_mem));
}

}  // namespace vcgt::perf
