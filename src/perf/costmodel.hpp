#pragma once
// Analytic scaling model of the coupled and monolithic Rig250 executions.
//
// The paper runs on 65k cores; this repository runs on one machine. The
// bench harness therefore reports two layers for every table/figure:
//   (1) measured numbers from the real mini-scale runs (CoupledRig /
//       MonolithicRig over minimpi), which validate the *mechanisms*; and
//   (2) this model evaluated at the paper's node counts, which projects the
//       mechanisms to the published scale (the paper itself projects several
//       Table IV rows the same way — rows marked "(P)").
//
// Model structure per physical time step on N nodes:
//   T_comp  = cells / (node_rate * N_hs)              (embarrassingly ||)
//   T_halo  = msgs*(latency [+ device copy]) + bytes/bandwidth, with
//             halo bytes ~ (cells/rank)^(2/3) surface scaling; the PH/GH/GG
//             toggles modify bytes, message counts and device-copy terms as
//             in op2/jm76 (Table III);
//   T_cpl   = coupler wait: transfer volume + donor search per CU, minus
//             the overlapped CFD time when pipelined (Figs 7-9, Table II);
//   T_slide = monolithic-only: global donor assembly + un-overlapped search
//             concentrated on the ranks holding interface faces ("trapped",
//             §II-C) — the term that wrecks monolithic scaling (Table IV).
#include <vector>

#include "src/jm76/search.hpp"
#include "src/perf/machine.hpp"
#include "src/perf/workload.hpp"
#include "src/util/trace.hpp"

namespace vcgt::perf {

struct ModelOptions {
  bool monolithic = false;
  jm76::SearchKind search = jm76::SearchKind::Adt;
  int cus_per_interface = 30;  ///< paper's CPU sweet spot (§IV-A5)
  bool pipelined = true;
  // Table III communication-optimization toggles.
  bool partial_halos = true;
  bool grouped_halos = true;   ///< used on GPU; costs slightly on CPU
  bool staged_gather = true;   ///< GPU-side gather for coupler payloads
};

struct StepCost {
  double compute = 0;        ///< CFD residual + update work
  double halo = 0;           ///< op2 halo exchange
  double coupler_wait = 0;   ///< blocked on the sliding-plane transfer
  double sliding_inline = 0; ///< monolithic in-step search + assembly
  [[nodiscard]] double total() const {
    return compute + halo + coupler_wait + sliding_inline;
  }
  /// Fraction of the step spent waiting on coupling (paper quotes 5-20%).
  [[nodiscard]] double coupling_fraction() const {
    const double t = total();
    return t > 0 ? (coupler_wait + sliding_inline) / t : 0.0;
  }
};

/// Measured per-phase attribution of a traced run — the runtime counterpart
/// of the analytic StepCost, built from trace::summary() rows so the bench
/// harness can print "measured split" next to "modelled split".
struct MeasuredPhases {
  double compute = 0;       ///< par_loop kernel time (nested halo subtracted)
  double halo = 0;          ///< "halo:pack_send" + "halo:wait"
  double coupler_wait = 0;  ///< "coupler:*" + "cu:recv_donors"
  double search = 0;        ///< "cu:search_interp"
  /// Mailbox-blocked time ("mpi:*"). Diagnostic only: those waits happen
  /// *inside* halo/coupler spans, so adding them to total() would double
  /// count.
  double mpi_wait = 0;
  [[nodiscard]] double total() const {
    return compute + halo + coupler_wait + search;
  }
  [[nodiscard]] double coupling_fraction() const {
    const double t = total();
    return t > 0 ? coupler_wait / t : 0.0;
  }
};

/// Classifies trace summary rows by the naming conventions in
/// src/util/trace.hpp. Container spans ("hs:step", "cu:step",
/// "hydra:inner_iter", "hydra:rk_stage") are skipped — their time is already
/// covered by the leaf spans they enclose. par_loop spans include their halo
/// exchange, so the halo total is subtracted from compute (clamped at 0).
[[nodiscard]] MeasuredPhases attribute_phases(const std::vector<trace::SummaryRow>& rows);

class ScalingModel {
 public:
  ScalingModel(MachineSpec machine, WorkloadSpec workload,
               double reference_node_rate = 0.0);

  /// Per-step cost on `nodes` nodes with the given execution options.
  [[nodiscard]] StepCost step_cost(int nodes, const ModelOptions& opt) const;

  /// Hours for one full revolution (steps_per_rev outer steps).
  [[nodiscard]] double hours_per_rev(int nodes, const ModelOptions& opt) const;

  /// Parallel efficiency of `nodes` relative to `base_nodes`.
  [[nodiscard]] double efficiency(int base_nodes, int nodes, const ModelOptions& opt) const;

  /// ARCHER2-node-equivalents of `nodes` of this machine at equal power.
  [[nodiscard]] double power_equivalent_nodes(int nodes, const MachineSpec& ref) const;

  /// Minimum GPU-node count whose aggregate device memory fits the
  /// workload (paper: 4.58B needs >= 122 Cirrus nodes; 0 for CPU machines).
  [[nodiscard]] int min_gpu_nodes(double bytes_per_cell = 1700.0) const;

  /// Smallest node count that achieves the target time-to-solution (the
  /// planning question virtual certification asks: "1 revolution overnight
  /// needs how many nodes?"). Returns 0 when unreachable within max_nodes
  /// (overheads eventually flatten the speedup). Respects the GPU memory
  /// floor.
  [[nodiscard]] int nodes_for_target_hours(double target_hours, const ModelOptions& opt,
                                           int max_nodes = 16384) const;

  /// Electrical energy for one revolution [MWh] from the machine's measured
  /// node power (paper §IV-A4) — the cost axis of the CPU-vs-GPU trade.
  [[nodiscard]] double energy_mwh_per_rev(int nodes, const ModelOptions& opt) const;

  [[nodiscard]] const MachineSpec& machine() const { return machine_; }
  [[nodiscard]] const WorkloadSpec& workload() const { return workload_; }

 private:
  MachineSpec machine_;
  WorkloadSpec workload_;
  double reference_node_rate_;  ///< ARCHER2 node cell-step rate for GPU scaling
};

}  // namespace vcgt::perf
