#include "src/perf/machine.hpp"

namespace vcgt::perf {

MachineSpec archer2() {
  MachineSpec m;
  m.name = "ARCHER2";
  m.cores_per_node = 128;
  m.gpus_per_node = 0;
  m.node_power_w = 660.0;
  m.cell_step_seconds = 1.05e-4;
  m.net_latency_s = 2.0e-6;
  m.net_bandwidth_Bps = 12.5e9;
  m.device_copy_latency_s = 0.0;
  m.search_candidate_s = 8.0e-9;
  m.coupler_row_floor_s = 0.25;
  return m;
}

MachineSpec cirrus() {
  MachineSpec m;
  m.name = "Cirrus";
  m.cores_per_node = 40;  // 2x Cascade Lake hosts (CUs run here)
  m.gpus_per_node = 4;
  m.node_power_w = 900.0;  // 4x182W GPU + ~172W host (paper §IV-A4)
  m.cell_step_seconds = 2.0e-4;  // host core (CU work only)
  m.gpu_node_speedup = 5.0;      // node-to-node vs ARCHER2 (paper: 4.5-5.4x)
  m.net_latency_s = 2.5e-6;
  m.net_bandwidth_Bps = 6.0e9;   // FDR-class per node
  m.device_copy_latency_s = 12.0e-6;  // per-message PCIe staging + launch
  m.search_candidate_s = 8.0e-9;
  m.coupler_row_floor_s = 0.125;
  m.gpu_mem_gb = 16.0;
  return m;
}

MachineSpec haswell_production() {
  MachineSpec m;
  m.name = "Haswell-production";
  m.cores_per_node = 24;
  m.gpus_per_node = 0;
  m.node_power_w = 400.0;
  m.cell_step_seconds = 3.2e-4;  // prior-generation core (paper: 2-3x slower)
  m.net_latency_s = 3.0e-6;
  m.net_bandwidth_Bps = 6.0e9;
  m.search_candidate_s = 12.0e-9;
  m.coupler_row_floor_s = 0.6;
  return m;
}

MachineSpec archer1() {
  MachineSpec m;
  m.name = "ARCHER1";
  m.cores_per_node = 24;  // 2x 12-core E5-2697v2
  m.gpus_per_node = 0;
  m.node_power_w = 450.0;
  m.cell_step_seconds = 3.0e-4;
  m.net_latency_s = 2.5e-6;
  m.net_bandwidth_Bps = 8.0e9;
  m.search_candidate_s = 11.0e-9;
  m.coupler_row_floor_s = 0.5;
  return m;
}

}  // namespace vcgt::perf
