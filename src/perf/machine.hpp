#pragma once
// Machine models for the systems in the paper's evaluation (Table I and
// §IV-A4): ARCHER2 (HPE Cray EX, 2x AMD EPYC 7742 per node, Slingshot),
// Cirrus (SGI/HPE 8600, 4x V100 + 2x Cascade Lake per node), the production
// Haswell cluster and ARCHER1 (Ivy Bridge) used for the monolithic
// baselines. Parameters are anchored to the paper's published figures
// (node power, core counts, achieved time-per-step at the calibration
// points) — see EXPERIMENTS.md for the anchoring table.
#include <string>

namespace vcgt::perf {

struct MachineSpec {
  std::string name;
  int cores_per_node = 128;     ///< CPU cores (or host cores on GPU nodes)
  int gpus_per_node = 0;
  double node_power_w = 660.0;  ///< measured node power (paper §IV-A4)

  /// Seconds one CPU core needs for one cell for one *physical* step (all
  /// inner RK iterations included). Anchored so that the model reproduces
  /// the paper's achieved 512-node / 4.58B / 9.9 s-per-step point at its
  /// reported parallel efficiency.
  double cell_step_seconds = 1.25e-4;
  /// Node-level speedup of one GPU node over one ARCHER2 CPU node for the
  /// CFD kernels (paper: 4.5-5.4x node-to-node).
  double gpu_node_speedup = 0.0;

  // Interconnect (per rank-pair message).
  double net_latency_s = 2.0e-6;
  double net_bandwidth_Bps = 12.5e9;  ///< ~100 Gb/s effective per direction

  /// Extra per-message host<->device staging cost on GPU nodes (what the
  /// grouped-halo/staged-gather optimizations amortize; ~PCIe + launch).
  double device_copy_latency_s = 0.0;

  /// Seconds per donor-candidate test in the coupler search (one core).
  double search_candidate_s = 8.0e-9;

  /// Calibrated per-row, per-step synchronization/interpolation floor of the
  /// coupled execution [s]: the paper's coupling overhead is roughly
  /// constant in absolute seconds per blade row across its problem sizes
  /// (derivation in EXPERIMENTS.md); half is attributed to coupler wait,
  /// half to halo/imbalance.
  double coupler_row_floor_s = 0.25;

  /// GPU global memory per device [GB] (gates which workloads fit; the
  /// paper could not run 4.58B on fewer than 122 Cirrus nodes).
  double gpu_mem_gb = 0.0;

  [[nodiscard]] bool is_gpu() const { return gpus_per_node > 0; }
  /// Node-level cell throughput in cell-steps per second.
  [[nodiscard]] double node_cellsteps_per_s(double reference_node_rate) const {
    if (is_gpu()) return reference_node_rate * gpu_node_speedup;
    return static_cast<double>(cores_per_node) / cell_step_seconds;
  }
};

/// ARCHER2: 2x64-core EPYC 7742, 660 W/node, Slingshot 2x100 Gb/s.
MachineSpec archer2();
/// Cirrus GPU nodes: 4x V100 (16 GB) + 2x20-core Cascade Lake, ~900 W/node.
MachineSpec cirrus();
/// Production Intel Haswell cluster (monolithic baseline, ~2000 s/step on
/// 8000 cores for the 4.58B problem per §IV-B5).
MachineSpec haswell_production();
/// ARCHER1: Cray XC30, 2x12-core Ivy Bridge per node.
MachineSpec archer1();

}  // namespace vcgt::perf
