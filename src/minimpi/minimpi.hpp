#pragma once
// minimpi: an in-process message-passing substrate with MPI semantics.
//
// The paper's coupled solver is an SPMD MPI application: Hydra sessions and
// JM76 coupler units are groups of ranks carved out of MPI_COMM_WORLD with
// sub-communicators. This repository has no cluster, so ranks are threads
// inside one process, each with a selective-receive mailbox. The public API
// deliberately mirrors the MPI calls the paper's software stack uses
// (send/recv, isend/irecv, barrier, bcast, reduce, allreduce, gather,
// allgather(v), alltoallv, comm split), so all distributed code in this repo
// reads exactly like the MPI code it stands in for.
//
// Every communicator meters traffic (message count, payload bytes, per-rank
// receive-wait seconds). The vcgt::perf machine models consume these meters
// to project wall-clock times on ARCHER2/Cirrus-like clusters; see DESIGN.md.
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/minimpi/buffer.hpp"

namespace vcgt::minimpi {

/// Wildcard source for recv, like MPI_ANY_SOURCE.
inline constexpr int kAnySource = -1;

/// Thrown in surviving ranks when a peer rank exits with an exception, so a
/// failing test does not deadlock the whole world. Once a world is poisoned
/// every blocked or subsequently issued recv/barrier/Request::wait throws.
class WorldAborted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown on the dying rank when a FaultPlan schedules a KillRank fault
/// (fail-stop rank death). Peers observe the generic WorldAborted.
class RankKilled : public WorldAborted {
 public:
  using WorldAborted::WorldAborted;
};

/// Thrown by send when transient delivery failures exhaust the retry budget
/// (WorldOptions::max_send_attempts).
class TransientSendError : public std::runtime_error {
 public:
  TransientSendError(std::string what, int rank, int dst, int tag, int attempts)
      : std::runtime_error(std::move(what)), rank(rank), dst(dst), tag(tag),
        attempts(attempts) {}
  int rank, dst, tag, attempts;
};

/// Thrown by recv when WorldOptions::recv_timeout expires (all retry rounds
/// included) with no matching message: the structured alternative to hanging.
class RecvTimeout : public std::runtime_error {
 public:
  RecvTimeout(std::string what, int rank, int src, int tag, double waited_seconds)
      : std::runtime_error(std::move(what)), rank(rank), src(src), tag(tag),
        waited_seconds(waited_seconds) {}
  int rank, src, tag;
  double waited_seconds;
};

/// Aggregated communication counters for one communicator.
struct TrafficStats {
  std::uint64_t messages = 0;      ///< total point-to-point messages sent
  std::uint64_t bytes = 0;         ///< total payload bytes sent
  std::uint64_t send_retries = 0;  ///< delivery attempts repeated after transient faults
  double max_rank_wait = 0.0;      ///< max over ranks of blocked-receive time
  double total_rank_wait = 0.0;    ///< sum over ranks of blocked-receive time
  std::vector<std::uint64_t> rank_messages;  ///< messages sent per rank
  std::vector<std::uint64_t> rank_bytes;     ///< bytes sent per rank
  std::vector<std::uint64_t> rank_retries;   ///< transient-fault retries per rank
  std::vector<double> rank_wait;             ///< wait seconds per rank
};

/// Structured stall diagnosis produced by the World progress watchdog: which
/// ranks are blocked, on what, for how long, plus traffic counters at stall
/// time — the information a silent deadlock destroys.
struct StallReport {
  struct BlockedOp {
    int rank = -1;
    std::string op;        ///< "recv" or "barrier"
    int peer = kAnySource; ///< awaited source rank (recv)
    int tag = 0;
    double seconds = 0.0;  ///< how long the rank has been blocked
    std::uint64_t op_index = 0;  ///< completed comm ops on that rank
  };
  double stall_timeout = 0.0;
  std::vector<BlockedOp> blocked;
  TrafficStats traffic;  ///< world traffic counters at stall time

  [[nodiscard]] std::string to_string() const;
};

/// Thrown from World::run when the progress watchdog detects that no rank is
/// making communication progress while at least one is blocked beyond
/// WorldOptions::stall_timeout.
class WorldStalled : public std::runtime_error {
 public:
  explicit WorldStalled(StallReport report);
  [[nodiscard]] const StallReport& report() const { return report_; }

 private:
  StallReport report_;
};

class FaultPlan;

/// Robustness knobs for a World (all off by default, matching the previous
/// happy-path behaviour). Also configurable from the environment — see
/// World::run.
struct WorldOptions {
  /// Deterministic chaos layer; null = no injection.
  std::shared_ptr<FaultPlan> fault;
  /// Bounded receive: a blocked recv gives up after this many seconds
  /// (per retry round). 0 = wait forever.
  double recv_timeout = 0.0;
  /// Extra timeout rounds before recv surfaces RecvTimeout (each round
  /// waits recv_timeout again and logs a warning).
  int recv_retries = 0;
  /// Progress watchdog: convert a silent deadlock into WorldStalled once a
  /// rank has been blocked this long with no world-wide progress. 0 = off.
  double stall_timeout = 0.0;
  /// Delivery attempts per send before TransientSendError (>= 1).
  int max_send_attempts = 5;
  /// Sleep between delivery attempts after a transient send fault.
  double send_backoff = 50e-6;
};

namespace detail {

struct Message {
  int src = 0;
  int tag = 0;
  /// Per-source sequence number (monotone over the sender's sends on this
  /// communicator). Restores FIFO-per-(src, tag) under reordering and makes
  /// retransmissions/duplicates idempotent: a retry reuses its seq.
  std::uint64_t seq = 0;
  /// Owned payload slab (move-only): pooled for send_owned traffic, adopted
  /// for the legacy byte-vector API. Messages therefore never copy their
  /// payload inside the transport — the Duplicate fault path clones
  /// explicitly (see Comm::send_owned).
  Buffer payload;
};

/// Selective-receive queue: pop matches on (src, tag) with kAnySource
/// wildcard, leaving non-matching messages queued (MPI tag-matching rules).
/// Delivery is sequence-ordered per (src, tag) and duplicate-suppressing, so
/// the mailbox is correct under FaultPlan reorder/duplicate injection.
class Mailbox {
 public:
  /// defer=true holds the message back until the next push or pop touches
  /// the mailbox (FaultPlan reorder injection).
  void push(Message msg, bool defer = false);
  /// Blocks until a matching message arrives; accumulates blocked time into
  /// *wait_seconds when non-null. Throws WorldAborted if poisoned (strict:
  /// also when a matching message is queued — an aborted world's data must
  /// not be consumed).
  Message pop(int src, int tag, double* wait_seconds);
  enum class PopStatus { Ok, Poisoned, Timeout };
  /// Bounded pop: like pop but gives up after timeout_seconds.
  PopStatus pop_for(int src, int tag, double timeout_seconds, Message* out,
                    double* wait_seconds);
  bool try_pop(int src, int tag, Message* out);
  void poison();
  [[nodiscard]] bool poisoned();

 private:
  bool match_locked(int src, int tag, Message* out);
  void flush_deferred_locked();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::deque<Message> deferred_;  ///< reorder-injected, not yet visible
  /// Highest delivered seq per (src, tag): the duplicate-suppression
  /// watermark (delivery is seq-ascending per (src, tag)).
  std::map<std::pair<int, int>, std::uint64_t> delivered_;
  bool poisoned_ = false;
};

struct CommState;

/// World rank of the current rank-thread (-1 outside World::run). Keys the
/// FaultPlan streams and the watchdog's blocked-op registry, including for
/// split sub-communicators whose local ranks differ.
int current_world_rank();

}  // namespace detail

class Comm;

/// One communicator endpoint, bound to a rank. Cheap to copy (shared state).
class Comm {
 public:
  Comm() = default;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;
  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  // --- point to point ------------------------------------------------------
  void send_bytes(std::span<const std::byte> data, int dst, int tag);
  /// Receives one message matching (src, tag); returns payload. When
  /// actual_src is non-null it receives the sender rank (for kAnySource).
  std::vector<std::byte> recv_bytes(int src, int tag, int* actual_src = nullptr);
  bool try_recv_bytes(int src, int tag, std::vector<std::byte>* out,
                      int* actual_src = nullptr);

  // --- zero-copy transport -------------------------------------------------
  // Ranks share one address space, so an owned payload moves sender → mailbox
  // → receiver with no copy and no per-message allocation: lease a Buffer
  // from the per-world pool, pack into it, send_owned. The legacy byte-vector
  // API above is layered on the same message path (send_bytes adopts a copy;
  // recv_bytes releases the slab out of the pool). See buffer.hpp for the
  // ownership/lifetime contract and DESIGN.md §14 for the design.

  /// Leases a payload buffer from this world's pool (recycled across
  /// messages; Buffer::fresh() flags a warm-up allocation).
  [[nodiscard]] Buffer lease(std::size_t nbytes);
  /// Moves `payload` into the receiver's mailbox — zero copies on the clean
  /// path. Only an injected Duplicate fault clones the payload (unpooled),
  /// so recycling the original can never corrupt the in-flight duplicate.
  void send_owned(Buffer&& payload, int dst, int tag);
  /// Receives one message matching (src, tag) as an owned Buffer; dropping
  /// it returns a pooled slab to the sender world's pool.
  Buffer recv_owned(int src, int tag, int* actual_src = nullptr);
  /// Counters of this world's buffer pool (shared by all ranks).
  [[nodiscard]] PoolStats pool_stats() const;

  template <class T>
  void send(std::span<const T> data, int dst, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(std::as_bytes(data), dst, tag);
  }
  template <class T>
  std::vector<T> recv(int src, int tag, int* actual_src = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto raw = recv_bytes(src, tag, actual_src);
    if (raw.size() % sizeof(T) != 0) {
      throw std::runtime_error("minimpi::recv: payload size not a multiple of element size");
    }
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }
  template <class T>
  void send_value(const T& v, int dst, int tag) {
    send(std::span<const T>(&v, 1), dst, tag);
  }
  template <class T>
  T recv_value(int src, int tag, int* actual_src = nullptr) {
    const auto vec = recv<T>(src, tag, actual_src);
    if (vec.size() != 1) throw std::runtime_error("minimpi::recv_value: expected 1 element");
    return vec[0];
  }

  /// Combined send+receive (MPI_Sendrecv): deadlock-free pairwise exchange
  /// (the send is buffered, so post-send-then-recv cannot block).
  template <class T>
  std::vector<T> sendrecv(std::span<const T> senddata, int dst, int sendtag, int src,
                          int recvtag) {
    send(senddata, dst, sendtag);
    return recv<T>(src, recvtag);
  }

  // --- nonblocking ---------------------------------------------------------
  // Sends are buffered, so isend completes immediately; irecv defers the
  // blocking match to wait(). This preserves MPI overlap semantics: messages
  // queue in the destination mailbox while the receiver computes.
  class Request;
  Request isend_bytes(std::span<const std::byte> data, int dst, int tag);
  Request irecv_bytes(int src, int tag);

  // --- collectives ---------------------------------------------------------
  void barrier();
  /// Broadcast: root's buffer replaces everyone's; returns the data. Only
  /// the root's span is read — non-roots may (and should) pass empty.
  std::vector<std::byte> bcast_bytes(std::span<const std::byte> data, int root);
  template <class T>
  std::vector<T> bcast(std::vector<T> data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::span<const std::byte> raw;
    if (rank_ == root) raw = std::as_bytes(std::span<const T>(data));
    auto out_raw = bcast_bytes(raw, root);
    std::vector<T> out(out_raw.size() / sizeof(T));
    std::memcpy(out.data(), out_raw.data(), out_raw.size());
    return out;
  }
  template <class T>
  T bcast_value(T v, int root) {
    auto vec = bcast(std::vector<T>{v}, root);
    return vec.at(0);
  }

  /// Variable-length gather: root receives concatenation ordered by rank and
  /// per-rank counts. Non-roots receive empty vectors.
  template <class T>
  std::vector<T> gatherv(std::span<const T> local, int root,
                         std::vector<std::size_t>* counts = nullptr) {
    constexpr int kTag = kTagGather;
    if (rank_ != root) {
      send(local, root, kTag);
      return {};
    }
    std::vector<T> all;
    if (counts) counts->assign(static_cast<std::size_t>(size()), 0);
    for (int r = 0; r < size(); ++r) {
      std::vector<T> part;
      if (r == rank_) {
        part.assign(local.begin(), local.end());
      } else {
        part = recv<T>(r, kTag);
      }
      if (counts) (*counts)[static_cast<std::size_t>(r)] = part.size();
      all.insert(all.end(), part.begin(), part.end());
    }
    return all;
  }

  template <class T>
  std::vector<T> allgatherv(std::span<const T> local,
                            std::vector<std::size_t>* counts = nullptr) {
    std::vector<std::size_t> local_counts;
    auto all = gatherv(local, 0, &local_counts);
    all = bcast(std::move(all), 0);
    if (counts) {
      *counts = bcast(std::move(local_counts), 0);
    } else {
      (void)bcast(std::move(local_counts), 0);
    }
    return all;
  }

  template <class T>
  std::vector<T> allgather_value(const T& v) {
    return allgatherv(std::span<const T>(&v, 1));
  }

  /// Reduction with an arbitrary associative op. The fold walks
  /// contributions in strictly ascending rank order *regardless of root*:
  /// the root buffers every remote value and folds from rank 0 upward
  /// (its own value taken in place at its own rank), so non-associative
  /// floating-point folds produce bit-identical results for every root
  /// choice (certification-grade reproducibility; see DESIGN.md §11).
  template <class T, class Op>
  T reduce(const T& v, Op op, int root) {
    constexpr int kTag = kTagReduce;
    if (rank_ != root) {
      send_value(v, root, kTag);
      return v;
    }
    T acc = rank_ == 0 ? v : recv_value<T>(0, kTag);
    for (int r = 1; r < size(); ++r) {
      const T vr = r == rank_ ? v : recv_value<T>(r, kTag);
      acc = op(acc, vr);
    }
    return acc;
  }

  template <class T, class Op>
  T allreduce(const T& v, Op op) {
    T acc = reduce(v, op, 0);
    return bcast_value(acc, 0);
  }

  double allreduce_sum(double v) {
    return allreduce(v, [](double a, double b) { return a + b; });
  }
  double allreduce_max(double v) {
    return allreduce(v, [](double a, double b) { return a > b ? a : b; });
  }
  std::uint64_t allreduce_sum_u64(std::uint64_t v) {
    return allreduce(v, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  }

  /// Component-wise sum allreduce of a whole vector in one collective round:
  /// one message per non-root rank carries every component, so batched dot
  /// products (op2 Global reductions of dim > 1) ride a single reduce+bcast
  /// instead of one collective per component. Per component the fold order
  /// is strictly ascending rank order — bit-identical to calling the scalar
  /// allreduce_sum once per component. All ranks must pass equal lengths.
  std::vector<double> allreduce_sum(std::span<const double> v) {
    constexpr int kTag = kTagReduce;
    std::vector<double> acc(v.begin(), v.end());
    if (rank_ != 0) {
      send(v, 0, kTag);
    } else {
      for (int r = 1; r < size(); ++r) {
        const auto part = recv<double>(r, kTag);
        if (part.size() != acc.size()) {
          throw std::invalid_argument("allreduce_sum: vector length mismatch across ranks");
        }
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += part[i];
      }
    }
    return bcast(std::move(acc), 0);
  }

  /// All-to-all with per-destination variable payloads.
  /// sendbufs[r] goes to rank r; returns recvbufs where [r] came from rank r.
  template <class T>
  std::vector<std::vector<T>> alltoallv(const std::vector<std::vector<T>>& sendbufs) {
    constexpr int kTag = kTagAlltoall;
    if (static_cast<int>(sendbufs.size()) != size()) {
      throw std::invalid_argument("alltoallv: sendbufs.size() != comm size");
    }
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      send(std::span<const T>(sendbufs[static_cast<std::size_t>(r)]), r, kTag);
    }
    std::vector<std::vector<T>> recvbufs(static_cast<std::size_t>(size()));
    recvbufs[static_cast<std::size_t>(rank_)] = sendbufs[static_cast<std::size_t>(rank_)];
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      recvbufs[static_cast<std::size_t>(r)] = recv<T>(r, kTag);
    }
    return recvbufs;
  }

  /// Collective split, MPI_Comm_split semantics: ranks with equal color form
  /// a child comm, ordered by (key, parent rank). color < 0 yields an
  /// invalid Comm for that rank (like MPI_UNDEFINED).
  Comm split(int color, int key);

  // --- metering ------------------------------------------------------------
  [[nodiscard]] TrafficStats traffic() const;
  /// Zeroes every rank's counters. The communicator must be quiesced (no
  /// in-flight traffic): reset from a single rank between barriers, or from
  /// all ranks only when none is communicating.
  void reset_traffic();

  /// True once the world this communicator belongs to has been poisoned
  /// (a rank died or the watchdog fired). Any further recv/barrier/
  /// Request::wait on it throws WorldAborted.
  [[nodiscard]] bool aborted() const;

 private:
  friend class World;
  friend class WorkerPool;
  Comm(std::shared_ptr<detail::CommState> state, int rank)
      : state_(std::move(state)), rank_(rank) {}

  /// Common delivery path for send_bytes and send_owned: fault consultation,
  /// sequencing, retry loop, mailbox push. Takes ownership of the payload.
  void send_message(Buffer&& payload, int dst, int tag);
  [[nodiscard]] BufferPool& world_pool() const;

  // Internal tags for collectives; user tags must be < kTagCollectiveBase.
  static constexpr int kTagCollectiveBase = 1 << 24;
  static constexpr int kTagGather = kTagCollectiveBase + 1;
  static constexpr int kTagReduce = kTagCollectiveBase + 2;
  static constexpr int kTagBcast = kTagCollectiveBase + 3;
  static constexpr int kTagAlltoall = kTagCollectiveBase + 4;
  static constexpr int kTagSplit = kTagCollectiveBase + 5;

  std::shared_ptr<detail::CommState> state_;
  int rank_ = -1;
};

/// In-flight nonblocking operation handle (see Comm::isend_bytes/irecv_bytes).
class Comm::Request {
 public:
  /// Completes the operation; for receives, returns the payload.
  std::vector<std::byte> wait();
  [[nodiscard]] int source() const { return completed_src_; }

 private:
  friend class Comm;
  Comm comm_;
  bool is_recv_ = false;
  bool done_ = false;
  int src_ = 0;
  int tag_ = 0;
  int completed_src_ = -1;
  std::vector<std::byte> payload_;
};

/// Launches an SPMD world of `nranks` rank-threads, each executing `fn` with
/// its own world communicator, and joins them. If any rank throws, the world
/// is poisoned (peers blocked in recv/barrier get WorldAborted) and the first
/// exception is rethrown to the caller.
///
/// Robustness behaviour is set by WorldOptions; when the caller passes none,
/// the environment is consulted: VCGT_FAULT_SEED (+ VCGT_FAULT_P_*,
/// VCGT_FAULT_KILL) attaches a FaultPlan, VCGT_RECV_TIMEOUT /
/// VCGT_RECV_RETRIES bound receives, VCGT_STALL_TIMEOUT arms the progress
/// watchdog. See src/minimpi/fault.hpp and DESIGN.md "Fault model".
class World {
 public:
  static void run(int nranks, const std::function<void(Comm&)>& fn);
  static void run(int nranks, const std::function<void(Comm&)>& fn,
                  const WorldOptions& opts);

  /// WorldOptions derived from the environment (the defaults for the
  /// two-argument run()). Exposed so tests and drivers can inspect or tweak
  /// an env-driven configuration before launching.
  static WorldOptions options_from_env();
};

}  // namespace vcgt::minimpi
