#include "src/minimpi/buffer.hpp"

#include <bit>

namespace vcgt::minimpi {

std::size_t BufferPool::class_for_size(std::size_t nbytes) {
  const std::size_t min_size = std::size_t{1} << kMinClassLog2;
  const std::size_t rounded = std::bit_ceil(nbytes < min_size ? min_size : nbytes);
  std::size_t c = static_cast<std::size_t>(std::bit_width(rounded) - 1) - kMinClassLog2;
  return c < kClasses ? c : kClasses - 1;
}

std::size_t BufferPool::class_for_capacity(std::size_t capacity) {
  // Floor class: a slab in bucket b has capacity >= 2^(b+kMinClassLog2), so
  // any lease routed to bucket b fits without reallocation (grow-only).
  if (capacity < (std::size_t{1} << kMinClassLog2)) return 0;
  std::size_t c = static_cast<std::size_t>(std::bit_width(capacity) - 1) - kMinClassLog2;
  return c < kClasses ? c : kClasses - 1;
}

Buffer BufferPool::lease(std::size_t nbytes) {
  Buffer b;
  const std::size_t c = class_for_size(nbytes);
  {
    std::scoped_lock lock(mutex_);
    // Exact class first, then fall back to larger classes: a bigger recycled
    // slab legally serves a smaller lease (capacity only ever grows), and
    // reusing it beats allocating a fresh slab while the exact class is
    // transiently drained by concurrent in-flight messages.
    for (std::size_t k = c; k < kClasses; ++k) {
      auto& bucket = free_[k];
      if (!bucket.empty()) {
        b.v_ = std::move(bucket.back());
        bucket.pop_back();
        break;
      }
    }
  }
  if (b.v_.capacity() == 0) {
    // Freelist miss: allocate a fresh slab at the full class size so every
    // future lease in this class fits its capacity (grow-only contract).
    b.v_.reserve(std::size_t{1} << (c + kMinClassLog2));
    b.fresh_ = true;
    slab_allocs_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // The recycled region was poisoned while parked in the freelist; lift
    // the poison before any vector op touches the bytes.
    VCGT_POOL_UNPOISON(b.v_.data(), b.v_.capacity());
  }
  b.v_.resize(nbytes);
  b.pool_ = shared_from_this();
  leases_.fetch_add(1, std::memory_order_relaxed);
  bytes_leased_.fetch_add(nbytes, std::memory_order_relaxed);
  live_.fetch_add(1, std::memory_order_relaxed);
  return b;
}

void BufferPool::recycle(std::vector<std::byte>&& slab) {
  recycles_.fetch_add(1, std::memory_order_relaxed);
  live_.fetch_sub(1, std::memory_order_relaxed);
  // Poison the parked slab: any read/write through a stale pointer into a
  // recycled payload becomes a hard ASan report instead of silent corruption.
  VCGT_POOL_POISON(slab.data(), slab.capacity());
  const std::size_t c = class_for_capacity(slab.capacity());
  std::scoped_lock lock(mutex_);
  free_[c].push_back(std::move(slab));
}

void BufferPool::note_escape() {
  escaped_.fetch_add(1, std::memory_order_relaxed);
  live_.fetch_sub(1, std::memory_order_relaxed);
}

PoolStats BufferPool::stats() const {
  PoolStats s;
  s.leases = leases_.load(std::memory_order_relaxed);
  s.slab_allocs = slab_allocs_.load(std::memory_order_relaxed);
  s.recycles = recycles_.load(std::memory_order_relaxed);
  s.escaped = escaped_.load(std::memory_order_relaxed);
  s.dup_copies = dup_copies_.load(std::memory_order_relaxed);
  s.bytes_leased = bytes_leased_.load(std::memory_order_relaxed);
  s.copies_avoided = copies_avoided_.load(std::memory_order_relaxed);
  s.bytes_zero_copied = bytes_zero_copied_.load(std::memory_order_relaxed);
  s.live = live_.load(std::memory_order_relaxed);
  return s;
}

std::vector<std::byte> Buffer::release() && {
  if (pool_) {
    pool_->note_escape();
    pool_.reset();
  }
  fresh_ = false;
  return std::move(v_);
}

void Buffer::reset() {
  if (pool_) {
    auto pool = std::move(pool_);
    pool->recycle(std::move(v_));
  }
  v_.clear();
  fresh_ = false;
}

}  // namespace vcgt::minimpi
