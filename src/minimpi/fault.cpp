#include "src/minimpi/fault.hpp"

#include <algorithm>
#include <cstdlib>

#include "src/minimpi/minimpi.hpp"
#include "src/util/env_config.hpp"
#include "src/util/log.hpp"

namespace vcgt::minimpi {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::None: return "none";
    case FaultKind::Delay: return "delay";
    case FaultKind::Duplicate: return "duplicate";
    case FaultKind::Reorder: return "reorder";
    case FaultKind::DropSend: return "drop-send";
    case FaultKind::KillRank: return "kill-rank";
  }
  return "?";
}

FaultConfig FaultConfig::from_env() {
  FaultConfig cfg;
  const util::EnvConfig env = util::env_config();
  if (env.fault_seed) {
    cfg.seed = *env.fault_seed;
    // Defaults chosen so a seeded chaos run injects a healthy mix of every
    // transient kind without drowning the workload in backoff sleeps.
    cfg.p_delay = env.fault_p_delay.value_or(0.02);
    cfg.p_duplicate = env.fault_p_dup.value_or(0.02);
    cfg.p_reorder = env.fault_p_reorder.value_or(0.02);
    cfg.p_drop = env.fault_p_drop.value_or(0.02);
  }
  if (env.fault_kill) {
    // "<rank>:<op>"
    const char* kill = env.fault_kill->c_str();
    char* end = nullptr;
    const long rank = std::strtol(kill, &end, 10);
    if (end && *end == ':') {
      const std::uint64_t op = std::strtoull(end + 1, nullptr, 10);
      cfg.schedule.push_back({static_cast<int>(rank), op, FaultKind::KillRank});
    } else {
      util::warn("VCGT_FAULT_KILL: expected '<rank>:<op>', got '{}'", *env.fault_kill);
    }
  }
  for (const auto& w : env.warnings) util::warn("env_config: {}", w);
  return cfg;
}

FaultPlan::FaultPlan(FaultConfig cfg) : cfg_(std::move(cfg)) {}

void FaultPlan::ensure_ranks(int nranks) {
  std::scoped_lock lock(mutex_);
  const auto n = static_cast<std::size_t>(nranks);
  // RankStreams are heap-allocated so a concurrent grow (vector realloc)
  // never moves a stream another rank thread is using.
  for (std::size_t r = streams_.size(); r < n; ++r) {
    auto st = std::make_unique<RankStream>();
    st->rng = util::Rng(cfg_.seed).split(static_cast<std::uint64_t>(r));
    for (const auto& s : cfg_.schedule) {
      if (s.rank == static_cast<int>(r)) st->scheduled.emplace(s.op, s.kind);
    }
    streams_.push_back(std::move(st));
  }
}

FaultPlan::RankStream* FaultPlan::stream(int rank) {
  ensure_ranks(rank + 1);
  std::scoped_lock lock(mutex_);
  return streams_[static_cast<std::size_t>(rank)].get();
}

void FaultPlan::record(const FaultEvent& ev) {
  util::debug("faultplan: rank {} op {} inject {} (peer {}, tag {})", ev.rank, ev.op,
              fault_kind_name(ev.kind), ev.peer, ev.tag);
  std::scoped_lock lock(mutex_);
  events_.push_back(ev);
}

FaultKind FaultPlan::step_op(RankStream& st, int rank, int peer, int tag) {
  const std::uint64_t op = st.op.fetch_add(1, std::memory_order_relaxed);
  const auto it = st.scheduled.find(op);
  if (it == st.scheduled.end()) return FaultKind::None;
  const FaultKind kind = it->second;
  record({rank, op, kind, peer, tag});
  if (kind == FaultKind::KillRank) {
    throw RankKilled(util::fmt("minimpi: rank {} killed by fault plan at op {} (seed {})",
                               rank, op, cfg_.seed));
  }
  return kind;
}

FaultPlan::SendDecision FaultPlan::on_send(int rank, int dst, int tag) {
  RankStream& st = *stream(rank);
  const std::uint64_t op = st.op.load(std::memory_order_relaxed);  // step_op advances it
  SendDecision d;
  const FaultKind scheduled = step_op(st, rank, dst, tag);

  FaultKind kind = scheduled;
  if (kind == FaultKind::None) {
    // One uniform draw per send op; ranges stacked in declaration order so
    // the kinds are mutually exclusive and individually tunable.
    const double u = st.rng.next_double();
    double edge = cfg_.p_delay;
    if (u < edge) {
      kind = FaultKind::Delay;
    } else if (u < (edge += cfg_.p_duplicate)) {
      kind = FaultKind::Duplicate;
    } else if (u < (edge += cfg_.p_reorder)) {
      kind = FaultKind::Reorder;
    } else if (u < (edge += cfg_.p_drop)) {
      kind = FaultKind::DropSend;
    }
    if (kind != FaultKind::None) record({rank, op, kind, dst, tag});
  }

  d.kind = kind;
  if (kind == FaultKind::Delay) d.delay_seconds = cfg_.delay_seconds;
  if (kind == FaultKind::DropSend) d.fail_attempts = cfg_.drop_attempts;
  return d;
}

void FaultPlan::on_op(int rank, int peer, int tag) {
  // Scheduled send-kind faults only make sense on sends; at a recv/barrier
  // op they still count the op and can only kill.
  (void)step_op(*stream(rank), rank, peer, tag);
}

std::uint64_t FaultPlan::ops(int rank) const {
  std::scoped_lock lock(mutex_);
  const auto r = static_cast<std::size_t>(rank);
  return r < streams_.size() ? streams_[r]->op.load(std::memory_order_relaxed) : 0;
}

std::vector<FaultEvent> FaultPlan::events() const {
  std::vector<FaultEvent> out;
  {
    std::scoped_lock lock(mutex_);
    out = events_;
  }
  std::sort(out.begin(), out.end(), [](const FaultEvent& a, const FaultEvent& b) {
    return std::tie(a.rank, a.op) < std::tie(b.rank, b.op);
  });
  return out;
}

int FaultPlan::distinct_kinds() const {
  bool seen[6] = {};
  {
    std::scoped_lock lock(mutex_);
    for (const auto& e : events_) seen[static_cast<std::size_t>(e.kind)] = true;
  }
  int n = 0;
  for (int k = 1; k < 6; ++k) n += seen[k] ? 1 : 0;
  return n;
}

}  // namespace vcgt::minimpi
