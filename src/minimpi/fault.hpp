#pragma once
// minimpi::FaultPlan — a seeded, deterministic fault-injection engine for the
// message-passing substrate (the "chaos layer").
//
// The paper's production runs occupy 512 nodes for ~30 hours; at that scale
// transient message loss, slow links and rank death are operational
// certainties, and the halo-exchange/coupling protocol must either mask them
// or fail diagnosably. This repository has no flaky network to test against,
// so faults are *injected*: every send consults the plan, which decides —
// deterministically, from a per-rank SplitMix64 stream keyed by (rank,
// op index) — whether to delay the message, deliver it twice, defer it
// behind later traffic, fail the first k delivery attempts (forcing the
// retry path), or kill the rank outright.
//
// Determinism contract: a rank's fault sequence depends only on (seed, rank,
// per-rank op index), never on cross-rank interleaving, so the same seed
// reproduces the same fault sequence run-to-run (asserted by
// tests/test_faults.cpp). Every injected fault is recorded in an event log
// and logged at debug level for post-mortem analysis.
//
// Plans attach to a World via WorldOptions (see minimpi.hpp) or the
// environment: VCGT_FAULT_SEED=<u64> enables a random plan with default
// probabilities, overridable via VCGT_FAULT_P_{DELAY,DUP,REORDER,DROP} and
// VCGT_FAULT_KILL=<rank>:<op>.
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/rng.hpp"

namespace vcgt::minimpi {

enum class FaultKind : std::uint8_t {
  None = 0,
  Delay,      ///< sleep before delivery (slow link / OS jitter)
  Duplicate,  ///< deliver the message twice (dedup'd by the seq protocol)
  Reorder,    ///< defer delivery behind subsequently sent messages
  DropSend,   ///< fail the first k delivery attempts (transient send fault)
  KillRank,   ///< the rank throws RankKilled at this op (fail-stop death)
};

const char* fault_kind_name(FaultKind k);

/// One injected fault, as recorded in the plan's event log.
struct FaultEvent {
  int rank = -1;             ///< world rank the fault was injected on
  std::uint64_t op = 0;      ///< per-rank op index (sends + recvs, from 0)
  FaultKind kind = FaultKind::None;
  int peer = -1;             ///< destination (sends) / source (kill at recv)
  int tag = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// An explicitly scheduled fault: fires when `rank` executes op `op`.
struct ScheduledFault {
  int rank = 0;
  std::uint64_t op = 0;
  FaultKind kind = FaultKind::None;
};

struct FaultConfig {
  std::uint64_t seed = 0;

  // Per-send-op probabilities of each random fault kind (mutually exclusive
  // per op; evaluated in this order from a single uniform draw).
  double p_delay = 0.0;
  double p_duplicate = 0.0;
  double p_reorder = 0.0;
  double p_drop = 0.0;

  /// Injected sleep for Delay faults (wall-clock only; never content).
  double delay_seconds = 2e-4;
  /// Consecutive failed delivery attempts per DropSend fault. Values >=
  /// WorldOptions::max_send_attempts exhaust the retry budget and surface a
  /// structured TransientSendError (used to test the error path).
  int drop_attempts = 1;

  /// Deterministic faults in addition to the random plan (KillRank is only
  /// ever scheduled — random rank death would make every seeded run die).
  std::vector<ScheduledFault> schedule;

  /// Reads VCGT_FAULT_SEED / VCGT_FAULT_P_* / VCGT_FAULT_KILL. Returns a
  /// config with seed == 0 and empty schedule when the environment requests
  /// no faults.
  static FaultConfig from_env();
  [[nodiscard]] bool enabled() const {
    return p_delay > 0 || p_duplicate > 0 || p_reorder > 0 || p_drop > 0 ||
           !schedule.empty();
  }
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultConfig cfg);

  /// What send_bytes should do for the current op on `rank`.
  struct SendDecision {
    FaultKind kind = FaultKind::None;
    int fail_attempts = 0;    ///< DropSend: attempts to fail before success
    double delay_seconds = 0; ///< Delay: injected sleep
  };

  /// Consulted by Comm::send_bytes once per send op (not per retry attempt,
  /// so retries do not perturb the random stream). Throws RankKilled when a
  /// KillRank fault is scheduled at this op. Thread-safe across ranks; each
  /// rank must only ever pass its own world rank.
  SendDecision on_send(int rank, int dst, int tag);

  /// Consulted by Comm::recv_bytes / barrier at op entry: counts the op and
  /// fires scheduled KillRank faults. Consumes no randomness.
  void on_op(int rank, int peer, int tag);

  /// Pre-sizes the per-rank streams (called by World::run before launch).
  void ensure_ranks(int nranks);

  /// Ops executed by `rank` so far.
  [[nodiscard]] std::uint64_t ops(int rank) const;

  /// Injected-fault log, sorted by (rank, op): the reproducibility witness.
  [[nodiscard]] std::vector<FaultEvent> events() const;
  /// Number of distinct fault kinds injected so far.
  [[nodiscard]] int distinct_kinds() const;

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }

 private:
  struct RankStream {
    util::Rng rng{0};
    /// Atomic only so ops() may observe it from other threads; the stream is
    /// otherwise owned by its rank thread.
    std::atomic<std::uint64_t> op{0};
    std::map<std::uint64_t, FaultKind> scheduled;  ///< op -> fault
  };

  void record(const FaultEvent& ev);
  /// Returns the scheduled fault for this op (None if none); throws
  /// RankKilled for KillRank. Advances the op counter.
  FaultKind step_op(RankStream& st, int rank, int peer, int tag);
  RankStream* stream(int rank);

  FaultConfig cfg_;
  mutable std::mutex mutex_;  ///< guards streams_ resizing and events_
  std::vector<std::unique_ptr<RankStream>> streams_;
  std::vector<FaultEvent> events_;
};

}  // namespace vcgt::minimpi
