#include "src/minimpi/pool.hpp"

#include <algorithm>
#include <utility>

#include "src/minimpi/state.hpp"
#include "src/util/log.hpp"
#include "src/util/trace.hpp"

namespace vcgt::minimpi {

struct WorkerPool::Pending {
  Job fn;
  std::promise<JobResult> promise;
};

WorkerPool::WorkerPool(int nranks, WorldOptions opts)
    : nranks_(nranks), opts_(std::move(opts)) {
  if (nranks <= 0) throw std::invalid_argument("minimpi::WorkerPool: nranks must be positive");
  state_ = detail::make_world_state(nranks_, opts_);
  slots_.resize(static_cast<std::size_t>(nranks_));
  rank_seen_.assign(static_cast<std::size_t>(nranks_), 0);
  rank_errors_.assign(static_cast<std::size_t>(nranks_), std::string{});
  threads_.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads_.emplace_back([this, r] { rank_main(r); });
  }
  if (opts_.stall_timeout > 0.0) {
    watchdog_ = std::thread([this] { watchdog_main(); });
  }
}

WorkerPool::~WorkerPool() { shutdown(); }

std::future<WorkerPool::JobResult> WorkerPool::submit(Job job) {
  auto pending = std::make_unique<Pending>();
  pending->fn = std::move(job);
  std::future<JobResult> fut = pending->promise.get_future();
  {
    std::scoped_lock lock(mutex_);
    if (stop_) {
      JobResult res;
      res.ok = false;
      res.error = "minimpi::WorkerPool: pool shut down";
      pending->promise.set_value(std::move(res));
      return fut;
    }
    if (current_ == nullptr) {
      current_ = std::move(pending);
      ++job_seq_;
    } else {
      queue_.push_back(std::move(pending));
    }
  }
  cv_.notify_all();
  return fut;
}

std::uint64_t WorkerPool::generation() const {
  std::scoped_lock lock(mutex_);
  return generation_;
}

std::size_t WorkerPool::backlog() const {
  std::scoped_lock lock(mutex_);
  return queue_.size() + (current_ != nullptr ? 1 : 0);
}

void WorkerPool::rank_main(int r) {
  // Rank identity is thread-wide and permanent: it keys fault streams,
  // watchdog slots and trace tracks across every job this thread runs.
  detail::t_world_rank = r;
  trace::set_track(r);
  const auto ri = static_cast<std::size_t>(r);
  for (;;) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] {
      return (current_ != nullptr && rank_seen_[ri] != job_seq_) || stop_;
    });
    // A pending job is run even when stopping: peers may already be inside
    // it, and abandoning them would hang the shutdown barrier below.
    if (current_ == nullptr || rank_seen_[ri] == job_seq_) {
      if (stop_) return;
      continue;
    }
    rank_seen_[ri] = job_seq_;
    auto state = state_;
    Pending* job = current_.get();
    lock.unlock();

    std::string err;
    try {
      Comm comm{state, r};
      job->fn(comm, slots_[ri]);
    } catch (const std::exception& e) {
      err = e.what();
    } catch (...) {
      err = "unknown error";
    }
    // Poison before reporting: peers blocked in a collective with the dead
    // rank must wake (with WorldAborted) or the job never finishes.
    if (!err.empty()) state->poison_world();

    lock.lock();
    rank_errors_[ri] = err;
    if (++finished_ == nranks_) {
      auto [promise, result] = finalize_locked();
      lock.unlock();
      cv_.notify_all();
      promise.set_value(std::move(result));
    }
  }
}

std::pair<std::promise<WorkerPool::JobResult>, WorkerPool::JobResult>
WorkerPool::finalize_locked() {
  JobResult res;
  res.rank_errors = rank_errors_;
  for (int r = 0; r < nranks_; ++r) {
    const auto& e = rank_errors_[static_cast<std::size_t>(r)];
    if (!e.empty()) {
      res.ok = false;
      if (res.error.empty()) res.error = util::fmt("rank {}: {}", r, e);
    }
  }
  // A watchdog stall poisons the world without any rank throwing (ranks
  // report WorldAborted) — rebuild on poison, not only on rank error.
  if (!res.ok || state_->poisoned.load(std::memory_order_relaxed)) {
    res.world_rebuilt = true;
    rebuild_world_locked();
  }
  std::promise<JobResult> promise = std::move(current_->promise);
  current_.reset();
  finished_ = 0;
  std::fill(rank_errors_.begin(), rank_errors_.end(), std::string{});
  if (!stop_ && !queue_.empty()) {
    current_ = std::move(queue_.front());
    queue_.pop_front();
    ++job_seq_;
  }
  return {std::move(promise), std::move(res)};
}

void WorkerPool::rebuild_world_locked() {
  // Order matters: warm sessions hold Comm endpoints bound to the poisoned
  // state — destroy them before the state they reference goes away, and
  // never let one survive into the fresh world.
  for (auto& slot : slots_) slot.reset();
  state_ = detail::make_world_state(nranks_, opts_);
  ++generation_;
  util::warn("minimpi::WorkerPool: world poisoned, rebuilt (generation {})", generation_);
}

void WorkerPool::watchdog_main() {
  const double interval = std::clamp(opts_.stall_timeout / 8.0, 1e-3, 0.1);
  std::uint64_t last_ops = ~std::uint64_t{0};
  for (;;) {
    detail::sleep_seconds(interval);
    std::shared_ptr<detail::CommState> state;
    {
      std::scoped_lock lock(mutex_);
      if (stop_) return;
      if (current_ == nullptr) {  // idle: nothing can stall
        last_ops = ~std::uint64_t{0};
        continue;
      }
      state = state_;
    }
    const std::uint64_t ops_now = state->ops_total.load(std::memory_order_relaxed);
    const bool progressed = ops_now != last_ops;
    last_ops = ops_now;
    if (progressed) continue;
    const std::int64_t now = detail::now_ns();
    bool stalled = false;
    for (int r = 0; r < nranks_; ++r) {
      auto& slot = *state->slots[static_cast<std::size_t>(r)];
      const int active = slot.active.load(std::memory_order_acquire);
      if (active == 0) continue;
      const double age =
          static_cast<double>(now - slot.since_ns.load(std::memory_order_relaxed)) * 1e-9;
      if (age >= opts_.stall_timeout) stalled = true;
    }
    if (!stalled) continue;
    util::error("minimpi::WorkerPool: stall detected (no progress for {}s), poisoning world",
                opts_.stall_timeout);
    state->poison_world();
    last_ops = ~std::uint64_t{0};
  }
}

void WorkerPool::shutdown() {
  std::deque<std::unique_ptr<Pending>> orphaned;
  {
    std::scoped_lock lock(mutex_);
    if (stop_ && threads_.empty()) return;  // already shut down
    stop_ = true;
    orphaned.swap(queue_);
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
  if (watchdog_.joinable()) watchdog_.join();
  // The in-flight job (if any) was finished by the rank threads before they
  // exited; queued jobs never started.
  for (auto& p : orphaned) {
    JobResult res;
    res.ok = false;
    res.error = "minimpi::WorkerPool: pool shut down";
    p->promise.set_value(std::move(res));
  }
  // Drop warm sessions before the final state: they hold Comms into it.
  for (auto& slot : slots_) slot.reset();
}

}  // namespace vcgt::minimpi
