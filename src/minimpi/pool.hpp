#pragma once
// minimpi::WorkerPool — a persistent threads-as-ranks world that executes a
// sequence of jobs (vcgt::serve's execution substrate).
//
// World::run spins up rank threads, runs one function, joins and tears the
// world down; a serving front end doing that per request pays thread
// creation, fault-plan setup and watchdog start on every job, and — worse —
// cannot keep *warm state* (a constructed CoupledRig holding Comm endpoints)
// alive between jobs, because those endpoints die with the world. The pool
// instead keeps the rank threads and the shared CommState alive across
// jobs:
//
//  - submit(job) enqueues; rank threads run jobs strictly in order, all
//    ranks executing the same job before any rank starts the next;
//  - each rank owns a warm slot (shared_ptr<void>) that survives between
//    jobs — sessions park rig/solver objects there so a later job with the
//    same spec skips setup entirely;
//  - a rank that throws poisons the world (unblocking peers stuck in
//    collectives, exactly like World::run) and the job completes with a
//    structured per-rank error report. The pool then *rebuilds* the world:
//    warm slots are dropped first (they hold Comms bound to the poisoned
//    state), then a fresh CommState replaces it and the generation counter
//    bumps, so the next job starts clean — a killed job can never hang the
//    pool or leak its failure into the next job;
//  - an optional progress watchdog (WorldOptions::stall_timeout) poisons a
//    world whose ranks are all blocked with no progress, converting a
//    deadlocked job into a failed one.
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/minimpi/minimpi.hpp"

namespace vcgt::minimpi {

namespace detail {
struct CommState;
}

class WorkerPool {
 public:
  /// One job, executed SPMD by every rank thread. `slot` is this rank's
  /// warm storage: it persists across jobs on the same (non-rebuilt) world
  /// and is dropped on rebuild. Throwing fails the job for the whole world.
  using Job = std::function<void(Comm& comm, std::shared_ptr<void>& slot)>;

  struct JobResult {
    bool ok = true;
    std::string error;                     ///< first rank error (empty when ok)
    std::vector<std::string> rank_errors;  ///< per rank; empty string = clean
    bool world_rebuilt = false;  ///< world was poisoned; warm slots dropped
  };

  explicit WorkerPool(int nranks, WorldOptions opts = {});
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues a job; the future resolves when every rank finished it.
  /// Never blocks on the job itself.
  std::future<JobResult> submit(Job job);

  [[nodiscard]] int nranks() const { return nranks_; }
  /// Bumped every time the world is rebuilt after a poisoned job. A warm
  /// session keyed to an older generation is gone.
  [[nodiscard]] std::uint64_t generation() const;
  /// Jobs waiting or running.
  [[nodiscard]] std::size_t backlog() const;

  /// Stops accepting jobs, lets the in-flight job finish, fails queued
  /// jobs with "pool shut down", joins all threads. Idempotent; the
  /// destructor calls it.
  void shutdown();

 private:
  struct Pending;

  void rank_main(int r);
  void watchdog_main();
  /// Called by the last rank to finish the current job, with mutex_ held.
  /// Returns the promise/result pair to fulfil after unlocking.
  std::pair<std::promise<JobResult>, JobResult> finalize_locked();
  void rebuild_world_locked();

  int nranks_;
  WorldOptions opts_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::shared_ptr<detail::CommState> state_;
  std::vector<std::shared_ptr<void>> slots_;  ///< per-rank warm storage
  std::deque<std::unique_ptr<Pending>> queue_;
  std::unique_ptr<Pending> current_;
  std::uint64_t job_seq_ = 0;              ///< bumps when current_ changes
  std::vector<std::uint64_t> rank_seen_;   ///< last job_seq_ each rank ran
  int finished_ = 0;                       ///< ranks done with current_
  std::vector<std::string> rank_errors_;
  std::uint64_t generation_ = 1;
  bool stop_ = false;

  std::vector<std::thread> threads_;
  std::thread watchdog_;
};

}  // namespace vcgt::minimpi
