#include "src/minimpi/minimpi.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "src/minimpi/fault.hpp"
#include "src/minimpi/state.hpp"
#include "src/util/env_config.hpp"
#include "src/util/log.hpp"
#include "src/util/timer.hpp"
#include "src/util/trace.hpp"

namespace vcgt::minimpi {

namespace detail {

thread_local int t_world_rank = -1;

int current_world_rank() { return t_world_rank; }

std::int64_t now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

void sleep_seconds(double s) {
  if (s > 0) std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

std::shared_ptr<CommState> make_world_state(int nranks, const WorldOptions& opts) {
  auto state = std::make_shared<CommState>(nranks);
  state->opts = opts;
  if (state->opts.fault) state->opts.fault->ensure_ranks(nranks);
  state->slots.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    state->slots.push_back(std::make_unique<BlockedSlot>());
  }
  return state;
}

void Mailbox::flush_deferred_locked() {
  while (!deferred_.empty()) {
    queue_.push_back(std::move(deferred_.front()));
    deferred_.pop_front();
  }
}

void Mailbox::push(Message msg, bool defer) {
  {
    std::scoped_lock lock(mutex_);
    if (defer) {
      deferred_.push_back(std::move(msg));
    } else {
      queue_.push_back(std::move(msg));
      // Deferred (reorder-injected) messages become visible behind this one.
      flush_deferred_locked();
    }
  }
  // Notify even for a deferred push: a receiver blocked on exactly this
  // message flushes it from its wait predicate, so reorder cannot deadlock.
  cv_.notify_all();
}

bool Mailbox::match_locked(int src, int tag, Message* out) {
  const auto matches = [&](const Message& m) {
    return (src == kAnySource || m.src == src) && m.tag == tag;
  };
  // Purge duplicates: a sequenced message at or below the delivered watermark
  // for its (src, tag) has already been consumed once (seq 0 = unsequenced
  // legacy message, exempt from the protocol).
  for (std::size_t i = 0; i < queue_.size();) {
    const Message& m = queue_[i];
    if (m.seq != 0 && matches(m)) {
      const auto wm = delivered_.find({m.src, m.tag});
      if (wm != delivered_.end() && m.seq <= wm->second) {
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
    }
    ++i;
  }
  // Queue order picks which (src, tag) stream a wildcard receive sees first,
  // but within that stream delivery is minimum-seq-first: FIFO per (src, tag)
  // survives reorder injection.
  std::size_t best = queue_.size();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Message& m = queue_[i];
    if (!matches(m)) continue;
    if (best == queue_.size()) {
      best = i;
      continue;
    }
    const Message& b = queue_[best];
    if (m.seq != 0 && b.seq != 0 && m.src == b.src && m.tag == b.tag && m.seq < b.seq) {
      best = i;
    }
  }
  if (best == queue_.size()) return false;
  Message& chosen = queue_[best];
  if (chosen.seq != 0) delivered_[{chosen.src, chosen.tag}] = chosen.seq;
  *out = std::move(chosen);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
  return true;
}

Message Mailbox::pop(int src, int tag, double* wait_seconds) {
  std::unique_lock lock(mutex_);
  Message msg;
  bool matched = false;
  util::Timer waited;
  cv_.wait(lock, [&] {
    // Poison wins even over a queued match: an aborted world's data must not
    // be consumed (in-flight Requests observe the abort deterministically).
    if (poisoned_) return true;
    flush_deferred_locked();
    matched = match_locked(src, tag, &msg);
    return matched;
  });
  if (wait_seconds) *wait_seconds += waited.elapsed();
  if (!matched) throw WorldAborted("minimpi: world aborted while blocked in recv");
  return msg;
}

Mailbox::PopStatus Mailbox::pop_for(int src, int tag, double timeout_seconds, Message* out,
                                    double* wait_seconds) {
  std::unique_lock lock(mutex_);
  bool matched = false;
  util::Timer waited;
  cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds), [&] {
    if (poisoned_) return true;
    flush_deferred_locked();
    matched = match_locked(src, tag, out);
    return matched;
  });
  if (wait_seconds) *wait_seconds += waited.elapsed();
  if (matched) return PopStatus::Ok;
  return poisoned_ ? PopStatus::Poisoned : PopStatus::Timeout;
}

bool Mailbox::try_pop(int src, int tag, Message* out) {
  std::scoped_lock lock(mutex_);
  if (poisoned_) throw WorldAborted("minimpi: world aborted");
  flush_deferred_locked();
  return match_locked(src, tag, out);
}

void Mailbox::poison() {
  {
    std::scoped_lock lock(mutex_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

bool Mailbox::poisoned() {
  std::scoped_lock lock(mutex_);
  return poisoned_;
}

namespace {

/// RAII registration of a blocked op in the watchdog slot for this thread's
/// world rank. No-op outside World::run or when the world has no slots.
class BlockedScope {
 public:
  BlockedScope(CommState* state, int kind, int peer, int tag) {
    slot_ = state->slot_for(current_world_rank());
    if (!slot_) return;
    slot_->peer.store(peer, std::memory_order_relaxed);
    slot_->tag.store(tag, std::memory_order_relaxed);
    slot_->since_ns.store(now_ns(), std::memory_order_relaxed);
    slot_->active.store(kind, std::memory_order_release);
  }
  ~BlockedScope() {
    if (slot_) slot_->active.store(0, std::memory_order_release);
  }
  BlockedScope(const BlockedScope&) = delete;
  BlockedScope& operator=(const BlockedScope&) = delete;

 private:
  BlockedSlot* slot_ = nullptr;
};

}  // namespace

}  // namespace detail

std::string StallReport::to_string() const {
  std::string out = util::fmt("minimpi: world stalled (no progress, stall_timeout {}s); {} rank(s) blocked:",
                              stall_timeout, blocked.size());
  for (const auto& b : blocked) {
    out += util::fmt("\n  rank {} blocked in {} (peer {}, tag {}) for {}s after {} completed ops",
                     b.rank, b.op, b.peer, b.tag, b.seconds, b.op_index);
  }
  out += util::fmt("\n  traffic at stall: {} msgs, {} bytes, {} send retries", traffic.messages,
                   traffic.bytes, traffic.send_retries);
  return out;
}

WorldStalled::WorldStalled(StallReport report)
    : std::runtime_error(report.to_string()), report_(std::move(report)) {}

int Comm::size() const { return state_ ? state_->size : 0; }

bool Comm::aborted() const {
  if (!state_) return false;
  return state_->root_state()->poisoned.load(std::memory_order_relaxed);
}

BufferPool& Comm::world_pool() const { return *state_->root_state()->buffer_pool; }

Buffer Comm::lease(std::size_t nbytes) { return world_pool().lease(nbytes); }

PoolStats Comm::pool_stats() const { return world_pool().stats(); }

void Comm::send_message(Buffer&& payload, int dst, int tag) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("minimpi::send: bad destination rank");
  detail::CommState* root = state_->root_state();
  const int wrank = detail::current_world_rank();

  // Consult the fault plan once per send op (retries reuse this decision so
  // they do not perturb the random stream). May throw RankKilled.
  FaultPlan::SendDecision fault;
  if (wrank >= 0 && root->opts.fault) fault = root->opts.fault->on_send(wrank, dst, tag);

  detail::Message msg;
  msg.src = rank_;
  msg.tag = tag;
  // Sequence assigned exactly once, before the retry loop: a retransmission
  // carries the original seq, so per-(src, tag) FIFO survives drop+retry.
  msg.seq = state_->send_seq[static_cast<std::size_t>(rank_)].fetch_add(
                1, std::memory_order_relaxed) + 1;
  msg.payload = std::move(payload);
  const auto r = static_cast<std::size_t>(rank_);
  state_->rank_messages[r].fetch_add(1, std::memory_order_relaxed);
  state_->rank_bytes[r].fetch_add(msg.payload.size(), std::memory_order_relaxed);

  if (fault.kind == FaultKind::Delay) detail::sleep_seconds(fault.delay_seconds);

  // Transient-fault retry loop: each failed delivery attempt is metered and
  // backed off; exhausting the budget surfaces a structured error instead of
  // silently losing the message.
  const int max_attempts = std::max(1, root->opts.max_send_attempts);
  int failed = 0;
  while (failed < fault.fail_attempts) {
    ++failed;
    state_->rank_retries[r].fetch_add(1, std::memory_order_relaxed);
    if (failed >= max_attempts) {
      throw TransientSendError(
          util::fmt("minimpi: rank {} send to {} (tag {}) failed {} delivery attempts", rank_,
                    dst, tag, failed),
          rank_, dst, tag, failed);
    }
    detail::sleep_seconds(root->opts.send_backoff);
  }

  auto& box = *state_->mailboxes[static_cast<std::size_t>(dst)];
  if (fault.kind == FaultKind::Duplicate) {
    // The one copying path in the transport: a duplicate genuinely needs a
    // second payload in flight. The clone is unpooled and carries the same
    // seq, so (a) the dedup watermark suppresses whichever arrives second
    // and (b) recycling the original's slab can never corrupt the duplicate.
    detail::Message dup;
    dup.src = msg.src;
    dup.tag = msg.tag;
    dup.seq = msg.seq;
    dup.payload = msg.payload.clone();
    world_pool().note_dup_copy();
    box.push(std::move(dup), /*defer=*/false);
  }
  box.push(std::move(msg), /*defer=*/fault.kind == FaultKind::Reorder);
  state_->note_progress(wrank);
}

void Comm::send_bytes(std::span<const std::byte> data, int dst, int tag) {
  // Legacy byte-vector path: one payload copy into an adopted (unpooled)
  // buffer, then the common zero-copy delivery path.
  send_message(Buffer::adopt(std::vector<std::byte>(data.begin(), data.end())), dst, tag);
}

void Comm::send_owned(Buffer&& payload, int dst, int tag) {
  world_pool().note_zero_copy(payload.size());
  send_message(std::move(payload), dst, tag);
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag, int* actual_src) {
  return std::move(recv_owned(src, tag, actual_src)).release();
}

Buffer Comm::recv_owned(int src, int tag, int* actual_src) {
  detail::CommState* root = state_->root_state();
  const int wrank = detail::current_world_rank();
  if (wrank >= 0 && root->opts.fault) root->opts.fault->on_op(wrank, src, tag);

  detail::BlockedScope blocked(state_.get(), /*kind=*/1, src, tag);
  auto& box = *state_->mailboxes[static_cast<std::size_t>(rank_)];
  double waited = 0.0;
  detail::Message msg;
  const double timeout = root->opts.recv_timeout;
  if (timeout > 0.0) {
    const int rounds = 1 + std::max(0, root->opts.recv_retries);
    bool got = false;
    for (int round = 0; round < rounds && !got; ++round) {
      switch (box.pop_for(src, tag, timeout, &msg, &waited)) {
        case detail::Mailbox::PopStatus::Ok:
          got = true;
          break;
        case detail::Mailbox::PopStatus::Poisoned:
          throw WorldAborted("minimpi: world aborted while blocked in recv");
        case detail::Mailbox::PopStatus::Timeout:
          if (round + 1 < rounds) {
            util::warn("minimpi: rank {} recv (src {}, tag {}) timed out after {}s, retry {}/{}",
                       rank_, src, tag, timeout, round + 1, rounds - 1);
          }
          break;
      }
    }
    if (!got) {
      throw RecvTimeout(util::fmt("minimpi: rank {} recv from src {} (tag {}) timed out after {}s ({} round(s))",
                                  rank_, src, tag, waited, rounds),
                        rank_, src, tag, waited);
    }
  } else {
    msg = box.pop(src, tag, &waited);
  }
  if (waited > 0.0) {
    state_->rank_wait[static_cast<std::size_t>(rank_)].fetch_add(waited,
                                                                 std::memory_order_relaxed);
    // Feed the trace from the mailbox wait metering: one span per blocked
    // receive, skipping instant matches (sub-microsecond "waits" are noise).
    if (waited > 1e-6 && trace::enabled()) {
      const auto dur = static_cast<std::int64_t>(waited * 1e9);
      trace::complete("mpi:recv_wait", trace::now_ns() - dur, dur,
                      {{"src", static_cast<double>(src)}, {"tag", static_cast<double>(tag)}});
    }
  }
  state_->note_progress(wrank);
  if (actual_src) *actual_src = msg.src;
  return std::move(msg.payload);
}

bool Comm::try_recv_bytes(int src, int tag, std::vector<std::byte>* out, int* actual_src) {
  detail::Message msg;
  if (!state_->mailboxes[static_cast<std::size_t>(rank_)]->try_pop(src, tag, &msg)) return false;
  if (actual_src) *actual_src = msg.src;
  *out = std::move(msg.payload).release();
  return true;
}

Comm::Request Comm::isend_bytes(std::span<const std::byte> data, int dst, int tag) {
  send_bytes(data, dst, tag);  // buffered send: completes immediately
  Request req;
  req.comm_ = *this;
  req.done_ = true;
  return req;
}

Comm::Request Comm::irecv_bytes(int src, int tag) {
  Request req;
  req.comm_ = *this;
  req.is_recv_ = true;
  req.src_ = src;
  req.tag_ = tag;
  return req;
}

std::vector<std::byte> Comm::Request::wait() {
  // A poisoned world invalidates in-flight requests — even already-buffered
  // ones — so wait() never blocks forever and never hands out data from an
  // aborted computation.
  if (comm_.valid() && comm_.aborted()) {
    throw WorldAborted("minimpi: world aborted before Request::wait completed");
  }
  if (done_) return std::move(payload_);
  done_ = true;
  if (is_recv_) payload_ = comm_.recv_bytes(src_, tag_, &completed_src_);
  return std::move(payload_);
}

void Comm::barrier() {
  auto& st = *state_;
  detail::CommState* root = st.root_state();
  const int wrank = detail::current_world_rank();
  if (wrank >= 0 && root->opts.fault) root->opts.fault->on_op(wrank, kAnySource, 0);

  detail::BlockedScope blocked(state_.get(), /*kind=*/2, kAnySource, 0);
  std::unique_lock lock(st.barrier_mutex);
  if (st.poisoned.load(std::memory_order_relaxed)) {
    throw WorldAborted("minimpi: world aborted at barrier");
  }
  const std::uint64_t gen = st.barrier_generation;
  if (++st.barrier_arrived == st.size) {
    st.barrier_arrived = 0;
    ++st.barrier_generation;
    st.barrier_cv.notify_all();
  } else {
    util::Timer waited;
    st.barrier_cv.wait(lock, [&] {
      return st.barrier_generation != gen || st.poisoned.load(std::memory_order_relaxed);
    });
    const double waited_s = waited.elapsed();
    st.rank_wait[static_cast<std::size_t>(rank_)].fetch_add(waited_s,
                                                            std::memory_order_relaxed);
    if (waited_s > 1e-6 && trace::enabled()) {
      const auto dur = static_cast<std::int64_t>(waited_s * 1e9);
      trace::complete("mpi:barrier_wait", trace::now_ns() - dur, dur);
    }
    if (st.barrier_generation == gen) {
      // Woken by poison, not by barrier completion: a peer died while we
      // waited (this wake previously did not exist — the seed deadlocked).
      throw WorldAborted("minimpi: world aborted while blocked in barrier");
    }
  }
  lock.unlock();
  state_->note_progress(wrank);
}

std::vector<std::byte> Comm::bcast_bytes(std::span<const std::byte> data, int root) {
  // Span-in so non-roots stage nothing: only the root's bytes are read
  // (non-roots used to pay a full staging copy just to have it overwritten).
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      send_bytes(data, r, kTagBcast);
    }
    return {data.begin(), data.end()};
  }
  return recv_bytes(root, kTagBcast);
}

Comm Comm::split(int color, int key) {
  // Exchange (color, key, parent rank) among all parent ranks.
  struct Entry {
    int color, key, parent_rank;
  };
  const Entry mine{color, key, rank_};
  const auto all = allgather_value(mine);

  const std::uint64_t epoch =
      state_->split_seq[static_cast<std::size_t>(rank_)].fetch_add(1, std::memory_order_relaxed);
  if (color < 0) return Comm{};  // MPI_UNDEFINED

  std::vector<Entry> members;
  for (const auto& e : all) {
    if (e.color == color) members.push_back(e);
  }
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.parent_rank) < std::tie(b.key, b.parent_rank);
  });
  int child_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].parent_rank == rank_) child_rank = static_cast<int>(i);
  }

  // Rendezvous on the shared child state; the last member to pick it up
  // retires the entry.
  std::shared_ptr<detail::CommState> child;
  {
    std::unique_lock lock(state_->split_mutex);
    const auto it_key = std::make_pair(epoch, color);
    auto it = state_->split_children.find(it_key);
    if (it == state_->split_children.end()) {
      detail::CommState::SplitChild sc{
          std::make_shared<detail::CommState>(static_cast<int>(members.size())),
          static_cast<int>(members.size())};
      it = state_->split_children.emplace(it_key, std::move(sc)).first;
      lock.unlock();
      state_->register_child(it->second.state);
      state_->split_cv.notify_all();
      lock.lock();
    }
    child = it->second.state;
    if (--it->second.remaining == 0) state_->split_children.erase(it);
  }
  return Comm{std::move(child), child_rank};
}

TrafficStats Comm::traffic() const {
  TrafficStats out;
  const auto n = static_cast<std::size_t>(size());
  out.rank_messages.resize(n);
  out.rank_bytes.resize(n);
  out.rank_retries.resize(n);
  out.rank_wait.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    out.rank_messages[r] = state_->rank_messages[r].load(std::memory_order_relaxed);
    out.rank_bytes[r] = state_->rank_bytes[r].load(std::memory_order_relaxed);
    out.rank_retries[r] = state_->rank_retries[r].load(std::memory_order_relaxed);
    out.rank_wait[r] = state_->rank_wait[r].load(std::memory_order_relaxed);
    out.messages += out.rank_messages[r];
    out.bytes += out.rank_bytes[r];
    out.send_retries += out.rank_retries[r];
    out.total_rank_wait += out.rank_wait[r];
    out.max_rank_wait = std::max(out.max_rank_wait, out.rank_wait[r]);
  }
  return out;
}

void Comm::reset_traffic() {
  const auto n = static_cast<std::size_t>(size());
  for (std::size_t r = 0; r < n; ++r) {
    state_->rank_messages[r].store(0, std::memory_order_relaxed);
    state_->rank_bytes[r].store(0, std::memory_order_relaxed);
    state_->rank_retries[r].store(0, std::memory_order_relaxed);
    state_->rank_wait[r].store(0.0, std::memory_order_relaxed);
  }
}

WorldOptions World::options_from_env() {
  WorldOptions opts;
  const util::EnvConfig env = util::env_config();
  FaultConfig cfg = FaultConfig::from_env();
  if (cfg.enabled()) opts.fault = std::make_shared<FaultPlan>(std::move(cfg));
  if (env.recv_timeout) opts.recv_timeout = *env.recv_timeout;
  if (env.recv_retries) opts.recv_retries = *env.recv_retries;
  if (env.stall_timeout) opts.stall_timeout = *env.stall_timeout;
  return opts;
}

void World::run(int nranks, const std::function<void(Comm&)>& fn) {
  run(nranks, fn, options_from_env());
}

void World::run(int nranks, const std::function<void(Comm&)>& fn, const WorldOptions& opts) {
  if (nranks <= 0) throw std::invalid_argument("minimpi::World: nranks must be positive");
  auto state = detail::make_world_state(nranks, opts);

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::atomic<bool> done{false};

  // Progress watchdog: converts a silent deadlock into a structured
  // WorldStalled diagnosis. A stall is declared only when some rank has been
  // blocked beyond stall_timeout AND the world-wide op counter has not moved
  // between two samples — a slow-but-progressing world is left alone.
  std::thread watchdog;
  if (opts.stall_timeout > 0.0) {
    watchdog = std::thread([&, state, nranks] {
      const double interval = std::clamp(opts.stall_timeout / 8.0, 1e-3, 0.1);
      std::uint64_t last_ops = ~std::uint64_t{0};
      while (!done.load(std::memory_order_relaxed)) {
        detail::sleep_seconds(interval);
        if (done.load(std::memory_order_relaxed)) return;
        const std::uint64_t ops_now = state->ops_total.load(std::memory_order_relaxed);
        const bool progressed = ops_now != last_ops;
        last_ops = ops_now;
        if (progressed) continue;
        const std::int64_t now = detail::now_ns();
        std::vector<StallReport::BlockedOp> stuck;
        for (int r = 0; r < nranks; ++r) {
          auto& slot = *state->slots[static_cast<std::size_t>(r)];
          const int active = slot.active.load(std::memory_order_acquire);
          if (active == 0) continue;
          const double age =
              static_cast<double>(now - slot.since_ns.load(std::memory_order_relaxed)) * 1e-9;
          if (age < opts.stall_timeout) continue;
          stuck.push_back({r, active == 2 ? "barrier" : "recv",
                           slot.peer.load(std::memory_order_relaxed),
                           slot.tag.load(std::memory_order_relaxed), age,
                           slot.ops.load(std::memory_order_relaxed)});
        }
        if (stuck.empty()) continue;
        StallReport report;
        report.stall_timeout = opts.stall_timeout;
        report.blocked = std::move(stuck);
        report.traffic = Comm{state, 0}.traffic();
        util::error("{}", report.to_string());
        {
          std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::make_exception_ptr(WorldStalled(std::move(report)));
        }
        state->poison_world();
        return;
      }
    });
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      detail::t_world_rank = r;
      trace::set_track(r);  // one trace track per rank
      Comm comm{state, r};
      try {
        fn(comm);
      } catch (...) {
        {
          std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        state->poison_world();
      }
      detail::t_world_rank = -1;
    });
  }
  for (auto& t : threads) t.join();
  done.store(true, std::memory_order_relaxed);
  if (watchdog.joinable()) watchdog.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vcgt::minimpi
