#include "src/minimpi/minimpi.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/util/timer.hpp"

namespace vcgt::minimpi {

namespace detail {

void Mailbox::push(Message msg) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

bool Mailbox::match_locked(int src, int tag, Message* out) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((src == kAnySource || it->src == src) && it->tag == tag) {
      *out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

Message Mailbox::pop(int src, int tag, double* wait_seconds) {
  std::unique_lock lock(mutex_);
  Message msg;
  if (match_locked(src, tag, &msg)) return msg;
  util::Timer waited;
  bool matched = false;
  cv_.wait(lock, [&] {
    matched = match_locked(src, tag, &msg);
    return matched || poisoned_;
  });
  if (wait_seconds) *wait_seconds += waited.elapsed();
  if (!matched) throw WorldAborted("minimpi: world aborted while blocked in recv");
  return msg;
}

bool Mailbox::try_pop(int src, int tag, Message* out) {
  std::scoped_lock lock(mutex_);
  return match_locked(src, tag, out);
}

void Mailbox::poison() {
  {
    std::scoped_lock lock(mutex_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

/// Shared state of one communicator: mailboxes, barrier, split rendezvous,
/// traffic meters. Ranks hold it via shared_ptr; child comms register with
/// the root state so poisoning reaches every mailbox in the world.
struct CommState {
  explicit CommState(int n)
      : size(n),
        mailboxes(static_cast<std::size_t>(n)),
        rank_messages(static_cast<std::size_t>(n)),
        rank_bytes(static_cast<std::size_t>(n)),
        rank_wait(static_cast<std::size_t>(n)) {
    for (auto& box : mailboxes) box = std::make_unique<Mailbox>();
    for (auto& c : rank_messages) c.store(0, std::memory_order_relaxed);
    for (auto& c : rank_bytes) c.store(0, std::memory_order_relaxed);
    for (auto& c : rank_wait) c.store(0.0, std::memory_order_relaxed);
  }

  int size;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;

  // Barrier (generation counting).
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_arrived = 0;
  std::uint64_t barrier_generation = 0;

  // Split rendezvous: first member of a (epoch, color) group creates the
  // child state, the rest pick it up.
  std::mutex split_mutex;
  std::condition_variable split_cv;
  std::map<std::pair<std::uint64_t, int>, std::shared_ptr<CommState>> split_children;

  // Traffic meters (atomic so traffic() may be sampled concurrently).
  std::vector<std::atomic<std::uint64_t>> rank_messages;
  std::vector<std::atomic<std::uint64_t>> rank_bytes;
  std::vector<std::atomic<double>> rank_wait;

  // Poison propagation: the world-root state tracks every descendant.
  CommState* root = nullptr;  // null for the root itself
  std::mutex registry_mutex;  // root only
  std::vector<std::weak_ptr<CommState>> registry;  // root only

  void register_child(const std::shared_ptr<CommState>& child) {
    CommState* r = root ? root : this;
    child->root = r;
    std::scoped_lock lock(r->registry_mutex);
    r->registry.push_back(child);
  }

  void poison_world() {
    CommState* r = root ? root : this;
    for (auto& box : r->mailboxes) box->poison();
    std::scoped_lock lock(r->registry_mutex);
    for (auto& weak : r->registry) {
      if (auto child = weak.lock()) {
        for (auto& box : child->mailboxes) box->poison();
      }
    }
  }
};

}  // namespace detail

int Comm::size() const { return state_ ? state_->size : 0; }

void Comm::send_bytes(std::span<const std::byte> data, int dst, int tag) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("minimpi::send: bad destination rank");
  detail::Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.payload.assign(data.begin(), data.end());
  const auto r = static_cast<std::size_t>(rank_);
  state_->rank_messages[r].fetch_add(1, std::memory_order_relaxed);
  state_->rank_bytes[r].fetch_add(data.size(), std::memory_order_relaxed);
  state_->mailboxes[static_cast<std::size_t>(dst)]->push(std::move(msg));
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag, int* actual_src) {
  double waited = 0.0;
  auto msg = state_->mailboxes[static_cast<std::size_t>(rank_)]->pop(src, tag, &waited);
  if (waited > 0.0) {
    state_->rank_wait[static_cast<std::size_t>(rank_)].fetch_add(waited,
                                                                 std::memory_order_relaxed);
  }
  if (actual_src) *actual_src = msg.src;
  return std::move(msg.payload);
}

bool Comm::try_recv_bytes(int src, int tag, std::vector<std::byte>* out, int* actual_src) {
  detail::Message msg;
  if (!state_->mailboxes[static_cast<std::size_t>(rank_)]->try_pop(src, tag, &msg)) return false;
  if (actual_src) *actual_src = msg.src;
  *out = std::move(msg.payload);
  return true;
}

Comm::Request Comm::isend_bytes(std::span<const std::byte> data, int dst, int tag) {
  send_bytes(data, dst, tag);  // buffered send: completes immediately
  Request req;
  req.comm_ = *this;
  req.done_ = true;
  return req;
}

Comm::Request Comm::irecv_bytes(int src, int tag) {
  Request req;
  req.comm_ = *this;
  req.is_recv_ = true;
  req.src_ = src;
  req.tag_ = tag;
  return req;
}

std::vector<std::byte> Comm::Request::wait() {
  if (done_) return std::move(payload_);
  done_ = true;
  if (is_recv_) payload_ = comm_.recv_bytes(src_, tag_, &completed_src_);
  return std::move(payload_);
}

void Comm::barrier() {
  auto& st = *state_;
  std::unique_lock lock(st.barrier_mutex);
  const std::uint64_t gen = st.barrier_generation;
  if (++st.barrier_arrived == st.size) {
    st.barrier_arrived = 0;
    ++st.barrier_generation;
    st.barrier_cv.notify_all();
  } else {
    util::Timer waited;
    st.barrier_cv.wait(lock, [&] { return st.barrier_generation != gen; });
    st.rank_wait[static_cast<std::size_t>(rank_)].fetch_add(waited.elapsed(),
                                                            std::memory_order_relaxed);
  }
}

std::vector<std::byte> Comm::bcast_bytes(std::vector<std::byte> data, int root) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      send_bytes(data, r, kTagBcast);
    }
    return data;
  }
  return recv_bytes(root, kTagBcast);
}

Comm Comm::split(int color, int key) {
  // Exchange (color, key, parent rank) among all parent ranks.
  struct Entry {
    int color, key, parent_rank;
  };
  const Entry mine{color, key, rank_};
  const auto all = allgather_value(mine);

  const std::uint64_t epoch = split_epoch_++;
  if (color < 0) return Comm{};  // MPI_UNDEFINED

  std::vector<Entry> members;
  for (const auto& e : all) {
    if (e.color == color) members.push_back(e);
  }
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.parent_rank) < std::tie(b.key, b.parent_rank);
  });
  int child_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].parent_rank == rank_) child_rank = static_cast<int>(i);
  }

  // Rendezvous on the shared child state.
  std::shared_ptr<detail::CommState> child;
  {
    std::unique_lock lock(state_->split_mutex);
    const auto it_key = std::make_pair(epoch, color);
    auto it = state_->split_children.find(it_key);
    if (it == state_->split_children.end()) {
      child = std::make_shared<detail::CommState>(static_cast<int>(members.size()));
      state_->split_children.emplace(it_key, child);
      lock.unlock();
      state_->register_child(child);
      state_->split_cv.notify_all();
    } else {
      child = it->second;
    }
  }
  return Comm{std::move(child), child_rank};
}

TrafficStats Comm::traffic() const {
  TrafficStats out;
  const auto n = static_cast<std::size_t>(size());
  out.rank_messages.resize(n);
  out.rank_bytes.resize(n);
  out.rank_wait.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    out.rank_messages[r] = state_->rank_messages[r].load(std::memory_order_relaxed);
    out.rank_bytes[r] = state_->rank_bytes[r].load(std::memory_order_relaxed);
    out.rank_wait[r] = state_->rank_wait[r].load(std::memory_order_relaxed);
    out.messages += out.rank_messages[r];
    out.bytes += out.rank_bytes[r];
    out.total_rank_wait += out.rank_wait[r];
    out.max_rank_wait = std::max(out.max_rank_wait, out.rank_wait[r]);
  }
  return out;
}

void Comm::reset_traffic() {
  const auto n = static_cast<std::size_t>(size());
  for (std::size_t r = 0; r < n; ++r) {
    state_->rank_messages[r].store(0, std::memory_order_relaxed);
    state_->rank_bytes[r].store(0, std::memory_order_relaxed);
    state_->rank_wait[r].store(0.0, std::memory_order_relaxed);
  }
}

void World::run(int nranks, const std::function<void(Comm&)>& fn) {
  if (nranks <= 0) throw std::invalid_argument("minimpi::World: nranks must be positive");
  auto state = std::make_shared<detail::CommState>(nranks);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm{state, r};
      try {
        fn(comm);
      } catch (...) {
        {
          std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        state->poison_world();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vcgt::minimpi
