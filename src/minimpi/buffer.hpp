#pragma once
// minimpi::Buffer / minimpi::BufferPool — pooled message payloads for the
// zero-copy transport.
//
// Ranks are threads in one address space, so a message payload never needs to
// cross a memory boundary: a sender leases a Buffer from the per-world pool,
// packs into it, and send_owned() moves the slab into the receiver's mailbox.
// recv_owned() hands the same slab to the receiver; dropping the Buffer
// returns the slab to the pool's freelist, so steady-state traffic performs
// zero per-message heap allocations and zero payload copies. Only the
// Duplicate fault-injection path — which genuinely needs a second payload in
// flight — pays a copy (an unpooled clone, so a recycled slab can never
// corrupt an in-flight duplicate).
//
// Ownership/lifetime contract (DESIGN.md §14):
//   - A Buffer owns its slab exclusively from lease() until it is destroyed,
//     released, or moved into send_owned().
//   - send_owned(std::move(b)) transfers ownership to the transport; the
//     receiver's recv_owned() re-acquires it. The sender must not touch the
//     slab after the call (under VCGT_ASAN a recycled slab is poisoned, so a
//     use-after-send that races a recycle becomes a hard ASan report).
//   - release() steals the underlying vector out of the pool ("escape"):
//     the legacy byte-vector API (recv_bytes) is implemented this way, so
//     mixed pooled/legacy traffic is correct but forfeits recycling.
//   - The pool is grow-only: slabs are bucketed by power-of-two capacity
//     class and never shrink or free until the pool itself dies. Worlds die
//     with their pool; Buffers keep the pool alive via shared_ptr, so a
//     payload that outlives its world (worker-pool rebuild) stays valid.
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#if defined(VCGT_ASAN)
#include <sanitizer/asan_interface.h>
#define VCGT_POOL_POISON(ptr, n) ASAN_POISON_MEMORY_REGION((ptr), (n))
#define VCGT_POOL_UNPOISON(ptr, n) ASAN_UNPOISON_MEMORY_REGION((ptr), (n))
#else
#define VCGT_POOL_POISON(ptr, n) ((void)(ptr), (void)(n))
#define VCGT_POOL_UNPOISON(ptr, n) ((void)(ptr), (void)(n))
#endif

namespace vcgt::minimpi {

class BufferPool;

/// Pool counters, sampled atomically (relaxed) via BufferPool::stats().
/// `copies_avoided`/`bytes_zero_copied` are transport-level: one per
/// send_owned() message that moved its payload instead of copying it.
struct PoolStats {
  std::uint64_t leases = 0;        ///< lease() calls served
  std::uint64_t slab_allocs = 0;   ///< leases that allocated a fresh slab (freelist miss)
  std::uint64_t recycles = 0;      ///< slabs returned to the freelist
  std::uint64_t escaped = 0;       ///< slabs stolen out of the pool via release()
  std::uint64_t dup_copies = 0;    ///< Duplicate-fault payload clones (the only copying path)
  std::uint64_t bytes_leased = 0;  ///< payload bytes over all leases
  std::uint64_t copies_avoided = 0;     ///< send_owned messages moved with no copy
  std::uint64_t bytes_zero_copied = 0;  ///< payload bytes of those messages
  std::uint64_t live = 0;          ///< currently leased (not yet recycled/escaped)
};

/// A message payload slab, leased from a BufferPool (or adopted unpooled).
/// Move-only; the destructor returns a pooled slab to its freelist.
class Buffer {
 public:
  Buffer() = default;
  Buffer(Buffer&& other) noexcept
      : v_(std::move(other.v_)), pool_(std::move(other.pool_)), fresh_(other.fresh_) {
    other.fresh_ = false;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      reset();
      v_ = std::move(other.v_);
      pool_ = std::move(other.pool_);
      fresh_ = other.fresh_;
      other.fresh_ = false;
    }
    return *this;
  }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  ~Buffer() { reset(); }

  [[nodiscard]] std::byte* data() { return v_.data(); }
  [[nodiscard]] const std::byte* data() const { return v_.data(); }
  [[nodiscard]] std::size_t size() const { return v_.size(); }
  [[nodiscard]] bool empty() const { return v_.empty(); }
  [[nodiscard]] std::span<std::byte> span() { return {v_.data(), v_.size()}; }
  [[nodiscard]] std::span<const std::byte> span() const { return {v_.data(), v_.size()}; }

  /// Leased from a pool (destructor recycles)? False for adopted buffers.
  [[nodiscard]] bool pooled() const { return pool_ != nullptr; }
  /// Did this lease allocate a fresh slab (freelist miss)? Steady-state
  /// traffic must see fresh() == false; callers meter warm-up growth by it.
  [[nodiscard]] bool fresh() const { return fresh_; }

  /// Wraps an ordinary byte vector as an unpooled Buffer (no recycling).
  static Buffer adopt(std::vector<std::byte> v) {
    Buffer b;
    b.v_ = std::move(v);
    return b;
  }

  /// Steals the underlying vector. A pooled slab escapes the pool for good
  /// (metered); the Buffer is empty afterwards.
  [[nodiscard]] std::vector<std::byte> release() &&;

  /// Unpooled deep copy, for fault paths that need a second payload in
  /// flight (Duplicate). Never shares the slab: recycling the original
  /// cannot corrupt the clone.
  [[nodiscard]] Buffer clone() const {
    return adopt(std::vector<std::byte>(v_.begin(), v_.end()));
  }

 private:
  friend class BufferPool;
  void reset();

  std::vector<std::byte> v_;
  std::shared_ptr<BufferPool> pool_;
  bool fresh_ = false;
};

/// Per-world slab allocator: freelists bucketed by power-of-two capacity
/// class, grow-only (slabs recycle forever, never shrink). Thread-safe —
/// every rank thread of a world leases from the same pool. Held via
/// shared_ptr so in-flight Buffers keep it alive past world teardown.
class BufferPool : public std::enable_shared_from_this<BufferPool> {
 public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Leases a buffer of exactly `nbytes`, reusing a freelist slab of a
  /// sufficient capacity class when one exists (no allocation), else
  /// allocating a fresh slab (Buffer::fresh() reports which).
  [[nodiscard]] Buffer lease(std::size_t nbytes);

  [[nodiscard]] PoolStats stats() const;

  /// Transport-level metering hooks (called by Comm::send_owned and the
  /// Duplicate fault path; here so the stats live with the pool).
  void note_zero_copy(std::size_t nbytes) {
    copies_avoided_.fetch_add(1, std::memory_order_relaxed);
    bytes_zero_copied_.fetch_add(nbytes, std::memory_order_relaxed);
  }
  void note_dup_copy() { dup_copies_.fetch_add(1, std::memory_order_relaxed); }

 private:
  friend class Buffer;
  static constexpr std::size_t kMinClassLog2 = 6;  ///< smallest slab: 64 B
  static constexpr std::size_t kClasses = 48;

  static std::size_t class_for_size(std::size_t nbytes);
  static std::size_t class_for_capacity(std::size_t capacity);

  void recycle(std::vector<std::byte>&& slab);
  void note_escape();

  mutable std::mutex mutex_;
  std::array<std::vector<std::vector<std::byte>>, kClasses> free_;

  std::atomic<std::uint64_t> leases_{0};
  std::atomic<std::uint64_t> slab_allocs_{0};
  std::atomic<std::uint64_t> recycles_{0};
  std::atomic<std::uint64_t> escaped_{0};
  std::atomic<std::uint64_t> dup_copies_{0};
  std::atomic<std::uint64_t> bytes_leased_{0};
  std::atomic<std::uint64_t> copies_avoided_{0};
  std::atomic<std::uint64_t> bytes_zero_copied_{0};
  std::atomic<std::uint64_t> live_{0};
};

}  // namespace vcgt::minimpi
