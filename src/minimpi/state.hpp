#pragma once
// Internal shared state of a communicator world. Split out of minimpi.cpp so
// WorkerPool (pool.cpp) can build and recycle worlds with the same state
// machinery World::run uses; not part of the public minimpi API.
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/minimpi/fault.hpp"
#include "src/minimpi/minimpi.hpp"

namespace vcgt::minimpi::detail {

/// World rank of the current rank-thread; definition in minimpi.cpp.
extern thread_local int t_world_rank;

std::int64_t now_ns();
void sleep_seconds(double s);

/// Per-world-rank blocked-op slot sampled by the progress watchdog. Written
/// only by the owning rank thread; all fields atomic so the watchdog can read
/// a consistent-enough snapshot without locks.
struct BlockedSlot {
  std::atomic<int> active{0};  ///< 0 idle, 1 recv, 2 barrier
  std::atomic<int> peer{kAnySource};
  std::atomic<int> tag{0};
  std::atomic<std::int64_t> since_ns{0};
  std::atomic<std::uint64_t> ops{0};  ///< completed comm ops on this rank
};

/// Shared state of one communicator: mailboxes, barrier, split rendezvous,
/// traffic meters. Ranks hold it via shared_ptr; child comms register with
/// the root state so poisoning reaches every mailbox in the world. The root
/// state additionally owns the WorldOptions and the watchdog's slots.
struct CommState {
  explicit CommState(int n)
      : size(n),
        mailboxes(static_cast<std::size_t>(n)),
        send_seq(static_cast<std::size_t>(n)),
        split_seq(static_cast<std::size_t>(n)),
        rank_messages(static_cast<std::size_t>(n)),
        rank_bytes(static_cast<std::size_t>(n)),
        rank_retries(static_cast<std::size_t>(n)),
        rank_wait(static_cast<std::size_t>(n)) {
    for (auto& box : mailboxes) box = std::make_unique<Mailbox>();
    for (auto& c : send_seq) c.store(0, std::memory_order_relaxed);
    for (auto& c : split_seq) c.store(0, std::memory_order_relaxed);
    for (auto& c : rank_messages) c.store(0, std::memory_order_relaxed);
    for (auto& c : rank_bytes) c.store(0, std::memory_order_relaxed);
    for (auto& c : rank_retries) c.store(0, std::memory_order_relaxed);
    for (auto& c : rank_wait) c.store(0.0, std::memory_order_relaxed);
  }

  int size;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  /// Per-source send sequence counters (assigned once per message, before any
  /// retry, so retransmissions are idempotent under the mailbox watermark).
  std::vector<std::atomic<std::uint64_t>> send_seq;

  // Barrier (generation counting). `poisoned` is flipped under barrier_mutex
  // so a poison-wake is never lost by a rank entering the wait.
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_arrived = 0;
  std::uint64_t barrier_generation = 0;
  std::atomic<bool> poisoned{false};

  // Split rendezvous: first member of a (epoch, color) group creates the
  // child state, the rest pick it up; the entry is dropped once the last
  // member has, so a long-lived world (serve's worker pools) doesn't pin
  // every child state it ever created. The epoch counters live here — per
  // rank, not per Comm object — so a *fresh* Comm handed out for a new job
  // on a reused world continues the sequence instead of restarting at 0 and
  // colliding with a previous job's rendezvous keys.
  std::mutex split_mutex;
  std::condition_variable split_cv;
  std::vector<std::atomic<std::uint64_t>> split_seq;  ///< per parent rank
  struct SplitChild {
    std::shared_ptr<CommState> state;
    int remaining = 0;  ///< members yet to pick the child up
  };
  std::map<std::pair<std::uint64_t, int>, SplitChild> split_children;

  // Traffic meters (atomic so traffic() may be sampled concurrently).
  std::vector<std::atomic<std::uint64_t>> rank_messages;
  std::vector<std::atomic<std::uint64_t>> rank_bytes;
  std::vector<std::atomic<std::uint64_t>> rank_retries;
  std::vector<std::atomic<double>> rank_wait;

  // Poison propagation: the world-root state tracks every descendant.
  // Atomic: the split creator publishes the child before register_child
  // stores the root pointer, so peers may read it concurrently.
  std::atomic<CommState*> root{nullptr};  // null for the root itself
  std::mutex registry_mutex;  // root only
  std::vector<std::weak_ptr<CommState>> registry;  // root only

  // Root only: robustness options and the watchdog's per-world-rank slots.
  WorldOptions opts;
  std::vector<std::unique_ptr<BlockedSlot>> slots;
  std::atomic<std::uint64_t> ops_total{0};

  /// Per-world payload pool for the zero-copy transport (buffer.hpp). Every
  /// communicator in the world — root and split children — leases from the
  /// root state's pool, so slabs recycle across sub-communicators too.
  /// In-flight Buffers hold it via shared_ptr, surviving world teardown.
  std::shared_ptr<BufferPool> buffer_pool = std::make_shared<BufferPool>();

  CommState* root_state() {
    CommState* r = root.load(std::memory_order_acquire);
    return r ? r : this;
  }

  BlockedSlot* slot_for(int world_rank) {
    CommState* r = root_state();
    if (world_rank < 0 || world_rank >= static_cast<int>(r->slots.size())) return nullptr;
    return r->slots[static_cast<std::size_t>(world_rank)].get();
  }

  /// One comm op (send/recv/barrier) completed on `world_rank`: the signal
  /// the watchdog distinguishes "slow" from "stalled" by.
  void note_progress(int world_rank) {
    CommState* r = root_state();
    if (BlockedSlot* s = slot_for(world_rank)) s->ops.fetch_add(1, std::memory_order_relaxed);
    r->ops_total.fetch_add(1, std::memory_order_relaxed);
  }

  void poison_state(CommState& s) {
    {
      std::scoped_lock lock(s.barrier_mutex);
      s.poisoned.store(true, std::memory_order_relaxed);
    }
    s.barrier_cv.notify_all();
    for (auto& box : s.mailboxes) box->poison();
  }

  void register_child(const std::shared_ptr<CommState>& child) {
    CommState* r = root_state();
    child->root.store(r, std::memory_order_release);
    {
      std::scoped_lock lock(r->registry_mutex);
      // Prune retired children so a persistent world (serve worker pools)
      // doesn't grow its registry without bound across jobs.
      std::erase_if(r->registry, [](const std::weak_ptr<CommState>& w) { return w.expired(); });
      r->registry.push_back(child);
    }
    // A child created after the world died must be born poisoned, or its
    // ranks would block forever in a world nobody else inhabits.
    if (r->poisoned.load(std::memory_order_relaxed)) poison_state(*child);
  }

  void poison_world() {
    CommState* r = root_state();
    poison_state(*r);
    std::scoped_lock lock(r->registry_mutex);
    for (auto& weak : r->registry) {
      if (auto child = weak.lock()) poison_state(*child);
    }
  }
};

/// Builds a root world state the way World::run does: options applied,
/// fault plan sized, one watchdog slot per rank.
std::shared_ptr<CommState> make_world_state(int nranks, const WorldOptions& opts);

}  // namespace vcgt::minimpi::detail
