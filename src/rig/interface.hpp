#pragma once
// Sliding-plane interface surfaces. An interface couples the Outlet annulus
// of row k with the Inlet annulus of row k+1: the two surfaces are co-planar
// annuli whose meshes rotate relative to each other. Each side is extracted
// into a flat (r, theta) quad list used by the JM76 donor search.
#include <algorithm>
#include <vector>

#include "src/rig/annulus.hpp"

namespace vcgt::rig {

/// One side of a sliding-plane interface (either the upstream row's outlet
/// or the downstream row's inlet), in cylindrical interface coordinates.
struct InterfaceSide {
  /// Group-relative face index (== the op2 group-set global id); arrays
  /// below are indexed in the same order, so bfaces[i] == i by construction.
  std::vector<index_t> bfaces;
  std::vector<double> rtheta;   ///< 2 per face: quad center (r, theta in [0,2pi))
  /// 4 per face: r_min, r_max, theta_min, theta_max of the quad. theta_min
  /// may exceed theta_max for the face spanning the 0/2pi seam; the search
  /// handles the wrap by box duplication.
  std::vector<double> box;

  double r_min = 0.0, r_max = 0.0;

  /// Structured layout hints: faces form an (nr x ntheta) lattice, emitted
  /// theta-major (face index = k * nr + j). Used by the bilinear
  /// interpolation mode to find the four surrounding donor centers.
  int nr = 0;
  int ntheta = 0;

  [[nodiscard]] index_t size() const { return static_cast<index_t>(bfaces.size()); }
  [[nodiscard]] index_t face_at(int j, int k) const {
    return static_cast<index_t>(((k % ntheta + ntheta) % ntheta) * nr +
                                std::clamp(j, 0, nr - 1));
  }
};

/// Extracts the interface quads of the given boundary group (Inlet or
/// Outlet). Quad extents come from the structured lattice spacing.
InterfaceSide extract_interface(const AnnulusMesh& mesh, const RowSpec& row,
                                BoundaryGroup group);

}  // namespace vcgt::rig
