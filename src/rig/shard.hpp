#pragma once
// Sharded row-mesh generation (DESIGN.md §13). Each rank deterministically
// synthesizes only its block of the annulus — the cells it will own under
// op2's Block partitioner — plus a one-cell ghost rind, instead of every
// rank materializing the full row (which caps at index_t elements and, at
// the paper's 4.58B-node scale, at memory). The shard carries the *global*
// numbering of the monolithic generator, so a sharded declaration followed
// by Context::partition_sharded() reproduces the monolithic Block setup
// bit-identically: same ownership, same halo contents, same local
// numbering, same plan fingerprints.
#include <array>
#include <vector>

#include "src/op2/types.hpp"
#include "src/rig/annulus.hpp"
#include "src/rig/rowspec.hpp"

namespace vcgt::rig {

/// Which block of the row this rank synthesizes.
struct ShardSpec {
  int rank = 0;
  int nranks = 1;
};

/// One rank's shard of a row mesh: a shard-local AnnulusMesh (owned cells
/// plus the ghost rind needed to execute every face touching an owned
/// cell) together with the global ids that tie the shard back into the
/// monolithic numbering.
///
/// Contents and ordering contract:
///  - cells  = { owned cells } ∪ { foreign endpoints of shard faces },
///    ascending global id;
///  - faces  = every interior face with at least one owned endpoint,
///    ascending global id (== monolithic emission order restricted to the
///    shard);
///  - bfaces = boundary faces of *owned* cells only, group-contiguous
///    (Inlet, Outlet, Hub, Casing) and ascending within each group.
///
/// `local.face2cell` / `local.bface2cell` hold shard-local cell rows (the
/// positions in `cell_gids`), ready for op2::Context::decl_map after
/// decl_set_sharded. Geometry arrays are emitted by the same per-element
/// code as generate_row_mesh, so every value is bit-identical to the
/// monolithic array entry at the corresponding global id.
struct RowShard {
  AnnulusMesh local;

  op2::gindex_t ncell_global = 0;
  op2::gindex_t nface_global = 0;
  std::array<op2::gindex_t, 4> nbface_global{};  ///< per BoundaryGroup

  std::vector<op2::gindex_t> cell_gids;  ///< ascending, one per local cell
  std::vector<op2::gindex_t> face_gids;  ///< ascending, one per local face
  /// Per-group in-group global ids (the monolithic within-group emission
  /// index), ascending; concatenated they parallel the bface arrays.
  std::array<std::vector<op2::gindex_t>, 4> bface_gids;
};

/// Generates rank `shard.rank`'s shard of the row mesh. The union of all
/// ranks' owned cells tiles the row exactly; the per-rank ghost rind is the
/// minimal closure for owner-compute + redundant-halo execution of the
/// annulus face loops. Global counts are computed in 64-bit and only the
/// per-rank window is bounded by index_t (op2::SetSizeError otherwise).
RowShard generate_row_shard(const RowSpec& row, const MeshResolution& res,
                            const ShardSpec& shard);

}  // namespace vcgt::rig
