#include "src/rig/interface.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vcgt::rig {

InterfaceSide extract_interface(const AnnulusMesh& mesh, const RowSpec& row,
                                BoundaryGroup group) {
  if (group != BoundaryGroup::Inlet && group != BoundaryGroup::Outlet) {
    throw std::invalid_argument("extract_interface: only Inlet/Outlet groups slide");
  }
  InterfaceSide side;
  // Radii AT the sliding plane (row inlet or exit — they differ when the
  // flow path contracts).
  const double plane_x = group == BoundaryGroup::Inlet ? row.x_min : row.x_max;
  const double r_hub = row.hub_at(plane_x);
  const double r_casing = row.casing_at(plane_x);
  const double dr = (r_casing - r_hub) / mesh.nr;
  const double dth = 2.0 * std::numbers::pi / mesh.ntheta;
  side.r_min = r_hub;
  side.r_max = r_casing;
  side.nr = mesh.nr;
  side.ntheta = mesh.ntheta;

  const index_t begin = mesh.group_begin[static_cast<std::size_t>(group)];
  const index_t end = mesh.group_end[static_cast<std::size_t>(group)];
  for (index_t b = begin; b < end; ++b) {
    const double r = mesh.bface_rtheta[static_cast<std::size_t>(b) * 2 + 0];
    const double th = mesh.bface_rtheta[static_cast<std::size_t>(b) * 2 + 1];
    side.bfaces.push_back(b - begin);  // group-relative: matches the op2 group-set gid
    side.rtheta.push_back(r);
    side.rtheta.push_back(th);
    // Exact lattice extents (faces are emitted k-outer, j-inner): the boxes
    // tile [r_hub, r_casing] x [0, 2pi] with no gaps, so any annulus point
    // has a containing donor. Quad centroids (rtheta above) sit slightly
    // inside due to the chord effect; boxes must not be derived from them.
    const index_t rel = b - begin;
    const int j = static_cast<int>(rel % mesh.nr);
    const int k = static_cast<int>(rel / mesh.nr);
    side.box.push_back(r_hub + j * dr);
    side.box.push_back(r_hub + (j + 1) * dr);
    side.box.push_back(k * dth);
    side.box.push_back((k + 1) * dth);
  }
  return side;
}

}  // namespace vcgt::rig
