#include "src/rig/annulus.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numbers>
#include <stdexcept>
#include <string>

#include "src/rig/shard.hpp"

namespace vcgt::rig {

namespace {

struct Vec3 {
  double x = 0, y = 0, z = 0;
};
Vec3 operator-(const Vec3& a, const Vec3& b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
Vec3 operator+(const Vec3& a, const Vec3& b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
Vec3 operator*(double s, const Vec3& a) { return {s * a.x, s * a.y, s * a.z}; }
Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}
double dot(const Vec3& a, const Vec3& b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

/// Quad face area vector and centroid from its 4 corners (counter-clockwise
/// seen from the normal side). The cross-diagonal formula gives the exact
/// vector area of the (possibly non-planar) quad — it depends only on the
/// boundary, so summing over a closed cell cancels exactly (free-stream
/// preservation).
void quad_geom(const Vec3& p0, const Vec3& p1, const Vec3& p2, const Vec3& p3, Vec3* area,
               Vec3* center) {
  *area = 0.5 * cross(p2 - p0, p3 - p1);
  *center = 0.25 * (p0 + p1 + p2 + p3);
}

/// Per-element geometry of the structured annulus lattice. Both generators
/// (monolithic generate_row_mesh and per-rank generate_row_shard) emit every
/// cell/face value through these functions, so a shard's arrays are
/// bit-identical to the monolithic arrays at the corresponding global ids —
/// the floating-point half of the shard equivalence contract (DESIGN.md §13).
struct Lattice {
  const RowSpec& row;
  int nx, nr, nt;
  double dx, dth;

  Lattice(const RowSpec& r, const MeshResolution& res)
      : row(r), nx(res.nx), nr(res.nr), nt(res.ntheta),
        dx((r.x_max - r.x_min) / res.nx),
        dth(2.0 * std::numbers::pi / res.ntheta) {}

  /// Lattice node coordinates: node(i, j, k) with k wrapping mod nt. Hub and
  /// casing radii follow the row's (possibly contracting) flow path.
  [[nodiscard]] Vec3 node(int i, int j, int k) const {
    const double x = row.x_min + i * dx;
    const double rh = row.hub_at(x);
    const double r = rh + j * (row.casing_at(x) - rh) / nr;
    const double th = (k % nt) * dth;
    return {x, r * std::cos(th), r * std::sin(th)};
  }

  /// Cell centroid (average of 8 corners), volume via the divergence
  /// theorem, and cylindrical helper coordinates, written to row `c` of the
  /// mesh's cell arrays.
  void emit_cell(int i, int j, int k, std::size_t c, AnnulusMesh* m) const {
    const Vec3 corners[8] = {node(i, j, k),         node(i + 1, j, k),
                             node(i + 1, j + 1, k), node(i, j + 1, k),
                             node(i, j, k + 1),     node(i + 1, j, k + 1),
                             node(i + 1, j + 1, k + 1), node(i, j + 1, k + 1)};
    Vec3 centroid{};
    for (const auto& p : corners) centroid = centroid + p;
    centroid = (1.0 / 8.0) * centroid;

    // Outward faces of the hex (standard corner ordering above):
    // indices into `corners`, oriented so the area vector points out.
    static constexpr int kFaces[6][4] = {
        {0, 4, 7, 3},  // x-min (outward -x)
        {1, 2, 6, 5},  // x-max (outward +x)
        {0, 1, 5, 4},  // r-min (outward -r)
        {3, 7, 6, 2},  // r-max (outward +r)
        {0, 3, 2, 1},  // theta-min (outward -theta)
        {4, 5, 6, 7},  // theta-max (outward +theta)
    };
    double vol = 0.0;
    for (const auto& f : kFaces) {
      Vec3 area, fc;
      quad_geom(corners[f[0]], corners[f[1]], corners[f[2]], corners[f[3]], &area, &fc);
      vol += dot(fc - centroid, area);
    }
    vol /= 3.0;
    m->cell_vol[c] = vol;
    m->cell_center[c * 3 + 0] = centroid.x;
    m->cell_center[c * 3 + 1] = centroid.y;
    m->cell_center[c * 3 + 2] = centroid.z;
    m->cell_rtheta[c * 2 + 0] = std::hypot(centroid.y, centroid.z);
    double th = std::atan2(centroid.z, centroid.y);
    if (th < 0) th += 2.0 * std::numbers::pi;
    m->cell_rtheta[c * 2 + 1] = th;
  }

  /// Corner quads of the three interior-face families. `i`/`j`/`k` name the
  /// owner cell's lattice position; the face sits between it and its +x /
  /// +r / +theta neighbor, with the area vector along the + direction.
  void xface_corners(int i, int j, int k, Vec3 p[4]) const {
    p[0] = node(i + 1, j, k);
    p[1] = node(i + 1, j + 1, k);
    p[2] = node(i + 1, j + 1, k + 1);
    p[3] = node(i + 1, j, k + 1);
  }
  void rface_corners(int i, int j, int k, Vec3 p[4]) const {
    p[0] = node(i, j + 1, k);
    p[1] = node(i, j + 1, k + 1);
    p[2] = node(i + 1, j + 1, k + 1);
    p[3] = node(i + 1, j + 1, k);
  }
  void tface_corners(int i, int j, int k, Vec3 p[4]) const {
    p[0] = node(i, j, k + 1);
    p[1] = node(i + 1, j, k + 1);
    p[2] = node(i + 1, j + 1, k + 1);
    p[3] = node(i, j + 1, k + 1);
  }

  /// Corner quads of the boundary groups, outward-oriented. `a` is the
  /// within-slab lattice index (j for Inlet/Outlet, i for Hub/Casing).
  void bface_corners(BoundaryGroup g, int a, int k, Vec3 p[4]) const {
    switch (g) {
      case BoundaryGroup::Inlet:  // x-min, outward = -x
        p[0] = node(0, a, k);
        p[1] = node(0, a, k + 1);
        p[2] = node(0, a + 1, k + 1);
        p[3] = node(0, a + 1, k);
        return;
      case BoundaryGroup::Outlet:  // x-max, outward = +x
        p[0] = node(nx, a, k);
        p[1] = node(nx, a + 1, k);
        p[2] = node(nx, a + 1, k + 1);
        p[3] = node(nx, a, k + 1);
        return;
      case BoundaryGroup::Hub:  // r-min, outward = -r
        p[0] = node(a, 0, k);
        p[1] = node(a + 1, 0, k);
        p[2] = node(a + 1, 0, k + 1);
        p[3] = node(a, 0, k + 1);
        return;
      case BoundaryGroup::Casing:  // r-max, outward = +r
        p[0] = node(a, nr, k);
        p[1] = node(a, nr, k + 1);
        p[2] = node(a + 1, nr, k + 1);
        p[3] = node(a + 1, nr, k);
        return;
    }
  }
};

/// Appends one interior face's geometry (owner/neighbor rows supplied by the
/// caller in whichever numbering it builds).
void push_face(const Vec3 p[4], index_t owner, index_t nbr, AnnulusMesh* m) {
  Vec3 area, fc;
  quad_geom(p[0], p[1], p[2], p[3], &area, &fc);
  m->face2cell.push_back(owner);
  m->face2cell.push_back(nbr);
  m->face_normal.insert(m->face_normal.end(), {area.x, area.y, area.z});
  m->face_center.insert(m->face_center.end(), {fc.x, fc.y, fc.z});
}

/// Appends one boundary face's geometry.
void push_bface(const Vec3 p[4], index_t cell, BoundaryGroup g, AnnulusMesh* m) {
  Vec3 area, fc;
  quad_geom(p[0], p[1], p[2], p[3], &area, &fc);
  m->bface2cell.push_back(cell);
  m->bface_normal.insert(m->bface_normal.end(), {area.x, area.y, area.z});
  m->bface_center.insert(m->bface_center.end(), {fc.x, fc.y, fc.z});
  const double r = std::hypot(fc.y, fc.z);
  double th = std::atan2(fc.z, fc.y);
  if (th < 0) th += 2.0 * std::numbers::pi;
  m->bface_rtheta.insert(m->bface_rtheta.end(), {r, th});
  m->bface_group.push_back(static_cast<int>(g));
}

void validate_row(const RowSpec& row, const MeshResolution& res, const char* who) {
  if (res.nx < 1 || res.nr < 1 || res.ntheta < 3) {
    throw std::invalid_argument(std::string(who) + ": need nx,nr >= 1 and ntheta >= 3");
  }
  if (row.x_max <= row.x_min || row.r_casing <= row.r_hub) {
    throw std::invalid_argument(std::string(who) + ": degenerate row extents");
  }
}

}  // namespace

AnnulusMesh generate_row_mesh(const RowSpec& row, const MeshResolution& res) {
  validate_row(row, res, "generate_row_mesh");
  const int nx = res.nx, nr = res.nr, nt = res.ntheta;

  // Monolithic emission materializes full identity numberings, so every
  // global count must narrow losslessly to index_t (DESIGN.md §13). Counts
  // are computed in 64-bit *first* — the overflow is detected, not committed.
  {
    const auto ncell = static_cast<op2::gindex_t>(nx) * nr * nt;
    const auto nface = static_cast<op2::gindex_t>(nt) * nr * (nx - 1) +
                       static_cast<op2::gindex_t>(nt) * (nr - 1) * nx +
                       static_cast<op2::gindex_t>(nt) * nr * nx;
    if (ncell > op2::kMaxMonolithicSetSize) {
      throw op2::SetSizeError(
          "generate_row_mesh: monolithic row mesh of " + std::to_string(ncell) +
              " cells exceeds the index_t range (" +
              std::to_string(op2::kMaxMonolithicSetSize) +
              "); generate per-rank shards with generate_row_shard",
          "cells", ncell);
    }
    if (nface > op2::kMaxMonolithicSetSize) {
      throw op2::SetSizeError(
          "generate_row_mesh: monolithic row mesh of " + std::to_string(nface) +
              " faces exceeds the index_t range (" +
              std::to_string(op2::kMaxMonolithicSetSize) +
              "); generate per-rank shards with generate_row_shard",
          "faces", nface);
    }
  }

  AnnulusMesh m;
  m.nx = nx;
  m.nr = nr;
  m.ntheta = nt;
  m.ncell = static_cast<index_t>(nx) * nr * nt;

  const Lattice lat(row, res);
  auto cell_id = [&](int i, int j, int k) -> index_t {
    return static_cast<index_t>(((k % nt + nt) % nt) * nr + j) * nx + i;
  };

  // --- cells: centroid (average of 8 corners), volume via divergence thm ---
  m.cell_center.resize(static_cast<std::size_t>(m.ncell) * 3);
  m.cell_vol.resize(static_cast<std::size_t>(m.ncell));
  m.cell_rtheta.resize(static_cast<std::size_t>(m.ncell) * 2);
  for (int k = 0; k < nt; ++k) {
    for (int j = 0; j < nr; ++j) {
      for (int i = 0; i < nx; ++i) {
        lat.emit_cell(i, j, k, static_cast<std::size_t>(cell_id(i, j, k)), &m);
      }
    }
  }

  // --- interior faces -------------------------------------------------------
  Vec3 p[4];
  // x-direction faces between cell(i) and cell(i+1); normal along +x.
  for (int k = 0; k < nt; ++k) {
    for (int j = 0; j < nr; ++j) {
      for (int i = 0; i + 1 < nx; ++i) {
        lat.xface_corners(i, j, k, p);
        push_face(p, cell_id(i, j, k), cell_id(i + 1, j, k), &m);
      }
    }
  }
  // r-direction faces; normal along +r.
  for (int k = 0; k < nt; ++k) {
    for (int j = 0; j + 1 < nr; ++j) {
      for (int i = 0; i < nx; ++i) {
        lat.rface_corners(i, j, k, p);
        push_face(p, cell_id(i, j, k), cell_id(i, j + 1, k), &m);
      }
    }
  }
  // theta-direction faces (wrapping); normal along +theta.
  for (int k = 0; k < nt; ++k) {
    for (int j = 0; j < nr; ++j) {
      for (int i = 0; i < nx; ++i) {
        lat.tface_corners(i, j, k, p);
        push_face(p, cell_id(i, j, k), cell_id(i, j, k + 1), &m);
      }
    }
  }
  m.nface = static_cast<index_t>(m.face2cell.size() / 2);

  // --- boundary faces, group-contiguous ------------------------------------
  auto begin_group = [&](BoundaryGroup g) {
    m.group_begin[static_cast<std::size_t>(g)] = static_cast<index_t>(m.bface2cell.size());
  };
  auto end_group = [&](BoundaryGroup g) {
    m.group_end[static_cast<std::size_t>(g)] = static_cast<index_t>(m.bface2cell.size());
  };

  begin_group(BoundaryGroup::Inlet);
  for (int k = 0; k < nt; ++k) {
    for (int j = 0; j < nr; ++j) {
      lat.bface_corners(BoundaryGroup::Inlet, j, k, p);
      push_bface(p, cell_id(0, j, k), BoundaryGroup::Inlet, &m);
    }
  }
  end_group(BoundaryGroup::Inlet);

  begin_group(BoundaryGroup::Outlet);
  for (int k = 0; k < nt; ++k) {
    for (int j = 0; j < nr; ++j) {
      lat.bface_corners(BoundaryGroup::Outlet, j, k, p);
      push_bface(p, cell_id(nx - 1, j, k), BoundaryGroup::Outlet, &m);
    }
  }
  end_group(BoundaryGroup::Outlet);

  begin_group(BoundaryGroup::Hub);
  for (int k = 0; k < nt; ++k) {
    for (int i = 0; i < nx; ++i) {
      lat.bface_corners(BoundaryGroup::Hub, i, k, p);
      push_bface(p, cell_id(i, 0, k), BoundaryGroup::Hub, &m);
    }
  }
  end_group(BoundaryGroup::Hub);

  begin_group(BoundaryGroup::Casing);
  for (int k = 0; k < nt; ++k) {
    for (int i = 0; i < nx; ++i) {
      lat.bface_corners(BoundaryGroup::Casing, i, k, p);
      push_bface(p, cell_id(i, nr - 1, k), BoundaryGroup::Casing, &m);
    }
  }
  end_group(BoundaryGroup::Casing);

  m.nbface = static_cast<index_t>(m.bface2cell.size());
  return m;
}

RowShard generate_row_shard(const RowSpec& row, const MeshResolution& res,
                            const ShardSpec& shard) {
  validate_row(row, res, "generate_row_shard");
  if (shard.nranks < 1 || shard.rank < 0 || shard.rank >= shard.nranks) {
    throw std::invalid_argument("generate_row_shard: shard rank out of range");
  }
  const int nx = res.nx, nr = res.nr, nt = res.ntheta;
  using op2::gindex_t;

  // Global element counts, 64-bit throughout — this is the path that exists
  // so a 4.58B-cell row never needs a 32-bit-indexable whole-mesh array.
  const gindex_t ncell = static_cast<gindex_t>(nx) * nr * nt;
  const gindex_t nxf = static_cast<gindex_t>(nt) * nr * (nx - 1);
  const gindex_t nrf = static_cast<gindex_t>(nt) * (nr - 1) * nx;
  const gindex_t ntf = static_cast<gindex_t>(nt) * nr * nx;

  RowShard s;
  s.ncell_global = ncell;
  s.nface_global = nxf + nrf + ntf;
  s.nbface_global = {static_cast<gindex_t>(nt) * nr, static_cast<gindex_t>(nt) * nr,
                     static_cast<gindex_t>(nt) * nx, static_cast<gindex_t>(nt) * nx};

  // Owned cells: the contiguous gid range block_owner() assigns this rank,
  // [ceil(rank*n/nranks), ceil((rank+1)*n/nranks)).
  const gindex_t lo =
      (static_cast<gindex_t>(shard.rank) * ncell + shard.nranks - 1) / shard.nranks;
  const gindex_t hi =
      (static_cast<gindex_t>(shard.rank + 1) * ncell + shard.nranks - 1) / shard.nranks;

  // Oversized shards are rejected *before* the face scan: the owned block
  // alone bounds the closure from below, and scanning a >2^31-cell block
  // would commit tens of gigabytes just to discover the overflow later.
  if (hi - lo > op2::kMaxMonolithicSetSize) {
    throw op2::SetSizeError("generate_row_shard: shard of " + std::to_string(hi - lo) +
                                " cells exceeds the index_t range; increase nranks",
                            "cells", hi - lo);
  }

  // Monolithic global numbering of the annulus lattice (matches
  // generate_row_mesh's emission order exactly):
  //   cell  (i,j,k): (k*nr + j)*nx + i
  //   x-face between (i,j,k) and (i+1,j,k):        (k*nr + j)*(nx-1) + i
  //   r-face between (i,j,k) and (i,j+1,k):  nxf + (k*(nr-1) + j)*nx + i
  //   t-face between (i,j,k) and (i,j,k+1):  nxf + nrf + (k*nr + j)*nx + i
  const auto cell_ijk = [&](gindex_t g, int* i, int* j, int* k) {
    *i = static_cast<int>(g % nx);
    *j = static_cast<int>((g / nx) % nr);
    *k = static_cast<int>(g / (static_cast<gindex_t>(nx) * nr));
  };
  const auto gcell = [&](int i, int j, int k) -> gindex_t {
    return (static_cast<gindex_t>((k % nt + nt) % nt) * nr + j) * nx + i;
  };

  // --- shard face closure: every interior face touching an owned cell ------
  std::vector<gindex_t>& faces = s.face_gids;
  faces.reserve(static_cast<std::size_t>(hi - lo) * 6);
  for (gindex_t g = lo; g < hi; ++g) {
    int i, j, k;
    cell_ijk(g, &i, &j, &k);
    if (i > 0) faces.push_back((static_cast<gindex_t>(k) * nr + j) * (nx - 1) + (i - 1));
    if (i + 1 < nx) faces.push_back((static_cast<gindex_t>(k) * nr + j) * (nx - 1) + i);
    if (j > 0) faces.push_back(nxf + (static_cast<gindex_t>(k) * (nr - 1) + (j - 1)) * nx + i);
    if (j + 1 < nr) faces.push_back(nxf + (static_cast<gindex_t>(k) * (nr - 1) + j) * nx + i);
    faces.push_back(nxf + nrf + (static_cast<gindex_t>((k - 1 + nt) % nt) * nr + j) * nx + i);
    faces.push_back(nxf + nrf + (static_cast<gindex_t>(k) * nr + j) * nx + i);
  }
  std::sort(faces.begin(), faces.end());
  faces.erase(std::unique(faces.begin(), faces.end()), faces.end());

  // Decode a face gid back to its family, owner-cell lattice position and
  // endpoint cell gids (owner first — the monolithic face2cell order).
  struct FaceInfo {
    int family;  ///< 0 = x, 1 = r, 2 = theta
    int i, j, k;
    gindex_t c0, c1;
  };
  const auto face_info = [&](gindex_t f) -> FaceInfo {
    FaceInfo fi{};
    if (f < nxf) {
      fi.family = 0;
      fi.i = static_cast<int>(f % (nx - 1));
      fi.j = static_cast<int>((f / (nx - 1)) % nr);
      fi.k = static_cast<int>(f / (static_cast<gindex_t>(nx - 1) * nr));
      fi.c0 = gcell(fi.i, fi.j, fi.k);
      fi.c1 = gcell(fi.i + 1, fi.j, fi.k);
    } else if (f < nxf + nrf) {
      const gindex_t r = f - nxf;
      fi.family = 1;
      fi.i = static_cast<int>(r % nx);
      fi.j = static_cast<int>((r / nx) % (nr - 1));
      fi.k = static_cast<int>(r / (static_cast<gindex_t>(nx) * (nr - 1)));
      fi.c0 = gcell(fi.i, fi.j, fi.k);
      fi.c1 = gcell(fi.i, fi.j + 1, fi.k);
    } else {
      const gindex_t t = f - nxf - nrf;
      fi.family = 2;
      fi.i = static_cast<int>(t % nx);
      fi.j = static_cast<int>((t / nx) % nr);
      fi.k = static_cast<int>(t / (static_cast<gindex_t>(nx) * nr));
      fi.c0 = gcell(fi.i, fi.j, fi.k);
      fi.c1 = gcell(fi.i, fi.j, fi.k + 1);
    }
    return fi;
  };

  // --- shard cells: owned block plus foreign endpoints of shard faces ------
  std::vector<gindex_t>& cells = s.cell_gids;
  cells.reserve(static_cast<std::size_t>(hi - lo) + faces.size() / 2);
  for (gindex_t g = lo; g < hi; ++g) cells.push_back(g);
  for (const gindex_t f : faces) {
    const FaceInfo fi = face_info(f);
    if (fi.c0 < lo || fi.c0 >= hi) cells.push_back(fi.c0);
    if (fi.c1 < lo || fi.c1 >= hi) cells.push_back(fi.c1);
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());

  const auto guard = [&](std::size_t n, const char* what) {
    if (static_cast<gindex_t>(n) > op2::kMaxMonolithicSetSize) {
      throw op2::SetSizeError("generate_row_shard: shard of " + std::to_string(n) + " " +
                                  what + " exceeds the index_t range; increase nranks",
                              what, static_cast<gindex_t>(n));
    }
  };
  guard(cells.size(), "cells");
  guard(faces.size(), "faces");

  const auto cell_row = [&](gindex_t g) -> index_t {
    return static_cast<index_t>(
        std::lower_bound(cells.begin(), cells.end(), g) - cells.begin());
  };

  // --- geometry emission through the shared per-element path ---------------
  const Lattice lat(row, res);
  AnnulusMesh& m = s.local;
  m.nx = nx;
  m.nr = nr;
  m.ntheta = nt;
  m.ncell = static_cast<index_t>(cells.size());

  m.cell_center.resize(cells.size() * 3);
  m.cell_vol.resize(cells.size());
  m.cell_rtheta.resize(cells.size() * 2);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    int i, j, k;
    cell_ijk(cells[c], &i, &j, &k);
    lat.emit_cell(i, j, k, c, &m);
  }

  Vec3 p[4];
  for (const gindex_t f : faces) {
    const FaceInfo fi = face_info(f);
    switch (fi.family) {
      case 0: lat.xface_corners(fi.i, fi.j, fi.k, p); break;
      case 1: lat.rface_corners(fi.i, fi.j, fi.k, p); break;
      default: lat.tface_corners(fi.i, fi.j, fi.k, p); break;
    }
    push_face(p, cell_row(fi.c0), cell_row(fi.c1), &m);
  }
  m.nface = static_cast<index_t>(m.face2cell.size() / 2);

  // --- boundary faces of owned cells, group-contiguous ---------------------
  // In-group gids follow the monolithic within-group emission order:
  // Inlet/Outlet k*nr + j, Hub/Casing k*nx + i.
  for (gindex_t g = lo; g < hi; ++g) {
    int i, j, k;
    cell_ijk(g, &i, &j, &k);
    if (i == 0) s.bface_gids[0].push_back(static_cast<gindex_t>(k) * nr + j);
    if (i == nx - 1) s.bface_gids[1].push_back(static_cast<gindex_t>(k) * nr + j);
    if (j == 0) s.bface_gids[2].push_back(static_cast<gindex_t>(k) * nx + i);
    if (j == nr - 1) s.bface_gids[3].push_back(static_cast<gindex_t>(k) * nx + i);
  }
  for (int g = 0; g < 4; ++g) {
    auto& bg = s.bface_gids[static_cast<std::size_t>(g)];
    std::sort(bg.begin(), bg.end());
    guard(bg.size(), "bfaces");
    const auto group = static_cast<BoundaryGroup>(g);
    m.group_begin[static_cast<std::size_t>(g)] = static_cast<index_t>(m.bface2cell.size());
    for (const gindex_t b : bg) {
      int i, j, k;
      index_t cell;
      if (g < 2) {  // Inlet / Outlet: b = k*nr + j
        j = static_cast<int>(b % nr);
        k = static_cast<int>(b / nr);
        i = (g == 0) ? 0 : nx - 1;
        lat.bface_corners(group, j, k, p);
        cell = cell_row(gcell(i, j, k));
      } else {  // Hub / Casing: b = k*nx + i
        i = static_cast<int>(b % nx);
        k = static_cast<int>(b / nx);
        j = (g == 2) ? 0 : nr - 1;
        lat.bface_corners(group, i, k, p);
        cell = cell_row(gcell(i, j, k));
      }
      push_bface(p, cell, group, &m);
    }
    m.group_end[static_cast<std::size_t>(g)] = static_cast<index_t>(m.bface2cell.size());
  }
  m.nbface = static_cast<index_t>(m.bface2cell.size());
  return s;
}

double max_closure_error(const AnnulusMesh& mesh) {
  // Accumulate outward area vectors per cell: interior faces contribute
  // +A to owner, -A to neighbor; boundary faces +A to their cell.
  std::vector<double> sum(static_cast<std::size_t>(mesh.ncell) * 3, 0.0);
  for (index_t f = 0; f < mesh.nface; ++f) {
    const index_t c0 = mesh.face2cell[static_cast<std::size_t>(f) * 2];
    const index_t c1 = mesh.face2cell[static_cast<std::size_t>(f) * 2 + 1];
    for (int d = 0; d < 3; ++d) {
      const double a = mesh.face_normal[static_cast<std::size_t>(f) * 3 + d];
      sum[static_cast<std::size_t>(c0) * 3 + d] += a;
      sum[static_cast<std::size_t>(c1) * 3 + d] -= a;
    }
  }
  for (index_t b = 0; b < mesh.nbface; ++b) {
    const index_t c = mesh.bface2cell[static_cast<std::size_t>(b)];
    for (int d = 0; d < 3; ++d) {
      sum[static_cast<std::size_t>(c) * 3 + d] +=
          mesh.bface_normal[static_cast<std::size_t>(b) * 3 + d];
    }
  }
  double worst = 0.0;
  for (index_t c = 0; c < mesh.ncell; ++c) {
    const double n = std::hypot(sum[static_cast<std::size_t>(c) * 3],
                                sum[static_cast<std::size_t>(c) * 3 + 1],
                                sum[static_cast<std::size_t>(c) * 3 + 2]);
    worst = std::max(worst, n);
  }
  return worst;
}

double total_volume(const AnnulusMesh& mesh) {
  double v = 0.0;
  for (const double c : mesh.cell_vol) v += c;
  return v;
}

}  // namespace vcgt::rig
