#include "src/rig/annulus.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vcgt::rig {

namespace {

struct Vec3 {
  double x = 0, y = 0, z = 0;
};
Vec3 operator-(const Vec3& a, const Vec3& b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
Vec3 operator+(const Vec3& a, const Vec3& b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
Vec3 operator*(double s, const Vec3& a) { return {s * a.x, s * a.y, s * a.z}; }
Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}
double dot(const Vec3& a, const Vec3& b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

/// Quad face area vector and centroid from its 4 corners (counter-clockwise
/// seen from the normal side). The cross-diagonal formula gives the exact
/// vector area of the (possibly non-planar) quad — it depends only on the
/// boundary, so summing over a closed cell cancels exactly (free-stream
/// preservation).
void quad_geom(const Vec3& p0, const Vec3& p1, const Vec3& p2, const Vec3& p3, Vec3* area,
               Vec3* center) {
  *area = 0.5 * cross(p2 - p0, p3 - p1);
  *center = 0.25 * (p0 + p1 + p2 + p3);
}

}  // namespace

AnnulusMesh generate_row_mesh(const RowSpec& row, const MeshResolution& res) {
  const int nx = res.nx, nr = res.nr, nt = res.ntheta;
  if (nx < 1 || nr < 1 || nt < 3) {
    throw std::invalid_argument("generate_row_mesh: need nx,nr >= 1 and ntheta >= 3");
  }
  if (row.x_max <= row.x_min || row.r_casing <= row.r_hub) {
    throw std::invalid_argument("generate_row_mesh: degenerate row extents");
  }

  AnnulusMesh m;
  m.nx = nx;
  m.nr = nr;
  m.ntheta = nt;
  m.ncell = static_cast<index_t>(nx) * nr * nt;

  const double dx = (row.x_max - row.x_min) / nx;
  const double dth = 2.0 * std::numbers::pi / nt;

  // Lattice node coordinates: node(i, j, k) with k wrapping mod nt. Hub and
  // casing radii follow the row's (possibly contracting) flow path.
  auto node = [&](int i, int j, int k) -> Vec3 {
    const double x = row.x_min + i * dx;
    const double rh = row.hub_at(x);
    const double r = rh + j * (row.casing_at(x) - rh) / nr;
    const double th = (k % nt) * dth;
    return {x, r * std::cos(th), r * std::sin(th)};
  };
  auto cell_id = [&](int i, int j, int k) -> index_t {
    return static_cast<index_t>(((k % nt + nt) % nt) * nr + j) * nx + i;
  };

  // --- cells: centroid (average of 8 corners), volume via divergence thm ---
  m.cell_center.resize(static_cast<std::size_t>(m.ncell) * 3);
  m.cell_vol.resize(static_cast<std::size_t>(m.ncell));
  m.cell_rtheta.resize(static_cast<std::size_t>(m.ncell) * 2);
  for (int k = 0; k < nt; ++k) {
    for (int j = 0; j < nr; ++j) {
      for (int i = 0; i < nx; ++i) {
        const index_t c = cell_id(i, j, k);
        const Vec3 corners[8] = {node(i, j, k),         node(i + 1, j, k),
                                 node(i + 1, j + 1, k), node(i, j + 1, k),
                                 node(i, j, k + 1),     node(i + 1, j, k + 1),
                                 node(i + 1, j + 1, k + 1), node(i, j + 1, k + 1)};
        Vec3 centroid{};
        for (const auto& p : corners) centroid = centroid + p;
        centroid = (1.0 / 8.0) * centroid;

        // Outward faces of the hex (standard corner ordering above):
        // indices into `corners`, oriented so the area vector points out.
        static constexpr int kFaces[6][4] = {
            {0, 4, 7, 3},  // x-min (outward -x)
            {1, 2, 6, 5},  // x-max (outward +x)
            {0, 1, 5, 4},  // r-min (outward -r)
            {3, 7, 6, 2},  // r-max (outward +r)
            {0, 3, 2, 1},  // theta-min (outward -theta)
            {4, 5, 6, 7},  // theta-max (outward +theta)
        };
        double vol = 0.0;
        for (const auto& f : kFaces) {
          Vec3 area, fc;
          quad_geom(corners[f[0]], corners[f[1]], corners[f[2]], corners[f[3]], &area, &fc);
          vol += dot(fc - centroid, area);
        }
        vol /= 3.0;
        m.cell_vol[static_cast<std::size_t>(c)] = vol;
        m.cell_center[static_cast<std::size_t>(c) * 3 + 0] = centroid.x;
        m.cell_center[static_cast<std::size_t>(c) * 3 + 1] = centroid.y;
        m.cell_center[static_cast<std::size_t>(c) * 3 + 2] = centroid.z;
        m.cell_rtheta[static_cast<std::size_t>(c) * 2 + 0] =
            std::hypot(centroid.y, centroid.z);
        double th = std::atan2(centroid.z, centroid.y);
        if (th < 0) th += 2.0 * std::numbers::pi;
        m.cell_rtheta[static_cast<std::size_t>(c) * 2 + 1] = th;
      }
    }
  }

  auto push_face = [&](const Vec3& p0, const Vec3& p1, const Vec3& p2, const Vec3& p3,
                       index_t owner, index_t nbr) {
    Vec3 area, fc;
    quad_geom(p0, p1, p2, p3, &area, &fc);
    m.face2cell.push_back(owner);
    m.face2cell.push_back(nbr);
    m.face_normal.insert(m.face_normal.end(), {area.x, area.y, area.z});
    m.face_center.insert(m.face_center.end(), {fc.x, fc.y, fc.z});
  };

  // --- interior faces -------------------------------------------------------
  // x-direction faces between cell(i) and cell(i+1); normal along +x.
  for (int k = 0; k < nt; ++k) {
    for (int j = 0; j < nr; ++j) {
      for (int i = 0; i + 1 < nx; ++i) {
        push_face(node(i + 1, j, k), node(i + 1, j + 1, k), node(i + 1, j + 1, k + 1),
                  node(i + 1, j, k + 1), cell_id(i, j, k), cell_id(i + 1, j, k));
      }
    }
  }
  // r-direction faces; normal along +r.
  for (int k = 0; k < nt; ++k) {
    for (int j = 0; j + 1 < nr; ++j) {
      for (int i = 0; i < nx; ++i) {
        push_face(node(i, j + 1, k), node(i, j + 1, k + 1), node(i + 1, j + 1, k + 1),
                  node(i + 1, j + 1, k), cell_id(i, j, k), cell_id(i, j + 1, k));
      }
    }
  }
  // theta-direction faces (wrapping); normal along +theta.
  for (int k = 0; k < nt; ++k) {
    for (int j = 0; j < nr; ++j) {
      for (int i = 0; i < nx; ++i) {
        push_face(node(i, j, k + 1), node(i + 1, j, k + 1), node(i + 1, j + 1, k + 1),
                  node(i, j + 1, k + 1), cell_id(i, j, k), cell_id(i, j, k + 1));
      }
    }
  }
  m.nface = static_cast<index_t>(m.face2cell.size() / 2);

  // --- boundary faces, group-contiguous ------------------------------------
  auto push_bface = [&](const Vec3& p0, const Vec3& p1, const Vec3& p2, const Vec3& p3,
                        index_t cell, BoundaryGroup g) {
    Vec3 area, fc;
    quad_geom(p0, p1, p2, p3, &area, &fc);
    m.bface2cell.push_back(cell);
    m.bface_normal.insert(m.bface_normal.end(), {area.x, area.y, area.z});
    m.bface_center.insert(m.bface_center.end(), {fc.x, fc.y, fc.z});
    const double r = std::hypot(fc.y, fc.z);
    double th = std::atan2(fc.z, fc.y);
    if (th < 0) th += 2.0 * std::numbers::pi;
    m.bface_rtheta.insert(m.bface_rtheta.end(), {r, th});
    m.bface_group.push_back(static_cast<int>(g));
  };

  auto begin_group = [&](BoundaryGroup g) {
    m.group_begin[static_cast<std::size_t>(g)] = static_cast<index_t>(m.bface2cell.size());
  };
  auto end_group = [&](BoundaryGroup g) {
    m.group_end[static_cast<std::size_t>(g)] = static_cast<index_t>(m.bface2cell.size());
  };

  begin_group(BoundaryGroup::Inlet);  // x-min, outward = -x
  for (int k = 0; k < nt; ++k) {
    for (int j = 0; j < nr; ++j) {
      push_bface(node(0, j, k), node(0, j, k + 1), node(0, j + 1, k + 1), node(0, j + 1, k),
                 cell_id(0, j, k), BoundaryGroup::Inlet);
    }
  }
  end_group(BoundaryGroup::Inlet);

  begin_group(BoundaryGroup::Outlet);  // x-max, outward = +x
  for (int k = 0; k < nt; ++k) {
    for (int j = 0; j < nr; ++j) {
      push_bface(node(nx, j, k), node(nx, j + 1, k), node(nx, j + 1, k + 1),
                 node(nx, j, k + 1), cell_id(nx - 1, j, k), BoundaryGroup::Outlet);
    }
  }
  end_group(BoundaryGroup::Outlet);

  begin_group(BoundaryGroup::Hub);  // r-min, outward = -r
  for (int k = 0; k < nt; ++k) {
    for (int i = 0; i < nx; ++i) {
      push_bface(node(i, 0, k), node(i + 1, 0, k), node(i + 1, 0, k + 1), node(i, 0, k + 1),
                 cell_id(i, 0, k), BoundaryGroup::Hub);
    }
  }
  end_group(BoundaryGroup::Hub);

  begin_group(BoundaryGroup::Casing);  // r-max, outward = +r
  for (int k = 0; k < nt; ++k) {
    for (int i = 0; i < nx; ++i) {
      push_bface(node(i, nr, k), node(i, nr, k + 1), node(i + 1, nr, k + 1),
                 node(i + 1, nr, k), cell_id(i, nr - 1, k), BoundaryGroup::Casing);
    }
  }
  end_group(BoundaryGroup::Casing);

  m.nbface = static_cast<index_t>(m.bface2cell.size());
  return m;
}

double max_closure_error(const AnnulusMesh& mesh) {
  // Accumulate outward area vectors per cell: interior faces contribute
  // +A to owner, -A to neighbor; boundary faces +A to their cell.
  std::vector<double> sum(static_cast<std::size_t>(mesh.ncell) * 3, 0.0);
  for (index_t f = 0; f < mesh.nface; ++f) {
    const index_t c0 = mesh.face2cell[static_cast<std::size_t>(f) * 2];
    const index_t c1 = mesh.face2cell[static_cast<std::size_t>(f) * 2 + 1];
    for (int d = 0; d < 3; ++d) {
      const double a = mesh.face_normal[static_cast<std::size_t>(f) * 3 + d];
      sum[static_cast<std::size_t>(c0) * 3 + d] += a;
      sum[static_cast<std::size_t>(c1) * 3 + d] -= a;
    }
  }
  for (index_t b = 0; b < mesh.nbface; ++b) {
    const index_t c = mesh.bface2cell[static_cast<std::size_t>(b)];
    for (int d = 0; d < 3; ++d) {
      sum[static_cast<std::size_t>(c) * 3 + d] +=
          mesh.bface_normal[static_cast<std::size_t>(b) * 3 + d];
    }
  }
  double worst = 0.0;
  for (index_t c = 0; c < mesh.ncell; ++c) {
    const double n = std::hypot(sum[static_cast<std::size_t>(c) * 3],
                                sum[static_cast<std::size_t>(c) * 3 + 1],
                                sum[static_cast<std::size_t>(c) * 3 + 2]);
    worst = std::max(worst, n);
  }
  return worst;
}

double total_volume(const AnnulusMesh& mesh) {
  double v = 0.0;
  for (const double c : mesh.cell_vol) v += c;
  return v;
}

}  // namespace vcgt::rig
