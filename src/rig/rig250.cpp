#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/rig/rowspec.hpp"

namespace vcgt::rig {

double RigSpec::omega() const { return rpm * 2.0 * std::numbers::pi / 60.0; }

RigSpec rig250_spec(int nrows, double rpm, bool contraction) {
  if (nrows < 1 || nrows > 10) {
    throw std::invalid_argument("rig250_spec: nrows must be in [1, 10]");
  }
  // 10 rows: IGV + four rotor/stator stages + OGV (paper §II-C). Blade
  // counts are plausible stand-ins with co-prime rotor/stator pairs, as in
  // real rigs. With contraction the flow path narrows linearly through the
  // machine (density rises through the stages); either way adjacent rows
  // share their interface-plane radii so the sliding planes overlap exactly.
  struct RowInit {
    const char* name;
    bool rotor;
    int nblades;
    double turning;
  };
  static constexpr RowInit kRows[10] = {
      {"IGV", false, 30, -0.15}, {"R1", true, 23, +0.35}, {"S1", false, 38, -0.30},
      {"R2", true, 29, +0.33},   {"S2", false, 46, -0.29}, {"R3", true, 35, +0.31},
      {"S3", false, 54, -0.27},  {"R4", true, 41, +0.29}, {"S4", false, 62, -0.26},
      {"OGV", false, 50, -0.20},
  };

  constexpr double kRowLength = 0.08;  // axial chord + gap share [m]
  constexpr double kHub = 0.28;
  constexpr double kCasing = 0.40;
  // Machine-exit radii of the contracted flow path.
  constexpr double kHubExit = 0.31;
  constexpr double kCasingExit = 0.385;

  // Global flow-path radii at the row-boundary planes (10 rows of the full
  // machine define the shape; trimming keeps the front portion).
  auto hub_plane = [&](int plane) {
    return contraction ? kHub + (kHubExit - kHub) * plane / 10.0 : kHub;
  };
  auto casing_plane = [&](int plane) {
    return contraction ? kCasing + (kCasingExit - kCasing) * plane / 10.0 : kCasing;
  };

  RigSpec rig;
  rig.name = "Rig250";
  rig.rpm = rpm;
  for (int i = 0; i < nrows; ++i) {
    RowSpec row;
    row.name = kRows[i].name;
    row.rotor = kRows[i].rotor;
    row.nblades = kRows[i].nblades;
    row.turning = kRows[i].turning;
    row.x_min = i * kRowLength;
    row.x_max = (i + 1) * kRowLength;
    row.r_hub = hub_plane(i);
    row.r_casing = casing_plane(i);
    row.r_hub_out = hub_plane(i + 1);
    row.r_casing_out = casing_plane(i + 1);
    rig.rows.push_back(row);
  }
  return rig;
}

RigSpec rig250_with_swan_neck(int nrows, double rpm, bool contraction) {
  RigSpec rig = rig250_spec(nrows, rpm, contraction);
  // Prepend the swan-neck inlet duct: force-free, slightly larger annulus
  // at its own inlet, blending into the IGV inlet plane.
  const RowSpec& igv = rig.rows.front();
  RowSpec swan;
  swan.name = "SWAN";
  swan.rotor = false;
  swan.nblades = 0;  // duct: no blade force
  swan.turning = 0.0;
  swan.x_min = igv.x_min - 0.10;
  swan.x_max = igv.x_min;
  swan.r_hub = std::max(0.05, igv.r_hub - 0.03);
  swan.r_casing = igv.r_casing + 0.02;
  swan.r_hub_out = igv.r_hub;
  swan.r_casing_out = igv.r_casing;
  rig.rows.insert(rig.rows.begin(), swan);
  rig.name = "Rig250+swan";
  return rig;
}

MeshResolution resolution_tier(const std::string& tier) {
  // Stand-ins for the paper's 430M ("coarse") and 4.58B ("fine") meshes at
  // single-machine scale; "tiny" exists for unit tests.
  if (tier == "tiny") return {4, 3, 12};
  if (tier == "coarse") return {6, 4, 36};
  if (tier == "medium") return {10, 6, 60};
  if (tier == "fine") return {12, 8, 96};
  throw std::invalid_argument("resolution_tier: unknown tier '" + tier + "'");
}

}  // namespace vcgt::rig
