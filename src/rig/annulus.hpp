#pragma once
// Annular blade-row mesh generator. Produces a cell-centered unstructured
// finite-volume mesh of one blade row: hexahedral cells on a structured
// (axial, radial, circumferential) lattice, emitted as flat unstructured
// arrays (cells, interior faces, grouped boundary faces) ready for op2
// declaration. The circumferential direction wraps — full-annulus
// periodicity is intrinsic to the face connectivity, exactly as a
// full-annulus URANS model requires (paper §I: full 360-degree domains).
#include <array>
#include <cstdint>
#include <vector>

#include "src/op2/types.hpp"
#include "src/rig/rowspec.hpp"

namespace vcgt::rig {

using op2::index_t;

enum class BoundaryGroup : int {
  Inlet = 0,   ///< x = x_min annulus face
  Outlet = 1,  ///< x = x_max annulus face
  Hub = 2,     ///< r = r_hub (slip wall)
  Casing = 3,  ///< r = r_casing (slip wall)
};

/// Flat unstructured view of one blade row's volume mesh. All geometry is
/// Cartesian (x, y, z) with the machine axis along x; cylindrical helper
/// coordinates (r, theta) are carried for the sliding-plane machinery.
struct AnnulusMesh {
  int nx = 0, nr = 0, ntheta = 0;

  index_t ncell = 0;
  index_t nface = 0;   ///< interior faces (includes the theta-wrap faces)
  index_t nbface = 0;  ///< boundary faces, all groups concatenated

  std::vector<index_t> face2cell;   ///< 2 per face (owner, neighbor)
  std::vector<index_t> bface2cell;  ///< 1 per boundary face (interior cell)

  std::vector<double> cell_center;  ///< 3 per cell (x, y, z)
  std::vector<double> cell_vol;     ///< 1 per cell
  std::vector<double> cell_rtheta;  ///< 2 per cell (r, theta in [0, 2pi))

  std::vector<double> face_normal;  ///< 3 per face, area vector owner->neighbor
  std::vector<double> face_center;  ///< 3 per face

  std::vector<double> bface_normal;  ///< 3 per bface, outward area vector
  std::vector<double> bface_center;  ///< 3 per bface
  std::vector<double> bface_rtheta;  ///< 2 per bface (r, theta)
  std::vector<int> bface_group;      ///< BoundaryGroup per bface

  /// Per-group boundary-face index ranges [begin, end) into the bface set
  /// (faces are emitted group-contiguously).
  std::array<index_t, 4> group_begin{};
  std::array<index_t, 4> group_end{};

  [[nodiscard]] index_t group_size(BoundaryGroup g) const {
    return group_end[static_cast<std::size_t>(g)] - group_begin[static_cast<std::size_t>(g)];
  }
};

/// Generates the row mesh at the given resolution. `ntheta` must be >= 3.
AnnulusMesh generate_row_mesh(const RowSpec& row, const MeshResolution& res);

/// Geometric closure check: per-cell sum of outward face area vectors; the
/// max norm over cells (exactly zero in exact arithmetic — used by tests and
/// as a mesh-quality assertion). Returns the max |sum| over all cells.
double max_closure_error(const AnnulusMesh& mesh);

/// Total meshed volume (sum of cell volumes).
double total_volume(const AnnulusMesh& mesh);

}  // namespace vcgt::rig
