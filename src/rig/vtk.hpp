#pragma once
// Legacy-VTK output of cell-centered fields (as a point cloud of cell
// centers) plus a structured mid-radius cylindrical cut in CSV, used to
// reproduce the paper's Fig. 10 contour snapshots.
#include <string>
#include <vector>

#include "src/rig/annulus.hpp"

namespace vcgt::rig {

/// One named scalar field per cell.
struct CellField {
  std::string name;
  const std::vector<double>* values;  ///< ncell entries
};

/// Writes cell centers and fields as VTK legacy POLYDATA points. Returns
/// false (with a log message) when the file cannot be written.
bool write_vtk_points(const AnnulusMesh& mesh, const std::vector<CellField>& fields,
                      const std::string& path);

/// Writes a CSV of the cells closest to mid-radius, as (x, theta, fields...)
/// rows — the cylindrical mid-span cut of Fig. 10.
bool write_midspan_csv(const AnnulusMesh& mesh, const std::vector<CellField>& fields,
                       const std::string& path);

}  // namespace vcgt::rig
