#pragma once
// Blade-row and compressor-rig specifications.
//
// The paper simulates DLR's Rig250: a 4.5-stage axial test compressor —
// inlet guide vane (IGV), four rotor/stator stages, and an outlet guide vane
// (OGV), i.e. 10 distinct blade rows / fluid zones with 9 sliding-plane
// rotor-stator interfaces (§II-C). The proprietary geometry is replaced by a
// parametric annular duct per row whose blade counts, axial extents and
// radius distribution mimic the rig's proportions; blade action is modelled
// with a distributed body force (see hydra::BladeForce) — the substitution
// table in DESIGN.md explains why this preserves the coupling and scaling
// behaviour under study.
#include <string>
#include <vector>

namespace vcgt::rig {

struct RowSpec {
  std::string name;        ///< e.g. "IGV", "R1", "S3", "OGV"
  bool rotor = false;      ///< rotates at the shaft speed
  int nblades = 30;        ///< blade count (full annulus)
  double x_min = 0.0;      ///< axial extent [m]
  double x_max = 0.1;
  double r_hub = 0.25;     ///< hub radius at the row inlet [m]
  double r_casing = 0.40;  ///< casing radius at the row inlet [m]
  /// Exit radii for a contracting/expanding flow path (<= 0: same as the
  /// inlet values — constant annulus). Radii vary linearly in x; adjacent
  /// rows of a rig share their interface-plane radii so sliding planes
  /// overlap exactly.
  double r_hub_out = 0.0;
  double r_casing_out = 0.0;
  /// Design flow turning produced by the row's blade force [rad]; positive
  /// adds swirl in the rotation direction (rotors), negative removes it
  /// (stators/vanes).
  double turning = 0.0;

  [[nodiscard]] double hub_out() const { return r_hub_out > 0 ? r_hub_out : r_hub; }
  [[nodiscard]] double casing_out() const {
    return r_casing_out > 0 ? r_casing_out : r_casing;
  }
  /// Hub/casing radius at axial position x (linear flow path).
  [[nodiscard]] double hub_at(double x) const {
    const double f = (x - x_min) / (x_max - x_min);
    return r_hub + f * (hub_out() - r_hub);
  }
  [[nodiscard]] double casing_at(double x) const {
    const double f = (x - x_min) / (x_max - x_min);
    return r_casing + f * (casing_out() - r_casing);
  }
};

/// Mesh resolution tiers standing in for the paper's mesh sizes
/// (1-10_430M coarse grid, 1-10_4.58B fine grid; DESIGN.md §5).
struct MeshResolution {
  int nx = 8;      ///< axial cells per row
  int nr = 6;      ///< radial cells
  int ntheta = 48; ///< circumferential cells (full annulus)
};

struct RigSpec {
  std::string name;
  double rpm = 11000.0;  ///< shaft speed
  std::vector<RowSpec> rows;

  [[nodiscard]] int nrows() const { return static_cast<int>(rows.size()); }
  [[nodiscard]] int ninterfaces() const { return nrows() - 1; }
  /// Shaft angular velocity [rad/s].
  [[nodiscard]] double omega() const;
};

/// The full 10-row Rig250-like spec (IGV + R1..S4 + OGV). `nrows` may trim
/// it (e.g. 2 for the paper's 1-2 rows study). With `contraction` the flow
/// path narrows through the machine (hub rising, casing falling), as in the
/// real rig; adjacent rows always share their interface-plane radii.
RigSpec rig250_spec(int nrows = 10, double rpm = 11000.0, bool contraction = false);

/// The 1-10_430M variant: a "swan neck" inlet duct row orienting the flow
/// into the first stage (paper §IV-A1), followed by the `nrows` compressor
/// rows. The swan-neck is a force-free stator-like duct whose exit plane
/// matches the IGV inlet.
RigSpec rig250_with_swan_neck(int nrows = 10, double rpm = 13000.0,
                              bool contraction = false);

/// Resolution tiers: "coarse" (~1-10_430M stand-in), "medium", "fine"
/// (~1-10_4.58B stand-in). Throws on unknown names.
MeshResolution resolution_tier(const std::string& tier);

}  // namespace vcgt::rig
