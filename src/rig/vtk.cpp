#include "src/rig/vtk.hpp"

#include <cmath>
#include <fstream>

#include "src/util/log.hpp"

namespace vcgt::rig {

bool write_vtk_points(const AnnulusMesh& mesh, const std::vector<CellField>& fields,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    util::warn("write_vtk_points: cannot open '{}'", path);
    return false;
  }
  out << "# vtk DataFile Version 3.0\nvcgt cell centers\nASCII\nDATASET POLYDATA\n";
  out << "POINTS " << mesh.ncell << " double\n";
  for (index_t c = 0; c < mesh.ncell; ++c) {
    out << mesh.cell_center[static_cast<std::size_t>(c) * 3 + 0] << ' '
        << mesh.cell_center[static_cast<std::size_t>(c) * 3 + 1] << ' '
        << mesh.cell_center[static_cast<std::size_t>(c) * 3 + 2] << '\n';
  }
  out << "POINT_DATA " << mesh.ncell << '\n';
  for (const auto& f : fields) {
    out << "SCALARS " << f.name << " double 1\nLOOKUP_TABLE default\n";
    for (index_t c = 0; c < mesh.ncell; ++c) {
      out << (*f.values)[static_cast<std::size_t>(c)] << '\n';
    }
  }
  return static_cast<bool>(out);
}

bool write_midspan_csv(const AnnulusMesh& mesh, const std::vector<CellField>& fields,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    util::warn("write_midspan_csv: cannot open '{}'", path);
    return false;
  }
  // The mid-radius layer is the radial index nr/2 of the structured lattice;
  // identify it by closeness to the median radius among distinct r values.
  double r_lo = 1e300, r_hi = -1e300;
  for (index_t c = 0; c < mesh.ncell; ++c) {
    const double r = mesh.cell_rtheta[static_cast<std::size_t>(c) * 2];
    r_lo = std::min(r_lo, r);
    r_hi = std::max(r_hi, r);
  }
  const double r_mid = 0.5 * (r_lo + r_hi);
  const double band = (r_hi - r_lo) / std::max(1, mesh.nr - 1) * 0.51;

  out << "x,theta";
  for (const auto& f : fields) out << ',' << f.name;
  out << '\n';
  for (index_t c = 0; c < mesh.ncell; ++c) {
    const double r = mesh.cell_rtheta[static_cast<std::size_t>(c) * 2];
    if (std::fabs(r - r_mid) > band) continue;
    out << mesh.cell_center[static_cast<std::size_t>(c) * 3] << ','
        << mesh.cell_rtheta[static_cast<std::size_t>(c) * 2 + 1];
    for (const auto& f : fields) out << ',' << (*f.values)[static_cast<std::size_t>(c)];
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace vcgt::rig
