#pragma once
// op2::Set — a class of mesh elements (nodes, edges, cells, boundary faces).
//
// After Context::partition() each rank holds a window of the global set laid
// out as   [ owned | imported exec halo | imported non-exec halo ]
// following OP2's halo taxonomy:
//   * owned        — elements this rank is responsible for;
//   * exec halo    — foreign elements this rank must *redundantly execute*
//                    because they increment locally-owned elements through
//                    some map (owner-compute with redundant computation);
//   * non-exec halo— foreign elements that are only ever *read* through maps
//                    from locally executed elements.
// Halo regions are grouped by source rank and sorted by global id so that
// sender and receiver agree on message ordering without negotiation.
#include <span>
#include <string>
#include <vector>

#include "src/op2/types.hpp"

namespace vcgt::op2 {

class Context;

class Set {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] index_t global_size() const { return global_size_; }

  /// Locally owned element count (== global_size before partitioning and in
  /// serial contexts).
  [[nodiscard]] index_t n_owned() const { return n_owned_; }
  [[nodiscard]] index_t n_exec() const { return n_exec_; }
  [[nodiscard]] index_t n_nonexec() const { return n_nonexec_; }
  /// owned + exec + nonexec; all dats on the set store this many elements.
  [[nodiscard]] index_t total() const { return n_owned_ + n_exec_ + n_nonexec_; }

  /// local index -> global id (identity before partitioning).
  [[nodiscard]] std::span<const index_t> local_to_global() const { return l2g_; }
  [[nodiscard]] index_t global_id(index_t local) const { return l2g_[static_cast<std::size_t>(local)]; }

  [[nodiscard]] Context& context() const { return *ctx_; }
  [[nodiscard]] int id() const { return id_; }

 private:
  friend class Context;
  Set(Context* ctx, int id, std::string name, index_t global_size)
      : ctx_(ctx), id_(id), name_(std::move(name)), global_size_(global_size),
        n_owned_(global_size) {
    l2g_.resize(static_cast<std::size_t>(global_size));
    for (index_t i = 0; i < global_size; ++i) l2g_[static_cast<std::size_t>(i)] = i;
  }

  Context* ctx_;
  int id_;
  std::string name_;
  index_t global_size_;
  index_t n_owned_ = 0;
  index_t n_exec_ = 0;
  index_t n_nonexec_ = 0;
  std::vector<index_t> l2g_;
};

}  // namespace vcgt::op2
