#pragma once
// op2::Set — a class of mesh elements (nodes, edges, cells, boundary faces).
//
// After Context::partition() each rank holds a window of the global set laid
// out as   [ owned | imported exec halo | imported non-exec halo ]
// following OP2's halo taxonomy:
//   * owned        — elements this rank is responsible for;
//   * exec halo    — foreign elements this rank must *redundantly execute*
//                    because they increment locally-owned elements through
//                    some map (owner-compute with redundant computation);
//   * non-exec halo— foreign elements that are only ever *read* through maps
//                    from locally executed elements.
// Halo regions are grouped by source rank and sorted by global id so that
// sender and receiver agree on message ordering without negotiation.
//
// Declaration modes (DESIGN.md §13):
//   * monolithic — every rank declares the full global set (identity
//     numbering, replicated tables); global size capped at index_t range;
//   * sharded    — each rank declares only its shard rows (owned block plus
//     a ghost rind), identified by strictly ascending 64-bit global ids.
//     Global sizes may exceed 32 bits; only the local window must fit.
#include <span>
#include <string>
#include <vector>

#include "src/op2/types.hpp"

namespace vcgt::op2 {

class Context;

class Set {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] gindex_t global_size() const { return global_size_; }

  /// True for sets declared via decl_set_sharded: the pre-partition rows are
  /// a shard (owned block + ghost rind), not the whole global set.
  [[nodiscard]] bool sharded() const { return sharded_; }

  /// Pre-partition local row count: the number of elements this rank
  /// declared data/tables for. Monolithic: the (index_t-ranged) global
  /// size. Sharded: the shard row count. Dats and map tables are sized by
  /// this, never by global_size().
  [[nodiscard]] index_t decl_rows() const { return decl_rows_; }

  /// Locally owned element count (== decl_rows before partitioning in
  /// monolithic mode and in serial contexts).
  [[nodiscard]] index_t n_owned() const { return n_owned_; }
  [[nodiscard]] index_t n_exec() const { return n_exec_; }
  [[nodiscard]] index_t n_nonexec() const { return n_nonexec_; }
  /// owned + exec + nonexec; all dats on the set store this many elements.
  [[nodiscard]] index_t total() const { return n_owned_ + n_exec_ + n_nonexec_; }

  /// local index -> global id (identity before partitioning in monolithic
  /// mode; the shard's ascending gid list in sharded mode).
  [[nodiscard]] std::span<const gindex_t> local_to_global() const { return l2g_; }
  [[nodiscard]] gindex_t global_id(index_t local) const {
    return l2g_[static_cast<std::size_t>(local)];
  }

  [[nodiscard]] Context& context() const { return *ctx_; }
  [[nodiscard]] int id() const { return id_; }

 private:
  friend class Context;
  /// Monolithic: identity numbering over the full global set.
  Set(Context* ctx, int id, std::string name, gindex_t global_size)
      : ctx_(ctx), id_(id), name_(std::move(name)), global_size_(global_size),
        decl_rows_(static_cast<index_t>(global_size)),
        n_owned_(static_cast<index_t>(global_size)) {
    l2g_.resize(static_cast<std::size_t>(global_size));
    for (gindex_t i = 0; i < global_size; ++i) {
      l2g_[static_cast<std::size_t>(i)] = i;
    }
  }
  /// Sharded: this rank's rows are `shard_gids` (strictly ascending).
  Set(Context* ctx, int id, std::string name, gindex_t global_size,
      std::vector<gindex_t> shard_gids)
      : ctx_(ctx), id_(id), name_(std::move(name)), global_size_(global_size),
        decl_rows_(static_cast<index_t>(shard_gids.size())),
        n_owned_(static_cast<index_t>(shard_gids.size())), sharded_(true),
        l2g_(std::move(shard_gids)) {}

  Context* ctx_;
  int id_;
  std::string name_;
  gindex_t global_size_;
  index_t decl_rows_ = 0;
  index_t n_owned_ = 0;
  index_t n_exec_ = 0;
  index_t n_nonexec_ = 0;
  bool sharded_ = false;
  std::vector<gindex_t> l2g_;
};

}  // namespace vcgt::op2
