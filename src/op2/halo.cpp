// Halo construction and exchange — the distributed-memory heart of op2.
//
// Build (at partition time, from globally replicated topology):
//   exec halo of set T on rank p    = foreign elements of T that increment a
//                                     p-owned element through some map
//                                     (redundantly executed by p);
//   nonexec halo of set S on rank p = foreign elements of S read through maps
//                                     from p-executed elements and not
//                                     already in the exec halo.
// Every rank runs the identical deterministic computation over the global
// maps, so import/export orderings agree without negotiation.
//
// Exchange (per loop, via minimpi): nonblocking sends posted in
// exchange_begin, halo-independent "core" elements execute while messages
// are in flight, exchange_end completes the receives (latency hiding).
// Optimizations from the paper's §IV-A5:
//   PH — partial halos: only slots the loop references are exchanged;
//   GH — grouped halos: all dats for the same neighbor share one message.
#include <algorithm>
#include <cstring>

#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <unordered_set>

#include "src/op2/context.hpp"
#include "src/util/log.hpp"
#include "src/util/timer.hpp"
#include "src/util/trace.hpp"

namespace vcgt::op2 {

namespace {

constexpr int kTagHaloBase = 1 << 20;   // + dat id
constexpr int kTagGroupBase = 1 << 21;  // + set id
constexpr int kTagPlanBase = 1 << 22;   // partial-list setup
constexpr int kTagChainBase = 1 << 23;  // + set id (fused chain epochs)

/// Per-set, per-rank global import lists (identical on every rank).
/// Monolithic-only (replicated tables), so gids fit index_t by the
/// decl_set size guard; the sharded path computes imports shard-locally
/// in partition_sharded() instead.
struct ImportTables {
  // [set][rank] -> sorted-unique global ids
  std::vector<std::vector<std::vector<index_t>>> exec;
  std::vector<std::vector<std::vector<index_t>>> nonexec;
};

ImportTables compute_imports(const std::vector<std::unique_ptr<Set>>& sets,
                             const std::vector<std::unique_ptr<Map>>& maps,
                             const std::vector<std::vector<int>>& owners, int nranks) {
  ImportTables t;
  const auto nsets = sets.size();
  std::vector<std::vector<std::unordered_set<index_t>>> exec(nsets),
      nonexec(nsets);
  for (std::size_t s = 0; s < nsets; ++s) {
    exec[s].resize(static_cast<std::size_t>(nranks));
    nonexec[s].resize(static_cast<std::size_t>(nranks));
  }

  // Pass 1: exec halos.
  for (const auto& map : maps) {
    const auto from_id = static_cast<std::size_t>(map->from().id());
    const auto to_id = static_cast<std::size_t>(map->to().id());
    const int dim = map->dim();
    const auto nfrom = static_cast<index_t>(map->from().global_size());
    for (index_t e = 0; e < nfrom; ++e) {
      const int oe = owners[from_id][static_cast<std::size_t>(e)];
      for (int i = 0; i < dim; ++i) {
        const int ot = owners[to_id][static_cast<std::size_t>((*map)(e, i))];
        if (ot != oe) exec[from_id][static_cast<std::size_t>(ot)].insert(e);
      }
    }
  }

  // Pass 2: nonexec halos — targets read by each element's executor set
  // (owner + every rank redundantly executing it) that are neither owned by
  // nor exec-imported to the executor.
  for (const auto& map : maps) {
    const auto from_id = static_cast<std::size_t>(map->from().id());
    const auto to_id = static_cast<std::size_t>(map->to().id());
    const int dim = map->dim();
    std::vector<int> executors;
    const auto nfrom = static_cast<index_t>(map->from().global_size());
    for (index_t e = 0; e < nfrom; ++e) {
      executors.clear();
      executors.push_back(owners[from_id][static_cast<std::size_t>(e)]);
      for (int q = 0; q < nranks; ++q) {
        if (exec[from_id][static_cast<std::size_t>(q)].count(e)) executors.push_back(q);
      }
      for (int i = 0; i < dim; ++i) {
        const index_t g = (*map)(e, i);
        const int og = owners[to_id][static_cast<std::size_t>(g)];
        for (const int q : executors) {
          if (q == og) continue;
          if (exec[to_id][static_cast<std::size_t>(q)].count(g)) continue;
          nonexec[to_id][static_cast<std::size_t>(q)].insert(g);
        }
      }
    }
  }

  auto to_sorted = [](std::vector<std::vector<std::unordered_set<index_t>>>& in) {
    std::vector<std::vector<std::vector<index_t>>> out(in.size());
    for (std::size_t s = 0; s < in.size(); ++s) {
      out[s].resize(in[s].size());
      for (std::size_t q = 0; q < in[s].size(); ++q) {
        out[s][q].assign(in[s][q].begin(), in[s][q].end());
        std::sort(out[s][q].begin(), out[s][q].end());
      }
    }
    return out;
  };
  t.exec = to_sorted(exec);
  t.nonexec = to_sorted(nonexec);
  return t;
}

}  // namespace

void Context::build_halos_and_localize(const std::vector<std::vector<int>>& owners) {
  const int me = rank();
  const int nr = nranks();
  halos_.resize(sets_.size());
  g2l_.resize(sets_.size());

  if (!distributed()) {
    // Serial: every declared row is owned (identity numbering monolithic,
    // the shard's gid list sharded); nothing to localize but the g2l
    // lookup (used by the coupler) must still exist.
    for (auto& set : sets_) {
      set->n_owned_ = set->decl_rows();
      set->n_exec_ = 0;
      set->n_nonexec_ = 0;
      auto& g2l = g2l_[static_cast<std::size_t>(set->id())];
      for (index_t l = 0; l < set->decl_rows(); ++l) g2l.emplace(set->global_id(l), l);
    }
    return;
  }

  const ImportTables imports = compute_imports(sets_, maps_, owners, nr);

  // Local numbering per set: owned (ascending gid) | exec grouped by source
  // rank (ascending gid within) | nonexec likewise.
  for (auto& set : sets_) {
    const auto sid = static_cast<std::size_t>(set->id());
    const auto& own = owners[sid];
    const auto nglobal = static_cast<index_t>(set->global_size());
    std::vector<gindex_t> l2g;
    for (index_t g = 0; g < nglobal; ++g) {
      if (own[static_cast<std::size_t>(g)] == me) l2g.push_back(g);
    }
    set->n_owned_ = static_cast<index_t>(l2g.size());

    SetHalo& halo = halos_[sid];
    auto append_halo = [&](const std::vector<index_t>& gids_for_me) {
      // gids grouped by owner rank ascending, sorted by gid within.
      std::vector<index_t> sorted = gids_for_me;
      std::stable_sort(sorted.begin(), sorted.end(), [&](index_t a, index_t b) {
        const int oa = own[static_cast<std::size_t>(a)];
        const int ob = own[static_cast<std::size_t>(b)];
        return std::tie(oa, a) < std::tie(ob, b);
      });
      for (const index_t g : sorted) {
        l2g.push_back(g);
        halo.slot_src.push_back(own[static_cast<std::size_t>(g)]);
      }
      return sorted.size();
    };
    set->n_exec_ =
        static_cast<index_t>(append_halo(imports.exec[sid][static_cast<std::size_t>(me)]));
    set->n_nonexec_ = static_cast<index_t>(
        append_halo(imports.nonexec[sid][static_cast<std::size_t>(me)]));

    // Receive lists: slots grouped per source rank. Ascending slot order
    // within a source gives (exec slots asc-gid, then nonexec slots asc-gid),
    // matching the send-side packing order below.
    std::map<int, std::vector<index_t>> recv_by_src;
    for (index_t h = 0; h < set->n_exec_ + set->n_nonexec_; ++h) {
      const index_t slot = set->n_owned_ + h;
      recv_by_src[halo.slot_src[static_cast<std::size_t>(h)]].push_back(slot);
    }
    for (auto& [src, slots] : recv_by_src) {
      halo.nbr_recv.push_back(src);
      halo.recv_slots.push_back(std::move(slots));
    }

    // g2l for this set.
    auto& g2l = g2l_[sid];
    for (std::size_t l = 0; l < l2g.size(); ++l) {
      g2l.emplace(l2g[l], static_cast<index_t>(l));
    }
    set->l2g_ = std::move(l2g);
  }

  // Send lists: for each peer q, the gids q imports (exec then nonexec) that
  // I own, ascending gid — mirroring q's per-source slot ordering.
  for (auto& set : sets_) {
    const auto sid = static_cast<std::size_t>(set->id());
    const auto& own = owners[sid];
    SetHalo& halo = halos_[sid];
    const auto& g2l = g2l_[sid];
    for (int q = 0; q < nr; ++q) {
      if (q == me) continue;
      std::vector<index_t> send;
      for (const index_t g : imports.exec[sid][static_cast<std::size_t>(q)]) {
        if (own[static_cast<std::size_t>(g)] == me) send.push_back(g2l.at(g));
      }
      for (const index_t g : imports.nonexec[sid][static_cast<std::size_t>(q)]) {
        if (own[static_cast<std::size_t>(g)] == me) send.push_back(g2l.at(g));
      }
      if (!send.empty()) {
        halo.nbr_send.push_back(q);
        halo.send_idx.push_back(std::move(send));
      }
    }
  }

  // Sanity: my recv count from p must equal p's send count to me. Checked
  // here collectively since a mismatch is a silent-corruption bug otherwise.
  for (auto& set : sets_) {
    const auto sid = static_cast<std::size_t>(set->id());
    SetHalo& halo = halos_[sid];
    std::vector<std::vector<std::uint64_t>> sendcounts(
        static_cast<std::size_t>(nr));
    for (auto& v : sendcounts) v.assign(1, 0);
    for (std::size_t i = 0; i < halo.nbr_send.size(); ++i) {
      sendcounts[static_cast<std::size_t>(halo.nbr_send[i])][0] = halo.send_idx[i].size();
    }
    const auto got = comm_.alltoallv(sendcounts);
    for (std::size_t i = 0; i < halo.nbr_recv.size(); ++i) {
      const auto expect = halo.recv_slots[i].size();
      const auto actual = got[static_cast<std::size_t>(halo.nbr_recv[i])][0];
      if (expect != actual) {
        throw std::logic_error(vcgt::util::fmt(
            "op2: halo count mismatch on set '{}': rank {} expects {} from {} but {} sends {}",
            set->name(), me, expect, halo.nbr_recv[i], halo.nbr_recv[i], actual));
      }
    }
  }

  // Localize map tables for all executed (owned + exec) from-set elements.
  for (auto& map : maps_) {
    const Set& from = map->from();
    const Set& to = map->to();
    const auto& g2l_to = g2l_[static_cast<std::size_t>(to.id())];
    const int dim = map->dim();
    const index_t n_executed = from.n_owned() + from.n_exec();
    std::vector<index_t> local(static_cast<std::size_t>(n_executed) *
                               static_cast<std::size_t>(dim));
    for (index_t e = 0; e < n_executed; ++e) {
      const gindex_t ge = from.global_id(e);
      for (int i = 0; i < dim; ++i) {
        const index_t gt =
            map->table_[static_cast<std::size_t>(ge) * static_cast<std::size_t>(dim) +
                        static_cast<std::size_t>(i)];
        const auto it = g2l_to.find(gt);
        if (it == g2l_to.end()) {
          throw std::logic_error(vcgt::util::fmt(
              "op2: map '{}' references global {} of set '{}' missing from rank {}'s halo",
              map->name(), gt, to.name(), me));
        }
        local[static_cast<std::size_t>(e) * static_cast<std::size_t>(dim) +
              static_cast<std::size_t>(i)] = it->second;
      }
    }
    map->table_ = std::move(local);
  }

  // Localize dats (copies owned + initial halo values — halos start clean).
  // Monolithic: the pre-partition source row of local l IS its gid, which
  // narrows losslessly (decl_set guard).
  for (auto& dat : dats_) {
    const auto l2g = dat->set().local_to_global();
    std::vector<index_t> src(l2g.size());
    for (std::size_t i = 0; i < l2g.size(); ++i) src[i] = static_cast<index_t>(l2g[i]);
    dat->localize(src);
  }
}

std::vector<index_t> Context::needed_halo_slots(const LoopPlan& plan, const Set& target,
                                                const std::vector<ArgInfo>& args,
                                                bool include_exec_direct) const {
  std::unordered_set<index_t> slots;
  for (const auto& a : args) {
    if (!a.dat || !a.map || &a.map->to() != &target || !access_reads(a.acc)) continue;
    const int i0 = a.idx == kIdxAll ? 0 : a.idx;
    const int i1 = a.idx == kIdxAll ? a.map->dim() : a.idx + 1;
    for (index_t e = 0; e < plan.n_executed; ++e) {
      for (int i = i0; i < i1; ++i) {
        const index_t t = (*a.map)(e, i);
        if (t >= target.n_owned()) slots.insert(t);
      }
    }
  }
  if (include_exec_direct) {
    for (index_t h = 0; h < target.n_exec(); ++h) slots.insert(target.n_owned() + h);
  }
  std::vector<index_t> out(slots.begin(), slots.end());
  std::sort(out.begin(), out.end());
  return out;
}

void Context::build_partial_lists(LoopPlan& plan, const std::vector<ArgInfo>& args) {
  // Collective: each rank tells each owner which global ids this loop needs;
  // owners store matching send sublists. Orderings agree because both sides
  // sort by global id.
  const int nr = nranks();
  for (auto& sc : plan.comms) {
    const Set& s = *sc.set;
    const SetHalo& halo = halos_[static_cast<std::size_t>(s.id())];
    const auto needed = needed_halo_slots(plan, s, args, sc.covers_exec_direct);

    // Group needed slots by source rank; sort by gid within a source.
    std::vector<std::vector<gindex_t>> want_gids(static_cast<std::size_t>(nr));
    std::vector<std::vector<index_t>> want_slots(static_cast<std::size_t>(nr));
    for (const index_t slot : needed) {
      const int src = halo.slot_src[static_cast<std::size_t>(slot - s.n_owned())];
      want_gids[static_cast<std::size_t>(src)].push_back(s.global_id(slot));
      want_slots[static_cast<std::size_t>(src)].push_back(slot);
    }
    for (int q = 0; q < nr; ++q) {
      auto& g = want_gids[static_cast<std::size_t>(q)];
      auto& sl = want_slots[static_cast<std::size_t>(q)];
      std::vector<std::size_t> order(g.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) { return g[a] < g[b]; });
      std::vector<gindex_t> gs(g.size());
      std::vector<index_t> ss(sl.size());
      for (std::size_t i = 0; i < order.size(); ++i) {
        gs[i] = g[order[i]];
        ss[i] = sl[order[i]];
      }
      g = std::move(gs);
      sl = std::move(ss);
    }

    const auto requests = comm_.alltoallv(want_gids);

    sc.full = false;
    // Whether this exchange refreshes the *entire* halo (and may therefore
    // bump halo_clean_epoch) must be agreed collectively: epochs feed the
    // per-loop dirty decision, and if one rank marks a dat clean while its
    // peer does not, the next loop has one side skipping the exchange the
    // other still expects — the orphaned message is then consumed by a
    // later plan sharing the tag (stale or short payloads).
    const bool covers_local =
        static_cast<index_t>(needed.size()) == s.n_exec() + s.n_nonexec();
    sc.covers_full =
        comm_.allreduce(std::uint64_t{covers_local ? 1u : 0u},
                        [](std::uint64_t a, std::uint64_t b) { return a & b; }) != 0;
    sc.nbr_recv.clear();
    sc.recv_slots.clear();
    for (int q = 0; q < nr; ++q) {
      if (q == rank()) continue;
      if (!want_slots[static_cast<std::size_t>(q)].empty()) {
        sc.nbr_recv.push_back(q);
        sc.recv_slots.push_back(std::move(want_slots[static_cast<std::size_t>(q)]));
      }
    }
    sc.nbr_send.clear();
    sc.send_idx.clear();
    const auto& g2l = g2l_[static_cast<std::size_t>(s.id())];
    for (int q = 0; q < nr; ++q) {
      if (q == rank()) continue;
      const auto& req = requests[static_cast<std::size_t>(q)];
      if (req.empty()) continue;
      std::vector<index_t> idx;
      idx.reserve(req.size());
      for (const gindex_t g : req) {
        const auto it = g2l.find(g);
        if (it == g2l.end() || it->second >= s.n_owned()) {
          throw std::logic_error(vcgt::util::fmt(
              "op2: partial-halo request from rank {} for non-owned global {} (set '{}')",
              q, g, s.name()));
        }
        idx.push_back(it->second);
      }
      sc.nbr_send.push_back(q);
      sc.send_idx.push_back(std::move(idx));
    }
  }
  (void)kTagPlanBase;
}

namespace {

/// Send one halo message, converting transient-fault exhaustion into a
/// structured HaloError that names the set and peer. WorldAborted passes
/// through untouched: it is a world-death signal, not a halo failure.
void halo_send(minimpi::Comm& comm, std::span<const std::byte> buf, int peer, int tag,
               const Set& s) {
  try {
    comm.send_bytes(buf, peer, tag);
  } catch (const minimpi::TransientSendError& e) {
    throw HaloError(util::fmt("op2: halo send for set '{}' to rank {} failed: {}", s.name(),
                              peer, e.what()),
                    s.name(), peer, /*sending=*/true);
  }
}

/// Legacy-mode persistent per-neighbor pack buffer: capacity survives across
/// exchanges (send_bytes copies, so the buffer is reusable the moment the
/// call returns). Steady state allocates nothing; `allocs` meters growth.
std::vector<std::byte>& pack_buf(PlanSetComm& sc, std::size_t nbrs, std::size_t i,
                                 std::size_t need, std::uint64_t& allocs) {
  if (sc.send_bufs.size() < nbrs) sc.send_bufs.resize(nbrs);
  auto& buf = sc.send_bufs[i];
  if (need > buf.capacity()) ++allocs;
  buf.resize(need);
  return buf;
}

/// Pool counters onto the trace (halo epochs sample them after completing
/// receives, so counter tracks line up with the halo spans).
void trace_pool_counters(minimpi::Comm& comm) {
  if (!trace::enabled() || !comm.valid()) return;
  const minimpi::PoolStats ps = comm.pool_stats();
  trace::counter("pool:leases", static_cast<double>(ps.leases));
  trace::counter("pool:recycles", static_cast<double>(ps.recycles));
  trace::counter("pool:copies_avoided", static_cast<double>(ps.copies_avoided));
  trace::counter("pool:bytes_zero_copied", static_cast<double>(ps.bytes_zero_copied));
}

}  // namespace

void Context::halo_pack_send(PlanSetComm& sc, std::size_t nbrs, std::size_t i,
                             const std::vector<index_t>& idx,
                             const std::vector<DatBase*>& dats, int peer, int tag,
                             const Set& s) {
  std::size_t need = 0;
  for (const DatBase* d : dats) need += idx.size() * d->elem_bytes();
  if (cfg_.zero_copy_transport) {
    // Zero-copy: gather straight into a pooled slab and move it into the
    // receiver's mailbox. The alloc meter counts per-site payload growth —
    // the deterministic analogue of the legacy capacity bump; pool-level
    // slab allocations are exposed separately via Comm::pool_stats().
    if (sc.send_watermark.size() < nbrs) sc.send_watermark.resize(nbrs, 0);
    if (need > sc.send_watermark[i]) {
      ++halo_buf_allocs_;
      sc.send_watermark[i] = need;
    }
    minimpi::Buffer buf = comm_.lease(need);
    std::size_t off = 0;
    for (DatBase* d : dats) {
      d->gather_elems(idx, buf.data() + off);
      off += idx.size() * d->elem_bytes();
    }
    try {
      comm_.send_owned(std::move(buf), peer, tag);
    } catch (const minimpi::TransientSendError& e) {
      throw HaloError(util::fmt("op2: halo send for set '{}' to rank {} failed: {}",
                                s.name(), peer, e.what()),
                      s.name(), peer, /*sending=*/true);
    }
    return;
  }
  auto& buf = pack_buf(sc, nbrs, i, need, halo_buf_allocs_);
  std::size_t off = 0;
  for (DatBase* d : dats) {
    d->gather_elems(idx, buf.data() + off);
    off += idx.size() * d->elem_bytes();
  }
  halo_send(comm_, buf, peer, tag, s);
}

Context::PendingExchange Context::exchange_begin(LoopPlan& plan,
                                                 const std::vector<ArgInfo>& args) {
  PendingExchange pending;
  if (!distributed()) return pending;

  std::optional<trace::Span> tspan;
  if (!plan.comms.empty()) tspan.emplace("halo:pack_send");
  const std::uint64_t bytes0 = plan.halo_bytes;
  const std::uint64_t msgs0 = plan.halo_msgs;

  for (auto& sc : plan.comms) {
    const Set& s = *sc.set;
    const SetHalo& halo = halos_[static_cast<std::size_t>(s.id())];
    const auto& nbr_send = sc.full ? halo.nbr_send : sc.nbr_send;
    const auto& send_idx = sc.full ? halo.send_idx : sc.send_idx;
    const auto& nbr_recv = sc.full ? halo.nbr_recv : sc.nbr_recv;
    const auto& recv_slots = sc.full ? halo.recv_slots : sc.recv_slots;

    // Which dats on this set are stale for this loop?
    std::vector<DatBase*> dirty;
    for (const auto& a : args) {
      if (!a.dat || &a.dat->set() != &s) continue;
      const bool reads_halo =
          (a.map && access_reads(a.acc)) ||
          (!a.map && access_reads(a.acc) && plan.exec_halo_iterated && sc.covers_exec_direct);
      if (!reads_halo) continue;
      // With partial halos a dat is fresh for this plan if either this
      // plan's subset or the full halo was synchronized since the last
      // write (full refreshes by other plans count).
      const bool stale =
          cfg_.partial_halos
              ? std::max(plan.clean_epoch[a.dat], a.dat->halo_clean_epoch()) <
                    a.dat->write_epoch()
              : a.dat->halo_dirty();
      if (stale && std::find(dirty.begin(), dirty.end(), a.dat) == dirty.end()) {
        dirty.push_back(a.dat);
      }
    }
    if (dirty.empty()) continue;

    if (cfg_.grouped_halos) {
      // One message per neighbor packing every dirty dat. Payloads are
      // packed in AoS order through the dat's layout (gather_elems).
      std::size_t group_eb = 0;
      for (const DatBase* d : dirty) group_eb += d->elem_bytes();
      for (std::size_t i = 0; i < nbr_send.size(); ++i) {
        halo_pack_send(sc, nbr_send.size(), i, send_idx[i], dirty, nbr_send[i],
                       kTagGroupBase + s.id(), s);
        plan.halo_bytes += send_idx[i].size() * group_eb;
        ++plan.halo_msgs;
      }
      for (std::size_t i = 0; i < nbr_recv.size(); ++i) {
        pending.recvs.push_back({dirty, nbr_recv[i], kTagGroupBase + s.id(), &recv_slots[i]});
      }
    } else {
      for (DatBase* d : dirty) {
        const std::vector<DatBase*> one{d};
        for (std::size_t i = 0; i < nbr_send.size(); ++i) {
          halo_pack_send(sc, nbr_send.size(), i, send_idx[i], one, nbr_send[i],
                         kTagHaloBase + d->id(), s);
          plan.halo_bytes += send_idx[i].size() * d->elem_bytes();
          ++plan.halo_msgs;
        }
        for (std::size_t i = 0; i < nbr_recv.size(); ++i) {
          pending.recvs.push_back(
              {{d}, nbr_recv[i], kTagHaloBase + d->id(), &recv_slots[i]});
        }
      }
    }

    // Record cleanliness now: the epochs exchanged are those as of this
    // point; the loop's own writes (post_loop) bump epochs afterwards.
    for (DatBase* d : dirty) {
      plan.clean_epoch[d] = d->write_epoch();
      if (sc.full || sc.covers_full) d->mark_halo_clean();
    }
  }
  if (tspan && tspan->active()) {
    tspan->arg("bytes", static_cast<double>(plan.halo_bytes - bytes0));
    tspan->arg("msgs", static_cast<double>(plan.halo_msgs - msgs0));
    tspan->arg("grouped", cfg_.grouped_halos ? 1.0 : 0.0);
    tspan->arg("partial", cfg_.partial_halos ? 1.0 : 0.0);
  }
  return pending;
}

void Context::exchange_end(LoopPlan& plan, PendingExchange& pending) {
  if (pending.recvs.empty()) return;
  util::Timer t;
  trace::Span tspan("halo:wait");
  std::uint64_t bytes_in = 0;
  for (auto& recv : pending.recvs) {
    // Owned receive: scatter_elems unpacks directly from the sender's slab,
    // which returns to the pool when `buf` drops at the end of the iteration.
    minimpi::Buffer buf;
    try {
      buf = comm_.recv_owned(recv.from, recv.tag);
    } catch (const minimpi::RecvTimeout& e) {
      const std::string set = recv.dats.empty() ? "?" : recv.dats.front()->set().name();
      throw HaloError(util::fmt("op2: halo receive for set '{}' from rank {} timed out: {}",
                                set, recv.from, e.what()),
                      set, recv.from, /*sending=*/false);
    }
    std::size_t off = 0;
    bytes_in += buf.size();
    for (DatBase* d : recv.dats) {
      const std::size_t eb = d->elem_bytes();
      const auto& slots = *recv.slots;
      if (off + slots.size() * eb > buf.size()) {
        throw std::logic_error("op2: halo message shorter than expected");
      }
      d->scatter_elems(slots, buf.data() + off);
      off += slots.size() * eb;
    }
  }
  if (tspan.active()) {
    tspan.arg("bytes", static_cast<double>(bytes_in));
    tspan.arg("msgs", static_cast<double>(pending.recvs.size()));
  }
  trace_pool_counters(comm_);
  plan.halo_seconds += t.elapsed();
  pending.recvs.clear();
}

void Context::chain_exchange(ChainPlan& plan, const ChainSegment& seg) {
  // One fused halo epoch at segment entry: every dirty dat the segment
  // reads through halos travels in one grouped round — one message per
  // (set, neighbor) packing all such dats, always over the full halo lists
  // (the segment's members collectively touch whole halos; partial
  // sublists are a solo-loop optimization). Completed blocking before the
  // first tile runs: within a fused segment there is no per-loop core/tail
  // split to hide the latency behind — fewer epochs is the chain's lever.
  if (!distributed() || seg.epoch_needs.empty()) return;

  // Dirty dats grouped per set, in set-id order (rank-symmetric: epoch
  // needs and cleanliness epochs are identical on every rank).
  std::map<int, std::vector<DatBase*>> dirty_by_set;
  for (const auto& [d, region] : seg.epoch_needs) {
    (void)region;  // full-halo refresh regardless of the required region
    if (d->halo_dirty()) dirty_by_set[d->set().id()].push_back(d);
  }
  if (dirty_by_set.empty()) return;

  trace::Span tspan("chain:epoch");
  util::Timer t;
  const std::uint64_t bytes0 = plan.halo_bytes;
  const std::uint64_t msgs0 = plan.halo_msgs;

  for (auto& [sid, dirty] : dirty_by_set) {
    const Set& s = dirty.front()->set();
    const SetHalo& halo = halos_[static_cast<std::size_t>(sid)];
    PlanSetComm* sc = nullptr;
    for (auto& c : plan.comms) {
      if (c.set == &s) sc = &c;
    }
    if (sc == nullptr) {
      throw std::logic_error(vcgt::util::fmt(
          "op2: chain '{}' epoch for set '{}' has no comm state", plan.name, s.name()));
    }

    std::size_t group_eb = 0;
    for (const DatBase* d : dirty) group_eb += d->elem_bytes();
    for (std::size_t i = 0; i < halo.nbr_send.size(); ++i) {
      halo_pack_send(*sc, halo.nbr_send.size(), i, halo.send_idx[i], dirty,
                     halo.nbr_send[i], kTagChainBase + sid, s);
      plan.halo_bytes += halo.send_idx[i].size() * group_eb;
      ++plan.halo_msgs;
    }
    for (std::size_t i = 0; i < halo.nbr_recv.size(); ++i) {
      minimpi::Buffer buf;
      try {
        buf = comm_.recv_owned(halo.nbr_recv[i], kTagChainBase + sid);
      } catch (const minimpi::RecvTimeout& e) {
        throw HaloError(
            util::fmt("op2: chain epoch receive for set '{}' from rank {} timed out: {}",
                      s.name(), halo.nbr_recv[i], e.what()),
            s.name(), halo.nbr_recv[i], /*sending=*/false);
      }
      if (buf.size() < halo.recv_slots[i].size() * group_eb) {
        throw std::logic_error("op2: chain epoch message shorter than expected");
      }
      std::size_t off = 0;
      for (DatBase* d : dirty) {
        d->scatter_elems(halo.recv_slots[i], buf.data() + off);
        off += halo.recv_slots[i].size() * d->elem_bytes();
      }
    }
    for (DatBase* d : dirty) d->mark_halo_clean();
  }

  ++plan.halo_epochs;
  plan.seconds += t.elapsed();
  if (tspan.active()) {
    tspan.arg("bytes", static_cast<double>(plan.halo_bytes - bytes0));
    tspan.arg("msgs", static_cast<double>(plan.halo_msgs - msgs0));
    tspan.arg("dats", static_cast<double>(seg.epoch_needs.size()));
  }
  trace_pool_counters(comm_);
}

}  // namespace vcgt::op2
