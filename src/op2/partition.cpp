// Set partitioners. The paper (§II-C) notes production tools use Metis or
// Recursive Bisection; we provide Block (baseline), Recursive Coordinate
// Bisection and a greedy k-way graph-growing partitioner (Metis-like in
// spirit). Ownership of the primary set (the one carrying coordinates) is
// computed directly; every other set inherits ownership through its first
// declared map (owner of an element = owner of its first map target),
// matching how OP2 propagates partitions across sets.
#include <algorithm>

#include <numeric>
#include <queue>
#include <stdexcept>
#include <unordered_set>

#include "src/op2/context.hpp"
#include "src/util/log.hpp"

namespace vcgt::op2 {

namespace {

/// Recursive coordinate bisection: split element ids by median along the
/// widest axis, dividing the rank range proportionally.
void rcb_recurse(const Dat<double>& coords, int cdim, std::vector<index_t>& elems,
                 int rank_begin, int rank_end, std::vector<int>& owner) {
  const int nranks = rank_end - rank_begin;
  if (nranks <= 1) {
    for (const index_t e : elems) owner[static_cast<std::size_t>(e)] = rank_begin;
    return;
  }
  // Widest bounding-box axis.
  int axis = 0;
  double best_extent = -1.0;
  for (int a = 0; a < cdim; ++a) {
    double lo = 1e300, hi = -1e300;
    for (const index_t e : elems) {
      const double v = coords.at(e, a);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_extent) {
      best_extent = hi - lo;
      axis = a;
    }
  }
  const int left_ranks = nranks / 2;
  const auto split = static_cast<std::size_t>(
      static_cast<double>(elems.size()) * left_ranks / nranks);
  std::nth_element(elems.begin(), elems.begin() + static_cast<std::ptrdiff_t>(split),
                   elems.end(), [&](index_t a, index_t b) {
                     const double va = coords.at(a, axis);
                     const double vb = coords.at(b, axis);
                     return va < vb || (va == vb && a < b);
                   });
  std::vector<index_t> left(elems.begin(), elems.begin() + static_cast<std::ptrdiff_t>(split));
  std::vector<index_t> right(elems.begin() + static_cast<std::ptrdiff_t>(split), elems.end());
  rcb_recurse(coords, cdim, left, rank_begin, rank_begin + left_ranks, owner);
  rcb_recurse(coords, cdim, right, rank_begin + left_ranks, rank_end, owner);
}

/// Adjacency of the primary set built from every map targeting it: two
/// primary elements are adjacent when some element of another set references
/// both (e.g. the two endpoints of an edge).
std::vector<std::vector<index_t>> build_adjacency(
    const Set& primary, const std::vector<std::unique_ptr<Map>>& maps) {
  std::vector<std::vector<index_t>> adj(static_cast<std::size_t>(primary.global_size()));
  for (const auto& map : maps) {
    if (&map->to() != &primary || map->dim() < 2) continue;
    const auto table = map->table();
    const auto dim = static_cast<std::size_t>(map->dim());
    const auto n = static_cast<std::size_t>(map->from().global_size());
    for (std::size_t e = 0; e < n; ++e) {
      for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t j = i + 1; j < dim; ++j) {
          const index_t a = table[e * dim + i];
          const index_t b = table[e * dim + j];
          if (a == b) continue;
          adj[static_cast<std::size_t>(a)].push_back(b);
          adj[static_cast<std::size_t>(b)].push_back(a);
        }
      }
    }
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adj;
}

/// Greedy k-way graph growing: seeds a partition at the lowest-numbered
/// unassigned element and BFS-grows it to the target size.
std::vector<int> kway_partition(const Set& primary,
                                const std::vector<std::unique_ptr<Map>>& maps, int nranks) {
  const auto n = static_cast<std::size_t>(primary.global_size());
  const auto adj = build_adjacency(primary, maps);
  std::vector<int> owner(n, -1);
  std::size_t assigned = 0;
  std::size_t scan = 0;  // next unassigned candidate seed
  for (int r = 0; r < nranks; ++r) {
    const std::size_t target =
        (n * static_cast<std::size_t>(r + 1)) / static_cast<std::size_t>(nranks) - assigned;
    std::queue<index_t> frontier;
    std::size_t grown = 0;
    while (grown < target && assigned < n) {
      if (frontier.empty()) {
        while (scan < n && owner[scan] != -1) ++scan;
        if (scan >= n) break;
        frontier.push(static_cast<index_t>(scan));
        owner[scan] = r;
        ++assigned;
        ++grown;
      }
      const index_t v = frontier.front();
      frontier.pop();
      for (const index_t w : adj[static_cast<std::size_t>(v)]) {
        if (grown >= target) break;
        if (owner[static_cast<std::size_t>(w)] == -1) {
          owner[static_cast<std::size_t>(w)] = r;
          ++assigned;
          ++grown;
          frontier.push(w);
        }
      }
    }
  }
  // Anything left (disconnected remnants) goes to the last rank.
  for (auto& o : owner) {
    if (o == -1) o = nranks - 1;
  }
  return owner;
}

}  // namespace

std::vector<std::vector<int>> Context::compute_owners(
    Partitioner p, const std::vector<const Dat<double>*>& primaries) const {
  const int nranks = this->nranks();
  std::vector<std::vector<int>> owners(sets_.size());
  std::vector<bool> resolved(sets_.size(), false);

  for (const Dat<double>* coords : primaries) {
    const Set& primary = coords->set();
    auto& pown = owners[static_cast<std::size_t>(primary.id())];
    pown.assign(static_cast<std::size_t>(primary.global_size()), 0);
    if (nranks > 1) {
      switch (p) {
        case Partitioner::Block: {
          const gindex_t n = primary.global_size();
          for (gindex_t g = 0; g < n; ++g) {
            pown[static_cast<std::size_t>(g)] = block_owner(g, n, nranks);
          }
          break;
        }
        case Partitioner::Rcb: {
          std::vector<index_t> elems(static_cast<std::size_t>(primary.global_size()));
          std::iota(elems.begin(), elems.end(), index_t{0});
          rcb_recurse(*coords, coords->dim(), elems, 0, nranks, pown);
          break;
        }
        case Partitioner::Kway:
          pown = kway_partition(primary, maps_, nranks);
          break;
      }
    }
    resolved[static_cast<std::size_t>(primary.id())] = true;
  }

  // Propagate to the remaining sets through maps (owner of first target).
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const auto& map : maps_) {
      const auto from_id = static_cast<std::size_t>(map->from().id());
      const auto to_id = static_cast<std::size_t>(map->to().id());
      if (resolved[from_id] || !resolved[to_id]) continue;
      auto& own = owners[from_id];
      own.resize(static_cast<std::size_t>(map->from().global_size()));
      const auto nfrom = static_cast<index_t>(map->from().global_size());
      for (index_t e = 0; e < nfrom; ++e) {
        own[static_cast<std::size_t>(e)] =
            owners[to_id][static_cast<std::size_t>((*map)(e, 0))];
      }
      resolved[from_id] = true;
      progressed = true;
    }
  }

  // Sets unreachable from the primary set fall back to block partitioning.
  for (std::size_t s = 0; s < sets_.size(); ++s) {
    if (resolved[s]) continue;
    const auto n = static_cast<std::size_t>(sets_[s]->global_size());
    owners[s].assign(n, 0);
    if (nranks > 1 && n > 0) {
      for (gindex_t g = 0; g < static_cast<gindex_t>(n); ++g) {
        owners[s][static_cast<std::size_t>(g)] =
            block_owner(g, static_cast<gindex_t>(n), nranks);
      }
      util::warn("op2: set '{}' has no map path to the primary set; block-partitioned",
                 sets_[s]->name());
    }
  }
  return owners;
}

}  // namespace vcgt::op2
