// Greedy conflict coloring for shared-memory execution of loops with
// indirect writes (the data-race handling strategy OP2's OpenMP backend
// uses). Two iteration elements conflict when they touch the same target
// element through any indirect Inc/Write/RW argument; elements of one color
// are race-free and execute concurrently, colors run back to back.
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "src/op2/context.hpp"
#include "src/op2/internal.hpp"

namespace vcgt::op2::detail {

namespace {

/// Colors `elems` (indices into the iteration set) with the greedy
/// first-fit heuristic; returns per-color element lists.
std::vector<std::vector<index_t>> color_elements(
    const std::vector<index_t>& elems, const std::vector<ArgInfo>& conflict_args) {
  // Per target set: bitmask of colors already incident on each target.
  std::unordered_map<const Set*, std::vector<std::uint64_t>> masks;
  for (const auto& a : conflict_args) {
    auto& m = masks[&a.map->to()];
    if (m.empty()) m.assign(static_cast<std::size_t>(a.map->to().total()), 0);
  }

  std::vector<std::vector<index_t>> colors;
  for (const index_t e : elems) {
    std::uint64_t forbidden = 0;
    for (const auto& a : conflict_args) {
      const index_t t = (*a.map)(e, a.idx);
      forbidden |= masks[&a.map->to()][static_cast<std::size_t>(t)];
    }
    int color = 0;
    while (color < 64 && (forbidden >> color) & 1u) ++color;
    if (color == 64) {
      throw std::runtime_error("op2: coloring needs more than 64 colors (degenerate mesh?)");
    }
    for (const auto& a : conflict_args) {
      const index_t t = (*a.map)(e, a.idx);
      masks[&a.map->to()][static_cast<std::size_t>(t)] |= (std::uint64_t{1} << color);
    }
    if (static_cast<std::size_t>(color) >= colors.size()) {
      colors.resize(static_cast<std::size_t>(color) + 1);
    }
    colors[static_cast<std::size_t>(color)].push_back(e);
  }
  return colors;
}

}  // namespace

void build_coloring(LoopPlan& plan, const std::vector<ArgInfo>& args) {
  std::vector<ArgInfo> conflict_args;
  for (const auto& a : args) {
    if (a.dat && a.map && access_writes(a.acc)) conflict_args.push_back(a);
  }
  if (conflict_args.empty()) {
    // No races: any schedule works; keep flat lists (chunked in parallel).
    plan.colored = false;
    return;
  }
  plan.colored = true;
  // Core and tail run sequentially with respect to each other, so each is
  // colored independently (fewer colors, better balance).
  plan.core_colors = color_elements(plan.core, conflict_args);
  plan.tail_colors = color_elements(plan.tail, conflict_args);
}

std::uint64_t arg_signature(const std::vector<ArgInfo>& args) {
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  // Dats and maps enter by declaration id, not address: two Contexts built
  // from the same SessionSpec declare in the same order, so signatures are
  // stable across processes/sessions — what lets the PlanCache validate an
  // imported plan against this context's loops. Within one context ids are
  // as unique as pointers, so the reuse check loses nothing.
  for (const auto& a : args) {
    mix(a.dat ? static_cast<std::uint64_t>(a.dat->id()) + 1 : 0);
    mix(a.map ? static_cast<std::uint64_t>(a.map->id()) + 1 : 0);
    mix(static_cast<std::uint64_t>(a.idx));
    mix(static_cast<std::uint64_t>(a.acc));
    mix(a.is_global ? 1 : 0);
  }
  return h;
}

}  // namespace vcgt::op2::detail
