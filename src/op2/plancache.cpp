#include "src/op2/plancache.hpp"

namespace vcgt::op2 {

std::shared_ptr<const void> PlanCache::lookup(const std::string& key) {
  std::scoped_lock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  return it->second->value;
}

void PlanCache::insert(const std::string& key, std::shared_ptr<const void> value,
                       std::size_t bytes) {
  std::scoped_lock lock(mutex_);
  if (index_.count(key) != 0) return;  // first insertion wins
  if (bytes > max_bytes_) return;      // would evict everything and still not fit
  lru_.push_front(Entry{key, std::move(value), bytes});
  index_[key] = lru_.begin();
  stats_.bytes += bytes;
  stats_.entries = index_.size();
  ++stats_.insertions;
  evict_locked();
}

bool PlanCache::contains(const std::string& key) const {
  std::scoped_lock lock(mutex_);
  return index_.count(key) != 0;
}

void PlanCache::invalidate(const std::string& key) {
  std::scoped_lock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  stats_.bytes -= it->second->bytes;
  lru_.erase(it->second);
  index_.erase(it);
  stats_.entries = index_.size();
}

void PlanCache::clear() {
  std::scoped_lock lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
}

PlanCache::Stats PlanCache::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

void PlanCache::evict_locked() {
  while (stats_.bytes > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = index_.size();
}

}  // namespace vcgt::op2
