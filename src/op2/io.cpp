#include "src/op2/io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "src/util/log.hpp"

namespace vcgt::op2::io {

namespace {
constexpr char kMagic[8] = {'V', 'C', 'G', 'T', 'D', 'A', 'T', '1'};

struct Header {
  char magic[8];
  std::uint32_t dim = 0;
  std::uint32_t reserved = 0;
  std::uint64_t count = 0;  ///< global element count
};
static_assert(sizeof(Header) == 24);
}  // namespace

bool save(Context& ctx, const Dat<double>& dat, const std::string& path) {
  const auto global = ctx.fetch_global(dat);  // collective
  bool ok = true;
  if (ctx.rank() == 0) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      util::warn("op2::io::save: cannot open '{}'", path);
      ok = false;
    } else {
      Header h;
      std::memcpy(h.magic, kMagic, sizeof(kMagic));
      h.dim = static_cast<std::uint32_t>(dat.dim());
      h.count = static_cast<std::uint64_t>(dat.set().global_size());
      out.write(reinterpret_cast<const char*>(&h), sizeof(h));
      out.write(reinterpret_cast<const char*>(global.data()),
                static_cast<std::streamsize>(global.size() * sizeof(double)));
      ok = static_cast<bool>(out);
    }
  }
  if (ctx.distributed()) {
    ok = ctx.comm().bcast_value(ok ? 1 : 0, 0) != 0;
  }
  return ok;
}

bool load(Context& ctx, Dat<double>& dat, const std::string& path) {
  std::vector<double> global;
  int status = 1;  // 1 ok, 0 io error, 2 format error
  if (ctx.rank() == 0) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      status = 0;
    } else {
      Header h{};
      in.read(reinterpret_cast<char*>(&h), sizeof(h));
      if (!in || std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0 ||
          h.dim != static_cast<std::uint32_t>(dat.dim()) ||
          h.count != static_cast<std::uint64_t>(dat.set().global_size())) {
        status = 2;
      } else {
        global.resize(h.count * h.dim);
        in.read(reinterpret_cast<char*>(global.data()),
                static_cast<std::streamsize>(global.size() * sizeof(double)));
        if (!in) status = 0;
      }
    }
  }
  if (ctx.distributed()) {
    status = ctx.comm().bcast_value(status, 0);
    if (status == 1) global = ctx.comm().bcast(std::move(global), 0);
  }
  if (status == 2) {
    throw std::runtime_error("op2::io::load: '" + path + "' does not match the dat");
  }
  if (status == 0) {
    util::warn("op2::io::load: cannot read '{}'", path);
    return false;
  }

  // Scatter through the local numbering; halo slots receive owner-consistent
  // values too, but the dat is marked written so readers re-synchronize.
  const Set& s = dat.set();
  const auto dim = static_cast<std::size_t>(dat.dim());
  for (index_t l = 0; l < s.total(); ++l) {
    const auto g = static_cast<std::size_t>(s.global_id(l));
    for (std::size_t c = 0; c < dim; ++c) {
      dat.at(l, static_cast<int>(c)) = global[g * dim + c];
    }
  }
  dat.mark_written();
  return true;
}

}  // namespace vcgt::op2::io
