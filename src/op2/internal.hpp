#pragma once
// Internal helpers shared between the op2 runtime translation units.
#include <vector>

#include "src/op2/plan.hpp"

namespace vcgt::op2 {
class Context;
}

namespace vcgt::op2::detail {

/// Populates plan.core_colors / plan.tail_colors with conflict-free element
/// groups (greedy distance-2 coloring over the loop's indirect-write maps)
/// and sets plan.colored.
void build_coloring(LoopPlan& plan, const std::vector<ArgInfo>& args);

/// Order-independent hash of the argument metadata, to validate that a loop
/// name is reused with identical arguments.
std::uint64_t arg_signature(const std::vector<ArgInfo>& args);

}  // namespace vcgt::op2::detail
