// Loop-chain planning (DESIGN.md §10): dependence analysis over the
// declared members, coherence-driven segmentation, aligned cross-loop
// tiles and dependence-aware tile coloring, plus the fused-epoch needs.
//
// The plan is built once per chain name and cached; construction is
// collective when distributed because two decisions must be agreed across
// ranks (a divergent decision would desynchronize the fused epochs):
//   * the halo region an indirect read actually touches (scanned locally,
//     allreduce-max'd), and
//   * nothing else — everything downstream is a pure function of the
//     replicated chain structure and those regions.
//
// Execution-order contract (what makes chained == unchained bit-exact):
// inside a fused segment every member's elements run as contiguous
// ascending ranges, tile by tile; the frontier alignment below guarantees
// all producers of a tile's reads ran in the same or an earlier tile, and
// WAR/WAW constraints keep not-yet-run readers/writers ahead of later
// writers. Per-loop floating-point order is therefore exactly the flat
// ascending order of the unchained executor *without latency-hiding
// overlap* — i.e. serial runs always, and distributed runs with
// Config::latency_hiding=false. With latency hiding on, the solo
// executor splits owned elements into core/tail lists and runs core
// before the exchange completes; that split folds indirect increments
// into a shared target in core-then-tail order rather than ascending
// index order, so solo results can differ from flat order at rounding
// level (the fuzz matrix compares them to the oracle at ULP tolerance,
// same as any fold-order-changing option). Chained execution never
// splits — fused epochs complete before the segment's tiles run — so
// chained-vs-unchained bit-identity is only guaranteed when the solo
// side folds in flat order too.
#include <algorithm>
#include <cstdint>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "src/op2/context.hpp"
#include "src/op2/internal.hpp"
#include "src/util/log.hpp"

namespace vcgt::op2 {

const char* chain_dep_name(ChainDepKind k) {
  switch (k) {
    case ChainDepKind::Raw: return "RAW";
    case ChainDepKind::War: return "WAR";
    case ChainDepKind::Waw: return "WAW";
  }
  return "?";
}

namespace {

ChainRegion region_min(ChainRegion a, ChainRegion b) {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}
ChainRegion region_max(ChainRegion a, ChainRegion b) {
  return static_cast<int>(a) < static_cast<int>(b) ? b : a;
}

/// Coherent-region state of every dat inside one segment. Dats not written
/// since segment entry default to Full: the fused epoch refreshes any such
/// dat the segment reads through halos before the first tile runs.
struct CohState {
  std::unordered_map<const DatBase*, ChainRegion> m;
  [[nodiscard]] ChainRegion get(const DatBase* d) const {
    const auto it = m.find(d);
    return it == m.end() ? ChainRegion::Full : it->second;
  }
  [[nodiscard]] bool written(const DatBase* d) const { return m.count(d) != 0; }
};

}  // namespace

ChainPlan& Context::get_chain_plan(const std::string& name,
                                   const std::vector<ChainLoopDecl>& decls) {
  if (const auto it = chains_.find(name); it != chains_.end()) {
    ChainPlan& plan = *it->second;
    if (plan.members.size() != decls.size()) {
      throw std::logic_error(vcgt::util::fmt(
          "op2: chain name '{}' redeclared with {} members (was {})", name, decls.size(),
          plan.members.size()));
    }
    for (std::size_t i = 0; i < decls.size(); ++i) {
      const auto& m = plan.members[i];
      if (m.signature != detail::arg_signature(decls[i].args) || m.set != decls[i].set) {
        throw std::logic_error(vcgt::util::fmt(
            "op2: chain '{}' member '{}' redeclared with different arguments", name,
            decls[i].name));
      }
    }
    return plan;
  }
  if (distributed() && !partitioned_) {
    throw std::logic_error(vcgt::util::fmt(
        "op2: chain '{}' executed before partition() on a distributed context", name));
  }
  auto plan_ptr = std::make_unique<ChainPlan>();
  plan_ptr->name = name;
  build_chain_plan(*plan_ptr, decls);
  auto [it, inserted] = chains_.emplace(name, std::move(plan_ptr));
  (void)inserted;
  return *it->second;
}

const ChainPlan* Context::find_chain(const std::string& name) const {
  const auto it = chains_.find(name);
  return it == chains_.end() ? nullptr : it->second.get();
}

void Context::build_chain_plan(ChainPlan& plan, const std::vector<ChainLoopDecl>& decls) {
  const int nm = static_cast<int>(decls.size());
  plan.signature = 0xcbf29ce484222325ull;

  // --- members -------------------------------------------------------------
  for (int m = 0; m < nm; ++m) {
    const ChainLoopDecl& d = decls[m];
    ChainMemberPlan mp;
    mp.name = d.name;
    mp.set = d.set;
    mp.args = d.args;
    mp.signature = detail::arg_signature(d.args);
    plan.signature ^= mp.signature + 0x9e3779b97f4a7c15ull + (plan.signature << 6) +
                      (plan.signature >> 2);
    for (const auto& a : d.args) {
      if (a.dat && a.map && access_writes(a.acc)) mp.exec_halo_iterated = true;
      if (a.map && &a.map->from() != d.set) {
        throw std::logic_error(vcgt::util::fmt(
            "op2: chain member '{}' uses map '{}' whose from-set is not the iteration set",
            d.name, a.map->name()));
      }
      if (a.is_global && a.acc != Access::Read) mp.standalone = true;
    }
    plan.members.push_back(std::move(mp));
  }

  // --- cross-member dependence edges --------------------------------------
  // Per member: which dats it reads / writes (Inc counts as a write whose
  // result depends on the prior value, so Inc-vs-Inc across members is a
  // WAW ordering constraint as well).
  std::vector<std::unordered_map<const DatBase*, std::pair<bool, bool>>> use(
      static_cast<std::size_t>(nm));  // dat -> (reads, writes)
  for (int m = 0; m < nm; ++m) {
    for (const auto& a : plan.members[static_cast<std::size_t>(m)].args) {
      if (!a.dat) continue;
      auto& rw = use[static_cast<std::size_t>(m)][a.dat];
      rw.first = rw.first || access_reads(a.acc);
      rw.second = rw.second || access_writes(a.acc);
    }
  }
  for (int i = 0; i < nm; ++i) {
    for (int j = i + 1; j < nm; ++j) {
      for (const auto& [dat, rwi] : use[static_cast<std::size_t>(i)]) {
        const auto it = use[static_cast<std::size_t>(j)].find(dat);
        if (it == use[static_cast<std::size_t>(j)].end()) continue;
        const auto& rwj = it->second;
        if (rwi.second && rwj.first) plan.deps.push_back({i, j, dat, ChainDepKind::Raw});
        if (rwi.first && rwj.second) plan.deps.push_back({i, j, dat, ChainDepKind::War});
        if (rwi.second && rwj.second) plan.deps.push_back({i, j, dat, ChainDepKind::Waw});
      }
    }
  }
  // The per-member use maps iterate in pointer order, so the emission order
  // of same-(src,dst) edges is allocation-dependent. Sort into declaration
  // order: downstream passes are order-insensitive, but plan_fingerprint
  // folds the list as-is and must be reproducible across processes (the
  // plan cache revalidates imports against it).
  std::sort(plan.deps.begin(), plan.deps.end(),
            [](const ChainDep& a, const ChainDep& b) {
              return std::tie(a.src, a.dst) < std::tie(b.src, b.dst) ||
                     (a.src == b.src && a.dst == b.dst &&
                      (a.dat->id() < b.dat->id() ||
                       (a.dat->id() == b.dat->id() && a.kind < b.kind)));
            });

  // --- halo regions each indirect read actually touches --------------------
  // Scanned over the member's natural executed range; agreed collectively
  // (one rank seeing only owned+exec targets while another reaches nonexec
  // must not disagree about whether an intra-chain producer covers the
  // read).
  std::vector<std::unordered_map<const DatBase*, ChainRegion>> indirect_req(
      static_cast<std::size_t>(nm));
  for (int m = 0; m < nm; ++m) {
    ChainMemberPlan& mp = plan.members[static_cast<std::size_t>(m)];
    const index_t natural =
        mp.set->n_owned() + (mp.exec_halo_iterated ? mp.set->n_exec() : 0);
    for (const auto& a : mp.args) {
      if (!a.dat || !a.map || !access_reads(a.acc)) continue;
      const Set& tset = a.map->to();
      const index_t lim_oe = tset.n_owned() + tset.n_exec();
      const int i0 = a.idx == kIdxAll ? 0 : a.idx;
      const int i1 = a.idx == kIdxAll ? a.map->dim() : a.idx + 1;
      int local = 0;
      for (index_t e = 0; e < natural && local < 2; ++e) {
        for (int i = i0; i < i1 && local < 2; ++i) {
          const index_t t = (*a.map)(e, i);
          if (t >= lim_oe) local = 2;
          else if (t >= tset.n_owned()) local = local < 1 ? 1 : local;
        }
      }
      if (distributed()) {
        local = static_cast<int>(comm_.allreduce(
            static_cast<std::uint64_t>(local),
            [](std::uint64_t a2, std::uint64_t b2) { return a2 > b2 ? a2 : b2; }));
      }
      auto& req = indirect_req[static_cast<std::size_t>(m)][a.dat];
      req = region_max(req, static_cast<ChainRegion>(local));
    }
  }

  // --- segmentation + exec extension (coherence walk) ----------------------
  std::vector<std::pair<int, int>> seg_ranges;  // inclusive member ranges
  std::vector<std::vector<std::pair<DatBase*, ChainRegion>>> seg_needs;
  CohState coh;
  int seg_first = 0;
  auto close_segment = [&](int last) {  // members [seg_first, last]
    if (last >= seg_first) {
      seg_ranges.emplace_back(seg_first, last);
      if (seg_needs.size() < seg_ranges.size()) seg_needs.emplace_back();
    }
    seg_first = last + 1;
    coh.m.clear();
  };
  auto add_need = [&](std::vector<std::pair<DatBase*, ChainRegion>>& needs, DatBase* d,
                      ChainRegion r) {
    for (auto& [nd, nr] : needs) {
      if (nd == d) {
        nr = region_max(nr, r);
        return;
      }
    }
    needs.emplace_back(d, r);
  };

  for (int m = 0; m < nm; ++m) {
    ChainMemberPlan& mp = plan.members[static_cast<std::size_t>(m)];
    if (mp.standalone) {
      close_segment(m - 1);
      close_segment(m);  // the standalone member alone
      mp.n_executed = mp.set->n_owned() + (mp.exec_halo_iterated ? mp.set->n_exec() : 0);
      continue;
    }

    bool direct_only = true;
    for (const auto& a : mp.args) {
      if (a.dat && a.map) direct_only = false;
    }

    // Extend a direct member over the exec halo when a later member wants
    // to read its output there (RAW consumer whose targets stay within
    // owned+exec) and the member's own inputs are exec-coherent here.
    if (distributed() && direct_only && mp.set->n_exec() > 0) {
      bool want = false;
      for (const auto& dep : plan.deps) {
        if (dep.src != m || dep.kind != ChainDepKind::Raw) continue;
        const auto& reqs = indirect_req[static_cast<std::size_t>(dep.dst)];
        const auto it = reqs.find(dep.dat);
        if (it != reqs.end() && it->second == ChainRegion::OwnedExec) want = true;
      }
      bool can = true;
      for (const auto& a : mp.args) {
        if (!a.dat || !access_reads(a.acc)) continue;
        if (coh.written(a.dat) &&
            static_cast<int>(coh.get(a.dat)) < static_cast<int>(ChainRegion::OwnedExec)) {
          can = false;
        }
      }
      mp.exec_extended = want && can;
    }
    const bool exec_iter = mp.exec_halo_iterated || mp.exec_extended;
    mp.n_executed = mp.set->n_owned() + (exec_iter ? mp.set->n_exec() : 0);

    // Read requirements vs the current coherent state.
    std::vector<std::pair<DatBase*, ChainRegion>> reads;
    for (const auto& a : mp.args) {
      if (!a.dat || !access_reads(a.acc)) continue;
      ChainRegion r;
      if (!a.map) {
        r = exec_iter ? ChainRegion::OwnedExec : ChainRegion::Owned;
      } else {
        r = indirect_req[static_cast<std::size_t>(m)].at(a.dat);
      }
      add_need(reads, a.dat, r);
    }
    bool split = false;
    for (const auto& [d, r] : reads) {
      if (coh.written(d) && static_cast<int>(coh.get(d)) < static_cast<int>(r)) {
        split = true;
      }
    }
    if (split) close_segment(m - 1);

    // Entry reads through halos become fused-epoch needs of the (possibly
    // new) current segment.
    if (seg_needs.size() < seg_ranges.size() + 1) seg_needs.emplace_back();
    for (const auto& [d, r] : reads) {
      if (static_cast<int>(r) > static_cast<int>(ChainRegion::Owned) && !coh.written(d)) {
        add_need(seg_needs[seg_ranges.size()], d, r);
      }
    }

    // Apply the member's writes to the coherent state.
    for (const auto& a : mp.args) {
      if (!a.dat || !access_writes(a.acc)) continue;
      const ChainRegion produced =
          a.map ? ChainRegion::Owned
                : (exec_iter ? ChainRegion::OwnedExec : ChainRegion::Owned);
      if (a.acc == Access::Write && !a.map) {
        coh.m[a.dat] = produced;  // pure overwrite: history irrelevant
      } else {
        coh.m[a.dat] = region_min(coh.get(a.dat), produced);
      }
    }
  }
  close_segment(nm - 1);

  // --- segments: tiles, frontiers, colors ----------------------------------
  const int tile = cfg_.chain_tile > 0 ? cfg_.chain_tile : 4096;
  for (std::size_t si = 0; si < seg_ranges.size(); ++si) {
    ChainSegment seg;
    seg.first = seg_ranges[si].first;
    seg.last = seg_ranges[si].second;
    seg.fused = !plan.members[static_cast<std::size_t>(seg.first)].standalone;
    if (si < seg_needs.size() && seg.fused) seg.epoch_needs = seg_needs[si];
    for (int m = seg.first; m <= seg.last; ++m) {
      plan.members[static_cast<std::size_t>(m)].segment = static_cast<int>(si);
    }
    if (!seg.fused) {
      plan.segments.push_back(std::move(seg));
      continue;
    }

    const int count = seg.last - seg.first + 1;
    index_t max_exec = 0;
    for (int m = 0; m < count; ++m) {
      max_exec = std::max(max_exec,
                          plan.members[static_cast<std::size_t>(seg.first + m)].n_executed);
    }
    const int ntiles =
        std::max<index_t>(1, (max_exec + static_cast<index_t>(tile) - 1) /
                                 static_cast<index_t>(tile));
    seg.tile_end.assign(static_cast<std::size_t>(count),
                        std::vector<index_t>(static_cast<std::size_t>(ntiles)));
    for (int m = 0; m < count; ++m) {
      const index_t n = plan.members[static_cast<std::size_t>(seg.first + m)].n_executed;
      for (int t = 0; t < ntiles; ++t) {
        seg.tile_end[static_cast<std::size_t>(m)][static_cast<std::size_t>(t)] =
            static_cast<index_t>((static_cast<std::int64_t>(n) * (t + 1)) / ntiles);
      }
    }

    // Frontier alignment: walk members back-to-front; every dependence
    // (i -> j, i earlier) raises i's boundaries so that whatever j's tile-t
    // prefix touches was already handled by i's tile-t prefix.
    for (int mi = count - 2; mi >= 0; --mi) {
      const int gi = seg.first + mi;
      const ChainMemberPlan& pi = plan.members[static_cast<std::size_t>(gi)];
      auto& bi = seg.tile_end[static_cast<std::size_t>(mi)];
      for (const auto& dep : plan.deps) {
        if (dep.src != gi || dep.dst > seg.last) continue;
        const int mj = dep.dst - seg.first;
        const ChainMemberPlan& pj = plan.members[static_cast<std::size_t>(dep.dst)];
        const auto& bj = seg.tile_end[static_cast<std::size_t>(mj)];
        // A[n] = last i-element whose relevant access touches target n.
        const bool i_writes = dep.kind != ChainDepKind::War;
        const index_t tot = dep.dat->set().total();
        std::vector<index_t> A(static_cast<std::size_t>(tot), index_t{-1});
        for (const auto& a : pi.args) {
          if (a.dat != dep.dat) continue;
          if (i_writes ? !access_writes(a.acc)
                       : !(access_reads(a.acc) || a.acc == Access::Inc)) {
            continue;
          }
          const int i0 = !a.map || a.idx != kIdxAll ? a.idx : 0;
          const int i1 = !a.map ? a.idx + 1 : a.idx == kIdxAll ? a.map->dim() : a.idx + 1;
          for (index_t e = 0; e < pi.n_executed; ++e) {
            for (int i = i0; i < i1; ++i) {
              const index_t n = a.map ? (*a.map)(e, i) : e;
              auto& slot = A[static_cast<std::size_t>(n)];
              slot = std::max(slot, e);
            }
          }
        }
        // need[e] = last i-element member j's element e depends on;
        // prefix-max turns it into a per-boundary constraint.
        const bool j_reads = dep.kind == ChainDepKind::Raw;
        std::vector<index_t> need(static_cast<std::size_t>(pj.n_executed), index_t{-1});
        for (const auto& a : pj.args) {
          if (a.dat != dep.dat) continue;
          if (j_reads ? !(access_reads(a.acc) || a.acc == Access::Inc)
                      : !access_writes(a.acc)) {
            continue;
          }
          const int i0 = !a.map || a.idx != kIdxAll ? a.idx : 0;
          const int i1 = !a.map ? a.idx + 1 : a.idx == kIdxAll ? a.map->dim() : a.idx + 1;
          for (index_t e = 0; e < pj.n_executed; ++e) {
            for (int i = i0; i < i1; ++i) {
              const index_t n = a.map ? (*a.map)(e, i) : e;
              auto& slot = need[static_cast<std::size_t>(e)];
              slot = std::max(slot, A[static_cast<std::size_t>(n)]);
            }
          }
        }
        for (std::size_t e = 1; e < need.size(); ++e) {
          need[e] = std::max(need[e], need[e - 1]);
        }
        for (int t = 0; t < ntiles; ++t) {
          const index_t bjt = bj[static_cast<std::size_t>(t)];
          if (bjt > 0 && !need.empty()) {
            const index_t lim = std::min<index_t>(bjt, static_cast<index_t>(need.size()));
            bi[static_cast<std::size_t>(t)] =
                std::max(bi[static_cast<std::size_t>(t)],
                         need[static_cast<std::size_t>(lim - 1)] + 1);
          }
        }
      }
      for (int t = 1; t < ntiles; ++t) {
        bi[static_cast<std::size_t>(t)] =
            std::max(bi[static_cast<std::size_t>(t)], bi[static_cast<std::size_t>(t - 1)]);
      }
      bi[static_cast<std::size_t>(ntiles - 1)] = pi.n_executed;
    }

    // Dependence-aware tile coloring: a tile conflicting with an earlier
    // tile (shared element of a written dat, read-write or write-write)
    // gets a strictly larger color, so executing colors in ascending order
    // respects every dependence while same-color tiles share nothing
    // written and can run in parallel.
    std::unordered_set<const DatBase*> written;
    for (int m = seg.first; m <= seg.last; ++m) {
      for (const auto& a : plan.members[static_cast<std::size_t>(m)].args) {
        if (a.dat && access_writes(a.acc)) written.insert(a.dat);
      }
    }
    struct Marks {
      std::vector<int> w_tile, w_color, a_tile, a_color;
    };
    std::unordered_map<const DatBase*, Marks> marks;
    for (const DatBase* d : written) {
      Marks mk;
      const auto tot = static_cast<std::size_t>(d->set().total());
      mk.w_tile.assign(tot, -1);
      mk.w_color.assign(tot, -1);
      mk.a_tile.assign(tot, -1);
      mk.a_color.assign(tot, -1);
      marks.emplace(d, std::move(mk));
    }
    seg.tile_colors.assign(static_cast<std::size_t>(ntiles), 0);
    auto for_each_access = [&](int t, auto&& fn) {
      for (int m = 0; m < count; ++m) {
        const ChainMemberPlan& pm = plan.members[static_cast<std::size_t>(seg.first + m)];
        const auto& be = seg.tile_end[static_cast<std::size_t>(m)];
        const index_t lo = t == 0 ? 0 : be[static_cast<std::size_t>(t - 1)];
        const index_t hi = be[static_cast<std::size_t>(t)];
        for (const auto& a : pm.args) {
          if (!a.dat || !written.count(a.dat)) continue;
          const bool w = access_writes(a.acc);
          const bool r = access_reads(a.acc) || a.acc == Access::Inc;
          auto& mk = marks.at(a.dat);
          const int i0 = !a.map || a.idx != kIdxAll ? a.idx : 0;
          const int i1 = !a.map ? a.idx + 1 : a.idx == kIdxAll ? a.map->dim() : a.idx + 1;
          for (index_t e = lo; e < hi; ++e) {
            for (int i = i0; i < i1; ++i) fn(mk, a.map ? (*a.map)(e, i) : e, r, w);
          }
        }
      }
    };
    for (int t = 0; t < ntiles; ++t) {
      int needed = 0;
      for_each_access(t, [&](Marks& mk, index_t n, bool r, bool w) {
        const auto nu = static_cast<std::size_t>(n);
        if (w && mk.a_tile[nu] != -1 && mk.a_tile[nu] != t) {
          needed = std::max(needed, mk.a_color[nu] + 1);
        }
        if (r && mk.w_tile[nu] != -1 && mk.w_tile[nu] != t) {
          needed = std::max(needed, mk.w_color[nu] + 1);
        }
      });
      seg.tile_colors[static_cast<std::size_t>(t)] = needed;
      for_each_access(t, [&](Marks& mk, index_t n, bool r, bool w) {
        const auto nu = static_cast<std::size_t>(n);
        if (w) {
          mk.w_tile[nu] = t;
          mk.w_color[nu] = needed;
        }
        if (r || w) {
          mk.a_tile[nu] = t;
          mk.a_color[nu] = needed;
        }
      });
    }
    seg.n_colors = 1 + *std::max_element(seg.tile_colors.begin(), seg.tile_colors.end());

    plan.segments.push_back(std::move(seg));
  }

  // --- comm state for the fused epochs -------------------------------------
  for (const auto& seg : plan.segments) {
    for (const auto& [d, r] : seg.epoch_needs) {
      const Set* s = &d->set();
      bool have = false;
      for (const auto& sc : plan.comms) have = have || sc.set == s;
      if (!have) {
        PlanSetComm sc;
        sc.set = s;
        sc.full = true;
        plan.comms.push_back(std::move(sc));
      }
      (void)r;
    }
  }
}

}  // namespace vcgt::op2
