#pragma once
// op2::par_loop — the DSL's parallel loop construct (paper Fig. 3).
//
//   op2::par_loop("res_calc", edges, kernel,
//                 op2::arg(x,   0, e2n, Access::Read),
//                 op2::arg(x,   1, e2n, Access::Read),
//                 op2::arg(q,   0, e2c, Access::Read),
//                 op2::arg(res, 0, e2c, Access::Inc));
//
// The kernel receives one pointer per argument (T* — kernels declare const
// T* where they only read). The loop body is written purely element-wise;
// the runtime supplies the parallelization: distributed halo exchanges with
// latency hiding, redundant execution over the exec halo for indirect
// increments, and conflict-free coloring for shared-memory workers —
// exactly the plan structure OP2's code generator emits.
#include <cstdint>
#include <span>
#include <tuple>
#include <utility>
#include <variant>
#include <vector>

#include "src/op2/context.hpp"
#include "src/op2/dat.hpp"
#include "src/op2/map.hpp"
#include "src/op2/plan.hpp"
#include "src/op2/set.hpp"
#include "src/op2/types.hpp"
#include "src/util/timer.hpp"
#include "src/util/trace.hpp"

namespace vcgt::op2 {

// --- argument descriptors ---------------------------------------------------

template <class T>
struct DatArg {
  Dat<T>* dat;
  const Map* map;  ///< null for direct access
  int idx;
  Access acc;
};

template <class T>
struct GblArg {
  Global<T>* g;
  Access acc;
};

/// OP2's op_arg_idx: passes the element's *global* id into the kernel (the
/// same value on every rank regardless of partitioning) — used for
/// element-dependent coefficients, deterministic per-element randomness and
/// debugging output.
struct IdxArg {
  const index_t* l2g = nullptr;  ///< filled by par_loop from the iteration set
};

/// Indirect access: dat[ map(e, idx) ].
template <class T>
[[nodiscard]] DatArg<T> arg(Dat<T>& d, int idx, const Map& m, Access a) {
  return {&d, &m, idx, a};
}
/// Direct access: dat[e].
template <class T>
[[nodiscard]] DatArg<T> arg(Dat<T>& d, Access a) {
  return {&d, nullptr, 0, a};
}
/// Global parameter (Read) or reduction target (Inc/Min/Max).
template <class T>
[[nodiscard]] GblArg<T> arg(Global<T>& g, Access a) {
  return {&g, a};
}
/// Element-id argument: the kernel receives a const index_t* to the
/// element's global id.
[[nodiscard]] inline IdxArg arg_idx() { return {}; }

namespace detail {

template <class T>
ArgInfo to_info(const DatArg<T>& a) {
  return ArgInfo{a.dat, a.map, a.idx, a.acc, false};
}
template <class T>
ArgInfo to_info(const GblArg<T>& a) {
  return ArgInfo{nullptr, nullptr, 0, a.acc, true};
}
inline ArgInfo to_info(const IdxArg&) {
  return ArgInfo{nullptr, nullptr, -1, Access::Read, false};
}

// Bound (per-thread) argument views used in the hot loop: raw pointers only.
template <class T>
struct BoundDat {
  T* base;
  const index_t* table;  ///< null for direct
  int mdim;
  int idx;
  int ddim;
};
template <class T>
struct BoundGbl {
  T* ptr;
};

template <class T>
[[nodiscard]] inline T* resolve(const BoundDat<T>& b, index_t e) {
  const index_t t = b.table
                        ? b.table[static_cast<std::size_t>(e) * static_cast<std::size_t>(b.mdim) +
                                  static_cast<std::size_t>(b.idx)]
                        : e;
  return b.base + static_cast<std::size_t>(t) * static_cast<std::size_t>(b.ddim);
}
template <class T>
[[nodiscard]] inline T* resolve(const BoundGbl<T>& b, index_t) {
  return b.ptr;
}
struct BoundIdx {
  const index_t* l2g;  ///< local -> global of the iteration set
};
[[nodiscard]] inline const index_t* resolve(const BoundIdx& b, index_t e) {
  return b.l2g + e;
}

// Per-argument reduction scratch: nthreads copies for writable globals.
struct NoScratch {};
template <class T>
struct GblScratch {
  std::vector<T> buf;  ///< nthreads * dim, initialized per access mode
  int dim;
};

template <class T>
NoScratch make_scratch(const DatArg<T>&, int) {
  return {};
}
inline NoScratch make_scratch(const IdxArg&, int) { return {}; }
template <class T>
auto make_scratch(const GblArg<T>& a, int nthreads) {
  if (a.acc == Access::Read) return GblScratch<T>{{}, a.g->dim()};
  GblScratch<T> s{{}, a.g->dim()};
  s.buf.resize(static_cast<std::size_t>(nthreads) * static_cast<std::size_t>(a.g->dim()));
  for (int t = 0; t < nthreads; ++t) {
    for (int c = 0; c < a.g->dim(); ++c) {
      const std::size_t i =
          static_cast<std::size_t>(t) * static_cast<std::size_t>(a.g->dim()) +
          static_cast<std::size_t>(c);
      // Inc accumulates from zero; Min/Max fold from the current value.
      s.buf[i] = a.acc == Access::Inc ? T{} : a.g->data()[c];
    }
  }
  return s;
}

template <class T>
BoundDat<T> bind(const DatArg<T>& a, NoScratch&, int) {
  return BoundDat<T>{a.dat->data(), a.map ? a.map->table().data() : nullptr,
                     a.map ? a.map->dim() : 0, a.idx, a.dat->dim()};
}
template <class T>
BoundGbl<T> bind(const GblArg<T>& a, GblScratch<T>& s, int tid) {
  if (a.acc == Access::Read) return BoundGbl<T>{a.g->data()};
  return BoundGbl<T>{s.buf.data() +
                     static_cast<std::size_t>(tid) * static_cast<std::size_t>(s.dim)};
}
inline BoundIdx bind(const IdxArg& a, NoScratch&, int) { return BoundIdx{a.l2g}; }

template <class T>
void merge_scratch(const GblArg<T>& a, const GblScratch<T>& s, int nthreads) {
  if (a.acc == Access::Read) return;
  for (int c = 0; c < s.dim; ++c) {
    T acc = a.g->data()[c];
    for (int t = 0; t < nthreads; ++t) {
      const T v = s.buf[static_cast<std::size_t>(t) * static_cast<std::size_t>(s.dim) +
                        static_cast<std::size_t>(c)];
      switch (a.acc) {
        case Access::Inc: acc += v; break;
        case Access::Min: acc = v < acc ? v : acc; break;
        case Access::Max: acc = v > acc ? v : acc; break;
        default: break;
      }
    }
    a.g->data()[c] = acc;
  }
}
template <class T>
void merge_scratch(const DatArg<T>&, const NoScratch&, int) {}
inline void merge_scratch(const IdxArg&, const NoScratch&, int) {}

template <class T>
void snapshot_global(const GblArg<T>& a, std::vector<double>& out) {
  for (int c = 0; c < a.g->dim(); ++c) out.push_back(static_cast<double>(a.g->data()[c]));
}
template <class T>
void snapshot_global(const DatArg<T>&, std::vector<double>&) {}
inline void snapshot_global(const IdxArg&, std::vector<double>&) {}

template <class T>
void finalize_arg(Context& ctx, const GblArg<T>& a, std::span<const double> initial,
                  std::size_t& cursor) {
  std::vector<T> init(static_cast<std::size_t>(a.g->dim()));
  for (int c = 0; c < a.g->dim(); ++c) init[static_cast<std::size_t>(c)] =
      static_cast<T>(initial[cursor + static_cast<std::size_t>(c)]);
  cursor += static_cast<std::size_t>(a.g->dim());
  ctx.finalize_global(*a.g, a.acc, std::span<const T>(init));
}
template <class T>
void finalize_arg(Context&, const DatArg<T>&, std::span<const double>, std::size_t&) {}
inline void finalize_arg(Context&, const IdxArg&, std::span<const double>, std::size_t&) {}

// par_loop wires the iteration set's numbering into IdxArgs.
inline void attach_set(IdxArg& a, const Set& s) { a.l2g = s.local_to_global().data(); }
template <class A>
void attach_set(A&, const Set&) {}

}  // namespace detail

/// Executes `kernel` once per element of `set` (owned elements, plus the
/// exec halo when any argument is an indirect write — OP2's redundant
/// computation). Collective across the context's communicator.
template <class Kernel, class... As>
void par_loop(const char* name, const Set& set, Kernel&& kernel, As... as) {
  Context& ctx = set.context();
  const std::vector<ArgInfo> infos{detail::to_info(as)...};
  util::Timer timer;

  trace::Span tspan(name);
  LoopPlan& plan = ctx.get_plan(name, set, infos);
  if (tspan.active()) {
    tspan.arg("set_size", static_cast<double>(plan.n_executed));
    tspan.arg("colors",
              static_cast<double>(plan.core_colors.size() + plan.tail_colors.size()));
    tspan.arg("nthreads", static_cast<double>(ctx.config().nthreads));
  }
  auto pending = ctx.exchange_begin(plan, infos);

  const int nthreads = ctx.config().nthreads;
  auto args = std::forward_as_tuple(as...);
  std::apply([&](auto&... a) { (detail::attach_set(a, set), ...); }, args);
  auto scratch = std::apply(
      [&](auto&... a) { return std::make_tuple(detail::make_scratch(a, nthreads)...); }, args);

  // Snapshot globals for distributed Inc finalization.
  std::vector<double> initial;
  std::apply([&](auto&... a) { (detail::snapshot_global(a, initial), ...); }, args);

  constexpr auto idx_seq = std::index_sequence_for<As...>{};
  auto run_span = [&]<std::size_t... I>(std::span<const index_t> elems, int tid,
                                        std::index_sequence<I...>) {
    auto bound = std::make_tuple(
        detail::bind(std::get<I>(args), std::get<I>(scratch), tid)...);
    for (const index_t e : elems) {
      kernel(detail::resolve(std::get<I>(bound), e)...);
    }
  };

  auto run_phase = [&](const std::vector<index_t>& flat,
                       const std::vector<std::vector<index_t>>& colors) {
    if (!plan.colored) {
      if (nthreads <= 1) {
        run_span(std::span<const index_t>(flat), 0, idx_seq);
      } else {
        ctx.pool().parallel_for(flat.size(), [&](int tid, std::size_t b, std::size_t e) {
          run_span(std::span<const index_t>(flat.data() + b, e - b), tid, idx_seq);
        });
      }
      return;
    }
    for (const auto& color : colors) {
      if (nthreads <= 1) {
        run_span(std::span<const index_t>(color), 0, idx_seq);
      } else {
        ctx.pool().parallel_for(color.size(), [&](int tid, std::size_t b, std::size_t e) {
          run_span(std::span<const index_t>(color.data() + b, e - b), tid, idx_seq);
        });
      }
    }
  };

  run_phase(plan.core, plan.core_colors);
  ctx.exchange_end(plan, pending);
  run_phase(plan.tail, plan.tail_colors);

  [&]<std::size_t... I>(std::index_sequence<I...>) {
    (detail::merge_scratch(std::get<I>(args), std::get<I>(scratch), nthreads), ...);
  }(idx_seq);

  std::size_t cursor = 0;
  [&]<std::size_t... I>(std::index_sequence<I...>) {
    (detail::finalize_arg(ctx, std::get<I>(args), std::span<const double>(initial), cursor),
     ...);
  }(idx_seq);

  ctx.post_loop(plan, infos, timer.elapsed());
}

}  // namespace vcgt::op2
