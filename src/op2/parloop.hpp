#pragma once
// op2::par_loop — the DSL's parallel loop construct (paper Fig. 3).
//
//   op2::par_loop("res_calc", edges, kernel,
//                 op2::read(x,   e2n, 0),
//                 op2::read(x,   e2n, 1),
//                 op2::read(q,   e2c, 0),
//                 op2::inc(res,  e2c, 0));
//
// Arguments carry their access mode *in the type* (compile-time access
// tags): a `read()` argument reaches the kernel as `const T*`, so a kernel
// declaring a mutable `T*` parameter for it fails to compile instead of
// silently racing. `write()`, `rw()` and `inc()` hand out `T*`;
// `reduce_sum/min/max()` mark global reduction targets. The pre-redesign
// runtime-enum spelling `op2::arg(..., Access::X)` is gone: access modes
// live in the type, and the old spelling no longer compiles.
//
// The loop body is written purely element-wise; the runtime supplies the
// parallelization: distributed halo exchanges with latency hiding,
// redundant execution over the exec halo for indirect increments,
// conflict-free coloring for shared-memory workers — and, with the layout
// engine (DESIGN.md §8), a vectorized path: when the plan is
// layout-vectorizable (direct unit-stride args over a contiguous element
// range) the executor iterates the index range under a SIMD hint with pure
// strided addressing; otherwise non-unit-stride (SoA/AoSoA, dim > 1)
// arguments are staged through per-thread scratch blocks (OP2's gather
// staging) so kernels never see the layout.
#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/op2/context.hpp"
#include "src/op2/dat.hpp"
#include "src/op2/map.hpp"
#include "src/op2/plan.hpp"
#include "src/op2/set.hpp"
#include "src/op2/simt.hpp"
#include "src/op2/types.hpp"
#include "src/util/timer.hpp"
#include "src/util/trace.hpp"

// Vectorization hint for the layout-vectorizable path. The loop body is
// pure strided arithmetic with no aliasing hazards (the plan predicate
// guarantees direct access and read-only globals), so the hint is safe.
// VCGT_SIMD_OMP (the `simd` CMake preset, -fopenmp-simd) selects `omp simd`;
// otherwise use the compiler-native ivdep-style hint.
#if defined(VCGT_SIMD_OMP)
#define VCGT_SIMD _Pragma("omp simd")
#elif defined(__clang__)
#define VCGT_SIMD _Pragma("clang loop vectorize(enable)")
#elif defined(__GNUC__)
#define VCGT_SIMD _Pragma("GCC ivdep")
#else
#define VCGT_SIMD
#endif

namespace vcgt::op2 {

// --- argument descriptors (access mode in the type) -------------------------

template <class T, Access A>
struct DatArg {
  Dat<T>* dat;
  const Map* map;  ///< null for direct access
  int idx;
  static constexpr Access acc = A;
};

template <class T, Access A>
struct GblArg {
  Global<T>* g;
  static constexpr Access acc = A;
};

/// OP2's op_arg_idx: passes the element's *global* id into the kernel (the
/// same value on every rank regardless of partitioning) — used for
/// element-dependent coefficients, deterministic per-element randomness and
/// debugging output.
struct IdxArg {
  const gindex_t* l2g = nullptr;  ///< filled by par_loop from the iteration set
};

// --- access-tagged builders -------------------------------------------------

/// Direct read: kernel receives `const T*` to dat[e].
template <class T>
[[nodiscard]] DatArg<T, Access::Read> read(Dat<T>& d) {
  return {&d, nullptr, 0};
}
/// Indirect read: kernel receives `const T*` to dat[map(e, idx)].
template <class T>
[[nodiscard]] DatArg<T, Access::Read> read(Dat<T>& d, const Map& m, int idx) {
  return {&d, &m, idx};
}
/// Direct overwrite (no prior value observed).
template <class T>
[[nodiscard]] DatArg<T, Access::Write> write(Dat<T>& d) {
  return {&d, nullptr, 0};
}
/// Indirect overwrite.
template <class T>
[[nodiscard]] DatArg<T, Access::Write> write(Dat<T>& d, const Map& m, int idx) {
  return {&d, &m, idx};
}
/// Direct read-modify-write.
template <class T>
[[nodiscard]] DatArg<T, Access::ReadWrite> rw(Dat<T>& d) {
  return {&d, nullptr, 0};
}
/// Indirect read-modify-write.
template <class T>
[[nodiscard]] DatArg<T, Access::ReadWrite> rw(Dat<T>& d, const Map& m, int idx) {
  return {&d, &m, idx};
}
/// Direct increment (+=).
template <class T>
[[nodiscard]] DatArg<T, Access::Inc> inc(Dat<T>& d) {
  return {&d, nullptr, 0};
}
/// Indirect increment — resolved race-free via coloring / redundant compute.
template <class T>
[[nodiscard]] DatArg<T, Access::Inc> inc(Dat<T>& d, const Map& m, int idx) {
  return {&d, &m, idx};
}

/// Read-only global parameter: kernel receives `const T*`.
template <class T>
[[nodiscard]] GblArg<T, Access::Read> read(Global<T>& g) {
  return {&g};
}
/// Global sum reduction (finalized across ranks).
template <class T>
[[nodiscard]] GblArg<T, Access::Inc> reduce_sum(Global<T>& g) {
  return {&g};
}
/// Global min reduction.
template <class T>
[[nodiscard]] GblArg<T, Access::Min> reduce_min(Global<T>& g) {
  return {&g};
}
/// Global max reduction.
template <class T>
[[nodiscard]] GblArg<T, Access::Max> reduce_max(Global<T>& g) {
  return {&g};
}

/// Element-id argument: the kernel receives a const gindex_t* to the
/// element's 64-bit global id.
[[nodiscard]] inline IdxArg arg_idx() { return {}; }

// --- gather-free row access (CSR/stencil pattern, DESIGN.md §11) ------------

/// Kernel-facing whole-dat read view handed out by op2::read_span: indexes
/// the dat by *local* element id — normally a column id taken from the
/// map row an op2::row argument supplies — with layout-aware addressing,
/// so SpMV-style kernels walk a stencil row without per-slot gathers under
/// any storage layout.
template <class T>
struct DatSpan {
  const T* base = nullptr;
  int ddim = 0;
  Layout layout = Layout::AoS;
  std::size_t cap = 0;  ///< SoA column height (padded element capacity)
  int bshift = 0;       ///< log2(AoSoA block)
  index_t bmask = 0;    ///< AoSoA block - 1
  [[nodiscard]] const T& at(index_t e, int c) const {
    const auto eu = static_cast<std::size_t>(e);
    const auto cu = static_cast<std::size_t>(c);
    const auto du = static_cast<std::size_t>(ddim);
    switch (layout) {
      case Layout::SoA: return base[cu * cap + eu];
      case Layout::AoSoA: {
        const std::size_t o0 =
            (((eu >> bshift) * du) << bshift) + (eu & static_cast<std::size_t>(bmask));
        return base[o0 + (cu << bshift)];
      }
      default: return base[eu * du + cu];
    }
  }
  [[nodiscard]] int dim() const { return ddim; }
};

/// Whole-dat indirect read through every slot of a map row: the kernel
/// receives a DatSpan<T> view. The planner treats the argument as reading
/// all map components (ArgInfo::idx = kIdxAll) for halo needs, core/tail
/// splits and chain regions.
template <class T>
struct SpanReadArg {
  Dat<T>* dat;
  const Map* map;
};
template <class T>
[[nodiscard]] SpanReadArg<T> read_span(Dat<T>& d, const Map& m) {
  return {&d, &m};
}

/// Map-row argument: the kernel receives `const index_t*` pointing at the
/// element's localized map row (`m.dim()` column ids) — the stencil
/// structure itself, with no dat attached.
struct RowArg {
  const Map* map;
};
[[nodiscard]] inline RowArg row(const Map& m) { return {&m}; }

namespace detail {

/// Elements staged per chunk through a scratch block: small enough to stay
/// in L1 alongside the kernel's working set, large enough to amortize the
/// gather (OP2's AoSoA mini-block).
constexpr int kStage = 16;

template <class T, Access A>
ArgInfo to_info(const DatArg<T, A>& a) {
  return ArgInfo{a.dat, a.map, a.idx, A, false};
}
template <class T, Access A>
ArgInfo to_info(const GblArg<T, A>&) {
  return ArgInfo{nullptr, nullptr, 0, A, true};
}
inline ArgInfo to_info(const IdxArg&) {
  return ArgInfo{nullptr, nullptr, -1, Access::Read, false};
}
template <class T>
ArgInfo to_info(const SpanReadArg<T>& a) {
  return ArgInfo{a.dat, a.map, kIdxAll, Access::Read, false};
}
inline ArgInfo to_info(const RowArg& a) {
  return ArgInfo{nullptr, a.map, kIdxAll, Access::Read, false};
}

// --- bound (per-thread) argument views used in the hot loop -----------------

/// Runtime core shared by the typed and legacy layers: raw pointers plus
/// the layout parameters needed to stage non-unit-stride elements.
template <class T>
struct BoundDat {
  T* base;
  const index_t* table;  ///< null for direct
  int mdim;
  int idx;
  int ddim;
  Layout layout;
  std::size_t estride;  ///< element stride (valid when scratch == null)
  std::size_t cap;      ///< SoA column height (elements)
  int bshift;           ///< log2(AoSoA block)
  index_t bmask;        ///< AoSoA block - 1
  T* scratch;           ///< null: direct pointers; else kStage*ddim lane block
  Access acc;
};
struct BoundIdx {
  const gindex_t* l2g;  ///< local -> global of the iteration set
};
template <class T>
struct BoundSpan {
  DatSpan<T> view;
};
struct BoundRow {
  const index_t* table;
  int mdim;
};

/// Typed veneers re-apply the compile-time access tag (constness) over the
/// runtime core.
template <class T, Access A>
struct TBoundDat {
  BoundDat<T> core;
};
template <class T, Access A>
struct TBoundGbl {
  T* ptr;
};

template <class T>
[[nodiscard]] inline index_t tgt(const BoundDat<T>& b, index_t e) {
  return b.table
             ? b.table[static_cast<std::size_t>(e) * static_cast<std::size_t>(b.mdim) +
                       static_cast<std::size_t>(b.idx)]
             : e;
}

// Lane load/store for staged (non-unit-stride) dats: gathers element t's
// components into a contiguous lane, scatters them back after the kernel.
template <class T>
inline void load_lane(const BoundDat<T>& b, index_t t, T* lane) {
  const auto tu = static_cast<std::size_t>(t);
  if (b.layout == Layout::SoA) {
    for (int c = 0; c < b.ddim; ++c) {
      lane[c] = b.base[static_cast<std::size_t>(c) * b.cap + tu];
    }
  } else {  // AoSoA
    const std::size_t o0 = (((tu >> b.bshift) * static_cast<std::size_t>(b.ddim)) << b.bshift) +
                           (tu & static_cast<std::size_t>(b.bmask));
    for (int c = 0; c < b.ddim; ++c) {
      lane[c] = b.base[o0 + (static_cast<std::size_t>(c) << b.bshift)];
    }
  }
}
template <class T>
inline void store_lane(const BoundDat<T>& b, index_t t, const T* lane) {
  const auto tu = static_cast<std::size_t>(t);
  if (b.layout == Layout::SoA) {
    for (int c = 0; c < b.ddim; ++c) {
      b.base[static_cast<std::size_t>(c) * b.cap + tu] = lane[c];
    }
  } else {  // AoSoA
    const std::size_t o0 = (((tu >> b.bshift) * static_cast<std::size_t>(b.ddim)) << b.bshift) +
                           (tu & static_cast<std::size_t>(b.bmask));
    for (int c = 0; c < b.ddim; ++c) {
      b.base[o0 + (static_cast<std::size_t>(c) << b.bshift)] = lane[c];
    }
  }
}

// --- per-element resolution (scalar path) -----------------------------------

/// Kernel pointer for element e: direct storage pointer when unit-stride,
/// else gather into the scratch lane (written back by post()).
template <class T>
[[nodiscard]] inline T* pre(BoundDat<T>& b, index_t e) {
  const index_t t = tgt(b, e);
  if (!b.scratch) return b.base + static_cast<std::size_t>(t) * b.estride;
  load_lane(b, t, b.scratch);
  return b.scratch;
}
template <class T>
inline void post(BoundDat<T>& b, index_t e) {
  if (b.scratch && access_writes(b.acc)) store_lane(b, tgt(b, e), b.scratch);
}

template <class T, Access A>
[[nodiscard]] inline auto pre(TBoundDat<T, A>& b, index_t e) {
  using P = std::conditional_t<A == Access::Read, const T*, T*>;
  return static_cast<P>(pre(b.core, e));
}
template <class T, Access A>
inline void post(TBoundDat<T, A>& b, index_t e) {
  post(b.core, e);
}

template <class T, Access A>
[[nodiscard]] inline auto pre(TBoundGbl<T, A>& b, index_t) {
  using P = std::conditional_t<A == Access::Read, const T*, T*>;
  return static_cast<P>(b.ptr);
}
[[nodiscard]] inline const gindex_t* pre(BoundIdx& b, index_t e) { return b.l2g + e; }
template <class T>
[[nodiscard]] inline DatSpan<T> pre(BoundSpan<T>& b, index_t) {
  return b.view;
}
[[nodiscard]] inline const index_t* pre(BoundRow& b, index_t e) {
  return b.table + static_cast<std::size_t>(e) * static_cast<std::size_t>(b.mdim);
}
template <class T, Access A>
inline void post(TBoundGbl<T, A>&, index_t) {}
inline void post(BoundIdx&, index_t) {}
template <class T>
inline void post(BoundSpan<T>&, index_t) {}
inline void post(BoundRow&, index_t) {}

// --- chunked staging (scalar path over colored/conflict-free spans) ---------

template <class T>
[[nodiscard]] inline bool is_staged(const BoundDat<T>& b) {
  return b.scratch != nullptr;
}
template <class T, Access A>
[[nodiscard]] inline bool is_staged(const TBoundDat<T, A>& b) {
  return b.core.scratch != nullptr;
}
template <class B>
[[nodiscard]] inline bool is_staged(const B&) {
  return false;
}

template <class T>
inline void stage_in(BoundDat<T>& b, const index_t* elems, int m) {
  if (!b.scratch) return;
  for (int k = 0; k < m; ++k) {
    load_lane(b, tgt(b, elems[k]), b.scratch + static_cast<std::size_t>(k * b.ddim));
  }
}
template <class T>
inline void stage_out(BoundDat<T>& b, const index_t* elems, int m) {
  if (!b.scratch || !access_writes(b.acc)) return;
  for (int k = 0; k < m; ++k) {
    store_lane(b, tgt(b, elems[k]), b.scratch + static_cast<std::size_t>(k * b.ddim));
  }
}
template <class T, Access A>
inline void stage_in(TBoundDat<T, A>& b, const index_t* elems, int m) {
  stage_in(b.core, elems, m);
}
template <class T, Access A>
inline void stage_out(TBoundDat<T, A>& b, const index_t* elems, int m) {
  stage_out(b.core, elems, m);
}
template <class B>
inline void stage_in(B&, const index_t*, int) {}
template <class B>
inline void stage_out(B&, const index_t*, int) {}

/// Kernel pointer for chunk lane k (element e): the staged lane when
/// staged, the plain storage pointer otherwise.
template <class T>
[[nodiscard]] inline T* lane(BoundDat<T>& b, index_t e, int k) {
  if (!b.scratch) return b.base + static_cast<std::size_t>(tgt(b, e)) * b.estride;
  return b.scratch + static_cast<std::size_t>(k * b.ddim);
}
template <class T, Access A>
[[nodiscard]] inline auto lane(TBoundDat<T, A>& b, index_t e, int k) {
  using P = std::conditional_t<A == Access::Read, const T*, T*>;
  return static_cast<P>(lane(b.core, e, k));
}
template <class B>
[[nodiscard]] inline auto lane(B& b, index_t e, int) {
  return pre(b, e);
}

// --- vectorized resolution (contiguous direct unit-stride path) -------------
// Only reached when the plan is layout-vectorizable: every dat argument is
// direct and unit-stride (never staged) and globals are read-only, so the
// body is branch-free strided arithmetic the compiler can vectorize.

template <class T>
[[nodiscard]] inline T* vptr(BoundDat<T>& b, index_t e) {
  return b.base + static_cast<std::size_t>(e) * b.estride;
}
template <class T, Access A>
[[nodiscard]] inline auto vptr(TBoundDat<T, A>& b, index_t e) {
  using P = std::conditional_t<A == Access::Read, const T*, T*>;
  return static_cast<P>(b.core.base + static_cast<std::size_t>(e) * b.core.estride);
}
template <class B>
[[nodiscard]] inline auto vptr(B& b, index_t e) {
  return pre(b, e);
}

// --- scratch ----------------------------------------------------------------

struct NoScratch {};
template <class T>
struct DatScratch {
  std::vector<T> buf;  ///< nthreads * kStage * dim; empty when unstaged
};
template <class T>
struct GblScratch {
  std::vector<T> buf;  ///< nthreads * dim, initialized per access mode
  int dim;
};

template <class T>
DatScratch<T> dat_scratch(const Dat<T>& d, int nthreads) {
  DatScratch<T> s;
  if (!d.unit_stride()) {
    s.buf.resize(static_cast<std::size_t>(nthreads) * static_cast<std::size_t>(kStage) *
                 static_cast<std::size_t>(d.dim()));
  }
  return s;
}

template <class T>
GblScratch<T> gbl_scratch(const Global<T>& g, Access acc, int nthreads) {
  if (acc == Access::Read) return GblScratch<T>{{}, g.dim()};
  GblScratch<T> s{{}, g.dim()};
  s.buf.resize(static_cast<std::size_t>(nthreads) * static_cast<std::size_t>(g.dim()));
  for (int t = 0; t < nthreads; ++t) {
    for (int c = 0; c < g.dim(); ++c) {
      const std::size_t i =
          static_cast<std::size_t>(t) * static_cast<std::size_t>(g.dim()) +
          static_cast<std::size_t>(c);
      // Inc accumulates from zero; Min/Max fold from the current value.
      s.buf[i] = acc == Access::Inc ? T{} : g.data()[c];
    }
  }
  return s;
}

template <class T, Access A>
auto make_scratch(const DatArg<T, A>& a, int nthreads) {
  return dat_scratch(*a.dat, nthreads);
}
template <class T, Access A>
auto make_scratch(const GblArg<T, A>& a, int nthreads) {
  return gbl_scratch(*a.g, A, nthreads);
}
inline NoScratch make_scratch(const IdxArg&, int) { return {}; }
template <class T>
NoScratch make_scratch(const SpanReadArg<T>&, int) {
  return {};
}
inline NoScratch make_scratch(const RowArg&, int) { return {}; }

// --- binding ----------------------------------------------------------------

template <class T>
BoundDat<T> dat_bind(Dat<T>* d, const Map* m, int idx, Access acc, DatScratch<T>& s,
                     int tid) {
  int bshift = 0;
  while ((1 << bshift) < d->block()) ++bshift;
  return BoundDat<T>{
      d->data(),
      m ? m->table().data() : nullptr,
      m ? m->dim() : 0,
      idx,
      d->dim(),
      d->layout(),
      d->elem_stride(),
      static_cast<std::size_t>(d->capacity()),
      bshift,
      static_cast<index_t>(d->block() - 1),
      s.buf.empty() ? nullptr
                    : s.buf.data() + static_cast<std::size_t>(tid) *
                                         static_cast<std::size_t>(kStage) *
                                         static_cast<std::size_t>(d->dim()),
      acc};
}
template <class T>
T* gbl_bind(Global<T>* g, Access acc, GblScratch<T>& s, int tid) {
  if (acc == Access::Read) return g->data();
  return s.buf.data() + static_cast<std::size_t>(tid) * static_cast<std::size_t>(s.dim);
}

template <class T, Access A>
TBoundDat<T, A> bind(const DatArg<T, A>& a, DatScratch<T>& s, int tid) {
  return {dat_bind(a.dat, a.map, a.idx, A, s, tid)};
}
template <class T, Access A>
TBoundGbl<T, A> bind(const GblArg<T, A>& a, GblScratch<T>& s, int tid) {
  return {gbl_bind(a.g, A, s, tid)};
}
inline BoundIdx bind(const IdxArg& a, NoScratch&, int) { return BoundIdx{a.l2g}; }
template <class T>
BoundSpan<T> bind(const SpanReadArg<T>& a, NoScratch&, int) {
  int bshift = 0;
  while ((1 << bshift) < a.dat->block()) ++bshift;
  return BoundSpan<T>{DatSpan<T>{a.dat->data(), a.dat->dim(), a.dat->layout(),
                                 static_cast<std::size_t>(a.dat->capacity()), bshift,
                                 static_cast<index_t>(a.dat->block() - 1)}};
}
inline BoundRow bind(const RowArg& a, NoScratch&, int) {
  return BoundRow{a.map->table().data(), a.map->dim()};
}

// --- reduction merge / finalize ---------------------------------------------

template <class T>
void gbl_merge(Global<T>& g, Access acc, const GblScratch<T>& s, int nthreads) {
  if (acc == Access::Read) return;
  for (int c = 0; c < s.dim; ++c) {
    T acc_v = g.data()[c];
    for (int t = 0; t < nthreads; ++t) {
      const T v = s.buf[static_cast<std::size_t>(t) * static_cast<std::size_t>(s.dim) +
                        static_cast<std::size_t>(c)];
      switch (acc) {
        case Access::Inc: acc_v += v; break;
        case Access::Min: acc_v = v < acc_v ? v : acc_v; break;
        case Access::Max: acc_v = v > acc_v ? v : acc_v; break;
        default: break;
      }
    }
    g.data()[c] = acc_v;
  }
}

template <class T, Access A>
void merge_scratch(const GblArg<T, A>& a, const GblScratch<T>& s, int nthreads) {
  gbl_merge(*a.g, A, s, nthreads);
}
template <class A, class S>
void merge_scratch(const A&, const S&, int) {}

// --- deterministic distributed Inc capture (delta fold by global id) --------
// With Config::deterministic_reductions on, a *distributed* loop carrying an
// Inc global cannot just allreduce rank partials: the fold order would then
// depend on the partitioning, breaking bit-identity across rank counts. The
// executor instead runs per-element, captures each element's reduction
// delta from the tid-0 scratch (read, then reset to zero), records it with
// the element's global id for owned elements (exec-halo elements are reset
// but not recorded, so redundant computation never double-counts), and the
// finalize step gathers every rank's (gid, delta) records, sorts by gid and
// folds ascending from zero — exactly the serial executor's flat ascending
// fold for kernels that accumulate one value per component per element
// (multi-accumulation kernels differ only at re-association rounding level,
// within vcgt::verify's ULP policy).

template <class T>
inline void gbl_capture(Access acc, GblScratch<T>& s, std::vector<double>* out) {
  if (acc != Access::Inc) return;
  for (int c = 0; c < s.dim; ++c) {
    T& v = s.buf[static_cast<std::size_t>(c)];
    if (out) out->push_back(static_cast<double>(v));
    v = T{};
  }
}
template <class T, Access A>
inline void capture_delta(const GblArg<T, A>&, GblScratch<T>& s, std::vector<double>* out) {
  gbl_capture(A, s, out);
}
template <class A, class S>
inline void capture_delta(const A&, S&, std::vector<double>*) {}

template <class T, Access A>
inline void count_inc_dims(const GblArg<T, A>& a, std::size_t& n) {
  if (A == Access::Inc) n += static_cast<std::size_t>(a.g->dim());
}
template <class A>
inline void count_inc_dims(const A&, std::size_t&) {}

template <class T, Access A>
void snapshot_global(const GblArg<T, A>& a, std::vector<double>& out) {
  for (int c = 0; c < a.g->dim(); ++c) out.push_back(static_cast<double>(a.g->data()[c]));
}
template <class A>
void snapshot_global(const A&, std::vector<double>&) {}

template <class T>
void gbl_finalize(Context& ctx, Global<T>& g, Access acc, std::span<const double> initial,
                  std::size_t& cursor) {
  std::vector<T> init(static_cast<std::size_t>(g.dim()));
  for (int c = 0; c < g.dim(); ++c) {
    init[static_cast<std::size_t>(c)] =
        static_cast<T>(initial[cursor + static_cast<std::size_t>(c)]);
  }
  cursor += static_cast<std::size_t>(g.dim());
  ctx.finalize_global(g, acc, std::span<const T>(init));
}

template <class T, Access A>
void finalize_arg(Context& ctx, const GblArg<T, A>& a, std::span<const double> initial,
                  std::size_t& cursor) {
  gbl_finalize(ctx, *a.g, A, initial, cursor);
}
template <class A>
void finalize_arg(Context&, const A&, std::span<const double>, std::size_t&) {}

// Finalization under the distributed deterministic-capture path: Inc
// globals fold the gathered (gid, delta) records; Min/Max keep the plain
// order-insensitive allreduce.
template <class T>
void gbl_finalize_det(Context& ctx, Global<T>& g, Access acc,
                      std::span<const double> initial, std::size_t& cursor,
                      std::span<const gindex_t> gids, std::span<const double> deltas,
                      std::size_t stride, std::size_t& off) {
  std::vector<T> init(static_cast<std::size_t>(g.dim()));
  for (int c = 0; c < g.dim(); ++c) {
    init[static_cast<std::size_t>(c)] =
        static_cast<T>(initial[cursor + static_cast<std::size_t>(c)]);
  }
  cursor += static_cast<std::size_t>(g.dim());
  if (acc == Access::Inc) {
    ctx.finalize_global_det(g, std::span<const T>(init), gids, deltas, stride, off);
    off += static_cast<std::size_t>(g.dim());
  } else {
    ctx.finalize_global(g, acc, std::span<const T>(init));
  }
}
template <class T, Access A>
void finalize_arg_det(Context& ctx, const GblArg<T, A>& a, std::span<const double> initial,
                      std::size_t& cursor, std::span<const gindex_t> gids,
                      std::span<const double> deltas, std::size_t stride,
                      std::size_t& off) {
  gbl_finalize_det(ctx, *a.g, A, initial, cursor, gids, deltas, stride, off);
}
template <class A>
void finalize_arg_det(Context&, const A&, std::span<const double>, std::size_t&,
                      std::span<const gindex_t>, std::span<const double>, std::size_t,
                      std::size_t&) {}

// par_loop wires the iteration set's numbering into IdxArgs.
inline void attach_set(IdxArg& a, const Set& s) { a.l2g = s.local_to_global().data(); }
template <class A>
void attach_set(A&, const Set&) {}

// --- SIMT-emulation march (simt.hpp) ----------------------------------------

/// Marches `body(i)` for i in [0, n) as warps of kWarpWidth lanes: lanes run
/// serially in ascending order (results bit-identical to a plain loop) while
/// the warp hooks meter occupancy and branch divergence. Tail warps carry
/// predicated-off lanes (active < kWarpWidth).
template <class F>
inline void simt_march(std::size_t n, F&& body) {
  for (std::size_t w = 0; w < n; w += simt::kWarpWidth) {
    const int active = static_cast<int>(
        std::min<std::size_t>(simt::kWarpWidth, n - w));
    simt::detail::warp_begin();
    for (int l = 0; l < active; ++l) {
      simt::detail::lane_begin(l);
      body(w + static_cast<std::size_t>(l));
    }
    simt::detail::warp_end(active);
  }
}

/// Emits the process-global SIMT counters as trace counter tracks (called by
/// the executor after a SIMT-marched loop when tracing is on).
inline void emit_simt_counters() {
  const simt::Stats st = simt::stats();
  trace::counter("simt:warps", static_cast<double>(st.warps));
  trace::counter("simt:full_warps", static_cast<double>(st.full_warps));
  trace::counter("simt:partial_warps", static_cast<double>(st.partial_warps));
  trace::counter("simt:lanes", static_cast<double>(st.lanes));
  trace::counter("simt:branch_slots", static_cast<double>(st.branch_slots));
  trace::counter("simt:divergent", static_cast<double>(st.divergent_branches));
  trace::counter("simt:convergent", static_cast<double>(st.convergent_branches));
}

}  // namespace detail

/// Executes `kernel` once per element of `set` (owned elements, plus the
/// exec halo when any argument is an indirect write — OP2's redundant
/// computation). Collective across the context's communicator.
template <class Kernel, class... As>
void par_loop(const char* name, const Set& set, Kernel&& kernel, As... as) {
  Context& ctx = set.context();
  const std::vector<ArgInfo> infos{detail::to_info(as)...};
  util::Timer timer;

  trace::Span tspan(name);
  LoopPlan& plan = ctx.get_plan(name, set, infos);
  if (tspan.active()) {
    tspan.arg("set_size", static_cast<double>(plan.n_executed));
    tspan.arg("colors",
              static_cast<double>(plan.core_colors.size() + plan.tail_colors.size()));
    tspan.arg("nthreads", static_cast<double>(ctx.config().nthreads));
    tspan.arg("simd", plan.vectorizable ? 1.0 : 0.0);
  }
  auto pending = ctx.exchange_begin(plan, infos);

  const int nthreads = ctx.config().nthreads;
  auto args = std::forward_as_tuple(as...);
  std::apply([&](auto&... a) { (detail::attach_set(a, set), ...); }, args);
  auto scratch = std::apply(
      [&](auto&... a) { return std::make_tuple(detail::make_scratch(a, nthreads)...); }, args);

  // Snapshot globals for distributed Inc finalization.
  std::vector<double> initial;
  std::apply([&](auto&... a) { (detail::snapshot_global(a, initial), ...); }, args);

  // Chunked staging gathers a block of elements before running their
  // kernels, which would lose updates if two elements of the same chunk
  // write the same indirect target. Colored spans guarantee disjoint
  // targets; otherwise fall back to per-element gather/scatter when a
  // staged indirect-written argument exists.
  bool staged_indirect_write = false;
  bool has_reduction = false;
  for (const auto& a : infos) {
    if (a.dat && a.map && access_writes(a.acc) && !a.dat->unit_stride()) {
      staged_indirect_write = true;
    }
    if (a.is_global && a.acc != Access::Read) has_reduction = true;
  }
  // Deterministic-reduction mode (Config::deterministic_reductions): a loop
  // carrying a reduction runs single-threaded over the flat ascending
  // element list, so the floating-point fold order matches the serial
  // reference executor exactly. The colored-span disjointness guarantee
  // does not hold for the flat list, so chunked staging must re-check the
  // aliasing guard as if uncolored.
  const bool det_run = ctx.config().deterministic_reductions && has_reduction;
  const bool chunk_ok = (plan.colored && !det_run) || !staged_indirect_write;
  // Distributed deterministic reductions: capture per-element Inc deltas
  // keyed by global id so finalize can fold them in ascending-gid order —
  // bit-identical to the serial fold regardless of rank count (see the
  // capture_delta block above and DESIGN.md §11).
  std::size_t inc_gbl_dims = 0;
  std::apply([&](const auto&... a) { (detail::count_inc_dims(a, inc_gbl_dims), ...); },
             args);
  const bool det_capture = det_run && ctx.distributed() && inc_gbl_dims > 0;
  std::vector<gindex_t> delta_gids;
  std::vector<double> delta_vals;

  const bool simt_on = ctx.config().simt;
  constexpr auto idx_seq = std::index_sequence_for<As...>{};
  auto run_span = [&]<std::size_t... I>(std::span<const index_t> elems, int tid,
                                        std::index_sequence<I...>) {
    auto bound = std::make_tuple(
        detail::bind(std::get<I>(args), std::get<I>(scratch), tid)...);
    if (simt_on) {
      // SIMT-emulation lane model: warp-width groups with per-lane
      // predication, ascending lane order (bit-identical results). The
      // per-element gather/scatter path is the always-safe one.
      detail::simt_march(elems.size(), [&](std::size_t i) {
        const index_t e = elems[i];
        kernel(detail::pre(std::get<I>(bound), e)...);
        (detail::post(std::get<I>(bound), e), ...);
      });
      return;
    }
    const bool any_staged = (detail::is_staged(std::get<I>(bound)) || ...);
    if (!any_staged) {
      for (const index_t e : elems) {
        kernel(detail::pre(std::get<I>(bound), e)...);
      }
      return;
    }
    if (chunk_ok) {
      const std::size_t n = elems.size();
      for (std::size_t p = 0; p < n; p += detail::kStage) {
        const int m = static_cast<int>(
            std::min<std::size_t>(detail::kStage, n - p));
        (detail::stage_in(std::get<I>(bound), elems.data() + p, m), ...);
        for (int k = 0; k < m; ++k) {
          kernel(detail::lane(std::get<I>(bound), elems[p + static_cast<std::size_t>(k)],
                              k)...);
        }
        (detail::stage_out(std::get<I>(bound), elems.data() + p, m), ...);
      }
      return;
    }
    for (const index_t e : elems) {
      kernel(detail::pre(std::get<I>(bound), e)...);
      (detail::post(std::get<I>(bound), e), ...);
    }
  };

  // Vectorized path: iterate the contiguous index range directly — no
  // index list, no gathers, unit/constant strides per argument.
  auto run_range = [&]<std::size_t... I>(index_t lo, index_t hi, int tid,
                                         std::index_sequence<I...>) {
    auto bound = std::make_tuple(
        detail::bind(std::get<I>(args), std::get<I>(scratch), tid)...);
    VCGT_SIMD
    for (index_t e = lo; e < hi; ++e) {
      kernel(detail::vptr(std::get<I>(bound), e)...);
    }
  };

  // Deterministic-capture executor: per-element (gather/scatter path, safe
  // for staged indirect writes), tid 0 only, recording Inc deltas for owned
  // elements. SIMT marching is skipped here — lane order is ascending
  // either way, so values are identical; only the occupancy counters are
  // not metered for these loops.
  auto run_capture = [&]<std::size_t... I>(std::span<const index_t> elems,
                                           std::index_sequence<I...>) {
    auto bound = std::make_tuple(
        detail::bind(std::get<I>(args), std::get<I>(scratch), 0)...);
    const auto& l2g = set.local_to_global();
    const index_t nown = set.n_owned();
    for (const index_t e : elems) {
      kernel(detail::pre(std::get<I>(bound), e)...);
      (detail::post(std::get<I>(bound), e), ...);
      std::vector<double>* rec = nullptr;
      if (e < nown) {
        delta_gids.push_back(l2g[static_cast<std::size_t>(e)]);
        rec = &delta_vals;
      }
      (detail::capture_delta(std::get<I>(args), std::get<I>(scratch), rec), ...);
    }
  };

  auto run_phase = [&](const std::vector<index_t>& flat,
                       const std::vector<std::vector<index_t>>& colors, bool contig) {
    if (det_capture) {
      run_capture(std::span<const index_t>(flat), idx_seq);
      return;
    }
    if (det_run) {
      run_span(std::span<const index_t>(flat), 0, idx_seq);
      return;
    }
    if (plan.vectorizable && contig && !flat.empty() && !simt_on) {
      const index_t lo = flat.front();
      if (nthreads <= 1) {
        run_range(lo, lo + static_cast<index_t>(flat.size()), 0, idx_seq);
      } else {
        ctx.pool().parallel_for(flat.size(), [&](int tid, std::size_t b, std::size_t e) {
          run_range(lo + static_cast<index_t>(b), lo + static_cast<index_t>(e), tid,
                    idx_seq);
        });
      }
      return;
    }
    if (!plan.colored) {
      if (nthreads <= 1) {
        run_span(std::span<const index_t>(flat), 0, idx_seq);
      } else {
        ctx.pool().parallel_for(flat.size(), [&](int tid, std::size_t b, std::size_t e) {
          run_span(std::span<const index_t>(flat.data() + b, e - b), tid, idx_seq);
        });
      }
      return;
    }
    for (const auto& color : colors) {
      if (nthreads <= 1) {
        run_span(std::span<const index_t>(color), 0, idx_seq);
      } else {
        ctx.pool().parallel_for(color.size(), [&](int tid, std::size_t b, std::size_t e) {
          run_span(std::span<const index_t>(color.data() + b, e - b), tid, idx_seq);
        });
      }
    }
  };

  run_phase(plan.core, plan.core_colors, plan.core_contig);
  ctx.exchange_end(plan, pending);
  run_phase(plan.tail, plan.tail_colors, plan.tail_contig);

  [&]<std::size_t... I>(std::index_sequence<I...>) {
    (detail::merge_scratch(std::get<I>(args), std::get<I>(scratch), nthreads), ...);
  }(idx_seq);

  std::size_t cursor = 0;
  if (det_capture) {
    std::size_t off = 0;
    [&]<std::size_t... I>(std::index_sequence<I...>) {
      (detail::finalize_arg_det(ctx, std::get<I>(args), std::span<const double>(initial),
                                cursor, std::span<const gindex_t>(delta_gids),
                                std::span<const double>(delta_vals), inc_gbl_dims, off),
       ...);
    }(idx_seq);
  } else {
    [&]<std::size_t... I>(std::index_sequence<I...>) {
      (detail::finalize_arg(ctx, std::get<I>(args), std::span<const double>(initial),
                            cursor),
       ...);
    }(idx_seq);
  }

  if (simt_on && trace::enabled()) detail::emit_simt_counters();
  ctx.post_loop(plan, infos, timer.elapsed());
}

// --- LoopChain (DESIGN.md §10) ----------------------------------------------
//
//   op2::LoopChain chain(ctx, "rk_stage");
//   chain.add("grad",  cells, grad_kernel,  op2::read(q), op2::write(dq));
//   chain.add("flux",  edges, flux_kernel,  op2::read(dq, e2c, 0), ...);
//   chain.add("update", cells, upd_kernel,  op2::read(r), op2::rw(q));
//   chain.execute();   // collective; repeatable (plan cached by name)
//
// Declaring the loops up front hands the planner the whole pipeline at
// once: it classifies the cross-loop dependences, fuses the per-loop halo
// exchanges into one grouped epoch per segment, and executes the member
// loops tile-interleaved — each cross-loop tile walks every member's
// aligned element range before moving on, so intermediate dats are still
// cache-hot when the consumer loop touches them. Per-loop ascending element
// order is preserved inside every tile range, which keeps chained results
// bit-identical to issuing the same par_loops one by one (vcgt::verify's
// chained fuzz group holds the executor to that). Members carrying a global
// reduction run as ordinary standalone par_loops between fused segments.
class LoopChain {
 public:
  LoopChain(Context& ctx, std::string name) : ctx_(ctx), name_(std::move(name)) {}
  LoopChain(const LoopChain&) = delete;
  LoopChain& operator=(const LoopChain&) = delete;

  /// Declares the next member loop. Same argument forms as par_loop; the
  /// kernel and arguments are captured by value.
  template <class Kernel, class... As>
  void add(const char* name, const Set& set, Kernel kernel, As... as) {
    ChainLoopDecl decl;
    decl.name = name;
    decl.set = &set;
    decl.args = {detail::to_info(as)...};
    decls_.push_back(std::move(decl));

    auto args = std::make_tuple(as...);
    std::apply([&](auto&... a) { (detail::attach_set(a, set), ...); }, args);
    const int nthreads = ctx_.config().nthreads;
    auto scratch = std::apply(
        [&](auto&... a) { return std::make_tuple(detail::make_scratch(a, nthreads)...); },
        args);

    Member mem;
    // Fused-tile executor: one contiguous ascending element range, always
    // through the per-element gather/scatter path (safe for staged
    // indirect writes; a tile is too short-lived to amortize chunked
    // staging anyway). Concurrent calls use distinct tids, and scratch
    // blocks are per-tid slices, so same-color tiles may run in parallel.
    mem.run_range = [this, kernel, args, scratch](index_t lo, index_t hi,
                                                  int tid) mutable {
      [&]<std::size_t... I>(std::index_sequence<I...>) {
        auto bound = std::make_tuple(
            detail::bind(std::get<I>(args), std::get<I>(scratch), tid)...);
        if (ctx_.config().simt) {
          detail::simt_march(static_cast<std::size_t>(hi - lo), [&](std::size_t i) {
            const index_t e = lo + static_cast<index_t>(i);
            kernel(detail::pre(std::get<I>(bound), e)...);
            (detail::post(std::get<I>(bound), e), ...);
          });
          return;
        }
        // Same specialization as the solo executor: when no argument is
        // staged (every dat unit-stride), post() is dead for every arg —
        // skipping the calls drops a per-arg scratch check from the hot
        // per-element loop.
        if (!(detail::is_staged(std::get<I>(bound)) || ...)) {
          for (index_t e = lo; e < hi; ++e) {
            kernel(detail::pre(std::get<I>(bound), e)...);
          }
          return;
        }
        for (index_t e = lo; e < hi; ++e) {
          kernel(detail::pre(std::get<I>(bound), e)...);
          (detail::post(std::get<I>(bound), e), ...);
        }
      }(std::index_sequence_for<As...>{});
    };
    // Standalone fallback: the member runs as a full par_loop (its own
    // halo exchange, coloring, reduction merge/finalize machinery).
    mem.run_loop = [&ctx = ctx_, lname = std::string(name), &set, kernel, args]() {
      (void)ctx;
      std::apply([&](const auto&... a) { par_loop(lname.c_str(), set, kernel, a...); },
                 args);
    };
    members_.push_back(std::move(mem));
  }

  /// Executes the declared chain. Collective across the context's
  /// communicator; the plan is built on first call and cached by name.
  void execute() {
    if (decls_.empty()) return;
    ChainPlan& plan = ctx_.get_chain_plan(name_, decls_);
    util::Timer timer;
    trace::Span tspan("chain:" + name_);
    if (tspan.active()) {
      tspan.arg("members", static_cast<double>(plan.members.size()));
      tspan.arg("segments", static_cast<double>(plan.segments.size()));
      tspan.arg("deps", static_cast<double>(plan.deps.size()));
    }
    const int nthreads = ctx_.config().nthreads;
    // Per-member time attribution: fused members run tile-interleaved, so no
    // single span can bracket one member. Accumulate per-member busy time
    // across tiles and emit one complete event per member at the end, under
    // the member's loop name (keeping per-loop summaries/attribution working
    // exactly as for solo par_loops).
    const bool tr = trace::enabled();
    const std::int64_t chain_begin_ns = tr ? trace::now_ns() : 0;
    std::vector<std::atomic<std::int64_t>> member_ns(tr ? members_.size() : 0);
    for (const auto& seg : plan.segments) {
      if (!seg.fused) {
        members_[static_cast<std::size_t>(seg.first)].run_loop();
        continue;
      }
      ctx_.chain_exchange(plan, seg);
      const int count = seg.last - seg.first + 1;
      const int ntiles =
          seg.tile_end.empty() ? 0 : static_cast<int>(seg.tile_end.front().size());
      auto run_tile = [&](int t, int tid) {
        for (int m = 0; m < count; ++m) {
          const auto& be = seg.tile_end[static_cast<std::size_t>(m)];
          const index_t lo = t == 0 ? 0 : be[static_cast<std::size_t>(t - 1)];
          const index_t hi = be[static_cast<std::size_t>(t)];
          if (hi > lo) {
            const std::int64_t t0 = tr ? trace::now_ns() : 0;
            members_[static_cast<std::size_t>(seg.first + m)].run_range(lo, hi, tid);
            if (tr) {
              member_ns[static_cast<std::size_t>(seg.first + m)].fetch_add(
                  trace::now_ns() - t0, std::memory_order_relaxed);
            }
          }
        }
      };
      if (nthreads <= 1) {
        for (int t = 0; t < ntiles; ++t) run_tile(t, 0);
      } else {
        // Colors ascending: a tile's conflicting predecessors carry
        // strictly smaller colors, so they have completed; same-color
        // tiles are conflict-free and run in parallel.
        for (int c = 0; c < seg.n_colors; ++c) {
          std::vector<int> tiles;
          for (int t = 0; t < ntiles; ++t) {
            if (seg.tile_colors[static_cast<std::size_t>(t)] == c) tiles.push_back(t);
          }
          ctx_.pool().parallel_for(tiles.size(), [&](int tid, std::size_t b,
                                                     std::size_t e) {
            for (std::size_t i = b; i < e; ++i) run_tile(tiles[i], tid);
          });
        }
      }
      for (int m = seg.first; m <= seg.last; ++m) {
        const auto& mp = plan.members[static_cast<std::size_t>(m)];
        plan.elements += static_cast<std::uint64_t>(mp.n_executed);
        for (const auto& a : mp.args) {
          if (a.dat && access_writes(a.acc)) a.dat->mark_written();
        }
      }
    }
    if (tr) {
      for (std::size_t m = 0; m < member_ns.size(); ++m) {
        const std::int64_t ns = member_ns[m].load(std::memory_order_relaxed);
        if (ns > 0) trace::complete(plan.members[m].name.c_str(), chain_begin_ns, ns);
      }
    }
    ++plan.invocations;
    plan.seconds += timer.elapsed();
    if (ctx_.config().simt && trace::enabled()) detail::emit_simt_counters();
  }

  /// The cached plan (null before the first execute()).
  [[nodiscard]] const ChainPlan* plan() const { return ctx_.find_chain(name_); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return decls_.size(); }

 private:
  struct Member {
    std::function<void(index_t, index_t, int)> run_range;
    std::function<void()> run_loop;
  };

  Context& ctx_;
  std::string name_;
  std::vector<ChainLoopDecl> decls_;
  std::vector<Member> members_;
};

}  // namespace vcgt::op2
