// Mesh renumbering: reverse Cuthill-McKee over the map-induced adjacency,
// applied pre-partition by permuting the global numbering of one set. This
// is the locality optimization OP2 applies to unstructured meshes before
// building its execution plans.
#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "src/op2/context.hpp"

namespace vcgt::op2 {

namespace {

/// Adjacency of `s` through every declared map targeting it (two elements
/// are adjacent when some element of another set references both).
std::vector<std::vector<index_t>> adjacency_of(
    const Set& s, const std::vector<std::unique_ptr<Map>>& maps) {
  std::vector<std::vector<index_t>> adj(static_cast<std::size_t>(s.global_size()));
  for (const auto& map : maps) {
    if (&map->to() != &s || map->dim() < 2) continue;
    const auto table = map->table();
    const auto dim = static_cast<std::size_t>(map->dim());
    const auto n = static_cast<std::size_t>(map->from().global_size());
    for (std::size_t e = 0; e < n; ++e) {
      for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t j = i + 1; j < dim; ++j) {
          const index_t a = table[e * dim + i];
          const index_t b = table[e * dim + j];
          if (a == b) continue;
          adj[static_cast<std::size_t>(a)].push_back(b);
          adj[static_cast<std::size_t>(b)].push_back(a);
        }
      }
    }
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adj;
}

}  // namespace

std::vector<index_t> Context::reverse_cuthill_mckee(const Set& s) const {
  const auto adj = adjacency_of(s, maps_);
  const auto n = static_cast<std::size_t>(s.global_size());

  // Cuthill-McKee: BFS from a minimum-degree seed, neighbors by ascending
  // degree; then reverse. Disconnected components are swept in seed order.
  std::vector<index_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<std::size_t> degree(n);
  for (std::size_t v = 0; v < n; ++v) degree[v] = adj[v].size();

  std::vector<index_t> seeds(n);
  std::iota(seeds.begin(), seeds.end(), index_t{0});
  std::sort(seeds.begin(), seeds.end(),
            [&](index_t a, index_t b) {
              return std::tie(degree[static_cast<std::size_t>(a)], a) <
                     std::tie(degree[static_cast<std::size_t>(b)], b);
            });

  std::vector<index_t> nbrs;
  for (const index_t seed : seeds) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    std::queue<index_t> frontier;
    frontier.push(seed);
    visited[static_cast<std::size_t>(seed)] = true;
    while (!frontier.empty()) {
      const index_t v = frontier.front();
      frontier.pop();
      order.push_back(v);
      nbrs.clear();
      for (const index_t w : adj[static_cast<std::size_t>(v)]) {
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = true;
          nbrs.push_back(w);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&](index_t a, index_t b) {
        return std::tie(degree[static_cast<std::size_t>(a)], a) <
               std::tie(degree[static_cast<std::size_t>(b)], b);
      });
      for (const index_t w : nbrs) frontier.push(w);
    }
  }
  std::reverse(order.begin(), order.end());

  // order[k] = old id at new position k  ->  perm[old] = new.
  std::vector<index_t> perm(n);
  for (std::size_t k = 0; k < n; ++k) {
    perm[static_cast<std::size_t>(order[k])] = static_cast<index_t>(k);
  }
  return perm;
}

void Context::renumber_set(Set& s, std::span<const index_t> perm) {
  require_not_partitioned("renumber_set");
  if (s.sharded()) {
    // A permutation of the global numbering cannot be applied shard-locally
    // (it would need the full table on every rank, which sharding exists to
    // avoid); sharded setups keep the generator's numbering.
    throw std::logic_error(
        "op2: renumber_set on sharded set '" + s.name() + "' is not supported");
  }
  const auto n = static_cast<std::size_t>(s.global_size());
  if (perm.size() != n) {
    throw std::invalid_argument("op2: renumber_set permutation size mismatch");
  }
  {
    std::vector<bool> seen(n, false);
    for (const index_t p : perm) {
      if (p < 0 || static_cast<std::size_t>(p) >= n || seen[static_cast<std::size_t>(p)]) {
        throw std::invalid_argument("op2: renumber_set: not a permutation");
      }
      seen[static_cast<std::size_t>(p)] = true;
    }
  }

  // Rewrite map tables: targets are relabeled; source rows are moved.
  for (auto& map : maps_) {
    if (&map->to() == &s) {
      for (auto& t : map->table_) t = perm[static_cast<std::size_t>(t)];
    }
    if (&map->from() == &s) {
      const auto dim = static_cast<std::size_t>(map->dim());
      std::vector<index_t> moved(map->table_.size());
      for (std::size_t e = 0; e < n; ++e) {
        const auto ne = static_cast<std::size_t>(perm[e]);
        for (std::size_t i = 0; i < dim; ++i) {
          moved[ne * dim + i] = map->table_[e * dim + i];
        }
      }
      map->table_ = std::move(moved);
    }
  }

  // Permute dats on the set (layout-agnostic: gather every element's
  // payload in old order, scatter to the permuted positions).
  std::vector<index_t> iota(n);
  for (std::size_t e = 0; e < n; ++e) iota[e] = static_cast<index_t>(e);
  for (auto& dat : dats_) {
    if (&dat->set() != &s) continue;
    std::vector<std::byte> payload(n * dat->elem_bytes());
    dat->gather_elems(iota, payload.data());
    dat->scatter_elems(perm, payload.data());
    dat->mark_written();
  }
}

Context::BandwidthStats Context::numbering_bandwidth(const Set& s) const {
  const auto adj = adjacency_of(s, maps_);
  BandwidthStats stats;
  std::size_t count = 0;
  double sum = 0.0;
  for (std::size_t v = 0; v < adj.size(); ++v) {
    for (const index_t w : adj[v]) {
      const auto d = std::abs(static_cast<long>(v) - static_cast<long>(w));
      sum += static_cast<double>(d);
      stats.max = std::max(stats.max, static_cast<index_t>(d));
      ++count;
    }
  }
  stats.mean = count ? sum / static_cast<double>(count) : 0.0;
  return stats;
}

}  // namespace vcgt::op2
