#pragma once
// Loop execution plans. OP2's code generator emits a "plan" per parallel
// loop: which elements can run concurrently (coloring), which elements can
// run while halo messages are in flight (core/tail split for latency
// hiding), and which halo subsets the loop needs (partial halo exchange).
// Here the plan is built at first invocation and cached by loop name.
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/op2/types.hpp"

namespace vcgt::op2 {

class Set;
class Map;
class DatBase;

/// ArgInfo::idx sentinel: the argument reaches *every* component of its map
/// row, not a single slot. Produced by the gather-free access builders
/// (op2::read_span — kernel indexes the whole dat through the row — and
/// op2::row, which has no dat at all); every planner scan that dereferences
/// `(*map)(e, idx)` expands it to the full 0..map.dim()-1 range.
constexpr int kIdxAll = -1;

/// Per-argument metadata extracted from the typed par_loop arguments.
struct ArgInfo {
  DatBase* dat = nullptr;   ///< null for globals and op2::row
  const Map* map = nullptr; ///< null for direct access
  int idx = 0;              ///< map component (0..map.dim-1), or kIdxAll
  Access acc = Access::Read;
  bool is_global = false;
};

/// Communication schedule for one set whose halo this loop may read.
/// When `full` is set the set-wide halo lists are used; otherwise the
/// loop-specific partial sublists (PH optimization) built collectively at
/// plan-construction time.
struct PlanSetComm {
  const Set* set = nullptr;
  bool full = true;
  bool covers_exec_direct = false;  ///< includes iteration set's exec slots
  /// Partial lists that happen to cover the entire halo: the exchange then
  /// counts as a full refresh for dat-level dirtiness (avoids re-exchanging
  /// the same data for every plan touching the dat).
  bool covers_full = false;
  std::vector<int> nbr_send;
  std::vector<std::vector<index_t>> send_idx;   ///< per neighbor: owned local indices
  std::vector<int> nbr_recv;
  std::vector<std::vector<index_t>> recv_slots; ///< per neighbor: local halo slots
  /// Persistent per-neighbor pack buffers: exchange_begin reuses these
  /// across invocations instead of allocating fresh ones (steady-state
  /// allocation count is zero; Context::halo_buffer_allocs() meters growth).
  std::vector<std::vector<std::byte>> send_bufs;
  /// Zero-copy mode: per-neighbor payload high-water marks. The alloc meter
  /// counts growth events against these rather than pool freelist misses —
  /// whether a lease hits the shared pool's freelist depends on cross-rank
  /// timing (a receiver may still hold last epoch's slab), so freelist
  /// misses are not deterministic; payload sizes per site are.
  std::vector<std::size_t> send_watermark;
};

struct LoopPlan {
  std::string name;
  const Set* set = nullptr;
  std::uint64_t signature = 0;      ///< hash of arg metadata, validated per call
  bool exec_halo_iterated = false;  ///< loop runs owned + exec (indirect writes)
  index_t n_executed = 0;           ///< owned (+ exec when iterated)

  // Latency hiding: `core` elements touch no halo slot through any of the
  // loop's maps and can run while messages are in flight; `tail` must wait.
  std::vector<index_t> core;
  std::vector<index_t> tail;
  /// The element lists are ascending; when a phase is a contiguous index
  /// range the executor can iterate the range directly (enables the
  /// vectorized path). Direct loops are always contiguous.
  bool core_contig = false;
  bool tail_contig = false;

  /// Layout-vectorizable: every dat argument is direct and unit-stride, at
  /// least one dat uses a non-AoS layout, globals are read-only and no
  /// arg_idx is present. Cached against the context's layout epoch and
  /// recomputed when any dat's layout changes.
  bool vectorizable = false;
  std::uint64_t layout_epoch = 0;

  // Shared-memory coloring (built when the context executes with threads or
  // force_coloring): elements grouped by conflict-free color, core and tail
  // colored independently since they never run concurrently.
  bool colored = false;
  std::vector<std::vector<index_t>> core_colors;
  std::vector<std::vector<index_t>> tail_colors;

  std::vector<PlanSetComm> comms;

  /// Partial-halo cleanliness per dat for this plan (write-epoch compared).
  std::unordered_map<const DatBase*, std::uint64_t> clean_epoch;

  // Metering.
  std::uint64_t invocations = 0;
  double seconds = 0.0;        ///< total loop wall time (incl. exchange wait)
  double halo_seconds = 0.0;   ///< time blocked in halo receive/pack
  std::uint64_t halo_bytes = 0;
  std::uint64_t halo_msgs = 0;
  std::uint64_t elements = 0;  ///< elements executed across invocations
};

// --- loop chains (DESIGN.md §10) --------------------------------------------
// A LoopChain declares a sequence of par_loops up front so the planner can
// analyse them *together*: classify the cross-loop data dependences, carve
// the chain into fusible segments, build aligned cross-loop tiles inside
// each segment (executed loop-interleaved for locality, preserving each
// loop's ascending element order so results stay bit-identical to the
// unchained executor whenever that path folds in flat ascending order —
// serial, or latency hiding off; see chain.cpp's execution-order
// contract), color the tiles for conflict-free parallel execution, and
// hoist every member's halo exchange to one grouped epoch at segment
// entry.

/// Cross-loop dependence kind between two chain members on a shared dat.
enum class ChainDepKind : std::uint8_t {
  Raw,  ///< earlier member writes, later member reads
  War,  ///< earlier member reads, later member writes
  Waw,  ///< both members write
};

const char* chain_dep_name(ChainDepKind k);

struct ChainDep {
  int src = 0;  ///< earlier member index
  int dst = 0;  ///< later member index
  const DatBase* dat = nullptr;
  ChainDepKind kind = ChainDepKind::Raw;
};

/// How much of a dat's local window holds correct values at a point in the
/// chain: owned elements only, owned + exec halo (redundantly recomputed),
/// or the full window including the non-exec halo (freshly exchanged).
enum class ChainRegion : std::uint8_t { Owned = 0, OwnedExec = 1, Full = 2 };

/// One declared member loop (name, iteration set, access descriptors) —
/// the planner's view of a LoopChain::add() call.
struct ChainLoopDecl {
  std::string name;
  const Set* set = nullptr;
  std::vector<ArgInfo> args;
};

struct ChainMemberPlan {
  std::string name;
  const Set* set = nullptr;
  std::uint64_t signature = 0;  ///< arg-metadata hash, validated per call
  std::vector<ArgInfo> args;
  /// Redundant exec-halo iteration forced by an indirect write (the same
  /// rule a solo par_loop applies).
  bool exec_halo_iterated = false;
  /// Chain-forced redundant exec iteration of a *direct* member: writing
  /// its outputs over the exec halo too lets a later member read them
  /// there without a mid-chain exchange.
  bool exec_extended = false;
  /// Member executes through its own full par_loop (global reductions
  /// need the deterministic-reduction / merge machinery).
  bool standalone = false;
  index_t n_executed = 0;  ///< owned (+ exec when iterated/extended)
  int segment = 0;
};

/// A maximal fusible run of members (or a single standalone member).
struct ChainSegment {
  int first = 0;  ///< member index range, inclusive
  int last = 0;
  bool fused = false;  ///< tiled loop-interleaved execution
  /// Aligned cross-loop tiles: tile_end[m][t] is the end (exclusive) of
  /// tile t's contiguous element range for member `first + m`. Boundaries
  /// are dependence-aligned: every element a tile's later loops consume is
  /// produced by the same or an earlier tile, and ranges stay ascending so
  /// per-loop floating-point order is untouched.
  std::vector<std::vector<index_t>> tile_end;
  /// Dependence-aware tile colors: conflicting tiles (sharing a written
  /// element of any member's dat) get strictly increasing colors in tile
  /// order, so colors ascending respects every dependence and same-color
  /// tiles are conflict-free (parallel-safe).
  std::vector<int> tile_colors;
  int n_colors = 0;
  /// Fused halo epoch: dats some member reads through halos (with the
  /// region it needs), exchanged in one grouped epoch at segment entry
  /// when dirty. Intra-segment producers cover everything else.
  std::vector<std::pair<DatBase*, ChainRegion>> epoch_needs;
};

struct ChainPlan {
  std::string name;
  std::uint64_t signature = 0;  ///< fold of member signatures
  std::vector<ChainMemberPlan> members;
  std::vector<ChainDep> deps;
  std::vector<ChainSegment> segments;
  /// Per-set comm state for the fused epochs (full halo lists; owns the
  /// persistent send buffers).
  std::vector<PlanSetComm> comms;

  // Metering.
  std::uint64_t invocations = 0;
  double seconds = 0.0;
  std::uint64_t halo_bytes = 0;
  std::uint64_t halo_msgs = 0;
  std::uint64_t halo_epochs = 0;  ///< fused epochs that exchanged anything
  std::uint64_t elements = 0;
};

/// Structural fingerprint of a plan on this rank: iteration size, redundant
/// exec-halo flag, core/tail element lists, color shapes and the full halo
/// communication schedule (neighbors, send indices, receive slots). Two
/// equivalent executions — e.g. the same mesh partitioned under different
/// dat layouts — must produce equal fingerprints on every rank; a
/// divergence localizes a planning bug (wrong partition, wrong halo list)
/// structurally, before any floating-point value is compared
/// (vcgt::verify). Excludes everything value- or cache-like: metering,
/// the layout-epoch/vectorizable cache and pack-buffer capacities.
[[nodiscard]] std::uint64_t plan_fingerprint(const LoopPlan& plan);

/// Chained-plan overload: folds member structure (set, iteration sizes,
/// exec flags, access descriptors by dat/map id), the dependence edges,
/// segment boundaries, tile frontiers, tile colors and the fused-epoch
/// needs. Pointer-free and layout-independent: equivalent executions under
/// different dat layouts produce equal fingerprints on every rank, which
/// is what makes chained plans cacheable and lets vcgt::verify compare
/// chained runs structurally across layout variants.
[[nodiscard]] std::uint64_t plan_fingerprint(const ChainPlan& plan);

}  // namespace vcgt::op2
