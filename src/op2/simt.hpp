#pragma once
// op2::simt — the SIMT-emulation lane model (DESIGN.md §10).
//
// GPU-shaped hardware executes a par_loop as warps of lockstep lanes: a
// warp of `kWarpWidth` consecutive elements issues together, lanes past
// the end of the element list are predicated off, and data-dependent
// branches that split a warp's lanes serialize both sides (divergence).
// Plan quality for such hardware is therefore visible on a CPU by
// *emulating* the lane model: the executor marches warp-width groups over
// the element lists (Config::simt), runs the lanes in ascending element
// order — so every result stays bit-identical to the scalar executor —
// and meters what a real warp scheduler would have done:
//   * warps / full_warps / partial_warps — occupancy (per-lane predication
//     on non-multiple-of-warp spans shows up as partial warps);
//   * branch_slots / divergent_branches / convergent_branches — kernels
//     voting through simt::branch() are checked per warp: a slot where the
//     active lanes disagree (or which only some lanes reach) is divergent.
// Counters are process-global, monotone between reset() calls, and
// surfaced through vcgt::trace as "simt:*" counter tracks by the executor.
#include <cstdint>

namespace vcgt::op2::simt {

/// Emulated warp width (lanes per warp). Matches the ubiquitous hardware
/// width; AoSoA blocks (power-of-two <= 32) pack evenly into a warp.
constexpr int kWarpWidth = 32;

/// Kernel-side branch vote: returns `cond` unchanged, and — when called
/// from inside the SIMT executor — records the outcome for the current
/// lane so warp_end can classify the branch slot as convergent or
/// divergent. Outside the SIMT executor this is just the identity.
[[nodiscard]] bool branch(bool cond);

/// Snapshot of the process-global SIMT counters.
struct Stats {
  std::uint64_t warps = 0;
  std::uint64_t full_warps = 0;     ///< all kWarpWidth lanes active
  std::uint64_t partial_warps = 0;  ///< tail warps with predicated-off lanes
  std::uint64_t lanes = 0;          ///< active lanes executed
  std::uint64_t branch_slots = 0;   ///< branch() call sites seen, per warp
  std::uint64_t divergent_branches = 0;
  std::uint64_t convergent_branches = 0;
};

[[nodiscard]] Stats stats();
void reset();

namespace detail {
// Executor hooks (parloop.hpp's simt_march): bracket one warp and its
// lanes. Lanes must be begun in ascending order; `active` is the number of
// unpredicated lanes (< kWarpWidth on tail warps).
void warp_begin();
void lane_begin(int lane);
void warp_end(int active);
}  // namespace detail

}  // namespace vcgt::op2::simt
