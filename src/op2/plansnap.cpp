// Plan snapshots — the tentpole of the fingerprint-keyed plan cache
// (DESIGN.md §12). A Context that finished setup exports its loop and chain
// plans as *pointer-free* snapshots (sets, maps and dats enter by
// declaration id); a later Context built from the same SessionSpec imports
// them, remapping ids onto its own declarations, and skips plan
// construction entirely — core/tail splits, coloring, partial halo lists,
// chain segmentation and tiling all come back for the cost of a few
// memcpys.
//
// Safety rails:
//  - keys embed the spec hash, a config-mode word, the world size and the
//    rank, so a snapshot can only ever be offered to a structurally
//    identical context;
//  - every snapshot stores its plan_fingerprint(); the import re-computes
//    the fingerprint of the reconstructed plan and throws on mismatch
//    (a mismatch is a reconstruction bug, never a recoverable condition);
//  - the import is collective: all ranks agree (allreduce-min) that every
//    rank hit *and validated* before any rank adopts a plan, because a
//    mixed hit/miss would dodge the collective plan build on some ranks
//    only and deadlock the world;
//  - persistent send buffers (PlanSetComm::send_bufs) and partial-halo
//    cleanliness (clean_epoch) are never snapshotted: buffers re-grow on
//    first exchange (metered as warm-up), cleanliness falls back to the
//    dat-level epoch exactly like a freshly built plan;
//  - the vectorizable predicate is invalidated (layout_epoch = 0) so the
//    first invocation re-evaluates it against this context's dat layouts.
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/op2/context.hpp"
#include "src/op2/plancache.hpp"
#include "src/util/fmt.hpp"
#include "src/util/log.hpp"

namespace vcgt::op2 {

namespace {

struct CommSnap {
  int set = -1;
  bool full = true;
  bool covers_exec_direct = false;
  bool covers_full = false;
  std::vector<int> nbr_send;
  std::vector<std::vector<index_t>> send_idx;
  std::vector<int> nbr_recv;
  std::vector<std::vector<index_t>> recv_slots;
};

struct ArgSnap {
  int dat = -1;  ///< declaration id, -1 for none
  int map = -1;
  int idx = 0;
  Access acc = Access::Read;
  bool is_global = false;
};

struct LoopSnap {
  std::string name;
  int set = -1;
  std::uint64_t signature = 0;
  bool exec_halo_iterated = false;
  index_t n_executed = 0;
  std::vector<index_t> core;
  std::vector<index_t> tail;
  bool core_contig = false;
  bool tail_contig = false;
  bool colored = false;
  std::vector<std::vector<index_t>> core_colors;
  std::vector<std::vector<index_t>> tail_colors;
  std::vector<CommSnap> comms;
  std::uint64_t fingerprint = 0;
};

struct MemberSnap {
  std::string name;
  int set = -1;
  std::uint64_t signature = 0;
  std::vector<ArgSnap> args;
  bool exec_halo_iterated = false;
  bool exec_extended = false;
  bool standalone = false;
  index_t n_executed = 0;
  int segment = 0;
};

struct DepSnap {
  int src = 0;
  int dst = 0;
  int dat = -1;
  ChainDepKind kind = ChainDepKind::Raw;
};

struct SegSnap {
  int first = 0;
  int last = 0;
  bool fused = false;
  std::vector<std::vector<index_t>> tile_end;
  std::vector<int> tile_colors;
  int n_colors = 0;
  std::vector<std::pair<int, ChainRegion>> epoch_needs;  ///< dat id, region
};

struct ChainSnap {
  std::string name;
  std::uint64_t signature = 0;
  std::vector<MemberSnap> members;
  std::vector<DepSnap> deps;
  std::vector<SegSnap> segments;
  std::vector<CommSnap> comms;
  std::uint64_t fingerprint = 0;
};

/// The cached value: every plan this rank had built, in name order.
struct PlanSnapshot {
  std::vector<LoopSnap> loops;
  std::vector<ChainSnap> chains;
};

// --- size estimation (LRU accounting) ---------------------------------------

template <class T>
std::size_t vec_bytes(const std::vector<T>& v) {
  return v.size() * sizeof(T) + 32;
}

template <class T>
std::size_t vec2_bytes(const std::vector<std::vector<T>>& v) {
  std::size_t b = 32;
  for (const auto& inner : v) b += vec_bytes(inner);
  return b;
}

std::size_t comm_bytes(const CommSnap& c) {
  return vec_bytes(c.nbr_send) + vec2_bytes(c.send_idx) + vec_bytes(c.nbr_recv) +
         vec2_bytes(c.recv_slots) + 64;
}

std::size_t snapshot_bytes(const PlanSnapshot& s) {
  std::size_t b = 128;
  for (const auto& l : s.loops) {
    b += 128 + l.name.size() + vec_bytes(l.core) + vec_bytes(l.tail) +
         vec2_bytes(l.core_colors) + vec2_bytes(l.tail_colors);
    for (const auto& c : l.comms) b += comm_bytes(c);
  }
  for (const auto& ch : s.chains) {
    b += 128 + ch.name.size() + vec_bytes(ch.deps);
    for (const auto& m : ch.members) b += 96 + m.name.size() + vec_bytes(m.args);
    for (const auto& seg : ch.segments) {
      b += 64 + vec2_bytes(seg.tile_end) + vec_bytes(seg.tile_colors) +
           vec_bytes(seg.epoch_needs);
    }
    for (const auto& c : ch.comms) b += comm_bytes(c);
  }
  return b;
}

// --- capture -----------------------------------------------------------------

CommSnap snap_comm(const PlanSetComm& c) {
  CommSnap s;
  s.set = c.set->id();
  s.full = c.full;
  s.covers_exec_direct = c.covers_exec_direct;
  s.covers_full = c.covers_full;
  s.nbr_send = c.nbr_send;
  s.send_idx = c.send_idx;
  s.nbr_recv = c.nbr_recv;
  s.recv_slots = c.recv_slots;
  return s;
}

ArgSnap snap_arg(const ArgInfo& a) {
  ArgSnap s;
  s.dat = a.dat ? a.dat->id() : -1;
  s.map = a.map ? a.map->id() : -1;
  s.idx = a.idx;
  s.acc = a.acc;
  s.is_global = a.is_global;
  return s;
}

LoopSnap snap_loop(const LoopPlan& p) {
  LoopSnap s;
  s.name = p.name;
  s.set = p.set->id();
  s.signature = p.signature;
  s.exec_halo_iterated = p.exec_halo_iterated;
  s.n_executed = p.n_executed;
  s.core = p.core;
  s.tail = p.tail;
  s.core_contig = p.core_contig;
  s.tail_contig = p.tail_contig;
  s.colored = p.colored;
  s.core_colors = p.core_colors;
  s.tail_colors = p.tail_colors;
  for (const auto& c : p.comms) s.comms.push_back(snap_comm(c));
  s.fingerprint = plan_fingerprint(p);
  return s;
}

ChainSnap snap_chain(const ChainPlan& p) {
  ChainSnap s;
  s.name = p.name;
  s.signature = p.signature;
  for (const auto& m : p.members) {
    MemberSnap ms;
    ms.name = m.name;
    ms.set = m.set->id();
    ms.signature = m.signature;
    for (const auto& a : m.args) ms.args.push_back(snap_arg(a));
    ms.exec_halo_iterated = m.exec_halo_iterated;
    ms.exec_extended = m.exec_extended;
    ms.standalone = m.standalone;
    ms.n_executed = m.n_executed;
    ms.segment = m.segment;
    s.members.push_back(std::move(ms));
  }
  for (const auto& d : p.deps) {
    s.deps.push_back({d.src, d.dst, d.dat ? d.dat->id() : -1, d.kind});
  }
  for (const auto& seg : p.segments) {
    SegSnap gs;
    gs.first = seg.first;
    gs.last = seg.last;
    gs.fused = seg.fused;
    gs.tile_end = seg.tile_end;
    gs.tile_colors = seg.tile_colors;
    gs.n_colors = seg.n_colors;
    for (const auto& [dat, region] : seg.epoch_needs) {
      gs.epoch_needs.emplace_back(dat->id(), region);
    }
    s.segments.push_back(std::move(gs));
  }
  for (const auto& c : p.comms) s.comms.push_back(snap_comm(c));
  s.fingerprint = plan_fingerprint(p);
  return s;
}

// --- reconstruction ----------------------------------------------------------

struct Registry {
  const std::vector<std::unique_ptr<Set>>* sets = nullptr;
  const std::vector<std::unique_ptr<Map>>* maps = nullptr;
  const std::vector<std::unique_ptr<DatBase>>* dats = nullptr;

  [[nodiscard]] bool set_ok(int id) const {
    return id >= 0 && static_cast<std::size_t>(id) < sets->size();
  }
  [[nodiscard]] bool map_ok(int id) const {
    return id >= 0 && static_cast<std::size_t>(id) < maps->size();
  }
  [[nodiscard]] bool dat_ok(int id) const {
    return id >= 0 && static_cast<std::size_t>(id) < dats->size();
  }
  [[nodiscard]] const Set* set(int id) const { return (*sets)[static_cast<std::size_t>(id)].get(); }
  [[nodiscard]] const Map* map(int id) const { return (*maps)[static_cast<std::size_t>(id)].get(); }
  [[nodiscard]] DatBase* dat(int id) const { return (*dats)[static_cast<std::size_t>(id)].get(); }
};

bool comm_valid(const CommSnap& c, const Registry& reg) { return reg.set_ok(c.set); }

bool arg_valid(const ArgSnap& a, const Registry& reg) {
  if (a.dat >= 0 && !reg.dat_ok(a.dat)) return false;
  if (a.map >= 0 && !reg.map_ok(a.map)) return false;
  return true;
}

bool loop_valid(const LoopSnap& l, const Registry& reg) {
  if (!reg.set_ok(l.set)) return false;
  for (const auto& c : l.comms) {
    if (!comm_valid(c, reg)) return false;
  }
  return true;
}

bool chain_valid(const ChainSnap& ch, const Registry& reg) {
  for (const auto& m : ch.members) {
    if (!reg.set_ok(m.set)) return false;
    for (const auto& a : m.args) {
      if (!arg_valid(a, reg)) return false;
    }
  }
  for (const auto& d : ch.deps) {
    if (d.dat >= 0 && !reg.dat_ok(d.dat)) return false;
  }
  for (const auto& seg : ch.segments) {
    for (const auto& [dat, region] : seg.epoch_needs) {
      (void)region;
      if (!reg.dat_ok(dat)) return false;
    }
  }
  for (const auto& c : ch.comms) {
    if (!comm_valid(c, reg)) return false;
  }
  return true;
}

PlanSetComm make_comm(const CommSnap& s, const Registry& reg) {
  PlanSetComm c;
  c.set = reg.set(s.set);
  c.full = s.full;
  c.covers_exec_direct = s.covers_exec_direct;
  c.covers_full = s.covers_full;
  c.nbr_send = s.nbr_send;
  c.send_idx = s.send_idx;
  c.nbr_recv = s.nbr_recv;
  c.recv_slots = s.recv_slots;
  // send_bufs stay empty: they re-grow on the first exchange and the growth
  // is metered as warm-up (halo_buffer_allocs), same as a cold plan.
  return c;
}

ArgInfo make_arg(const ArgSnap& s, const Registry& reg) {
  ArgInfo a;
  a.dat = s.dat >= 0 ? reg.dat(s.dat) : nullptr;
  a.map = s.map >= 0 ? reg.map(s.map) : nullptr;
  a.idx = s.idx;
  a.acc = s.acc;
  a.is_global = s.is_global;
  return a;
}

std::unique_ptr<LoopPlan> make_loop(const LoopSnap& s, const Registry& reg) {
  auto p = std::make_unique<LoopPlan>();
  p->name = s.name;
  p->set = reg.set(s.set);
  p->signature = s.signature;
  p->exec_halo_iterated = s.exec_halo_iterated;
  p->n_executed = s.n_executed;
  p->core = s.core;
  p->tail = s.tail;
  p->core_contig = s.core_contig;
  p->tail_contig = s.tail_contig;
  p->colored = s.colored;
  p->core_colors = s.core_colors;
  p->tail_colors = s.tail_colors;
  for (const auto& c : s.comms) p->comms.push_back(make_comm(c, reg));
  // layout_epoch = 0 forces the vectorizable predicate to re-evaluate
  // against this context's layouts on first use (epochs start at 1).
  p->layout_epoch = 0;
  p->vectorizable = false;
  if (plan_fingerprint(*p) != s.fingerprint) {
    throw std::runtime_error(vcgt::util::fmt(
        "op2: plan cache snapshot for loop '{}' failed fingerprint revalidation", s.name));
  }
  return p;
}

std::unique_ptr<ChainPlan> make_chain(const ChainSnap& s, const Registry& reg) {
  auto p = std::make_unique<ChainPlan>();
  p->name = s.name;
  p->signature = s.signature;
  for (const auto& ms : s.members) {
    ChainMemberPlan m;
    m.name = ms.name;
    m.set = reg.set(ms.set);
    m.signature = ms.signature;
    for (const auto& a : ms.args) m.args.push_back(make_arg(a, reg));
    m.exec_halo_iterated = ms.exec_halo_iterated;
    m.exec_extended = ms.exec_extended;
    m.standalone = ms.standalone;
    m.n_executed = ms.n_executed;
    m.segment = ms.segment;
    p->members.push_back(std::move(m));
  }
  for (const auto& d : s.deps) {
    p->deps.push_back({d.src, d.dst, d.dat >= 0 ? reg.dat(d.dat) : nullptr, d.kind});
  }
  for (const auto& gs : s.segments) {
    ChainSegment seg;
    seg.first = gs.first;
    seg.last = gs.last;
    seg.fused = gs.fused;
    seg.tile_end = gs.tile_end;
    seg.tile_colors = gs.tile_colors;
    seg.n_colors = gs.n_colors;
    for (const auto& [dat, region] : gs.epoch_needs) {
      seg.epoch_needs.emplace_back(reg.dat(dat), region);
    }
    p->segments.push_back(std::move(seg));
  }
  for (const auto& c : s.comms) p->comms.push_back(make_comm(c, reg));
  if (plan_fingerprint(*p) != s.fingerprint) {
    throw std::runtime_error(vcgt::util::fmt(
        "op2: plan cache snapshot for chain '{}' failed fingerprint revalidation", s.name));
  }
  return p;
}

}  // namespace

// --- Context hooks -----------------------------------------------------------

void Context::set_plan_cache(PlanCache* cache, std::uint64_t spec_key) {
  if (partitioned_ && cache != nullptr) {
    throw std::logic_error("op2: set_plan_cache must precede partition()");
  }
  plan_cache_ = cache;
  spec_key_ = spec_key;
}

std::string Context::cache_key(const char* kind) const {
  // The spec key covers the declared structure; the mode word additionally
  // pins the Config toggles that reshape plans, so two contexts sharing a
  // spec_key but configured differently (tests do this) never collide.
  const std::uint64_t mode = (cfg_.latency_hiding ? 1u : 0u) |
                             ((cfg_.force_coloring || cfg_.nthreads > 1) ? 2u : 0u) |
                             (cfg_.partial_halos ? 4u : 0u) | (cfg_.grouped_halos ? 8u : 0u) |
                             (cfg_.simt ? 16u : 0u) |
                             (static_cast<std::uint64_t>(cfg_.chain_tile) << 5);
  // Sharded and monolithic declarations of the same spec produce identical
  // plans by the equivalence contract, but their setup paths differ (e.g.
  // owner snapshots are monolithic-only), so the keyspace separates them.
  return vcgt::util::fmt("{}:{}:m{}:s{}:n{}", kind, spec_key_, mode,
                         any_sharded_ ? 1 : 0, nranks());
}

bool Context::export_plans_to_cache() {
  if (plan_cache_ == nullptr) return false;
  if (plans_.empty() && chains_.empty()) return false;
  const std::string key = cache_key("plans") + vcgt::util::fmt(":r{}", rank());
  if (plan_cache_->contains(key)) return false;  // identical producer already exported
  auto snap = std::make_shared<PlanSnapshot>();
  for (const auto& [name, plan] : plans_) snap->loops.push_back(snap_loop(*plan));
  for (const auto& [name, chain] : chains_) snap->chains.push_back(snap_chain(*chain));
  const std::size_t bytes = snapshot_bytes(*snap);
  plan_cache_->insert_value<PlanSnapshot>(key, std::move(snap), bytes);
  return true;
}

bool Context::import_plans_from_cache() {
  if (plan_cache_ == nullptr) return false;  // SPMD: cache set on all ranks or none
  const std::string key = cache_key("plans") + vcgt::util::fmt(":r{}", rank());
  auto snap = plan_cache_->lookup_as<PlanSnapshot>(key);
  Registry reg{&sets_, &maps_, &dats_};
  int hit = snap != nullptr ? 1 : 0;
  if (hit == 1) {
    // Id-range validation is rank-invariant (declarations are SPMD-
    // replicated), so every rank reaches the same verdict on its own copy.
    for (const auto& l : snap->loops) hit &= loop_valid(l, reg) ? 1 : 0;
    for (const auto& ch : snap->chains) hit &= chain_valid(ch, reg) ? 1 : 0;
  }
  if (distributed()) {
    hit = comm_.allreduce(hit, [](int a, int b) { return a < b ? a : b; });
  }
  if (hit == 0) return false;
  for (const auto& l : snap->loops) {
    if (plans_.count(l.name) != 0) continue;
    plans_[l.name] = make_loop(l, reg);
  }
  for (const auto& ch : snap->chains) {
    if (chains_.count(ch.name) != 0) continue;
    chains_[ch.name] = make_chain(ch, reg);
  }
  plans_imported_ = true;
  vcgt::util::debug("op2: rank {} imported {} loop / {} chain plan(s) from cache", rank(),
                    snap->loops.size(), snap->chains.size());
  return true;
}

}  // namespace vcgt::op2
