#pragma once
// Umbrella header for the op2 embedded DSL: include this to declare and run
// unstructured-mesh computations (sets, maps, dats, par_loop).
#include "src/op2/context.hpp"
#include "src/op2/dat.hpp"
#include "src/op2/map.hpp"
#include "src/op2/parloop.hpp"
#include "src/op2/set.hpp"
#include "src/op2/simt.hpp"
#include "src/op2/types.hpp"
