#include "src/op2/types.hpp"

namespace vcgt::op2 {

const char* access_name(Access a) {
  switch (a) {
    case Access::Read: return "READ";
    case Access::Write: return "WRITE";
    case Access::ReadWrite: return "RW";
    case Access::Inc: return "INC";
    case Access::Min: return "MIN";
    case Access::Max: return "MAX";
  }
  return "?";
}

const char* partitioner_name(Partitioner p) {
  switch (p) {
    case Partitioner::Block: return "block";
    case Partitioner::Rcb: return "rcb";
    case Partitioner::Kway: return "kway";
  }
  return "?";
}

}  // namespace vcgt::op2
