#include "src/op2/types.hpp"

#include <cstdlib>

namespace vcgt::op2 {

const char* access_name(Access a) {
  switch (a) {
    case Access::Read: return "READ";
    case Access::Write: return "WRITE";
    case Access::ReadWrite: return "RW";
    case Access::Inc: return "INC";
    case Access::Min: return "MIN";
    case Access::Max: return "MAX";
  }
  return "?";
}

const char* layout_name(Layout l) {
  switch (l) {
    case Layout::AoS: return "aos";
    case Layout::SoA: return "soa";
    case Layout::AoSoA: return "aosoa";
  }
  return "?";
}

bool parse_layout(const std::string& text, Layout* layout, int* block) {
  if (text == "aos") {
    *layout = Layout::AoS;
    return true;
  }
  if (text == "soa") {
    *layout = Layout::SoA;
    return true;
  }
  if (text.rfind("aosoa", 0) != 0) return false;
  *layout = Layout::AoSoA;
  if (text.size() == 5) return true;
  char* end = nullptr;
  const long w = std::strtol(text.c_str() + 5, &end, 10);
  if (end == nullptr || *end != '\0' || w < 1 || (w & (w - 1)) != 0) return false;
  *block = static_cast<int>(w);
  return true;
}

const char* partitioner_name(Partitioner p) {
  switch (p) {
    case Partitioner::Block: return "block";
    case Partitioner::Rcb: return "rcb";
    case Partitioner::Kway: return "kway";
  }
  return "?";
}

}  // namespace vcgt::op2
