#pragma once
// op2::Map — explicit connectivity between two sets (e.g. edge -> 2 nodes).
// Declared with a *global* table; Context::partition() rewrites the table in
// terms of local indices for all locally executed (owned + exec halo)
// elements of the from-set. By halo construction, every entry then resolves
// to a valid local slot.
#include <span>
#include <string>
#include <vector>

#include "src/op2/set.hpp"
#include "src/op2/types.hpp"

namespace vcgt::op2 {

class Map {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Set& from() const { return *from_; }
  [[nodiscard]] const Set& to() const { return *to_; }
  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] int id() const { return id_; }

  /// Target of element `e`'s i-th connection (local indices post-partition).
  [[nodiscard]] index_t operator()(index_t e, int i) const {
    return table_[static_cast<std::size_t>(e) * static_cast<std::size_t>(dim_) +
                  static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::span<const index_t> table() const { return table_; }

 private:
  friend class Context;
  Map(int id, std::string name, Set* from, Set* to, int dim, std::vector<index_t> table)
      : id_(id), name_(std::move(name)), from_(from), to_(to), dim_(dim),
        table_(std::move(table)) {}

  int id_;
  std::string name_;
  Set* from_;
  Set* to_;
  int dim_;
  std::vector<index_t> table_;
};

}  // namespace vcgt::op2
