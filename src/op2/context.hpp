#pragma once
// op2::Context — the per-rank runtime owning sets, maps, dats and loop plans.
//
// Usage (SPMD, one Context per rank; or a single serial Context):
//
//   op2::Context ctx(comm, config);
//   auto& nodes = ctx.decl_set("nodes", nnode);
//   auto& edges = ctx.decl_set("edges", nedge);
//   auto& e2n   = ctx.decl_map("e2n", edges, nodes, 2, global_table);
//   auto& x     = ctx.decl_dat<double>(nodes, 3, "x", coords);
//   ctx.partition(op2::Partitioner::Rcb, x);     // collective
//   op2::par_loop("res", edges, kernel, op2::read(x, e2n, 0), ...);
//
// Declarations take *global* data replicated on every rank (the meshes at
// this repository's scale fit comfortably; the paper's HDF5-parallel load is
// out of scope — see DESIGN.md). partition() computes element owners, the
// exec/non-exec halos, localizes every map and dat, and builds the halo
// exchange schedules. After partition() all par_loops execute distributed
// with OP2's owner-compute + redundant-computation semantics.
#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "src/minimpi/minimpi.hpp"
#include "src/util/threadpool.hpp"
#include "src/op2/dat.hpp"
#include "src/op2/map.hpp"
#include "src/op2/plan.hpp"
#include "src/op2/set.hpp"
#include "src/op2/types.hpp"

namespace vcgt::op2 {

class PlanCache;  // plancache.hpp

/// Halo exchange schedule for one set (built by partition()).
struct SetHalo {
  std::vector<int> nbr_send;                    ///< ranks importing my elements
  std::vector<std::vector<index_t>> send_idx;   ///< per neighbor: my owned indices
  std::vector<int> nbr_recv;                    ///< ranks owning my halo
  std::vector<std::vector<index_t>> recv_slots; ///< per neighbor: my halo slots
  std::vector<int> slot_src;                    ///< halo slot -> source rank
};

class Context {
 public:
  /// Serial context: single rank, no communication.
  Context() : Context(minimpi::Comm{}, Config{}) {}
  explicit Context(Config cfg) : Context(minimpi::Comm{}, cfg) {}
  /// Distributed context over a (sub-)communicator.
  explicit Context(minimpi::Comm comm, Config cfg = {});
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- declaration (pre-partition) ----------------------------------------
  /// Monolithic set declaration: every rank declares the full global set.
  /// Throws SetSizeError when `global_size` exceeds index_t range —
  /// monolithic declarations materialize identity numberings and full
  /// tables, so every gid must narrow losslessly; billion-element sets go
  /// through decl_set_sharded instead.
  Set& decl_set(std::string name, gindex_t global_size);
  /// Sharded set declaration (DESIGN.md §13): this rank declares only its
  /// shard rows — the owned block plus a ghost rind — identified by
  /// strictly ascending global ids. `global_size` may exceed 32 bits; only
  /// shard_gids.size() must fit index_t. Map tables and dats on a sharded
  /// set are indexed by *shard row*, not global id. Partition with
  /// partition_sharded().
  Set& decl_set_sharded(std::string name, gindex_t global_size,
                        std::vector<gindex_t> shard_gids);
  /// Declares a map. Monolithic from/to: `table` holds global target ids,
  /// one row per global from-element. Sharded from/to (modes must match):
  /// `table` holds shard-local target row indices, one row per shard row
  /// of `from` — every target must be present in the to-set's shard.
  Map& decl_map(std::string name, Set& from, Set& to, int dim,
                std::vector<index_t> global_table);
  template <class T>
  Dat<T>& decl_dat(Set& s, int dim, std::string name, std::vector<T> global_data = {}) {
    return decl_dat<T>(s, dim, std::move(name), std::move(global_data),
                       cfg_.default_layout, cfg_.aosoa_block);
  }
  /// Per-dat layout override (global_data is always given in AoS order; the
  /// declaration converts to the requested layout). block == 0 uses the
  /// configured AoSoA block width.
  template <class T>
  Dat<T>& decl_dat(Set& s, int dim, std::string name, std::vector<T> global_data,
                   Layout layout, int block = 0) {
    require_not_partitioned("decl_dat");
    auto dat = std::unique_ptr<Dat<T>>(
        new Dat<T>(&s, next_dat_id(), std::move(name), dim, std::move(global_data)));
    auto* ptr = dat.get();
    ptr->set_layout_storage(layout, block > 0 ? block : cfg_.aosoa_block);
    register_dat(std::move(dat));
    return *ptr;
  }
  template <class T>
  Global<T> decl_global(std::string name, int dim, std::vector<T> init = {}) {
    return Global<T>(std::move(name), dim, std::move(init));
  }

  // --- mesh renumbering (pre-partition) -------------------------------------
  // OP2 renumbers meshes (e.g. reverse Cuthill-McKee) to improve locality of
  // the indirect accesses; the same facility is provided here.

  /// Renumbers the set's global ids: new_id = perm[old_id]. Every dat on
  /// the set is permuted and every map table touching the set rewritten.
  /// Must precede partition(); callers holding old global ids (e.g. coupler
  /// interface registrations) must renumber consistently or avoid the set.
  void renumber_set(Set& s, std::span<const index_t> perm);

  /// Reverse Cuthill-McKee ordering of `s` over the adjacency induced by
  /// the declared maps targeting it. Returns the new_of_old permutation.
  [[nodiscard]] std::vector<index_t> reverse_cuthill_mckee(const Set& s) const;

  /// Adjacency bandwidth of the set's current numbering (locality metric:
  /// mean and max |i - j| over adjacent pairs).
  struct BandwidthStats {
    double mean = 0.0;
    index_t max = 0;
  };
  [[nodiscard]] BandwidthStats numbering_bandwidth(const Set& s) const;

  /// Collective: partitions the primary set (the set `coords` lives on) with
  /// the chosen strategy, derives ownership of every other set through the
  /// declared maps, builds halos and localizes all maps and dats.
  void partition(Partitioner p, const Dat<double>& coords);
  /// Monolithic variant: several independent primary sets (e.g. one cell set
  /// per blade row in a single context), each partitioned over all ranks.
  void partition(Partitioner p, const std::vector<const Dat<double>*>& primaries);

  /// Collective: partitions sharded declarations (decl_set_sharded).
  /// Ownership is deterministic from global ids alone — primary sets use
  /// block_owner(gid, global_size, nranks), exactly the monolithic Block
  /// partitioner's formula, and every other set inherits ownership through
  /// its maps (owner of the first map target, declaration order, to a
  /// fixpoint) exactly as compute_owners() propagates. The resulting local
  /// numbering, halo schedules and plan fingerprints are bit-identical to a
  /// monolithic partition(Partitioner::Block, ...) of the same declaration
  /// — the shard-vs-monolithic equivalence contract (DESIGN.md §13).
  /// Throws std::logic_error when the shard ghost rind is insufficient to
  /// reproduce the monolithic halos.
  void partition_sharded(const std::vector<const Set*>& primaries);

  [[nodiscard]] bool partitioned() const { return partitioned_; }
  /// True when any set was declared via decl_set_sharded.
  [[nodiscard]] bool sharded() const { return any_sharded_; }
  [[nodiscard]] bool distributed() const { return comm_.valid() && comm_.size() > 1; }
  [[nodiscard]] int rank() const { return comm_.valid() ? comm_.rank() : 0; }
  [[nodiscard]] int nranks() const { return comm_.valid() ? comm_.size() : 1; }
  [[nodiscard]] minimpi::Comm& comm() { return comm_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] Config& config() { return cfg_; }

  [[nodiscard]] const SetHalo& halo(const Set& s) const {
    return halos_[static_cast<std::size_t>(s.id())];
  }

  // --- layout registry ------------------------------------------------------
  /// Converts a dat's storage to the given layout in place (values are
  /// preserved; any cached plan re-evaluates its vectorizable predicate on
  /// the next invocation). block == 0 uses the configured AoSoA width.
  void set_layout(DatBase& d, Layout layout, int block = 0);
  /// Bumped on every set_layout(); plans cache their vectorizable decision
  /// against it.
  [[nodiscard]] std::uint64_t layout_epoch() const { return layout_epoch_; }

  /// Times a persistent halo pack buffer grew (capacity allocation). After
  /// warm-up, steady-state iterations must not grow this (tested).
  [[nodiscard]] std::uint64_t halo_buffer_allocs() const { return halo_buf_allocs_; }

  // --- plan cache (serve front end; DESIGN.md §12) --------------------------
  /// Attaches a shared PlanCache. `spec_key` must cover *everything* that
  /// shapes this context's setup artifacts — mesh/declaration structure,
  /// renumbering, the op2 Config — typically vcgt::SessionSpec::hash()
  /// folded with a per-row discriminator. SPMD rule: set the same cache and
  /// key on every rank of the communicator, or on none (the import paths
  /// agree hit/miss collectively). Call before partition().
  void set_plan_cache(PlanCache* cache, std::uint64_t spec_key);
  [[nodiscard]] PlanCache* plan_cache() const { return plan_cache_; }
  /// True when the last partition() consumed cached element owners instead
  /// of running the partitioner.
  [[nodiscard]] bool partition_was_cached() const { return partition_cached_; }
  /// True when import_plans_from_cache() adopted cached plans.
  [[nodiscard]] bool plans_were_imported() const { return plans_imported_; }
  /// Collective when distributed: adopts every loop/chain plan snapshot a
  /// previous context of the same spec exported, iff *all* ranks hit (a
  /// mixed hit/miss would send some ranks down the cached path while their
  /// peers enter the collective plan build — deadlock). Call after
  /// partition() and before the first par_loop. Returns true on import.
  bool import_plans_from_cache();
  /// Snapshots every built plan into the cache under this rank's key. Call
  /// only after a *successful* run — failure paths must never export, so a
  /// killed or faulted job cannot poison the cache. Local, never blocks.
  bool export_plans_to_cache();

  /// Shared-memory worker pool (created from config().nthreads).
  [[nodiscard]] util::ThreadPool& pool() { return *pool_; }

  /// Gathers a dat back to a full global array on every rank (tests, I/O,
  /// the coupler's interface registration). Collective when distributed.
  template <class T>
  std::vector<T> fetch_global(const Dat<T>& d) {
    const Set& s = d.set();
    if (s.global_size() > kMaxMonolithicSetSize) {
      throw SetSizeError("op2: fetch_global on set '" + s.name() + "' of " +
                             std::to_string(s.global_size()) +
                             " elements exceeds the replicated-array range",
                         s.name(), s.global_size());
    }
    const auto dim = static_cast<std::size_t>(d.dim());
    std::vector<T> out(static_cast<std::size_t>(s.global_size()) * dim);
    if (!distributed() && !s.sharded()) {
      for (index_t e = 0; e < static_cast<index_t>(s.global_size()); ++e) {
        for (std::size_t c = 0; c < dim; ++c) {
          out[static_cast<std::size_t>(e) * dim + c] = d.at(e, static_cast<int>(c));
        }
      }
      return out;
    }
    // Pack (gid, values) for owned elements; allgather; scatter into place.
    std::vector<T> packed;
    packed.reserve(static_cast<std::size_t>(s.n_owned()) * dim);
    for (index_t e = 0; e < s.n_owned(); ++e) {
      for (std::size_t c = 0; c < dim; ++c) packed.push_back(d.at(e, static_cast<int>(c)));
    }
    std::vector<gindex_t> gids(s.local_to_global().begin(),
                               s.local_to_global().begin() + s.n_owned());
    if (!distributed()) {
      for (std::size_t i = 0; i < gids.size(); ++i) {
        const auto g = static_cast<std::size_t>(gids[i]);
        for (std::size_t c = 0; c < dim; ++c) out[g * dim + c] = packed[i * dim + c];
      }
      return out;
    }
    const auto all_vals = comm_.allgatherv(std::span<const T>(packed));
    const auto all_gids = comm_.allgatherv(std::span<const gindex_t>(gids));
    for (std::size_t i = 0; i < all_gids.size(); ++i) {
      const auto g = static_cast<std::size_t>(all_gids[i]);
      for (std::size_t c = 0; c < dim; ++c) out[g * dim + c] = all_vals[i * dim + c];
    }
    return out;
  }

  // --- par_loop machinery (used by parloop.hpp; stable API for tests) ------
  /// Handle for an in-flight halo exchange round (latency hiding).
  struct PendingExchange {
    struct Recv {
      std::vector<DatBase*> dats;                 ///< >1 when grouped
      int from = -1;
      int tag = 0;
      const std::vector<index_t>* slots = nullptr;
    };
    std::vector<Recv> recvs;
  };

  LoopPlan& get_plan(const std::string& name, const Set& set,
                     const std::vector<ArgInfo>& args);
  /// Builds (first call) or revalidates the cached plan for a declared loop
  /// chain: dependence analysis, segmentation, aligned cross-loop tiles,
  /// tile coloring and the fused-epoch needs. Collective when distributed
  /// (halo-coverage decisions are agreed by allreduce).
  ChainPlan& get_chain_plan(const std::string& name,
                            const std::vector<ChainLoopDecl>& decls);
  /// Fused halo epoch for one chain segment: exchanges every dirty dat the
  /// segment reads through halos in one grouped round (one message per
  /// set and neighbor covering all such dats), completing before return.
  void chain_exchange(ChainPlan& plan, const ChainSegment& seg);
  /// Cached chain plan by chain name (tests / benchmarks), else null.
  [[nodiscard]] const ChainPlan* find_chain(const std::string& name) const;
  /// Posts sends for every dirty dat the loop reads through halos.
  PendingExchange exchange_begin(LoopPlan& plan, const std::vector<ArgInfo>& args);
  /// Completes receives, scattering payloads into halo slots.
  void exchange_end(LoopPlan& plan, PendingExchange& pending);
  /// Marks written dats dirty; bumps plan metering.
  void post_loop(LoopPlan& plan, const std::vector<ArgInfo>& args, double seconds);

  // --- reduction helpers for par_loop's typed layer -------------------------
  template <class T>
  void finalize_global(Global<T>& g, Access acc, std::span<const T> initial) {
    if (!distributed()) return;
    if constexpr (std::is_same_v<T, double>) {
      if (acc == Access::Inc) {
        // Batched: every component of the global rides one vector
        // allreduce instead of one collective per component — a dim-2d
        // Global carrying CG's fused dot pair pays a single round.
        std::vector<double> local_inc(static_cast<std::size_t>(g.dim()));
        for (int c = 0; c < g.dim(); ++c) {
          local_inc[static_cast<std::size_t>(c)] =
              g.data()[c] - initial[static_cast<std::size_t>(c)];
        }
        const auto sums = comm_.allreduce_sum(std::span<const double>(local_inc));
        for (int c = 0; c < g.dim(); ++c) {
          g.data()[c] =
              initial[static_cast<std::size_t>(c)] + sums[static_cast<std::size_t>(c)];
        }
        return;
      }
    }
    for (int c = 0; c < g.dim(); ++c) {
      T& v = g.data()[c];
      switch (acc) {
        case Access::Inc: {
          const T local_inc = v - initial[static_cast<std::size_t>(c)];
          v = initial[static_cast<std::size_t>(c)] +
              comm_.allreduce(local_inc, [](T a, T b) { return a + b; });
          break;
        }
        case Access::Min:
          v = comm_.allreduce(v, [](T a, T b) { return a < b ? a : b; });
          break;
        case Access::Max:
          v = comm_.allreduce(v, [](T a, T b) { return a > b ? a : b; });
          break;
        default:
          break;
      }
    }
  }

  /// Deterministic distributed Inc finalization (delta capture, DESIGN.md
  /// §11): every rank contributes its owned elements' per-element reduction
  /// deltas keyed by global id; all records are gathered, sorted by gid and
  /// folded ascending from zero, and the pre-loop value is added once —
  /// exactly the serial executor's fold, so the result is bit-identical
  /// across rank counts for kernels folding one value per component per
  /// element. `deltas` is strided: `stride` doubles per record, this
  /// global's dim() values at `offset`.
  template <class T>
  void finalize_global_det(Global<T>& g, std::span<const T> initial,
                           std::span<const gindex_t> gids, std::span<const double> deltas,
                           std::size_t stride, std::size_t offset) {
    const auto d = static_cast<std::size_t>(g.dim());
    std::vector<double> mine(gids.size() * d);
    for (std::size_t i = 0; i < gids.size(); ++i) {
      for (std::size_t c = 0; c < d; ++c) {
        mine[i * d + c] = deltas[i * stride + offset + c];
      }
    }
    const auto all_gids = comm_.allgatherv(gids);
    const auto all_vals = comm_.allgatherv(std::span<const double>(mine));
    std::vector<std::size_t> order(all_gids.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return all_gids[a] < all_gids[b]; });
    for (std::size_t c = 0; c < d; ++c) {
      T s{};
      for (const std::size_t i : order) s += static_cast<T>(all_vals[i * d + c]);
      g.data()[c] = initial[c] + s;
    }
  }

  // --- metering -------------------------------------------------------------
  struct LoopStatsView {
    std::string name;
    std::uint64_t invocations = 0;
    double seconds = 0.0;
    double halo_seconds = 0.0;
    std::uint64_t halo_bytes = 0;
    std::uint64_t halo_msgs = 0;
    std::uint64_t elements = 0;
  };
  [[nodiscard]] std::vector<LoopStatsView> loop_stats() const;
  [[nodiscard]] LoopStatsView total_stats() const;
  void reset_stats();

  /// Human-readable dump of every cached execution plan (OP2's diagnostic
  /// output): iteration sizes, core/tail split, color counts, halo sets.
  [[nodiscard]] std::string describe_plans() const;

  /// Structural fingerprint of every cached plan on this rank, keyed by
  /// loop name (plans_ is name-sorted, so iteration order is stable). Used
  /// by vcgt::verify to compare execution structure — partition, core/tail
  /// split, halo schedules — across equivalent runs before comparing
  /// values; see plan_fingerprint() in plan.hpp.
  [[nodiscard]] std::map<std::string, std::uint64_t> plan_fingerprints() const;

  [[nodiscard]] const std::vector<std::unique_ptr<Set>>& sets() const { return sets_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Map>>& maps() const { return maps_; }
  [[nodiscard]] const std::vector<std::unique_ptr<DatBase>>& dats() const { return dats_; }

 private:
  friend class Set;

  void require_not_partitioned(const char* what) const;
  int next_dat_id() { return static_cast<int>(dats_.size()); }
  void register_dat(std::unique_ptr<DatBase> dat);

  // partition internals (partition.cpp / halo.cpp)
  std::vector<std::vector<int>> compute_owners(
      Partitioner p, const std::vector<const Dat<double>*>& primaries) const;
  void build_halos_and_localize(const std::vector<std::vector<int>>& owners);

  // exchange internals (halo.cpp)
  void build_partial_lists(LoopPlan& plan, const std::vector<ArgInfo>& args);
  std::vector<index_t> needed_halo_slots(const LoopPlan& plan, const Set& target,
                                         const std::vector<ArgInfo>& args,
                                         bool include_exec_direct) const;
  /// The single pack+send site for every halo message (grouped, ungrouped
  /// and fused chain epochs): gathers `dats` over `idx` — concatenated in
  /// AoS order — and ships the message to `peer`. Zero-copy mode leases a
  /// pooled buffer and moves it (send_owned); legacy mode reuses the
  /// persistent per-neighbor pack buffer and pays send_bytes' copy. Growth
  /// (fresh slab / capacity bump) is metered into halo_buf_allocs_.
  void halo_pack_send(PlanSetComm& sc, std::size_t nbrs, std::size_t i,
                      const std::vector<index_t>& idx,
                      const std::vector<DatBase*>& dats, int peer, int tag,
                      const Set& s);

  minimpi::Comm comm_;
  Config cfg_;
  std::unique_ptr<util::ThreadPool> pool_;
  bool partitioned_ = false;
  bool any_sharded_ = false;

  std::vector<std::unique_ptr<Set>> sets_;
  std::vector<std::unique_ptr<Map>> maps_;
  std::vector<std::unique_ptr<DatBase>> dats_;
  // chain internals (chain.cpp)
  void build_chain_plan(ChainPlan& plan, const std::vector<ChainLoopDecl>& decls);

  std::vector<SetHalo> halos_;  // indexed by set id
  std::map<std::string, std::unique_ptr<LoopPlan>> plans_;
  std::map<std::string, std::unique_ptr<ChainPlan>> chains_;
  std::uint64_t layout_epoch_ = 1;
  std::uint64_t halo_buf_allocs_ = 0;

  // Plan cache wiring (plansnap.cpp); not owned.
  std::string cache_key(const char* kind) const;
  PlanCache* plan_cache_ = nullptr;
  std::uint64_t spec_key_ = 0;
  bool partition_cached_ = false;
  bool plans_imported_ = false;

  // Kept from partitioning for plan construction: per set, global->owner and
  // per-rank global exec/nonexec import lists are discarded; only the local
  // views (l2g, halos) are retained. g2l maps survive for coupler lookups.
  std::vector<std::map<gindex_t, index_t>> g2l_;  // per set: global -> local

 public:
  /// Global-to-local lookup (post-partition); returns -1 when the element is
  /// not present on this rank. Used by the coupler to address interface
  /// nodes. 64-bit gids: round-trips exactly for ids above 2^31.
  [[nodiscard]] index_t global_to_local(const Set& s, gindex_t gid) const {
    const auto& m = g2l_[static_cast<std::size_t>(s.id())];
    const auto it = m.find(gid);
    return it == m.end() ? index_t{-1} : it->second;
  }
};

}  // namespace vcgt::op2
