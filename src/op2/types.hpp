#pragma once
// Core vocabulary types of the op2 embedded DSL (see DESIGN.md §2).
//
// The DSL follows the published OP2 model: an unstructured-mesh computation
// is declared as (1) sets of mesh elements, (2) data on sets ("dats"),
// (3) connectivity between sets ("maps") and (4) parallel loops over sets
// with explicit per-argument access descriptors. The access descriptors are
// what let the runtime build race-free shared-memory plans (coloring) and
// minimal distributed-memory halo exchanges.
#include <cstdint>
#include <stdexcept>
#include <string>

namespace vcgt::op2 {

/// A halo exchange failed structurally (transient send faults exhausted the
/// retry budget, or a bounded receive timed out). Carries enough context —
/// set, peer, direction — to localize the failure without a debugger; wraps
/// the underlying minimpi error as the `what()` suffix.
class HaloError : public std::runtime_error {
 public:
  HaloError(std::string what, std::string set, int peer, bool sending)
      : std::runtime_error(std::move(what)), set(std::move(set)), peer(peer),
        sending(sending) {}
  std::string set;  ///< op2 set whose halo was being exchanged
  int peer;         ///< neighbor rank of the failed transfer
  bool sending;     ///< true: packing/sending; false: receiving/scattering
};

/// Local element index. A rank's local window (owned + halos) always fits
/// in 32 bits — plans, map tables and halo slot lists stay compact.
using index_t = std::int32_t;

/// Global element id. 64-bit: the paper's 4.58B-node mesh (fig. 9) exceeds
/// the 32-bit range, so every gid-carrying surface — local_to_global,
/// halo/partition exchange payloads, deterministic-reduction records —
/// uses this type (DESIGN.md §13).
using gindex_t = std::int64_t;

/// Largest global size a *monolithic* (replicated-declaration) set may
/// have: every global id must narrow losslessly to a local index, because
/// monolithic declarations materialize identity numberings and full tables.
/// Sharded declarations (decl_set_sharded) are exempt — only the per-rank
/// window must fit index_t there.
inline constexpr gindex_t kMaxMonolithicSetSize =
    static_cast<gindex_t>(2147483647);  // INT32_MAX

/// A set declaration (or a mesh builder feeding one) was asked for more
/// elements than the declaration mode supports: monolithic sets cap at
/// index_t range; sharded sets cap the per-rank window. Structured (not
/// UB, not a silent narrowing) so billion-element requests fail loudly.
class SetSizeError : public std::invalid_argument {
 public:
  SetSizeError(std::string what, std::string set, gindex_t requested)
      : std::invalid_argument(std::move(what)), set(std::move(set)),
        requested(requested) {}
  std::string set;     ///< set (or mesh) being declared
  gindex_t requested;  ///< element count that overflowed
};

/// Owner of global id `g` under block partitioning of `n` elements over
/// `nranks` ranks. The single source of truth shared by the monolithic
/// Block partitioner and the sharded setup path: both must assign bit-
/// identical ownership for the shard-vs-monolithic equivalence contract
/// (DESIGN.md §13). 64-bit intermediate: g*nranks stays < 2^63 for any
/// realistic (n, nranks).
[[nodiscard]] constexpr int block_owner(gindex_t g, gindex_t n, int nranks) {
  return static_cast<int>((static_cast<std::uint64_t>(g) *
                           static_cast<std::uint64_t>(nranks)) /
                          static_cast<std::uint64_t>(n));
}

/// How a parallel-loop argument accesses its data. Mirrors OP2's
/// OP_READ / OP_WRITE / OP_RW / OP_INC (+ OP_MIN/OP_MAX for globals).
enum class Access : std::uint8_t {
  Read,   ///< read only; halo copies must be current before the loop
  Write,  ///< overwritten without reading; no halo refresh needed
  ReadWrite,
  Inc,    ///< accumulated (+=); resolved via coloring / redundant compute
  Min,    ///< global reduction: minimum
  Max,    ///< global reduction: maximum
};

[[nodiscard]] constexpr bool access_reads(Access a) {
  return a == Access::Read || a == Access::ReadWrite;
}
[[nodiscard]] constexpr bool access_writes(Access a) {
  return a == Access::Write || a == Access::ReadWrite || a == Access::Inc;
}

const char* access_name(Access a);

/// Storage layout of a Dat's components (DESIGN.md §8). Kernels never see
/// the layout: the par_loop executor either hands out unit-stride pointers
/// directly (AoS, or any layout when dim == 1) or stages elements through
/// per-thread scratch blocks.
enum class Layout : std::uint8_t {
  AoS,    ///< off(e,c) = e*dim + c — the reference layout; I/O normal form
  SoA,    ///< off(e,c) = c*cap + e — contiguous per-component columns
  AoSoA,  ///< off(e,c) = (e/W)*(W*dim) + c*W + e%W — blocked, W = block width
};

const char* layout_name(Layout l);

/// Parses "aos" | "soa" | "aosoa" | "aosoa<W>" (e.g. "aosoa8"). Returns
/// false on unrecognized input; on success writes the layout and, for
/// explicit aosoa<W>, the block width.
bool parse_layout(const std::string& text, Layout* layout, int* block);

/// Runtime configuration. The three optimization toggles correspond to the
/// paper's §IV-A5 (Table III) ablation:
///  - partial_halos (PH): exchange only the halo elements a loop actually
///    references through its maps, not the full halo of each dirty dat;
///  - grouped_halos (GH): pack all dats' halo payloads for the same
///    neighbor rank into one message per neighbor;
///  - staged_gather (GG): coupler-side single-buffer gather before handing
///    interface data to JM76 (consumed by vcgt::jm76).
struct Config {
  bool partial_halos = false;
  bool grouped_halos = false;
  bool staged_gather = false;
  /// Shared-memory workers per rank for colored execution (1 = sequential
  /// within a rank; distributed parallelism is independent of this).
  int nthreads = 1;
  /// Force colored execution even with nthreads == 1 (used by tests to
  /// validate coloring correctness on a single worker).
  bool force_coloring = false;
  /// Enable communication/computation overlap (latency hiding): execute
  /// halo-independent "core" elements while halo messages are in flight.
  bool latency_hiding = true;
  /// Storage layout for dats declared without an explicit per-dat override
  /// (also settable via the VCGT_OP2_LAYOUT environment variable:
  /// "aos" | "soa" | "aosoa" | "aosoa<W>").
  Layout default_layout = Layout::AoS;
  /// Block width W for AoSoA dats (must be a power of two).
  int aosoa_block = 8;
  /// Execute loops carrying a global reduction single-threaded over the
  /// flat ascending element list: no coloring reorder, no per-thread
  /// partials, no SIMD path. On a single rank the floating-point reduction
  /// order then exactly matches the serial reference executor, making
  /// reduction results bit-comparable across shared-memory backends
  /// (vcgt::verify's oracle policy; see DESIGN.md §9). Loops without a
  /// reduction are unaffected.
  bool deterministic_reductions = false;
  /// SIMT-emulation executor (DESIGN.md §10): march warp-width lane groups
  /// over the element lists with per-lane predication, recording
  /// warp-occupancy and branch-divergence counters (op2::simt). Lanes run
  /// in ascending element order, so results are bit-identical to the
  /// scalar executor. Also settable via VCGT_OP2_SIMT=1.
  bool simt = false;
  /// Tile width (seed-member elements per cross-loop tile) for fused
  /// LoopChain execution. Also settable via VCGT_OP2_CHAIN_TILE.
  int chain_tile = 4096;
  /// Route halo exchanges through the zero-copy transport: pack directly
  /// into a pooled minimpi::Buffer and move it into the receiver's mailbox
  /// (Comm::send_owned), unpack directly from the received slab — zero
  /// per-message heap allocations and zero payload copies at steady state.
  /// Off = legacy path (persistent per-neighbor pack buffers + send_bytes'
  /// payload copy), kept for A/B measurement; both paths are bit-identical.
  /// Also settable via VCGT_OP2_ZERO_COPY.
  bool zero_copy_transport = true;
};

/// Partitioning strategy for distributing the primary set across ranks.
enum class Partitioner {
  Block,  ///< contiguous index blocks (baseline, poor edge-cut)
  Rcb,    ///< recursive coordinate bisection on node coordinates
  Kway,   ///< greedy k-way graph growing on the node adjacency (Metis-like)
};

const char* partitioner_name(Partitioner p);

}  // namespace vcgt::op2
