#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>

#include <stdexcept>

#include "src/op2/context.hpp"
#include "src/op2/internal.hpp"
#include "src/op2/plancache.hpp"
#include "src/op2/simt.hpp"
#include "src/util/env_config.hpp"
#include "src/util/log.hpp"

namespace vcgt::op2 {

namespace {

/// Layout-vectorizable predicate (DESIGN.md §8): the loop can iterate a
/// contiguous index range with unit-stride pointer arithmetic per argument.
/// Requires every dat argument direct and unit-stride, at least one dat in
/// a non-AoS layout (AoS-only loops keep the reference executor so layout
/// comparisons measure the engine, not the compiler), read-only globals
/// (reductions stay on the deterministic scratch-merge path) and no
/// arg_idx.
bool layout_vectorizable(const std::vector<ArgInfo>& args) {
  bool any_non_aos = false;
  for (const auto& a : args) {
    if (a.is_global) {
      if (a.acc != Access::Read) return false;
      continue;
    }
    if (!a.dat) return false;  // arg_idx
    if (a.map) return false;
    if (!a.dat->unit_stride()) return false;
    if (a.dat->layout() != Layout::AoS) any_non_aos = true;
  }
  return any_non_aos;
}

/// The per-phase element lists are built ascending; a phase is range-
/// iterable iff the list is a contiguous index interval.
bool contiguous(const std::vector<index_t>& v) {
  return v.empty() ||
         static_cast<std::size_t>(v.back() - v.front()) + 1 == v.size();
}

/// FNV-1a accumulation helpers for plan_fingerprint.
std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  return h;
}
std::uint64_t fnv1a(std::uint64_t h, const std::vector<index_t>& v) {
  h = fnv1a(h, v.size());
  for (const index_t e : v) h = fnv1a(h, static_cast<std::uint64_t>(e));
  return h;
}

}  // namespace

std::uint64_t plan_fingerprint(const LoopPlan& plan) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, static_cast<std::uint64_t>(plan.n_executed));
  h = fnv1a(h, plan.exec_halo_iterated ? 1u : 0u);
  h = fnv1a(h, plan.core);
  h = fnv1a(h, plan.tail);
  h = fnv1a(h, plan.colored ? 1u : 0u);
  h = fnv1a(h, plan.core_colors.size());
  for (const auto& c : plan.core_colors) h = fnv1a(h, c);
  h = fnv1a(h, plan.tail_colors.size());
  for (const auto& c : plan.tail_colors) h = fnv1a(h, c);
  h = fnv1a(h, plan.comms.size());
  for (const auto& sc : plan.comms) {
    h = fnv1a(h, static_cast<std::uint64_t>(sc.set->id()));
    h = fnv1a(h, sc.full ? 1u : 0u);
    h = fnv1a(h, sc.covers_exec_direct ? 1u : 0u);
    h = fnv1a(h, sc.nbr_send.size());
    for (std::size_t i = 0; i < sc.nbr_send.size(); ++i) {
      h = fnv1a(h, static_cast<std::uint64_t>(sc.nbr_send[i]));
      h = fnv1a(h, sc.send_idx[i]);
    }
    h = fnv1a(h, sc.nbr_recv.size());
    for (std::size_t i = 0; i < sc.nbr_recv.size(); ++i) {
      h = fnv1a(h, static_cast<std::uint64_t>(sc.nbr_recv[i]));
      h = fnv1a(h, sc.recv_slots[i]);
    }
  }
  return h;
}

std::uint64_t plan_fingerprint(const ChainPlan& plan) {
  // Pointer-free on purpose: dats and maps enter by declaration id so the
  // fingerprint is stable across processes and identical for equivalent
  // runs under different dat layouts (tile frontiers, colors and epoch
  // needs are all layout-independent by construction).
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto fold_args = [&](const std::vector<ArgInfo>& args) {
    h = fnv1a(h, args.size());
    for (const auto& a : args) {
      h = fnv1a(h, a.dat ? static_cast<std::uint64_t>(a.dat->id()) + 1 : 0u);
      h = fnv1a(h, a.map ? static_cast<std::uint64_t>(a.map->id()) + 1 : 0u);
      h = fnv1a(h, static_cast<std::uint64_t>(a.idx));
      h = fnv1a(h, static_cast<std::uint64_t>(a.acc));
      h = fnv1a(h, a.is_global ? 1u : 0u);
    }
  };
  h = fnv1a(h, plan.members.size());
  for (const auto& m : plan.members) {
    h = fnv1a(h, static_cast<std::uint64_t>(m.set->id()));
    h = fnv1a(h, static_cast<std::uint64_t>(m.n_executed));
    h = fnv1a(h, (m.exec_halo_iterated ? 1u : 0u) | (m.exec_extended ? 2u : 0u) |
                     (m.standalone ? 4u : 0u));
    h = fnv1a(h, static_cast<std::uint64_t>(m.segment));
    fold_args(m.args);
  }
  h = fnv1a(h, plan.deps.size());
  for (const auto& d : plan.deps) {
    h = fnv1a(h, static_cast<std::uint64_t>(d.src));
    h = fnv1a(h, static_cast<std::uint64_t>(d.dst));
    h = fnv1a(h, static_cast<std::uint64_t>(d.dat->id()));
    h = fnv1a(h, static_cast<std::uint64_t>(d.kind));
  }
  h = fnv1a(h, plan.segments.size());
  for (const auto& seg : plan.segments) {
    h = fnv1a(h, static_cast<std::uint64_t>(seg.first));
    h = fnv1a(h, static_cast<std::uint64_t>(seg.last));
    h = fnv1a(h, seg.fused ? 1u : 0u);
    h = fnv1a(h, seg.tile_end.size());
    for (const auto& te : seg.tile_end) h = fnv1a(h, te);
    h = fnv1a(h, seg.tile_colors.size());
    for (const int c : seg.tile_colors) h = fnv1a(h, static_cast<std::uint64_t>(c));
    h = fnv1a(h, static_cast<std::uint64_t>(seg.n_colors));
    h = fnv1a(h, seg.epoch_needs.size());
    for (const auto& [dat, region] : seg.epoch_needs) {
      h = fnv1a(h, static_cast<std::uint64_t>(dat->id()));
      h = fnv1a(h, static_cast<std::uint64_t>(region));
    }
  }
  return h;
}

std::map<std::string, std::uint64_t> Context::plan_fingerprints() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, plan] : plans_) out[name] = plan_fingerprint(*plan);
  for (const auto& [name, plan] : chains_) {
    out["chain:" + name] = plan_fingerprint(*plan);
  }
  return out;
}

Context::Context(minimpi::Comm comm, Config cfg)
    : comm_(std::move(comm)), cfg_(cfg),
      pool_(std::make_unique<util::ThreadPool>(cfg.nthreads)) {
  const util::EnvConfig env = util::env_config();
  if (env.op2_layout) {
    Layout l = cfg_.default_layout;
    int w = cfg_.aosoa_block;
    if (parse_layout(*env.op2_layout, &l, &w)) {
      cfg_.default_layout = l;
      cfg_.aosoa_block = w;
    } else {
      util::warn("op2: ignoring unrecognized VCGT_OP2_LAYOUT '{}'", *env.op2_layout);
    }
  }
  if (env.op2_simt) cfg_.simt = *env.op2_simt;
  if (env.op2_zero_copy) cfg_.zero_copy_transport = *env.op2_zero_copy;
  if (env.op2_chain_tile) {
    if (*env.op2_chain_tile > 0) {
      cfg_.chain_tile = *env.op2_chain_tile;
    } else {
      util::warn("op2: ignoring non-positive VCGT_OP2_CHAIN_TILE '{}'", *env.op2_chain_tile);
    }
  }
  if (cfg_.aosoa_block < 1 || (cfg_.aosoa_block & (cfg_.aosoa_block - 1)) != 0) {
    throw std::invalid_argument("op2: Config::aosoa_block must be a power of two");
  }
  if (cfg_.chain_tile < 1) {
    throw std::invalid_argument("op2: Config::chain_tile must be positive");
  }
}

Context::~Context() = default;

void Context::require_not_partitioned(const char* what) const {
  if (partitioned_) {
    throw std::logic_error(vcgt::util::fmt("op2: {} after partition() is not supported", what));
  }
}

Set& Context::decl_set(std::string name, gindex_t global_size) {
  require_not_partitioned("decl_set");
  if (global_size < 0) throw std::invalid_argument("op2: negative set size");
  if (global_size > kMaxMonolithicSetSize) {
    throw SetSizeError(
        vcgt::util::fmt("op2: monolithic set '{}' of {} elements exceeds the "
                        "index_t range ({}); declare billion-element sets with "
                        "decl_set_sharded",
                        name, global_size, kMaxMonolithicSetSize),
        name, global_size);
  }
  sets_.push_back(std::unique_ptr<Set>(
      new Set(this, static_cast<int>(sets_.size()), std::move(name), global_size)));
  return *sets_.back();
}

Set& Context::decl_set_sharded(std::string name, gindex_t global_size,
                               std::vector<gindex_t> shard_gids) {
  require_not_partitioned("decl_set_sharded");
  if (global_size < 0) throw std::invalid_argument("op2: negative set size");
  if (static_cast<gindex_t>(shard_gids.size()) > kMaxMonolithicSetSize) {
    throw SetSizeError(
        vcgt::util::fmt("op2: shard of set '{}' has {} rows, exceeding the "
                        "index_t range ({})",
                        name, shard_gids.size(), kMaxMonolithicSetSize),
        name, static_cast<gindex_t>(shard_gids.size()));
  }
  for (std::size_t i = 0; i < shard_gids.size(); ++i) {
    const gindex_t g = shard_gids[i];
    if (g < 0 || g >= global_size) {
      throw std::out_of_range(vcgt::util::fmt(
          "op2: shard gid {} of set '{}' outside [0, {})", g, name, global_size));
    }
    if (i > 0 && shard_gids[i - 1] >= g) {
      throw std::invalid_argument(vcgt::util::fmt(
          "op2: shard gids of set '{}' must be strictly ascending", name));
    }
  }
  any_sharded_ = true;
  sets_.push_back(std::unique_ptr<Set>(new Set(this, static_cast<int>(sets_.size()),
                                               std::move(name), global_size,
                                               std::move(shard_gids))));
  return *sets_.back();
}

Map& Context::decl_map(std::string name, Set& from, Set& to, int dim,
                       std::vector<index_t> global_table) {
  require_not_partitioned("decl_map");
  if (dim <= 0) throw std::invalid_argument("op2: map dim must be positive");
  if (from.sharded() != to.sharded()) {
    throw std::logic_error(vcgt::util::fmt(
        "op2: map '{}' mixes declaration modes: from-set '{}' is {}, to-set '{}' is {}",
        name, from.name(), from.sharded() ? "sharded" : "monolithic", to.name(),
        to.sharded() ? "sharded" : "monolithic"));
  }
  if (global_table.size() !=
      static_cast<std::size_t>(from.decl_rows()) * static_cast<std::size_t>(dim)) {
    throw std::invalid_argument(
        vcgt::util::fmt("op2: map '{}' table size {} != from.rows {} * dim {}", name,
                    global_table.size(), from.decl_rows(), dim));
  }
  for (const index_t t : global_table) {
    if (t < 0 || t >= to.decl_rows()) {
      throw std::out_of_range(vcgt::util::fmt("op2: map '{}' entry {} out of range", name, t));
    }
  }
  maps_.push_back(std::unique_ptr<Map>(new Map(static_cast<int>(maps_.size()),
                                               std::move(name), &from, &to, dim,
                                               std::move(global_table))));
  return *maps_.back();
}

void Context::register_dat(std::unique_ptr<DatBase> dat) {
  dats_.push_back(std::move(dat));
}

void Context::set_layout(DatBase& d, Layout layout, int block) {
  if (block == 0) block = cfg_.aosoa_block;
  if (layout == Layout::AoSoA && (block < 1 || (block & (block - 1)) != 0)) {
    throw std::invalid_argument("op2: AoSoA block width must be a power of two");
  }
  d.set_layout_storage(layout, block);
  ++layout_epoch_;
}

void Context::partition(Partitioner p, const Dat<double>& coords) {
  partition(p, std::vector<const Dat<double>*>{&coords});
}

void Context::partition(Partitioner p, const std::vector<const Dat<double>*>& primaries) {
  if (partitioned_) throw std::logic_error("op2: partition() called twice");
  if (primaries.empty()) throw std::invalid_argument("op2: partition() needs a primary set");
  if (any_sharded_) {
    throw std::logic_error(
        "op2: partition() on a context with sharded declarations; use partition_sharded()");
  }
  // Fingerprint-keyed owner reuse: owners are computed from replicated
  // global data and are identical on every rank, so one cached copy (keyed
  // by spec + partitioner + world size + primary sets) serves the whole
  // world. A mixed hit/miss would send some ranks down the cached path
  // while their peers run the collective partitioner, so all ranks agree
  // (allreduce-min of the local hit bit) before anyone consumes the hit.
  std::shared_ptr<const std::vector<std::vector<int>>> cached;
  std::string key;
  if (plan_cache_) {
    std::uint64_t prim = 0xcbf29ce484222325ull;
    for (const auto* d : primaries) {
      prim = (prim ^ static_cast<std::uint64_t>(d->set().id() + 1)) * 0x100000001b3ull;
    }
    key = cache_key("owners") + vcgt::util::fmt(":p{}:d{}", static_cast<int>(p), prim);
    cached = plan_cache_->lookup_as<std::vector<std::vector<int>>>(key);
    int hit = cached ? 1 : 0;
    if (distributed()) {
      hit = comm_.allreduce(hit, [](int a, int b) { return a < b ? a : b; });
    }
    if (hit == 0) cached.reset();
  }
  if (cached) {
    partition_cached_ = true;
    build_halos_and_localize(*cached);
  } else {
    partition_cached_ = false;
    auto owners =
        std::make_shared<const std::vector<std::vector<int>>>(compute_owners(p, primaries));
    build_halos_and_localize(*owners);
    if (plan_cache_) {
      std::size_t bytes = 64;
      for (const auto& v : *owners) bytes += v.size() * sizeof(int) + 32;
      plan_cache_->insert_value(key, owners, bytes);
    }
  }
  partitioned_ = true;
}

LoopPlan& Context::get_plan(const std::string& name, const Set& set,
                            const std::vector<ArgInfo>& args) {
  if (const auto it = plans_.find(name); it != plans_.end()) {
    LoopPlan& plan = *it->second;
    if (plan.signature != detail::arg_signature(args) || plan.set != &set) {
      throw std::logic_error(
          vcgt::util::fmt("op2: loop name '{}' reused with different arguments", name));
    }
    if (plan.layout_epoch != layout_epoch_) {
      plan.vectorizable = layout_vectorizable(args);
      plan.layout_epoch = layout_epoch_;
    }
    return plan;
  }

  if (distributed() && !partitioned_) {
    throw std::logic_error(
        vcgt::util::fmt("op2: loop '{}' executed before partition() on a distributed context",
                    name));
  }

  auto plan_ptr = std::make_unique<LoopPlan>();
  LoopPlan& plan = *plan_ptr;
  plan.name = name;
  plan.set = &set;
  plan.signature = detail::arg_signature(args);

  for (const auto& a : args) {
    if (a.dat && a.map && access_writes(a.acc)) plan.exec_halo_iterated = true;
    if (a.map && &a.map->from() != &set) {
      throw std::logic_error(vcgt::util::fmt(
          "op2: loop '{}' uses map '{}' whose from-set is not the iteration set", name,
          a.map->name()));
    }
  }
  plan.n_executed = set.n_owned() + (plan.exec_halo_iterated ? set.n_exec() : 0);

  // Core/tail split for latency hiding: core elements reference no halo slot
  // through any of the loop's maps.
  const bool overlap = cfg_.latency_hiding && distributed();
  for (index_t e = 0; e < plan.n_executed; ++e) {
    bool core = overlap && e < set.n_owned();
    if (core) {
      for (const auto& a : args) {
        if (!a.dat || !a.map) continue;
        const int i0 = a.idx == kIdxAll ? 0 : a.idx;
        const int i1 = a.idx == kIdxAll ? a.map->dim() : a.idx + 1;
        for (int i = i0; i < i1 && core; ++i) {
          if ((*a.map)(e, i) >= a.map->to().n_owned()) core = false;
        }
        if (!core) break;
      }
    }
    (core ? plan.core : plan.tail).push_back(e);
  }

  // Communication schedule: one entry per set whose halo the loop reads.
  if (distributed()) {
    std::vector<const Set*> comm_sets;
    bool direct_exec_reads = false;
    for (const auto& a : args) {
      if (!a.dat) continue;
      if (a.map && access_reads(a.acc)) {
        const Set* t = &a.map->to();
        if (std::find(comm_sets.begin(), comm_sets.end(), t) == comm_sets.end()) {
          comm_sets.push_back(t);
        }
      }
      if (!a.map && access_reads(a.acc) && plan.exec_halo_iterated) {
        direct_exec_reads = true;
      }
    }
    if (direct_exec_reads &&
        std::find(comm_sets.begin(), comm_sets.end(), &set) == comm_sets.end()) {
      comm_sets.push_back(&set);
    }
    for (const Set* s : comm_sets) {
      PlanSetComm sc;
      sc.set = s;
      sc.covers_exec_direct = (s == &set) && plan.exec_halo_iterated;
      sc.full = !cfg_.partial_halos;
      plan.comms.push_back(std::move(sc));
    }
    if (cfg_.partial_halos) build_partial_lists(plan, args);
  }

  if ((cfg_.nthreads > 1 || cfg_.force_coloring)) {
    detail::build_coloring(plan, args);
  }

  plan.core_contig = contiguous(plan.core);
  plan.tail_contig = contiguous(plan.tail);
  plan.vectorizable = layout_vectorizable(args);
  plan.layout_epoch = layout_epoch_;

  auto [it, inserted] = plans_.emplace(name, std::move(plan_ptr));
  (void)inserted;
  return *it->second;
}

void Context::post_loop(LoopPlan& plan, const std::vector<ArgInfo>& args, double seconds) {
  ++plan.invocations;
  plan.seconds += seconds;
  plan.elements += static_cast<std::uint64_t>(plan.n_executed);
  for (const auto& a : args) {
    if (a.dat && access_writes(a.acc)) a.dat->mark_written();
  }
}

std::vector<Context::LoopStatsView> Context::loop_stats() const {
  std::vector<LoopStatsView> out;
  out.reserve(plans_.size());
  for (const auto& [name, plan] : plans_) {
    out.push_back({name, plan->invocations, plan->seconds, plan->halo_seconds,
                   plan->halo_bytes, plan->halo_msgs, plan->elements});
  }
  return out;
}

Context::LoopStatsView Context::total_stats() const {
  LoopStatsView total;
  total.name = "(all loops)";
  for (const auto& [name, plan] : plans_) {
    total.invocations += plan->invocations;
    total.seconds += plan->seconds;
    total.halo_seconds += plan->halo_seconds;
    total.halo_bytes += plan->halo_bytes;
    total.halo_msgs += plan->halo_msgs;
    total.elements += plan->elements;
  }
  // Chain executions meter outside plans_ (fused epochs, interleaved tiles);
  // fold them in so the context-wide totals stay accurate under chaining.
  for (const auto& [name, plan] : chains_) {
    total.invocations += plan->invocations;
    total.seconds += plan->seconds;
    total.halo_bytes += plan->halo_bytes;
    total.halo_msgs += plan->halo_msgs;
    total.elements += plan->elements;
  }
  return total;
}

std::string Context::describe_plans() const {
  std::string out;
  for (const auto& [name, plan] : plans_) {
    out += vcgt::util::fmt(
        "loop '{}' over '{}': exec {} (core {}, tail {}){}{}{}", name, plan->set->name(),
        plan->n_executed, plan->core.size(), plan->tail.size(),
        plan->vectorizable ? ", simd" : "",
        plan->exec_halo_iterated ? ", redundant exec halo" : "",
        plan->colored
            ? vcgt::util::fmt(", colors {}+{}", plan->core_colors.size(),
                              plan->tail_colors.size())
            : "");
    if (!plan->comms.empty()) {
      out += ", halo reads:";
      for (const auto& sc : plan->comms) {
        out += vcgt::util::fmt(" {}({})", sc.set->name(), sc.full ? "full" : "partial");
      }
    }
    out += vcgt::util::fmt(" [{} calls, {} B exchanged]\n", plan->invocations,
                           plan->halo_bytes);
  }
  for (const auto& [name, cp] : chains_) {
    out += vcgt::util::fmt("chain '{}': {} members, {} deps, {} segments (", name,
                           cp->members.size(), cp->deps.size(), cp->segments.size());
    for (std::size_t i = 0; i < cp->segments.size(); ++i) {
      const auto& seg = cp->segments[i];
      out += vcgt::util::fmt(
          "{}{}[{}..{}]", i ? " " : "", seg.fused ? "fused" : "solo", seg.first, seg.last);
      if (seg.fused && !seg.tile_end.empty()) {
        out += vcgt::util::fmt(" tiles {} colors {}", seg.tile_end.front().size(),
                               seg.n_colors);
      }
    }
    out += vcgt::util::fmt(") [{} calls, {} epochs, {} B exchanged]\n", cp->invocations,
                           cp->halo_epochs, cp->halo_bytes);
    for (const auto& mp : cp->members) {
      out += vcgt::util::fmt("  member '{}' over '{}': exec {}{}{}{}\n", mp.name,
                             mp.set->name(), mp.n_executed,
                             mp.exec_halo_iterated ? ", redundant exec halo" : "",
                             mp.exec_extended ? " (extended)" : "",
                             mp.standalone ? ", standalone" : "");
    }
  }
  return out;
}

void Context::reset_stats() {
  for (auto& [name, plan] : plans_) {
    plan->invocations = 0;
    plan->seconds = 0.0;
    plan->halo_seconds = 0.0;
    plan->halo_bytes = 0;
    plan->halo_msgs = 0;
    plan->elements = 0;
  }
  for (auto& [name, plan] : chains_) {
    plan->invocations = 0;
    plan->seconds = 0.0;
    plan->halo_bytes = 0;
    plan->halo_msgs = 0;
    plan->halo_epochs = 0;
    plan->elements = 0;
  }
  // Pack-buffer growth is a warm-up artifact: steady-state metrics taken
  // after a reset must report zero further allocations, not the warm-up's.
  halo_buf_allocs_ = 0;
}

}  // namespace vcgt::op2

// --- SIMT-emulation counters (simt.hpp) --------------------------------------
namespace vcgt::op2::simt {

namespace {

std::atomic<std::uint64_t> g_warps{0}, g_full{0}, g_partial{0}, g_lanes{0};
std::atomic<std::uint64_t> g_slots{0}, g_divergent{0}, g_convergent{0};

/// Per-thread warp state. Branch votes are indexed by call order within the
/// lane: slot k is the k-th simt::branch() the lane executed, which aligns
/// slots across lanes exactly when lanes reach the vote sites in the same
/// order (the hardware analogy: one static branch per program point). A
/// lane skipping a site entirely shows up as reach < active — divergent.
struct WarpState {
  bool in_warp = false;
  std::size_t slot = 0;
  std::vector<std::array<int, 2>> votes;  ///< per slot: {taken, reach}
};
thread_local WarpState tls;

}  // namespace

bool branch(bool cond) {
  if (tls.in_warp) {
    if (tls.slot >= tls.votes.size()) tls.votes.push_back({0, 0});
    auto& v = tls.votes[tls.slot];
    if (cond) ++v[0];
    ++v[1];
    ++tls.slot;
  }
  return cond;
}

Stats stats() {
  Stats s;
  s.warps = g_warps.load();
  s.full_warps = g_full.load();
  s.partial_warps = g_partial.load();
  s.lanes = g_lanes.load();
  s.branch_slots = g_slots.load();
  s.divergent_branches = g_divergent.load();
  s.convergent_branches = g_convergent.load();
  return s;
}

void reset() {
  g_warps = 0;
  g_full = 0;
  g_partial = 0;
  g_lanes = 0;
  g_slots = 0;
  g_divergent = 0;
  g_convergent = 0;
}

namespace detail {

void warp_begin() {
  tls.in_warp = true;
  tls.votes.clear();
  tls.slot = 0;
}

void lane_begin(int lane) {
  (void)lane;
  tls.slot = 0;
}

void warp_end(int active) {
  tls.in_warp = false;
  g_warps.fetch_add(1, std::memory_order_relaxed);
  (active == kWarpWidth ? g_full : g_partial).fetch_add(1, std::memory_order_relaxed);
  g_lanes.fetch_add(static_cast<std::uint64_t>(active), std::memory_order_relaxed);
  for (const auto& v : tls.votes) {
    g_slots.fetch_add(1, std::memory_order_relaxed);
    const bool divergent = v[1] < active || (v[0] > 0 && v[0] < v[1]);
    (divergent ? g_divergent : g_convergent).fetch_add(1, std::memory_order_relaxed);
  }
  tls.votes.clear();
}

}  // namespace detail

}  // namespace vcgt::op2::simt
