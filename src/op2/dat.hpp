#pragma once
// op2::Dat<T> — data defined on a set (dim components per element), plus
// op2::Global<T> — per-rank global values used for reductions (residual
// norms, CFL limits) and read-only parameters passed into kernels.
//
// Halo coherence uses epochs rather than a single dirty bit so the partial
// halo exchange optimization (Table III "PH") can track cleanliness per
// loop plan: every write bumps write_epoch(); an exchange records the epoch
// it made (a subset of) the halo consistent with.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/op2/set.hpp"
#include "src/op2/types.hpp"

namespace vcgt::op2 {

/// Type-erased base; the halo machinery moves element payloads as raw bytes.
class DatBase {
 public:
  virtual ~DatBase() = default;
  DatBase(const DatBase&) = delete;
  DatBase& operator=(const DatBase&) = delete;

  [[nodiscard]] const Set& set() const { return *set_; }
  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int id() const { return id_; }
  /// Payload bytes per element (dim * sizeof(T)).
  [[nodiscard]] std::size_t elem_bytes() const { return elem_bytes_; }

  [[nodiscard]] virtual std::byte* raw() = 0;
  [[nodiscard]] virtual const std::byte* raw() const = 0;

  /// Epoch of the last write (any loop or external writer touching the dat).
  [[nodiscard]] std::uint64_t write_epoch() const { return write_epoch_; }
  /// Epoch the *full* halo was last synchronized at.
  [[nodiscard]] std::uint64_t halo_clean_epoch() const { return halo_clean_epoch_; }
  [[nodiscard]] bool halo_dirty() const { return write_epoch_ > halo_clean_epoch_; }

  /// External writers (the JM76 coupler scattering interface values, mesh
  /// deformation, test setup) must call this after mutating owned entries so
  /// the next reading loop refreshes halo copies.
  void mark_written() { ++write_epoch_; }
  void mark_halo_clean() { halo_clean_epoch_ = write_epoch_; }

 protected:
  DatBase(Set* set, int id, std::string name, int dim, std::size_t elem_bytes)
      : set_(set), id_(id), name_(std::move(name)), dim_(dim), elem_bytes_(elem_bytes) {}

  friend class Context;
  /// Re-lays out storage for the local window after partitioning:
  /// new_local[l] = old_global[l2g[l]] for l in [0, total).
  virtual void localize(std::span<const index_t> l2g) = 0;

  Set* set_;
  int id_;
  std::string name_;
  int dim_;
  std::size_t elem_bytes_;
  std::uint64_t write_epoch_ = 1;       // starts dirty-equal: halo starts clean
  std::uint64_t halo_clean_epoch_ = 1;  // (localize() copies halo values too)
};

template <class T>
class Dat final : public DatBase {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::span<T> span() { return data_; }
  [[nodiscard]] std::span<const T> span() const { return data_; }

  /// Pointer to element e's components.
  [[nodiscard]] T* elem(index_t e) {
    return data_.data() + static_cast<std::size_t>(e) * static_cast<std::size_t>(dim_);
  }
  [[nodiscard]] const T* elem(index_t e) const {
    return data_.data() + static_cast<std::size_t>(e) * static_cast<std::size_t>(dim_);
  }

  [[nodiscard]] std::byte* raw() override { return reinterpret_cast<std::byte*>(data_.data()); }
  [[nodiscard]] const std::byte* raw() const override {
    return reinterpret_cast<const std::byte*>(data_.data());
  }

 private:
  friend class Context;
  Dat(Set* set, int id, std::string name, int dim, std::vector<T> global_data)
      : DatBase(set, id, std::move(name), dim, sizeof(T) * static_cast<std::size_t>(dim)),
        data_(std::move(global_data)) {
    data_.resize(static_cast<std::size_t>(set->global_size()) * static_cast<std::size_t>(dim));
  }

  void localize(std::span<const index_t> l2g) override {
    std::vector<T> local(l2g.size() * static_cast<std::size_t>(dim_));
    for (std::size_t l = 0; l < l2g.size(); ++l) {
      const auto g = static_cast<std::size_t>(l2g[l]);
      std::memcpy(local.data() + l * static_cast<std::size_t>(dim_),
                  data_.data() + g * static_cast<std::size_t>(dim_),
                  elem_bytes_);
    }
    data_ = std::move(local);
  }

  std::vector<T> data_;
};

/// Global (per-rank) value participating in loops either read-only or as a
/// reduction target. par_loop finalizes Inc/Min/Max globals across ranks.
template <class T>
class Global {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] T* data() { return value_.data(); }
  [[nodiscard]] const T* data() const { return value_.data(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] T value(int i = 0) const { return value_[static_cast<std::size_t>(i)]; }
  void set(std::span<const T> v) {
    value_.assign(v.begin(), v.end());
  }
  void set(T v) { value_.assign(static_cast<std::size_t>(dim_), v); }

 private:
  friend class Context;
  Global(std::string name, int dim, std::vector<T> init)
      : name_(std::move(name)), dim_(dim), value_(std::move(init)) {
    value_.resize(static_cast<std::size_t>(dim_));
  }

  std::string name_;
  int dim_;
  std::vector<T> value_;
};

}  // namespace vcgt::op2
