#pragma once
// op2::Dat<T> — data defined on a set (dim components per element), plus
// op2::Global<T> — per-rank global values used for reductions (residual
// norms, CFL limits) and read-only parameters passed into kernels.
//
// Storage layout is runtime-selectable (DESIGN.md §8): AoS (the reference
// and I/O normal form), SoA (contiguous per-component columns for SIMD over
// direct loops) and blocked AoSoA. Kernels stay element-wise regardless:
// the par_loop executor hands out unit-stride pointers where the layout
// permits and stages elements through scratch blocks where it does not.
// The type-erased gather/scatter entry points move element payloads in AoS
// order so halo packing, renumbering and I/O never assume a layout.
//
// Halo coherence uses epochs rather than a single dirty bit so the partial
// halo exchange optimization (Table III "PH") can track cleanliness per
// loop plan: every write bumps write_epoch(); an exchange records the epoch
// it made (a subset of) the halo consistent with.
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/op2/set.hpp"
#include "src/op2/types.hpp"

namespace vcgt::op2 {

/// Type-erased base; the halo machinery moves element payloads as raw bytes.
class DatBase {
 public:
  virtual ~DatBase() = default;
  DatBase(const DatBase&) = delete;
  DatBase& operator=(const DatBase&) = delete;

  [[nodiscard]] const Set& set() const { return *set_; }
  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int id() const { return id_; }
  /// Payload bytes per element (dim * sizeof(T)) — layout-independent.
  [[nodiscard]] std::size_t elem_bytes() const { return elem_bytes_; }

  // --- layout ---------------------------------------------------------------
  [[nodiscard]] Layout layout() const { return layout_; }
  /// AoSoA block width W (1 for AoS/SoA).
  [[nodiscard]] int block() const { return block_; }
  /// Number of local elements (global size before partitioning).
  [[nodiscard]] index_t size() const { return nelem_; }
  /// Storage capacity in elements (== size() except AoSoA, which pads to a
  /// multiple of the block width; padding lanes are zero and never visited).
  [[nodiscard]] index_t capacity() const { return cap_; }
  /// True when element e's components are contiguous in memory, i.e. a plain
  /// `base + e*elem_stride()` pointer is valid for kernels. Holds for AoS
  /// always and for every layout when dim == 1.
  [[nodiscard]] bool unit_stride() const { return layout_ == Layout::AoS || dim_ == 1; }
  /// Distance in T-units between consecutive elements' component 0. Only
  /// meaningful when unit_stride().
  [[nodiscard]] std::size_t elem_stride() const {
    return layout_ == Layout::AoS ? static_cast<std::size_t>(dim_) : 1;
  }

  [[nodiscard]] virtual std::byte* raw() = 0;
  [[nodiscard]] virtual const std::byte* raw() const = 0;

  /// Packs the payloads of `elems` into `out` in AoS order (elem_bytes()
  /// per element, in the order given) regardless of the storage layout.
  virtual void gather_elems(std::span<const index_t> elems, std::byte* out) const = 0;
  /// Inverse of gather_elems: unpacks AoS-ordered payloads from `in` into
  /// the elements named by `elems`.
  virtual void scatter_elems(std::span<const index_t> elems, const std::byte* in) = 0;

  /// Epoch of the last write (any loop or external writer touching the dat).
  [[nodiscard]] std::uint64_t write_epoch() const { return write_epoch_; }
  /// Epoch the *full* halo was last synchronized at.
  [[nodiscard]] std::uint64_t halo_clean_epoch() const { return halo_clean_epoch_; }
  [[nodiscard]] bool halo_dirty() const { return write_epoch_ > halo_clean_epoch_; }

  /// External writers (the JM76 coupler scattering interface values, mesh
  /// deformation, test setup) must call this after mutating owned entries so
  /// the next reading loop refreshes halo copies.
  void mark_written() { ++write_epoch_; }
  void mark_halo_clean() { halo_clean_epoch_ = write_epoch_; }

 protected:
  DatBase(Set* set, int id, std::string name, int dim, std::size_t elem_bytes)
      : set_(set), id_(id), name_(std::move(name)), dim_(dim), elem_bytes_(elem_bytes) {}

  friend class Context;
  /// Re-lays out storage for the local window after partitioning:
  /// new_local[l] = old[src[l]] for l in [0, total), where `src` indexes the
  /// *pre-partition rows* of this dat (global ids in monolithic mode — they
  /// fit index_t by the decl_set guard — shard rows in sharded mode).
  virtual void localize(std::span<const index_t> src) = 0;
  /// Converts storage to the given layout, preserving every element's value.
  virtual void set_layout_storage(Layout layout, int block) = 0;

  [[nodiscard]] static index_t padded(index_t n, Layout l, int block) {
    if (l != Layout::AoSoA) return n;
    const index_t w = static_cast<index_t>(block);
    return (n + w - 1) / w * w;
  }

  Set* set_;
  int id_;
  std::string name_;
  int dim_;
  std::size_t elem_bytes_;
  Layout layout_ = Layout::AoS;
  int block_ = 1;    ///< AoSoA block width W (power of two); 1 otherwise
  int bshift_ = 0;   ///< log2(block_)
  index_t nelem_ = 0;
  index_t cap_ = 0;
  std::uint64_t write_epoch_ = 1;       // starts dirty-equal: halo starts clean
  std::uint64_t halo_clean_epoch_ = 1;  // (localize() copies halo values too)
};

template <class T>
class Dat final : public DatBase {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::span<T> span() { return data_; }
  [[nodiscard]] std::span<const T> span() const { return data_; }

  /// Layout-aware component access: element e, component c.
  [[nodiscard]] T& at(index_t e, int c) { return data_[off(e, c)]; }
  [[nodiscard]] const T& at(index_t e, int c) const { return data_[off(e, c)]; }

  /// Pointer to element e's components. Only valid when the layout keeps
  /// components contiguous (unit_stride()); layout-generic code must use
  /// at() or gather_elems()/scatter_elems().
  [[nodiscard]] T* elem(index_t e) {
    assert(unit_stride());
    return data_.data() + static_cast<std::size_t>(e) * elem_stride();
  }
  [[nodiscard]] const T* elem(index_t e) const {
    assert(unit_stride());
    return data_.data() + static_cast<std::size_t>(e) * elem_stride();
  }

  [[nodiscard]] std::byte* raw() override { return reinterpret_cast<std::byte*>(data_.data()); }
  [[nodiscard]] const std::byte* raw() const override {
    return reinterpret_cast<const std::byte*>(data_.data());
  }

  void gather_elems(std::span<const index_t> elems, std::byte* out) const override {
    const std::size_t d = static_cast<std::size_t>(dim_);
    if (unit_stride()) {
      for (std::size_t k = 0; k < elems.size(); ++k) {
        std::memcpy(out + k * elem_bytes_,
                    data_.data() + static_cast<std::size_t>(elems[k]) * elem_stride(),
                    elem_bytes_);
      }
      return;
    }
    for (std::size_t k = 0; k < elems.size(); ++k) {
      for (std::size_t c = 0; c < d; ++c) {
        std::memcpy(out + k * elem_bytes_ + c * sizeof(T),
                    data_.data() + off(elems[k], static_cast<int>(c)), sizeof(T));
      }
    }
  }

  void scatter_elems(std::span<const index_t> elems, const std::byte* in) override {
    const std::size_t d = static_cast<std::size_t>(dim_);
    if (unit_stride()) {
      for (std::size_t k = 0; k < elems.size(); ++k) {
        std::memcpy(data_.data() + static_cast<std::size_t>(elems[k]) * elem_stride(),
                    in + k * elem_bytes_, elem_bytes_);
      }
      return;
    }
    for (std::size_t k = 0; k < elems.size(); ++k) {
      for (std::size_t c = 0; c < d; ++c) {
        std::memcpy(data_.data() + off(elems[k], static_cast<int>(c)),
                    in + k * elem_bytes_ + c * sizeof(T), sizeof(T));
      }
    }
  }

 private:
  friend class Context;
  Dat(Set* set, int id, std::string name, int dim, std::vector<T> global_data)
      : DatBase(set, id, std::move(name), dim, sizeof(T) * static_cast<std::size_t>(dim)),
        data_(std::move(global_data)) {
    nelem_ = set->decl_rows();
    cap_ = nelem_;  // constructed AoS; Context applies the configured layout
    data_.resize(static_cast<std::size_t>(nelem_) * static_cast<std::size_t>(dim));
  }

  [[nodiscard]] std::size_t off(index_t e, int c) const {
    const auto eu = static_cast<std::size_t>(e);
    const auto cu = static_cast<std::size_t>(c);
    const auto du = static_cast<std::size_t>(dim_);
    switch (layout_) {
      case Layout::AoS: return eu * du + cu;
      case Layout::SoA: return cu * static_cast<std::size_t>(cap_) + eu;
      case Layout::AoSoA:
        return (((eu >> bshift_) * du + cu) << bshift_) +
               (eu & static_cast<std::size_t>(block_ - 1));
    }
    return 0;  // unreachable
  }

  [[nodiscard]] std::size_t storage_count() const {
    return static_cast<std::size_t>(cap_) * static_cast<std::size_t>(dim_);
  }

  void localize(std::span<const index_t> l2g) override {
    const std::size_t d = static_cast<std::size_t>(dim_);
    std::vector<T> local(l2g.size() * d);  // AoS staging of the local window
    for (std::size_t l = 0; l < l2g.size(); ++l) {
      for (std::size_t c = 0; c < d; ++c) {
        local[l * d + c] = at(l2g[l], static_cast<int>(c));
      }
    }
    nelem_ = static_cast<index_t>(l2g.size());
    cap_ = padded(nelem_, layout_, block_);
    data_.assign(storage_count(), T{});
    for (std::size_t l = 0; l < l2g.size(); ++l) {
      for (std::size_t c = 0; c < d; ++c) {
        at(static_cast<index_t>(l), static_cast<int>(c)) = local[l * d + c];
      }
    }
  }

  void set_layout_storage(Layout layout, int block) override {
    if (layout != Layout::AoSoA) block = 1;
    if (layout == layout_ && block == block_) return;
    const std::size_t d = static_cast<std::size_t>(dim_);
    const auto n = static_cast<std::size_t>(nelem_);
    std::vector<T> aos(n * d);
    for (std::size_t e = 0; e < n; ++e) {
      for (std::size_t c = 0; c < d; ++c) {
        aos[e * d + c] = at(static_cast<index_t>(e), static_cast<int>(c));
      }
    }
    layout_ = layout;
    block_ = block;
    bshift_ = 0;
    while ((1 << bshift_) < block_) ++bshift_;
    cap_ = padded(nelem_, layout_, block_);
    data_.assign(storage_count(), T{});
    for (std::size_t e = 0; e < n; ++e) {
      for (std::size_t c = 0; c < d; ++c) {
        at(static_cast<index_t>(e), static_cast<int>(c)) = aos[e * d + c];
      }
    }
  }

  std::vector<T> data_;
};

/// Global (per-rank) value participating in loops either read-only or as a
/// reduction target. par_loop finalizes Inc/Min/Max globals across ranks.
template <class T>
class Global {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] T* data() { return value_.data(); }
  [[nodiscard]] const T* data() const { return value_.data(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] T value(int i = 0) const { return value_[static_cast<std::size_t>(i)]; }
  void set(std::span<const T> v) {
    value_.assign(v.begin(), v.end());
  }
  void set(T v) { value_.assign(static_cast<std::size_t>(dim_), v); }

 private:
  friend class Context;
  Global(std::string name, int dim, std::vector<T> init)
      : name_(std::move(name)), dim_(dim), value_(std::move(init)) {
    value_.resize(static_cast<std::size_t>(dim_));
  }

  std::string name_;
  int dim_;
  std::vector<T> value_;
};

}  // namespace vcgt::op2
