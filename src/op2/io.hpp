#pragma once
// Binary dat I/O — the stand-in for OP2's HDF5-based file layer. A dat is
// written as one flat global array (gathered across ranks) with a small
// header, and loaded back into any compatible declaration regardless of the
// partitioning (values are scattered through the local-to-global numbering).
#include <string>

#include "src/op2/context.hpp"

namespace vcgt::op2::io {

/// Writes the dat's global contents (rank 0 writes; collective when
/// distributed). Returns false on I/O failure (consistent across ranks).
bool save(Context& ctx, const Dat<double>& dat, const std::string& path);

/// Loads a file written by save() into `dat` (collective). The set size and
/// dim must match; throws std::runtime_error on format mismatch and returns
/// false when the file cannot be read. Marks the dat written.
bool load(Context& ctx, Dat<double>& dat, const std::string& path);

}  // namespace vcgt::op2::io
