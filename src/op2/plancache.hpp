#pragma once
// op2::PlanCache — a process-wide, thread-safe LRU cache of setup artifacts.
//
// Setup dominates short runs (Reguly et al. measure plan/partition
// construction at a large fraction of an industrial OP2 application's
// wall-clock at low iteration counts), and a serving front end re-pays it
// per job unless partitions, renumberings and loop/chain plans become
// *cacheable artifacts*. The cache is deliberately dumb: string key ->
// type-erased shared_ptr<const void> + byte estimate, LRU-evicted under a
// memory cap. The intelligence — what is keyed how, and when a hit is safe
// to consume — lives with the producers:
//
//  - keys embed the SessionSpec hash (vcgt::SessionSpec::hash()), the
//    artifact kind and every structural coordinate (rank, world size,
//    partitioner), so a stale or foreign artifact can never be looked up;
//  - plan snapshots store their plan_fingerprint() and are re-validated on
//    import (plansnap.cpp);
//  - distributed consumers must agree collectively that *every* rank hit
//    before any rank consumes a cached artifact (Context::partition,
//    Context::import_plans_from_cache) — a mixed hit/miss would send one
//    rank down the cached path while its peers enter a collective build,
//    deadlocking the world. Lookups alone never block or communicate.
//
// Values are immutable once inserted (shared_ptr<const T>), so readers on
// worker threads share them without copying; eviction only drops the
// cache's reference.
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace vcgt::op2 {

class PlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;    ///< current resident estimate
    std::size_t entries = 0;  ///< current entry count
  };

  explicit PlanCache(std::size_t max_bytes = std::size_t{64} << 20)
      : max_bytes_(max_bytes) {}

  /// Returns the entry (bumping its recency) or null. Never blocks on
  /// anything but the cache mutex; never communicates.
  std::shared_ptr<const void> lookup(const std::string& key);

  template <class T>
  std::shared_ptr<const T> lookup_as(const std::string& key) {
    return std::static_pointer_cast<const T>(lookup(key));
  }

  /// Inserts `value` under `key` with the given resident-size estimate,
  /// evicting least-recently-used entries until the cap holds. An existing
  /// key is left in place (first insertion wins — producers of the same key
  /// compute identical artifacts, and keeping the resident one preserves
  /// sharing). An entry larger than the whole cap is not admitted.
  void insert(const std::string& key, std::shared_ptr<const void> value,
              std::size_t bytes);

  template <class T>
  void insert_value(const std::string& key, std::shared_ptr<const T> value,
                    std::size_t bytes) {
    insert(key, std::static_pointer_cast<const void>(std::move(value)), bytes);
  }

  /// Peek without bumping recency (tests / metrics).
  [[nodiscard]] bool contains(const std::string& key) const;

  void invalidate(const std::string& key);
  void clear();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
  };

  void evict_locked();

  mutable std::mutex mutex_;
  std::size_t max_bytes_;
  /// MRU at front; the map holds iterators into the list.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace vcgt::op2
