// Sharded partitioning (DESIGN.md §13) — the billion-node setup path.
//
// Monolithic setup replicates every set's full table on every rank and runs
// compute_imports() over the global topology. Sharded setup starts from the
// opposite premise: each rank declared only its shard — the rows it will own
// plus a ghost rind wide enough to see every element that interacts with
// them — identified by 64-bit global ids. Ownership must therefore be a
// pure function of the gid:
//   * primary sets:  owner(g) = block_owner(g, global_size, nranks) — the
//     monolithic Block partitioner's exact formula (types.hpp);
//   * other sets:    owner inherited through the first resolving map
//     (owner of map target 0), declaration order, to a fixpoint — exactly
//     compute_owners()'s propagation, evaluated shard-locally.
// With identical ownership, the shard-local halo computation below provably
// reproduces compute_imports() restricted to this rank:
//   exec(S)    = foreign shard rows of S with some target owned by me;
//   nonexec(T) = foreign targets of my executed rows not already exec.
// The local numbering [owned asc-gid | exec by (owner,gid) | nonexec by
// (owner,gid)] and the per-peer send orderings (exec requests asc-gid, then
// nonexec requests asc-gid) then match the monolithic construction element
// for element, so halo schedules and plan fingerprints are bit-identical —
// the shard-vs-monolithic equivalence contract, enforced structurally here
// (exec cross-check) and end-to-end by tests/test_shard.cpp.
#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_set>

#include "src/op2/context.hpp"
#include "src/util/log.hpp"

namespace vcgt::op2 {

void Context::partition_sharded(const std::vector<const Set*>& primaries) {
  if (partitioned_) throw std::logic_error("op2: partition_sharded() called twice");
  if (primaries.empty()) {
    throw std::invalid_argument("op2: partition_sharded() needs a primary set");
  }
  if (!any_sharded_) {
    throw std::logic_error(
        "op2: partition_sharded() on a context without sharded declarations");
  }
  for (const auto& s : sets_) {
    if (!s->sharded()) {
      throw std::logic_error(vcgt::util::fmt(
          "op2: partition_sharded() with monolithic set '{}' in the context",
          s->name()));
    }
  }
  for (const Set* p : primaries) {
    if (p == nullptr || &p->context() != this) {
      throw std::invalid_argument("op2: partition_sharded() primary not of this context");
    }
  }

  const int me = rank();
  const int nr = nranks();
  halos_.resize(sets_.size());
  g2l_.resize(sets_.size());
  partition_cached_ = false;  // owner snapshots are a monolithic-only shortcut

  if (!distributed()) {
    // Single rank: the shard must be the whole set; every row is owned.
    for (auto& set : sets_) {
      if (static_cast<gindex_t>(set->decl_rows()) != set->global_size()) {
        throw std::logic_error(vcgt::util::fmt(
            "op2: serial sharded set '{}' declares {} of {} rows", set->name(),
            set->decl_rows(), set->global_size()));
      }
      set->n_owned_ = set->decl_rows();
      set->n_exec_ = 0;
      set->n_nonexec_ = 0;
      auto& g2l = g2l_[static_cast<std::size_t>(set->id())];
      for (index_t l = 0; l < set->decl_rows(); ++l) g2l.emplace(set->global_id(l), l);
    }
    partitioned_ = true;
    return;
  }

  // --- ownership of every shard row (pure function of gid) ------------------
  std::vector<std::vector<int>> owners(sets_.size());
  std::vector<bool> resolved(sets_.size(), false);
  for (const Set* p : primaries) {
    const auto sid = static_cast<std::size_t>(p->id());
    auto& own = owners[sid];
    own.resize(static_cast<std::size_t>(p->decl_rows()));
    for (index_t r = 0; r < p->decl_rows(); ++r) {
      own[static_cast<std::size_t>(r)] = block_owner(p->global_id(r), p->global_size(), nr);
    }
    resolved[sid] = true;
  }
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const auto& map : maps_) {
      const auto from_id = static_cast<std::size_t>(map->from().id());
      const auto to_id = static_cast<std::size_t>(map->to().id());
      if (resolved[from_id] || !resolved[to_id]) continue;
      auto& own = owners[from_id];
      own.resize(static_cast<std::size_t>(map->from().decl_rows()));
      for (index_t e = 0; e < map->from().decl_rows(); ++e) {
        own[static_cast<std::size_t>(e)] =
            owners[to_id][static_cast<std::size_t>((*map)(e, 0))];
      }
      resolved[from_id] = true;
      progressed = true;
    }
  }
  for (std::size_t s = 0; s < sets_.size(); ++s) {
    if (resolved[s]) continue;
    auto& own = owners[s];
    own.resize(static_cast<std::size_t>(sets_[s]->decl_rows()));
    for (index_t r = 0; r < sets_[s]->decl_rows(); ++r) {
      own[static_cast<std::size_t>(r)] =
          block_owner(sets_[s]->global_id(r), sets_[s]->global_size(), nr);
    }
    util::warn("op2: set '{}' has no map path to the primary set; block-partitioned",
               sets_[s]->name());
  }

  // --- shard-local halo computation (compute_imports restricted to me) ------
  const auto nsets = sets_.size();
  std::vector<std::unordered_set<index_t>> exec_rows(nsets), nonexec_rows(nsets);

  // Pass 1: exec — foreign shard rows with some map target owned by me.
  for (const auto& map : maps_) {
    const auto from_id = static_cast<std::size_t>(map->from().id());
    const auto to_id = static_cast<std::size_t>(map->to().id());
    const int dim = map->dim();
    for (index_t e = 0; e < map->from().decl_rows(); ++e) {
      if (owners[from_id][static_cast<std::size_t>(e)] == me) continue;
      for (int i = 0; i < dim; ++i) {
        if (owners[to_id][static_cast<std::size_t>((*map)(e, i))] == me) {
          exec_rows[from_id].insert(e);
          break;
        }
      }
    }
  }

  // Pass 2: nonexec — foreign targets of my executed rows not already exec.
  for (const auto& map : maps_) {
    const auto from_id = static_cast<std::size_t>(map->from().id());
    const auto to_id = static_cast<std::size_t>(map->to().id());
    const int dim = map->dim();
    for (index_t e = 0; e < map->from().decl_rows(); ++e) {
      const bool executed = owners[from_id][static_cast<std::size_t>(e)] == me ||
                            exec_rows[from_id].count(e) != 0;
      if (!executed) continue;
      for (int i = 0; i < dim; ++i) {
        const index_t t = (*map)(e, i);
        if (owners[to_id][static_cast<std::size_t>(t)] == me) continue;
        if (exec_rows[to_id].count(t)) continue;
        nonexec_rows[to_id].insert(t);
      }
    }
  }

  // --- local numbering, recv schedules, per-peer import requests ------------
  // rows_new[s][l] = shard row at new local index l (consumed by map/dat
  // localization); shard gid lists stay in place until then.
  std::vector<std::vector<index_t>> rows_new(nsets);
  std::vector<std::vector<gindex_t>> l2g_new(nsets);
  // Per set, per owner peer: my exec / nonexec import gids, ascending.
  std::vector<std::vector<std::vector<gindex_t>>> want_exec(nsets), want_nonexec(nsets);

  for (auto& set : sets_) {
    const auto sid = static_cast<std::size_t>(set->id());
    const auto& own = owners[sid];
    auto& rows = rows_new[sid];
    auto& l2g = l2g_new[sid];

    for (index_t r = 0; r < set->decl_rows(); ++r) {
      if (own[static_cast<std::size_t>(r)] == me) rows.push_back(r);
    }
    set->n_owned_ = static_cast<index_t>(rows.size());

    SetHalo& halo = halos_[sid];
    auto append_halo = [&](const std::unordered_set<index_t>& import_rows) {
      std::vector<index_t> sorted(import_rows.begin(), import_rows.end());
      std::sort(sorted.begin(), sorted.end(), [&](index_t a, index_t b) {
        const int oa = own[static_cast<std::size_t>(a)];
        const int ob = own[static_cast<std::size_t>(b)];
        const gindex_t ga = set->global_id(a);
        const gindex_t gb = set->global_id(b);
        return std::tie(oa, ga) < std::tie(ob, gb);
      });
      for (const index_t r : sorted) {
        rows.push_back(r);
        halo.slot_src.push_back(own[static_cast<std::size_t>(r)]);
      }
      return sorted.size();
    };
    set->n_exec_ = static_cast<index_t>(append_halo(exec_rows[sid]));
    set->n_nonexec_ = static_cast<index_t>(append_halo(nonexec_rows[sid]));

    for (const index_t r : rows) l2g.push_back(set->global_id(r));

    std::map<int, std::vector<index_t>> recv_by_src;
    for (index_t h = 0; h < set->n_exec_ + set->n_nonexec_; ++h) {
      const index_t slot = set->n_owned_ + h;
      recv_by_src[halo.slot_src[static_cast<std::size_t>(h)]].push_back(slot);
    }
    for (auto& [src, slots] : recv_by_src) {
      halo.nbr_recv.push_back(src);
      halo.recv_slots.push_back(std::move(slots));
    }

    // Import requests to each owner: the (owner,gid)-sorted halo segments
    // restricted to one owner are ascending-gid runs — exactly the
    // monolithic per-peer ordering.
    auto& we = want_exec[sid];
    auto& wn = want_nonexec[sid];
    we.resize(static_cast<std::size_t>(nr));
    wn.resize(static_cast<std::size_t>(nr));
    for (index_t h = 0; h < set->n_exec_; ++h) {
      const auto src = static_cast<std::size_t>(halo.slot_src[static_cast<std::size_t>(h)]);
      we[src].push_back(l2g[static_cast<std::size_t>(set->n_owned_ + h)]);
    }
    for (index_t h = set->n_exec_; h < set->n_exec_ + set->n_nonexec_; ++h) {
      const auto src = static_cast<std::size_t>(halo.slot_src[static_cast<std::size_t>(h)]);
      wn[src].push_back(l2g[static_cast<std::size_t>(set->n_owned_ + h)]);
    }
  }

  // --- exchange requests; owners build send lists and cross-check exec ------
  for (auto& set : sets_) {
    const auto sid = static_cast<std::size_t>(set->id());
    const auto& own = owners[sid];
    SetHalo& halo = halos_[sid];

    const auto exec_req = comm_.alltoallv(want_exec[sid]);
    const auto nonexec_req = comm_.alltoallv(want_nonexec[sid]);

    // Cross-check: q's exec request must equal the list I compute from my
    // own shard — {my owned rows with some target owned by q}, ascending
    // gid. A mismatch means some rank's ghost rind was too narrow to see an
    // interaction the owner sees (or saw one the owner doesn't).
    std::vector<std::vector<gindex_t>> expected(static_cast<std::size_t>(nr));
    {
      std::vector<bool> foreign_owner(static_cast<std::size_t>(nr));
      for (index_t e = 0; e < set->decl_rows(); ++e) {
        if (own[static_cast<std::size_t>(e)] != me) continue;
        std::fill(foreign_owner.begin(), foreign_owner.end(), false);
        for (const auto& map : maps_) {
          if (&map->from() != set.get()) continue;
          const auto to_id = static_cast<std::size_t>(map->to().id());
          for (int i = 0; i < map->dim(); ++i) {
            const int ot = owners[to_id][static_cast<std::size_t>((*map)(e, i))];
            if (ot != me) foreign_owner[static_cast<std::size_t>(ot)] = true;
          }
        }
        const gindex_t ge = set->global_id(e);
        for (int q = 0; q < nr; ++q) {
          if (foreign_owner[static_cast<std::size_t>(q)]) {
            expected[static_cast<std::size_t>(q)].push_back(ge);
          }
        }
      }
    }
    for (int q = 0; q < nr; ++q) {
      if (q == me) continue;
      if (exec_req[static_cast<std::size_t>(q)] != expected[static_cast<std::size_t>(q)]) {
        throw std::logic_error(vcgt::util::fmt(
            "op2: shard rind insufficient on set '{}': rank {} expects {} exec exports "
            "to rank {} but rank {} requested {}",
            set->name(), me, expected[static_cast<std::size_t>(q)].size(), q, q,
            exec_req[static_cast<std::size_t>(q)].size()));
      }
    }

    // Send lists: per peer, exec requests then nonexec requests, localized
    // to my new owned numbering (owned gids ascending -> binary search).
    const auto& l2g = l2g_new[sid];
    auto owned_local = [&](gindex_t g, int q) {
      const auto end = l2g.begin() + set->n_owned_;
      const auto it = std::lower_bound(l2g.begin(), end, g);
      if (it == end || *it != g) {
        throw std::logic_error(vcgt::util::fmt(
            "op2: shard import request from rank {} for non-owned global {} (set '{}')",
            q, g, set->name()));
      }
      return static_cast<index_t>(it - l2g.begin());
    };
    for (int q = 0; q < nr; ++q) {
      if (q == me) continue;
      std::vector<index_t> send;
      for (const gindex_t g : exec_req[static_cast<std::size_t>(q)]) {
        send.push_back(owned_local(g, q));
      }
      for (const gindex_t g : nonexec_req[static_cast<std::size_t>(q)]) {
        send.push_back(owned_local(g, q));
      }
      if (!send.empty()) {
        halo.nbr_send.push_back(q);
        halo.send_idx.push_back(std::move(send));
      }
    }

    auto& g2l = g2l_[sid];
    for (std::size_t l = 0; l < l2g.size(); ++l) {
      g2l.emplace(l2g[l], static_cast<index_t>(l));
    }
  }

  // --- localize map tables (shard rows -> new local indices) ----------------
  for (auto& map : maps_) {
    const Set& from = map->from();
    const Set& to = map->to();
    const auto& from_rows = rows_new[static_cast<std::size_t>(from.id())];
    const auto& g2l_to = g2l_[static_cast<std::size_t>(to.id())];
    const int dim = map->dim();
    const index_t n_executed = from.n_owned() + from.n_exec();
    std::vector<index_t> local(static_cast<std::size_t>(n_executed) *
                               static_cast<std::size_t>(dim));
    for (index_t e = 0; e < n_executed; ++e) {
      const auto row = static_cast<std::size_t>(from_rows[static_cast<std::size_t>(e)]);
      for (int i = 0; i < dim; ++i) {
        const index_t t_row = map->table_[row * static_cast<std::size_t>(dim) +
                                          static_cast<std::size_t>(i)];
        const gindex_t gt = to.global_id(t_row);
        const auto it = g2l_to.find(gt);
        if (it == g2l_to.end()) {
          throw std::logic_error(vcgt::util::fmt(
              "op2: map '{}' references global {} of set '{}' missing from rank {}'s halo",
              map->name(), gt, to.name(), me));
        }
        local[static_cast<std::size_t>(e) * static_cast<std::size_t>(dim) +
              static_cast<std::size_t>(i)] = it->second;
      }
    }
    map->table_ = std::move(local);
  }

  // --- localize dats (source rows are shard rows) and install numberings ----
  for (auto& dat : dats_) {
    dat->localize(rows_new[static_cast<std::size_t>(dat->set().id())]);
  }
  for (auto& set : sets_) {
    set->l2g_ = std::move(l2g_new[static_cast<std::size_t>(set->id())]);
  }

  partitioned_ = true;
}

}  // namespace vcgt::op2
