#include "src/serve/session.hpp"

#include <chrono>
#include <utility>

namespace vcgt::serve {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double seconds_since(std::int64_t t0_ns) {
  return static_cast<double>(steady_ns() - t0_ns) * 1e-9;
}

}  // namespace

minimpi::WorkerPool::Job make_session_job(SessionSpec spec, std::uint64_t job_id,
                                          op2::PlanCache* cache,
                                          std::shared_ptr<JobOutput> out) {
  return [spec = std::move(spec), job_id, cache,
          out = std::move(out)](minimpi::Comm& comm, std::shared_ptr<void>& slot) {
    try {
      const std::uint64_t key = spec.setup_hash();
      const bool root = comm.rank() == 0;

      // --- setup: warm reuse or cold construction through the cache -------
      const std::int64_t t_setup = steady_ns();
      auto session = std::static_pointer_cast<Session>(slot);
      bool warm = session != nullptr && session->setup_hash == key &&
                  session->rig != nullptr;
      if (warm) {
        session->rig->reinitialize();
      } else {
        slot.reset();
        session.reset();
        session = std::make_shared<Session>();
        session->setup_hash = key;
        session->comm = comm;  // outlives this job; the rig binds to it
        session->rig = std::make_unique<jm76::CoupledRig>(
            session->comm, spec.coupled_config(cache));
        slot = session;
      }
      jm76::CoupledRig& rig = *session->rig;
      if (root) {
        out->warm = warm;
        out->setup_seconds = seconds_since(t_setup);
        if (op2::Context* ctx = rig.context()) {
          out->partition_cached = ctx->partition_was_cached();
          out->plans_cached = ctx->plans_were_imported();
        }
      }

      // --- run, one telemetry frame per physical step ---------------------
      // Monitors are collective over the row-0 sub-communicator: every
      // row-0 HS rank computes them (on_step fires in lockstep per row);
      // only world rank 0 — which is row 0's rank 0 by Layout construction
      // — appends the frame.
      jm76::CoupledRig* rigp = &rig;
      JobOutput* outp = out.get();
      const auto on_step = [rigp, outp, job_id, root](int step) {
        const jm76::Role& role = rigp->role();
        if (role.kind != jm76::Role::Kind::HydraSession || role.row != 0) return;
        hydra::RowSolver& solver = *rigp->solver();
        StepFrame f;
        f.job_id = job_id;
        f.step = step;
        f.time = solver.physical_time();
        f.rms = solver.residual_rms();
        f.mdot_in = solver.mass_flow(rig::BoundaryGroup::Inlet);
        f.mdot_out = solver.mass_flow(rig::BoundaryGroup::Outlet);
        f.mean_p = solver.mean_pressure();
        f.power = solver.shaft_power();
        if (root) {
          const auto totals = rigp->context()->total_stats();
          f.halo_bytes = totals.halo_bytes;
          f.halo_msgs = totals.halo_msgs;
          outp->frames.push_back(f);
        }
      };
      const std::int64_t t_run = steady_ns();
      rig.run(spec.nsteps, spec.inner, on_step);
      if (root) out->run_seconds = seconds_since(t_run);

      // Deposit plans only after a clean run: a job killed mid-flight never
      // gets to publish artifacts, so a poisoned world cannot poison the
      // cache (export is also all-or-nothing per rank).
      rig.export_plans();

      if (root) out->done_ns.store(steady_ns(), std::memory_order_release);
    } catch (...) {
      out->done_ns.store(steady_ns(), std::memory_order_release);
      throw;
    }
  };
}

}  // namespace vcgt::serve
