#pragma once
// vcgt::serve::SessionSpec — the one serializable description of a coupled
// simulation session (DESIGN.md §12).
//
// Before this existed, "what to run" was scattered across constructor
// arguments: a rig::RigSpec from a factory, a rig::MeshResolution tier, a
// hydra::FlowConfig, the jm76 coupling knobs, an op2::Config and a
// minimpi fault plan, each threaded by hand into jm76::CoupledConfig at
// every call site. A serving front end needs that bundle to be a *value*:
// comparable (is this the same session a warm worker already holds?),
// hashable (what key do cached partitions/plans live under?), and wire-
// encodable (a client submits the spec, not code). SessionSpec is that
// value. Its canonical byte form (serialize()) feeds both the frame
// protocol and the two hashes:
//
//  - setup_hash() covers only the fields that determine setup artifacts —
//    rig geometry, mesh resolution, flow model, coupling topology, op2
//    execution config. It keys the op2::PlanCache entries (meshes, owner
//    maps, loop/chain plans) and warm-session matching. Per-job knobs
//    (step counts) and the fault plan are excluded on purpose: a chaos
//    variant of a spec exercises the *same* mesh and plans, so it shares
//    the cache and can reuse a warm rig.
//  - hash() covers everything, identifying the exact job.
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/hydra/config.hpp"
#include "src/jm76/coupled.hpp"
#include "src/minimpi/fault.hpp"
#include "src/op2/types.hpp"
#include "src/rig/rowspec.hpp"

namespace vcgt::serve {

struct SessionSpec {
  // --- rig geometry (factory parameters, not the expanded RigSpec) --------
  std::string rig = "rig250";  ///< "rig250" | "rig250_swan_neck"
  int nrows = 2;
  double rpm = 11000.0;
  bool contraction = false;
  /// Mesh resolution tier ("tiny"|"small"|"medium"|...) expanded through
  /// rig::resolution_tier(); explicit res overrides when tier is empty.
  std::string tier = "tiny";
  rig::MeshResolution res{};

  // --- flow model ---------------------------------------------------------
  hydra::FlowConfig flow{};

  // --- coupling topology --------------------------------------------------
  std::vector<int> hs_ranks{1, 1};  ///< ranks per row
  int cus_per_interface = 1;
  jm76::SearchKind search = jm76::SearchKind::Adt;
  jm76::InterpKind interp = jm76::InterpKind::DonorCell;
  jm76::TransferKind transfer = jm76::TransferKind::SlidingPlane;
  jm76::CoupledConfig::CuPartition cu_partition =
      jm76::CoupledConfig::CuPartition::Sector;
  bool staged_gather = true;

  // --- op2 execution ------------------------------------------------------
  op2::Config op2cfg{};
  op2::Partitioner partitioner = op2::Partitioner::Rcb;
  /// Billion-node setup path: per-rank shard synthesis + partition_sharded
  /// (CoupledConfig::sharded_setup). Setup-determining: sharded contexts key
  /// their plan-cache entries separately (op2 plansnap `s` discriminator).
  bool sharded_setup = false;

  // --- per-job (excluded from setup_hash) ---------------------------------
  int nsteps = 1;
  int inner = -1;  ///< pseudo-time iterations per step; -1 = FlowConfig value
  minimpi::FaultConfig fault{};

  /// Ranks the session's world needs (HS ranks + coupler units).
  [[nodiscard]] int world_size() const;

  /// Canonical little-endian byte form (the hashes are FNV-1a over this).
  [[nodiscard]] std::vector<std::byte> serialize() const;
  static SessionSpec deserialize(std::span<const std::byte> bytes);

  /// Hash of the full spec (job identity).
  [[nodiscard]] std::uint64_t hash() const;
  /// Hash of the setup-determining fields only (cache / warm-session key).
  [[nodiscard]] std::uint64_t setup_hash() const;
  /// Hash of the fault plan alone. Worker worlds are keyed by
  /// (world_size, fault_hash): a chaos spec shares the plan cache with its
  /// clean twin but never shares a world with it.
  [[nodiscard]] std::uint64_t fault_hash() const;

  /// Expands the spec into the jm76 constructor bundle. `plan_cache` may be
  /// null; when set it is wired in together with setup_hash(). Pipelined
  /// coupling is always off for served sessions: the one-step ghost lag
  /// would make the per-step frames observe stale interface data and a
  /// one-step run() would couple nothing at all.
  [[nodiscard]] jm76::CoupledConfig coupled_config(
      op2::PlanCache* plan_cache = nullptr) const;

  bool operator==(const SessionSpec& other) const;
};

}  // namespace vcgt::serve
