#pragma once
// vcgt::serve wire protocol — length-prefixed binary frames (DESIGN.md §12).
//
// Framing: every frame is
//
//     u32 length   (bytes after this field: header + body)
//     u16 version  (kProtocolVersion; receivers reject mismatches)
//     u16 type     (FrameType)
//     ...body      (type-specific, ByteWriter encoding)
//
// The encoding is the same little-endian ByteWriter/ByteReader discipline
// the SessionSpec uses, so a spec travels inside a Submit frame verbatim as
// the bytes its hash is computed over. FrameSplitter turns an arbitrary
// byte stream (a socket's read() chunks, a file, a test buffer) back into
// whole frames: feed it bytes, pop complete frames; it never reads past a
// length prefix and throws on structurally invalid input (oversized or
// undersized length, bad version) instead of desynchronizing.
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace vcgt::serve {

constexpr std::uint16_t kProtocolVersion = 1;

/// Upper bound on a single frame's length field. Frames are telemetry and
/// control — anything larger is a corrupt stream, not a big message.
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

enum class FrameType : std::uint16_t {
  Hello = 1,        ///< server → client: protocol handshake
  Submit = 2,       ///< client → server: SessionSpec blob
  JobAccepted = 3,  ///< server → client: admission granted
  JobRejected = 4,  ///< server → client: backpressure, retry later
  Step = 5,         ///< server → client: one per physical step
  JobDone = 6,      ///< server → client: terminal success
  JobError = 7,     ///< server → client: terminal failure (structured)
};

struct HelloFrame {
  std::uint16_t protocol_version = kProtocolVersion;
  std::string server = "vcgt-serve";
};

struct SubmitFrame {
  std::vector<std::byte> spec;  ///< SessionSpec::serialize() blob
};

struct JobAcceptedFrame {
  std::uint64_t job_id = 0;
  std::uint64_t spec_hash = 0;
};

struct JobRejectedFrame {
  double retry_after = 0.0;  ///< seconds; admission backpressure hint
  std::string reason;
};

/// Per-physical-step telemetry: the row-0 monitor set plus the op2 halo
/// traffic counters of the emitting rank's context (cumulative over the
/// session so far).
struct StepFrame {
  std::uint64_t job_id = 0;
  std::int32_t step = 0;
  double time = 0.0;      ///< physical time [s]
  double rms = 0.0;       ///< row-0 residual rms
  double mdot_in = 0.0;   ///< row-0 inlet mass flow
  double mdot_out = 0.0;  ///< row-0 outlet mass flow
  double mean_p = 0.0;    ///< row-0 volume-mean static pressure
  double power = 0.0;     ///< row-0 shaft power [W]
  std::uint64_t halo_bytes = 0;
  std::uint64_t halo_msgs = 0;
};

struct JobDoneFrame {
  std::uint64_t job_id = 0;
  std::int32_t steps = 0;
  bool warm = false;            ///< setup reused a parked session
  bool plans_cached = false;    ///< op2 plans came from the plan cache
  double setup_seconds = 0.0;
  double run_seconds = 0.0;
};

struct JobErrorFrame {
  std::uint64_t job_id = 0;
  std::string error;                     ///< first failing rank's message
  std::vector<std::string> rank_errors;  ///< per world rank; empty = clean
  bool world_rebuilt = false;
};

// --- encoding ---------------------------------------------------------------

std::vector<std::byte> encode(const HelloFrame& f);
std::vector<std::byte> encode(const SubmitFrame& f);
std::vector<std::byte> encode(const JobAcceptedFrame& f);
std::vector<std::byte> encode(const JobRejectedFrame& f);
std::vector<std::byte> encode(const StepFrame& f);
std::vector<std::byte> encode(const JobDoneFrame& f);
std::vector<std::byte> encode(const JobErrorFrame& f);

// --- decoding ---------------------------------------------------------------

/// One whole frame, split off a stream.
struct Frame {
  FrameType type{};
  std::vector<std::byte> body;  ///< payload after the version/type header

  [[nodiscard]] HelloFrame as_hello() const;
  [[nodiscard]] SubmitFrame as_submit() const;
  [[nodiscard]] JobAcceptedFrame as_job_accepted() const;
  [[nodiscard]] JobRejectedFrame as_job_rejected() const;
  [[nodiscard]] StepFrame as_step() const;
  [[nodiscard]] JobDoneFrame as_job_done() const;
  [[nodiscard]] JobErrorFrame as_job_error() const;
};

/// Incremental stream splitter (see header comment).
class FrameSplitter {
 public:
  /// Appends stream bytes; throws std::runtime_error on a structurally
  /// invalid prefix (length over kMaxFrameBytes or under the header size,
  /// or a version mismatch once the header is readable).
  void feed(std::span<const std::byte> bytes);

  /// Pops the next complete frame; nullopt when the buffered bytes end
  /// mid-frame (feed more).
  std::optional<Frame> pop();

  /// Bytes buffered but not yet popped as frames.
  [[nodiscard]] std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
  std::deque<Frame> ready_;
};

}  // namespace vcgt::serve
