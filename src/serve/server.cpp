#include "src/serve/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/minimpi/fault.hpp"
#include "src/util/fmt.hpp"
#include "src/util/log.hpp"

namespace vcgt::serve {

namespace {

/// Releases one admission unit when the last copy of a job closure dies
/// (the pool destroys closures after finalize — success, failure and
/// shutdown all pass through there).
struct AdmissionGuard {
  std::shared_ptr<std::atomic<long>> n;
  ~AdmissionGuard() {
    if (n) n->fetch_sub(1, std::memory_order_acq_rel);
  }
};

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(opts), cache_(opts.cache_bytes),
      outstanding_(std::make_shared<std::atomic<long>>(0)) {}

Server::~Server() { shutdown(); }

minimpi::WorkerPool* Server::pool_for_locked(const SessionSpec& spec,
                                             std::string* reason) {
  const int ws = spec.world_size();
  const std::string key = util::fmt("w{}:f{}", ws, spec.fault_hash());
  auto it = pools_.find(key);
  if (it != pools_.end()) return it->second.get();
  if (total_ranks_ + ws > opts_.max_total_ranks) {
    *reason = util::fmt("rank budget exhausted ({} live + {} needed > {})",
                        total_ranks_, ws, opts_.max_total_ranks);
    return nullptr;
  }
  minimpi::WorldOptions wopts;
  if (spec.fault.enabled()) {
    wopts.fault = std::make_shared<minimpi::FaultPlan>(spec.fault);
  }
  wopts.stall_timeout = opts_.stall_timeout;
  wopts.recv_timeout = opts_.recv_timeout;
  wopts.recv_retries = opts_.recv_retries;
  auto pool = std::make_unique<minimpi::WorkerPool>(ws, wopts);
  minimpi::WorkerPool* raw = pool.get();
  pools_.emplace(key, std::move(pool));
  total_ranks_ += ws;
  util::debug("serve::Server: world {} up ({} ranks, {} total)", key, ws, total_ranks_);
  return raw;
}

Server::Ticket Server::submit(const SessionSpec& spec) {
  Ticket t;
  t.spec_hash = spec.hash();
  std::scoped_lock lock(mutex_);
  if (stopped_) {
    t.reason = "server shut down";
    return t;
  }
  if (outstanding_->load(std::memory_order_acquire) >=
      static_cast<long>(opts_.queue_capacity)) {
    t.retry_after = opts_.retry_after;
    t.reason = util::fmt("admission queue full ({} outstanding)",
                         opts_.queue_capacity);
    return t;
  }
  std::string reason;
  minimpi::WorkerPool* pool = pool_for_locked(spec, &reason);
  if (pool == nullptr) {
    t.retry_after = opts_.retry_after;
    t.reason = reason;
    return t;
  }

  const std::uint64_t job_id = ++next_job_id_;
  auto output = std::make_shared<JobOutput>();
  auto guard = std::make_shared<AdmissionGuard>();
  guard->n = outstanding_;
  outstanding_->fetch_add(1, std::memory_order_acq_rel);
  auto inner = make_session_job(spec, job_id, &cache_, output);
  Handle handle;
  handle.result = pool->submit(
      [inner = std::move(inner), guard = std::move(guard)](
          minimpi::Comm& comm, std::shared_ptr<void>& slot) { inner(comm, slot); });
  handle.output = std::move(output);
  handle.spec_hash = t.spec_hash;
  jobs_.emplace(job_id, std::move(handle));

  t.accepted = true;
  t.job_id = job_id;
  return t;
}

Server::JobOutcome Server::wait(std::uint64_t job_id) {
  Handle handle;
  {
    std::scoped_lock lock(mutex_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      throw std::invalid_argument(
          util::fmt("serve::Server::wait: unknown job id {}", job_id));
    }
    handle = std::move(it->second);
    jobs_.erase(it);
  }
  const minimpi::WorkerPool::JobResult result = handle.result.get();

  JobOutcome oc;
  oc.job_id = job_id;
  oc.ok = result.ok;
  oc.error = result.error;
  oc.rank_errors = result.rank_errors;
  oc.world_rebuilt = result.world_rebuilt;
  oc.warm = handle.output->warm;
  oc.partition_cached = handle.output->partition_cached;
  oc.plans_cached = handle.output->plans_cached;
  oc.setup_seconds = handle.output->setup_seconds;
  oc.run_seconds = handle.output->run_seconds;
  oc.frames = std::move(handle.output->frames);
  oc.done_ns = handle.output->done_ns.load(std::memory_order_acquire);
  return oc;
}

std::vector<std::byte> Server::wait_stream(std::uint64_t job_id) {
  const JobOutcome oc = wait(job_id);
  std::vector<std::byte> stream;
  const auto append = [&stream](std::vector<std::byte> frame) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  };
  JobAcceptedFrame acc;
  acc.job_id = oc.job_id;
  append(encode(acc));
  for (const StepFrame& f : oc.frames) append(encode(f));
  if (oc.ok) {
    JobDoneFrame done;
    done.job_id = oc.job_id;
    done.steps = static_cast<std::int32_t>(oc.frames.size());
    done.warm = oc.warm;
    done.plans_cached = oc.plans_cached;
    done.setup_seconds = oc.setup_seconds;
    done.run_seconds = oc.run_seconds;
    append(encode(done));
  } else {
    JobErrorFrame err;
    err.job_id = oc.job_id;
    err.error = oc.error;
    err.rank_errors = oc.rank_errors;
    err.world_rebuilt = oc.world_rebuilt;
    append(encode(err));
  }
  return stream;
}

std::vector<std::byte> Server::rejection_stream(const Ticket& ticket) {
  JobRejectedFrame f;
  f.retry_after = ticket.retry_after;
  f.reason = ticket.reason;
  return encode(f);
}

std::size_t Server::outstanding() const {
  return static_cast<std::size_t>(
      std::max<long>(0, outstanding_->load(std::memory_order_acquire)));
}

std::size_t Server::worlds() const {
  std::scoped_lock lock(mutex_);
  return pools_.size();
}

int Server::total_ranks() const {
  std::scoped_lock lock(mutex_);
  return total_ranks_;
}

void Server::shutdown() {
  std::map<std::string, std::unique_ptr<minimpi::WorkerPool>> pools;
  {
    std::scoped_lock lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    pools.swap(pools_);
  }
  // Pool shutdown outside the lock: in-flight jobs finish, queued jobs fail
  // with "pool shut down"; their futures stay claimable through wait().
  for (auto& [key, pool] : pools) pool->shutdown();
}

}  // namespace vcgt::serve
