#include "src/serve/session_spec.hpp"

#include <stdexcept>

#include "src/jm76/layout.hpp"
#include "src/util/bytes.hpp"

namespace vcgt::serve {

namespace {

// Wire format version for the spec blob itself (the frame protocol carries
// its own version; this one guards the spec encoding inside a frame).
constexpr std::uint16_t kSpecVersion = 3;  // v3: + op2 zero_copy_transport

void put_flow(util::ByteWriter& w, const hydra::FlowConfig& f) {
  w.put_f64(f.gamma);
  w.put_f64(f.gas_constant);
  w.put_f64(f.rho_in);
  w.put_f64(f.u_axial_in);
  w.put_f64(f.p_in);
  w.put_f64(f.p_back_ratio);
  w.put_f64(f.cfl);
  w.put_f64(f.cfl_start);
  w.put_i32(f.cfl_ramp_iters);
  w.put_i32(f.rk_stages);
  w.put_bool(f.chain_rk);
  w.put_bool(f.sort_faces);
  w.put_i32(f.inner_iters);
  w.put_f64(f.dt_phys);
  w.put_bool(f.implicit_dual_time);
  w.put_f64(f.implicit_cfl);
  w.put_i32(f.implicit_max_iters);
  w.put_f64(f.implicit_rtol);
  w.put_bool(f.steady);
  w.put_f64(f.blade_wake_frac);
  w.put_f64(f.blade_relax);
  w.put_f64(f.rotor_swirl_frac);
  w.put_f64(f.stator_swirl_frac);
  w.put_f64(f.rotor_axial_load);
  w.put_u8(static_cast<std::uint8_t>(f.flux_scheme));
  w.put_bool(f.second_order);
  w.put_bool(f.viscous);
  w.put_f64(f.mu_laminar);
  w.put_f64(f.prandtl);
  w.put_f64(f.prandtl_turb);
  w.put_bool(f.no_slip_walls);
  w.put_bool(f.inlet_total_conditions);
  w.put_f64(f.inlet_p0);
  w.put_f64(f.inlet_t0);
  w.put_f64(f.sa_cb1);
  w.put_f64(f.sa_cw1);
  w.put_f64(f.sa_sigma);
  w.put_f64(f.sa_cv1);
  w.put_f64(f.sa_nut_in);
}

hydra::FlowConfig get_flow(util::ByteReader& r) {
  hydra::FlowConfig f;
  f.gamma = r.get_f64();
  f.gas_constant = r.get_f64();
  f.rho_in = r.get_f64();
  f.u_axial_in = r.get_f64();
  f.p_in = r.get_f64();
  f.p_back_ratio = r.get_f64();
  f.cfl = r.get_f64();
  f.cfl_start = r.get_f64();
  f.cfl_ramp_iters = r.get_i32();
  f.rk_stages = r.get_i32();
  f.chain_rk = r.get_bool();
  f.sort_faces = r.get_bool();
  f.inner_iters = r.get_i32();
  f.dt_phys = r.get_f64();
  f.implicit_dual_time = r.get_bool();
  f.implicit_cfl = r.get_f64();
  f.implicit_max_iters = r.get_i32();
  f.implicit_rtol = r.get_f64();
  f.steady = r.get_bool();
  f.blade_wake_frac = r.get_f64();
  f.blade_relax = r.get_f64();
  f.rotor_swirl_frac = r.get_f64();
  f.stator_swirl_frac = r.get_f64();
  f.rotor_axial_load = r.get_f64();
  f.flux_scheme = static_cast<hydra::FlowConfig::FluxScheme>(r.get_u8());
  f.second_order = r.get_bool();
  f.viscous = r.get_bool();
  f.mu_laminar = r.get_f64();
  f.prandtl = r.get_f64();
  f.prandtl_turb = r.get_f64();
  f.no_slip_walls = r.get_bool();
  f.inlet_total_conditions = r.get_bool();
  f.inlet_p0 = r.get_f64();
  f.inlet_t0 = r.get_f64();
  f.sa_cb1 = r.get_f64();
  f.sa_cw1 = r.get_f64();
  f.sa_sigma = r.get_f64();
  f.sa_cv1 = r.get_f64();
  f.sa_nut_in = r.get_f64();
  return f;
}

void put_op2(util::ByteWriter& w, const op2::Config& c) {
  w.put_bool(c.partial_halos);
  w.put_bool(c.grouped_halos);
  w.put_bool(c.staged_gather);
  w.put_i32(c.nthreads);
  w.put_bool(c.force_coloring);
  w.put_bool(c.latency_hiding);
  w.put_u8(static_cast<std::uint8_t>(c.default_layout));
  w.put_i32(c.aosoa_block);
  w.put_bool(c.deterministic_reductions);
  w.put_bool(c.simt);
  w.put_i32(c.chain_tile);
  w.put_bool(c.zero_copy_transport);
}

op2::Config get_op2(util::ByteReader& r) {
  op2::Config c;
  c.partial_halos = r.get_bool();
  c.grouped_halos = r.get_bool();
  c.staged_gather = r.get_bool();
  c.nthreads = r.get_i32();
  c.force_coloring = r.get_bool();
  c.latency_hiding = r.get_bool();
  c.default_layout = static_cast<op2::Layout>(r.get_u8());
  c.aosoa_block = r.get_i32();
  c.deterministic_reductions = r.get_bool();
  c.simt = r.get_bool();
  c.chain_tile = r.get_i32();
  c.zero_copy_transport = r.get_bool();
  return c;
}

void put_fault(util::ByteWriter& w, const minimpi::FaultConfig& f) {
  w.put_u64(f.seed);
  w.put_f64(f.p_delay);
  w.put_f64(f.p_duplicate);
  w.put_f64(f.p_reorder);
  w.put_f64(f.p_drop);
  w.put_f64(f.delay_seconds);
  w.put_i32(f.drop_attempts);
  w.put_u32(static_cast<std::uint32_t>(f.schedule.size()));
  for (const auto& s : f.schedule) {
    w.put_i32(s.rank);
    w.put_u64(s.op);
    w.put_u8(static_cast<std::uint8_t>(s.kind));
  }
}

minimpi::FaultConfig get_fault(util::ByteReader& r) {
  minimpi::FaultConfig f;
  f.seed = r.get_u64();
  f.p_delay = r.get_f64();
  f.p_duplicate = r.get_f64();
  f.p_reorder = r.get_f64();
  f.p_drop = r.get_f64();
  f.delay_seconds = r.get_f64();
  f.drop_attempts = r.get_i32();
  const std::uint32_t n = r.get_u32();
  f.schedule.resize(n);
  for (auto& s : f.schedule) {
    s.rank = r.get_i32();
    s.op = r.get_u64();
    s.kind = static_cast<minimpi::FaultKind>(r.get_u8());
  }
  return f;
}

/// The setup-determining prefix: everything the mesh, partition and plan
/// artifacts depend on. setup_hash() is FNV-1a over exactly these bytes.
void put_setup(util::ByteWriter& w, const SessionSpec& s) {
  w.put_string(s.rig);
  w.put_i32(s.nrows);
  w.put_f64(s.rpm);
  w.put_bool(s.contraction);
  w.put_string(s.tier);
  w.put_i32(s.res.nx);
  w.put_i32(s.res.nr);
  w.put_i32(s.res.ntheta);
  put_flow(w, s.flow);
  w.put_u32(static_cast<std::uint32_t>(s.hs_ranks.size()));
  for (const int n : s.hs_ranks) w.put_i32(n);
  w.put_i32(s.cus_per_interface);
  w.put_u8(static_cast<std::uint8_t>(s.search));
  w.put_u8(static_cast<std::uint8_t>(s.interp));
  w.put_u8(static_cast<std::uint8_t>(s.transfer));
  w.put_u8(static_cast<std::uint8_t>(s.cu_partition));
  w.put_bool(s.staged_gather);
  put_op2(w, s.op2cfg);
  w.put_u8(static_cast<std::uint8_t>(s.partitioner));
  w.put_bool(s.sharded_setup);
}

void get_setup(util::ByteReader& r, SessionSpec& s) {
  s.rig = r.get_string();
  s.nrows = r.get_i32();
  s.rpm = r.get_f64();
  s.contraction = r.get_bool();
  s.tier = r.get_string();
  s.res.nx = r.get_i32();
  s.res.nr = r.get_i32();
  s.res.ntheta = r.get_i32();
  s.flow = get_flow(r);
  const std::uint32_t nrows = r.get_u32();
  s.hs_ranks.resize(nrows);
  for (auto& n : s.hs_ranks) n = r.get_i32();
  s.cus_per_interface = r.get_i32();
  s.search = static_cast<jm76::SearchKind>(r.get_u8());
  s.interp = static_cast<jm76::InterpKind>(r.get_u8());
  s.transfer = static_cast<jm76::TransferKind>(r.get_u8());
  s.cu_partition = static_cast<jm76::CoupledConfig::CuPartition>(r.get_u8());
  s.staged_gather = r.get_bool();
  s.op2cfg = get_op2(r);
  s.partitioner = static_cast<op2::Partitioner>(r.get_u8());
  s.sharded_setup = r.get_bool();
}

}  // namespace

int SessionSpec::world_size() const {
  return jm76::Layout(hs_ranks, cus_per_interface).world_size();
}

std::vector<std::byte> SessionSpec::serialize() const {
  util::ByteWriter w;
  w.put_u16(kSpecVersion);
  put_setup(w, *this);
  w.put_i32(nsteps);
  w.put_i32(inner);
  put_fault(w, fault);
  return w.take();
}

SessionSpec SessionSpec::deserialize(std::span<const std::byte> bytes) {
  util::ByteReader r(bytes);
  const std::uint16_t version = r.get_u16();
  if (version != kSpecVersion) {
    throw std::runtime_error("SessionSpec: unsupported spec version");
  }
  SessionSpec s;
  get_setup(r, s);
  s.nsteps = r.get_i32();
  s.inner = r.get_i32();
  s.fault = get_fault(r);
  return s;
}

std::uint64_t SessionSpec::hash() const {
  const auto bytes = serialize();
  return util::fnv1a_bytes(bytes);
}

std::uint64_t SessionSpec::setup_hash() const {
  util::ByteWriter w;
  put_setup(w, *this);
  return w.hash();
}

std::uint64_t SessionSpec::fault_hash() const {
  util::ByteWriter w;
  put_fault(w, fault);
  return w.hash();
}

jm76::CoupledConfig SessionSpec::coupled_config(op2::PlanCache* plan_cache) const {
  jm76::CoupledConfig cfg;
  if (rig == "rig250") {
    cfg.rig = rig::rig250_spec(nrows, rpm, contraction);
  } else if (rig == "rig250_swan_neck") {
    cfg.rig = rig::rig250_with_swan_neck(nrows, rpm, contraction);
  } else {
    throw std::invalid_argument("SessionSpec: unknown rig \"" + rig + "\"");
  }
  cfg.res = tier.empty() ? res : rig::resolution_tier(tier);
  cfg.flow = flow;
  cfg.hs_ranks = hs_ranks;
  cfg.cus_per_interface = cus_per_interface;
  cfg.search = search;
  cfg.interp = interp;
  cfg.transfer = transfer;
  cfg.cu_partition = cu_partition;
  cfg.staged_gather = staged_gather;
  cfg.op2cfg = op2cfg;
  cfg.partitioner = partitioner;
  cfg.sharded_setup = sharded_setup;
  // Served sessions stream a frame per step and may run short segments; the
  // pipelined one-step ghost lag is wrong for both (see header).
  cfg.pipelined = false;
  cfg.plan_cache = plan_cache;
  cfg.spec_hash = plan_cache != nullptr ? setup_hash() : 0;
  return cfg;
}

bool SessionSpec::operator==(const SessionSpec& other) const {
  return serialize() == other.serialize();
}

}  // namespace vcgt::serve
