#pragma once
// vcgt::serve client storm — a synthetic open-loop load driver.
//
// Open loop means arrivals are scheduled by a clock, not by completions: a
// client that wants a session at t_i submits at t_i whether or not earlier
// sessions finished, which is what exposes real queueing behaviour
// (closed-loop drivers self-throttle and hide it). Arrivals are a seeded
// Poisson process at `rate_hz`; each arrival submits the next spec from
// the round-robin list and takes the server's admission verdict as final
// (a rejected open-loop client walks away — that's the backpressure
// working). Latency is measured per accepted job from its arrival stamp
// to the job body's completion stamp, so out-of-order completions across
// worlds are timed correctly even though results are claimed in
// submission order.
#include <cstdint>
#include <vector>

#include "src/serve/server.hpp"
#include "src/serve/session_spec.hpp"

namespace vcgt::serve {

struct StormConfig {
  int jobs = 32;          ///< total arrivals
  double rate_hz = 20.0;  ///< mean arrival rate (Poisson)
  std::uint64_t seed = 1; ///< arrival-process seed
  /// Specs cycled round-robin across arrivals (must be non-empty).
  std::vector<SessionSpec> specs;
};

struct StormResult {
  int submitted = 0;
  int accepted = 0;
  int rejected = 0;
  int completed = 0;  ///< accepted jobs that finished ok
  int failed = 0;     ///< accepted jobs that finished with a structured error
  int rebuilt = 0;    ///< failures that rebuilt their world
  int hung = 0;       ///< accepted jobs that never produced a result (must be 0)
  double elapsed_seconds = 0.0;      ///< first arrival → last completion
  double sessions_per_second = 0.0;  ///< completed / elapsed
  double p50_ms = 0.0;               ///< completion latency quantiles
  double p99_ms = 0.0;
  /// Errors of failed jobs (one entry per failure, first-rank message).
  std::vector<std::string> errors;
};

/// Runs one storm against a live server. Blocking; single caller thread.
StormResult run_storm(Server& server, const StormConfig& cfg);

}  // namespace vcgt::serve
