#pragma once
// vcgt::serve::Session — the per-rank warm state a WorkerPool slot parks
// between jobs, plus the SPMD job body that the Server submits.
//
// The session facade is what makes the second user of a spec cheap: a job
// first checks its rank's slot for a parked Session with the same
// setup_hash(); on a match the rig is reused through
// CoupledRig::reinitialize() (no mesh, no partition, no plan build — the
// warm path), otherwise a fresh rig is constructed *through the plan
// cache*, so even the cold path on a new world skips whatever artifacts an
// earlier session of the same spec already deposited. The rig holds the
// Session's own Comm copy (cheap shared-state handle), not the job's
// stack-local one, so it stays valid across jobs until the pool rebuilds
// the world.
#include <atomic>
#include <cstdint>
#include <memory>

#include "src/jm76/coupled.hpp"
#include "src/minimpi/pool.hpp"
#include "src/op2/plancache.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/session_spec.hpp"

namespace vcgt::serve {

/// Warm per-rank state. Destroyed whenever the slot is dropped (spec
/// mismatch, world rebuild, pool shutdown). `comm` is declared before `rig`
/// so the rig (which references it) is destroyed first.
struct Session {
  std::uint64_t setup_hash = 0;
  minimpi::Comm comm;
  std::unique_ptr<jm76::CoupledRig> rig;
};

/// Cross-rank output of one job. Written by world rank 0 only (the pool's
/// finalize barrier orders those writes before the future resolves);
/// `done_ns` is atomic because any rank may stamp it on the error path.
struct JobOutput {
  std::vector<StepFrame> frames;
  bool warm = false;
  bool partition_cached = false;
  bool plans_cached = false;
  double setup_seconds = 0.0;
  double run_seconds = 0.0;
  /// steady_clock completion stamp [ns]; 0 until the job body finished on
  /// rank 0 (or failed on some rank). Open-loop latency measurement.
  std::atomic<std::int64_t> done_ns{0};
};

/// Builds the SPMD job closure executing `spec` once: warm-or-cold setup,
/// run with one StepFrame per physical step (row-0 monitors, emitted by
/// world rank 0 into `out`), and — only after a successful run — plan
/// export into `cache`. `cache` may be null (no caching).
minimpi::WorkerPool::Job make_session_job(SessionSpec spec, std::uint64_t job_id,
                                          op2::PlanCache* cache,
                                          std::shared_ptr<JobOutput> out);

}  // namespace vcgt::serve
