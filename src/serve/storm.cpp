#include "src/serve/storm.hpp"

#include <algorithm>
#include <chrono>
#include <random>
#include <stdexcept>
#include <thread>

#include "src/util/stats.hpp"

namespace vcgt::serve {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StormResult run_storm(Server& server, const StormConfig& cfg) {
  if (cfg.specs.empty()) {
    throw std::invalid_argument("serve::run_storm: no specs");
  }
  if (cfg.rate_hz <= 0.0) {
    throw std::invalid_argument("serve::run_storm: rate_hz must be positive");
  }
  std::mt19937_64 rng(cfg.seed);
  std::exponential_distribution<double> gap(cfg.rate_hz);

  StormResult res;
  struct Accepted {
    std::uint64_t job_id = 0;
    std::int64_t arrival_ns = 0;
  };
  std::vector<Accepted> accepted;
  accepted.reserve(static_cast<std::size_t>(cfg.jobs));

  const std::int64_t t_start = steady_ns();
  std::int64_t next_arrival = t_start;
  for (int i = 0; i < cfg.jobs; ++i) {
    // Open loop: sleep to the scheduled arrival, never to a completion.
    const std::int64_t now = steady_ns();
    if (next_arrival > now) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(next_arrival - now));
    }
    const std::int64_t arrival = steady_ns();
    const SessionSpec& spec =
        cfg.specs[static_cast<std::size_t>(i) % cfg.specs.size()];
    const Server::Ticket t = server.submit(spec);
    ++res.submitted;
    if (t.accepted) {
      ++res.accepted;
      accepted.push_back({t.job_id, arrival});
    } else {
      ++res.rejected;
    }
    next_arrival += static_cast<std::int64_t>(gap(rng) * 1e9);
  }

  // Claim results in submission order; each job's latency uses its own
  // completion stamp, so this order does not distort the quantiles.
  std::vector<double> latencies_ms;
  latencies_ms.reserve(accepted.size());
  std::int64_t last_done = t_start;
  for (const Accepted& a : accepted) {
    const Server::JobOutcome oc = server.wait(a.job_id);
    const std::int64_t done = oc.done_ns != 0 ? oc.done_ns : steady_ns();
    if (oc.done_ns == 0 && !oc.ok && oc.error.empty()) {
      // No result, no error, no completion stamp: the job hung. The pool
      // watchdog should make this impossible; count it loudly.
      ++res.hung;
      continue;
    }
    latencies_ms.push_back(static_cast<double>(done - a.arrival_ns) * 1e-6);
    last_done = std::max(last_done, done);
    if (oc.ok) {
      ++res.completed;
    } else {
      ++res.failed;
      res.errors.push_back(oc.error);
      if (oc.world_rebuilt) ++res.rebuilt;
    }
  }

  res.elapsed_seconds = static_cast<double>(last_done - t_start) * 1e-9;
  if (res.elapsed_seconds > 0.0 && res.completed > 0) {
    res.sessions_per_second = res.completed / res.elapsed_seconds;
  }
  if (!latencies_ms.empty()) {
    res.p50_ms = util::quantile(latencies_ms, 0.50);
    res.p99_ms = util::quantile(latencies_ms, 0.99);
  }
  return res;
}

}  // namespace vcgt::serve
