#include "src/serve/protocol.hpp"

#include <stdexcept>
#include <utility>

#include "src/util/bytes.hpp"

namespace vcgt::serve {

namespace {

constexpr std::size_t kHeaderBytes = 4;  // version + type, inside the length

std::vector<std::byte> finish(FrameType type, util::ByteWriter body) {
  util::ByteWriter w;
  const auto payload = body.take();
  w.put_u32(static_cast<std::uint32_t>(kHeaderBytes + payload.size()));
  w.put_u16(kProtocolVersion);
  w.put_u16(static_cast<std::uint16_t>(type));
  w.put_bytes(payload);
  return w.take();
}

util::ByteReader reader_for(const Frame& f, FrameType expect) {
  if (f.type != expect) {
    throw std::runtime_error("serve::Frame: decoded as wrong frame type");
  }
  return util::ByteReader(f.body);
}

}  // namespace

std::vector<std::byte> encode(const HelloFrame& f) {
  util::ByteWriter w;
  w.put_u16(f.protocol_version);
  w.put_string(f.server);
  return finish(FrameType::Hello, std::move(w));
}

std::vector<std::byte> encode(const SubmitFrame& f) {
  util::ByteWriter w;
  w.put_span(std::span<const std::byte>(f.spec));
  return finish(FrameType::Submit, std::move(w));
}

std::vector<std::byte> encode(const JobAcceptedFrame& f) {
  util::ByteWriter w;
  w.put_u64(f.job_id);
  w.put_u64(f.spec_hash);
  return finish(FrameType::JobAccepted, std::move(w));
}

std::vector<std::byte> encode(const JobRejectedFrame& f) {
  util::ByteWriter w;
  w.put_f64(f.retry_after);
  w.put_string(f.reason);
  return finish(FrameType::JobRejected, std::move(w));
}

std::vector<std::byte> encode(const StepFrame& f) {
  util::ByteWriter w;
  w.put_u64(f.job_id);
  w.put_i32(f.step);
  w.put_f64(f.time);
  w.put_f64(f.rms);
  w.put_f64(f.mdot_in);
  w.put_f64(f.mdot_out);
  w.put_f64(f.mean_p);
  w.put_f64(f.power);
  w.put_u64(f.halo_bytes);
  w.put_u64(f.halo_msgs);
  return finish(FrameType::Step, std::move(w));
}

std::vector<std::byte> encode(const JobDoneFrame& f) {
  util::ByteWriter w;
  w.put_u64(f.job_id);
  w.put_i32(f.steps);
  w.put_bool(f.warm);
  w.put_bool(f.plans_cached);
  w.put_f64(f.setup_seconds);
  w.put_f64(f.run_seconds);
  return finish(FrameType::JobDone, std::move(w));
}

std::vector<std::byte> encode(const JobErrorFrame& f) {
  util::ByteWriter w;
  w.put_u64(f.job_id);
  w.put_string(f.error);
  w.put_u32(static_cast<std::uint32_t>(f.rank_errors.size()));
  for (const auto& e : f.rank_errors) w.put_string(e);
  w.put_bool(f.world_rebuilt);
  return finish(FrameType::JobError, std::move(w));
}

HelloFrame Frame::as_hello() const {
  auto r = reader_for(*this, FrameType::Hello);
  HelloFrame f;
  f.protocol_version = r.get_u16();
  f.server = r.get_string();
  return f;
}

SubmitFrame Frame::as_submit() const {
  auto r = reader_for(*this, FrameType::Submit);
  SubmitFrame f;
  f.spec = r.get_vector<std::byte>();
  return f;
}

JobAcceptedFrame Frame::as_job_accepted() const {
  auto r = reader_for(*this, FrameType::JobAccepted);
  JobAcceptedFrame f;
  f.job_id = r.get_u64();
  f.spec_hash = r.get_u64();
  return f;
}

JobRejectedFrame Frame::as_job_rejected() const {
  auto r = reader_for(*this, FrameType::JobRejected);
  JobRejectedFrame f;
  f.retry_after = r.get_f64();
  f.reason = r.get_string();
  return f;
}

StepFrame Frame::as_step() const {
  auto r = reader_for(*this, FrameType::Step);
  StepFrame f;
  f.job_id = r.get_u64();
  f.step = r.get_i32();
  f.time = r.get_f64();
  f.rms = r.get_f64();
  f.mdot_in = r.get_f64();
  f.mdot_out = r.get_f64();
  f.mean_p = r.get_f64();
  f.power = r.get_f64();
  f.halo_bytes = r.get_u64();
  f.halo_msgs = r.get_u64();
  return f;
}

JobDoneFrame Frame::as_job_done() const {
  auto r = reader_for(*this, FrameType::JobDone);
  JobDoneFrame f;
  f.job_id = r.get_u64();
  f.steps = r.get_i32();
  f.warm = r.get_bool();
  f.plans_cached = r.get_bool();
  f.setup_seconds = r.get_f64();
  f.run_seconds = r.get_f64();
  return f;
}

JobErrorFrame Frame::as_job_error() const {
  auto r = reader_for(*this, FrameType::JobError);
  JobErrorFrame f;
  f.job_id = r.get_u64();
  f.error = r.get_string();
  const std::uint32_t n = r.get_u32();
  f.rank_errors.resize(n);
  for (auto& e : f.rank_errors) e = r.get_string();
  f.world_rebuilt = r.get_bool();
  return f;
}

void FrameSplitter::feed(std::span<const std::byte> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  // Split off every complete frame; keep the trailing partial (if any).
  std::size_t pos = 0;
  while (buffer_.size() - pos >= 4) {
    util::ByteReader len_r(std::span<const std::byte>(buffer_).subspan(pos, 4));
    const std::uint32_t length = len_r.get_u32();
    if (length < kHeaderBytes || length > kMaxFrameBytes) {
      throw std::runtime_error("serve::FrameSplitter: invalid frame length");
    }
    if (buffer_.size() - pos - 4 < length) break;  // incomplete: wait for more
    util::ByteReader hdr(
        std::span<const std::byte>(buffer_).subspan(pos + 4, kHeaderBytes));
    const std::uint16_t version = hdr.get_u16();
    const std::uint16_t type = hdr.get_u16();
    if (version != kProtocolVersion) {
      throw std::runtime_error("serve::FrameSplitter: protocol version mismatch");
    }
    Frame f;
    f.type = static_cast<FrameType>(type);
    const auto body_begin = buffer_.begin() +
        static_cast<std::ptrdiff_t>(pos + 4 + kHeaderBytes);
    const auto body_end = buffer_.begin() + static_cast<std::ptrdiff_t>(pos + 4 + length);
    f.body.assign(body_begin, body_end);
    ready_.push_back(std::move(f));
    pos += 4 + length;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
}

std::optional<Frame> FrameSplitter::pop() {
  if (ready_.empty()) return std::nullopt;
  Frame f = std::move(ready_.front());
  ready_.pop_front();
  return f;
}

}  // namespace vcgt::serve
