#pragma once
// vcgt::serve::Server — the long-lived simulation-as-a-service front end
// (DESIGN.md §12).
//
// A Server owns
//  - a pool of persistent minimpi worker worlds (one WorkerPool per
//    (world_size, fault_hash) the admitted specs require, created lazily,
//    capped by a total-rank budget),
//  - one process-wide op2::PlanCache shared by every world, so a spec's
//    meshes, owner maps and loop/chain plans are computed once ever,
//  - a bounded admission queue: submit() never blocks; when the number of
//    outstanding jobs reaches queue_capacity (or a new spec's world would
//    bust the rank budget) the job is *rejected* with a retry-after hint
//    instead of queued — open-loop clients see backpressure, not latency.
//
// Results stream as protocol frames: wait_stream() renders a finished
// job's lifecycle (accepted → step* → done/error) as one length-prefixed
// byte stream; wait() returns the structured form. A job whose worker was
// killed (chaos fault, stall watchdog) completes with a structured
// JobError naming the failing ranks — never a hang — and its world is
// rebuilt before the next job starts; the plan cache is untouched because
// plans are only exported after a successful run.
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/minimpi/pool.hpp"
#include "src/op2/plancache.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/session.hpp"
#include "src/serve/session_spec.hpp"

namespace vcgt::serve {

struct ServerOptions {
  /// Outstanding jobs (running + queued, across all worlds) admitted
  /// before submit() starts rejecting.
  std::size_t queue_capacity = 8;
  /// Cap on the sum of world sizes across live worker pools; a spec whose
  /// (new) world would exceed it is rejected.
  int max_total_ranks = 64;
  /// Plan-cache resident budget.
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// Progress watchdog per worker world: a stalled job is poisoned and
  /// fails structurally after this long without progress. 0 = off (a
  /// deadlocked chaos job would then hang its world — keep it on).
  double stall_timeout = 30.0;
  /// Bounded receive for worker worlds (0 = wait forever).
  double recv_timeout = 0.0;
  int recv_retries = 0;
  /// Retry-after hint handed to rejected clients [s].
  double retry_after = 0.05;
};

class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admission decision. Rejection is immediate and carries the hint; an
  /// accepted job's result is claimed with wait()/wait_stream(job_id).
  struct Ticket {
    bool accepted = false;
    std::uint64_t job_id = 0;
    std::uint64_t spec_hash = 0;   ///< SessionSpec::hash() of the job
    double retry_after = 0.0;      ///< rejection hint [s]
    std::string reason;            ///< rejection reason
  };

  /// Structured terminal result of one job.
  struct JobOutcome {
    std::uint64_t job_id = 0;
    bool ok = false;
    std::string error;                     ///< first failing rank (empty when ok)
    std::vector<std::string> rank_errors;  ///< per world rank
    bool world_rebuilt = false;            ///< job poisoned its world
    bool warm = false;                     ///< reused a parked session
    bool partition_cached = false;
    bool plans_cached = false;
    double setup_seconds = 0.0;
    double run_seconds = 0.0;
    std::vector<StepFrame> frames;         ///< one per completed step
    /// steady_clock completion stamp [ns] (0 if the job never started).
    std::int64_t done_ns = 0;
  };

  /// Never blocks. Thread-safe.
  Ticket submit(const SessionSpec& spec);

  /// Blocks until `job_id` finishes; consumes the handle (a second wait on
  /// the same id throws). Thread-safe for distinct ids.
  JobOutcome wait(std::uint64_t job_id);

  /// wait(), rendered as the protocol byte stream:
  /// JobAccepted, Step*, then JobDone or JobError.
  std::vector<std::byte> wait_stream(std::uint64_t job_id);

  /// Encodes a rejection as its protocol frame.
  static std::vector<std::byte> rejection_stream(const Ticket& ticket);

  [[nodiscard]] op2::PlanCache& plan_cache() { return cache_; }
  [[nodiscard]] const ServerOptions& options() const { return opts_; }
  /// Jobs admitted but not yet finished.
  [[nodiscard]] std::size_t outstanding() const;
  /// Live worker worlds and the ranks they hold.
  [[nodiscard]] std::size_t worlds() const;
  [[nodiscard]] int total_ranks() const;

  /// Stops every worker pool (in-flight jobs finish, queued jobs fail).
  /// Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Handle {
    std::future<minimpi::WorkerPool::JobResult> result;
    std::shared_ptr<JobOutput> output;
    std::uint64_t spec_hash = 0;
  };

  /// Finds or creates the pool for `spec`; null (+reason) when the rank
  /// budget forbids it. Called with mutex_ held.
  minimpi::WorkerPool* pool_for_locked(const SessionSpec& spec, std::string* reason);

  ServerOptions opts_;
  op2::PlanCache cache_;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<minimpi::WorkerPool>> pools_;
  int total_ranks_ = 0;
  std::unordered_map<std::uint64_t, Handle> jobs_;
  std::uint64_t next_job_id_ = 0;
  /// Shared with every in-flight job's closure; the closure's destruction
  /// (pool finalize or shutdown) releases one admission unit.
  std::shared_ptr<std::atomic<long>> outstanding_;
  bool stopped_ = false;
};

}  // namespace vcgt::serve
