#pragma once
// One typed loader for every VCGT_* environment variable.
//
// The knobs grew up scattered: VCGT_LOG in util/log.cpp, VCGT_OP2_* in the
// op2 Context constructor, VCGT_FAULT_* in minimpi/fault.cpp and
// VCGT_RECV_TIMEOUT/RETRIES + VCGT_STALL_TIMEOUT in World::options_from_env
// — four private parsers, four error conventions, no way to dump what a run
// actually saw. env_config() parses the whole namespace in one place into
// typed optionals (unset variables stay nullopt so each consumer keeps its
// own default), collects warnings for malformed values instead of silently
// ignoring them, and can render the effective configuration for the tools'
// --print-config flag. Consumers re-parse on each call — tests setenv() at
// runtime, so caching here would freeze the first test's environment.
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vcgt::util {

struct EnvConfig {
  // --- util ---------------------------------------------------------------
  std::optional<std::string> log_level;  ///< VCGT_LOG: debug|info|warn|error|off

  // --- op2 ----------------------------------------------------------------
  std::optional<std::string> op2_layout;  ///< VCGT_OP2_LAYOUT: aos|soa|aosoa[<W>]
  std::optional<bool> op2_simt;           ///< VCGT_OP2_SIMT
  std::optional<int> op2_chain_tile;      ///< VCGT_OP2_CHAIN_TILE (> 0)
  std::optional<bool> op2_zero_copy;      ///< VCGT_OP2_ZERO_COPY

  // --- minimpi robustness ---------------------------------------------------
  std::optional<double> recv_timeout;   ///< VCGT_RECV_TIMEOUT [s]
  std::optional<int> recv_retries;      ///< VCGT_RECV_RETRIES
  std::optional<double> stall_timeout;  ///< VCGT_STALL_TIMEOUT [s]

  // --- fault injection ------------------------------------------------------
  std::optional<std::uint64_t> fault_seed;  ///< VCGT_FAULT_SEED
  std::optional<double> fault_p_delay;      ///< VCGT_FAULT_P_DELAY
  std::optional<double> fault_p_dup;        ///< VCGT_FAULT_P_DUP
  std::optional<double> fault_p_reorder;    ///< VCGT_FAULT_P_REORDER
  std::optional<double> fault_p_drop;       ///< VCGT_FAULT_P_DROP
  std::optional<std::string> fault_kill;    ///< VCGT_FAULT_KILL: "<rank>:<op>"

  /// Malformed values encountered while parsing (the variable keeps its
  /// consumer-side default; the message names the variable and the input).
  std::vector<std::string> warnings;

  /// Human-readable dump of every knob — set values with their source
  /// variable, unset ones marked "(unset)" — for the tools' --print-config.
  [[nodiscard]] std::string describe() const;
};

/// Parses the VCGT_* environment afresh (no caching; see header comment).
EnvConfig env_config();

}  // namespace vcgt::util
