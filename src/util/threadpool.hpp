#pragma once
// Persistent thread pool with a fork-join parallel_for, standing in for the
// OpenMP worksharing OP2's generated CPU code uses. One pool per op2
// Context; with nthreads == 1 everything runs inline on the caller.
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vcgt::util {

class ThreadPool {
 public:
  /// `nthreads` total participants (the caller counts as one); nthreads <= 1
  /// creates no worker threads.
  explicit ThreadPool(int nthreads) : nthreads_(nthreads < 1 ? 1 : nthreads) {
    for (int w = 1; w < nthreads_; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~ThreadPool() {
    {
      std::scoped_lock lock(mutex_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int nthreads() const { return nthreads_; }

  /// Runs chunk_fn(thread_id, begin, end) over [0, n) split into nthreads
  /// contiguous chunks; blocks until every chunk completes. thread_id is in
  /// [0, nthreads) and stable within one call (caller gets 0).
  void parallel_for(std::size_t n,
                    const std::function<void(int, std::size_t, std::size_t)>& chunk_fn) {
    if (nthreads_ == 1 || n == 0) {
      if (n > 0) chunk_fn(0, 0, n);
      return;
    }
    {
      std::scoped_lock lock(mutex_);
      job_ = &chunk_fn;
      job_n_ = n;
      pending_ = nthreads_ - 1;
      ++generation_;
    }
    cv_.notify_all();
    run_chunk(0);
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
  }

 private:
  void run_chunk(int tid) {
    const std::size_t per = (job_n_ + static_cast<std::size_t>(nthreads_) - 1) /
                            static_cast<std::size_t>(nthreads_);
    const std::size_t begin = per * static_cast<std::size_t>(tid);
    const std::size_t end = begin + per < job_n_ ? begin + per : job_n_;
    if (begin < end) (*job_)(tid, begin, end);
  }

  void worker_loop(int tid) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
      }
      run_chunk(tid);
      {
        std::scoped_lock lock(mutex_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  int nthreads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  int pending_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace vcgt::util
