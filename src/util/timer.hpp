#pragma once
// Wall-clock timing helpers used by the op2 runtime, the coupler and the
// benchmark harness. All durations are reported in seconds as double.
#include <chrono>

namespace vcgt::util {

/// Monotonic stopwatch.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() : start_(clock::now()) {}

  /// Seconds since construction or the last reset().
  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  clock::time_point start_;
};

/// Accumulates time across multiple start/stop intervals; used for the
/// per-phase breakdowns (compute vs halo-exchange vs coupler-wait).
///
/// start() while already running accumulates the open interval before
/// restarting (it used to silently discard it), and start/stop pairs nest:
/// nested ScopedTimers on the same Stopwatch count the outer interval exactly
/// once — only the outermost stop() closes the accumulation.
class Stopwatch {
 public:
  void start() {
    if (depth_ > 0) {
      // Re-entrant start: bank the open interval so no time is lost, then
      // keep timing from now (the previous behaviour dropped it).
      total_ += t_.elapsed();
    }
    t_.reset();
    ++depth_;
  }
  void stop() {
    if (depth_ == 0) return;
    if (--depth_ == 0) total_ += t_.elapsed();
  }
  [[nodiscard]] double total() const {
    // An open interval counts toward the running total (read-side only).
    return depth_ > 0 ? total_ + t_.elapsed() : total_;
  }
  [[nodiscard]] bool running() const { return depth_ > 0; }
  void clear() {
    total_ = 0.0;
    depth_ = 0;
  }

 private:
  Timer t_;
  double total_ = 0.0;
  int depth_ = 0;
};

/// RAII interval that adds its lifetime to a Stopwatch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stopwatch& sw) : sw_(sw) { sw_.start(); }
  ~ScopedTimer() { sw_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch& sw_;
};

}  // namespace vcgt::util
