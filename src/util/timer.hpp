#pragma once
// Wall-clock timing helpers used by the op2 runtime, the coupler and the
// benchmark harness. All durations are reported in seconds as double.
#include <chrono>

namespace vcgt::util {

/// Monotonic stopwatch.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() : start_(clock::now()) {}

  /// Seconds since construction or the last reset().
  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  clock::time_point start_;
};

/// Accumulates time across multiple start/stop intervals; used for the
/// per-phase breakdowns (compute vs halo-exchange vs coupler-wait).
class Stopwatch {
 public:
  void start() { t_.reset(); running_ = true; }
  void stop() {
    if (running_) total_ += t_.elapsed();
    running_ = false;
  }
  [[nodiscard]] double total() const { return total_; }
  void clear() { total_ = 0.0; running_ = false; }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

/// RAII interval that adds its lifetime to a Stopwatch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stopwatch& sw) : sw_(sw) { sw_.start(); }
  ~ScopedTimer() { sw_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch& sw_;
};

}  // namespace vcgt::util
