#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vcgt::util {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> samples, double q) {
  if (std::isnan(q)) throw std::invalid_argument("quantile: q is NaN");
  // NaN samples have no order: sorting them violates strict weak ordering
  // (UB) and would poison the interpolation. Drop them before ranking.
  samples.erase(std::remove_if(samples.begin(), samples.end(),
                               [](double x) { return std::isnan(x); }),
                samples.end());
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double rel_diff(double a, double b, double eps) {
  const double denom = std::max({std::fabs(a), std::fabs(b), eps});
  return std::fabs(a - b) / denom;
}

}  // namespace vcgt::util
