#pragma once
// vcgt::trace — low-overhead structured profiling for the whole stack.
//
// The paper's scaling analysis (Figs 7-9, Tables III/IV) attributes every
// second of a timestep to compute vs. halo exchange vs. coupler wait. This
// layer provides that attribution for the reproduction: per-thread event
// recorders (begin/end spans, counters, instants on steady-clock timestamps,
// bounded ring buffers), a writer that emits Chrome-trace/Perfetto JSON with
// one track per rank, and a per-run summary table (per-span-name count,
// total/mean seconds, byte and message sums).
//
// Tracing is OFF by default. Every instrumentation site first checks
// `trace::enabled()` — a single relaxed atomic load — so the disabled-path
// overhead is one predictable branch per site (< 2% on the coupled rig; see
// DESIGN.md §7 for the budget). Recording is per-thread: each thread owns a
// ring buffer registered in a global registry, appends under the buffer's own
// mutex (uncontended in steady state — the writer only locks it at dump
// time), and tags events with its *track*, which minimpi::World::run sets to
// the world rank so one Perfetto track per rank falls out naturally.
//
// Conventions used by the instrumentation in this repository:
//   par_loop spans   — the loop name as declared ("row0:rk_update"), args
//                      set_size / colors / nthreads;
//   halo exchange    — "halo:pack_send" (args bytes, msgs, grouped, partial)
//                      and "halo:wait" (blocked in receive/scatter);
//   minimpi waits    — "mpi:recv_wait" / "mpi:barrier_wait", fed from the
//                      mailbox wait metering (only emitted when time was
//                      actually spent blocked);
//   coupler          — "hs:step", "coupler:send_states", "coupler:recv_ghosts",
//                      "cu:recv_donors", "cu:search_interp";
//   hydra            — "hydra:inner_iter", "hydra:rk_stage".
// The summary classifier in vcgt::perf keys on these prefixes.
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace vcgt::trace {

/// One recorded event. `phase` follows the Chrome trace-event phases:
/// 'X' complete span, 'C' counter, 'i' instant.
struct Event {
  std::string name;
  int track = 0;            ///< rank / thread lane (Chrome "tid")
  std::int64_t ts_ns = 0;   ///< steady-clock begin timestamp
  std::int64_t dur_ns = 0;  ///< span duration ('X' only)
  char phase = 'X';
  int depth = 0;            ///< span nesting depth at begin (for tests)
  /// Numeric arguments (keys must be string literals / static storage).
  struct Arg {
    const char* key;
    double value;
  };
  static constexpr int kMaxArgs = 4;
  Arg args[kMaxArgs] = {};
  int nargs = 0;
};

/// Is tracing globally enabled? One relaxed atomic load — the only cost the
/// instrumentation pays when tracing is off.
[[nodiscard]] bool enabled();

/// Enables recording. Buffers from a previous session are cleared so a run's
/// trace starts empty. `per_thread_capacity` bounds each thread's ring
/// buffer (clamped to at least 16); when it overflows the oldest events are
/// dropped (and counted).
void enable(std::size_t per_thread_capacity = 1 << 16);

/// Stops recording. Already-recorded events stay readable (summary/write)
/// until the next enable() or clear().
void disable();

/// Drops every recorded event on every thread's buffer.
void clear();

/// Sets the calling thread's track id (world rank). minimpi::World::run calls
/// this in each rank thread; the main thread defaults to track 0.
void set_track(int track);
[[nodiscard]] int current_track();

/// Current span nesting depth of the calling thread (tests).
[[nodiscard]] int current_depth();

/// Total events dropped to ring-buffer overflow since enable().
[[nodiscard]] std::uint64_t dropped();

/// RAII span: records one complete ('X') event covering its lifetime.
/// Constructing with tracing disabled is a no-op (no timestamp taken); a span
/// begun while enabled records even if tracing is disabled before it ends, so
/// begin/end stay balanced. Exception-safe by construction (destructor runs
/// on unwind).
class Span {
 public:
  explicit Span(const char* name);
  explicit Span(std::string name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric argument (up to Event::kMaxArgs; extras ignored).
  /// `key` must outlive the trace session (use string literals).
  void arg(const char* key, double value);

  [[nodiscard]] bool active() const { return active_; }

 private:
  std::string name_;
  std::int64_t begin_ns_ = 0;
  Event::Arg args_[Event::kMaxArgs] = {};
  int nargs_ = 0;
  bool active_ = false;
};

/// Records a complete span with explicit begin/duration — used where the
/// blocked interval is already measured (mailbox wait metering) and a span
/// object would bracket more than the wait itself.
void complete(const char* name, std::int64_t begin_ns, std::int64_t dur_ns,
              std::initializer_list<Event::Arg> args = {});

/// Counter sample ('C') and instant marker ('i').
void counter(const char* name, double value);
void instant(const char* name);

/// Steady-clock now in nanoseconds (the trace timebase).
[[nodiscard]] std::int64_t now_ns();

/// Snapshot of every thread's buffer, oldest-first per thread, ordered by
/// (track, ts). Safe to call while other threads record.
[[nodiscard]] std::vector<Event> snapshot();

/// Per-name aggregate over all recorded span events.
struct SummaryRow {
  std::string name;
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double mean_seconds = 0.0;
  std::uint64_t bytes = 0;  ///< sum of "bytes" args
  std::uint64_t msgs = 0;   ///< sum of "msgs" args
};

/// Aggregates every recorded 'X' event by name, sorted by total seconds
/// descending. "bytes"/"msgs" args accumulate into the byte/message columns.
[[nodiscard]] std::vector<SummaryRow> summary();

/// Prints the summary as an aligned table (count, total s, mean ms, MB,
/// msgs per name).
void write_summary(std::ostream& os);

/// Emits the recorded events as Chrome-trace JSON ({"traceEvents": [...]}):
/// one 'X'/'C'/'i' entry per event plus thread_name metadata naming each
/// track "rank N". Load in chrome://tracing or https://ui.perfetto.dev.
void write_chrome_trace(std::ostream& os);
/// File variant; returns false (and logs) when the file cannot be opened.
bool write_chrome_trace(const std::string& path);

}  // namespace vcgt::trace
