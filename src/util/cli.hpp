#pragma once
// Tiny command-line parser for the examples and bench binaries.
// Supports --key=value and boolean --flag forms; everything else is
// positional (the space-separated --key value form is ambiguous and
// deliberately unsupported).
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vcgt::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non --key) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace vcgt::util
