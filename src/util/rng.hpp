#pragma once
// Deterministic, splittable RNG (SplitMix64 / xoshiro-style). Benchmarks and
// tests must be reproducible run-to-run, so std::random_device is never used
// in this codebase; seeds are always explicit.
#include <cstdint>

namespace vcgt::util {

/// SplitMix64: tiny, fast, good-enough generator for mesh perturbations and
/// synthetic workloads. Deterministic for a given seed across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n).
  std::uint64_t bounded(std::uint64_t n) { return n ? next_u64() % n : 0; }

  /// Derives an independent stream (e.g. one per rank).
  Rng split(std::uint64_t stream) {
    Rng child(state_ ^ (0xA5A5A5A5DEADBEEFull + stream * 0x9E3779B97F4A7C15ull));
    child.next_u64();
    return child;
  }

 private:
  std::uint64_t state_;
};

}  // namespace vcgt::util
