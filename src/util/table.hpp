#pragma once
// Tabular report writer. Every bench binary prints its paper-table
// reproduction through this class so the output format is uniform and can be
// diffed against EXPERIMENTS.md. Supports aligned-text, markdown and CSV.
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace vcgt::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  void print_text(std::ostream& os, const std::string& title = "") const;
  void print_markdown(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const { return headers_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes a CSV file next to stdout output so plots can be regenerated.
/// Returns false (and logs) when the file cannot be opened.
bool write_csv(const Table& table, const std::string& path);

}  // namespace vcgt::util
