#include "src/util/env_config.hpp"

#include <cstdlib>

#include "src/util/fmt.hpp"

namespace vcgt::util {

namespace {

void parse_string(EnvConfig& cfg, const char* name, std::optional<std::string>* out) {
  if (const char* v = std::getenv(name)) {
    (void)cfg;
    *out = std::string(v);
  }
}

void parse_double(EnvConfig& cfg, const char* name, std::optional<double>* out) {
  const char* v = std::getenv(name);
  if (!v) return;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v || (end && *end != '\0')) {
    cfg.warnings.push_back(fmt("{}: not a number: '{}'", name, v));
    return;
  }
  *out = d;
}

void parse_int(EnvConfig& cfg, const char* name, std::optional<int>* out) {
  const char* v = std::getenv(name);
  if (!v) return;
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || (end && *end != '\0')) {
    cfg.warnings.push_back(fmt("{}: not an integer: '{}'", name, v));
    return;
  }
  *out = static_cast<int>(n);
}

void parse_u64(EnvConfig& cfg, const char* name, std::optional<std::uint64_t>* out) {
  const char* v = std::getenv(name);
  if (!v) return;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v || (end && *end != '\0')) {
    cfg.warnings.push_back(fmt("{}: not an unsigned integer: '{}'", name, v));
    return;
  }
  *out = static_cast<std::uint64_t>(n);
}

void parse_bool(EnvConfig& cfg, const char* name, std::optional<bool>* out) {
  const char* v = std::getenv(name);
  if (!v) return;
  (void)cfg;
  // Historical VCGT_OP2_SIMT convention: empty or "0" disables, anything
  // else enables.
  *out = v[0] != '\0' && v[0] != '0';
}

std::string pad(const char* name) {
  std::string s = "  ";
  s += name;
  while (s.size() < 25) s += ' ';
  return s;
}

template <class T>
std::string show(const char* name, const std::optional<T>& v) {
  if (!v) return pad(name) + "(unset)\n";
  if constexpr (std::is_same_v<T, bool>) {
    return pad(name) + (*v ? "1" : "0") + "\n";
  } else {
    return pad(name) + fmt("{}", *v) + "\n";
  }
}

}  // namespace

EnvConfig env_config() {
  EnvConfig cfg;
  parse_string(cfg, "VCGT_LOG", &cfg.log_level);
  parse_string(cfg, "VCGT_OP2_LAYOUT", &cfg.op2_layout);
  parse_bool(cfg, "VCGT_OP2_SIMT", &cfg.op2_simt);
  parse_int(cfg, "VCGT_OP2_CHAIN_TILE", &cfg.op2_chain_tile);
  parse_bool(cfg, "VCGT_OP2_ZERO_COPY", &cfg.op2_zero_copy);
  parse_double(cfg, "VCGT_RECV_TIMEOUT", &cfg.recv_timeout);
  parse_int(cfg, "VCGT_RECV_RETRIES", &cfg.recv_retries);
  parse_double(cfg, "VCGT_STALL_TIMEOUT", &cfg.stall_timeout);
  parse_u64(cfg, "VCGT_FAULT_SEED", &cfg.fault_seed);
  parse_double(cfg, "VCGT_FAULT_P_DELAY", &cfg.fault_p_delay);
  parse_double(cfg, "VCGT_FAULT_P_DUP", &cfg.fault_p_dup);
  parse_double(cfg, "VCGT_FAULT_P_REORDER", &cfg.fault_p_reorder);
  parse_double(cfg, "VCGT_FAULT_P_DROP", &cfg.fault_p_drop);
  parse_string(cfg, "VCGT_FAULT_KILL", &cfg.fault_kill);
  return cfg;
}

std::string EnvConfig::describe() const {
  std::string out = "VCGT_* environment configuration:\n";
  out += show("VCGT_LOG", log_level);
  out += show("VCGT_OP2_LAYOUT", op2_layout);
  out += show("VCGT_OP2_SIMT", op2_simt);
  out += show("VCGT_OP2_CHAIN_TILE", op2_chain_tile);
  out += show("VCGT_OP2_ZERO_COPY", op2_zero_copy);
  out += show("VCGT_RECV_TIMEOUT", recv_timeout);
  out += show("VCGT_RECV_RETRIES", recv_retries);
  out += show("VCGT_STALL_TIMEOUT", stall_timeout);
  out += show("VCGT_FAULT_SEED", fault_seed);
  out += show("VCGT_FAULT_P_DELAY", fault_p_delay);
  out += show("VCGT_FAULT_P_DUP", fault_p_dup);
  out += show("VCGT_FAULT_P_REORDER", fault_p_reorder);
  out += show("VCGT_FAULT_P_DROP", fault_p_drop);
  out += show("VCGT_FAULT_KILL", fault_kill);
#ifdef VCGT_SIMD_OMP
  out += pad("VCGT_SIMD") + "ON (compile-time)\n";
#else
  out += pad("VCGT_SIMD") + "OFF (compile-time)\n";
#endif
  for (const auto& w : warnings) out += "  warning: " + w + "\n";
  return out;
}

}  // namespace vcgt::util
