#pragma once
// Circumferential Fourier analysis of uniformly sampled annulus signals —
// used to quantify blade-passing unsteadiness (the structures Fig. 10 shows
// downstream of the stators, and what mixing planes average away).
#include <cmath>
#include <numbers>
#include <span>
#include <vector>

namespace vcgt::util {

/// Magnitudes of the first `nharmonics` circumferential Fourier modes of a
/// uniformly sampled periodic signal. Index 0 is the mean |a0|; index k is
/// the amplitude of the k-th harmonic (2/N normalization, so a pure
/// cos(k theta) signal of amplitude A reports A at index k).
inline std::vector<double> theta_harmonics(std::span<const double> samples,
                                           int nharmonics) {
  const auto n = samples.size();
  std::vector<double> out(static_cast<std::size_t>(nharmonics) + 1, 0.0);
  if (n == 0) return out;
  for (int k = 0; k <= nharmonics; ++k) {
    double re = 0.0, im = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double phase =
          2.0 * std::numbers::pi * k * static_cast<double>(i) / static_cast<double>(n);
      re += samples[i] * std::cos(phase);
      im -= samples[i] * std::sin(phase);
    }
    const double norm = (k == 0 ? 1.0 : 2.0) / static_cast<double>(n);
    out[static_cast<std::size_t>(k)] = norm * std::hypot(re, im);
  }
  return out;
}

}  // namespace vcgt::util
