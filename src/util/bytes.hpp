#pragma once
// Little bounded binary writer/reader pair plus an FNV-1a byte hash.
//
// Shared by vcgt::SessionSpec serialization and the vcgt::serve wire
// protocol so a spec's canonical byte form — the thing its cache hash is
// computed over — and the framing layer use one encoding discipline:
// little-endian fixed-width integers, IEEE doubles bit-cast to u64, strings
// and spans length-prefixed with a u32. The reader bounds-checks every get
// and throws std::runtime_error on truncation, never reading past the
// buffer (frames arrive from a wire; trust nothing).
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace vcgt::util {

/// FNV-1a over a byte range, continuing from `h` (seed with fnv1a_basis).
inline constexpr std::uint64_t kFnv1aBasis = 0xcbf29ce484222325ull;

inline std::uint64_t fnv1a_bytes(std::span<const std::byte> data,
                                 std::uint64_t h = kFnv1aBasis) {
  for (const std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { append(&v, 1); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }
  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
  }
  template <class T>
  void put_span(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_u32(static_cast<std::uint32_t>(v.size()));
    append(v.data(), v.size_bytes());
  }
  void put_bytes(std::span<const std::byte> v) {
    bytes_.insert(bytes_.end(), v.begin(), v.end());
  }

  [[nodiscard]] const std::vector<std::byte>& bytes() const { return bytes_; }
  std::vector<std::byte> take() { return std::move(bytes_); }
  [[nodiscard]] std::uint64_t hash() const { return fnv1a_bytes(bytes_); }

 private:
  template <class T>
  void put_le(T v) {
    std::uint8_t buf[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    append(buf, sizeof(T));
  }
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    bytes_.insert(bytes_.end(), b, b + n);
  }

  std::vector<std::byte> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t get_u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t get_u16() { return get_le<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_le<std::uint32_t>()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_le<std::uint64_t>()); }
  bool get_bool() { return get_u8() != 0; }
  double get_f64() {
    const std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string get_string() {
    const std::uint32_t n = get_u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  template <class T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint32_t n = get_u32();
    need(static_cast<std::size_t>(n) * sizeof(T));
    std::vector<T> out(n);
    std::memcpy(out.data(), data_.data() + pos_, out.size() * sizeof(T));
    pos_ += out.size() * sizeof(T);
    return out;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  template <class T>
  T get_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw std::runtime_error("ByteReader: truncated input");
    }
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace vcgt::util
