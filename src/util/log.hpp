#pragma once
// Minimal leveled logger. Thread-safe: each message is formatted into a
// single string before being written, so lines from concurrent rank-threads
// never interleave mid-line.
#include <string>
#include <string_view>

#include "src/util/fmt.hpp"

namespace vcgt::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped. Defaults to Info and can
/// be overridden with the VCGT_LOG environment variable (debug/info/warn/
/// error/off) read on first use.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, std::string_view msg);
}

template <class... Args>
void log(LogLevel level, std::string_view f, const Args&... args) {
  if (level < log_level()) return;
  detail::log_line(level, fmt(f, args...));
}

template <class... Args>
void debug(std::string_view f, const Args&... args) {
  log(LogLevel::Debug, f, args...);
}
template <class... Args>
void info(std::string_view f, const Args&... args) {
  log(LogLevel::Info, f, args...);
}
template <class... Args>
void warn(std::string_view f, const Args&... args) {
  log(LogLevel::Warn, f, args...);
}
template <class... Args>
void error(std::string_view f, const Args&... args) {
  log(LogLevel::Error, f, args...);
}

}  // namespace vcgt::util
