#include "src/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "src/util/log.hpp"

namespace vcgt::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: empty header row");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument(
        vcgt::util::fmt("Table: row has {} cells, expected {}", cells.size(), headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print_text(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title.empty()) os << title << '\n';
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_markdown(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (const auto& cell : row) os << ' ' << cell << " |";
    os << '\n';
  };
  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      // Quote cells containing separators.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

bool write_csv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    warn("write_csv: cannot open '{}'", path);
    return false;
  }
  table.print_csv(out);
  return true;
}

}  // namespace vcgt::util
