#include "src/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "src/util/env_config.hpp"

namespace vcgt::util {

namespace {

LogLevel level_from_env() {
  const auto env = env_config().log_level;
  if (!env) return LogLevel::Info;
  std::string_view v{*env};
  if (v == "debug") return LogLevel::Debug;
  if (v == "info") return LogLevel::Info;
  if (v == "warn") return LogLevel::Warn;
  if (v == "error") return LogLevel::Error;
  if (v == "off") return LogLevel::Off;
  return LogLevel::Info;
}

std::atomic<LogLevel> g_level{level_from_env()};
std::mutex g_io_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DBG";
    case LogLevel::Info: return "INF";
    case LogLevel::Warn: return "WRN";
    case LogLevel::Error: return "ERR";
    default: return "???";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_line(LogLevel level, std::string_view msg) {
  std::scoped_lock lock(g_io_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_tag(level), static_cast<int>(msg.size()),
               msg.data());
}
}  // namespace detail

}  // namespace vcgt::util
