#include "src/util/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <tuple>
#include <utility>

#include "src/util/log.hpp"
#include "src/util/table.hpp"

namespace vcgt::trace {

namespace {

/// Per-thread bounded ring buffer. The owning thread appends; the writer
/// snapshots. Both take `mutex` — uncontended except at dump time.
struct Recorder {
  std::mutex mutex;
  std::vector<Event> ring;      ///< capacity-bounded storage
  std::size_t capacity = 0;
  std::size_t head = 0;         ///< next write position
  std::size_t count = 0;        ///< valid events (<= capacity)
  std::uint64_t dropped = 0;
  int track = 0;
  int depth = 0;  ///< open spans on this thread (owner-thread only)

  void push(Event ev) {
    std::scoped_lock lock(mutex);
    if (capacity == 0) return;
    if (ring.size() < capacity) {
      ring.push_back(std::move(ev));
      ++count;
    } else {
      ring[head] = std::move(ev);
      if (count < capacity) {
        ++count;
      } else {
        ++dropped;
      }
    }
    head = (head + 1) % capacity;
  }

  void reset(std::size_t cap) {
    std::scoped_lock lock(mutex);
    ring.clear();
    ring.reserve(std::min<std::size_t>(cap, 1024));
    capacity = cap;
    head = count = 0;
    dropped = 0;
  }

  /// Oldest-first copy of the ring contents.
  std::vector<Event> drain_copy() {
    std::scoped_lock lock(mutex);
    std::vector<Event> out;
    out.reserve(count);
    if (ring.size() < capacity) {
      out = ring;  // not yet wrapped: insertion order == age order
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        out.push_back(ring[(head + i) % capacity]);
      }
    }
    return out;
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Recorder>> recorders;
  std::size_t capacity = 1 << 16;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::atomic<bool> g_enabled{false};

thread_local std::shared_ptr<Recorder> t_recorder;
thread_local int t_track = 0;

Recorder& recorder() {
  if (!t_recorder) {
    auto rec = std::make_shared<Recorder>();
    rec->track = t_track;
    auto& reg = registry();
    std::scoped_lock lock(reg.mutex);
    rec->reset(reg.capacity);
    reg.recorders.push_back(rec);
    t_recorder = std::move(rec);
  }
  return *t_recorder;
}

void fill_args(Event& ev, const Event::Arg* args, int nargs) {
  ev.nargs = std::min(nargs, Event::kMaxArgs);
  for (int i = 0; i < ev.nargs; ++i) ev.args[i] = args[i];
}

/// JSON string escaping for event names (the only free-form strings we emit).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::int64_t now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

void enable(std::size_t per_thread_capacity) {
  auto& reg = registry();
  {
    std::scoped_lock lock(reg.mutex);
    reg.capacity = std::max<std::size_t>(per_thread_capacity, 16);
    for (auto& rec : reg.recorders) rec->reset(reg.capacity);
  }
  g_enabled.store(true, std::memory_order_release);
}

void disable() { g_enabled.store(false, std::memory_order_release); }

void clear() {
  auto& reg = registry();
  std::scoped_lock lock(reg.mutex);
  for (auto& rec : reg.recorders) rec->reset(reg.capacity);
}

void set_track(int track) {
  t_track = track;
  if (t_recorder) {
    std::scoped_lock lock(t_recorder->mutex);
    t_recorder->track = track;
  }
}

int current_track() { return t_track; }

int current_depth() { return t_recorder ? t_recorder->depth : 0; }

std::uint64_t dropped() {
  auto& reg = registry();
  std::scoped_lock lock(reg.mutex);
  std::uint64_t total = 0;
  for (auto& rec : reg.recorders) {
    std::scoped_lock rl(rec->mutex);
    total += rec->dropped;
  }
  return total;
}

Span::Span(const char* name) : Span(std::string(name)) {}

Span::Span(std::string name) {
  if (!enabled()) return;
  name_ = std::move(name);
  begin_ns_ = now_ns();
  active_ = true;
  ++recorder().depth;
}

void Span::arg(const char* key, double value) {
  if (!active_ || nargs_ >= Event::kMaxArgs) return;
  args_[nargs_++] = {key, value};
}

Span::~Span() {
  if (!active_) return;
  Recorder& rec = recorder();
  --rec.depth;
  Event ev;
  ev.name = std::move(name_);
  ev.track = rec.track;
  ev.ts_ns = begin_ns_;
  ev.dur_ns = now_ns() - begin_ns_;
  ev.phase = 'X';
  ev.depth = rec.depth;
  fill_args(ev, args_, nargs_);
  rec.push(std::move(ev));
}

void complete(const char* name, std::int64_t begin_ns, std::int64_t dur_ns,
              std::initializer_list<Event::Arg> args) {
  if (!enabled()) return;
  Recorder& rec = recorder();
  Event ev;
  ev.name = name;
  ev.track = rec.track;
  ev.ts_ns = begin_ns;
  ev.dur_ns = dur_ns;
  ev.phase = 'X';
  ev.depth = rec.depth;
  fill_args(ev, args.begin(), static_cast<int>(args.size()));
  rec.push(std::move(ev));
}

void counter(const char* name, double value) {
  if (!enabled()) return;
  Recorder& rec = recorder();
  Event ev;
  ev.name = name;
  ev.track = rec.track;
  ev.ts_ns = now_ns();
  ev.phase = 'C';
  ev.args[0] = {"value", value};
  ev.nargs = 1;
  rec.push(std::move(ev));
}

void instant(const char* name) {
  if (!enabled()) return;
  Recorder& rec = recorder();
  Event ev;
  ev.name = name;
  ev.track = rec.track;
  ev.ts_ns = now_ns();
  ev.phase = 'i';
  rec.push(std::move(ev));
}

std::vector<Event> snapshot() {
  std::vector<std::shared_ptr<Recorder>> recs;
  {
    auto& reg = registry();
    std::scoped_lock lock(reg.mutex);
    recs = reg.recorders;
  }
  std::vector<Event> out;
  for (auto& rec : recs) {
    auto part = rec->drain_copy();
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    return std::tie(a.track, a.ts_ns) < std::tie(b.track, b.ts_ns);
  });
  return out;
}

std::vector<SummaryRow> summary() {
  std::map<std::string, SummaryRow> agg;
  for (const Event& ev : snapshot()) {
    if (ev.phase != 'X') continue;
    SummaryRow& row = agg[ev.name];
    row.name = ev.name;
    ++row.count;
    row.total_seconds += static_cast<double>(ev.dur_ns) * 1e-9;
    for (int i = 0; i < ev.nargs; ++i) {
      if (std::string_view(ev.args[i].key) == "bytes") {
        row.bytes += static_cast<std::uint64_t>(ev.args[i].value);
      } else if (std::string_view(ev.args[i].key) == "msgs") {
        row.msgs += static_cast<std::uint64_t>(ev.args[i].value);
      }
    }
  }
  std::vector<SummaryRow> rows;
  rows.reserve(agg.size());
  for (auto& [name, row] : agg) {
    row.mean_seconds = row.count ? row.total_seconds / static_cast<double>(row.count) : 0.0;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const SummaryRow& a, const SummaryRow& b) {
    return a.total_seconds > b.total_seconds;
  });
  return rows;
}

void write_summary(std::ostream& os) {
  util::Table t({"span", "count", "total s", "mean ms", "MB", "msgs"});
  for (const auto& row : summary()) {
    t.add_row({row.name, std::to_string(row.count), util::Table::num(row.total_seconds, 4),
               util::Table::num(row.mean_seconds * 1e3, 4),
               util::Table::num(static_cast<double>(row.bytes) / 1e6, 3),
               std::to_string(row.msgs)});
  }
  t.print_text(os, "trace summary");
  if (const auto d = dropped()) {
    os << "(ring overflow: " << d << " events dropped)\n";
  }
}

void write_chrome_trace(std::ostream& os) {
  const auto events = snapshot();
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  // Track metadata: one named lane per rank.
  std::vector<int> tracks;
  for (const Event& ev : events) {
    if (std::find(tracks.begin(), tracks.end(), ev.track) == tracks.end()) {
      tracks.push_back(ev.track);
    }
  }
  std::sort(tracks.begin(), tracks.end());
  os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"vcgt\"}}";
  first = false;
  for (const int t : tracks) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << t
       << ",\"args\":{\"name\":\"rank " << t << "\"}}";
  }
  char buf[64];
  for (const Event& ev : events) {
    sep();
    std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ev.ts_ns) * 1e-3);
    os << "{\"name\":\"" << json_escape(ev.name) << "\",\"ph\":\"" << ev.phase
       << "\",\"pid\":0,\"tid\":" << ev.track << ",\"ts\":" << buf;
    if (ev.phase == 'X') {
      std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ev.dur_ns) * 1e-3);
      os << ",\"dur\":" << buf;
    }
    if (ev.phase == 'i') os << ",\"s\":\"t\"";
    if (ev.nargs > 0) {
      os << ",\"args\":{";
      for (int i = 0; i < ev.nargs; ++i) {
        if (i) os << ",";
        std::snprintf(buf, sizeof buf, "%.17g", ev.args[i].value);
        os << "\"" << json_escape(ev.args[i].key) << "\":" << buf;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    util::error("trace: cannot open '{}' for writing", path);
    return false;
  }
  write_chrome_trace(f);
  return static_cast<bool>(f);
}

}  // namespace vcgt::trace
