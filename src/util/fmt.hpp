#pragma once
// Minimal "{}"-placeholder formatter (libstdc++ 12 ships no <format>).
// Supports positional "{}" only; unmatched placeholders are left verbatim.
#include <sstream>
#include <string>
#include <string_view>

namespace vcgt::util {

namespace detail {

template <class T>
void fmt_one(std::string& out, const T& v) {
  if constexpr (std::is_same_v<T, std::string> || std::is_same_v<T, std::string_view>) {
    out.append(v);
  } else if constexpr (std::is_convertible_v<T, const char*>) {
    out.append(static_cast<const char*>(v));
  } else {
    std::ostringstream ss;
    ss << v;
    out.append(ss.str());
  }
}

inline void fmt_impl(std::string& out, std::string_view f) { out.append(f); }

template <class T, class... Rest>
void fmt_impl(std::string& out, std::string_view f, const T& first, const Rest&... rest) {
  const auto pos = f.find("{}");
  if (pos == std::string_view::npos) {
    out.append(f);
    return;
  }
  out.append(f.substr(0, pos));
  fmt_one(out, first);
  fmt_impl(out, f.substr(pos + 2), rest...);
}

}  // namespace detail

/// fmt("x={} y={}", 1, 2.5) -> "x=1 y=2.5"
template <class... Args>
[[nodiscard]] std::string fmt(std::string_view f, const Args&... args) {
  std::string out;
  out.reserve(f.size() + sizeof...(args) * 8);
  detail::fmt_impl(out, f, args...);
  return out;
}

}  // namespace vcgt::util
