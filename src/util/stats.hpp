#pragma once
// Small statistics helpers for benchmark reporting: running accumulator
// (min/max/mean/stddev) and quantiles over stored samples.
#include <cstddef>
#include <vector>

namespace vcgt::util {

/// Streaming accumulator (Welford's algorithm for variance).
class Accumulator {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Quantile of a sample vector (linear interpolation). q is clamped to
/// [0,1]; a NaN q throws std::invalid_argument. NaN samples are ignored;
/// when no samples remain (empty input or all-NaN) the result is 0.0.
double quantile(std::vector<double> samples, double q);

/// Relative difference |a-b| / max(|a|,|b|,eps).
double rel_diff(double a, double b, double eps = 1e-300);

}  // namespace vcgt::util
