#include "src/util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace vcgt::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      options_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& key) const { return options_.count(key) != 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

long Cli::get_int(const std::string& key, long fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return std::strtol(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace vcgt::util
