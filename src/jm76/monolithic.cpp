#include "src/jm76/monolithic.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "src/rig/annulus.hpp"
#include "src/util/timer.hpp"

namespace vcgt::jm76 {

using hydra::RowSolver;
using op2::gindex_t;
using op2::index_t;
using rig::BoundaryGroup;

namespace {
constexpr int kPayload = RowSolver::kPayload;
}

MonolithicRig::MonolithicRig(minimpi::Comm comm, const MonolithicConfig& cfg) : cfg_(cfg) {
  ctx_ = std::make_unique<op2::Context>(std::move(comm), cfg.op2cfg);

  std::vector<const op2::Dat<double>*> primaries;
  std::vector<rig::AnnulusMesh> meshes;
  for (int r = 0; r < cfg_.rig.nrows(); ++r) {
    const auto& row = cfg_.rig.rows[static_cast<std::size_t>(r)];
    meshes.push_back(rig::generate_row_mesh(row, cfg_.res));
    solvers_.push_back(std::make_unique<RowSolver>(*ctx_, meshes.back(), row,
                                                   cfg_.rig.omega(), cfg_.flow));
    if (r > 0) solvers_.back()->set_coupled(BoundaryGroup::Inlet, true);
    if (r < cfg_.rig.nrows() - 1) solvers_.back()->set_coupled(BoundaryGroup::Outlet, true);
    primaries.push_back(&solvers_.back()->cell_center());
  }
  ctx_->partition(cfg_.partitioner, primaries);
  for (auto& s : solvers_) s->initialize();

  for (int i = 0; i + 1 < cfg_.rig.nrows(); ++i) {
    const auto& row_u = cfg_.rig.rows[static_cast<std::size_t>(i)];
    const auto& row_d = cfg_.rig.rows[static_cast<std::size_t>(i) + 1];
    // dir 0: upstream outlet feeds downstream inlet ghosts; dir 1 reversed.
    Direction d0;
    d0.iface = i;
    d0.donor_row = i;
    d0.target_row = i + 1;
    d0.donor_group = BoundaryGroup::Outlet;
    d0.target_group = BoundaryGroup::Inlet;
    d0.donor_side = rig::extract_interface(meshes[static_cast<std::size_t>(i)], row_u,
                                           BoundaryGroup::Outlet);
    d0.target_side = rig::extract_interface(meshes[static_cast<std::size_t>(i) + 1], row_d,
                                            BoundaryGroup::Inlet);
    d0.interp = std::make_unique<Interpolator>(d0.donor_side, cfg_.search, cfg_.interp);
    if (cfg_.transfer == TransferKind::MixingPlane) {
      d0.mixing = std::make_unique<MixingPlane>(d0.donor_side);
    }
    dirs_.push_back(std::move(d0));

    Direction d1;
    d1.iface = i;
    d1.donor_row = i + 1;
    d1.target_row = i;
    d1.donor_group = BoundaryGroup::Inlet;
    d1.target_group = BoundaryGroup::Outlet;
    d1.donor_side = rig::extract_interface(meshes[static_cast<std::size_t>(i) + 1], row_d,
                                           BoundaryGroup::Inlet);
    d1.target_side = rig::extract_interface(meshes[static_cast<std::size_t>(i)], row_u,
                                            BoundaryGroup::Outlet);
    d1.interp = std::make_unique<Interpolator>(d1.donor_side, cfg_.search, cfg_.interp);
    if (cfg_.transfer == TransferKind::MixingPlane) {
      d1.mixing = std::make_unique<MixingPlane>(d1.donor_side);
    }
    dirs_.push_back(std::move(d1));
  }
}

MonolithicRig::~MonolithicRig() = default;

void MonolithicRig::transfer_interfaces(int step) {
  (void)step;
  util::Timer iface_timer;
  const double omega = cfg_.rig.omega();
  // The solvers' physical clock survives repeated run() calls and
  // checkpoint restarts; the interface rotation must follow it.
  const double time = solvers_.front()->physical_time();
  double search_elapsed = 0.0;

  std::vector<gindex_t> gids;
  std::vector<double> payload;
  for (auto& dir : dirs_) {
    RowSolver& donor_solver = *solvers_[static_cast<std::size_t>(dir.donor_row)];
    RowSolver& target_solver = *solvers_[static_cast<std::size_t>(dir.target_row)];

    // Globally assemble the donor side: every rank contributes its owned
    // interface faces, every rank receives the full surface. This is the
    // monolithic "trapped sliding plane" cost the paper describes.
    donor_solver.gather_owned_face_states(dir.donor_group, &gids, &payload);
    std::vector<gindex_t> all_gids;
    std::vector<double> all_payload;
    if (ctx_->distributed()) {
      all_gids = ctx_->comm().allgatherv(std::span<const gindex_t>(gids));
      all_payload = ctx_->comm().allgatherv(std::span<const double>(payload));
    } else {
      all_gids = gids;
      all_payload = payload;
    }
    std::vector<double> donor_values(
        static_cast<std::size_t>(dir.donor_side.size()) * kPayload, 0.0);
    for (std::size_t i = 0; i < all_gids.size(); ++i) {
      std::memcpy(donor_values.data() + static_cast<std::size_t>(all_gids[i]) * kPayload,
                  all_payload.data() + i * static_cast<std::size_t>(kPayload),
                  sizeof(double) * kPayload);
    }

    // Locate donors for the locally owned target faces; same-step coupling
    // (no overlap — the search serializes inside the time step).
    util::Timer search_timer;
    const double phi_d =
        cfg_.rig.rows[static_cast<std::size_t>(dir.donor_row)].rotor ? omega * time : 0.0;
    const double phi_t =
        cfg_.rig.rows[static_cast<std::size_t>(dir.target_row)].rotor ? omega * time : 0.0;
    const double rotation = phi_d - phi_t;
    const double cr = std::cos(rotation), sr = std::sin(rotation);

    const op2::Set& tset = target_solver.group_set(dir.target_group);
    std::vector<gindex_t> tgids;
    std::vector<double> tvalues;
    if (dir.mixing) {
      // Mixing plane: circumferential ring averages, rotation-independent.
      static_assert(MixingPlane::kPayload == kPayload);
      dir.mixing->average(donor_values);
      for (index_t b = 0; b < tset.n_owned(); ++b) {
        const gindex_t g = tset.global_id(b);
        const double th = dir.target_side.rtheta[static_cast<std::size_t>(g) * 2 + 1];
        tgids.push_back(g);
        const std::size_t off = tvalues.size();
        tvalues.resize(off + kPayload);
        dir.mixing->evaluate(static_cast<int>(g % dir.target_side.nr), th,
                             tvalues.data() + off);
      }
    } else {
      for (index_t b = 0; b < tset.n_owned(); ++b) {
        const gindex_t g = tset.global_id(b);
        const double r = dir.target_side.rtheta[static_cast<std::size_t>(g) * 2 + 0];
        const double th = dir.target_side.rtheta[static_cast<std::size_t>(g) * 2 + 1];
        const Stencil st = dir.interp->stencil(r, th, rotation);
        tgids.push_back(g);
        const std::size_t off = tvalues.size();
        tvalues.resize(off + kPayload, 0.0);
        for (int n = 0; n < st.count; ++n) {
          const double* src =
              donor_values.data() +
              static_cast<std::size_t>(st.face[static_cast<std::size_t>(n)]) * kPayload;
          for (int c = 0; c < kPayload; ++c) {
            tvalues[off + static_cast<std::size_t>(c)] +=
                st.weight[static_cast<std::size_t>(n)] * src[c];
          }
        }
        const double my = tvalues[off + 2], mz = tvalues[off + 3];
        tvalues[off + 2] = cr * my - sr * mz;
        tvalues[off + 3] = sr * my + cr * mz;
      }
    }
    target_solver.scatter_ghosts(dir.target_group, tgids, tvalues);
    search_elapsed += search_timer.elapsed();
  }
  stats_.interface_seconds += iface_timer.elapsed();
  stats_.search_seconds += search_elapsed;
}

void MonolithicRig::run(int nsteps, int inner) {
  if (inner < 0) inner = cfg_.flow.inner_iters;
  util::Timer total;
  for (int t = 0; t < nsteps; ++t) {
    if (!dirs_.empty()) transfer_interfaces(t);
    for (auto& s : solvers_) s->advance_inner(inner);
    for (auto& s : solvers_) s->shift_time_levels();
  }
  stats_.step_seconds += total.elapsed();
  stats_.candidates = 0;
  for (const auto& dir : dirs_) stats_.candidates += dir.interp->candidates_tested();
}

}  // namespace vcgt::jm76
