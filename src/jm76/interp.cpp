#include "src/jm76/interp.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vcgt::jm76 {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

const char* interp_kind_name(InterpKind k) {
  return k == InterpKind::DonorCell ? "donor-cell" : "bilinear";
}

Interpolator::Interpolator(const rig::InterfaceSide& donor, SearchKind search,
                           InterpKind interp)
    : donor_(donor), interp_(interp) {
  if (interp_ == InterpKind::DonorCell) {
    locator_ = std::make_unique<DonorLocator>(donor, search);
  } else {
    if (donor.nr <= 0 || donor.ntheta <= 0) {
      throw std::invalid_argument(
          "Interpolator: bilinear mode needs the interface's lattice hints");
    }
    dr_ = (donor.r_max - donor.r_min) / donor.nr;
    dth_ = kTwoPi / donor.ntheta;
  }
}

Stencil Interpolator::stencil(double r, double theta, double rotation) const {
  Stencil s;
  if (interp_ == InterpKind::DonorCell) {
    const int don = locator_->locate(r, theta, rotation);
    if (don < 0) throw std::runtime_error("Interpolator: donor search failed");
    s.count = 1;
    s.face[0] = don;
    s.weight[0] = 1.0;
    return s;
  }

  // Bilinear on the (r, theta) face-center lattice; centers sit at
  // r_min + (j + 0.5) dr and (k + 0.5) dth in the donor frame.
  double th = std::fmod(theta - rotation, kTwoPi);
  if (th < 0) th += kTwoPi;

  const double jr = (r - donor_.r_min) / dr_ - 0.5;
  int j0 = static_cast<int>(std::floor(jr));
  double fj = jr - j0;
  if (j0 < 0) {  // below the innermost centers: constant extrapolation
    j0 = 0;
    fj = 0.0;
  } else if (j0 >= donor_.nr - 1) {
    j0 = donor_.nr - 1;
    fj = 0.0;  // j1 collapses onto j0
  }
  const int j1 = std::min(j0 + 1, donor_.nr - 1);

  const double kt = th / dth_ - 0.5;
  int k0 = static_cast<int>(std::floor(kt));
  const double fk = kt - k0;  // theta wraps, no clamping
  const int k1 = k0 + 1;

  s.count = 4;
  s.face[0] = donor_.face_at(j0, k0);
  s.weight[0] = (1 - fj) * (1 - fk);
  s.face[1] = donor_.face_at(j1, k0);
  s.weight[1] = fj * (1 - fk);
  s.face[2] = donor_.face_at(j0, k1);
  s.weight[2] = (1 - fj) * fk;
  s.face[3] = donor_.face_at(j1, k1);
  s.weight[3] = fj * fk;
  return s;
}

}  // namespace vcgt::jm76
