#pragma once
// Mixing-plane interface treatment — the steady-RANS industrial standard the
// paper contrasts with its unsteady sliding planes (§I: "the flow is assumed
// to be steady, and circumferential averaging is enforced at the interfaces
// between the blade rows"). Donor payloads are averaged around the annulus
// per radial ring (momentum in cylindrical components so the average is
// frame-consistent), and every target face of a ring receives the same
// averaged state re-projected onto its own circumferential position. All
// unsteady rotor-stator interaction is destroyed by construction — exactly
// the limitation that motivates the paper's full-annulus URANS.
#include <span>
#include <vector>

#include "src/rig/interface.hpp"

namespace vcgt::jm76 {

/// How an interface couples its two rows.
enum class TransferKind {
  SlidingPlane,  ///< unsteady: rotated donor search + interpolation
  MixingPlane,   ///< steady: circumferential ring averaging
};

const char* transfer_kind_name(TransferKind k);

class MixingPlane {
 public:
  /// Payload layout: [rho, m_x, m_y, m_z, rhoE, nu_tilde] per face.
  static constexpr int kPayload = 6;

  explicit MixingPlane(const rig::InterfaceSide& donor);

  /// Computes the ring averages from the assembled donor payload
  /// (donor.size() * kPayload doubles). Momentum is rotated to cylindrical
  /// (m_x, m_r, m_theta) components per donor face before averaging.
  void average(std::span<const double> donor_payload);

  /// Writes the averaged payload for radial ring `j`, re-projected to a
  /// target face at circumferential angle `theta`, into out[kPayload].
  void evaluate(int ring, double theta, double* out) const;

  [[nodiscard]] int nrings() const { return donor_.nr; }

 private:
  rig::InterfaceSide donor_;
  /// nr * kPayload; momentum stored as (m_x, m_r, m_theta).
  std::vector<double> ring_avg_;
};

}  // namespace vcgt::jm76
