#pragma once
// jm76::CoupledRig — the full coupled solver of the paper: one hydra
// RowSolver per blade row running on its Hydra Session's sub-communicator,
// JM76 Coupler Units on dedicated ranks performing the sliding-plane donor
// search and interpolation, with the search overlapped with the CFD inner
// iterations (pipelined mode; §II-C "rendezvous" strategy).
//
// Instantiate one CoupledRig inside every rank of a minimpi::World and call
// run(); roles are derived from the Layout.
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/hydra/solver.hpp"
#include "src/op2/plancache.hpp"
#include "src/rig/annulus.hpp"
#include "src/jm76/interp.hpp"
#include "src/jm76/mixing.hpp"
#include "src/jm76/layout.hpp"
#include "src/jm76/search.hpp"
#include "src/minimpi/minimpi.hpp"
#include "src/op2/op2.hpp"
#include "src/rig/interface.hpp"
#include "src/rig/rowspec.hpp"

namespace vcgt::jm76 {

/// A coupler transfer (donor payload, ghost return, or setup gid list)
/// failed structurally: a bounded receive timed out or a send exhausted its
/// transient-fault retry budget. Carries the role/interface/direction/peer
/// so a 512-rank deadlock report names the broken transfer, not just "hung".
class TransferError : public std::runtime_error {
 public:
  TransferError(std::string what, std::string role, int iface, int dir, int peer)
      : std::runtime_error(std::move(what)), role(std::move(role)), iface(iface),
        dir(dir), peer(peer) {}
  std::string role;  ///< "HS" or "CU" (the failing side)
  int iface;         ///< sliding-plane interface index
  int dir;           ///< 0: upstream donor -> downstream; 1: reverse
  int peer;          ///< world rank of the other endpoint
};

struct CoupledConfig {
  rig::RigSpec rig;
  rig::MeshResolution res;
  hydra::FlowConfig flow;

  std::vector<int> hs_ranks;    ///< ranks per row (size == rig.nrows())
  int cus_per_interface = 1;
  SearchKind search = SearchKind::Adt;
  InterpKind interp = InterpKind::DonorCell;
  /// SlidingPlane (URANS, default) or MixingPlane (steady-RANS averaging).
  TransferKind transfer = TransferKind::SlidingPlane;
  /// How an interface's target faces are divided among its CUs: contiguous
  /// circumferential sectors (paper's description) or round-robin
  /// interleaving of theta columns (better balanced when flow features
  /// cluster circumferentially).
  enum class CuPartition { Sector, RoundRobin };
  CuPartition cu_partition = CuPartition::Sector;
  /// Overlap the CU search with the HS inner iterations by consuming ghosts
  /// with a one-step lag (the paper's overlap claim, §II-C); off = HS blocks
  /// for the same-step transfer.
  bool pipelined = true;
  /// GG optimization (Table III): pack gids+payload into one message per
  /// (HS rank, CU) instead of one message per field component.
  bool staged_gather = true;

  op2::Config op2cfg;
  op2::Partitioner partitioner = op2::Partitioner::Rcb;

  /// Billion-node setup path (DESIGN.md §13): each HS rank synthesizes only
  /// its shard of the row mesh (rig::generate_row_shard), declares it via
  /// decl_set_sharded and partitions with partition_sharded. Ownership is
  /// then block_owner() by construction — `partitioner` is ignored on the
  /// HS side — and the resulting setup is bit-identical to the monolithic
  /// Partitioner::Block path. Requires flow.sort_faces and
  /// flow.implicit_dual_time off (whole-mesh setups).
  bool sharded_setup = false;

  /// Shared setup-artifact cache (vcgt::serve; DESIGN.md §12). When set,
  /// row meshes, partitions and loop/chain plans are looked up / deposited
  /// under keys derived from `spec_hash`, which must cover everything above
  /// (vcgt::SessionSpec::hash() does). Null = no caching. The cache must be
  /// set on every rank of the world, or on none — plan import is collective.
  op2::PlanCache* plan_cache = nullptr;
  std::uint64_t spec_hash = 0;

  [[nodiscard]] Layout layout() const { return Layout(hs_ranks, cus_per_interface); }
};

/// Per-rank timing/metering snapshot collected after run().
struct RankStats {
  int world_rank = 0;
  std::int32_t is_cu = 0;
  std::int32_t row_or_iface = 0;
  double step_seconds = 0.0;    ///< HS: wall time in the step loop
  double coupler_wait = 0.0;    ///< HS: blocked receiving ghosts
  double search_seconds = 0.0;  ///< CU: donor search + interpolation
  double cu_idle_seconds = 0.0; ///< CU: blocked receiving donor data
  std::uint64_t candidates = 0; ///< CU: donor boxes tested
  std::uint64_t halo_bytes = 0; ///< HS: op2 halo traffic
  std::uint64_t halo_msgs = 0;
  double halo_seconds = 0.0;
  std::uint64_t owned_cells = 0;
};

class CoupledRig {
 public:
  /// Per-step observer, called on HS ranks after each physical step
  /// completes (step index is 0-based). All HS ranks of a row call it in
  /// lockstep, so row-collective operations (solver monitors) are safe
  /// inside; CU ranks never call it.
  using StepFn = std::function<void(int step)>;

  CoupledRig(minimpi::Comm& world, const CoupledConfig& cfg);
  ~CoupledRig();

  /// Runs `nsteps` physical time steps with `inner` pseudo-time iterations
  /// each (inner defaults to the FlowConfig value). Collective over the
  /// world.
  void run(int nsteps, int inner = -1, const StepFn& on_step = {});

  [[nodiscard]] const RankStats& stats() const { return stats_; }
  /// Gathers every rank's stats to world rank 0 (empty elsewhere).
  static std::vector<RankStats> collect(minimpi::Comm& world, const RankStats& mine);

  /// Zeroes the per-run meters (op2 loop/halo counters and the timing fields
  /// of stats()), keeping identity fields (rank, role, owned cells). Without
  /// this, repeat-N benchmarks report cumulative halo bytes/waits as per-rep
  /// numbers: the op2 plan meters accumulate across run() segments. Call it
  /// between repetitions on every rank (no communication involved).
  void reset_stats();

  /// Resets the rig to its just-constructed state for reuse under a new
  /// job: re-initializes the flow field, rewinds the physical clock and
  /// zeroes the meters. Much cheaper than reconstruction (no mesh, no
  /// partition, no plan build) — the warm path of vcgt::serve sessions.
  /// Call on every rank (no communication involved).
  void reinitialize();

  /// Deposits this rank's built op2 plans into cfg.plan_cache (no-op
  /// without a cache). Call after a *successful* run only.
  void export_plans();

  /// HS-only access for examples/tests (null on CU ranks).
  [[nodiscard]] hydra::RowSolver* solver() { return solver_.get(); }
  [[nodiscard]] op2::Context* context() { return ctx_.get(); }
  [[nodiscard]] const Role& role() const { return role_; }

  /// Checkpoints every row's flow state under `prefix` (one file set per
  /// row). Collective over the world; CU ranks participate as no-ops.
  bool save_state(const std::string& prefix);
  /// Restores a checkpoint written by save_state (any rank layout).
  bool load_state(const std::string& prefix);

 private:
  void run_hs(int nsteps, int inner, const StepFn& on_step);
  void run_cu(int nsteps);
  /// Row mesh through the plan cache when one is attached (one generation
  /// per spec+row process-wide instead of one per rank per construction).
  std::shared_ptr<const rig::AnnulusMesh> row_mesh(int row) const;

  minimpi::Comm& world_;
  CoupledConfig cfg_;
  Layout layout_;
  Role role_;

  // HS state.
  std::unique_ptr<op2::Context> ctx_;
  std::unique_ptr<hydra::RowSolver> solver_;
  /// Physical time at the start of the next run() segment (kept on every
  /// rank — the CUs need it for the interface rotation).
  double base_time_ = 0.0;

  RankStats stats_;
};

}  // namespace vcgt::jm76
