#pragma once
// Alternating Digital Tree (Bonet & Peraire 1991) over 2D boxes — the
// binary-tree donor search that replaced JM76's brute-force routine and cut
// coupler overhead by ~35% at 30-40 CUs (paper §III-B, Table II).
//
// Each 2D box (x_lo, x_hi, y_lo, y_hi) is a point in the 4D hyperspace; the
// tree alternates the split dimension with depth. A containment query for a
// point (x, y) prunes subtrees whose 4D region cannot contain any box with
// x_lo <= x <= x_hi and y_lo <= y <= y_hi.
#include <cstdint>
#include <vector>

namespace vcgt::jm76 {

class Adt2D {
 public:
  /// boxes: 4 doubles per item (x_lo, x_hi, y_lo, y_hi), x_lo <= x_hi and
  /// y_lo <= y_hi required (wrapping is the caller's concern).
  explicit Adt2D(std::vector<double> boxes);

  /// Appends the indices of all boxes containing (x, y) to *out (not
  /// cleared). `candidates` (optional) accumulates the number of nodes
  /// visited — the work metric compared against brute force.
  void query(double x, double y, std::vector<int>* out,
             std::uint64_t* candidates = nullptr) const;

  [[nodiscard]] std::size_t size() const { return boxes_.size() / 4; }
  [[nodiscard]] int depth() const { return max_depth_; }

 private:
  struct Node {
    int item = -1;
    int left = -1;
    int right = -1;
  };

  void insert(int item);

  std::vector<double> boxes_;
  std::vector<Node> nodes_;
  int root_ = -1;
  int max_depth_ = 0;
  double lo_[4] = {0, 0, 0, 0};  ///< 4D hyperspace bounds
  double hi_[4] = {0, 0, 0, 0};
};

/// Uniform-grid binning: boxes are registered in every grid cell they
/// overlap; a query tests only its cell's list. O(1) expected for
/// well-distributed boxes — the classic alternative to tree searches for
/// near-uniform interface lattices (provided for the search ablation; the
/// paper's JM76 went brute force -> ADT).
class UniformBins2D {
 public:
  /// `boxes` as for Adt2D; `cells_per_axis` <= 0 picks ~sqrt(n) per axis.
  explicit UniformBins2D(std::vector<double> boxes, int cells_per_axis = 0);

  void query(double x, double y, std::vector<int>* out,
             std::uint64_t* candidates = nullptr) const;

  [[nodiscard]] std::size_t size() const { return boxes_.size() / 4; }

 private:
  [[nodiscard]] int cell_of(double v, double lo, double inv_width, int n) const {
    int c = static_cast<int>((v - lo) * inv_width);
    return c < 0 ? 0 : (c >= n ? n - 1 : c);
  }

  std::vector<double> boxes_;
  int nx_ = 1, ny_ = 1;
  double lo_[2] = {0, 0};
  double inv_w_[2] = {1, 1};
  std::vector<std::vector<int>> bins_;  ///< nx*ny lists of box indices
};

/// Brute-force baseline: scans every box (JM76's original routine).
class BruteForce2D {
 public:
  explicit BruteForce2D(std::vector<double> boxes) : boxes_(std::move(boxes)) {}

  void query(double x, double y, std::vector<int>* out,
             std::uint64_t* candidates = nullptr) const {
    const auto n = boxes_.size() / 4;
    if (candidates) *candidates += n;
    for (std::size_t i = 0; i < n; ++i) {
      const double* b = boxes_.data() + i * 4;
      if (x >= b[0] && x <= b[1] && y >= b[2] && y <= b[3]) {
        out->push_back(static_cast<int>(i));
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return boxes_.size() / 4; }

 private:
  std::vector<double> boxes_;
};

}  // namespace vcgt::jm76
