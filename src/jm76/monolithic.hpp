#pragma once
// jm76::MonolithicRig — the "current production" configuration the paper
// compares against (§II-C, Table IV): every blade row lives in ONE solver
// context partitioned over ALL ranks, and the sliding-plane search and
// interpolation run inline inside the time step on the ranks that own
// interface faces. The donor data must be globally assembled every step
// (here: an allgather over the whole communicator), and no computation
// overlaps the search — the sliding planes stay "trapped" on a few ranks,
// which is exactly the scaling bottleneck the coupler approach removes.
#include <cstdint>
#include <memory>
#include <vector>

#include "src/hydra/solver.hpp"
#include "src/jm76/interp.hpp"
#include "src/jm76/mixing.hpp"
#include "src/jm76/search.hpp"
#include "src/minimpi/minimpi.hpp"
#include "src/op2/op2.hpp"
#include "src/rig/interface.hpp"
#include "src/rig/rowspec.hpp"

namespace vcgt::jm76 {

struct MonolithicConfig {
  rig::RigSpec rig;
  rig::MeshResolution res;
  hydra::FlowConfig flow;
  /// Production JM76 used the brute-force routine before the ADT rewrite.
  SearchKind search = SearchKind::BruteForce;
  InterpKind interp = InterpKind::DonorCell;
  /// SlidingPlane (URANS, default) or MixingPlane (steady-RANS averaging).
  TransferKind transfer = TransferKind::SlidingPlane;
  op2::Config op2cfg;
  op2::Partitioner partitioner = op2::Partitioner::Rcb;
};

class MonolithicRig {
 public:
  /// `comm` may be invalid for a purely serial run. Collective.
  MonolithicRig(minimpi::Comm comm, const MonolithicConfig& cfg);
  ~MonolithicRig();

  /// Runs physical steps (collective). `inner` < 0 uses the FlowConfig value.
  void run(int nsteps, int inner = -1);

  struct Stats {
    double step_seconds = 0.0;       ///< total step-loop wall time
    double interface_seconds = 0.0;  ///< global gather + search + scatter
    double search_seconds = 0.0;     ///< donor location + interpolation only
    std::uint64_t candidates = 0;    ///< donor boxes tested
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  [[nodiscard]] int nrows() const { return static_cast<int>(solvers_.size()); }
  [[nodiscard]] hydra::RowSolver& solver(int row) { return *solvers_[static_cast<std::size_t>(row)]; }
  [[nodiscard]] op2::Context& context() { return *ctx_; }

 private:
  void transfer_interfaces(int step);

  MonolithicConfig cfg_;
  std::unique_ptr<op2::Context> ctx_;
  std::vector<std::unique_ptr<hydra::RowSolver>> solvers_;

  struct Direction {
    int iface = 0;
    int donor_row = 0;
    int target_row = 0;
    rig::BoundaryGroup donor_group{};
    rig::BoundaryGroup target_group{};
    rig::InterfaceSide donor_side;
    rig::InterfaceSide target_side;
    std::unique_ptr<Interpolator> interp;
    std::unique_ptr<MixingPlane> mixing;
  };
  std::vector<Direction> dirs_;

  Stats stats_;
};

}  // namespace vcgt::jm76
