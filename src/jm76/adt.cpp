#include "src/jm76/adt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vcgt::jm76 {

Adt2D::Adt2D(std::vector<double> boxes) : boxes_(std::move(boxes)) {
  if (boxes_.size() % 4 != 0) {
    throw std::invalid_argument("Adt2D: boxes must hold 4 doubles per item");
  }
  const auto n = boxes_.size() / 4;
  nodes_.reserve(n);
  // 4D hyperspace bounds from the data.
  for (int d = 0; d < 4; ++d) {
    lo_[d] = 1e300;
    hi_[d] = -1e300;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < 4; ++d) {
      lo_[d] = std::min(lo_[d], boxes_[i * 4 + static_cast<std::size_t>(d)]);
      hi_[d] = std::max(hi_[d], boxes_[i * 4 + static_cast<std::size_t>(d)]);
    }
  }
  for (int d = 0; d < 4; ++d) {
    if (hi_[d] <= lo_[d]) hi_[d] = lo_[d] + 1e-12;
  }
  for (std::size_t i = 0; i < n; ++i) insert(static_cast<int>(i));
}

void Adt2D::insert(int item) {
  if (root_ == -1) {
    root_ = 0;
    nodes_.push_back({item, -1, -1});
    max_depth_ = 1;
    return;
  }
  double lo[4], hi[4];
  std::copy(lo_, lo_ + 4, lo);
  std::copy(hi_, hi_ + 4, hi);
  int cur = root_;
  int depth = 1;
  const double* key = boxes_.data() + static_cast<std::size_t>(item) * 4;
  for (;;) {
    const int dim = depth % 4;
    const double mid = 0.5 * (lo[dim] + hi[dim]);
    const bool go_left = key[dim] < mid;
    int& child = go_left ? nodes_[static_cast<std::size_t>(cur)].left
                         : nodes_[static_cast<std::size_t>(cur)].right;
    (go_left ? hi[dim] : lo[dim]) = mid;
    ++depth;
    if (child == -1) {
      child = static_cast<int>(nodes_.size());
      nodes_.push_back({item, -1, -1});
      max_depth_ = std::max(max_depth_, depth);
      return;
    }
    cur = child;
  }
}

UniformBins2D::UniformBins2D(std::vector<double> boxes, int cells_per_axis)
    : boxes_(std::move(boxes)) {
  if (boxes_.size() % 4 != 0) {
    throw std::invalid_argument("UniformBins2D: boxes must hold 4 doubles per item");
  }
  const auto n = boxes_.size() / 4;
  if (cells_per_axis <= 0) {
    cells_per_axis = std::max(1, static_cast<int>(std::sqrt(static_cast<double>(n))));
  }
  nx_ = ny_ = cells_per_axis;
  double hi[2] = {-1e300, -1e300};
  lo_[0] = lo_[1] = 1e300;
  for (std::size_t i = 0; i < n; ++i) {
    lo_[0] = std::min(lo_[0], boxes_[i * 4 + 0]);
    hi[0] = std::max(hi[0], boxes_[i * 4 + 1]);
    lo_[1] = std::min(lo_[1], boxes_[i * 4 + 2]);
    hi[1] = std::max(hi[1], boxes_[i * 4 + 3]);
  }
  if (n == 0) {
    lo_[0] = lo_[1] = 0.0;
    hi[0] = hi[1] = 1.0;
  }
  for (int d = 0; d < 2; ++d) {
    const double w = std::max(1e-300, hi[d] - lo_[d]);
    inv_w_[d] = (d == 0 ? nx_ : ny_) / w;
  }
  bins_.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_));
  for (std::size_t i = 0; i < n; ++i) {
    const int cx0 = cell_of(boxes_[i * 4 + 0], lo_[0], inv_w_[0], nx_);
    const int cx1 = cell_of(boxes_[i * 4 + 1], lo_[0], inv_w_[0], nx_);
    const int cy0 = cell_of(boxes_[i * 4 + 2], lo_[1], inv_w_[1], ny_);
    const int cy1 = cell_of(boxes_[i * 4 + 3], lo_[1], inv_w_[1], ny_);
    for (int cx = cx0; cx <= cx1; ++cx) {
      for (int cy = cy0; cy <= cy1; ++cy) {
        bins_[static_cast<std::size_t>(cy) * nx_ + static_cast<std::size_t>(cx)].push_back(
            static_cast<int>(i));
      }
    }
  }
}

void UniformBins2D::query(double x, double y, std::vector<int>* out,
                          std::uint64_t* candidates) const {
  if (boxes_.empty()) return;
  if (x < lo_[0] - 1e-12 || y < lo_[1] - 1e-12) {
    // Outside the indexed region entirely (the clamped cell would be wrong
    // only for containment, which the per-box test below rejects anyway).
  }
  const int cx = cell_of(x, lo_[0], inv_w_[0], nx_);
  const int cy = cell_of(y, lo_[1], inv_w_[1], ny_);
  const auto& bin = bins_[static_cast<std::size_t>(cy) * nx_ + static_cast<std::size_t>(cx)];
  if (candidates) *candidates += bin.size();
  for (const int i : bin) {
    const double* b = boxes_.data() + static_cast<std::size_t>(i) * 4;
    if (x >= b[0] && x <= b[1] && y >= b[2] && y <= b[3]) out->push_back(i);
  }
}

void Adt2D::query(double x, double y, std::vector<int>* out,
                  std::uint64_t* candidates) const {
  if (root_ == -1) return;
  // Iterative DFS with the per-node 4D region on an explicit stack.
  struct Frame {
    int node;
    int depth;
    double lo[4];
    double hi[4];
  };
  std::vector<Frame> stack;
  Frame f0;
  f0.node = root_;
  f0.depth = 1;
  std::copy(lo_, lo_ + 4, f0.lo);
  std::copy(hi_, hi_ + 4, f0.hi);
  stack.push_back(f0);

  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    // Prune: a containing box needs x_lo <= x (dim 0), x_hi >= x (dim 1),
    // y_lo <= y (dim 2), y_hi >= y (dim 3).
    if (f.lo[0] > x || f.hi[1] < x || f.lo[2] > y || f.hi[3] < y) continue;
    if (candidates) ++*candidates;

    const Node& nd = nodes_[static_cast<std::size_t>(f.node)];
    const double* b = boxes_.data() + static_cast<std::size_t>(nd.item) * 4;
    if (x >= b[0] && x <= b[1] && y >= b[2] && y <= b[3]) out->push_back(nd.item);

    const int dim = f.depth % 4;
    const double mid = 0.5 * (f.lo[dim] + f.hi[dim]);
    if (nd.left != -1) {
      Frame fl = f;
      fl.node = nd.left;
      fl.depth = f.depth + 1;
      fl.hi[dim] = mid;
      stack.push_back(fl);
    }
    if (nd.right != -1) {
      Frame fr = f;
      fr.node = nd.right;
      fr.depth = f.depth + 1;
      fr.lo[dim] = mid;
      stack.push_back(fr);
    }
  }
}

}  // namespace vcgt::jm76
