#pragma once
// Sliding-plane interpolation schemes. The transfer writes, for each target
// face, a payload combined from donor faces at the rotated position:
//
//  * DonorCell — piecewise-constant: the containing donor quad's value,
//    found with the (brute-force or ADT) search. First order, fully general
//    (works for any unstructured interface), and the configuration whose
//    search cost Table II studies.
//  * Bilinear — second-order: the four donor face centers surrounding the
//    rotated point in the (r, theta) lattice, bilinear weights, periodic in
//    theta and constant-extrapolated at hub/casing. Exploits the structured
//    annulus layout (no search needed); exact for fields linear in r and
//    theta, which the tests verify.
#include <array>

#include "src/jm76/search.hpp"
#include "src/rig/interface.hpp"

namespace vcgt::jm76 {

enum class InterpKind { DonorCell, Bilinear };

const char* interp_kind_name(InterpKind k);

/// A target point's donor stencil: up to 4 (face, weight) pairs.
struct Stencil {
  int count = 0;
  std::array<op2::index_t, 4> face{};
  std::array<double, 4> weight{};
};

class Interpolator {
 public:
  Interpolator(const rig::InterfaceSide& donor, SearchKind search, InterpKind interp);

  /// Stencil for the target point (r, theta) given the donor rotation angle
  /// (as DonorLocator::locate). Throws std::runtime_error when the
  /// donor-cell search fails.
  [[nodiscard]] Stencil stencil(double r, double theta, double rotation) const;

  [[nodiscard]] InterpKind kind() const { return interp_; }
  [[nodiscard]] std::uint64_t candidates_tested() const {
    return locator_ ? locator_->candidates_tested() : 0;
  }

 private:
  rig::InterfaceSide donor_;  ///< owned copy: callers may move/destroy theirs
  InterpKind interp_;
  std::unique_ptr<DonorLocator> locator_;  ///< DonorCell mode only
  double dr_ = 0.0;
  double dth_ = 0.0;
};

}  // namespace vcgt::jm76
