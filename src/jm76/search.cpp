#include "src/jm76/search.hpp"

#include <cmath>
#include <numbers>

namespace vcgt::jm76 {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

double wrap_2pi(double th) {
  th = std::fmod(th, kTwoPi);
  if (th < 0) th += kTwoPi;
  return th;
}
}  // namespace

const char* search_kind_name(SearchKind k) {
  switch (k) {
    case SearchKind::BruteForce: return "brute-force";
    case SearchKind::Adt: return "adt";
    case SearchKind::Bins: return "bins";
  }
  return "?";
}

DonorLocator::DonorLocator(const rig::InterfaceSide& donor, SearchKind kind)
    : kind_(kind), ndonors_(static_cast<std::size_t>(donor.size())) {
  std::vector<double> boxes;
  // (r, theta) boxes; quads crossing the 0/2pi seam (th_lo > th_hi) are
  // registered twice, shifted so both query images land inside one copy.
  for (std::size_t i = 0; i < ndonors_; ++i) {
    const double r_lo = donor.box[i * 4 + 0];
    const double r_hi = donor.box[i * 4 + 1];
    const double th_lo = donor.box[i * 4 + 2];
    const double th_hi = donor.box[i * 4 + 3];
    auto add = [&](double a, double b) {
      boxes.insert(boxes.end(), {r_lo, r_hi, a, b});
      item_of_.push_back(static_cast<int>(i));
    };
    if (th_lo <= th_hi) {
      add(th_lo, th_hi);
    } else {
      add(th_lo - kTwoPi, th_hi);
      add(th_lo, th_hi + kTwoPi);
    }
  }
  switch (kind_) {
    case SearchKind::Adt:
      adt_ = std::make_unique<Adt2D>(std::move(boxes));
      break;
    case SearchKind::Bins:
      bins_ = std::make_unique<UniformBins2D>(std::move(boxes));
      break;
    case SearchKind::BruteForce:
      bf_ = std::make_unique<BruteForce2D>(std::move(boxes));
      break;
  }
}

int DonorLocator::locate(double r, double theta, double rotation) const {
  const double th = wrap_2pi(theta - rotation);
  scratch_.clear();
  if (adt_) {
    adt_->query(r, th, &scratch_, &candidates_);
  } else if (bins_) {
    bins_->query(r, th, &scratch_, &candidates_);
  } else {
    bf_->query(r, th, &scratch_, &candidates_);
  }
  if (scratch_.empty()) {
    // Target exactly on a box edge can fall between open intervals due to
    // floating point; retry with a tiny inward nudge before giving up.
    const double eps = 1e-12;
    if (adt_) {
      adt_->query(r - eps, th + eps, &scratch_, &candidates_);
    } else if (bins_) {
      bins_->query(r - eps, th + eps, &scratch_, &candidates_);
    } else {
      bf_->query(r - eps, th + eps, &scratch_, &candidates_);
    }
  }
  if (scratch_.empty()) return -1;
  // Overlapping boxes at shared edges: any containing quad is acceptable;
  // pick the lowest index for determinism.
  int best = item_of_[static_cast<std::size_t>(scratch_[0])];
  for (const int s : scratch_) {
    best = std::min(best, item_of_[static_cast<std::size_t>(s)]);
  }
  return best;
}

}  // namespace vcgt::jm76
