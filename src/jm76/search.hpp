#pragma once
// Donor location on a sliding-plane interface: given a target face center
// (r, theta) in the target row's frame and the current relative rotation of
// the donor row, find the donor quad containing the rotated point. Wraps
// theta periodically (full annulus) and counts candidate tests so the
// benchmark harness can compare brute force vs ADT work (Table II).
#include <cstdint>
#include <memory>
#include <vector>

#include "src/jm76/adt.hpp"
#include "src/rig/interface.hpp"

namespace vcgt::jm76 {

enum class SearchKind { BruteForce, Adt, Bins };

const char* search_kind_name(SearchKind k);

class DonorLocator {
 public:
  DonorLocator(const rig::InterfaceSide& donor, SearchKind kind);

  /// Donor face index containing the target point after removing the donor
  /// rotation: the point is looked up at theta_donor = theta - rotation
  /// (mod 2pi). Returns -1 when no quad contains the point (should not
  /// happen for co-annular interfaces; callers treat it as an error).
  [[nodiscard]] int locate(double r, double theta, double rotation) const;

  [[nodiscard]] std::uint64_t candidates_tested() const { return candidates_; }
  [[nodiscard]] SearchKind kind() const { return kind_; }
  [[nodiscard]] std::size_t ndonors() const { return ndonors_; }

 private:
  SearchKind kind_;
  std::size_t ndonors_ = 0;
  /// Expanded box list: seam-crossing quads are registered twice (shifted by
  /// -2pi and +2pi); item_of_ maps expanded index -> donor face.
  std::vector<int> item_of_;
  std::unique_ptr<Adt2D> adt_;
  std::unique_ptr<BruteForce2D> bf_;
  std::unique_ptr<UniformBins2D> bins_;
  mutable std::uint64_t candidates_ = 0;
  mutable std::vector<int> scratch_;
};

}  // namespace vcgt::jm76
