#include "src/jm76/mixing.hpp"

#include <cmath>
#include <stdexcept>

namespace vcgt::jm76 {

const char* transfer_kind_name(TransferKind k) {
  return k == TransferKind::SlidingPlane ? "sliding-plane" : "mixing-plane";
}

MixingPlane::MixingPlane(const rig::InterfaceSide& donor) : donor_(donor) {
  if (donor_.nr <= 0 || donor_.ntheta <= 0) {
    throw std::invalid_argument("MixingPlane: interface lacks lattice hints");
  }
  ring_avg_.assign(static_cast<std::size_t>(donor_.nr) * kPayload, 0.0);
}

void MixingPlane::average(std::span<const double> donor_payload) {
  if (donor_payload.size() !=
      static_cast<std::size_t>(donor_.size()) * static_cast<std::size_t>(kPayload)) {
    throw std::invalid_argument("MixingPlane::average: payload size mismatch");
  }
  std::fill(ring_avg_.begin(), ring_avg_.end(), 0.0);
  for (op2::index_t i = 0; i < donor_.size(); ++i) {
    const int j = static_cast<int>(i % donor_.nr);
    const double th = donor_.rtheta[static_cast<std::size_t>(i) * 2 + 1];
    const double c = std::cos(th), s = std::sin(th);
    const double* p = donor_payload.data() + static_cast<std::size_t>(i) * kPayload;
    double* avg = ring_avg_.data() + static_cast<std::size_t>(j) * kPayload;
    avg[0] += p[0];
    avg[1] += p[1];                    // axial momentum
    avg[2] += c * p[2] + s * p[3];     // radial momentum
    avg[3] += -s * p[2] + c * p[3];    // tangential momentum
    avg[4] += p[4];
    avg[5] += p[5];
  }
  const double inv = 1.0 / donor_.ntheta;
  for (double& v : ring_avg_) v *= inv;
}

void MixingPlane::evaluate(int ring, double theta, double* out) const {
  if (ring < 0 || ring >= donor_.nr) {
    throw std::out_of_range("MixingPlane::evaluate: bad ring index");
  }
  const double* avg = ring_avg_.data() + static_cast<std::size_t>(ring) * kPayload;
  const double c = std::cos(theta), s = std::sin(theta);
  out[0] = avg[0];
  out[1] = avg[1];
  out[2] = c * avg[2] - s * avg[3];  // back to Cartesian y
  out[3] = s * avg[2] + c * avg[3];  // back to Cartesian z
  out[4] = avg[4];
  out[5] = avg[5];
}

}  // namespace vcgt::jm76
