#pragma once
// Rank layout of a coupled run (paper Fig. 5): the world communicator is
// carved into Hydra Sessions (HS) — one group of ranks per blade row, each
// with its own sub-communicator — and Coupler Units (CU) — one rank each,
// several per sliding-plane interface, partitioning the interface's target
// faces into circumferential sectors.
//
// World rank order: [row0 HS ranks][row1 HS ranks]...[iface0 CUs][iface1
// CUs]... This mirrors JM76's decentralized client-server scheme.
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vcgt::jm76 {

struct Role {
  enum class Kind { HydraSession, CouplerUnit };
  Kind kind = Kind::HydraSession;
  int row = -1;          ///< HS: blade row index
  int rank_in_row = -1;  ///< HS: rank within the row's sub-communicator
  int iface = -1;        ///< CU: interface index (between row i and i+1)
  int unit = -1;         ///< CU: unit index within the interface
};

class Layout {
 public:
  Layout(std::vector<int> hs_ranks, int cus_per_interface)
      : hs_ranks_(std::move(hs_ranks)), cus_(cus_per_interface) {
    if (hs_ranks_.empty()) throw std::invalid_argument("Layout: no rows");
    for (const int n : hs_ranks_) {
      if (n < 1) throw std::invalid_argument("Layout: each row needs >= 1 rank");
    }
    if (nrows() > 1 && cus_ < 1) {
      throw std::invalid_argument("Layout: coupled runs need >= 1 CU per interface");
    }
    offsets_.resize(hs_ranks_.size() + 1, 0);
    std::partial_sum(hs_ranks_.begin(), hs_ranks_.end(), offsets_.begin() + 1);
  }

  [[nodiscard]] int nrows() const { return static_cast<int>(hs_ranks_.size()); }
  [[nodiscard]] int ninterfaces() const { return nrows() - 1; }
  [[nodiscard]] int cus_per_interface() const { return cus_; }
  [[nodiscard]] int hs_total() const { return offsets_.back(); }
  [[nodiscard]] int world_size() const { return hs_total() + ninterfaces() * cus_; }

  [[nodiscard]] int hs_count(int row) const { return hs_ranks_[static_cast<std::size_t>(row)]; }
  [[nodiscard]] int hs_world_rank(int row, int r) const {
    return offsets_[static_cast<std::size_t>(row)] + r;
  }
  [[nodiscard]] int cu_world_rank(int iface, int unit) const {
    return hs_total() + iface * cus_ + unit;
  }

  [[nodiscard]] Role role_of(int wrank) const {
    Role role;
    if (wrank < hs_total()) {
      role.kind = Role::Kind::HydraSession;
      int row = 0;
      while (offsets_[static_cast<std::size_t>(row + 1)] <= wrank) ++row;
      role.row = row;
      role.rank_in_row = wrank - offsets_[static_cast<std::size_t>(row)];
      return role;
    }
    const int c = wrank - hs_total();
    role.kind = Role::Kind::CouplerUnit;
    role.iface = c / cus_;
    role.unit = c % cus_;
    if (role.iface >= ninterfaces()) throw std::out_of_range("Layout: rank beyond world");
    return role;
  }

 private:
  std::vector<int> hs_ranks_;
  int cus_;
  std::vector<int> offsets_;
};

}  // namespace vcgt::jm76
