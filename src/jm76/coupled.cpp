#include "src/jm76/coupled.hpp"

#include <cmath>
#include <cstring>
#include <numbers>
#include <stdexcept>

#include "src/rig/annulus.hpp"
#include "src/util/log.hpp"
#include "src/util/timer.hpp"
#include "src/util/trace.hpp"

namespace vcgt::jm76 {

using hydra::RowSolver;
using op2::gindex_t;
using op2::index_t;
using rig::BoundaryGroup;

namespace {

constexpr int kPayload = RowSolver::kPayload;

// World-communicator tags. dir 0: donor = row i Outlet -> targets = row i+1
// Inlet; dir 1: donor = row i+1 Inlet -> targets = row i Outlet.
int tag_setup(int iface, int dir) { return 100 + iface * 2 + dir; }
int tag_donor(int iface, int dir, int component) {
  return 5000 + (iface * 2 + dir) * 16 + component;
}
int tag_ghost(int iface, int dir) { return 9000 + iface * 2 + dir; }

/// Packs the (count, gids, payload) wire format the staged-donor and ghost
/// messages share into a pooled buffer and ships it zero-copy — or, with the
/// transport disabled, into a plain vector plus send_bytes' payload copy.
void send_packed(minimpi::Comm& world, int dst, int tag, std::span<const gindex_t> gids,
                 std::span<const double> payload, bool zero_copy) {
  const std::size_t need =
      sizeof(std::uint64_t) + gids.size_bytes() + payload.size_bytes();
  const std::uint64_t n = gids.size();
  const auto pack = [&](std::byte* out) {
    std::size_t off = 0;
    std::memcpy(out + off, &n, sizeof(n));
    off += sizeof(n);
    std::memcpy(out + off, gids.data(), gids.size_bytes());
    off += gids.size_bytes();
    std::memcpy(out + off, payload.data(), payload.size_bytes());
  };
  if (zero_copy) {
    minimpi::Buffer buf = world.lease(need);
    pack(buf.data());
    world.send_owned(std::move(buf), dst, tag);
    return;
  }
  std::vector<std::byte> buf(need);
  pack(buf.data());
  world.send_bytes(buf, dst, tag);
}

/// Inverse of send_packed: receives the slab (owned — it recycles on return)
/// and unpacks into the caller's typed arrays.
void recv_packed(minimpi::Comm& world, int src, int tag, std::vector<gindex_t>* gids,
                 std::vector<double>* payload) {
  const minimpi::Buffer buf = world.recv_owned(src, tag);
  std::uint64_t n = 0;
  std::size_t off = 0;
  std::memcpy(&n, buf.data() + off, sizeof(n));
  off += sizeof(n);
  gids->resize(n);
  std::memcpy(gids->data(), buf.data() + off, n * sizeof(gindex_t));
  off += n * sizeof(gindex_t);
  payload->resize(n * static_cast<std::size_t>(kPayload));
  std::memcpy(payload->data(), buf.data() + off, payload->size() * sizeof(double));
}

/// Donor payload send: staged (GG on) packs gids+values into one message;
/// unstaged sends the gid list plus one message per field component,
/// modelling the per-dat device-to-host copies GG eliminates (Table III).
void send_donor(minimpi::Comm& world, int dst, int iface, int dir,
                std::span<const gindex_t> gids, std::span<const double> payload,
                bool staged, bool zero_copy) {
  if (staged) {
    send_packed(world, dst, tag_donor(iface, dir, 0), gids, payload, zero_copy);
    return;
  }
  world.send(gids, dst, tag_donor(iface, dir, 0));
  std::vector<double> comp(gids.size());
  for (int c = 0; c < kPayload; ++c) {
    for (std::size_t i = 0; i < gids.size(); ++i) {
      comp[i] = payload[i * static_cast<std::size_t>(kPayload) + static_cast<std::size_t>(c)];
    }
    world.send(std::span<const double>(comp), dst, tag_donor(iface, dir, 1 + c));
  }
}

void recv_donor(minimpi::Comm& world, int src, int iface, int dir,
                std::vector<gindex_t>* gids, std::vector<double>* payload, bool staged) {
  if (staged) {
    recv_packed(world, src, tag_donor(iface, dir, 0), gids, payload);
    return;
  }
  *gids = world.recv<gindex_t>(src, tag_donor(iface, dir, 0));
  payload->assign(gids->size() * static_cast<std::size_t>(kPayload), 0.0);
  for (int c = 0; c < kPayload; ++c) {
    const auto comp = world.recv<double>(src, tag_donor(iface, dir, 1 + c));
    for (std::size_t i = 0; i < comp.size(); ++i) {
      (*payload)[i * static_cast<std::size_t>(kPayload) + static_cast<std::size_t>(c)] =
          comp[i];
    }
  }
}

/// Ghost return message: gids + interpolated payload in one packed buffer.
void send_ghost(minimpi::Comm& world, int dst, int iface, int dir,
                std::span<const gindex_t> gids, std::span<const double> payload,
                bool zero_copy) {
  send_packed(world, dst, tag_ghost(iface, dir), gids, payload, zero_copy);
}

/// Runs one transfer (send or receive), converting the structured minimpi
/// failures into a TransferError naming the coupling endpoint. WorldAborted
/// is left alone: it means the world died, not that this transfer failed.
template <class Fn>
decltype(auto) guarded_transfer(const char* role, int iface, int dir, int peer, Fn&& fn) {
  try {
    return fn();
  } catch (const minimpi::RecvTimeout& e) {
    throw TransferError(util::fmt("jm76: {} transfer (iface {}, dir {}, peer rank {}) timed out: {}",
                                  role, iface, dir, peer, e.what()),
                        role, iface, dir, peer);
  } catch (const minimpi::TransientSendError& e) {
    throw TransferError(util::fmt("jm76: {} transfer (iface {}, dir {}, peer rank {}) failed: {}",
                                  role, iface, dir, peer, e.what()),
                        role, iface, dir, peer);
  }
}

void recv_ghost(minimpi::Comm& world, int src, int iface, int dir,
                std::vector<gindex_t>* gids, std::vector<double>* payload) {
  recv_packed(world, src, tag_ghost(iface, dir), gids, payload);
}

}  // namespace

namespace {
/// Validates the world against the layout before any role lookup (a rank
/// beyond the layout must produce the size-mismatch error, not an
/// out-of-range role).
Role checked_role(const minimpi::Comm& world, const Layout& layout) {
  if (world.size() != layout.world_size()) {
    throw std::invalid_argument(util::fmt("CoupledRig: world size {} != layout size {}",
                                          world.size(), layout.world_size()));
  }
  return layout.role_of(world.rank());
}
}  // namespace

CoupledRig::CoupledRig(minimpi::Comm& world, const CoupledConfig& cfg)
    : world_(world), cfg_(cfg), layout_(cfg.layout()),
      role_(checked_role(world, layout_)) {
  stats_.world_rank = world.rank();

  // Row sub-communicators (collective: every rank must call split).
  const int color = role_.kind == Role::Kind::HydraSession ? role_.row : -1;
  minimpi::Comm row_comm = world.split(color, world.rank());

  if (role_.kind == Role::Kind::HydraSession) {
    stats_.is_cu = 0;
    stats_.row_or_iface = role_.row;
    const auto& row = cfg_.rig.rows[static_cast<std::size_t>(role_.row)];
    ctx_ = std::make_unique<op2::Context>(row_comm, cfg_.op2cfg);
    if (cfg_.plan_cache != nullptr) {
      // Per-row discriminator: every row's context shares the spec hash but
      // declares a different mesh, so their cache keys must not collide.
      ctx_->set_plan_cache(cfg_.plan_cache,
                           cfg_.spec_hash ^
                               (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(role_.row + 1)));
    }
    if (cfg_.sharded_setup) {
      // Billion-node path: this rank synthesizes only its shard of the row
      // and the shard-aware partitioner reproduces the monolithic Block
      // setup bit-identically (DESIGN.md §13). No whole-row mesh exists on
      // any HS rank.
      const rig::ShardSpec sspec{row_comm.rank(), row_comm.size()};
      const rig::RowShard shard = rig::generate_row_shard(row, cfg_.res, sspec);
      solver_ = std::make_unique<RowSolver>(*ctx_, shard, row, cfg_.rig.omega(), cfg_.flow);
      if (role_.row > 0) solver_->set_coupled(BoundaryGroup::Inlet, true);
      if (role_.row < layout_.nrows() - 1) solver_->set_coupled(BoundaryGroup::Outlet, true);
      ctx_->partition_sharded({&solver_->cells()});
    } else {
      const auto mesh = row_mesh(role_.row);
      solver_ = std::make_unique<RowSolver>(*ctx_, *mesh, row, cfg_.rig.omega(), cfg_.flow);
      if (role_.row > 0) solver_->set_coupled(BoundaryGroup::Inlet, true);
      if (role_.row < layout_.nrows() - 1) solver_->set_coupled(BoundaryGroup::Outlet, true);
      ctx_->partition(cfg_.partitioner, solver_->cell_center());
    }
    // Adopt cached plans before the first par_loop (initialize() below
    // already runs loops): a warm spec skips every plan build, a cold one
    // proceeds normally. Collective across the row.
    ctx_->import_plans_from_cache();
    solver_->initialize();
    stats_.owned_cells = static_cast<std::uint64_t>(solver_->cells().n_owned());
  } else {
    stats_.is_cu = 1;
    stats_.row_or_iface = role_.iface;
  }
}

std::shared_ptr<const rig::AnnulusMesh> CoupledRig::row_mesh(int row) const {
  const auto& spec = cfg_.rig.rows[static_cast<std::size_t>(row)];
  if (cfg_.plan_cache == nullptr) {
    return std::make_shared<const rig::AnnulusMesh>(rig::generate_row_mesh(spec, cfg_.res));
  }
  // Mesh generation is deterministic from (row spec, resolution), both
  // covered by the spec hash — every rank that needs row `row`'s mesh (its
  // HS ranks and the adjacent interfaces' CUs) shares one immutable copy.
  // Lookup is local (no collective needed: a miss just regenerates).
  const std::string key = util::fmt("mesh:{}:row{}", cfg_.spec_hash, row);
  if (auto hit = cfg_.plan_cache->lookup_as<rig::AnnulusMesh>(key)) return hit;
  auto mesh = std::make_shared<const rig::AnnulusMesh>(rig::generate_row_mesh(spec, cfg_.res));
  const std::size_t bytes =
      (mesh->face2cell.size() + mesh->bface2cell.size()) * sizeof(index_t) +
      (mesh->cell_center.size() + mesh->cell_vol.size() + mesh->cell_rtheta.size() +
       mesh->face_normal.size() + mesh->face_center.size() + mesh->bface_normal.size() +
       mesh->bface_center.size() + mesh->bface_rtheta.size()) *
          sizeof(double) +
      mesh->bface_group.size() * sizeof(int) + 256;
  cfg_.plan_cache->insert_value(key, mesh, bytes);
  return mesh;
}

CoupledRig::~CoupledRig() = default;

void CoupledRig::run(int nsteps, int inner, const StepFn& on_step) {
  if (inner < 0) inner = cfg_.flow.inner_iters;
  if (role_.kind == Role::Kind::HydraSession) {
    run_hs(nsteps, inner, on_step);
  } else {
    run_cu(nsteps);
  }
  base_time_ += nsteps * cfg_.flow.dt_phys;
}

void CoupledRig::reinitialize() {
  if (solver_) solver_->initialize();
  base_time_ = 0.0;
  reset_stats();
}

void CoupledRig::export_plans() {
  if (ctx_) ctx_->export_plans_to_cache();
}

void CoupledRig::run_hs(int nsteps, int inner, const StepFn& on_step) {
  RowSolver& solver = *solver_;
  const int row = role_.row;
  const int K = layout_.ninterfaces() > 0 ? layout_.cus_per_interface() : 0;
  const bool inlet_coupled = row > 0;
  const bool outlet_coupled = row < layout_.nrows() - 1;

  // Setup: announce owned target gids to the CUs of the adjacent interfaces.
  std::vector<gindex_t> gids;
  std::vector<double> payload;
  if (inlet_coupled) {
    std::vector<double> dummy;
    solver.gather_owned_face_states(BoundaryGroup::Inlet, &gids, &dummy);
    for (int u = 0; u < K; ++u) {
      world_.send(std::span<const gindex_t>(gids), layout_.cu_world_rank(row - 1, u),
                  tag_setup(row - 1, 0));
    }
  }
  if (outlet_coupled) {
    std::vector<double> dummy;
    solver.gather_owned_face_states(BoundaryGroup::Outlet, &gids, &dummy);
    for (int u = 0; u < K; ++u) {
      world_.send(std::span<const gindex_t>(gids), layout_.cu_world_rank(row, u),
                  tag_setup(row, 1));
    }
  }

  util::Stopwatch wait_sw;
  util::Timer total;

  auto send_states = [&]() {
    trace::Span tspan("coupler:send_states");
    // Donor roles: my Outlet feeds interface `row` dir 0; my Inlet feeds
    // interface `row-1` dir 1.
    if (outlet_coupled) {
      solver.gather_owned_face_states(BoundaryGroup::Outlet, &gids, &payload);
      for (int u = 0; u < K; ++u) {
        const int cu = layout_.cu_world_rank(row, u);
        guarded_transfer("HS", row, 0, cu, [&] {
          send_donor(world_, cu, row, 0, gids, payload, cfg_.staged_gather,
                     cfg_.op2cfg.zero_copy_transport);
        });
      }
    }
    if (inlet_coupled) {
      solver.gather_owned_face_states(BoundaryGroup::Inlet, &gids, &payload);
      for (int u = 0; u < K; ++u) {
        const int cu = layout_.cu_world_rank(row - 1, u);
        guarded_transfer("HS", row - 1, 1, cu, [&] {
          send_donor(world_, cu, row - 1, 1, gids, payload, cfg_.staged_gather,
                     cfg_.op2cfg.zero_copy_transport);
        });
      }
    }
  };

  auto recv_ghosts = [&]() {
    trace::Span tspan("coupler:recv_ghosts");
    const util::ScopedTimer st(wait_sw);
    // Target roles: my Inlet receives from interface `row-1` dir 0; my
    // Outlet from interface `row` dir 1.
    std::vector<gindex_t> all_gids;
    std::vector<double> all_payload;
    if (inlet_coupled) {
      all_gids.clear();
      all_payload.clear();
      for (int u = 0; u < K; ++u) {
        const int cu = layout_.cu_world_rank(row - 1, u);
        guarded_transfer("HS", row - 1, 0, cu,
                         [&] { recv_ghost(world_, cu, row - 1, 0, &gids, &payload); });
        all_gids.insert(all_gids.end(), gids.begin(), gids.end());
        all_payload.insert(all_payload.end(), payload.begin(), payload.end());
      }
      solver.scatter_ghosts(BoundaryGroup::Inlet, all_gids, all_payload);
    }
    if (outlet_coupled) {
      all_gids.clear();
      all_payload.clear();
      for (int u = 0; u < K; ++u) {
        const int cu = layout_.cu_world_rank(row, u);
        guarded_transfer("HS", row, 1, cu,
                         [&] { recv_ghost(world_, cu, row, 1, &gids, &payload); });
        all_gids.insert(all_gids.end(), gids.begin(), gids.end());
        all_payload.insert(all_payload.end(), payload.begin(), payload.end());
      }
      solver.scatter_ghosts(BoundaryGroup::Outlet, all_gids, all_payload);
    }
  };

  for (int t = 0; t < nsteps; ++t) {
    trace::Span tstep("hs:step");
    if (tstep.active()) {
      tstep.arg("step", static_cast<double>(t));
      tstep.arg("row", static_cast<double>(row));
    }
    if (cfg_.pipelined) {
      // One-step-lagged coupling: ghosts computed by the CUs while the
      // previous step's inner iterations ran are consumed now (overlap).
      if (t > 0) recv_ghosts();
      if (t < nsteps - 1) send_states();
    } else {
      send_states();
      recv_ghosts();
    }
    solver.advance_inner(inner);
    solver.shift_time_levels();
    if (on_step) on_step(t);
  }

  stats_.step_seconds = total.elapsed();
  stats_.coupler_wait = wait_sw.total();
  const auto op2_stats = ctx_->total_stats();
  stats_.halo_bytes = op2_stats.halo_bytes;
  stats_.halo_msgs = op2_stats.halo_msgs;
  stats_.halo_seconds = op2_stats.halo_seconds;
}

void CoupledRig::run_cu(int nsteps) {
  const int iface = role_.iface;
  const int K = layout_.cus_per_interface();
  const int unit = role_.unit;
  const double sector_lo = 2.0 * std::numbers::pi * unit / K;
  const double sector_hi = 2.0 * std::numbers::pi * (unit + 1) / K;

  const auto& row_u = cfg_.rig.rows[static_cast<std::size_t>(iface)];
  const auto& row_d = cfg_.rig.rows[static_cast<std::size_t>(iface) + 1];
  const auto mesh_u = row_mesh(iface);
  const auto mesh_d = row_mesh(iface + 1);
  const auto side_u = rig::extract_interface(*mesh_u, row_u, BoundaryGroup::Outlet);
  const auto side_d = rig::extract_interface(*mesh_d, row_d, BoundaryGroup::Inlet);

  struct Direction {
    const rig::InterfaceSide* donor;
    const rig::InterfaceSide* target;
    int donor_row;
    int target_row;
    std::unique_ptr<Interpolator> interp;
    std::unique_ptr<MixingPlane> mixing;
    std::vector<double> donor_payload;  ///< indexed by donor gid
    std::vector<int> tgt_ranks;                    ///< world ranks (target HS)
    std::vector<std::vector<gindex_t>> tgt_gids;   ///< per target HS rank, sector-filtered
  };
  Direction dirs[2];
  dirs[0] = {&side_u, &side_d, iface, iface + 1, nullptr, nullptr, {}, {}, {}};
  dirs[1] = {&side_d, &side_u, iface + 1, iface, nullptr, nullptr, {}, {}, {}};

  for (int d = 0; d < 2; ++d) {
    auto& dir = dirs[d];
    dir.interp = std::make_unique<Interpolator>(*dir.donor, cfg_.search, cfg_.interp);
    if (cfg_.transfer == TransferKind::MixingPlane) {
      dir.mixing = std::make_unique<MixingPlane>(*dir.donor);
    }
    dir.donor_payload.assign(
        static_cast<std::size_t>(dir.donor->size()) * static_cast<std::size_t>(kPayload),
        0.0);
    // Setup: receive each target-row HS rank's owned gid list; keep this
    // unit's share — a contiguous circumferential sector (the paper's
    // partitioning) or round-robin interleaved theta columns.
    const int nhs = layout_.hs_count(dir.target_row);
    for (int h = 0; h < nhs; ++h) {
      const int wrank = layout_.hs_world_rank(dir.target_row, h);
      const auto owned = guarded_transfer("CU", iface, d, wrank, [&] {
        return world_.recv<gindex_t>(wrank, tag_setup(iface, d));
      });
      std::vector<gindex_t> mine;
      for (const gindex_t g : owned) {
        bool take;
        if (cfg_.cu_partition == CoupledConfig::CuPartition::Sector) {
          const double th = dir.target->rtheta[static_cast<std::size_t>(g) * 2 + 1];
          take = th >= sector_lo && th < sector_hi;
        } else {
          take = (g / dir.target->nr) % K == unit;  // theta-column interleave
        }
        if (take) mine.push_back(g);
      }
      dir.tgt_ranks.push_back(wrank);
      dir.tgt_gids.push_back(std::move(mine));
    }
  }

  util::Stopwatch idle_sw, search_sw;
  const double omega = cfg_.rig.omega();
  const double dt = cfg_.flow.dt_phys;
  std::vector<gindex_t> gids;
  std::vector<double> payload;

  const double base_time = base_time_;
  const int iters = cfg_.pipelined ? nsteps - 1 : nsteps;
  for (int t = 0; t < iters; ++t) {
    trace::Span tstep("cu:step");
    if (tstep.active()) {
      tstep.arg("step", static_cast<double>(t));
      tstep.arg("iface", static_cast<double>(iface));
    }
    // Receive donor payloads from every donor-row HS rank, both directions.
    {
      trace::Span trecv("cu:recv_donors");
      const util::ScopedTimer st(idle_sw);
      for (int d = 0; d < 2; ++d) {
        auto& dir = dirs[d];
        const int nhs = layout_.hs_count(dir.donor_row);
        for (int h = 0; h < nhs; ++h) {
          const int wrank = layout_.hs_world_rank(dir.donor_row, h);
          guarded_transfer("CU", iface, d, wrank, [&] {
            recv_donor(world_, wrank, iface, d, &gids, &payload, cfg_.staged_gather);
          });
          for (std::size_t i = 0; i < gids.size(); ++i) {
            std::memcpy(dir.donor_payload.data() +
                            static_cast<std::size_t>(gids[i]) * kPayload,
                        payload.data() + i * static_cast<std::size_t>(kPayload),
                        sizeof(double) * kPayload);
          }
        }
      }
    }

    // Search + interpolate + return, per direction. The ghost consumers run
    // at physical step (t+1) in pipelined mode; base_time carries over from
    // previous run() segments and checkpoint restarts.
    const double step_time = base_time + (cfg_.pipelined ? t + 1 : t) * dt;
    {
      trace::Span tsearch("cu:search_interp");
      const util::ScopedTimer st(search_sw);
      for (int d = 0; d < 2; ++d) {
        auto& dir = dirs[d];
        const double phi_donor =
            cfg_.rig.rows[static_cast<std::size_t>(dir.donor_row)].rotor ? omega * step_time
                                                                         : 0.0;
        const double phi_target =
            cfg_.rig.rows[static_cast<std::size_t>(dir.target_row)].rotor
                ? omega * step_time
                : 0.0;
        const double rotation = phi_donor - phi_target;
        const double cr = std::cos(rotation), sr = std::sin(rotation);

        if (dir.mixing) dir.mixing->average(dir.donor_payload);
        for (std::size_t h = 0; h < dir.tgt_ranks.size(); ++h) {
          const auto& tgids = dir.tgt_gids[h];
          payload.assign(tgids.size() * static_cast<std::size_t>(kPayload), 0.0);
          for (std::size_t i = 0; i < tgids.size(); ++i) {
            const auto g = static_cast<std::size_t>(tgids[i]);
            const double r = dir.target->rtheta[g * 2 + 0];
            const double th = dir.target->rtheta[g * 2 + 1];
            double* dst = payload.data() + i * static_cast<std::size_t>(kPayload);
            if (dir.mixing) {
              // Mixing plane: ring-averaged state, no rotation dependence.
              dir.mixing->evaluate(static_cast<int>(g % static_cast<std::size_t>(
                                                            dir.target->nr)),
                                   th, dst);
              continue;
            }
            const Stencil st = dir.interp->stencil(r, th, rotation);
            for (int s = 0; s < kPayload; ++s) dst[s] = 0.0;
            for (int n = 0; n < st.count; ++n) {
              const double* src = dir.donor_payload.data() +
                                  static_cast<std::size_t>(st.face[static_cast<std::size_t>(n)]) *
                                      kPayload;
              for (int s = 0; s < kPayload; ++s) {
                dst[s] += st.weight[static_cast<std::size_t>(n)] * src[s];
              }
            }
            // Rotate the (y, z) momentum components by the relative angle
            // ("interpolated, after appropriate rotation", paper §II-C).
            const double my = dst[2], mz = dst[3];
            dst[2] = cr * my - sr * mz;
            dst[3] = sr * my + cr * mz;
          }
          guarded_transfer("CU", iface, d, dir.tgt_ranks[h], [&] {
            send_ghost(world_, dir.tgt_ranks[h], iface, d, tgids, payload,
                       cfg_.op2cfg.zero_copy_transport);
          });
        }
      }
    }
  }

  stats_.cu_idle_seconds = idle_sw.total();
  stats_.search_seconds = search_sw.total();
  stats_.candidates =
      dirs[0].interp->candidates_tested() + dirs[1].interp->candidates_tested();
}

void CoupledRig::reset_stats() {
  if (ctx_) ctx_->reset_stats();
  RankStats fresh;
  fresh.world_rank = stats_.world_rank;
  fresh.is_cu = stats_.is_cu;
  fresh.row_or_iface = stats_.row_or_iface;
  fresh.owned_cells = stats_.owned_cells;
  stats_ = fresh;
}

bool CoupledRig::save_state(const std::string& prefix) {
  // Each row's HS group saves within its own sub-communicator; rank 0 of
  // each session writes its row's files. CU ranks have nothing to save.
  bool ok = true;
  if (solver_) {
    ok = solver_->save_state(prefix + "_row" + std::to_string(role_.row));
  }
  // Make the result world-consistent.
  return world_.allreduce(ok ? 1 : 0, [](int a, int b) { return a & b; }) != 0;
}

bool CoupledRig::load_state(const std::string& prefix) {
  bool ok = true;
  if (solver_) {
    ok = solver_->load_state(prefix + "_row" + std::to_string(role_.row));
  }
  // Resume the shared physical clock (CUs included) from row 0's state;
  // world rank 0 is always an HS rank of row 0.
  double t = solver_ ? solver_->physical_time() : 0.0;
  t = world_.bcast_value(t, 0);
  base_time_ = t;
  return world_.allreduce(ok ? 1 : 0, [](int a, int b) { return a & b; }) != 0;
}

std::vector<RankStats> CoupledRig::collect(minimpi::Comm& world, const RankStats& mine) {
  const auto all = world.gatherv(std::span<const RankStats>(&mine, 1), 0);
  return all;  // empty on non-root ranks
}

}  // namespace vcgt::jm76
