#pragma once
// Flow and solver configuration for the hydra mini-URANS solver.
//
// The solver mirrors the structure the paper describes for Rolls-Royce's
// Hydra (§III): an unstructured finite-volume discretization of the
// compressible RANS equations, explicit Runge-Kutta pseudo-time inner
// iterations nested in a dual-time-stepping outer loop (BDF2 in physical
// time), with a Spalart-Allmaras-type one-equation turbulence model.
#include <cmath>

namespace vcgt::hydra {

struct FlowConfig {
  // Gas.
  double gamma = 1.4;
  double gas_constant = 287.05;  ///< J/(kg K)

  // Inflow reference state (subsonic axial inflow, paper §IV-A2 enforces
  // subsonic pressure conditions at inlet/outlet).
  double rho_in = 1.20;     ///< kg/m^3
  double u_axial_in = 80.0; ///< m/s
  double p_in = 101325.0;   ///< Pa

  /// Outlet static back-pressure ratio p_back / p_in. >1 throttles the
  /// compressor (the rig operates against a pressure rise).
  double p_back_ratio = 1.0;

  // Time integration.
  double cfl = 0.8;          ///< pseudo-time CFL for the RK inner iterations
  /// CFL ramping: start at cfl_start and grow geometrically to `cfl` over
  /// `cfl_ramp_iters` pseudo-iterations (robust cold starts; 0 disables).
  double cfl_start = 0.0;
  int cfl_ramp_iters = 0;
  int rk_stages = 3;         ///< low-storage RK stage count
  /// Run each RK stage's loop pipeline (residual assembly + update) through
  /// a declared op2::LoopChain (DESIGN.md §10): fused halo epochs per
  /// segment and tile-interleaved execution. Results are bit-identical to
  /// the unchained per-loop path (tested) whenever that path folds in flat
  /// ascending order — serial runs, and distributed runs with
  /// op2::Config::latency_hiding off. Distributed latency hiding reorders
  /// the solo path's increment folds (core/tail split), so there the two
  /// paths agree at rounding level only. Disable to fall back.
  bool chain_rk = true;
  /// Pre-partition face renumbering: sort the interior faces by their
  /// highest-numbered cell, so contiguous face index ranges track contiguous
  /// cell ranges. The row mesh generator orders faces by family
  /// (axial/radial/tangential blocks), which makes early chain tiles of a
  /// face member depend on far-apart cells; sorting tightens the chain
  /// planner's aligned tile frontiers so a face tile's cells are still
  /// cache-hot from the producing member's matching tile. Off by default:
  /// it permutes the face set's increment fold order, which changes results
  /// at rounding level against runs without it. Chained vs unchained under
  /// the same setting stay bit-identical whenever the unchained path folds
  /// in flat ascending order (serial, or latency_hiding off — see
  /// FlowConfig::chain_rk); the family ordering this replaces happens to
  /// keep even the latency-hiding core/tail split order-compatible, while
  /// the sorted order does not at >2 ranks.
  bool sort_faces = false;
  int inner_iters = 10;      ///< pseudo-time iterations per physical step
  double dt_phys = 2.75e-6;  ///< physical (outer) step [s]; paper Table IV setup

  /// Implicit pseudo-time (DESIGN.md §11): each inner iteration solves the
  /// linearized system M·dq = res with vcgt::krylov (CG over op2 par_loops,
  /// stencil SpMV through the fused-halo LoopChain) instead of marching
  /// explicit RK stages. M is the first-order spectral-radius Jacobian
  /// approximation — SPD and diagonally dominant — so the pseudo-time CFL
  /// can sit orders of magnitude above the explicit stability bound.
  bool implicit_dual_time = false;
  /// Pseudo-CFL for the implicit march. Sits an order of magnitude above
  /// the explicit stability bound, but not arbitrarily high: M is only the
  /// first-order spectral-radius linearization (no pressure coupling), so
  /// at large pseudo-CFL the step approaches an inexact Newton update that
  /// overshoots the true residual slope and the outer march diverges — and
  /// the edge tightens as the mesh resolves more of what the linearization
  /// misses. O(5) is robust across the rig meshes (bench_krylov --icfl
  /// sweeps the edge).
  double implicit_cfl = 5.0;
  int implicit_max_iters = 100;   ///< Krylov iteration cap per inner step
  double implicit_rtol = 1e-4;    ///< Krylov relative residual tolerance

  /// Steady RANS mode (the industrial baseline of paper §I/II): no dual-time
  /// term, pure local-time-stepping pseudo-time march to convergence; used
  /// with mixing-plane interfaces and circumferential averaging.
  bool steady = false;

  /// Discrete blade wakes: modulates the blade force circumferentially with
  /// the blade count, locked to the row's frame (rotor wakes rotate with the
  /// shaft). This creates the genuine unsteady rotor-stator interaction that
  /// URANS + sliding planes resolve and steady RANS + mixing planes average
  /// away (the paper's motivation, §I). 0 = smooth actuator ring.
  double blade_wake_frac = 0.0;

  // Blade-force model (substitution for the proprietary blade geometry; see
  // DESIGN.md). Forces relax tangential velocity toward a per-row target.
  double blade_relax = 0.2e-3;  ///< relaxation time scale tau [s]
  /// Rotor target absolute swirl as a fraction of local blade speed (0.5 ~
  /// 50% reaction stage); stators/vanes relax toward `stator_swirl_frac`.
  double rotor_swirl_frac = 0.5;
  double stator_swirl_frac = 0.1;
  /// Actuator-disk axial loading of rotor rows: each rotor applies an axial
  /// body force of `rotor_axial_load * 0.5 * rho * U^2 / L_row` (U = local
  /// blade speed), the per-stage pressure-rise capability that lets the
  /// compressor pump against the throttle (DESIGN.md substitution note).
  double rotor_axial_load = 0.0;

  /// Convective flux scheme: Rusanov (robust, most dissipative) or Roe with
  /// Harten entropy fix (sharper waves, Hydra's upwind family).
  enum class FluxScheme { Rusanov, Roe };
  FluxScheme flux_scheme = FluxScheme::Rusanov;

  // Spatial accuracy: MUSCL reconstruction from Green-Gauss cell gradients
  // with Barth-Jespersen limiting (Hydra's schemes are 2nd order; the
  // 1st-order default is the robust fallback).
  bool second_order = false;

  // Viscous terms: laminar + Spalart-Allmaras eddy viscosity (RANS proper;
  // off = Euler + SA transport only).
  bool viscous = false;
  double mu_laminar = 1.8e-5;  ///< [Pa s]
  double prandtl = 0.72;
  double prandtl_turb = 0.9;
  /// Hub/casing wall treatment when viscous: slip (default, Euler walls) or
  /// no-slip wall shear from the wall-distance law-of-the-wall-lite model.
  bool no_slip_walls = false;

  // Inlet specification: fixed state (default) or reservoir total
  // conditions with the static state derived from the interior velocity
  // (subsonic characteristic treatment).
  bool inlet_total_conditions = false;
  double inlet_p0 = 104000.0;  ///< [Pa]
  double inlet_t0 = 290.0;     ///< [K]

  // Simplified Spalart-Allmaras closure.
  double sa_cb1 = 0.1355;
  double sa_cw1 = 3.24;      ///< cb1/kappa^2 + (1+cb2)/sigma
  double sa_sigma = 2.0 / 3.0;
  double sa_cv1 = 7.1;
  double sa_nut_in = 3e-5;   ///< inflow working variable [m^2/s]

  [[nodiscard]] double cp() const { return gamma * gas_constant / (gamma - 1.0); }

  [[nodiscard]] double p_back() const { return p_back_ratio * p_in; }
  [[nodiscard]] double sound_speed_in() const { return std::sqrt(gamma * p_in / rho_in); }
  [[nodiscard]] double energy_in() const {
    return p_in / (gamma - 1.0) + 0.5 * rho_in * u_axial_in * u_axial_in;
  }
};

}  // namespace vcgt::hydra
