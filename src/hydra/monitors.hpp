#pragma once
// Time-series convergence/operating-point monitors for a RowSolver — the
// run-history bookkeeping every production CFD campaign keeps (residual
// traces, mass-flow balance, shaft power) with CSV export for plotting.
#include <cmath>
#include <string>
#include <vector>

#include "src/hydra/solver.hpp"
#include "src/util/table.hpp"

namespace vcgt::hydra {

class MonitorRecorder {
 public:
  struct Record {
    int step = 0;
    double time = 0.0;      ///< physical time [s]
    double rms = 0.0;       ///< residual rms
    double mdot_in = 0.0;   ///< inlet mass flow (negative = entering)
    double mdot_out = 0.0;  ///< outlet mass flow
    double mean_p = 0.0;    ///< volume-mean static pressure
    double power = 0.0;     ///< shaft power [W]
  };

  explicit MonitorRecorder(RowSolver& solver) : solver_(&solver) {}

  /// Samples every monitor (collective — all ranks of the session call).
  const Record& sample(int step) {
    Record r;
    r.step = step;
    r.time = solver_->physical_time();
    r.rms = solver_->residual_rms();
    r.mdot_in = solver_->mass_flow(rig::BoundaryGroup::Inlet);
    r.mdot_out = solver_->mass_flow(rig::BoundaryGroup::Outlet);
    r.mean_p = solver_->mean_pressure();
    r.power = solver_->shaft_power();
    history_.push_back(r);
    return history_.back();
  }

  [[nodiscard]] const std::vector<Record>& history() const { return history_; }

  /// Relative mass-flow imbalance |in + out| / |out| of the latest sample —
  /// the conservation health check.
  [[nodiscard]] double mass_imbalance() const {
    if (history_.empty()) return 0.0;
    const auto& r = history_.back();
    const double denom = std::max(std::fabs(r.mdot_out), 1e-300);
    return std::fabs(r.mdot_in + r.mdot_out) / denom;
  }

  /// Residual drop of the latest sample relative to the first.
  [[nodiscard]] double convergence_ratio() const {
    if (history_.size() < 2) return 1.0;
    return history_.back().rms / std::max(history_.front().rms, 1e-300);
  }

  /// Writes the history as CSV (call on one rank).
  bool write_csv(const std::string& path) const {
    util::Table t({"step", "time", "rms", "mdot_in", "mdot_out", "mean_p", "power"});
    for (const auto& r : history_) {
      t.add_row({std::to_string(r.step), util::Table::num(r.time, 8),
                 util::Table::num(r.rms, 4), util::Table::num(r.mdot_in, 4),
                 util::Table::num(r.mdot_out, 4), util::Table::num(r.mean_p, 2),
                 util::Table::num(r.power, 1)});
    }
    return util::write_csv(t, path);
  }

 private:
  RowSolver* solver_;
  std::vector<Record> history_;
};

}  // namespace vcgt::hydra
