#include "src/hydra/solver.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "src/op2/io.hpp"
#include "src/util/log.hpp"
#include "src/util/trace.hpp"

namespace vcgt::hydra {

using op2::Access;
using op2::index_t;
using rig::BoundaryGroup;

namespace {
constexpr std::size_t kGroups = 4;
std::size_t gi(BoundaryGroup g) { return static_cast<std::size_t>(g); }
const char* group_tag(BoundaryGroup g) {
  switch (g) {
    case BoundaryGroup::Inlet: return "inlet";
    case BoundaryGroup::Outlet: return "outlet";
    case BoundaryGroup::Hub: return "hub";
    case BoundaryGroup::Casing: return "casing";
  }
  return "?";
}
}  // namespace

RowSolver::RowSolver(op2::Context& ctx, const rig::AnnulusMesh& mesh,
                     const rig::RowSpec& row, double omega, const FlowConfig& cfg)
    : ctx_(ctx), row_(row), cfg_(cfg), omega_(omega), pfx_(row.name + ":") {
  declare(mesh, nullptr);
}

RowSolver::RowSolver(op2::Context& ctx, const rig::RowShard& shard,
                     const rig::RowSpec& row, double omega, const FlowConfig& cfg)
    : ctx_(ctx), row_(row), cfg_(cfg), omega_(omega), pfx_(row.name + ":") {
  declare(shard.local, &shard);
}

void RowSolver::set_coupled(rig::BoundaryGroup group, bool coupled) {
  if (group != BoundaryGroup::Inlet && group != BoundaryGroup::Outlet) {
    throw std::invalid_argument("RowSolver::set_coupled: only Inlet/Outlet can couple");
  }
  coupled_[gi(group)] = coupled;
}

op2::Dat<double>& RowSolver::ghost(rig::BoundaryGroup g) {
  auto* d = ghost_[gi(g)];
  if (!d) throw std::logic_error("RowSolver::ghost: group has no ghost dat");
  return *d;
}

void RowSolver::declare(const rig::AnnulusMesh& mesh, const rig::RowShard* shard) {
  // In sharded mode `mesh` is the shard-local view (shard->local): its
  // arrays hold only this rank's rows and its map tables hold shard-local
  // cell rows, exactly what decl_map expects after decl_set_sharded. The
  // geometry/BC code below is identical in both modes because every loop
  // here runs over whichever rows the mesh view carries.
  if (shard) {
    if (cfg_.sort_faces) {
      throw std::logic_error(
          "RowSolver: sort_faces requires the full face table on every rank "
          "and is not supported with sharded setup (row '" + row_.name + "')");
    }
    if (cfg_.implicit_dual_time) {
      throw std::logic_error(
          "RowSolver: implicit_dual_time builds a whole-mesh Krylov stencil "
          "and is not supported with sharded setup (row '" + row_.name + "')");
    }
  }
  ncell_global_ = shard ? shard->ncell_global : mesh.ncell;
  cells_ = shard ? &ctx_.decl_set_sharded(pfx_ + "cells", shard->ncell_global,
                                          shard->cell_gids)
                 : &ctx_.decl_set(pfx_ + "cells", mesh.ncell);
  faces_ = shard ? &ctx_.decl_set_sharded(pfx_ + "faces", shard->nface_global,
                                          shard->face_gids)
                 : &ctx_.decl_set(pfx_ + "faces", mesh.nface);

  f2c_ = &ctx_.decl_map(pfx_ + "f2c", *faces_, *cells_, 2, mesh.face2cell);

  cc_ = &ctx_.decl_dat<double>(*cells_, 3, pfx_ + "cc", mesh.cell_center);
  vol_ = &ctx_.decl_dat<double>(*cells_, 1, pfx_ + "vol", mesh.cell_vol);
  rtheta_ = &ctx_.decl_dat<double>(*cells_, 2, pfx_ + "rtheta", mesh.cell_rtheta);

  // Wall distance for the SA closure: annulus passage -> analytic distance
  // to the local hub/casing (the paper's meshes carry precomputed wall
  // distance too).
  std::vector<double> wd(static_cast<std::size_t>(mesh.ncell));
  for (index_t c = 0; c < mesh.ncell; ++c) {
    const double r = mesh.cell_rtheta[static_cast<std::size_t>(c) * 2];
    const double x = mesh.cell_center[static_cast<std::size_t>(c) * 3];
    wd[static_cast<std::size_t>(c)] =
        std::max(1e-6, std::min(r - row_.hub_at(x), row_.casing_at(x) - r));
  }
  wdist_ = &ctx_.decl_dat<double>(*cells_, 1, pfx_ + "wdist", std::move(wd));

  q_ = &ctx_.decl_dat<double>(*cells_, kNState, pfx_ + "q");
  q0_ = &ctx_.decl_dat<double>(*cells_, kNState, pfx_ + "q0");
  qold_ = &ctx_.decl_dat<double>(*cells_, kNState, pfx_ + "qold");
  qold2_ = &ctx_.decl_dat<double>(*cells_, kNState, pfx_ + "qold2");
  res_ = &ctx_.decl_dat<double>(*cells_, kNState, pfx_ + "res");
  ws_ = &ctx_.decl_dat<double>(*cells_, 1, pfx_ + "ws");
  dtl_ = &ctx_.decl_dat<double>(*cells_, 1, pfx_ + "dtl");
  nut_ = &ctx_.decl_dat<double>(*cells_, 1, pfx_ + "nut");
  nut0_ = &ctx_.decl_dat<double>(*cells_, 1, pfx_ + "nut0");
  nut_res_ = &ctx_.decl_dat<double>(*cells_, 1, pfx_ + "nut_res");

  gradq_ = &ctx_.decl_dat<double>(*cells_, kNState * 3, pfx_ + "gradq");
  gradp_ = &ctx_.decl_dat<double>(*cells_, 4 * 3, pfx_ + "gradp");
  gradnut_ = &ctx_.decl_dat<double>(*cells_, 3, pfx_ + "gradnut");
  qmin_ = &ctx_.decl_dat<double>(*cells_, kNState, pfx_ + "qmin");
  qmax_ = &ctx_.decl_dat<double>(*cells_, kNState, pfx_ + "qmax");
  lim_ = &ctx_.decl_dat<double>(*cells_, kNState, pfx_ + "lim");

  fnorm_ = &ctx_.decl_dat<double>(*faces_, 3, pfx_ + "fnorm", mesh.face_normal);
  fcent_ = &ctx_.decl_dat<double>(*faces_, 3, pfx_ + "fcent", mesh.face_center);

  if (cfg_.sort_faces) {
    // Interior faces carry only f2c/fnorm/fcent, all declared above, so the
    // renumbering rewrites everything that references the set.
    const index_t nf = mesh.nface;
    std::vector<index_t> order(static_cast<std::size_t>(nf));
    std::iota(order.begin(), order.end(), index_t{0});
    const auto key = [&](index_t f) {
      return std::max(mesh.face2cell[static_cast<std::size_t>(f) * 2],
                      mesh.face2cell[static_cast<std::size_t>(f) * 2 + 1]);
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](index_t a, index_t b) { return key(a) < key(b); });
    std::vector<index_t> perm(static_cast<std::size_t>(nf));
    for (index_t k = 0; k < nf; ++k) {
      perm[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] = k;
    }
    ctx_.renumber_set(*faces_, perm);
  }

  // Boundary groups as separate sets (group-specific kernels iterate their
  // own set, the unstructured-FV idiom OP2-Hydra uses for BC loops).
  for (std::size_t g = 0; g < kGroups; ++g) {
    const auto group = static_cast<BoundaryGroup>(g);
    const index_t begin = mesh.group_begin[g];
    const index_t end = mesh.group_end[g];
    const index_t n = end - begin;
    auto& set = shard ? ctx_.decl_set_sharded(pfx_ + std::string(group_tag(group)),
                                              shard->nbface_global[g], shard->bface_gids[g])
                      : ctx_.decl_set(pfx_ + std::string(group_tag(group)), n);
    bsets_[g] = &set;

    std::vector<index_t> b2c(static_cast<std::size_t>(n));
    std::vector<double> norm(static_cast<std::size_t>(n) * 3);
    for (index_t b = 0; b < n; ++b) {
      b2c[static_cast<std::size_t>(b)] = mesh.bface2cell[static_cast<std::size_t>(begin + b)];
      for (int d = 0; d < 3; ++d) {
        norm[static_cast<std::size_t>(b) * 3 + static_cast<std::size_t>(d)] =
            mesh.bface_normal[static_cast<std::size_t>(begin + b) * 3 +
                              static_cast<std::size_t>(d)];
      }
    }
    b2c_[g] = &ctx_.decl_map(pfx_ + std::string(group_tag(group)) + "_b2c", set, *cells_, 1,
                             std::move(b2c));
    bnorm_[g] = &ctx_.decl_dat<double>(set, 3, pfx_ + std::string(group_tag(group)) + "_norm",
                                       std::move(norm));
    if (group == BoundaryGroup::Inlet || group == BoundaryGroup::Outlet) {
      ghost_[g] = &ctx_.decl_dat<double>(set, kPayload,
                                         pfx_ + std::string(group_tag(group)) + "_ghost");
    }
  }

  if (cfg_.implicit_dual_time) {
    // Cell-neighbor stencil from the interior face graph: slot 0 the
    // diagonal, slots 1.. the face neighbors with their outward area
    // vectors; unused slots stay (self, zero-vector) pads, which the
    // spectral-radius assembly maps to a zero coefficient (zero-area
    // wavespeed) so no pad branch is needed anywhere.
    const auto nc = static_cast<std::size_t>(mesh.ncell);
    std::vector<std::vector<std::pair<index_t, std::array<double, 3>>>> adj(nc);
    for (index_t f = 0; f < mesh.nface; ++f) {
      const auto fs = static_cast<std::size_t>(f);
      const index_t cl = mesh.face2cell[fs * 2];
      const index_t cr = mesh.face2cell[fs * 2 + 1];
      const std::array<double, 3> a{mesh.face_normal[fs * 3], mesh.face_normal[fs * 3 + 1],
                                    mesh.face_normal[fs * 3 + 2]};
      adj[static_cast<std::size_t>(cl)].push_back({cr, a});
      adj[static_cast<std::size_t>(cr)].push_back({cl, {-a[0], -a[1], -a[2]}});
    }
    std::size_t deg = 0;
    for (const auto& row : adj) deg = std::max(deg, row.size());
    const int width = 1 + static_cast<int>(deg);

    imat_ = krylov::declare_stencil(
        ctx_, *cells_, width, pfx_ + "imat",
        [&adj](index_t row, std::span<index_t> cols, std::span<double>) {
          const auto& nb = adj[static_cast<std::size_t>(row)];
          for (std::size_t j = 0; j < nb.size(); ++j) cols[1 + j] = nb[j].first;
        });

    std::vector<double> fg(nc * static_cast<std::size_t>(3 * width), 0.0);
    for (std::size_t c = 0; c < nc; ++c) {
      for (std::size_t j = 0; j < adj[c].size(); ++j) {
        for (std::size_t d = 0; d < 3; ++d) {
          fg[c * static_cast<std::size_t>(3 * width) + (1 + j) * 3 + d] = adj[c][j].second[d];
        }
      }
    }
    fgeom_ = &ctx_.decl_dat<double>(*cells_, 3 * width, pfx_ + "fgeom", std::move(fg));
    dq_ = &ctx_.decl_dat<double>(*cells_, kNState, pfx_ + "dq");
    ksolver_ = std::make_unique<krylov::Solver>(ctx_, imat_, kNState, pfx_ + "ksolve");
  }
}

void RowSolver::initialize() {
  // Full re-initialization contract (warm session reuse): clock and CFL-ramp
  // state restart along with the flow field, so a second run on a recycled
  // solver is indistinguishable from a fresh construction.
  time_ = 0.0;
  inner_count_ = 0;
  const double rho = cfg_.rho_in, u = cfg_.u_axial_in, E = cfg_.energy_in();
  const double nut_in = cfg_.sa_nut_in;

  op2::par_loop((pfx_ + "init_flow").c_str(), *cells_,
                [rho, u, E, nut_in](double* q, double* q0, double* qo, double* qo2,
                                    double* nut) {
                  q[0] = rho;
                  q[1] = rho * u;
                  q[2] = 0.0;
                  q[3] = 0.0;
                  q[4] = E;
                  for (int s = 0; s < kNState; ++s) {
                    q0[s] = q[s];
                    qo[s] = q[s];
                    qo2[s] = q[s];
                  }
                  *nut = nut_in;
                },
                op2::write(*q_), op2::write(*q0_),
                op2::write(*qold_), op2::write(*qold2_),
                op2::write(*nut_));

  for (const auto group : {BoundaryGroup::Inlet, BoundaryGroup::Outlet}) {
    op2::par_loop((pfx_ + group_tag(group) + "_ghost_init").c_str(), *bsets_[gi(group)],
                  [rho, u, E, nut_in](double* gh) {
                    gh[0] = rho;
                    gh[1] = rho * u;
                    gh[2] = 0.0;
                    gh[3] = 0.0;
                    gh[4] = E;
                    gh[5] = nut_in;
                  },
                  op2::write(*ghost_[gi(group)]));
  }
}

void RowSolver::flux_and_sources(int stage, op2::LoopChain* chain) {
  (void)stage;
  const double gamma = cfg_.gamma;

  // Pipeline emitter: the same loops either run immediately (unchained
  // per-loop path) or are declared as members of the RK stage chain, whose
  // planner fuses their halo exchanges and tiles their execution.
  auto emit = [&](const std::string& name, op2::Set& set, auto kernel, auto... args) {
    if (chain) {
      chain->add(name.c_str(), set, std::move(kernel), args...);
    } else {
      op2::par_loop(name.c_str(), set, std::move(kernel), args...);
    }
  };

  emit(pfx_ + "zero_res", *cells_,
       [](double* r, double* nr) {
         for (int s = 0; s < kNState; ++s) r[s] = 0.0;
         *nr = 0.0;
       },
       op2::write(*res_), op2::write(*nut_res_));

  // --- gradients (Green-Gauss), limiter ------------------------------------
  const bool need_grad = cfg_.second_order || cfg_.viscous;
  if (need_grad) {
    const double gas_r = cfg_.gas_constant;
    emit(pfx_ + "grad_init", *cells_,
                  [](const double* q, double* gq, double* gp, double* gn, double* mn,
                     double* mx, double* lm) {
                    for (int i = 0; i < kNState * 3; ++i) gq[i] = 0.0;
                    for (int i = 0; i < 12; ++i) gp[i] = 0.0;
                    for (int i = 0; i < 3; ++i) gn[i] = 0.0;
                    for (int s = 0; s < kNState; ++s) {
                      mn[s] = q[s];
                      mx[s] = q[s];
                      lm[s] = 1.0;
                    }
                  },
                  op2::read(*q_), op2::write(*gradq_),
                  op2::write(*gradp_), op2::write(*gradnut_),
                  op2::write(*qmin_), op2::write(*qmax_),
                  op2::write(*lim_));

    // Per-face Green-Gauss accumulation (conservative, primitive and SA
    // gradients in one sweep) with neighborhood min/max for the limiter.
    emit(
        pfx_ + "grad_face", *faces_,
        [gamma, gas_r](const double* ql, const double* qr, const double* nl,
                       const double* nr_, const double* area, double* gql, double* gqr,
                       double* gpl, double* gpr, double* gnl, double* gnr, double* mnl,
                       double* mnr, double* mxl, double* mxr) {
          double qf[kNState], pf[4];
          for (int s = 0; s < kNState; ++s) qf[s] = 0.5 * (ql[s] + qr[s]);
          auto prim = [&](const double* q, double* p) {
            p[0] = q[1] / q[0];
            p[1] = q[2] / q[0];
            p[2] = q[3] / q[0];
            p[3] = pressure(q, gamma) / (q[0] * gas_r);
          };
          double pl[4], pr[4];
          prim(ql, pl);
          prim(qr, pr);
          for (int v = 0; v < 4; ++v) pf[v] = 0.5 * (pl[v] + pr[v]);
          const double nf = 0.5 * (*nl + *nr_);
          for (int d = 0; d < 3; ++d) {
            for (int s = 0; s < kNState; ++s) {
              gql[s * 3 + d] += qf[s] * area[d];
              gqr[s * 3 + d] -= qf[s] * area[d];
            }
            for (int v = 0; v < 4; ++v) {
              gpl[v * 3 + d] += pf[v] * area[d];
              gpr[v * 3 + d] -= pf[v] * area[d];
            }
            gnl[d] += nf * area[d];
            gnr[d] -= nf * area[d];
          }
          for (int s = 0; s < kNState; ++s) {
            if (qr[s] < mnl[s]) mnl[s] = qr[s];
            if (qr[s] > mxl[s]) mxl[s] = qr[s];
            if (ql[s] < mnr[s]) mnr[s] = ql[s];
            if (ql[s] > mxr[s]) mxr[s] = ql[s];
          }
        },
        op2::read(*q_, *f2c_, 0), op2::read(*q_, *f2c_, 1),
        op2::read(*nut_, *f2c_, 0), op2::read(*nut_, *f2c_, 1),
        op2::read(*fnorm_), op2::inc(*gradq_, *f2c_, 0),
        op2::inc(*gradq_, *f2c_, 1), op2::inc(*gradp_, *f2c_, 0),
        op2::inc(*gradp_, *f2c_, 1), op2::inc(*gradnut_, *f2c_, 0),
        op2::inc(*gradnut_, *f2c_, 1), op2::inc(*qmin_, *f2c_, 0),
        op2::inc(*qmin_, *f2c_, 1), op2::inc(*qmax_, *f2c_, 0),
        op2::inc(*qmax_, *f2c_, 1));

    // Boundary closure of the Green-Gauss integral: cell value on walls
    // (zero normal gradient), ghost average on inlet/outlet.
    for (const auto group : {BoundaryGroup::Inlet, BoundaryGroup::Outlet}) {
      emit(
          pfx_ + group_tag(group) + "_grad", *bsets_[gi(group)],
          [gamma, gas_r](const double* q, const double* nut, const double* gh,
                         const double* area, double* gq, double* gp, double* gn) {
            for (int d = 0; d < 3; ++d) {
              for (int s = 0; s < kNState; ++s) {
                gq[s * 3 + d] += 0.5 * (q[s] + gh[s]) * area[d];
              }
              const double u = 0.5 * (q[1] / q[0] + gh[1] / gh[0]);
              const double v = 0.5 * (q[2] / q[0] + gh[2] / gh[0]);
              const double w = 0.5 * (q[3] / q[0] + gh[3] / gh[0]);
              const double t = 0.5 * (pressure(q, gamma) / (q[0] * gas_r) +
                                      pressure(gh, gamma) / (gh[0] * gas_r));
              gp[0 * 3 + d] += u * area[d];
              gp[1 * 3 + d] += v * area[d];
              gp[2 * 3 + d] += w * area[d];
              gp[3 * 3 + d] += t * area[d];
              gn[d] += 0.5 * (*nut + gh[kNState]) * area[d];
            }
          },
          op2::read(*q_, *b2c_[gi(group)], 0),
          op2::read(*nut_, *b2c_[gi(group)], 0),
          op2::read(*ghost_[gi(group)]),
          op2::read(*bnorm_[gi(group)]),
          op2::inc(*gradq_, *b2c_[gi(group)], 0),
          op2::inc(*gradp_, *b2c_[gi(group)], 0),
          op2::inc(*gradnut_, *b2c_[gi(group)], 0));
    }
    for (const auto group : {BoundaryGroup::Hub, BoundaryGroup::Casing}) {
      emit(
          pfx_ + group_tag(group) + "_grad", *bsets_[gi(group)],
          [gamma, gas_r](const double* q, const double* nut, const double* area,
                         double* gq, double* gp, double* gn) {
            for (int d = 0; d < 3; ++d) {
              for (int s = 0; s < kNState; ++s) gq[s * 3 + d] += q[s] * area[d];
              gp[0 * 3 + d] += q[1] / q[0] * area[d];
              gp[1 * 3 + d] += q[2] / q[0] * area[d];
              gp[2 * 3 + d] += q[3] / q[0] * area[d];
              gp[3 * 3 + d] += pressure(q, gamma) / (q[0] * gas_r) * area[d];
              gn[d] += *nut * area[d];
            }
          },
          op2::read(*q_, *b2c_[gi(group)], 0),
          op2::read(*nut_, *b2c_[gi(group)], 0),
          op2::read(*bnorm_[gi(group)]),
          op2::inc(*gradq_, *b2c_[gi(group)], 0),
          op2::inc(*gradp_, *b2c_[gi(group)], 0),
          op2::inc(*gradnut_, *b2c_[gi(group)], 0));
    }

    emit(pfx_ + "grad_scale", *cells_,
                  [](const double* vol, double* gq, double* gp, double* gn) {
                    const double inv = 1.0 / *vol;
                    for (int i = 0; i < kNState * 3; ++i) gq[i] *= inv;
                    for (int i = 0; i < 12; ++i) gp[i] *= inv;
                    for (int i = 0; i < 3; ++i) gn[i] *= inv;
                  },
                  op2::read(*vol_), op2::rw(*gradq_),
                  op2::rw(*gradp_),
                  op2::rw(*gradnut_));

    if (cfg_.second_order) {
      // Barth-Jespersen: per cell, per variable, the most restrictive face.
      emit(
          pfx_ + "limiter_face", *faces_,
          [](const double* ql, const double* qr, const double* gql, const double* gqr,
             const double* ccl, const double* ccr, const double* fc, const double* mnl,
             const double* mnr, const double* mxl, const double* mxr, double* lml,
             double* lmr) {
            auto side = [&](const double* q, const double* gq, const double* cc,
                            const double* mn, const double* mx, double* lm) {
              const double dx = fc[0] - cc[0], dy = fc[1] - cc[1], dz = fc[2] - cc[2];
              for (int s = 0; s < kNState; ++s) {
                const double d2 =
                    gq[s * 3] * dx + gq[s * 3 + 1] * dy + gq[s * 3 + 2] * dz;
                // Vote both sites unconditionally so every lane reaches
                // them in the same order (keeps SIMT branch slots aligned
                // across the warp); the limiter's sign split is the RK
                // pipeline's main data-dependent divergence source.
                const bool up = op2::simt::branch(d2 > 1e-14);
                const bool dn = op2::simt::branch(d2 < -1e-14);
                if (up) {
                  const double r = (mx[s] - q[s]) / d2;
                  if (r < lm[s]) lm[s] = r < 0 ? 0.0 : r;
                } else if (dn) {
                  const double r = (mn[s] - q[s]) / d2;
                  if (r < lm[s]) lm[s] = r < 0 ? 0.0 : r;
                }
              }
            };
            side(ql, gql, ccl, mnl, mxl, lml);
            side(qr, gqr, ccr, mnr, mxr, lmr);
          },
          op2::read(*q_, *f2c_, 0), op2::read(*q_, *f2c_, 1),
          op2::read(*gradq_, *f2c_, 0),
          op2::read(*gradq_, *f2c_, 1),
          op2::read(*cc_, *f2c_, 0), op2::read(*cc_, *f2c_, 1),
          op2::read(*fcent_), op2::read(*qmin_, *f2c_, 0),
          op2::read(*qmin_, *f2c_, 1), op2::read(*qmax_, *f2c_, 0),
          op2::read(*qmax_, *f2c_, 1), op2::inc(*lim_, *f2c_, 0),
          op2::inc(*lim_, *f2c_, 1));
    }
  }

  // --- interior face fluxes --------------------------------------------------
  // Rusanov convection (optionally on MUSCL-reconstructed states), SA upwind
  // convection, and — when enabled — viscous stresses with SA eddy
  // viscosity and SA diffusion, all in one sweep: the canonical
  // indirect-increment motif at Hydra's arithmetic intensity.
  {
    const bool second_order = cfg_.second_order;
    const bool viscous = cfg_.viscous;
    const bool use_roe = cfg_.flux_scheme == FlowConfig::FluxScheme::Roe;
    const double mu_l = cfg_.mu_laminar;
    const double cp = cfg_.cp();
    const double k_lam = cp * cfg_.mu_laminar / cfg_.prandtl;
    const double pr_t = cfg_.prandtl_turb;
    const double sa_sigma = cfg_.sa_sigma;
    const double cv1 = cfg_.sa_cv1;
    emit(
        pfx_ + "flux_face", *faces_,
        [gamma, second_order, viscous, use_roe, mu_l, cp, k_lam, pr_t, sa_sigma, cv1](
            const double* ql, const double* qr, const double* nl, const double* nr_,
            const double* gql, const double* gqr, const double* gpl, const double* gpr,
            const double* gnl, const double* gnr, const double* lml, const double* lmr,
            const double* ccl, const double* ccr, const double* area, const double* fc,
            double* rl, double* rr, double* sl, double* sr) {
          double qL[kNState], qR[kNState];
          for (int s = 0; s < kNState; ++s) {
            qL[s] = ql[s];
            qR[s] = qr[s];
          }
          if (second_order) {
            auto reconstruct = [&](const double* q, const double* gq, const double* lm,
                                   const double* cc, double* out) {
              const double dx = fc[0] - cc[0], dy = fc[1] - cc[1], dz = fc[2] - cc[2];
              for (int s = 0; s < kNState; ++s) {
                out[s] = q[s] + lm[s] * (gq[s * 3] * dx + gq[s * 3 + 1] * dy +
                                         gq[s * 3 + 2] * dz);
              }
              // Positivity guard: fall back to first order on bad states.
              if (op2::simt::branch(out[0] < 0.05 * q[0] ||
                                    pressure(out, gamma) <= 0.0)) {
                for (int s = 0; s < kNState; ++s) out[s] = q[s];
              }
            };
            reconstruct(ql, gql, lml, ccl, qL);
            reconstruct(qr, gqr, lmr, ccr, qR);
          }
          double f[kNState];
          if (use_roe) {
            roe_flux(qL, qR, area, gamma, f);
          } else {
            rusanov_flux(qL, qR, area, gamma, f);
          }
          for (int s = 0; s < kNState; ++s) {
            rl[s] -= f[s];
            rr[s] += f[s];
          }
          // SA convection, upwinded on the face-average volume flux.
          const double unl = (ql[1] * area[0] + ql[2] * area[1] + ql[3] * area[2]) / ql[0];
          const double unr = (qr[1] * area[0] + qr[2] * area[1] + qr[3] * area[2]) / qr[0];
          const double un = 0.5 * (unl + unr);
          const double fsa = un > 0 ? un * *nl : un * *nr_;
          *sl -= fsa;
          *sr += fsa;

          if (viscous) {
            const double rho = 0.5 * (ql[0] + qr[0]);
            const double nu_l = mu_l / rho;
            const double nut_f = 0.5 * (*nl + *nr_);
            const double mu_t = rho * nut_f * sa_fv1(nut_f / nu_l, cv1);
            const double mu = mu_l + mu_t;
            // Averaged primitive gradients: rows u, v, w, T.
            double g[4][3];
            for (int v = 0; v < 4; ++v) {
              for (int d = 0; d < 3; ++d) g[v][d] = 0.5 * (gpl[v * 3 + d] + gpr[v * 3 + d]);
            }
            const double div = g[0][0] + g[1][1] + g[2][2];
            double fm[3];
            for (int i = 0; i < 3; ++i) {
              fm[i] = 0.0;
              for (int j = 0; j < 3; ++j) {
                double tau = mu * (g[i][j] + g[j][i]);
                if (i == j) tau -= (2.0 / 3.0) * mu * div;
                fm[i] += tau * area[j];
              }
            }
            const double uf[3] = {0.5 * (ql[1] / ql[0] + qr[1] / qr[0]),
                                  0.5 * (ql[2] / ql[0] + qr[2] / qr[0]),
                                  0.5 * (ql[3] / ql[0] + qr[3] / qr[0])};
            const double k_eff = k_lam + cp * mu_t / pr_t;
            double fe = k_eff * (g[3][0] * area[0] + g[3][1] * area[1] + g[3][2] * area[2]);
            for (int i = 0; i < 3; ++i) fe += uf[i] * fm[i];
            for (int i = 0; i < 3; ++i) {
              rl[1 + i] += fm[i];
              rr[1 + i] -= fm[i];
            }
            rl[4] += fe;
            rr[4] -= fe;
            // SA diffusion: (nu + nu_tilde)/sigma * grad(nu_tilde) . A.
            const double dn = ((nu_l + nut_f) / sa_sigma) *
                              (0.5 * (gnl[0] + gnr[0]) * area[0] +
                               0.5 * (gnl[1] + gnr[1]) * area[1] +
                               0.5 * (gnl[2] + gnr[2]) * area[2]);
            *sl += dn;
            *sr -= dn;
          }
        },
        op2::read(*q_, *f2c_, 0), op2::read(*q_, *f2c_, 1),
        op2::read(*nut_, *f2c_, 0), op2::read(*nut_, *f2c_, 1),
        op2::read(*gradq_, *f2c_, 0), op2::read(*gradq_, *f2c_, 1),
        op2::read(*gradp_, *f2c_, 0), op2::read(*gradp_, *f2c_, 1),
        op2::read(*gradnut_, *f2c_, 0),
        op2::read(*gradnut_, *f2c_, 1), op2::read(*lim_, *f2c_, 0),
        op2::read(*lim_, *f2c_, 1), op2::read(*cc_, *f2c_, 0),
        op2::read(*cc_, *f2c_, 1), op2::read(*fnorm_),
        op2::read(*fcent_), op2::inc(*res_, *f2c_, 0),
        op2::inc(*res_, *f2c_, 1), op2::inc(*nut_res_, *f2c_, 0),
        op2::inc(*nut_res_, *f2c_, 1));
  }

  // Physical total-condition inlet (subsonic characteristic treatment):
  // reservoir p0/T0 with the velocity taken from the interior; the static
  // state follows from the isentropic relations. Coupled inlets keep the
  // coupler-provided ghost, fixed-state inlets keep the init-time ghost.
  if (!coupled_[gi(BoundaryGroup::Inlet)] && cfg_.inlet_total_conditions) {
    const double p0 = cfg_.inlet_p0, t0 = cfg_.inlet_t0;
    const double cp = cfg_.cp();
    const double gas_r = cfg_.gas_constant;
    const double nut_in = cfg_.sa_nut_in;
    emit(pfx_ + "inlet_ghost_tc", *bsets_[gi(BoundaryGroup::Inlet)],
                  [gamma, p0, t0, cp, gas_r, nut_in](const double* q, double* gh) {
                    // Interior velocity magnitude, axial inflow direction.
                    const double u2 = (q[1] * q[1] + q[2] * q[2] + q[3] * q[3]) /
                                      (q[0] * q[0]);
                    const double t = std::max(0.2 * t0, t0 - 0.5 * u2 / cp);
                    const double p = p0 * std::pow(t / t0, gamma / (gamma - 1.0));
                    const double rho = p / (gas_r * t);
                    const double u = std::sqrt(u2);
                    gh[0] = rho;
                    gh[1] = rho * u;
                    gh[2] = 0.0;
                    gh[3] = 0.0;
                    gh[4] = p / (gamma - 1.0) + 0.5 * rho * u2;
                    gh[kNState] = nut_in;
                  },
                  op2::read(*q_, *b2c_[gi(BoundaryGroup::Inlet)], 0),
                  op2::rw(*ghost_[gi(BoundaryGroup::Inlet)]));
  }

  // Physical outlet: refresh the ghost from the interior state with the
  // prescribed back pressure (subsonic outflow). Coupled outlets keep the
  // coupler-provided ghost.
  if (!coupled_[gi(BoundaryGroup::Outlet)]) {
    const double p_back = cfg_.p_back();
    emit(pfx_ + "outlet_ghost", *bsets_[gi(BoundaryGroup::Outlet)],
                  [gamma, p_back](const double* q, double* gh) {
                    const double ke =
                        0.5 * (q[1] * q[1] + q[2] * q[2] + q[3] * q[3]) / q[0];
                    gh[0] = q[0];
                    gh[1] = q[1];
                    gh[2] = q[2];
                    gh[3] = q[3];
                    gh[4] = p_back / (gamma - 1.0) + ke;
                    // gh[5] (nut) keeps its previous value: zero-gradient.
                  },
                  op2::read(*q_, *b2c_[gi(BoundaryGroup::Outlet)], 0),
                  op2::rw(*ghost_[gi(BoundaryGroup::Outlet)]));
  }

  // Ghost-based fluxes on inlet/outlet (physical or sliding-plane): Rusanov
  // against the exterior payload, upwinded SA convection on the same face.
  const bool bc_use_roe = cfg_.flux_scheme == FlowConfig::FluxScheme::Roe;
  for (const auto group : {BoundaryGroup::Inlet, BoundaryGroup::Outlet}) {
    emit(pfx_ + group_tag(group) + "_flux", *bsets_[gi(group)],
                  [gamma, bc_use_roe](const double* q, const double* nut, const double* gh,
                                      const double* area, double* r, double* sr) {
                    double f[kNState];
                    if (bc_use_roe) {
                      roe_flux(q, gh, area, gamma, f);
                    } else {
                      rusanov_flux(q, gh, area, gamma, f);
                    }
                    for (int s = 0; s < kNState; ++s) r[s] -= f[s];
                    const double un = (q[1] * area[0] + q[2] * area[1] + q[3] * area[2]) / q[0];
                    const double ung =
                        (gh[1] * area[0] + gh[2] * area[1] + gh[3] * area[2]) / gh[0];
                    const double unm = 0.5 * (un + ung);
                    *sr -= unm > 0 ? unm * *nut : unm * gh[kNState];
                  },
                  op2::read(*q_, *b2c_[gi(group)], 0),
                  op2::read(*nut_, *b2c_[gi(group)], 0),
                  op2::read(*ghost_[gi(group)]),
                  op2::read(*bnorm_[gi(group)]),
                  op2::inc(*res_, *b2c_[gi(group)], 0),
                  op2::inc(*nut_res_, *b2c_[gi(group)], 0));
  }

  // Walls (hub/casing): pressure force always; with viscous no-slip walls
  // an additional wall-shear drag -mu_eff * u_parallel / d per unit area
  // (wall-distance based, adiabatic).
  {
    const bool no_slip = cfg_.viscous && cfg_.no_slip_walls;
    const double mu_l = cfg_.mu_laminar;
    const double cv1 = cfg_.sa_cv1;
    for (const auto group : {BoundaryGroup::Hub, BoundaryGroup::Casing}) {
      emit(
          pfx_ + group_tag(group) + "_flux", *bsets_[gi(group)],
          [gamma, no_slip, mu_l, cv1](const double* q, const double* nut,
                                      const double* dist, const double* area, double* r) {
            const double p = pressure(q, gamma);
            r[1] -= p * area[0];
            r[2] -= p * area[1];
            r[3] -= p * area[2];
            if (no_slip) {
              const double amag =
                  std::sqrt(area[0] * area[0] + area[1] * area[1] + area[2] * area[2]);
              const double nx = area[0] / amag, ny = area[1] / amag, nz = area[2] / amag;
              const double u = q[1] / q[0], v = q[2] / q[0], w = q[3] / q[0];
              const double un = u * nx + v * ny + w * nz;
              const double up[3] = {u - un * nx, v - un * ny, w - un * nz};
              const double nu_l = mu_l / q[0];
              const double mu_eff = mu_l + q[0] * *nut * sa_fv1(*nut / nu_l, cv1);
              const double coeff = mu_eff * amag / *dist;
              r[1] -= coeff * up[0];
              r[2] -= coeff * up[1];
              r[3] -= coeff * up[2];
              // Adiabatic wall: no energy flux (the shear does no work on a
              // stationary wall).
            }
          },
          op2::read(*q_, *b2c_[gi(group)], 0),
          op2::read(*nut_, *b2c_[gi(group)], 0),
          op2::read(*wdist_, *b2c_[gi(group)], 0),
          op2::read(*bnorm_[gi(group)]),
          op2::inc(*res_, *b2c_[gi(group)], 0));
    }
  }

  // Blade-force model: relax tangential momentum toward the row's target
  // swirl; rotors add the corresponding shaft work (DESIGN.md substitution).
  // With blade_wake_frac > 0 the force is modulated at the blade count in
  // the row's own frame — rotor wakes rotate with the shaft, creating the
  // unsteady rotor-stator interaction of the full-annulus URANS problem.
  // Bladeless rows (nblades == 0, e.g. the swan-neck duct) apply no force.
  if (row_.nblades > 0) {
    const double omega = omega_;
    const double tau = cfg_.blade_relax;
    const double frac = row_.rotor ? cfg_.rotor_swirl_frac : cfg_.stator_swirl_frac;
    const bool rotor = row_.rotor;
    const double axial_load =
        row_.rotor ? cfg_.rotor_axial_load / (row_.x_max - row_.x_min) : 0.0;
    const double wake = cfg_.blade_wake_frac;
    const int nblades = row_.nblades;
    const double frame_angle = row_.rotor ? omega_ * time_ : 0.0;
    emit(pfx_ + "blade_force", *cells_,
                  [omega, tau, frac, rotor, axial_load, wake, nblades, frame_angle](
                      const double* q, const double* rt, const double* vol, double* r) {
                    const double rad = rt[0], th = rt[1];
                    const double ty = -std::sin(th), tz = std::cos(th);
                    const double blade_speed = omega * rad;
                    const double mod =
                        1.0 + wake * std::cos(nblades * (th - frame_angle));
                    const double m_theta = q[2] * ty + q[3] * tz;  // rho * w_theta
                    const double f_theta =
                        mod * (q[0] * frac * blade_speed - m_theta) / tau;
                    r[2] += *vol * f_theta * ty;
                    r[3] += *vol * f_theta * tz;
                    if (rotor) {
                      r[4] += *vol * f_theta * blade_speed;
                      // Actuator-disk pressure-rise capability (axial blade
                      // loading) with the corresponding shaft work.
                      const double fx =
                          mod * axial_load * 0.5 * q[0] * blade_speed * blade_speed;
                      r[1] += *vol * fx;
                      r[4] += *vol * fx * (q[1] / q[0]);
                    }
                  },
                  op2::read(*q_), op2::read(*rtheta_),
                  op2::read(*vol_), op2::inc(*res_));
  }

  // Dual time stepping: BDF2 physical-time derivative as a residual source
  // (absent in steady RANS mode, where the pseudo-time march converges to
  // the steady solution directly).
  if (!cfg_.steady) {
    const double inv2dt = 1.0 / (2.0 * cfg_.dt_phys);
    emit(pfx_ + "dualtime_src", *cells_,
                  [inv2dt](const double* q, const double* qo, const double* qo2,
                           const double* vol, double* r) {
                    for (int s = 0; s < kNState; ++s) {
                      r[s] -= *vol * (3.0 * q[s] - 4.0 * qo[s] + qo2[s]) * inv2dt;
                    }
                  },
                  op2::read(*q_), op2::read(*qold_),
                  op2::read(*qold2_), op2::read(*vol_),
                  op2::inc(*res_));
  }

  // Simplified SA source: production against destruction, wall-distance
  // based (DESIGN.md notes the simplification vs. full SA).
  {
    const double cb1 = cfg_.sa_cb1, cw1 = cfg_.sa_cw1;
    emit(pfx_ + "sa_source", *cells_,
                  [cb1, cw1](const double* q, const double* nut, const double* d,
                             const double* vol, double* sr) {
                    const double speed =
                        std::sqrt(q[1] * q[1] + q[2] * q[2] + q[3] * q[3]) / q[0];
                    const double shear = speed / (*d + 1e-3);
                    const double prod = cb1 * shear * *nut;
                    const double ratio = *nut / *d;
                    const double dest = cw1 * ratio * ratio;
                    *sr += *vol * (prod - dest);
                  },
                  op2::read(*q_), op2::read(*nut_),
                  op2::read(*wdist_), op2::read(*vol_),
                  op2::inc(*nut_res_));
  }
}

void RowSolver::wavespeed_and_dt(double cfl, double dt_cap) {
  const double gamma = cfg_.gamma;

  // Local pseudo-time step from the convective spectral radius, clamped for
  // dual-time stability (the BDF2 source is integrated explicitly).
  op2::par_loop((pfx_ + "zero_ws").c_str(), *cells_, [](double* w) { *w = 0.0; },
                op2::write(*ws_));
  op2::par_loop((pfx_ + "ws_face").c_str(), *faces_,
                [gamma](const double* ql, const double* qr, const double* area, double* wl,
                        double* wr) {
                  *wl += face_wavespeed(ql, area, gamma);
                  *wr += face_wavespeed(qr, area, gamma);
                },
                op2::read(*q_, *f2c_, 0), op2::read(*q_, *f2c_, 1),
                op2::read(*fnorm_), op2::inc(*ws_, *f2c_, 0),
                op2::inc(*ws_, *f2c_, 1));
  for (std::size_t g = 0; g < kGroups; ++g) {
    op2::par_loop((pfx_ + group_tag(static_cast<BoundaryGroup>(g)) + "_ws").c_str(),
                  *bsets_[g],
                  [gamma](const double* q, const double* area, double* w) {
                    *w += face_wavespeed(q, area, gamma);
                  },
                  op2::read(*q_, *b2c_[g], 0),
                  op2::read(*bnorm_[g]),
                  op2::inc(*ws_, *b2c_[g], 0));
  }
  op2::par_loop((pfx_ + "local_dt").c_str(), *cells_,
                [cfl, dt_cap](const double* vol, const double* w, double* dt) {
                  *dt = std::min(cfl * *vol / std::max(*w, 1e-12), dt_cap);
                },
                op2::read(*vol_), op2::read(*ws_),
                op2::write(*dtl_));
}

void RowSolver::inner_iteration() {
  if (cfg_.implicit_dual_time) {
    implicit_iteration();
    return;
  }
  trace::Span titer("hydra:inner_iter");

  // CFL ramping for robust cold starts: geometric growth from cfl_start
  // to the target over cfl_ramp_iters pseudo-iterations.
  double cfl = cfg_.cfl;
  if (cfg_.cfl_ramp_iters > 0 && cfg_.cfl_start > 0.0 &&
      inner_count_ < cfg_.cfl_ramp_iters) {
    const double f = static_cast<double>(inner_count_) / cfg_.cfl_ramp_iters;
    cfl = cfg_.cfl_start * std::pow(cfg_.cfl / cfg_.cfl_start, f);
  }
  ++inner_count_;
  // Dual-time stability bounds the pseudo step by the physical step;
  // steady mode has no such bound (pure local time stepping).
  wavespeed_and_dt(cfl, cfg_.steady ? 1e30 : 0.3 * cfg_.dt_phys);

  // RK stage base.
  op2::par_loop((pfx_ + "save_q0").c_str(), *cells_,
                [](const double* q, double* q0, const double* nut, double* nut0) {
                  for (int s = 0; s < kNState; ++s) q0[s] = q[s];
                  *nut0 = *nut;
                },
                op2::read(*q_), op2::write(*q0_),
                op2::read(*nut_), op2::write(*nut0_));

  for (int stage = 0; stage < cfg_.rk_stages; ++stage) {
    trace::Span tstage("hydra:rk_stage");
    tstage.arg("stage", static_cast<double>(stage));
    const double alpha = 1.0 / static_cast<double>(cfg_.rk_stages - stage);
    auto rk_update = [alpha](const double* q0, const double* r, const double* vol,
                             const double* dt, double* q, const double* nut0,
                             const double* sr, double* nut) {
      const double scale = alpha * *dt / *vol;
      for (int s = 0; s < kNState; ++s) q[s] = q0[s] + scale * r[s];
      // Keep density/energy physical on transients.
      if (op2::simt::branch(q[0] < 1e-3)) q[0] = 1e-3;
      *nut = std::max(0.0, *nut0 + scale * *sr);
    };
    if (cfg_.chain_rk) {
      // The whole stage (residual assembly + update) as one declared chain:
      // the chain planner fuses halo epochs per segment and interleaves the
      // member loops tile-by-tile. alpha lives in the kernel closure, so the
      // plan structure is identical across stages and revalidates cheaply.
      op2::LoopChain chain(ctx_, pfx_ + "rk_stage");
      flux_and_sources(stage, &chain);
      chain.add((pfx_ + "rk_update").c_str(), *cells_, rk_update,
                op2::read(*q0_), op2::read(*res_),
                op2::read(*vol_), op2::read(*dtl_),
                op2::write(*q_), op2::read(*nut0_),
                op2::read(*nut_res_), op2::write(*nut_));
      chain.execute();
    } else {
      flux_and_sources(stage);
      op2::par_loop((pfx_ + "rk_update").c_str(), *cells_, rk_update,
                    op2::read(*q0_), op2::read(*res_),
                    op2::read(*vol_), op2::read(*dtl_),
                    op2::write(*q_), op2::read(*nut0_),
                    op2::read(*nut_res_), op2::write(*nut_));
    }
  }
}

void RowSolver::implicit_iteration() {
  trace::Span titer("hydra:implicit_iter");
  const double gamma = cfg_.gamma;
  ++inner_count_;

  // Implicit march: no explicit stability bound, so the pseudo step comes
  // straight from implicit_cfl (an order of magnitude above the RK limit;
  // see FlowConfig::implicit_cfl for why not more).
  wavespeed_and_dt(cfg_.implicit_cfl, 1e30);

  // Right-hand side: the full nonlinear residual (including the BDF2
  // dual-time source when unsteady), exactly the explicit path's increment
  // direction.
  flux_and_sources(0);

  // Spectral-radius Jacobian on the cell stencil (first-order linearization
  // of the Rusanov flux): off-diagonal -1/2 lambda_f per face neighbor,
  // diagonal V/dtau (+ 3V/(2 dt) BDF2 shift when unsteady) + 1/2 of the
  // cell's total wavespeed (interior + boundary closure, already summed in
  // ws_). SPD and strictly diagonally dominant, so CG applies. Pad slots
  // carry a zero area vector -> zero wavespeed -> zero coefficient.
  const int width = imat_.width();
  const double shift = cfg_.steady ? 0.0 : 1.5 / cfg_.dt_phys;
  op2::par_loop((pfx_ + "implicit_assemble").c_str(), *cells_,
                [gamma, width, shift](const double* q, op2::DatSpan<double> qn,
                                      const index_t* cols, const double* fg,
                                      const double* vol, const double* dt,
                                      const double* w, double* a) {
                  a[0] = *vol / *dt + shift * *vol + 0.5 * *w;
                  for (int k = 1; k < width; ++k) {
                    double qnb[kNState];
                    for (int s = 0; s < kNState; ++s) qnb[s] = qn.at(cols[k], s);
                    const double lam = 0.5 * (face_wavespeed(q, fg + 3 * k, gamma) +
                                              face_wavespeed(qnb, fg + 3 * k, gamma));
                    a[k] = -0.5 * lam;
                  }
                },
                op2::read(*q_), op2::read_span(*q_, *imat_.cols), op2::row(*imat_.cols),
                op2::read(*fgeom_), op2::read(*vol_), op2::read(*dtl_), op2::read(*ws_),
                op2::write(*imat_.a));

  op2::par_loop((pfx_ + "zero_dq").c_str(), *cells_,
                [](double* d) {
                  for (int s = 0; s < kNState; ++s) d[s] = 0.0;
                },
                op2::write(*dq_));

  krylov::SolveOptions opts;
  opts.method = krylov::Method::CG;
  opts.precond = krylov::Precond::Jacobi;
  opts.max_iters = cfg_.implicit_max_iters;
  opts.rtol = cfg_.implicit_rtol;
  ksolver_->solve(*dq_, *res_, opts);

  // State update; SA stays on its explicit pseudo step (cfl/ws) — the
  // one-equation transport is not part of the linearized system.
  const double sa_cfl = cfg_.cfl;
  op2::par_loop((pfx_ + "implicit_update").c_str(), *cells_,
                [sa_cfl](const double* d, const double* w, const double* sr, double* q,
                         double* nut) {
                  for (int s = 0; s < kNState; ++s) q[s] += d[s];
                  if (op2::simt::branch(q[0] < 1e-3)) q[0] = 1e-3;
                  *nut = std::max(0.0, *nut + sa_cfl / std::max(*w, 1e-12) * *sr);
                },
                op2::read(*dq_), op2::read(*ws_), op2::read(*nut_res_), op2::rw(*q_),
                op2::rw(*nut_));
}

void RowSolver::advance_inner(int n) {
  for (int i = 0; i < n; ++i) inner_iteration();
}

void RowSolver::shift_time_levels() {
  time_ += cfg_.dt_phys;
  if (cfg_.steady) return;  // no physical time levels in steady mode
  op2::par_loop((pfx_ + "shift_levels").c_str(), *cells_,
                [](const double* q, double* qo, double* qo2) {
                  for (int s = 0; s < kNState; ++s) {
                    qo2[s] = qo[s];
                    qo[s] = q[s];
                  }
                },
                op2::read(*q_), op2::rw(*qold_),
                op2::write(*qold2_));
}

int RowSolver::solve_steady(int max_iters, double tol, int check_every) {
  if (!cfg_.steady) {
    throw std::logic_error("solve_steady: configure FlowConfig::steady first");
  }
  double r0 = -1.0;
  for (int it = 0; it < max_iters; ++it) {
    inner_iteration();
    if ((it + 1) % check_every != 0) continue;
    const double r = residual_rms();
    if (r0 < 0) r0 = std::max(r, 1e-300);
    if (r <= tol * r0) return it + 1;
  }
  return max_iters;
}

double RowSolver::residual_rms() {
  auto ss = ctx_.decl_global<double>(pfx_ + "rms", 1);
  op2::par_loop((pfx_ + "monitor_rms").c_str(), *cells_,
                [](const double* r, double* s) {
                  for (int c = 0; c < kNState; ++c) *s += r[c] * r[c];
                },
                op2::read(*res_), op2::reduce_sum(ss));
  return std::sqrt(ss.value() / (kNState * static_cast<double>(ncell_global_)));
}

double RowSolver::mass_flow(rig::BoundaryGroup group) {
  auto mdot = ctx_.decl_global<double>(pfx_ + group_tag(group) + "_mdot", 1);
  op2::par_loop((pfx_ + group_tag(group) + "_mflow").c_str(), *bsets_[gi(group)],
                [](const double* q, const double* area, double* m) {
                  *m += q[1] * area[0] + q[2] * area[1] + q[3] * area[2];
                },
                op2::read(*q_, *b2c_[gi(group)], 0),
                op2::read(*bnorm_[gi(group)]), op2::reduce_sum(mdot));
  return mdot.value();
}

double RowSolver::mean_pressure() {
  const double gamma = cfg_.gamma;
  auto acc = ctx_.decl_global<double>(pfx_ + "pmean", 2);
  op2::par_loop((pfx_ + "monitor_p").c_str(), *cells_,
                [gamma](const double* q, const double* vol, double* a) {
                  a[0] += pressure(q, gamma) * *vol;
                  a[1] += *vol;
                },
                op2::read(*q_), op2::read(*vol_),
                op2::reduce_sum(acc));
  return acc.value(0) / acc.value(1);
}

double RowSolver::shaft_power() {
  if (!row_.rotor || row_.nblades <= 0) return 0.0;
  const double omega = omega_;
  const double tau = cfg_.blade_relax;
  const double frac = cfg_.rotor_swirl_frac;
  const double axial_load = cfg_.rotor_axial_load / (row_.x_max - row_.x_min);
  auto power = ctx_.decl_global<double>(pfx_ + "power", 1);
  op2::par_loop((pfx_ + "shaft_power").c_str(), *cells_,
                [omega, tau, frac, axial_load](const double* q, const double* rt,
                                               const double* vol, double* p) {
                  const double rad = rt[0], th = rt[1];
                  const double ty = -std::sin(th), tz = std::cos(th);
                  const double blade_speed = omega * rad;
                  const double m_theta = q[2] * ty + q[3] * tz;
                  const double f_theta = (q[0] * frac * blade_speed - m_theta) / tau;
                  const double fx = axial_load * 0.5 * q[0] * blade_speed * blade_speed;
                  *p += *vol * (f_theta * blade_speed + fx * q[1] / q[0]);
                },
                op2::read(*q_), op2::read(*rtheta_),
                op2::read(*vol_), op2::reduce_sum(power));
  return power.value();
}

bool RowSolver::save_state(const std::string& prefix) {
  bool ok = op2::io::save(ctx_, *q_, prefix + "_q.dat");
  ok = op2::io::save(ctx_, *qold_, prefix + "_qold.dat") && ok;
  ok = op2::io::save(ctx_, *qold2_, prefix + "_qold2.dat") && ok;
  ok = op2::io::save(ctx_, *nut_, prefix + "_nut.dat") && ok;
  if (ctx_.rank() == 0) {
    // Physical time sidecar: the interface rotation and rotor wake frames
    // must resume where they stopped.
    std::ofstream meta(prefix + "_time.txt");
    meta.precision(17);
    meta << time_ << '\n';
    ok = static_cast<bool>(meta) && ok;
  }
  if (ctx_.distributed()) ok = ctx_.comm().bcast_value(ok ? 1 : 0, 0) != 0;
  return ok;
}

bool RowSolver::load_state(const std::string& prefix) {
  bool ok = op2::io::load(ctx_, *q_, prefix + "_q.dat");
  ok = op2::io::load(ctx_, *qold_, prefix + "_qold.dat") && ok;
  ok = op2::io::load(ctx_, *qold2_, prefix + "_qold2.dat") && ok;
  ok = op2::io::load(ctx_, *nut_, prefix + "_nut.dat") && ok;
  double t = time_;
  if (ctx_.rank() == 0) {
    std::ifstream meta(prefix + "_time.txt");
    if (meta >> t) {
      // ok unchanged
    } else {
      ok = false;
    }
  }
  if (ctx_.distributed()) {
    ok = ctx_.comm().bcast_value(ok ? 1 : 0, 0) != 0;
    t = ctx_.comm().bcast_value(t, 0);
  }
  if (ok) time_ = t;
  return ok;
}

void RowSolver::gather_owned_face_states(rig::BoundaryGroup g,
                                         std::vector<op2::gindex_t>* gids,
                                         std::vector<double>* payload) {
  gids->clear();
  payload->clear();
  const op2::Set& set = *bsets_[gi(g)];
  const op2::Map& map = *b2c_[gi(g)];
  for (index_t b = 0; b < set.n_owned(); ++b) {
    const index_t c = map(b, 0);
    gids->push_back(set.global_id(b));
    for (int s = 0; s < kNState; ++s) payload->push_back(q_->at(c, s));
    payload->push_back(nut_->at(c, 0));
  }
}

void RowSolver::scatter_ghosts(rig::BoundaryGroup g, std::span<const op2::gindex_t> gids,
                               std::span<const double> payload) {
  if (gids.size() * static_cast<std::size_t>(kPayload) != payload.size()) {
    throw std::invalid_argument("scatter_ghosts: payload size mismatch");
  }
  op2::Dat<double>& gh = ghost(g);
  const op2::Set& set = *bsets_[gi(g)];
  for (std::size_t i = 0; i < gids.size(); ++i) {
    const index_t l = ctx_.global_to_local(set, gids[i]);
    if (l < 0 || l >= set.n_owned()) continue;
    for (int s = 0; s < kPayload; ++s) {
      gh.at(l, s) = payload[i * static_cast<std::size_t>(kPayload) + static_cast<std::size_t>(s)];
    }
  }
  gh.mark_written();
}

}  // namespace vcgt::hydra
