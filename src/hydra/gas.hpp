#pragma once
// Inline compressible-gas helpers shared by the hydra kernels. These are the
// "elemental" pieces of the per-face / per-cell computations and are kept
// header-only so par_loop kernels inline them fully.
#include <algorithm>
#include <cmath>

namespace vcgt::hydra {

/// Conservative state layout: [rho, rho*u, rho*v, rho*w, rho*E].
inline constexpr int kNState = 5;

inline double pressure(const double* q, double gamma) {
  const double rho = q[0];
  const double ke = 0.5 * (q[1] * q[1] + q[2] * q[2] + q[3] * q[3]) / rho;
  return (gamma - 1.0) * (q[4] - ke);
}

inline double sound_speed(const double* q, double gamma) {
  const double p = pressure(q, gamma);
  return std::sqrt(std::max(1e-12, gamma * p / q[0]));
}

/// Euler flux through an area vector A (not normalized), accumulated into
/// f[5]: f = F(q) . A with F the inviscid flux tensor.
inline void euler_flux(const double* q, const double* area, double gamma, double* f) {
  const double rho = q[0];
  const double u = q[1] / rho, v = q[2] / rho, w = q[3] / rho;
  const double p = pressure(q, gamma);
  const double un = u * area[0] + v * area[1] + w * area[2];  // volume flux
  f[0] = rho * un;
  f[1] = q[1] * un + p * area[0];
  f[2] = q[2] * un + p * area[1];
  f[3] = q[3] * un + p * area[2];
  f[4] = (q[4] + p) * un;
}

/// Rusanov (local Lax-Friedrichs) numerical flux through area vector A,
/// oriented left -> right. Robust and entropy-stable; the dissipation plays
/// the role of Hydra's JST artificial smoothing at this mesh scale.
inline void rusanov_flux(const double* ql, const double* qr, const double* area,
                         double gamma, double* f) {
  double fl[kNState], fr[kNState];
  euler_flux(ql, area, gamma, fl);
  euler_flux(qr, area, gamma, fr);
  const double amag =
      std::sqrt(area[0] * area[0] + area[1] * area[1] + area[2] * area[2]);
  const double unl =
      (ql[1] * area[0] + ql[2] * area[1] + ql[3] * area[2]) / (ql[0] * std::max(amag, 1e-300));
  const double unr =
      (qr[1] * area[0] + qr[2] * area[1] + qr[3] * area[2]) / (qr[0] * std::max(amag, 1e-300));
  const double lmax = std::max(std::fabs(unl) + sound_speed(ql, gamma),
                               std::fabs(unr) + sound_speed(qr, gamma));
  for (int s = 0; s < kNState; ++s) {
    f[s] = 0.5 * (fl[s] + fr[s]) - 0.5 * lmax * amag * (qr[s] - ql[s]);
  }
}

/// Roe approximate Riemann solver with Harten entropy fix, through area
/// vector A (left -> right). Less dissipative than Rusanov — the scheme
/// family Hydra's JST/upwind options live in; selected via
/// FlowConfig::flux_scheme.
inline void roe_flux(const double* ql, const double* qr, const double* area, double gamma,
                     double* f) {
  const double amag =
      std::sqrt(area[0] * area[0] + area[1] * area[1] + area[2] * area[2]);
  if (amag < 1e-300) {
    for (int s = 0; s < kNState; ++s) f[s] = 0.0;
    return;
  }
  const double nx = area[0] / amag, ny = area[1] / amag, nz = area[2] / amag;

  const double rl = ql[0], rr = qr[0];
  const double ul = ql[1] / rl, vl = ql[2] / rl, wl = ql[3] / rl;
  const double ur = qr[1] / rr, vr = qr[2] / rr, wr = qr[3] / rr;
  const double pl = pressure(ql, gamma), pr = pressure(qr, gamma);
  const double hl = (ql[4] + pl) / rl, hr = (qr[4] + pr) / rr;

  // Roe averages.
  const double sl = std::sqrt(rl), sr = std::sqrt(rr);
  const double inv = 1.0 / (sl + sr);
  const double u = (sl * ul + sr * ur) * inv;
  const double v = (sl * vl + sr * vr) * inv;
  const double w = (sl * wl + sr * wr) * inv;
  const double h = (sl * hl + sr * hr) * inv;
  const double q2 = u * u + v * v + w * w;
  const double a2 = (gamma - 1.0) * (h - 0.5 * q2);
  const double a = std::sqrt(std::max(1e-12, a2));
  const double un = u * nx + v * ny + w * nz;
  const double unl = ul * nx + vl * ny + wl * nz;
  const double unr = ur * nx + vr * ny + wr * nz;

  // Wave strengths.
  const double drho = rr - rl;
  const double dp = pr - pl;
  const double dun = unr - unl;
  const double alpha2 = drho - dp / a2;  // entropy wave
  const double rho_roe = sl * sr;        // sqrt(rl * rr)
  const double am = (dp - rho_roe * a * dun) / (2.0 * a2);   // u - a wave
  const double ap = (dp + rho_roe * a * dun) / (2.0 * a2);   // u + a wave

  // Eigenvalues with Harten entropy fix on the acoustic waves.
  auto efix = [a](double lam) {
    const double eps = 0.1 * a;
    const double m = std::fabs(lam);
    return m < eps ? (lam * lam + eps * eps) / (2.0 * eps) : m;
  };
  const double l1 = efix(un - a);
  const double l2 = std::fabs(un);
  const double l3 = efix(un + a);

  // Tangential velocity jump (shear waves share the |un| eigenvalue).
  const double dut[3] = {(ur - ul) - dun * nx, (vr - vl) - dun * ny, (wr - wl) - dun * nz};

  double diss[kNState];
  // u - a wave.
  diss[0] = l1 * am;
  diss[1] = l1 * am * (u - a * nx);
  diss[2] = l1 * am * (v - a * ny);
  diss[3] = l1 * am * (w - a * nz);
  diss[4] = l1 * am * (h - a * un);
  // entropy wave.
  diss[0] += l2 * alpha2;
  diss[1] += l2 * (alpha2 * u + rho_roe * dut[0]);
  diss[2] += l2 * (alpha2 * v + rho_roe * dut[1]);
  diss[3] += l2 * (alpha2 * w + rho_roe * dut[2]);
  diss[4] += l2 * (alpha2 * 0.5 * q2 +
                   rho_roe * (u * dut[0] + v * dut[1] + w * dut[2]));
  // u + a wave.
  diss[0] += l3 * ap;
  diss[1] += l3 * ap * (u + a * nx);
  diss[2] += l3 * ap * (v + a * ny);
  diss[3] += l3 * ap * (w + a * nz);
  diss[4] += l3 * ap * (h + a * un);

  double fl[kNState], fr[kNState];
  euler_flux(ql, area, gamma, fl);
  euler_flux(qr, area, gamma, fr);
  for (int s = 0; s < kNState; ++s) {
    f[s] = 0.5 * (fl[s] + fr[s]) - 0.5 * amag * diss[s];
  }
}

/// Spalart-Allmaras fv1 wall function: the eddy viscosity is
/// mu_t = rho * nu_tilde * fv1(chi), chi = nu_tilde / nu_laminar.
inline double sa_fv1(double chi, double cv1) {
  const double c3 = chi * chi * chi;
  return c3 / (c3 + cv1 * cv1 * cv1);
}

/// Convective spectral radius |u.n| + c |A| used for the CFL pseudo-step.
inline double face_wavespeed(const double* q, const double* area, double gamma) {
  const double amag =
      std::sqrt(area[0] * area[0] + area[1] * area[1] + area[2] * area[2]);
  const double un = (q[1] * area[0] + q[2] * area[1] + q[3] * area[2]) / q[0];
  return std::fabs(un) + sound_speed(q, gamma) * amag;
}

}  // namespace vcgt::hydra
