#pragma once
// hydra::RowSolver — a compressible URANS finite-volume solver for one blade
// row, written entirely against the op2 par_loop API (the way the paper's
// OP2-Hydra expresses all of its ~300 loops). One RowSolver per Hydra
// Session (HS); in the monolithic configuration several RowSolvers share a
// single op2::Context.
//
// Numerical structure (paper §III): residual assembly over faces (Rusanov
// flux standing in for Hydra's JST scheme), explicit multi-stage Runge-Kutta
// pseudo-time inner iterations, dual time stepping with a BDF2 physical-time
// term, a simplified Spalart-Allmaras one-equation turbulence transport, a
// distributed blade-force model replacing the proprietary blade geometry
// (DESIGN.md substitution table), and characteristic-flavoured subsonic
// inlet/outlet boundaries via ghost states.
//
// Sliding-plane coupling: the inlet and/or outlet group can be switched to
// "coupled" mode, where the exterior state of each interface face is a ghost
// value written by the JM76 coupler (scatter_ghosts) instead of a physical
// boundary condition.
#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/hydra/config.hpp"
#include "src/hydra/gas.hpp"
#include "src/krylov/krylov.hpp"
#include "src/op2/op2.hpp"
#include "src/rig/annulus.hpp"
#include "src/rig/rowspec.hpp"
#include "src/rig/shard.hpp"

namespace vcgt::hydra {

class RowSolver {
 public:
  /// Declares all sets/maps/dats on `ctx`. The caller must afterwards call
  /// ctx.partition(partitioner, solver.cell_center()) (or include this
  /// solver's declarations in a larger monolithic partition) and then
  /// initialize(). `omega` is the shaft speed [rad/s] (applied to rotor
  /// rows' blade force and the interface rotation handled by the coupler).
  RowSolver(op2::Context& ctx, const rig::AnnulusMesh& mesh, const rig::RowSpec& row,
            double omega, const FlowConfig& cfg);

  /// Sharded construction (DESIGN.md §13): declares only this rank's shard
  /// of the row via decl_set_sharded, from a generate_row_shard() result.
  /// The caller must afterwards call ctx.partition_sharded({&solver.cells(),
  /// ...}) and then initialize(). sort_faces and implicit_dual_time are
  /// whole-mesh setups and throw std::logic_error in this mode.
  RowSolver(op2::Context& ctx, const rig::RowShard& shard, const rig::RowSpec& row,
            double omega, const FlowConfig& cfg);

  /// Marks the inlet/outlet group as a sliding-plane interface; its ghost
  /// values then come from the coupler. Call before initialize().
  void set_coupled(rig::BoundaryGroup group, bool coupled);

  /// Sets the whole field to the inflow state and fills ghost values.
  /// Collective; requires the context to be partitioned.
  void initialize();

  /// One pseudo-time inner iteration (wavespeed, RK stages over the residual
  /// with the dual-time source, SA update).
  void inner_iteration();
  void advance_inner(int n);

  /// Completes a physical time step: shifts the BDF2 time levels and
  /// advances the solver's physical time (no-op levels in steady mode).
  void shift_time_levels();

  /// Steady RANS driver: pseudo-time march until the residual drops by
  /// `tol` relative to the first measured residual or `max_iters` is hit;
  /// returns the iterations used. Requires FlowConfig::steady. Collective.
  int solve_steady(int max_iters, double tol = 1e-4, int check_every = 10);

  /// Physical time accumulated by shift_time_levels [s] (drives the rotor
  /// wake frame and the coupler rotation).
  [[nodiscard]] double physical_time() const { return time_; }

  /// RMS of the last evaluated residual over all cells (collective).
  double residual_rms();
  /// Mass flow through Inlet (negative = entering) or Outlet group
  /// (collective reduction).
  double mass_flow(rig::BoundaryGroup group);
  /// Volume-weighted mean static pressure (collective).
  double mean_pressure();
  /// Shaft power delivered by the row's blade force [W] (collective): the
  /// volume integral of the tangential force times the blade speed. Zero
  /// for stators/ducts; the per-row work input monitors the compressor's
  /// operating point.
  double shaft_power();

  // --- coupler / example plumbing ------------------------------------------
  [[nodiscard]] op2::Set& cells() { return *cells_; }
  [[nodiscard]] op2::Set& group_set(rig::BoundaryGroup g) {
    return *bsets_[static_cast<std::size_t>(g)];
  }
  [[nodiscard]] op2::Dat<double>& q() { return *q_; }
  [[nodiscard]] op2::Dat<double>& cell_center() { return *cc_; }
  [[nodiscard]] op2::Dat<double>& ghost(rig::BoundaryGroup g);
  [[nodiscard]] op2::Context& context() { return ctx_; }
  [[nodiscard]] const rig::RowSpec& row() const { return row_; }
  [[nodiscard]] const FlowConfig& flow_config() const { return cfg_; }

  /// Per-face payload exchanged across a sliding plane: the adjacent cell's
  /// conservative state plus the SA working variable.
  static constexpr int kPayload = kNState + 1;

  /// Collects (face gid, payload) for the locally owned faces of a sliding
  /// group. Local (non-collective). Gids are 64-bit: interface sets at the
  /// paper's mesh scale exceed the index_t range.
  void gather_owned_face_states(rig::BoundaryGroup g, std::vector<op2::gindex_t>* gids,
                                std::vector<double>* payload);
  /// Writes interpolated exterior payloads into the ghost dat for the faces
  /// (by gid) present and owned on this rank; entries for faces owned
  /// elsewhere are ignored. Collective (all ranks of the session must call,
  /// even with empty spans) because it bumps the dat write epoch.
  void scatter_ghosts(rig::BoundaryGroup g, std::span<const op2::gindex_t> gids,
                      std::span<const double> payload);

 private:
  void declare(const rig::AnnulusMesh& mesh, const rig::RowShard* shard);
  /// Emits the residual-assembly loops: into `chain` when given (the RK
  /// stage pipeline declared as a LoopChain), else as immediate par_loops.
  void flux_and_sources(int stage, op2::LoopChain* chain = nullptr);
  /// Wavespeed accumulation + local pseudo step (shared by the explicit and
  /// implicit paths; only the CFL and the dual-time cap differ).
  void wavespeed_and_dt(double cfl, double dt_cap);
  /// Implicit inner iteration: assemble the spectral-radius Jacobian into
  /// the cell stencil and solve M·dq = res with vcgt::krylov CG.
  void implicit_iteration();

  op2::Context& ctx_;
  rig::RowSpec row_;
  FlowConfig cfg_;
  double omega_;
  std::string pfx_;  ///< loop/set name prefix (row name), unique per context
  bool coupled_[4] = {false, false, false, false};
  double time_ = 0.0;  ///< physical time [s]
  long inner_count_ = 0;  ///< total pseudo-iterations (drives the CFL ramp)

  op2::gindex_t ncell_global_ = 0;

  op2::Set* cells_ = nullptr;
  op2::Set* faces_ = nullptr;
  std::array<op2::Set*, 4> bsets_{};  ///< per BoundaryGroup

  op2::Map* f2c_ = nullptr;
  std::array<op2::Map*, 4> b2c_{};

  // Cell dats.
  op2::Dat<double>* cc_ = nullptr;       ///< cell centers (3)
  op2::Dat<double>* vol_ = nullptr;      ///< volumes (1)
  op2::Dat<double>* rtheta_ = nullptr;   ///< (r, theta) (2)
  op2::Dat<double>* wdist_ = nullptr;    ///< wall distance (1)
  op2::Dat<double>* q_ = nullptr;        ///< conservative state (5)
  op2::Dat<double>* q0_ = nullptr;       ///< RK stage base (5)
  op2::Dat<double>* qold_ = nullptr;     ///< physical level n (5)
  op2::Dat<double>* qold2_ = nullptr;    ///< physical level n-1 (5)
  op2::Dat<double>* res_ = nullptr;      ///< residual (5)
  op2::Dat<double>* ws_ = nullptr;       ///< wavespeed accumulator (1)
  op2::Dat<double>* dtl_ = nullptr;      ///< local pseudo step (1)
  op2::Dat<double>* nut_ = nullptr;      ///< SA working variable (1)
  op2::Dat<double>* nut0_ = nullptr;     ///< SA stage base (1)
  op2::Dat<double>* nut_res_ = nullptr;  ///< SA residual (1)

  // Gradient / reconstruction dats (used when second_order or viscous).
  op2::Dat<double>* gradq_ = nullptr;    ///< conservative gradients (5x3)
  op2::Dat<double>* gradp_ = nullptr;    ///< primitive (u,v,w,T) gradients (4x3)
  op2::Dat<double>* gradnut_ = nullptr;  ///< SA working-variable gradient (3)
  op2::Dat<double>* qmin_ = nullptr;     ///< neighborhood minima (5)
  op2::Dat<double>* qmax_ = nullptr;     ///< neighborhood maxima (5)
  op2::Dat<double>* lim_ = nullptr;      ///< Barth-Jespersen limiter (5)

  // Face dats.
  op2::Dat<double>* fnorm_ = nullptr;  ///< interior face area vectors (3)
  op2::Dat<double>* fcent_ = nullptr;  ///< interior face centers (3)
  std::array<op2::Dat<double>*, 4> bnorm_{};
  std::array<op2::Dat<double>*, 4> ghost_{};  ///< exterior payload per bface (6)

  // Implicit dual-time (FlowConfig::implicit_dual_time): cell stencil matrix
  // + Krylov solver + per-slot outward face area vectors (3K, slot 0 zero)
  // feeding the spectral-radius assembly.
  krylov::StencilMatrix imat_{};
  std::unique_ptr<krylov::Solver> ksolver_;
  op2::Dat<double>* dq_ = nullptr;     ///< implicit state update (5)
  op2::Dat<double>* fgeom_ = nullptr;  ///< stencil-slot area vectors (3K)

 public:
  /// Checkpoint the solver state (q, qold, qold2, nut) as op2 binary dats
  /// under `prefix`. Collective; returns false on I/O failure.
  bool save_state(const std::string& prefix);
  /// Restores a checkpoint written by save_state (same mesh/partition-
  /// independent format). Collective.
  bool load_state(const std::string& prefix);
};

}  // namespace vcgt::hydra
