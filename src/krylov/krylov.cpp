// vcgt::krylov implementation — CG / BiCGStab over op2 par_loops.
#include "src/krylov/krylov.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/fmt.hpp"

namespace vcgt::krylov {

StencilMatrix declare_stencil(op2::Context& ctx, op2::Set& rows, int width,
                              const std::string& name, const StencilFill& fill) {
  if (width < 1) throw std::invalid_argument("krylov: stencil width must be >= 1");
  const auto n = static_cast<std::size_t>(rows.global_size());
  const auto w = static_cast<std::size_t>(width);
  std::vector<op2::index_t> table(n * w);
  std::vector<double> coeffs(n * w, 0.0);
  for (std::size_t e = 0; e < n; ++e) {
    const auto row = static_cast<op2::index_t>(e);
    auto* cols = table.data() + e * w;
    for (std::size_t k = 0; k < w; ++k) cols[k] = row;  // pad = (self, 0.0)
    fill(row, std::span<op2::index_t>(cols, w), std::span<double>(coeffs.data() + e * w, w));
    if (cols[0] != row) {
      throw std::invalid_argument(vcgt::util::fmt(
          "krylov: stencil '{}' row {} slot 0 must be the diagonal (got {})", name, row,
          cols[0]));
    }
  }
  StencilMatrix m;
  m.rows = &rows;
  m.cols = &ctx.decl_map(name + "_cols", rows, rows, width, std::move(table));
  m.a = &ctx.decl_dat<double>(rows, width, name + "_a", std::move(coeffs));
  return m;
}

Solver::Solver(op2::Context& ctx, StencilMatrix m, int dim, std::string name)
    : ctx_(ctx),
      m_(m),
      d_(dim),
      name_(std::move(name)),
      pfx_(name_ + ":"),
      dots2_(ctx.decl_global<double>(pfx_ + "dots2", 2 * dim)),
      dot1_(ctx.decl_global<double>(pfx_ + "dot1", dim)),
      alpha_(ctx.decl_global<double>(pfx_ + "alpha", dim)),
      beta_(ctx.decl_global<double>(pfx_ + "beta", dim)),
      omega_(ctx.decl_global<double>(pfx_ + "omega", dim)) {
  if (dim < 1) throw std::invalid_argument("krylov: solver dim must be >= 1");
  op2::Set& rows = *m_.rows;
  auto decl = [&](const char* suffix) {
    return &ctx_.decl_dat<double>(rows, d_, pfx_ + suffix);
  };
  r_ = decl("r");
  z_ = decl("z");
  p_ = decl("p");
  q_ = decl("q");
  r0_ = decl("r0");
  s_ = decl("s");
  t_ = decl("t");
  sh_ = decl("sh");
  invdiag_ = &ctx_.decl_dat<double>(rows, 1, pfx_ + "invdiag");
}

// --- building-block loops ----------------------------------------------------

void Solver::spmv(const char* loop, op2::Dat<double>& in, op2::Dat<double>& out,
                  op2::LoopChain* chain) {
  const int d = d_;
  const int k = m_.width();
  auto kernel = [d, k](const double* a, const op2::index_t* cols,
                       op2::DatSpan<double> x, double* y) {
    for (int c = 0; c < d; ++c) {
      double sum = 0.0;
      for (int j = 0; j < k; ++j) sum += a[j] * x.at(cols[j], c);
      y[c] = sum;
    }
  };
  if (chain) {
    chain->add(loop, *m_.rows, kernel, op2::read(*m_.a), op2::row(*m_.cols),
               op2::read_span(in, *m_.cols), op2::write(out));
  } else {
    op2::par_loop(loop, *m_.rows, kernel, op2::read(*m_.a), op2::row(*m_.cols),
                  op2::read_span(in, *m_.cols), op2::write(out));
  }
}

/// dots2_[c] = u·v per component, dots2_[d+c] = v·v per component — one
/// loop, one collective. Each global component receives exactly one
/// increment per element, which is what makes the deterministic distributed
/// fold bit-identical to the serial one (see parloop.hpp's capture block).
void Solver::dot_pair(const char* loop, op2::Dat<double>& u, op2::Dat<double>& v) {
  const int d = d_;
  dots2_.set(0.0);
  op2::par_loop(loop, *m_.rows, [d](const double* uv, const double* vv, double* g) {
    for (int c = 0; c < d; ++c) {
      g[c] += uv[c] * vv[c];
      g[d + c] += vv[c] * vv[c];
    }
  }, op2::read(u), op2::read(v), op2::reduce_sum(dots2_));
}

void Solver::dot_single(const char* loop, op2::Dat<double>& u, op2::Dat<double>& v) {
  const int d = d_;
  dot1_.set(0.0);
  op2::par_loop(loop, *m_.rows, [d](const double* uv, const double* vv, double* g) {
    for (int c = 0; c < d; ++c) g[c] += uv[c] * vv[c];
  }, op2::read(u), op2::read(v), op2::reduce_sum(dot1_));
}

// --- preconditioners ---------------------------------------------------------

void Solver::prepare(Precond p) {
  if (p == Precond::Jacobi) {
    op2::par_loop((pfx_ + "jacobi_inv").c_str(), *m_.rows,
                  [](const double* a, double* inv) {
                    inv[0] = a[0] != 0.0 ? 1.0 / a[0] : 1.0;
                  },
                  op2::read(*m_.a), op2::write(*invdiag_));
    return;
  }
  if (p != Precond::BlockILU0) return;

  // Rank-local ILU(0) of the owned diagonal block: compress the ELL rows to
  // CSR (drop self-pads past slot 0 and halo columns), factorize in place
  // on the fixed pattern. Sequential by construction — the substitution
  // recurrences chain row to row — so it runs on host data via Dat::at().
  const op2::Set& rows = *m_.rows;
  const op2::Map& cols = *m_.cols;
  const op2::index_t n = rows.n_owned();
  const int k = m_.width();
  ilu_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  ilu_col_.clear();
  ilu_val_.clear();
  ilu_diag_.assign(static_cast<std::size_t>(n), 0);
  std::vector<std::pair<op2::index_t, double>> row;
  for (op2::index_t i = 0; i < n; ++i) {
    row.clear();
    for (int slot = 0; slot < k; ++slot) {
      const op2::index_t j = cols(i, slot);
      if (j >= n) continue;                 // halo column: block-Jacobi truncation
      if (slot > 0 && j == i) continue;     // pad
      row.emplace_back(j, m_.a->at(i, slot));
    }
    std::sort(row.begin(), row.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (const auto& [j, v] : row) {
      if (j == i) ilu_diag_[static_cast<std::size_t>(i)] = ilu_val_.size();
      ilu_col_.push_back(j);
      ilu_val_.push_back(v);
    }
    ilu_ptr_[static_cast<std::size_t>(i) + 1] = ilu_val_.size();
  }
  // IKJ factorization on the fixed pattern.
  for (op2::index_t i = 0; i < n; ++i) {
    const std::size_t lo = ilu_ptr_[static_cast<std::size_t>(i)];
    const std::size_t hi = ilu_ptr_[static_cast<std::size_t>(i) + 1];
    for (std::size_t kk = lo; kk < hi; ++kk) {
      const op2::index_t j = ilu_col_[kk];
      if (j >= i) break;  // columns ascend; only the strictly-lower part
      const double dj = ilu_val_[ilu_diag_[static_cast<std::size_t>(j)]];
      const double lij = dj != 0.0 ? ilu_val_[kk] / dj : 0.0;
      ilu_val_[kk] = lij;
      // Subtract lij * U(j, q) from A(i, q) wherever (i, q) is in pattern.
      const std::size_t jlo = ilu_diag_[static_cast<std::size_t>(j)] + 1;
      const std::size_t jhi = ilu_ptr_[static_cast<std::size_t>(j) + 1];
      for (std::size_t jq = jlo; jq < jhi; ++jq) {
        const op2::index_t qcol = ilu_col_[jq];
        for (std::size_t iq = kk + 1; iq < hi; ++iq) {
          if (ilu_col_[iq] == qcol) {
            ilu_val_[iq] -= lij * ilu_val_[jq];
            break;
          }
        }
      }
    }
  }
}

void Solver::apply_precond(Precond p, op2::Dat<double>& in, op2::Dat<double>& out,
                           const char* loop) {
  const int d = d_;
  if (p == Precond::None) {
    op2::par_loop(loop, *m_.rows, [d](const double* rv, double* zv) {
      for (int c = 0; c < d; ++c) zv[c] = rv[c];
    }, op2::read(in), op2::write(out));
    return;
  }
  if (p == Precond::Jacobi) {
    op2::par_loop(loop, *m_.rows, [d](const double* inv, const double* rv, double* zv) {
      for (int c = 0; c < d; ++c) zv[c] = inv[0] * rv[c];
    }, op2::read(*invdiag_), op2::read(in), op2::write(out));
    return;
  }
  // BlockILU0: forward/back substitution over the rank's owned rows,
  // per component. Host-side (sequential recurrence), hence at() +
  // mark_written — the same out-of-par_loop access pattern as hydra's
  // coupler exchange.
  const op2::index_t n = m_.rows->n_owned();
  std::vector<double> y(static_cast<std::size_t>(n));
  for (int c = 0; c < d; ++c) {
    for (op2::index_t i = 0; i < n; ++i) {
      double v = in.at(i, c);
      const std::size_t lo = ilu_ptr_[static_cast<std::size_t>(i)];
      for (std::size_t kk = lo; ilu_col_[kk] < i; ++kk) {
        v -= ilu_val_[kk] * y[static_cast<std::size_t>(ilu_col_[kk])];
      }
      y[static_cast<std::size_t>(i)] = v;
    }
    for (op2::index_t i = n - 1; i >= 0; --i) {
      double v = y[static_cast<std::size_t>(i)];
      const std::size_t dg = ilu_diag_[static_cast<std::size_t>(i)];
      const std::size_t hi = ilu_ptr_[static_cast<std::size_t>(i) + 1];
      for (std::size_t kk = dg + 1; kk < hi; ++kk) {
        v -= ilu_val_[kk] * out.at(ilu_col_[kk], c);
      }
      const double dv = ilu_val_[dg];
      out.at(i, c) = dv != 0.0 ? v / dv : v;
    }
  }
  out.mark_written();
}

// --- drivers -----------------------------------------------------------------

namespace {

double aggregate_norm(const double* rr, int d) {
  double ss = 0.0;
  for (int c = 0; c < d; ++c) ss += rr[c];
  return std::sqrt(ss);
}

}  // namespace

SolveStats Solver::solve(op2::Dat<double>& x, op2::Dat<double>& b,
                         const SolveOptions& opts) {
  prepare(opts.precond);
  return opts.method == Method::CG ? run_cg(x, b, opts) : run_bicgstab(x, b, opts);
}

SolveStats Solver::run_cg(op2::Dat<double>& x, op2::Dat<double>& b,
                          const SolveOptions& opts) {
  const int d = d_;
  SolveStats st;

  // r = b - A x (seed p with x so the one cached SpMV plan serves both the
  // initial residual and the iteration).
  op2::par_loop((pfx_ + "seed_p").c_str(), *m_.rows, [d](const double* xv, double* pv) {
    for (int c = 0; c < d; ++c) pv[c] = xv[c];
  }, op2::read(x), op2::write(*p_));
  spmv((pfx_ + "spmv_p").c_str(), *p_, *q_, nullptr);
  op2::par_loop((pfx_ + "residual").c_str(), *m_.rows,
                [d](const double* bv, const double* qv, double* rv) {
                  for (int c = 0; c < d; ++c) rv[c] = bv[c] - qv[c];
                },
                op2::read(b), op2::read(*q_), op2::write(*r_));

  apply_precond(opts.precond, *r_, *z_, (pfx_ + "precond_z").c_str());

  // Zero p: the first direction update then runs the same xpay loop with
  // beta = 0, keeping every iteration's loop sequence identical (one cached
  // chain plan, uniform fold order).
  op2::par_loop((pfx_ + "zero_p").c_str(), *m_.rows, [d](double* pv) {
    for (int c = 0; c < d; ++c) pv[c] = 0.0;
  }, op2::write(*p_));
  beta_.set(0.0);

  dot_pair((pfx_ + "dot_rz_rr").c_str(), *z_, *r_);  // g[c]=z·r, g[d+c]=r·r
  std::vector<double> rz(dots2_.data(), dots2_.data() + d);
  st.rnorm0 = aggregate_norm(dots2_.data() + d, d);
  st.rnorm = st.rnorm0;
  st.history.push_back(st.rnorm0);
  const double tol = std::max(opts.rtol * st.rnorm0, opts.atol);

  for (int it = 0; it < opts.max_iters && st.rnorm > tol; ++it) {
    // p = z + beta p ; q = A p — chained: one fused halo epoch covers the
    // SpMV's read of p.
    if (opts.chain_spmv) {
      op2::LoopChain chain(ctx_, pfx_ + "iter");
      chain.add((pfx_ + "xpay").c_str(), *m_.rows,
                [d](const double* zv, const double* bv, double* pv) {
                  for (int c = 0; c < d; ++c) pv[c] = zv[c] + bv[c] * pv[c];
                },
                op2::read(*z_), op2::read(beta_), op2::rw(*p_));
      spmv((pfx_ + "spmv_p").c_str(), *p_, *q_, &chain);
      chain.execute();
    } else {
      op2::par_loop((pfx_ + "xpay").c_str(), *m_.rows,
                    [d](const double* zv, const double* bv, double* pv) {
                      for (int c = 0; c < d; ++c) pv[c] = zv[c] + bv[c] * pv[c];
                    },
                    op2::read(*z_), op2::read(beta_), op2::rw(*p_));
      spmv((pfx_ + "spmv_p").c_str(), *p_, *q_, nullptr);
    }

    dot_single((pfx_ + "dot_pq").c_str(), *p_, *q_);
    for (int c = 0; c < d; ++c) {
      const double pq = dot1_.data()[c];
      alpha_.data()[c] = pq != 0.0 ? rz[static_cast<std::size_t>(c)] / pq : 0.0;
    }

    op2::par_loop((pfx_ + "update_xr").c_str(), *m_.rows,
                  [d](const double* av, const double* pv, const double* qv, double* xv,
                      double* rv) {
                    for (int c = 0; c < d; ++c) {
                      xv[c] += av[c] * pv[c];
                      rv[c] -= av[c] * qv[c];
                    }
                  },
                  op2::read(alpha_), op2::read(*p_), op2::read(*q_), op2::rw(x),
                  op2::rw(*r_));

    apply_precond(opts.precond, *r_, *z_, (pfx_ + "precond_z").c_str());
    dot_pair((pfx_ + "dot_rz_rr").c_str(), *z_, *r_);
    for (int c = 0; c < d; ++c) {
      const double rz_new = dots2_.data()[c];
      const double rz_old = rz[static_cast<std::size_t>(c)];
      beta_.data()[c] = rz_old != 0.0 ? rz_new / rz_old : 0.0;
      rz[static_cast<std::size_t>(c)] = rz_new;
    }
    st.rnorm = aggregate_norm(dots2_.data() + d, d);
    st.history.push_back(st.rnorm);
    ++st.iters;
  }
  st.converged = st.rnorm <= tol;
  return st;
}

SolveStats Solver::run_bicgstab(op2::Dat<double>& x, op2::Dat<double>& b,
                                const SolveOptions& opts) {
  const int d = d_;
  SolveStats st;

  op2::par_loop((pfx_ + "seed_p").c_str(), *m_.rows, [d](const double* xv, double* pv) {
    for (int c = 0; c < d; ++c) pv[c] = xv[c];
  }, op2::read(x), op2::write(*p_));
  spmv((pfx_ + "spmv_p").c_str(), *p_, *q_, nullptr);
  op2::par_loop((pfx_ + "residual").c_str(), *m_.rows,
                [d](const double* bv, const double* qv, double* rv) {
                  for (int c = 0; c < d; ++c) rv[c] = bv[c] - qv[c];
                },
                op2::read(b), op2::read(*q_), op2::write(*r_));
  // r0 = r; p = r.
  op2::par_loop((pfx_ + "seed_r0_p").c_str(), *m_.rows,
                [d](const double* rv, double* r0v, double* pv) {
                  for (int c = 0; c < d; ++c) {
                    r0v[c] = rv[c];
                    pv[c] = rv[c];
                  }
                },
                op2::read(*r_), op2::write(*r0_), op2::write(*p_));

  dot_pair((pfx_ + "dot_rho_rr").c_str(), *r0_, *r_);  // g[c]=r0·r, g[d+c]=r·r
  std::vector<double> rho(dots2_.data(), dots2_.data() + d);
  st.rnorm0 = aggregate_norm(dots2_.data() + d, d);
  st.rnorm = st.rnorm0;
  st.history.push_back(st.rnorm0);
  const double tol = std::max(opts.rtol * st.rnorm0, opts.atol);

  for (int it = 0; it < opts.max_iters && st.rnorm > tol; ++it) {
    apply_precond(opts.precond, *p_, *z_, (pfx_ + "precond_phat").c_str());
    spmv((pfx_ + "spmv_phat").c_str(), *z_, *q_, nullptr);  // v = A phat

    dot_single((pfx_ + "dot_r0v").c_str(), *r0_, *q_);
    for (int c = 0; c < d; ++c) {
      const double sg = dot1_.data()[c];
      alpha_.data()[c] = sg != 0.0 ? rho[static_cast<std::size_t>(c)] / sg : 0.0;
    }

    op2::par_loop((pfx_ + "calc_s").c_str(), *m_.rows,
                  [d](const double* av, const double* rv, const double* vv, double* sv) {
                    for (int c = 0; c < d; ++c) sv[c] = rv[c] - av[c] * vv[c];
                  },
                  op2::read(alpha_), op2::read(*r_), op2::read(*q_), op2::write(*s_));

    apply_precond(opts.precond, *s_, *sh_, (pfx_ + "precond_shat").c_str());
    spmv((pfx_ + "spmv_shat").c_str(), *sh_, *t_, nullptr);

    dot_pair((pfx_ + "dot_ts_tt").c_str(), *s_, *t_);  // g[c]=s·t, g[d+c]=t·t
    for (int c = 0; c < d; ++c) {
      const double tt = dots2_.data()[d + c];
      omega_.data()[c] = tt != 0.0 ? dots2_.data()[c] / tt : 0.0;
    }

    op2::par_loop((pfx_ + "update_x").c_str(), *m_.rows,
                  [d](const double* av, const double* ov, const double* phv,
                      const double* shv, double* xv) {
                    for (int c = 0; c < d; ++c) {
                      xv[c] += av[c] * phv[c] + ov[c] * shv[c];
                    }
                  },
                  op2::read(alpha_), op2::read(omega_), op2::read(*z_), op2::read(*sh_),
                  op2::rw(x));
    op2::par_loop((pfx_ + "update_r").c_str(), *m_.rows,
                  [d](const double* ov, const double* sv, const double* tv, double* rv) {
                    for (int c = 0; c < d; ++c) rv[c] = sv[c] - ov[c] * tv[c];
                  },
                  op2::read(omega_), op2::read(*s_), op2::read(*t_), op2::write(*r_));

    dot_pair((pfx_ + "dot_rho_rr").c_str(), *r0_, *r_);
    for (int c = 0; c < d; ++c) {
      const double rho_new = dots2_.data()[c];
      const double rho_old = rho[static_cast<std::size_t>(c)];
      const double om = omega_.data()[c];
      beta_.data()[c] = (rho_old != 0.0 && om != 0.0)
                            ? (rho_new / rho_old) * (alpha_.data()[c] / om)
                            : 0.0;
      rho[static_cast<std::size_t>(c)] = rho_new;
    }
    op2::par_loop((pfx_ + "update_p").c_str(), *m_.rows,
                  [d](const double* bv, const double* ov, const double* rv,
                      const double* vv, double* pv) {
                    for (int c = 0; c < d; ++c) {
                      pv[c] = rv[c] + bv[c] * (pv[c] - ov[c] * vv[c]);
                    }
                  },
                  op2::read(beta_), op2::read(omega_), op2::read(*r_), op2::read(*q_),
                  op2::rw(*p_));

    st.rnorm = aggregate_norm(dots2_.data() + d, d);
    st.history.push_back(st.rnorm);
    ++st.iters;
  }
  st.converged = st.rnorm <= tol;
  return st;
}

}  // namespace vcgt::krylov
