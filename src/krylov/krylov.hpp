#pragma once
// vcgt::krylov — distributed preconditioned Krylov solvers composed entirely
// from typed op2 par_loops (DESIGN.md §11).
//
// The matrix is a fixed-width (ELL) stencil over an op2 set: a rows→rows Map
// of width K holding each row's column ids (slot 0 is the diagonal by
// contract; unused slots pad with the row itself and a zero coefficient,
// which is bitwise-neutral in the SpMV fold) plus a dim-K coefficient Dat.
// SpMV is then one indirect-read par_loop per row — the kernel walks the
// stencil row (op2::row) and reads x through a gather-free layout-aware view
// (op2::read_span) — so the halo exchange, latency hiding and loop-chain
// fusion machinery apply to the solve exactly as to any other loop.
//
// Solvers treat a dim-d right-hand side as d independent scalar systems
// sharing the stencil (hydra's 5 conservative state components): every dot
// product reduces per component and the step scalars alpha/beta/omega are
// per-component, so each component marches its own optimal CG/BiCGStab
// trajectory while all d ride the same loops and the same single collective
// per dot round (component-batched Global reductions).
//
// Reduction-determinism contract: with Config::deterministic_reductions on,
// every dot product folds per-element products in ascending *global* id
// order regardless of rank count or thread count (op2's delta-capture
// finalize), so residual histories — and therefore iteration counts and the
// converged answer — are bit-identical across serial, threaded and
// distributed executions. Preconditioner caveat: None and Jacobi are
// partition-invariant; BlockILU0 factorizes each rank's owned diagonal
// block, so its *preconditioned direction* depends on the partition and only
// serial/threaded runs of it are bit-comparable.
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/op2/op2.hpp"

namespace vcgt::krylov {

/// Fixed-width stencil matrix over an op2 set (ELL storage through a Map).
/// Slot 0 of every row is the diagonal; pad slots reference the row itself
/// with a zero coefficient.
struct StencilMatrix {
  op2::Set* rows = nullptr;
  op2::Map* cols = nullptr;       ///< rows→rows, dim = width, slot 0 = self
  op2::Dat<double>* a = nullptr;  ///< dim = width coefficients per row
  [[nodiscard]] int width() const { return cols->dim(); }
};

/// Per-row structure+value callback: fill `cols` (global row ids, slot 0
/// must be the row itself) and `a` (matching coefficients) for `row`.
/// Unused trailing slots should be left as (row, 0.0) — they are
/// pre-initialized that way.
using StencilFill =
    std::function<void(op2::index_t row, std::span<op2::index_t> cols, std::span<double> a)>;

/// Declares the stencil map + coefficient dat (pre-partition, collective
/// declaration like any op2 decl). The fill callback runs once per global
/// row on every rank.
StencilMatrix declare_stencil(op2::Context& ctx, op2::Set& rows, int width,
                              const std::string& name, const StencilFill& fill);

enum class Method { CG, BiCGStab };
enum class Precond { None, Jacobi, BlockILU0 };

struct SolveOptions {
  Method method = Method::CG;
  Precond precond = Precond::Jacobi;
  int max_iters = 500;
  double rtol = 1e-8;
  double atol = 0.0;
  /// Fuse the per-iteration direction-update + SpMV pair into a declared
  /// LoopChain (one grouped halo epoch instead of one per loop). Results
  /// are bit-identical either way — neither loop carries a reduction.
  bool chain_spmv = true;
};

struct SolveStats {
  int iters = 0;
  bool converged = false;
  double rnorm0 = 0.0;
  double rnorm = 0.0;
  /// Aggregate residual 2-norm (sqrt of the sum over components of r·r)
  /// after 0, 1, ... iterations. Bit-identical across executions under the
  /// determinism contract above.
  std::vector<double> history;
};

/// Krylov solver instance bound to one stencil matrix and one RHS dimension.
/// Construct *pre-partition* (declares dim-d work dats on the rows set);
/// solve() runs post-partition and may be called repeatedly — coefficient
/// changes are picked up because the preconditioner is rebuilt per solve.
class Solver {
 public:
  Solver(op2::Context& ctx, StencilMatrix m, int dim, std::string name);

  /// Solves A x = b (d components independently). `x` holds the initial
  /// guess on entry and the solution on exit.
  SolveStats solve(op2::Dat<double>& x, op2::Dat<double>& b, const SolveOptions& opts);

  [[nodiscard]] const StencilMatrix& matrix() const { return m_; }
  [[nodiscard]] int dim() const { return d_; }

 private:
  void prepare(Precond p);
  void apply_precond(Precond p, op2::Dat<double>& in, op2::Dat<double>& out,
                     const char* loop);
  void spmv(const char* loop, op2::Dat<double>& in, op2::Dat<double>& out,
            op2::LoopChain* chain);
  void dot_pair(const char* loop, op2::Dat<double>& u, op2::Dat<double>& v);
  void dot_single(const char* loop, op2::Dat<double>& u, op2::Dat<double>& v);
  SolveStats run_cg(op2::Dat<double>& x, op2::Dat<double>& b, const SolveOptions& opts);
  SolveStats run_bicgstab(op2::Dat<double>& x, op2::Dat<double>& b,
                          const SolveOptions& opts);

  op2::Context& ctx_;
  StencilMatrix m_;
  int d_;
  std::string name_;
  std::string pfx_;

  // Work vectors (dim d on the rows set).
  op2::Dat<double>* r_;
  op2::Dat<double>* z_;   ///< preconditioned residual / BiCGStab phat
  op2::Dat<double>* p_;
  op2::Dat<double>* q_;   ///< A p / BiCGStab v
  op2::Dat<double>* r0_;  ///< BiCGStab shadow residual
  op2::Dat<double>* s_;
  op2::Dat<double>* t_;
  op2::Dat<double>* sh_;  ///< BiCGStab shat

  // Reductions (Inc) and per-component step scalars (Read).
  op2::Global<double> dots2_;  ///< dim 2d: paired per-component dots
  op2::Global<double> dot1_;   ///< dim d
  op2::Global<double> alpha_;
  op2::Global<double> beta_;
  op2::Global<double> omega_;

  // Jacobi: reciprocal diagonal (dim 1).
  op2::Dat<double>* invdiag_;

  // BlockILU0 factors of the rank-local owned diagonal block (CSR over the
  // stencil pattern, halo columns dropped).
  std::vector<std::size_t> ilu_ptr_;
  std::vector<op2::index_t> ilu_col_;
  std::vector<double> ilu_val_;
  std::vector<std::size_t> ilu_diag_;
};

}  // namespace vcgt::krylov
