// Result comparison under the explicit tolerance policy (DESIGN.md §9).
//
// The default is bit-exactness: a value produced by a backend must equal
// the oracle's exactly (with +0/-0 identified and NaN == NaN). Tolerance
// is granted only where floating-point addition's non-associativity makes
// bit divergence legitimate — indirect-increment targets (the backend
// chooses the fold order) and sum reductions folded across ranks — and
// there it is *asserted*, ULP-bounded with an absolute fallback scaled by
// the oracle's magnitude, never skipped.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "src/util/log.hpp"
#include "src/verify/verify.hpp"

namespace vcgt::verify {

namespace {

/// Monotone integer lattice for doubles: negatives map to [0, 2^63),
/// positives to [2^63, 2^64), adjacent representables differ by 1.
std::uint64_t ordered_key(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return (u >> 63) ? ~u : (u | 0x8000000000000000ull);
}

/// Exact-match predicate: == identifies +0/-0; NaN matches NaN.
bool exact_eq(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

/// ULP budget for legitimate fold-order divergence (~1.5e-11 relative),
/// with an absolute fallback for catastrophic-cancellation sites where the
/// result is tiny relative to the folded terms.
constexpr std::uint64_t kUlpTol = 1ull << 16;
constexpr double kAbsTol = 1e-9;

bool tolerant_eq(double a, double b, double scale) {
  if (exact_eq(a, b)) return true;
  if (std::isnan(a) || std::isnan(b)) return false;
  if (ulp_diff(a, b) <= kUlpTol) return true;
  return std::abs(a - b) <= kAbsTol * scale;
}

double dat_scale(const std::vector<double>& oracle) {
  double s = 1.0;
  for (const double v : oracle) {
    if (std::isfinite(v)) s = std::max(s, std::abs(v));
  }
  return s;
}

std::string fmt_pair(double a, double b) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%a vs %a (ulp %llu)", a, b,
                static_cast<unsigned long long>(ulp_diff(a, b)));
  return buf;
}

}  // namespace

std::uint64_t ulp_diff(double a, double b) {
  if (a == b) return 0;
  if (std::isnan(a) && std::isnan(b)) return 0;
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t ka = ordered_key(a), kb = ordered_key(b);
  return ka > kb ? ka - kb : kb - ka;
}

std::optional<Mismatch> compare_to_oracle(const CaseSpec& spec, const TaintInfo& taint,
                                          const RunResult& oracle, const RunResult& run,
                                          const ExecConfig& cfg) {
  if (!run.ok) return Mismatch{cfg.name, util::fmt("run failed: {}", run.error)};
  if (run.dats.size() != oracle.dats.size() ||
      run.reductions.size() != oracle.reductions.size()) {
    return Mismatch{cfg.name, "result shape differs from oracle"};
  }
  const int dps = spec.mesh.dats_per_set;
  for (std::size_t e = 0; e < oracle.dats.size(); ++e) {
    const auto& ov = oracle.dats[e];
    const auto& rv = run.dats[e];
    if (ov.size() != rv.size()) {
      return Mismatch{cfg.name, util::fmt("dat d{}_{} size {} != oracle {}",
                                          e / static_cast<std::size_t>(dps),
                                          e % static_cast<std::size_t>(dps), rv.size(),
                                          ov.size())};
    }
    const bool tainted = taint.dat[e];
    const double scale = tainted ? dat_scale(ov) : 1.0;
    for (std::size_t i = 0; i < ov.size(); ++i) {
      const bool ok = tainted ? tolerant_eq(ov[i], rv[i], scale) : exact_eq(ov[i], rv[i]);
      if (!ok) {
        return Mismatch{
            cfg.name,
            util::fmt("dat d{}_{}[{}] {} ({} policy)", e / static_cast<std::size_t>(dps),
                      e % static_cast<std::size_t>(dps), i, fmt_pair(ov[i], rv[i]),
                      tainted ? "ulp" : "exact")};
      }
    }
  }
  // Reductions, in loop order (same cursor walk as the runner's recording).
  std::size_t cur = 0;
  for (std::size_t l = 0; l < spec.loops.size(); ++l) {
    const OpKind k = spec.loops[l].kind;
    if (k == OpKind::ReduceSum) {
      // Ascending single-rank fold in deterministic mode reproduces the
      // oracle's order exactly; rank-grouped folds get the ULP budget.
      const bool exact = cfg.nranks == 1 && cfg.deterministic_reductions &&
                         !taint.red_input[l];
      const double o = oracle.reductions[cur], r = run.reductions[cur];
      const bool ok = exact ? exact_eq(o, r) : tolerant_eq(o, r, std::max(1.0, std::abs(o)));
      if (!ok) {
        return Mismatch{cfg.name, util::fmt("loop {} sum reduction {} ({} policy)", l,
                                            fmt_pair(o, r), exact ? "exact" : "ulp")};
      }
      ++cur;
    } else if (k == OpKind::ReduceMinMax) {
      // Min/max over an untainted multiset is order-free bit-wise.
      const bool exact = !taint.red_input[l];
      for (int j = 0; j < 2; ++j) {
        const double o = oracle.reductions[cur], r = run.reductions[cur];
        const bool ok =
            exact ? exact_eq(o, r) : tolerant_eq(o, r, std::max(1.0, std::abs(o)));
        if (!ok) {
          return Mismatch{cfg.name,
                          util::fmt("loop {} {} reduction {} ({} policy)", l,
                                    j == 0 ? "min" : "max", fmt_pair(o, r),
                                    exact ? "exact" : "ulp")};
        }
        ++cur;
      }
    }
  }
  return std::nullopt;
}

std::optional<Mismatch> compare_exact(const RunResult& base, const RunResult& run,
                                      const ExecConfig& cfg) {
  if (!run.ok) return Mismatch{cfg.name, util::fmt("run failed: {}", run.error)};
  if (run.dats.size() != base.dats.size() ||
      run.reductions.size() != base.reductions.size()) {
    return Mismatch{cfg.name, "result shape differs from group base"};
  }
  for (std::size_t e = 0; e < base.dats.size(); ++e) {
    if (base.dats[e].size() != run.dats[e].size()) {
      return Mismatch{cfg.name, util::fmt("dat entry {} size differs from group base", e)};
    }
    for (std::size_t i = 0; i < base.dats[e].size(); ++i) {
      if (!exact_eq(base.dats[e][i], run.dats[e][i])) {
        return Mismatch{cfg.name, util::fmt("dat entry {}[{}] {} (exact vs group base)", e,
                                            i, fmt_pair(base.dats[e][i], run.dats[e][i]))};
      }
    }
  }
  for (std::size_t i = 0; i < base.reductions.size(); ++i) {
    if (!exact_eq(base.reductions[i], run.reductions[i])) {
      return Mismatch{cfg.name, util::fmt("reduction {} {} (exact vs group base)", i,
                                          fmt_pair(base.reductions[i], run.reductions[i]))};
    }
  }
  if (base.fingerprints != run.fingerprints) {
    for (const auto& [name, fp] : base.fingerprints) {
      const auto it = run.fingerprints.find(name);
      if (it == run.fingerprints.end()) {
        return Mismatch{cfg.name, util::fmt("plan '{}' missing vs group base", name)};
      }
      if (it->second != fp) {
        return Mismatch{cfg.name,
                        util::fmt("plan '{}' fingerprint {} != group base {}", name,
                                  it->second, fp)};
      }
    }
    return Mismatch{cfg.name, "extra plans vs group base"};
  }
  return std::nullopt;
}

}  // namespace vcgt::verify
