// Case executor: realizes a CaseSpec universe in an op2::Context and runs
// the generated loop program through the production typed par_loop
// builders, once per ExecConfig matrix cell. The same function body serves
// the serial oracle and every distributed backend (inside World::run).
#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "src/minimpi/fault.hpp"
#include "src/minimpi/minimpi.hpp"
#include "src/op2/op2.hpp"
#include "src/util/log.hpp"
#include "src/verify/verify.hpp"

namespace vcgt::verify {

namespace {

std::uint64_t fp_fold(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  return h;
}

op2::Config to_op2_config(const ExecConfig& cfg) {
  op2::Config c;
  c.nthreads = cfg.nthreads;
  c.force_coloring = cfg.force_coloring;
  c.partial_halos = cfg.partial_halos;
  c.grouped_halos = cfg.grouped_halos;
  c.latency_hiding = cfg.latency_hiding;
  c.default_layout = cfg.layout;
  c.aosoa_block = cfg.aosoa_block;
  c.deterministic_reductions = cfg.deterministic_reductions;
  c.chain_tile = cfg.chain_tile;
  return c;
}

struct Reduction {
  std::unique_ptr<op2::Global<double>> g0, g1;  ///< sum, or min+max
};

/// Loop sinks: the same generated kernel either runs immediately as a
/// par_loop or is declared as a chain member.
struct ParLoopEmit {
  template <class K, class... As>
  void operator()(const char* name, op2::Set& set, K kernel, As... as) const {
    op2::par_loop(name, set, std::move(kernel), as...);
  }
};

struct ChainEmit {
  op2::LoopChain* chain;
  template <class K, class... As>
  void operator()(const char* name, op2::Set& set, K kernel, As... as) const {
    chain->add(name, set, std::move(kernel), as...);
  }
};

/// Emits one LoopOp of the algebra through `emit` — the single place the
/// generated kernels are written, shared by the unchained and chained paths.
template <class Emit>
void emit_op(const Emit& emit, const LoopOp& op, const char* name, op2::Set& set,
             const MeshTables& tables, int dps,
             const std::vector<op2::Dat<double>*>& dats,
             const std::vector<op2::Map*>& maps, Reduction& red) {
  const auto entry = [&](int s, int slot) {
    return static_cast<std::size_t>(s * dps + slot);
  };
  const double k1 = op.k1, k2 = op.k2;
  switch (op.kind) {
    case OpKind::StampDirect: {
      auto& a = *dats[entry(op.set, op.a)];
      const int ad = a.dim();
      emit(name, set,
           [=](double* av, const op2::gindex_t* gid) {
             const auto g = static_cast<double>(*gid);
             for (int c = 0; c < ad; ++c) {
               av[c] = k1 * (std::fmod(g, 19.0) + 1.0) +
                       k2 * static_cast<double>(c + 1) * (std::fmod(g, 7.0) + 1.0);
             }
           },
           op2::write(a), op2::arg_idx());
      break;
    }
    case OpKind::ScaleDirect: {
      auto& a = *dats[entry(op.set, op.a)];
      const int ad = a.dim();
      emit(name, set,
           [=](double* av) {
             for (int c = 0; c < ad; ++c) av[c] = k1 * av[c] + k2;
           },
           op2::rw(a));
      break;
    }
    case OpKind::AxpyDirect: {
      auto& a = *dats[entry(op.set, op.a)];
      auto& b = *dats[entry(op.set, op.b)];
      const int ad = a.dim(), bd = b.dim();
      emit(name, set,
           [=](double* av, const double* bv) {
             for (int c = 0; c < ad; ++c) av[c] += k1 * bv[c % bd];
           },
           op2::rw(a), op2::read(b));
      break;
    }
    case OpKind::GatherRead: {
      const op2::Map& m = *maps[static_cast<std::size_t>(op.map)];
      auto& a = *dats[entry(op.set, op.a)];
      auto& b = *dats[entry(tables.map_to[static_cast<std::size_t>(op.map)], op.b)];
      const int ad = a.dim(), bd = b.dim();
      emit(name, set,
           [=](double* av, const double* bv) {
             for (int c = 0; c < ad; ++c) av[c] += k1 * bv[c % bd];
           },
           op2::rw(a), op2::read(b, m, op.idx));
      break;
    }
    case OpKind::ScatterInc: {
      const op2::Map& m = *maps[static_cast<std::size_t>(op.map)];
      auto& a = *dats[entry(op.set, op.a)];
      auto& b = *dats[entry(tables.map_to[static_cast<std::size_t>(op.map)], op.b)];
      const int ad = a.dim(), bd = b.dim();
      if (op.idx2 >= 0) {
        emit(name, set,
             [=](const double* av, double* b1, double* b2) {
               for (int c = 0; c < bd; ++c) {
                 const double v = k1 * av[c % ad];
                 b1[c] += v;
                 b2[c] -= v;
               }
             },
             op2::read(a), op2::inc(b, m, op.idx), op2::inc(b, m, op.idx2));
      } else {
        emit(name, set,
             [=](const double* av, double* bv) {
               for (int c = 0; c < bd; ++c) bv[c] += k1 * av[c % ad];
             },
             op2::read(a), op2::inc(b, m, op.idx));
      }
      break;
    }
    case OpKind::ScatterWrite: {
      const op2::Map& m = *maps[static_cast<std::size_t>(op.map)];
      auto& b = *dats[entry(tables.map_to[static_cast<std::size_t>(op.map)], op.b)];
      const int bd = b.dim();
      emit(name, set,
           [=](double* bv) {
             for (int c = 0; c < bd; ++c) {
               bv[c] = k1 + static_cast<double>(c);
             }
           },
           op2::write(b, m, op.idx));
      break;
    }
    case OpKind::ReduceSum: {
      auto& a = *dats[entry(op.set, op.a)];
      const int ad = a.dim();
      emit(name, set,
           [=](const double* av, double* g) {
             for (int c = 0; c < ad; ++c) *g += k1 * av[c];
           },
           op2::read(a), op2::reduce_sum(*red.g0));
      break;
    }
    case OpKind::ReduceMinMax: {
      auto& a = *dats[entry(op.set, op.a)];
      const int ad = a.dim();
      emit(name, set,
           [=](const double* av, double* gmin, double* gmax) {
             for (int c = 0; c < ad; ++c) {
               if (av[c] < *gmin) *gmin = av[c];
               if (av[c] > *gmax) *gmax = av[c];
             }
           },
           op2::read(a), op2::reduce_min(*red.g0), op2::reduce_max(*red.g1));
      break;
    }
    case OpKind::SpmvRow: {
      // The krylov SpMV access shape: whole-row column ids (op2::row) plus
      // a gather-free layout-aware view of the target dat (op2::read_span),
      // folding the row in fixed ascending slot order.
      const op2::Map& m = *maps[static_cast<std::size_t>(op.map)];
      auto& a = *dats[entry(op.set, op.a)];
      auto& b = *dats[entry(tables.map_to[static_cast<std::size_t>(op.map)], op.b)];
      const int ad = a.dim(), bd = b.dim(), md = m.dim();
      emit(name, set,
           [=](double* av, const index_t* cols, op2::DatSpan<double> x) {
             for (int c = 0; c < ad; ++c) {
               double s = 0.0;
               for (int k = 0; k < md; ++k) s += x.at(cols[k], c % bd);
               av[c] = k1 * s + k2;
             }
           },
           op2::write(a), op2::row(m), op2::read_span(b, m));
      break;
    }
    case OpKind::GlobalAxpy: {
      // Read-mode global coefficient (krylov's alpha/beta shape): red.g0
      // holds a constant initialized to k2 and is never finalized as a
      // reduction (the runner skips it at collection).
      auto& a = *dats[entry(op.set, op.a)];
      auto& b = *dats[entry(op.set, op.b)];
      const int ad = a.dim(), bd = b.dim();
      emit(name, set,
           [=](double* av, const double* bv, const double* g) {
             for (int c = 0; c < ad; ++c) av[c] += k1 * *g * bv[c % bd];
           },
           op2::rw(a), op2::read(b), op2::read(*red.g0));
      break;
    }
  }
}

/// Per-rank shard rows for the sharded-setup path (DESIGN.md §13): each
/// set's block-owned rows plus a ghost rind wide enough for
/// partition_sharded() to reproduce the monolithic halos. Ownership mirrors
/// partition_sharded's rule exactly — nodes (the primary) by block_owner,
/// every other set through the owner of its first map target, declaration
/// order to a fixpoint — and the rind is the map closure of the owned rows:
/// first every foreign from-row seeing a locally owned target (the exec
/// candidates), then all targets of every kept from-row so the shard-local
/// map tables are closed. Extra rind rows beyond the true halo are dropped
/// by partition_sharded; a *missing* row trips its exec cross-check, which
/// is precisely the defect class this group hunts.
std::vector<std::vector<op2::gindex_t>> build_shards(const MeshTables& tables, int me,
                                                     int nranks) {
  const auto nsets = tables.set_sizes.size();
  std::vector<std::vector<int>> owners(nsets);
  std::vector<bool> resolved(nsets, false);
  owners[0].resize(static_cast<std::size_t>(tables.set_sizes[0]));
  for (index_t g = 0; g < tables.set_sizes[0]; ++g) {
    owners[0][static_cast<std::size_t>(g)] =
        op2::block_owner(g, tables.set_sizes[0], nranks);
  }
  resolved[0] = true;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t m = 0; m < tables.map_tables.size(); ++m) {
      const auto f = static_cast<std::size_t>(tables.map_from[m]);
      const auto t = static_cast<std::size_t>(tables.map_to[m]);
      if (resolved[f] || !resolved[t]) continue;
      const auto dim = static_cast<std::size_t>(tables.map_dims[m]);
      owners[f].resize(static_cast<std::size_t>(tables.set_sizes[f]));
      for (std::size_t e = 0; e < owners[f].size(); ++e) {
        owners[f][e] =
            owners[t][static_cast<std::size_t>(tables.map_tables[m][e * dim])];
      }
      resolved[f] = true;
      progressed = true;
    }
  }
  // Every universe map targets nodes, so everything resolves above; a set
  // that somehow didn't falls back to block ownership like partition_sharded.
  for (std::size_t s = 0; s < nsets; ++s) {
    if (resolved[s]) continue;
    owners[s].resize(static_cast<std::size_t>(tables.set_sizes[s]));
    for (index_t g = 0; g < tables.set_sizes[s]; ++g) {
      owners[s][static_cast<std::size_t>(g)] =
          op2::block_owner(g, tables.set_sizes[s], nranks);
    }
  }

  std::vector<std::vector<char>> keep(nsets);
  for (std::size_t s = 0; s < nsets; ++s) {
    keep[s].assign(owners[s].size(), 0);
    for (std::size_t e = 0; e < owners[s].size(); ++e) {
      if (owners[s][e] == me) keep[s][e] = 1;
    }
  }
  for (std::size_t m = 0; m < tables.map_tables.size(); ++m) {
    const auto f = static_cast<std::size_t>(tables.map_from[m]);
    const auto t = static_cast<std::size_t>(tables.map_to[m]);
    const auto dim = static_cast<std::size_t>(tables.map_dims[m]);
    for (std::size_t e = 0; e < owners[f].size(); ++e) {
      if (owners[f][e] == me) continue;
      for (std::size_t i = 0; i < dim; ++i) {
        if (owners[t][static_cast<std::size_t>(tables.map_tables[m][e * dim + i])] ==
            me) {
          keep[f][e] = 1;
          break;
        }
      }
    }
  }
  bool grew = true;
  while (grew) {
    grew = false;
    for (std::size_t m = 0; m < tables.map_tables.size(); ++m) {
      const auto f = static_cast<std::size_t>(tables.map_from[m]);
      const auto t = static_cast<std::size_t>(tables.map_to[m]);
      const auto dim = static_cast<std::size_t>(tables.map_dims[m]);
      for (std::size_t e = 0; e < keep[f].size(); ++e) {
        if (!keep[f][e]) continue;
        for (std::size_t i = 0; i < dim; ++i) {
          const auto tgt = static_cast<std::size_t>(tables.map_tables[m][e * dim + i]);
          if (!keep[t][tgt]) {
            keep[t][tgt] = 1;
            grew = true;
          }
        }
      }
    }
  }

  std::vector<std::vector<op2::gindex_t>> shard(nsets);
  for (std::size_t s = 0; s < nsets; ++s) {
    for (std::size_t e = 0; e < keep[s].size(); ++e) {
      if (keep[s][e]) shard[s].push_back(static_cast<op2::gindex_t>(e));
    }
  }
  return shard;
}

/// Shard row index of global id `g` (gids ascending; must be present).
index_t shard_row(const std::vector<op2::gindex_t>& gids, op2::gindex_t g) {
  const auto it = std::lower_bound(gids.begin(), gids.end(), g);
  return static_cast<index_t>(it - gids.begin());
}

/// Builds the universe, runs the program, and (on rank 0 / serial) fills
/// `out`. Collective: every rank executes identically.
void exec_program(op2::Context& ctx, const CaseSpec& spec, const MeshTables& tables,
                  const ExecConfig& cfg, RunResult* out) {
  const int dps = spec.mesh.dats_per_set;
  std::vector<std::vector<op2::gindex_t>> shard;
  if (cfg.sharded) shard = build_shards(tables, ctx.rank(), ctx.nranks());

  const char* set_names[kNumSets] = {"nodes", "edges", "cells", "bnd"};
  std::vector<op2::Set*> sets;
  for (int s = 0; s < kNumSets; ++s) {
    const auto sz = tables.set_sizes[static_cast<std::size_t>(s)];
    sets.push_back(cfg.sharded
                       ? &ctx.decl_set_sharded(set_names[s], sz,
                                               shard[static_cast<std::size_t>(s)])
                       : &ctx.decl_set(set_names[s], sz));
  }

  std::vector<op2::Map*> maps;
  for (std::size_t m = 0; m < tables.map_tables.size(); ++m) {
    std::vector<index_t> table;
    if (cfg.sharded) {
      // Shard-local target rows: the global rows of this rank's from-shard,
      // each target translated to its row in the to-set's shard (present by
      // the closure in build_shards).
      const auto& sf = shard[static_cast<std::size_t>(tables.map_from[m])];
      const auto& st = shard[static_cast<std::size_t>(tables.map_to[m])];
      const auto dim = static_cast<std::size_t>(tables.map_dims[m]);
      table.reserve(sf.size() * dim);
      for (const op2::gindex_t e : sf) {
        for (std::size_t i = 0; i < dim; ++i) {
          table.push_back(shard_row(
              st, tables.map_tables[m][static_cast<std::size_t>(e) * dim + i]));
        }
      }
    } else {
      table = tables.map_tables[m];
    }
    maps.push_back(&ctx.decl_map(util::fmt("map{}", m),
                                 *sets[static_cast<std::size_t>(tables.map_from[m])],
                                 *sets[static_cast<std::size_t>(tables.map_to[m])],
                                 tables.map_dims[m], std::move(table)));
  }

  // Sharded dats hold only the shard's rows (AoS source order either way).
  const auto slice_rows = [&](const std::vector<double>& global, int dim, int set) {
    if (!cfg.sharded) return global;
    const auto& rows = shard[static_cast<std::size_t>(set)];
    std::vector<double> local;
    local.reserve(rows.size() * static_cast<std::size_t>(dim));
    for (const op2::gindex_t g : rows) {
      for (int c = 0; c < dim; ++c) {
        local.push_back(global[static_cast<std::size_t>(g) * static_cast<std::size_t>(dim) +
                               static_cast<std::size_t>(c)]);
      }
    }
    return local;
  };

  // Coordinates get the configured default layout too, so partitioning
  // itself runs under every layout (the PR 3 RCB regression's shape).
  auto& coords = ctx.decl_dat<double>(*sets[0], 2, "coords",
                                      slice_rows(tables.coords, 2, 0));

  std::vector<op2::Dat<double>*> dats(static_cast<std::size_t>(kNumSets * dps));
  for (int s = 0; s < kNumSets; ++s) {
    for (int k = 0; k < dps; ++k) {
      const auto e = static_cast<std::size_t>(s * dps + k);
      dats[e] = &ctx.decl_dat<double>(*sets[static_cast<std::size_t>(s)],
                                      tables.dat_dims[e], util::fmt("d{}_{}", s, k),
                                      slice_rows(tables.dat_init[e], tables.dat_dims[e], s));
    }
  }

  if (cfg.sharded) {
    ctx.partition_sharded({sets[0]});
  } else if (ctx.distributed()) {
    ctx.partition(cfg.partitioner, coords);
  }

  std::vector<Reduction> reds(spec.loops.size());
  for (std::size_t l = 0; l < spec.loops.size(); ++l) {
    const LoopOp& op = spec.loops[l];
    if (op.kind == OpKind::ReduceSum) {
      reds[l].g0 = std::make_unique<op2::Global<double>>(
          ctx.decl_global<double>(util::fmt("red{}", l), 1, {op.k2}));
    } else if (op.kind == OpKind::ReduceMinMax) {
      reds[l].g0 = std::make_unique<op2::Global<double>>(
          ctx.decl_global<double>(util::fmt("rmin{}", l), 1, {1e300}));
      reds[l].g1 = std::make_unique<op2::Global<double>>(
          ctx.decl_global<double>(util::fmt("rmax{}", l), 1, {-1e300}));
    } else if (op.kind == OpKind::GlobalAxpy) {
      reds[l].g0 = std::make_unique<op2::Global<double>>(
          ctx.decl_global<double>(util::fmt("gco{}", l), 1, {op.k2}));
    }
  }

  std::vector<std::string> names;
  names.reserve(spec.loops.size());
  for (std::size_t l = 0; l < spec.loops.size(); ++l) {
    names.push_back(util::fmt("op{}_{}", l, op_kind_name(spec.loops[l].kind)));
  }

  for (int it = 0; it < spec.iters; ++it) {
    const std::size_t nloops = spec.loops.size();
    const std::size_t clen = 2 + static_cast<std::size_t>(spec.seed % 3);
    std::size_t l = 0;
    int ci = 0;
    while (l < nloops) {
      const std::size_t left = nloops - l;
      if (!cfg.chained || left < 2) {
        const LoopOp& op = spec.loops[l];
        emit_op(ParLoopEmit{}, op, names[l].c_str(),
                *sets[static_cast<std::size_t>(op.set)], tables, dps, dats, maps,
                reds[l]);
        ++l;
        continue;
      }
      // Consecutive runs of 2..4 loops (length seeded per case) become one
      // declared chain. Chain names repeat identically every iteration, so
      // the cached plan revalidates instead of rebuilding.
      const std::size_t n = std::min(clen, left);
      op2::LoopChain chain(ctx, util::fmt("chain{}", ci++));
      const ChainEmit ce{&chain};
      for (std::size_t j = 0; j < n; ++j, ++l) {
        const LoopOp& op = spec.loops[l];
        emit_op(ce, op, names[l].c_str(), *sets[static_cast<std::size_t>(op.set)],
                tables, dps, dats, maps, reds[l]);
      }
      chain.execute();
    }
  }

  // Collect results (collective: fetch_global allgathers on every rank).
  std::vector<std::vector<double>> fetched(dats.size());
  for (std::size_t e = 0; e < dats.size(); ++e) fetched[e] = ctx.fetch_global(*dats[e]);

  // Fingerprints: per-rank structural hashes folded in rank order (the plan
  // name set is identical on every rank — loops are collective).
  const auto local = ctx.plan_fingerprints();
  std::map<std::string, std::uint64_t> combined;
  if (!ctx.distributed()) {
    combined = local;
  } else {
    std::vector<std::uint64_t> vals;
    vals.reserve(local.size());
    for (const auto& [n, v] : local) vals.push_back(v);
    const auto all = ctx.comm().allgatherv(std::span<const std::uint64_t>(vals));
    const std::size_t n = vals.size();
    std::size_t i = 0;
    for (const auto& [name2, v] : local) {
      std::uint64_t h = 0xcbf29ce484222325ull;
      for (int r = 0; r < ctx.nranks(); ++r) {
        h = fp_fold(h, all[static_cast<std::size_t>(r) * n + i]);
      }
      combined[name2] = h;
      ++i;
      (void)v;
    }
  }

  if (ctx.rank() == 0 && out) {
    out->dats = std::move(fetched);
    for (std::size_t l = 0; l < spec.loops.size(); ++l) {
      // GlobalAxpy's g0 is a Read-mode constant, not a reduction result —
      // compare_to_oracle's cursor walk only expects ReduceSum/ReduceMinMax.
      if (spec.loops[l].kind == OpKind::GlobalAxpy) continue;
      if (reds[l].g0) out->reductions.push_back(reds[l].g0->value());
      if (reds[l].g1) out->reductions.push_back(reds[l].g1->value());
    }
    out->fingerprints = std::move(combined);
    out->ok = true;
  }
}

}  // namespace

RunResult run_case(const CaseSpec& spec, const MeshTables& tables, const ExecConfig& cfg) {
  RunResult result;
  try {
    if (cfg.nranks <= 1) {
      op2::Context ctx(to_op2_config(cfg));
      exec_program(ctx, spec, tables, cfg, &result);
    } else {
      minimpi::WorldOptions opts;
      if (cfg.faults) {
        minimpi::FaultConfig fc;
        fc.seed = spec.seed ^ 0xFA417ull;
        fc.p_delay = 0.05;
        fc.delay_seconds = 2e-5;
        fc.p_duplicate = 0.08;
        fc.p_reorder = 0.08;
        fc.p_drop = 0.03;
        fc.drop_attempts = 1;
        opts.fault = std::make_shared<minimpi::FaultPlan>(fc);
      }
      minimpi::World::run(
          cfg.nranks,
          [&](minimpi::Comm& comm) {
            op2::Context ctx(comm, to_op2_config(cfg));
            exec_program(ctx, spec, tables, cfg, &result);
          },
          opts);
    }
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  }
  return result;
}

}  // namespace vcgt::verify
