// MeshGen + ProgramGen + taint analysis for vcgt::verify (DESIGN.md §9).
//
// Everything here is a pure function of the spec: mesh coordinates, dat
// dimensions and initial values come from stateless hash mixing keyed on
// (mesh_seed, entity, component), never from sequential RNG draws, so a
// shrunk spec (smaller nx, fewer dats) still realizes the identical values
// for the entities it keeps.
#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "src/util/rng.hpp"
#include "src/verify/verify.hpp"

namespace vcgt::verify {

namespace {

/// SplitMix64 finalizer: stateless key -> uniform 64-bit hash.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
std::uint64_t mix(std::uint64_t a, std::uint64_t b) { return mix(a * 0x9E3779B97F4A7C15ull ^ b); }
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return mix(mix(a, b), c);
}

/// Uniform double in [0, 1) from a hash key.
double unit(std::uint64_t key) {
  return static_cast<double>(mix(key) >> 11) * 0x1.0p-53;
}

}  // namespace

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::StampDirect: return "stamp";
    case OpKind::ScaleDirect: return "scale";
    case OpKind::AxpyDirect: return "axpy";
    case OpKind::GatherRead: return "gather";
    case OpKind::ScatterInc: return "scatter_inc";
    case OpKind::ScatterWrite: return "scatter_write";
    case OpKind::ReduceSum: return "reduce_sum";
    case OpKind::ReduceMinMax: return "reduce_minmax";
    case OpKind::SpmvRow: return "spmv_row";
    case OpKind::GlobalAxpy: return "global_axpy";
  }
  return "?";
}

bool parse_op_kind(const std::string& text, OpKind* out) {
  for (const OpKind k :
       {OpKind::StampDirect, OpKind::ScaleDirect, OpKind::AxpyDirect, OpKind::GatherRead,
        OpKind::ScatterInc, OpKind::ScatterWrite, OpKind::ReduceSum, OpKind::ReduceMinMax,
        OpKind::SpmvRow, OpKind::GlobalAxpy}) {
    if (text == op_kind_name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

MeshTables make_tables(const MeshSpec& spec) {
  if (spec.nx < 2 || spec.ny < 2) throw std::invalid_argument("verify: mesh needs nx,ny >= 2");
  if (spec.fan_in < 1 || spec.fan_in > 4) throw std::invalid_argument("verify: fan_in in 1..4");
  if (spec.dats_per_set < 1 || spec.dats_per_set > 3) {
    throw std::invalid_argument("verify: dats_per_set in 1..3");
  }
  const int nx = spec.nx, ny = spec.ny;
  const index_t n_nodes = static_cast<index_t>(nx * ny);
  const index_t n_edges = static_cast<index_t>((nx - 1) * ny + nx * (ny - 1));
  const index_t n_cells = spec.cells ? static_cast<index_t>((nx - 1) * (ny - 1)) : 0;
  const index_t n_bnd = spec.boundary ? static_cast<index_t>(2 * nx + 2 * ny - 4) : 0;

  MeshTables t;
  t.set_sizes = {n_nodes, n_edges, n_cells, n_bnd};

  // Jittered integer lattice: distinct coordinates along both axes so RCB
  // medians are unambiguous, jitter so the axis extents vary per seed.
  t.coords.resize(static_cast<std::size_t>(n_nodes) * 2);
  for (index_t g = 0; g < n_nodes; ++g) {
    const double jx = 0.45 * unit(mix(spec.mesh_seed, 0xC0, static_cast<std::uint64_t>(g)));
    const double jy = 0.45 * unit(mix(spec.mesh_seed, 0xC1, static_cast<std::uint64_t>(g)));
    t.coords[static_cast<std::size_t>(g) * 2 + 0] = static_cast<double>(g % nx) + jx;
    t.coords[static_cast<std::size_t>(g) * 2 + 1] = static_cast<double>(g / nx) + jy;
  }

  const auto node_id = [nx](int i, int j) { return static_cast<index_t>(j * nx + i); };

  // Map 0: e2n — horizontal edges first, then vertical.
  std::vector<index_t> e2n;
  e2n.reserve(static_cast<std::size_t>(n_edges) * 2);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i + 1 < nx; ++i) {
      e2n.push_back(node_id(i, j));
      e2n.push_back(node_id(i + 1, j));
    }
  }
  for (int j = 0; j + 1 < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      e2n.push_back(node_id(i, j));
      e2n.push_back(node_id(i, j + 1));
    }
  }

  // Map 1: c2n — the four distinct cell corners.
  std::vector<index_t> c2n;
  c2n.reserve(static_cast<std::size_t>(n_cells) * 4);
  if (spec.cells) {
    for (int j = 0; j + 1 < ny; ++j) {
      for (int i = 0; i + 1 < nx; ++i) {
        c2n.push_back(node_id(i, j));
        c2n.push_back(node_id(i + 1, j));
        c2n.push_back(node_id(i + 1, j + 1));
        c2n.push_back(node_id(i, j + 1));
      }
    }
  }

  // Map 2: b2n — perimeter nodes counterclockwise from the origin.
  std::vector<index_t> b2n;
  if (spec.boundary) {
    for (int i = 0; i < nx; ++i) b2n.push_back(node_id(i, 0));
    for (int j = 1; j < ny; ++j) b2n.push_back(node_id(nx - 1, j));
    for (int i = nx - 2; i >= 0; --i) b2n.push_back(node_id(i, ny - 1));
    for (int j = ny - 2; j >= 1; --j) b2n.push_back(node_id(0, j));
  }

  t.map_tables = {std::move(e2n), std::move(c2n), std::move(b2n)};
  t.map_dims = {2, 4, 1};
  t.map_from = {1, 2, 3};
  t.map_to = {0, 0, 0};

  // Extra maps: uncontrolled indirection, uniformly random node targets
  // (rows may repeat a target — single-component access only; see spec).
  for (int m = 0; m < spec.extra_maps; ++m) {
    std::vector<index_t> table(static_cast<std::size_t>(n_edges) *
                               static_cast<std::size_t>(spec.fan_in));
    for (std::size_t i = 0; i < table.size(); ++i) {
      table[i] = static_cast<index_t>(
          mix(spec.mesh_seed, 0xE0 + static_cast<std::uint64_t>(m), i) %
          static_cast<std::uint64_t>(n_nodes));
    }
    t.map_tables.push_back(std::move(table));
    t.map_dims.push_back(spec.fan_in);
    t.map_from.push_back(1);
    t.map_to.push_back(0);
  }

  // Dats: dim and initial values keyed on (mesh_seed, set, slot[, gid, c])
  // only, so they are invariant under every shrink axis except mesh extent.
  t.dat_dims.resize(static_cast<std::size_t>(kNumSets) *
                    static_cast<std::size_t>(spec.dats_per_set));
  t.dat_init.resize(t.dat_dims.size());
  for (int s = 0; s < kNumSets; ++s) {
    for (int k = 0; k < spec.dats_per_set; ++k) {
      const auto slot = static_cast<std::size_t>(s * spec.dats_per_set + k);
      const int dim = 1 + static_cast<int>(mix(spec.mesh_seed, 0xDA,
                                               static_cast<std::uint64_t>(s * 8 + k)) %
                                           3);
      t.dat_dims[slot] = dim;
      auto& init = t.dat_init[slot];
      init.resize(static_cast<std::size_t>(t.set_sizes[static_cast<std::size_t>(s)]) *
                  static_cast<std::size_t>(dim));
      for (std::size_t i = 0; i < init.size(); ++i) {
        init[i] = 2.0 * unit(mix(mix(spec.mesh_seed, 0xDB, slot), i)) - 1.0;
      }
    }
  }
  return t;
}

namespace {

/// Draws a coefficient in ±[0.5, 2): large enough to move bits, small
/// enough that repeated application cannot overflow within a few loops.
double draw_coeff(util::Rng& rng) {
  const double mag = rng.uniform(0.5, 2.0);
  return rng.bounded(2) ? -mag : mag;
}

}  // namespace

CaseSpec gen_case(std::uint64_t campaign_seed, std::uint64_t case_index) {
  CaseSpec spec;
  spec.seed = mix(campaign_seed, 0x5EED, case_index);

  util::Rng mesh_rng(spec.seed ^ 0x4D455348ull);  // "MESH"
  spec.mesh.nx = 3 + static_cast<int>(mesh_rng.bounded(6));
  spec.mesh.ny = 3 + static_cast<int>(mesh_rng.bounded(6));
  spec.mesh.mesh_seed = mesh_rng.next_u64();
  spec.mesh.cells = mesh_rng.bounded(4) != 0;
  spec.mesh.boundary = mesh_rng.bounded(4) != 0;
  spec.mesh.extra_maps = static_cast<int>(mesh_rng.bounded(3));
  spec.mesh.fan_in = 1 + static_cast<int>(mesh_rng.bounded(4));
  spec.mesh.dats_per_set = 1 + static_cast<int>(mesh_rng.bounded(3));
  spec.iters = 1 + static_cast<int>(mesh_rng.bounded(3));

  util::Rng rng(spec.seed ^ 0x50524F47ull);  // "PROG"
  const int n_loops = 1 + static_cast<int>(rng.bounded(6));
  const int dps = spec.mesh.dats_per_set;
  const int n_maps = kGridMaps + spec.mesh.extra_maps;

  // Sets eligible for iteration: nodes and edges always; cells/bnd only
  // when enabled (their maps are empty otherwise — valid but inert).
  std::vector<int> live_sets{0, 1};
  if (spec.mesh.cells) live_sets.push_back(2);
  if (spec.mesh.boundary) live_sets.push_back(3);
  // Maps eligible for indirect ops (map_from must be a live iteration set).
  std::vector<int> live_maps{0};
  if (spec.mesh.cells) live_maps.push_back(1);
  if (spec.mesh.boundary) live_maps.push_back(2);
  for (int m = 0; m < spec.mesh.extra_maps; ++m) live_maps.push_back(kGridMaps + m);

  for (int l = 0; l < n_loops; ++l) {
    LoopOp op;
    const auto pick = rng.bounded(20);
    if (pick < 3) op.kind = OpKind::StampDirect;
    else if (pick < 6) op.kind = OpKind::ScaleDirect;
    else if (pick < 8) op.kind = OpKind::AxpyDirect;
    else if (pick < 10) op.kind = OpKind::GatherRead;
    else if (pick < 13) op.kind = OpKind::ScatterInc;
    else if (pick < 14) op.kind = OpKind::ScatterWrite;
    else if (pick < 15) op.kind = OpKind::ReduceSum;
    else if (pick < 16) op.kind = OpKind::ReduceMinMax;
    else if (pick < 18) op.kind = OpKind::SpmvRow;
    else op.kind = OpKind::GlobalAxpy;
    op.k1 = draw_coeff(rng);
    op.k2 = draw_coeff(rng);

    switch (op.kind) {
      case OpKind::StampDirect:
      case OpKind::ScaleDirect:
      case OpKind::ReduceSum:
      case OpKind::ReduceMinMax:
        op.set = live_sets[rng.bounded(live_sets.size())];
        op.a = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(dps)));
        break;
      case OpKind::AxpyDirect:
      case OpKind::GlobalAxpy: {
        // Distinct slots: the kernel reads b while writing a, so a == b
        // would alias one element through two pointers. Degrade to Scale
        // when the universe only has one slot per set.
        if (dps < 2) {
          op.kind = OpKind::ScaleDirect;
          op.set = live_sets[rng.bounded(live_sets.size())];
          op.a = 0;
          break;
        }
        op.set = live_sets[rng.bounded(live_sets.size())];
        op.a = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(dps)));
        op.b = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(dps - 1)));
        if (op.b >= op.a) ++op.b;
        break;
      }
      case OpKind::GatherRead:
      case OpKind::ScatterInc:
      case OpKind::ScatterWrite:
      case OpKind::SpmvRow: {
        op.map = live_maps[rng.bounded(live_maps.size())];
        op.set = 1;  // all universe maps originate from a concrete from-set
        if (op.map == 1) op.set = 2;
        if (op.map == 2) op.set = 3;
        const int mdim = op.map == 0 ? 2 : op.map == 1 ? 4 : op.map == 2 ? 1
                                                            : spec.mesh.fan_in;
        op.idx = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(mdim)));
        op.a = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(dps)));
        op.b = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(dps)));
        // Antisymmetric flux pairs only on the grid maps (components are
        // distinct nodes by construction; extra maps may repeat a target
        // within a row, which would alias two increment lanes).
        if (op.kind == OpKind::ScatterInc && op.map <= 1 && mdim >= 2 &&
            rng.bounded(2) == 0) {
          op.idx2 = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(mdim - 1)));
          if (op.idx2 >= op.idx) ++op.idx2;
        }
        break;
      }
    }
    (void)n_maps;
    spec.loops.push_back(op);
  }
  return spec;
}

TaintInfo analyze_taint(const CaseSpec& spec, const MeshTables& tables) {
  TaintInfo info;
  info.dat.assign(static_cast<std::size_t>(kNumSets) *
                      static_cast<std::size_t>(spec.mesh.dats_per_set),
                  false);
  info.red_input.assign(spec.loops.size(), false);
  const auto entry = [&](int set, int slot) {
    return static_cast<std::size_t>(set * spec.mesh.dats_per_set + slot);
  };
  // One pass per program iteration (taint is monotone within a pass except
  // for StampDirect's cleanse, so the per-iteration state matters); stop
  // early at a fixpoint.
  for (int pass = 0; pass < spec.iters; ++pass) {
    const std::vector<bool> before = info.dat;
    for (std::size_t l = 0; l < spec.loops.size(); ++l) {
      const LoopOp& op = spec.loops[l];
      if (tables.set_sizes[static_cast<std::size_t>(op.set)] == 0) continue;
      switch (op.kind) {
        case OpKind::StampDirect:
          info.dat[entry(op.set, op.a)] = false;  // full deterministic overwrite
          break;
        case OpKind::ScaleDirect:
          break;  // per-element, order-free
        case OpKind::AxpyDirect:
        case OpKind::GlobalAxpy:  // the Read global is a compile-time-fixed
                                  // scalar; taint flows from b exactly as Axpy
          if (info.dat[entry(op.set, op.b)]) info.dat[entry(op.set, op.a)] = true;
          break;
        case OpKind::GatherRead: {
          const int to = tables.map_to[static_cast<std::size_t>(op.map)];
          if (info.dat[entry(to, op.b)]) info.dat[entry(op.set, op.a)] = true;
          break;
        }
        case OpKind::ScatterInc: {
          // Multiple iteration elements fold into one target: the result
          // depends on the fold order the backend chooses.
          const int to = tables.map_to[static_cast<std::size_t>(op.map)];
          info.dat[entry(to, op.b)] = true;
          break;
        }
        case OpKind::SpmvRow: {
          // Full overwrite from a fixed ascending in-row fold: the result
          // carries exactly the input's taint (bit-exact when b is clean).
          const int to = tables.map_to[static_cast<std::size_t>(op.map)];
          info.dat[entry(op.set, op.a)] = info.dat[entry(to, op.b)];
          break;
        }
        case OpKind::ScatterWrite:
          break;  // constant payload; unwritten elements keep their taint
        case OpKind::ReduceSum:
        case OpKind::ReduceMinMax:
          if (info.dat[entry(op.set, op.a)]) info.red_input[l] = true;
          break;
      }
    }
    if (info.dat == before && pass > 0) break;
  }
  return info;
}

}  // namespace vcgt::verify
