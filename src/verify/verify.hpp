#pragma once
// vcgt::verify — seeded property-based differential testing of the op2
// runtime (DESIGN.md §9).
//
// The paper's acceptance argument for the re-engineered solver is result
// equivalence with the reference execution; this subsystem checks that
// property generatively instead of example-by-example. A MeshGen draws a
// random but valid op2 universe (grid-connected sets, multi-dim maps with
// controllable fan-in, boundary subsets, optional random high-indirection
// maps); a ProgramGen composes a random loop program from a small algebra
// of direct/indirect reads, writes, increments and global reductions, all
// expressed through the production typed par_loop builders. Every case is
// executed on the serial-AoS oracle and re-executed across the backend ×
// layout × fault-plan matrix; results are compared under an explicit
// per-access-mode tolerance policy (bit-exact by default, ULP-bounded only
// where a floating-point fold order legitimately differs). On mismatch the
// harness shrinks the case to a minimal failing spec and serializes it as
// a self-contained `.vcgt` repro that `vcgt_fuzz --replay` re-executes
// deterministically.
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/op2/types.hpp"

namespace vcgt::verify {

using index_t = op2::index_t;

// --- case specification -----------------------------------------------------

/// Loop algebra. Each kind is one concrete par_loop shape; runtime
/// coefficients (k1, k2) and dat/map choices come from the spec, so a
/// dynamic program is expressed through the static typed-builder API.
enum class OpKind : std::uint8_t {
  StampDirect,   ///< direct Write via arg_idx: a[c] = f(global id; k1, k2)
  ScaleDirect,   ///< direct ReadWrite: a[c] = k1*a[c] + k2
  AxpyDirect,    ///< direct ReadWrite a, direct Read b (same set): a += k1*b
  GatherRead,    ///< over map.from: a[c] += k1 * b[map(e, idx)][·]
  ScatterInc,    ///< over map.from: b[map(e, idx)] += k1*a; idx2 >= 0 adds
                 ///< the antisymmetric flux  b[map(e, idx2)] -= k1*a
  ScatterWrite,  ///< over map.from: b[map(e, idx)][c] = k1 + c (writer-free)
  ReduceSum,     ///< global += k1 * sum_c a[c]  over the set
  ReduceMinMax,  ///< global min/max fold of a over the set
  SpmvRow,       ///< over map.from: a[c] = k1 * sum_k b[map(e, k)][c%bd] + k2
                 ///< via op2::row + op2::read_span (the krylov SpMV shape:
                 ///< whole-row gather-free indirect read, full overwrite)
  GlobalAxpy,    ///< direct: a[c] += k1 * (*g) * b[c%bd] with g a Read
                 ///< global initialized to k2 (krylov's alpha/beta shape)
};

const char* op_kind_name(OpKind k);
/// Inverse of op_kind_name; false on unknown text.
bool parse_op_kind(const std::string& text, OpKind* out);

/// One loop of a generated program. Dats are addressed as (set, slot) so
/// indices survive shrinking; `map` is a universe map index (-1 = direct).
struct LoopOp {
  OpKind kind = OpKind::ScaleDirect;
  int set = 0;    ///< iteration set (universe index)
  int map = -1;   ///< universe map index for indirect kinds
  int idx = 0;    ///< map component
  int idx2 = -1;  ///< second map component (ScatterInc flux), -1 = none
  int a = 0;      ///< dat slot on the iteration set
  int b = 0;      ///< dat slot on the target set (indirect) / same set (Axpy)
  double k1 = 1.0;
  double k2 = 0.0;
};

/// Mesh universe parameters. The universe always declares the same sets
/// and maps in the same order (disabled sets are declared empty), so
/// set/map/dat indices are stable under shrinking:
///   sets: 0 nodes (nx*ny, primary, jittered-lattice coords)
///         1 edges (grid edges)   2 cells ((nx-1)*(ny-1))   3 bnd (perimeter)
///   maps: 0 e2n(2)  1 c2n(4)  2 b2n(1)  3.. extra(fan_in) edges->nodes
/// Extra maps draw uniformly random node targets (possibly repeated within
/// a row — high, uncontrolled indirection), so flux-style two-component
/// increments are only ever generated on the grid maps, whose components
/// are distinct by construction.
struct MeshSpec {
  int nx = 4;
  int ny = 4;
  std::uint64_t mesh_seed = 0;  ///< coordinate jitter, dat dims/init, extras
  bool cells = true;            ///< false: cells/c2n declared empty
  bool boundary = true;         ///< false: bnd/b2n declared empty
  int extra_maps = 0;           ///< random edges->nodes maps beyond the grid
  int fan_in = 2;               ///< arity of the extra maps (1..4)
  int dats_per_set = 2;         ///< data slots per set (1..3)
};

/// A complete generated case: everything needed to re-execute it
/// bit-identically (the .vcgt repro serializes exactly these fields).
struct CaseSpec {
  std::uint64_t seed = 0;  ///< campaign case seed (also keys fault plans)
  MeshSpec mesh;
  int iters = 1;  ///< program repetitions (halo dirtiness across rounds)
  std::vector<LoopOp> loops;
};

constexpr int kNumSets = 4;
constexpr int kGridMaps = 3;

/// Deterministic realization of a MeshSpec: pure function of the spec
/// fields (no hidden RNG state), so oracle and every backend re-derive the
/// identical universe.
struct MeshTables {
  std::vector<index_t> set_sizes;              ///< kNumSets entries
  std::vector<double> coords;                  ///< nodes*2, AoS order
  std::vector<std::vector<index_t>> map_tables;  ///< grid + extra maps
  std::vector<int> map_dims;
  std::vector<int> map_from;  ///< universe set index per map
  std::vector<int> map_to;
  std::vector<int> dat_dims;                    ///< per (set*dats_per_set+slot)
  std::vector<std::vector<double>> dat_init;    ///< AoS global initial values
};

[[nodiscard]] MeshTables make_tables(const MeshSpec& spec);

// --- generation -------------------------------------------------------------

/// MeshGen + ProgramGen: derives the full CaseSpec for one campaign case.
/// Identical (campaign_seed, case_index) always yields the identical spec.
[[nodiscard]] CaseSpec gen_case(std::uint64_t campaign_seed, std::uint64_t case_index);

// --- taint analysis (tolerance policy) --------------------------------------

/// Per-dat order-sensitivity after executing the program, plus per-reduce-op
/// input taint. A dat is "tainted" when its bits may legitimately depend on
/// the floating-point fold order (indirect increments, or data derived from
/// them); untainted dats must match the oracle bit-for-bit on every backend.
struct TaintInfo {
  std::vector<bool> dat;        ///< per (set*dats_per_set+slot), final state
  std::vector<bool> red_input;  ///< per loop index: reduce op saw tainted input
};

[[nodiscard]] TaintInfo analyze_taint(const CaseSpec& spec, const MeshTables& tables);

// --- execution --------------------------------------------------------------

/// One cell of the backend × layout × fault matrix.
struct ExecConfig {
  std::string name;
  int nranks = 1;
  int nthreads = 1;
  bool force_coloring = false;
  bool partial_halos = false;
  bool grouped_halos = false;
  bool latency_hiding = true;
  op2::Layout layout = op2::Layout::AoS;
  int aosoa_block = 4;
  op2::Partitioner partitioner = op2::Partitioner::Rcb;
  /// Single-threaded ascending-order reduction folds (Config field added for
  /// this subsystem): on one rank the fold order equals the oracle's.
  ///
  /// Intentional default mismatch vs op2::Config (which defaults false):
  /// production runs keep the fast per-thread/rank-grouped partials, while
  /// the verification matrix wants the strictest comparable policy — with
  /// this on, single-rank sum reductions are held bit-exact against the
  /// oracle (see compare_to_oracle). The production nondeterministic path
  /// is still covered: default_matrix() carries dedicated *-nondet groups
  /// that force this off and are compared under the ULP policy as their own
  /// base. Pinned by VerifyMatrixTest.DeterministicReductionPolicy.
  bool deterministic_reductions = true;
  /// Run under a seeded delay/duplicate/reorder/drop FaultPlan derived from
  /// the case seed (distributed configs only).
  bool faults = false;
  /// Execute the program through declared op2::LoopChains: consecutive runs
  /// of 2–4 loops (length = 2 + seed % 3) become one chain each, a trailing
  /// leftover of fewer than 2 loops stays unchained. Same results as the
  /// unchained program under the same tolerance policy (bit-exact for
  /// untainted dats); layout variants of a chained base must match it
  /// bit-exactly with equal chain fingerprints.
  bool chained = false;
  /// Declare the universe through the sharded-setup path (DESIGN.md §13):
  /// each rank declares only its block-owned rows plus a map-closure ghost
  /// rind via decl_set_sharded, with shard-local map tables and sliced dat
  /// rows, and partitions with partition_sharded (nodes primary; ownership
  /// of the other sets inherited through their first map target). The
  /// `partitioner` field is ignored — sharded ownership is always the
  /// monolithic Block formula. Results obey the same tolerance policy as
  /// any distributed backend; layout variants of a sharded base must match
  /// it bit-exactly with equal fingerprints.
  bool sharded = false;
  /// op2::Config::chain_tile for chained runs (small, so the tiny fuzz
  /// meshes actually produce multi-tile segments).
  int chain_tile = 16;
};

struct RunResult {
  bool ok = false;
  std::string error;  ///< exception text when !ok
  /// Per (set*dats_per_set+slot): the dat gathered to a full global AoS
  /// array (fetch_global), identical shape on every backend.
  std::vector<std::vector<double>> dats;
  /// Final reduction values in loop order (ReduceSum: 1 value;
  /// ReduceMinMax: min then max).
  std::vector<double> reductions;
  /// Combined structural plan fingerprint per loop name: per-rank
  /// fingerprints folded in rank order (see op2::plan_fingerprint).
  std::map<std::string, std::uint64_t> fingerprints;
};

[[nodiscard]] RunResult run_case(const CaseSpec& spec, const MeshTables& tables,
                                 const ExecConfig& cfg);

// --- comparison -------------------------------------------------------------

/// ULP distance between two doubles (monotone integer-lattice distance;
/// large sentinel for NaN/infinity disagreements).
[[nodiscard]] std::uint64_t ulp_diff(double a, double b);

struct Mismatch {
  std::string config;  ///< ExecConfig::name of the diverging run
  std::string what;    ///< human-readable localization
};

/// Tolerance policy (explicit per access mode, DESIGN.md §9):
///  - untainted dats: bit-exact (== with +0/-0 identified, NaN == NaN);
///  - tainted dats: ULP-bounded with an absolute fallback scaled by the
///    oracle's magnitude (indirect-increment fold order);
///  - min/max reductions over untainted input: bit-exact;
///  - sum reductions: bit-exact on single-rank deterministic-reduction
///    backends with untainted input, else ULP-bounded (rank-grouped fold);
///  - layout/fault variants vs. their own group base: bit-exact on
///    everything, fingerprints equal (checked by check_case, not here).
[[nodiscard]] std::optional<Mismatch> compare_to_oracle(
    const CaseSpec& spec, const TaintInfo& taint, const RunResult& oracle,
    const RunResult& run, const ExecConfig& cfg);

/// Bit-exact comparison of two runs of the same structural group (layout or
/// fault variants): all dats, all reductions, equal fingerprints.
[[nodiscard]] std::optional<Mismatch> compare_exact(const RunResult& base,
                                                    const RunResult& run,
                                                    const ExecConfig& cfg);

// --- harness ----------------------------------------------------------------

/// The default verification matrix: structural groups (serial, colored,
/// threaded, distributed Block/RCB/Kway with PH/GH combinations), each with
/// layout and fault variants.
struct MatrixGroup {
  ExecConfig base;                    ///< AoS, no faults; compared vs oracle
  std::vector<ExecConfig> variants;   ///< compared bit-exactly vs base
};
[[nodiscard]] std::vector<MatrixGroup> default_matrix();

/// Runs the full matrix for one case; first mismatch wins. nullopt = clean.
[[nodiscard]] std::optional<Mismatch> check_case(const CaseSpec& spec);

/// Greedy delta-debugging shrink: iterations, loop list (ddmin-style),
/// optional sets, extra maps, fan-in, dat slots, grid extent — each
/// reduction kept only while check_case still reports a mismatch. Returns
/// the minimal failing spec (== input when nothing could be removed).
[[nodiscard]] CaseSpec shrink_case(const CaseSpec& spec, int* steps = nullptr);

// --- repro files ------------------------------------------------------------

/// Serializes a spec as a self-contained `.vcgt` repro (versioned text;
/// doubles in C hexfloat so the round-trip is bit-exact).
[[nodiscard]] std::string format_repro(const CaseSpec& spec, const std::string& note = "");
/// Parses format_repro output; throws std::runtime_error with a line-
/// localized message on malformed input.
[[nodiscard]] CaseSpec parse_repro(const std::string& text);

// --- campaign ---------------------------------------------------------------

struct CampaignOptions {
  std::uint64_t seed = 1;
  std::uint64_t cases = 200;
  std::string out_dir;        ///< where shrunk repros are written ("" = cwd)
  int max_repros = 10;        ///< stop emitting (not checking) after this many
  bool stop_on_first = false;
};

struct CampaignReport {
  std::uint64_t cases_run = 0;
  std::uint64_t mismatches = 0;
  std::vector<std::string> repro_paths;
  double seconds = 0.0;
};

/// Runs `cases` seeded cases; on mismatch shrinks and writes a repro file.
/// Returns the report (mismatches == 0 means a clean campaign).
[[nodiscard]] CampaignReport run_campaign(const CampaignOptions& opts);

}  // namespace vcgt::verify
