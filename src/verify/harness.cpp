// Differential-testing harness: the backend × layout × fault matrix, the
// per-case check, the ddmin-style shrinker and the campaign driver.
//
// Matrix structure: runs are organized into *structural groups* sharing an
// execution structure (rank count, threading, halo options, partitioner).
// Each group's AoS/no-fault base is compared against the serial-AoS oracle
// under the taint-aware tolerance policy; every other cell of the group
// (layout variants, fault variants) must match its group base bit-for-bit
// *and* produce identical plan fingerprints — layouts and fault plans are
// never allowed to change either results or execution structure.
#include <algorithm>
#include <fstream>

#include "src/util/log.hpp"
#include "src/util/timer.hpp"
#include "src/verify/verify.hpp"

namespace vcgt::verify {

namespace {

ExecConfig cell(std::string name, int nranks, int nthreads, op2::Layout layout,
                int block = 4) {
  ExecConfig c;
  c.name = std::move(name);
  c.nranks = nranks;
  c.nthreads = nthreads;
  c.layout = layout;
  c.aosoa_block = block;
  return c;
}

}  // namespace

std::vector<MatrixGroup> default_matrix() {
  using op2::Layout;
  std::vector<MatrixGroup> m;

  {  // Serial reference executor; layout variants of the oracle itself.
    MatrixGroup g;
    g.base = cell("serial-aos", 1, 1, Layout::AoS);
    g.variants = {cell("serial-soa", 1, 1, Layout::SoA),
                  cell("serial-aosoa4", 1, 1, Layout::AoSoA, 4)};
    m.push_back(std::move(g));
  }
  {  // Colored execution on one worker (validates coloring alone).
    MatrixGroup g;
    g.base = cell("colored-aos", 1, 1, Layout::AoS);
    g.base.force_coloring = true;
    g.variants = {cell("colored-soa", 1, 1, Layout::SoA),
                  cell("colored-aosoa8", 1, 1, Layout::AoSoA, 8)};
    for (auto& v : g.variants) v.force_coloring = true;
    m.push_back(std::move(g));
  }
  {  // Shared-memory threading (deterministic-reduction mode).
    MatrixGroup g;
    g.base = cell("threads2-aos", 1, 2, Layout::AoS);
    g.variants = {cell("threads2-soa", 1, 2, Layout::SoA),
                  cell("threads2-aosoa4", 1, 2, Layout::AoSoA, 4)};
    m.push_back(std::move(g));
  }
  {  // Threading with the production per-thread reduction partials: sum
    // reductions legitimately reassociate, so this group is its own base
    // (ULP policy vs oracle) with no bit-exact variants. This is the one
    // place the matrix deliberately overrides ExecConfig's
    // deterministic_reductions=true default (see the field's doc in
    // verify.hpp): it covers the op2::Config production default (false),
    // which every other group turns on to earn the bit-exact sum policy.
    MatrixGroup g;
    g.base = cell("threads2-nondet-aos", 1, 2, Layout::AoS);
    g.base.deterministic_reductions = false;
    m.push_back(std::move(g));
  }
  {  // Distributed, RCB, full halos, latency hiding.
    MatrixGroup g;
    g.base = cell("dist2-aos", 2, 1, Layout::AoS);
    g.variants = {cell("dist2-soa", 2, 1, Layout::SoA),
                  cell("dist2-aosoa4", 2, 1, Layout::AoSoA, 4),
                  cell("dist2-aos-chaos", 2, 1, Layout::AoS),
                  cell("dist2-soa-chaos", 2, 1, Layout::SoA)};
    g.variants[2].faults = true;
    g.variants[3].faults = true;
    m.push_back(std::move(g));
  }
  {  // Distributed without latency hiding (no core/tail overlap).
    MatrixGroup g;
    g.base = cell("dist2-nolh-aos", 2, 1, Layout::AoS);
    g.base.latency_hiding = false;
    g.variants = {cell("dist2-nolh-soa", 2, 1, Layout::SoA)};
    g.variants[0].latency_hiding = false;
    m.push_back(std::move(g));
  }
  {  // Distributed with partial + grouped halos (the paper's PH/GH).
    MatrixGroup g;
    g.base = cell("dist3-phgh-aos", 3, 1, Layout::AoS);
    g.base.partial_halos = true;
    g.base.grouped_halos = true;
    g.variants = {cell("dist3-phgh-soa", 3, 1, Layout::SoA),
                  cell("dist3-phgh-aosoa8", 3, 1, Layout::AoSoA, 8),
                  cell("dist3-phgh-aos-chaos", 3, 1, Layout::AoS),
                  cell("dist3-phgh-aosoa8-chaos", 3, 1, Layout::AoSoA, 8)};
    for (auto& v : g.variants) {
      v.partial_halos = true;
      v.grouped_halos = true;
    }
    g.variants[2].faults = true;
    g.variants[3].faults = true;
    m.push_back(std::move(g));
  }
  {  // Hybrid: ranks × threads with partial halos.
    MatrixGroup g;
    g.base = cell("dist2-threads2-ph-aos", 2, 2, Layout::AoS);
    g.base.partial_halos = true;
    g.variants = {cell("dist2-threads2-ph-soa", 2, 2, Layout::SoA)};
    g.variants[0].partial_halos = true;
    m.push_back(std::move(g));
  }
  {  // Sharded setup (DESIGN.md §13): the same universe declared through
    // decl_set_sharded — per-rank block-owned rows plus a map-closure ghost
    // rind, shard-local map tables, sliced dats — and partitioned with
    // partition_sharded. The base must match the serial oracle under the
    // standard policy; layout and fault variants must match the sharded
    // base bit-for-bit with identical fingerprints.
    MatrixGroup g;
    g.base = cell("shard-dist2-aos", 2, 1, Layout::AoS);
    g.base.sharded = true;
    g.base.partitioner = op2::Partitioner::Block;
    g.variants = {cell("shard-dist2-soa", 2, 1, Layout::SoA),
                  cell("shard-dist2-aosoa4", 2, 1, Layout::AoSoA, 4),
                  cell("shard-dist2-aos-chaos", 2, 1, Layout::AoS)};
    for (auto& v : g.variants) {
      v.sharded = true;
      v.partitioner = op2::Partitioner::Block;
    }
    g.variants[2].faults = true;
    m.push_back(std::move(g));
  }
  {  // Sharded setup over 3 ranks with the PH/GH halo options.
    MatrixGroup g;
    g.base = cell("shard-dist3-phgh-aos", 3, 1, Layout::AoS);
    g.base.sharded = true;
    g.base.partitioner = op2::Partitioner::Block;
    g.base.partial_halos = true;
    g.base.grouped_halos = true;
    g.variants = {cell("shard-dist3-phgh-soa", 3, 1, Layout::SoA),
                  cell("shard-dist3-phgh-aosoa8", 3, 1, Layout::AoSoA, 8)};
    for (auto& v : g.variants) {
      v.sharded = true;
      v.partitioner = op2::Partitioner::Block;
      v.partial_halos = true;
      v.grouped_halos = true;
    }
    m.push_back(std::move(g));
  }
  {  // K-way graph-growing partitioner (exercises ownership propagation).
    MatrixGroup g;
    g.base = cell("dist2-kway-aos", 2, 1, Layout::AoS);
    g.base.partitioner = op2::Partitioner::Kway;
    g.variants = {cell("dist2-kway-soa", 2, 1, Layout::SoA)};
    g.variants[0].partitioner = op2::Partitioner::Kway;
    m.push_back(std::move(g));
  }
  // Chained execution (DESIGN.md §10): the same program re-expressed as
  // declared LoopChains of 2–4 consecutive loops. Each chained base runs
  // under the oracle tolerance policy (untainted dats bit-exact); layout
  // variants must match their chained base bit-for-bit with equal chain
  // fingerprints (the chain plan is layout-invariant by construction).
  {  // Serial chained, all layouts.
    MatrixGroup g;
    g.base = cell("chain-serial-aos", 1, 1, Layout::AoS);
    g.base.chained = true;
    g.variants = {cell("chain-serial-soa", 1, 1, Layout::SoA),
                  cell("chain-serial-aosoa4", 1, 1, Layout::AoSoA, 4)};
    for (auto& v : g.variants) v.chained = true;
    m.push_back(std::move(g));
  }
  {  // Distributed chained: fused halo epochs across the chain.
    MatrixGroup g;
    g.base = cell("chain-dist2-aos", 2, 1, Layout::AoS);
    g.base.chained = true;
    g.variants = {cell("chain-dist2-soa", 2, 1, Layout::SoA)};
    g.variants[0].chained = true;
    m.push_back(std::move(g));
  }
  {  // Distributed chained over 3 ranks with the PH/GH halo options (the
    // fused epoch ignores them — it always sends full lists — but the solo
    // leftover loops and standalone members run under them).
    MatrixGroup g;
    g.base = cell("chain-dist3-phgh-aos", 3, 1, Layout::AoS);
    g.base.chained = true;
    g.base.partial_halos = true;
    g.base.grouped_halos = true;
    g.variants = {cell("chain-dist3-phgh-soa", 3, 1, Layout::SoA)};
    for (auto& v : g.variants) {
      v.chained = true;
      v.partial_halos = true;
      v.grouped_halos = true;
    }
    m.push_back(std::move(g));
  }
  {  // Chained on sharded setup: chain planning over a context built through
    // decl_set_sharded/partition_sharded. The base replays under the oracle
    // policy; the layout variant must match it bit-exactly with equal chain
    // fingerprints — which requires the chain planner's dependence-edge
    // emission order to be deterministic across contexts with different
    // allocation histories (the dep list is folded into the fingerprint).
    MatrixGroup g;
    g.base = cell("shard-chain-dist2-aos", 2, 1, Layout::AoS);
    g.base.chained = true;
    g.base.sharded = true;
    g.base.partitioner = op2::Partitioner::Block;
    g.variants = {cell("shard-chain-dist2-soa", 2, 1, Layout::SoA)};
    for (auto& v : g.variants) {
      v.chained = true;
      v.sharded = true;
      v.partitioner = op2::Partitioner::Block;
    }
    m.push_back(std::move(g));
  }
  {  // Threaded chained: dependence-aware tile coloring drives the workers.
    // Threaded tile interleaving reorders indirect-increment folds, so this
    // group is its own base (ULP policy vs oracle) like threads2-nondet.
    MatrixGroup g;
    g.base = cell("chain-threads2-aos", 1, 2, Layout::AoS);
    g.base.chained = true;
    m.push_back(std::move(g));
  }
  return m;
}

std::optional<Mismatch> check_case(const CaseSpec& spec) {
  const MeshTables tables = make_tables(spec.mesh);
  const TaintInfo taint = analyze_taint(spec, tables);
  const auto matrix = default_matrix();

  const RunResult oracle = run_case(spec, tables, matrix[0].base);
  if (!oracle.ok) {
    return Mismatch{matrix[0].base.name, util::fmt("oracle failed: {}", oracle.error)};
  }

  for (std::size_t g = 0; g < matrix.size(); ++g) {
    const MatrixGroup& group = matrix[g];
    const RunResult base = g == 0 ? oracle : run_case(spec, tables, group.base);
    if (g != 0) {
      if (auto m = compare_to_oracle(spec, taint, oracle, base, group.base)) return m;
    }
    for (const ExecConfig& v : group.variants) {
      const RunResult run = run_case(spec, tables, v);
      if (auto m = compare_exact(base, run, v)) return m;
    }
  }
  return std::nullopt;
}

CaseSpec shrink_case(const CaseSpec& spec, int* steps) {
  CaseSpec cur = spec;
  int n = 0;
  const auto fails = [](const CaseSpec& s) {
    try {
      return check_case(s).has_value();
    } catch (const std::exception&) {
      return true;  // a candidate that errors out still reproduces a defect
    }
  };
  const auto attempt = [&](CaseSpec cand) {
    if (!fails(cand)) return false;
    cur = std::move(cand);
    ++n;
    return true;
  };

  if (cur.iters > 1) {
    CaseSpec c = cur;
    c.iters = 1;
    attempt(std::move(c));
  }

  // Greedy ddmin over the loop list, to a fixpoint.
  const auto drop_loops = [&]() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < cur.loops.size(); ++i) {
        CaseSpec c = cur;
        c.loops.erase(c.loops.begin() + static_cast<std::ptrdiff_t>(i));
        if (attempt(std::move(c))) {
          changed = true;
          break;
        }
      }
    }
  };
  drop_loops();

  if (cur.mesh.cells) {
    CaseSpec c = cur;
    c.mesh.cells = false;
    std::erase_if(c.loops, [](const LoopOp& op) { return op.set == 2 || op.map == 1; });
    attempt(std::move(c));
  }
  if (cur.mesh.boundary) {
    CaseSpec c = cur;
    c.mesh.boundary = false;
    std::erase_if(c.loops, [](const LoopOp& op) { return op.set == 3 || op.map == 2; });
    attempt(std::move(c));
  }
  while (cur.mesh.extra_maps > 0) {
    CaseSpec c = cur;
    c.mesh.extra_maps -= 1;
    const int last = kGridMaps + c.mesh.extra_maps;
    std::erase_if(c.loops, [last](const LoopOp& op) { return op.map >= last; });
    if (!attempt(std::move(c))) break;
  }
  while (cur.mesh.dats_per_set > 1) {
    CaseSpec c = cur;
    c.mesh.dats_per_set -= 1;
    const int dps = c.mesh.dats_per_set;
    std::erase_if(c.loops, [dps](const LoopOp& op) { return op.a >= dps || op.b >= dps; });
    if (!attempt(std::move(c))) break;
  }
  while (cur.mesh.fan_in > 1 && cur.mesh.extra_maps > 0) {
    CaseSpec c = cur;
    c.mesh.fan_in -= 1;
    const int fi = c.mesh.fan_in;
    std::erase_if(c.loops, [fi](const LoopOp& op) {
      return op.map >= kGridMaps && (op.idx >= fi || op.idx2 >= fi);
    });
    if (!attempt(std::move(c))) break;
  }
  // Grid extent: halve toward 2, then single steps.
  for (int axis = 0; axis < 2; ++axis) {
    const auto dim = [&](CaseSpec& s) -> int& { return axis == 0 ? s.mesh.nx : s.mesh.ny; };
    while (dim(cur) > 2) {
      CaseSpec c = cur;
      dim(c) = std::max(2, dim(c) / 2);
      if (!attempt(std::move(c))) break;
    }
    while (dim(cur) > 2) {
      CaseSpec c = cur;
      dim(c) -= 1;
      if (!attempt(std::move(c))) break;
    }
  }
  drop_loops();  // extent changes may have made more loops droppable

  if (steps) *steps = n;
  return cur;
}

CampaignReport run_campaign(const CampaignOptions& opts) {
  CampaignReport rep;
  util::Timer timer;
  for (std::uint64_t i = 0; i < opts.cases; ++i) {
    const CaseSpec spec = gen_case(opts.seed, i);
    const auto m = check_case(spec);
    ++rep.cases_run;
    if (!m) continue;
    ++rep.mismatches;
    util::error("verify: case {} (seed {}) mismatch on {}: {}", i, spec.seed, m->config,
                m->what);
    if (static_cast<int>(rep.repro_paths.size()) < opts.max_repros) {
      int steps = 0;
      const CaseSpec small = shrink_case(spec, &steps);
      const auto sm = check_case(small);
      const std::string note =
          util::fmt("campaign seed {} case {} | shrunk in {} steps | {}: {}", opts.seed, i,
                    steps, sm ? sm->config : m->config, sm ? sm->what : m->what);
      const std::string path =
          (opts.out_dir.empty() ? std::string{} : opts.out_dir + "/") +
          util::fmt("repro_s{}_c{}.vcgt", opts.seed, i);
      std::ofstream f(path);
      f << format_repro(small, note);
      if (f.good()) {
        rep.repro_paths.push_back(path);
        util::error("verify: shrunk repro ({} loops) written to {}", small.loops.size(),
                    path);
      } else {
        util::error("verify: failed to write repro to {}", path);
      }
    }
    if (opts.stop_on_first) break;
  }
  rep.seconds = timer.elapsed();
  return rep;
}

}  // namespace vcgt::verify
