// Self-contained `.vcgt` repro files: a versioned, line-oriented text
// serialization of CaseSpec. Doubles are written as C hexfloats (%a) and
// parsed with strtod, so a repro re-executes with bit-identical
// coefficients on any platform; everything else a case needs (mesh, dat
// values, fault plans) is re-derived deterministically from the spec.
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/util/log.hpp"
#include "src/verify/verify.hpp"

namespace vcgt::verify {

namespace {

constexpr int kReproVersion = 1;

std::string hexf(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// Splits "key=value" tokens of one line into a small key->value list.
std::vector<std::pair<std::string, std::string>> kv_pairs(std::istringstream& line) {
  std::vector<std::pair<std::string, std::string>> out;
  std::string tok;
  while (line >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::runtime_error(util::fmt("vcgt repro: malformed token '{}'", tok));
    }
    out.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
  }
  return out;
}

long long to_int(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const long long x = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw std::runtime_error(util::fmt("vcgt repro: bad integer '{}' for {}", v, key));
  }
  return x;
}

std::uint64_t to_u64(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw std::runtime_error(util::fmt("vcgt repro: bad integer '{}' for {}", v, key));
  }
  return x;
}

double to_double(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    throw std::runtime_error(util::fmt("vcgt repro: bad number '{}' for {}", v, key));
  }
  return x;
}

}  // namespace

std::string format_repro(const CaseSpec& spec, const std::string& note) {
  std::ostringstream out;
  out << "vcgt-repro " << kReproVersion << "\n";
  if (!note.empty()) {
    std::istringstream lines(note);
    std::string l;
    while (std::getline(lines, l)) out << "# " << l << "\n";
  }
  out << "seed " << spec.seed << "\n";
  out << "mesh nx=" << spec.mesh.nx << " ny=" << spec.mesh.ny
      << " seed=" << spec.mesh.mesh_seed << " cells=" << (spec.mesh.cells ? 1 : 0)
      << " boundary=" << (spec.mesh.boundary ? 1 : 0)
      << " extra_maps=" << spec.mesh.extra_maps << " fan_in=" << spec.mesh.fan_in
      << " dats_per_set=" << spec.mesh.dats_per_set << "\n";
  out << "iters " << spec.iters << "\n";
  for (const LoopOp& op : spec.loops) {
    out << "loop kind=" << op_kind_name(op.kind) << " set=" << op.set << " map=" << op.map
        << " idx=" << op.idx << " idx2=" << op.idx2 << " a=" << op.a << " b=" << op.b
        << " k1=" << hexf(op.k1) << " k2=" << hexf(op.k2) << "\n";
  }
  return out.str();
}

CaseSpec parse_repro(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("vcgt repro: empty file");
  {
    std::istringstream hd(line);
    std::string magic;
    int version = 0;
    hd >> magic >> version;
    if (magic != "vcgt-repro" || version != kReproVersion) {
      throw std::runtime_error(
          util::fmt("vcgt repro: bad header '{}' (want 'vcgt-repro {}')", line,
                    kReproVersion));
    }
  }
  CaseSpec spec;
  spec.mesh.extra_maps = 0;
  bool saw_mesh = false;
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string head;
    ls >> head;
    try {
      if (head == "seed") {
        std::string v;
        ls >> v;
        spec.seed = to_u64("seed", v);
      } else if (head == "iters") {
        std::string v;
        ls >> v;
        spec.iters = static_cast<int>(to_int("iters", v));
      } else if (head == "mesh") {
        saw_mesh = true;
        for (const auto& [k, v] : kv_pairs(ls)) {
          if (k == "nx") spec.mesh.nx = static_cast<int>(to_int(k, v));
          else if (k == "ny") spec.mesh.ny = static_cast<int>(to_int(k, v));
          else if (k == "seed") spec.mesh.mesh_seed = to_u64(k, v);
          else if (k == "cells") spec.mesh.cells = to_int(k, v) != 0;
          else if (k == "boundary") spec.mesh.boundary = to_int(k, v) != 0;
          else if (k == "extra_maps") spec.mesh.extra_maps = static_cast<int>(to_int(k, v));
          else if (k == "fan_in") spec.mesh.fan_in = static_cast<int>(to_int(k, v));
          else if (k == "dats_per_set") {
            spec.mesh.dats_per_set = static_cast<int>(to_int(k, v));
          } else {
            throw std::runtime_error(util::fmt("vcgt repro: unknown mesh key '{}'", k));
          }
        }
      } else if (head == "loop") {
        LoopOp op;
        for (const auto& [k, v] : kv_pairs(ls)) {
          if (k == "kind") {
            if (!parse_op_kind(v, &op.kind)) {
              throw std::runtime_error(util::fmt("vcgt repro: unknown loop kind '{}'", v));
            }
          } else if (k == "set") op.set = static_cast<int>(to_int(k, v));
          else if (k == "map") op.map = static_cast<int>(to_int(k, v));
          else if (k == "idx") op.idx = static_cast<int>(to_int(k, v));
          else if (k == "idx2") op.idx2 = static_cast<int>(to_int(k, v));
          else if (k == "a") op.a = static_cast<int>(to_int(k, v));
          else if (k == "b") op.b = static_cast<int>(to_int(k, v));
          else if (k == "k1") op.k1 = to_double(k, v);
          else if (k == "k2") op.k2 = to_double(k, v);
          else throw std::runtime_error(util::fmt("vcgt repro: unknown loop key '{}'", k));
        }
        spec.loops.push_back(op);
      } else {
        throw std::runtime_error(util::fmt("vcgt repro: unknown directive '{}'", head));
      }
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(util::fmt("{} (line {})", e.what(), lineno));
    }
  }
  if (!saw_mesh) throw std::runtime_error("vcgt repro: missing mesh line");
  return spec;
}

}  // namespace vcgt::verify
