// vcgt_fuzz — the vcgt::verify campaign driver (DESIGN.md §9).
//
//   vcgt_fuzz --cases 200 --seed 1 [--out DIR] [--stop-on-first]
//     Runs N seeded cases through the full backend × layout × fault matrix;
//     on mismatch, shrinks and writes a repro to DIR. Exit 1 on mismatch.
//
//   vcgt_fuzz --replay FILE.vcgt [FILE2.vcgt ...]
//     Re-executes repro files deterministically through the same matrix.
//     Exit 0 when every file passes cleanly (the regression-corpus mode
//     used by ctest label `fuzz`), 1 when any mismatches.
//
//   vcgt_fuzz --print-case SEED INDEX
//     Dumps the generated spec for one campaign case (triage aid).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/env_config.hpp"
#include "src/verify/verify.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --cases N [--seed S] [--out DIR] [--max-repros N]"
               " [--stop-on-first]\n"
               "       %s --replay FILE.vcgt [FILE...]\n"
               "       %s --print-case SEED INDEX\n",
               argv0, argv0, argv0);
  return 2;
}

int replay(const std::vector<std::string>& files) {
  int failures = 0;
  for (const std::string& path : files) {
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "vcgt_fuzz: cannot open %s\n", path.c_str());
      ++failures;
      continue;
    }
    std::ostringstream text;
    text << f.rdbuf();
    try {
      const auto spec = vcgt::verify::parse_repro(text.str());
      const auto m = vcgt::verify::check_case(spec);
      if (m) {
        std::fprintf(stderr, "FAIL %s: [%s] %s\n", path.c_str(), m->config.c_str(),
                     m->what.c_str());
        ++failures;
      } else {
        std::printf("PASS %s (%zu loops)\n", path.c_str(), spec.loops.size());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(), e.what());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  vcgt::verify::CampaignOptions opts;
  std::vector<std::string> replay_files;
  bool have_cases = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vcgt_fuzz: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--print-config") {
      // The effective VCGT_* environment as the typed loader sees it —
      // what a campaign actually ran under (DESIGN.md; util::env_config).
      std::fputs(vcgt::util::env_config().describe().c_str(), stdout);
      return 0;
    }
    if (arg == "--cases") {
      opts.cases = std::strtoull(next("--cases").c_str(), nullptr, 10);
      have_cases = true;
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(next("--seed").c_str(), nullptr, 10);
    } else if (arg == "--out") {
      opts.out_dir = next("--out");
    } else if (arg == "--max-repros") {
      opts.max_repros = std::atoi(next("--max-repros").c_str());
    } else if (arg == "--stop-on-first") {
      opts.stop_on_first = true;
    } else if (arg == "--replay") {
      while (i + 1 < argc) replay_files.push_back(argv[++i]);
      if (replay_files.empty()) return usage(argv[0]);
    } else if (arg == "--print-case") {
      const auto seed = std::strtoull(next("--print-case").c_str(), nullptr, 10);
      const auto index = std::strtoull(next("--print-case index").c_str(), nullptr, 10);
      const auto spec = vcgt::verify::gen_case(seed, index);
      std::fputs(vcgt::verify::format_repro(spec).c_str(), stdout);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }

  if (!replay_files.empty()) return replay(replay_files);
  if (!have_cases) return usage(argv[0]);

  const auto rep = vcgt::verify::run_campaign(opts);
  std::printf("vcgt_fuzz: %llu cases, %llu mismatches, %zu repros, %.1f s (%.1f cases/s)\n",
              static_cast<unsigned long long>(rep.cases_run),
              static_cast<unsigned long long>(rep.mismatches), rep.repro_paths.size(),
              rep.seconds, rep.seconds > 0 ? static_cast<double>(rep.cases_run) / rep.seconds
                                           : 0.0);
  for (const auto& p : rep.repro_paths) std::printf("  repro: %s\n", p.c_str());
  return rep.mismatches == 0 ? 0 : 1;
}
