// vcgt_serve — the simulation-as-a-service daemon (DESIGN.md §12).
//
// Runs a vcgt::serve::Server in-process and drives it with a synthetic
// open-loop client storm (there is no real network listener in this
// repository; the wire protocol is exercised by writing the framed byte
// streams to --frames=<path>, which a FrameSplitter-based client reads
// back). Useful forms:
//
//   vcgt_serve --print-config            dump the effective VCGT_* env knobs
//   vcgt_serve --jobs=16 --rate=10       storm: arrivals, admission, latency
//   vcgt_serve --chaos --jobs=16         same, with a seeded fault plan
//   vcgt_serve --frames=out.bin          also dump every job's frame stream
#include <cstdio>
#include <fstream>
#include <iostream>

#include "src/serve/server.hpp"
#include "src/serve/session_spec.hpp"
#include "src/serve/storm.hpp"
#include "src/util/cli.hpp"
#include "src/util/env_config.hpp"
#include "src/util/fmt.hpp"
#include "src/util/table.hpp"

using namespace vcgt;

namespace {

serve::SessionSpec spec_from_cli(const util::Cli& cli) {
  serve::SessionSpec spec;
  spec.nrows = static_cast<int>(cli.get_int("nrows", 2));
  spec.tier = cli.get("tier", "tiny");
  spec.hs_ranks.assign(static_cast<std::size_t>(spec.nrows),
                       static_cast<int>(cli.get_int("ranks-per-row", 1)));
  spec.nsteps = static_cast<int>(cli.get_int("steps", 2));
  spec.flow.inner_iters = static_cast<int>(cli.get_int("inner", 4));
  if (cli.get_bool("chaos", false)) {
    spec.fault.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 7));
    spec.fault.p_delay = cli.get_double("p-delay", 0.01);
    spec.fault.p_drop = cli.get_double("p-drop", 0.005);
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.has("print-config")) {
    std::cout << util::env_config().describe();
    return 0;
  }
  if (cli.has("help")) {
    std::cout << "usage: vcgt_serve [--print-config] [--jobs=N] [--rate=HZ] "
                 "[--seed=S]\n"
                 "                  [--nrows=R] [--ranks-per-row=K] [--tier=T] "
                 "[--steps=N] [--inner=N]\n"
                 "                  [--queue=N] [--chaos] [--frames=PATH]\n";
    return 0;
  }

  serve::ServerOptions opts;
  opts.queue_capacity = static_cast<std::size_t>(cli.get_int("queue", 8));
  opts.stall_timeout = cli.get_double("stall-timeout", 30.0);
  serve::Server server(opts);

  serve::StormConfig storm;
  storm.jobs = static_cast<int>(cli.get_int("jobs", 8));
  storm.rate_hz = cli.get_double("rate", 10.0);
  storm.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  storm.specs.push_back(spec_from_cli(cli));

  const std::string frames_path = cli.get("frames", "");
  if (!frames_path.empty()) {
    // Frame-dump mode exercises the full wire path for one job: submit,
    // stream the lifecycle frames, write them for an external client.
    std::ofstream os(frames_path, std::ios::binary);
    if (!os) {
      std::cerr << "cannot open " << frames_path << "\n";
      return 1;
    }
    const auto hello = serve::encode(serve::HelloFrame{});
    os.write(reinterpret_cast<const char*>(hello.data()),
             static_cast<std::streamsize>(hello.size()));
    const auto ticket = server.submit(storm.specs.front());
    const auto stream = ticket.accepted
                            ? server.wait_stream(ticket.job_id)
                            : serve::Server::rejection_stream(ticket);
    os.write(reinterpret_cast<const char*>(stream.data()),
             static_cast<std::streamsize>(stream.size()));
    std::cout << util::fmt("frame stream written to {} ({} bytes)\n", frames_path,
                           hello.size() + stream.size());
  }

  const auto res = serve::run_storm(server, storm);
  util::Table t({"metric", "value"});
  t.add_row({"submitted", std::to_string(res.submitted)});
  t.add_row({"accepted", std::to_string(res.accepted)});
  t.add_row({"rejected (backpressure)", std::to_string(res.rejected)});
  t.add_row({"completed", std::to_string(res.completed)});
  t.add_row({"failed (structured)", std::to_string(res.failed)});
  t.add_row({"worlds rebuilt", std::to_string(res.rebuilt)});
  t.add_row({"hung", std::to_string(res.hung)});
  t.add_row({"sessions/s", util::Table::num(res.sessions_per_second, 2)});
  t.add_row({"p50 latency [ms]", util::Table::num(res.p50_ms, 2)});
  t.add_row({"p99 latency [ms]", util::Table::num(res.p99_ms, 2)});
  t.print_text(std::cout, "vcgt_serve storm");
  const auto cache = server.plan_cache().stats();
  std::cout << util::fmt("plan cache: {} hits, {} misses, {} entries, {} bytes\n",
                         cache.hits, cache.misses, cache.entries, cache.bytes);
  return res.hung == 0 ? 0 : 1;
}
