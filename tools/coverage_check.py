#!/usr/bin/env python3
"""Line-coverage gate for the runtime core (src/op2 + src/minimpi).

Runs gcov (JSON mode) over every .gcda an instrumented test run left in the
build tree (cmake --preset coverage && ctest --preset coverage), aggregates
executable-line coverage per watched directory, and compares against the
checked-in baseline. The gate fails when any watched directory drops more
than the allowed slack (default 1 percentage point) below its baseline —
catching tests that silently stop exercising the runtime.

Usage:
  python3 tools/coverage_check.py [BUILD_DIR] [--baseline FILE]
                                  [--update-baseline] [--slack PCT]

Plain gcov is the only dependency (no gcovr/lcov in the image).
"""

import argparse
import json
import os
import subprocess
import sys

WATCHED = ["src/op2", "src/minimpi"]


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def find_gcda(build_dir):
    out = []
    for dirpath, _dirnames, filenames in os.walk(build_dir):
        out.extend(os.path.join(dirpath, f) for f in filenames if f.endswith(".gcda"))
    return sorted(out)


def gcov_json(gcda, build_dir):
    """One gcov JSON document per translation unit (gcov 9+ --json-format)."""
    proc = subprocess.run(
        ["gcov", "--stdout", "--json-format", gcda],
        cwd=build_dir,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        check=False,
    )
    if proc.returncode != 0 or not proc.stdout:
        return None
    try:
        return json.loads(proc.stdout.decode("utf-8", "replace"))
    except json.JSONDecodeError:
        return None


def normalize(path, build_dir, root):
    """Map a gcov-reported source path to a repo-relative one ('' if outside)."""
    if not os.path.isabs(path):
        path = os.path.join(build_dir, path)
    path = os.path.realpath(path)
    root = os.path.realpath(root) + os.sep
    return path[len(root):] if path.startswith(root) else ""


def collect(build_dir, root):
    """lines[source][line_number] = max execution count across TUs."""
    lines = {}
    gcdas = find_gcda(build_dir)
    if not gcdas:
        sys.exit(f"coverage_check: no .gcda files under {build_dir} — "
                 "configure with --preset coverage and run ctest first")
    for gcda in gcdas:
        doc = gcov_json(gcda, build_dir)
        if not doc:
            continue
        for f in doc.get("files", []):
            rel = normalize(f.get("file", ""), build_dir, root)
            if not rel or not any(rel.startswith(w + "/") for w in WATCHED):
                continue
            per_file = lines.setdefault(rel, {})
            for ln in f.get("lines", []):
                n = ln.get("line_number")
                c = ln.get("count", 0)
                if n is not None:
                    per_file[n] = max(per_file.get(n, 0), c)
    return lines


def summarize(lines):
    pct = {}
    for w in WATCHED:
        total = covered = 0
        for rel, per_file in lines.items():
            if not rel.startswith(w + "/"):
                continue
            total += len(per_file)
            covered += sum(1 for c in per_file.values() if c > 0)
        pct[w] = round(100.0 * covered / total, 2) if total else 0.0
    return pct


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("build_dir", nargs="?", default="build-coverage")
    ap.add_argument("--baseline",
                    default=os.path.join(repo_root(), "tools", "coverage_baseline.json"))
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument("--slack", type=float, default=1.0,
                    help="allowed drop in percentage points (default 1.0)")
    args = ap.parse_args()

    pct = summarize(collect(args.build_dir, repo_root()))
    for w in WATCHED:
        print(f"{w}: {pct[w]:.2f}% lines covered")

    if args.update_baseline:
        with open(args.baseline, "w") as f:
            json.dump(pct, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    try:
        with open(args.baseline) as f:
            base = json.load(f)
    except FileNotFoundError:
        sys.exit(f"coverage_check: no baseline at {args.baseline} "
                 "(run with --update-baseline to create it)")

    failed = False
    for w in WATCHED:
        ref = base.get(w)
        if ref is None:
            continue
        drop = ref - pct[w]
        status = "OK" if drop <= args.slack else "FAIL"
        print(f"{w}: baseline {ref:.2f}%, drop {drop:+.2f} pts [{status}]")
        failed |= drop > args.slack
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
