#!/usr/bin/env python3
"""Plot the CSVs the bench harness writes (matplotlib optional dependency).

Usage:  python3 tools/plot_results.py [directory-with-csvs] [output-dir]

Produces PNGs for the scaling figures (Figs 7-9), the Table II search sweep
and the Fig 10 mid-span contour scatter — visual counterparts of the paper's
plots. Degrades to a listing of available CSVs when matplotlib is missing.
"""
import csv
import pathlib
import sys


def read_csv(path):
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    return rows


def main():
    src = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")
    out = pathlib.Path(sys.argv[2]) if len(sys.argv) > 2 else src
    out.mkdir(parents=True, exist_ok=True)

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; CSVs present:")
        for p in sorted(src.glob("*.csv")):
            print(" ", p.name)
        return 0

    # Scaling figures: runtime/timestep + coupling fraction vs nodes.
    for fig in ("fig7", "fig8", "fig9"):
        path = src / f"{fig}_archer2_model.csv"
        if not path.exists():
            continue
        rows = read_csv(path)
        nodes = [int(r["nodes"]) for r in rows]
        sps = [float(r["s/step"]) for r in rows]
        cf = [float(r["coupling %"]) for r in rows]
        fig_, ax1 = plt.subplots(figsize=(6, 4))
        ax1.loglog(nodes, sps, "o-", label="runtime/timestep (ARCHER2)")
        ideal = [sps[0] * nodes[0] / n for n in nodes]
        ax1.loglog(nodes, ideal, "k--", alpha=0.5, label="ideal")
        ax1.set_xlabel("nodes")
        ax1.set_ylabel("s/step")
        ax2 = ax1.twinx()
        ax2.semilogx(nodes, cf, "s-", color="tab:red", label="coupling %")
        ax2.set_ylabel("coupling overhead [%]")
        ax1.legend(loc="upper right")
        ax1.set_title(f"{fig}: scaling (model at paper node counts)")
        fig_.tight_layout()
        fig_.savefig(out / f"{fig}.png", dpi=130)
        plt.close(fig_)
        print(f"wrote {out / (fig + '.png')}")

    # Table II: BF vs ADT vs CU count.
    path = src / "table2_model.csv"
    if path.exists():
        rows = read_csv(path)
        cus = [int(r["CUs"]) for r in rows]
        bf = [float(r["BF s/step"]) for r in rows]
        adt = [float(r["ADT s/step"]) for r in rows]
        fig_, ax = plt.subplots(figsize=(6, 4))
        ax.semilogy(cus, bf, "o-", label="brute force")
        ax.semilogy(cus, adt, "s-", label="ADT")
        ax.set_xlabel("coupler units per interface")
        ax.set_ylabel("coupler seconds/step")
        ax.set_title("Table II: donor search cost")
        ax.legend()
        fig_.tight_layout()
        fig_.savefig(out / "table2.png", dpi=130)
        plt.close(fig_)
        print(f"wrote {out / 'table2.png'}")

    # Fig 10: mid-span pressure scatter per row, stitched along x.
    rows_files = sorted(src.glob("fig10_row*_midspan.csv"))
    if rows_files:
        fig_, ax = plt.subplots(figsize=(9, 3.5))
        for path in rows_files:
            rows = read_csv(path)
            xs = [float(r["x"]) for r in rows]
            ths = [float(r["theta"]) for r in rows]
            ps = [float(r["p"]) for r in rows]
            ax.scatter(xs, ths, c=ps, s=14, cmap="viridis")
        ax.set_xlabel("axial position x [m]")
        ax.set_ylabel("theta [rad]")
        ax.set_title("Fig 10: mid-span static pressure through the rows")
        fig_.tight_layout()
        fig_.savefig(out / "fig10.png", dpi=130)
        plt.close(fig_)
        print(f"wrote {out / 'fig10.png'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
