#pragma once
// Shared generator for the Figure 7/8/9 scaling reproductions: model curves
// (runtime/timestep, parallel efficiency, coupling overhead fraction) at the
// paper's node counts for ARCHER2 and power-equivalent Cirrus points, plus a
// measured mini-scale sweep of the real coupled system over increasing rank
// counts (load balance and communication metrics, which — not wall time —
// are the meaningful scaling signals when every rank-thread shares one
// physical core).
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/jm76/coupled.hpp"
#include "src/perf/costmodel.hpp"

namespace vcgt::bench {

struct FigureSpec {
  std::string title;
  std::string paper_ref;
  perf::WorkloadSpec workload;
  std::vector<int> archer2_nodes;   ///< paper's x axis
  std::vector<int> cirrus_nodes;    ///< physical Cirrus nodes (may be empty)
  int base_node_index = 0;          ///< efficiency reference point
  double paper_efficiency = 0.0;    ///< quoted end-to-end efficiency
  int mini_rows = 3;                ///< rows in the measured mini sweep
  /// When set, a BENCH_<name>.json machine-readable summary of the measured
  /// mini sweep is written next to the CSVs.
  std::string bench_name;
};

/// `cli` supplies `--trace[=<path>]`: when present, the measured mini sweep
/// below runs with vcgt::trace enabled, the per-span summary and measured
/// phase split are printed, and the Chrome-trace JSON is written (one track
/// per minimpi rank).
inline void run_scaling_figure(const FigureSpec& spec, int steps,
                               const std::string& csv_prefix,
                               const util::Cli& cli) {
  header(spec.title, spec.paper_ref);

  // --- model curves ---------------------------------------------------------
  section("model: ARCHER2 scaling");
  perf::ModelOptions cpu;
  cpu.grouped_halos = false;
  perf::ScalingModel a2(perf::archer2(), spec.workload);
  util::Table ta({"nodes", "s/step", "h/rev", "efficiency", "coupling %"});
  const int base = spec.archer2_nodes[static_cast<std::size_t>(spec.base_node_index)];
  for (const int n : spec.archer2_nodes) {
    const auto c = a2.step_cost(n, cpu);
    ta.add_row({std::to_string(n), util::Table::num(c.total(), 2),
                util::Table::num(a2.hours_per_rev(n, cpu), 2),
                util::Table::num(a2.efficiency(base, n, cpu), 3),
                util::Table::num(100.0 * c.coupling_fraction(), 1)});
  }
  ta.print_text(std::cout);
  util::write_csv(ta, csv_prefix + "_archer2_model.csv");
  std::cout << "paper quotes " << util::Table::num(100.0 * spec.paper_efficiency, 1)
            << "% parallel efficiency over this range\n";

  if (!spec.cirrus_nodes.empty()) {
    section("model: Cirrus (GPU) scaling, with power-equivalent ARCHER2 nodes");
    perf::ModelOptions gpu;
    gpu.cus_per_interface = 40;
    perf::ScalingModel cir(perf::cirrus(), spec.workload);
    util::Table tc({"Cirrus nodes", "ARCHER2-equiv", "s/step", "coupling %",
                    "speedup vs A2 (power-equiv)"});
    for (const int n : spec.cirrus_nodes) {
      const auto c = cir.step_cost(n, gpu);
      const double eq = cir.power_equivalent_nodes(n, perf::archer2());
      const double ta2 = a2.step_cost(static_cast<int>(eq + 0.5), cpu).total();
      tc.add_row({std::to_string(n), util::Table::num(eq, 0),
                  util::Table::num(c.total(), 2),
                  util::Table::num(100.0 * c.coupling_fraction(), 1),
                  util::Table::num(ta2 / c.total(), 2)});
    }
    tc.print_text(std::cout);
    util::write_csv(tc, csv_prefix + "_cirrus_model.csv");
  }

  // --- measured mini sweep ----------------------------------------------------
  section("measured: real coupled system over increasing rank counts");
  TraceSession ts(cli);
  std::vector<std::pair<std::string, double>> metrics;
  util::Table tm({"HS ranks/row", "world", "max/min owned cells", "halo MB/rank",
                  "coupler wait s/step", "CU search s/step"});
  for (const int rpr : {1, 2, 3}) {
    jm76::CoupledConfig cfg;
    cfg.rig = rig::rig250_spec(spec.mini_rows);
    cfg.res = rig::resolution_tier("coarse");
    cfg.flow.inner_iters = 2;
    cfg.hs_ranks.assign(static_cast<std::size_t>(spec.mini_rows), rpr);
    cfg.cus_per_interface = 1;
    minimpi::World::run(cfg.layout().world_size(), [&](minimpi::Comm& world) {
      jm76::CoupledRig run(world, cfg);
      run.run(steps);
      const auto all = jm76::CoupledRig::collect(world, run.stats());
      if (world.rank() == 0) {
        std::uint64_t mx = 0, mn = ~0ull, bytes = 0;
        double wait = 0, search = 0;
        int hs = 0;
        for (const auto& s : all) {
          if (s.is_cu) {
            search = std::max(search, s.search_seconds);
            continue;
          }
          ++hs;
          mx = std::max(mx, s.owned_cells);
          mn = std::min(mn, s.owned_cells);
          bytes += s.halo_bytes;
          wait = std::max(wait, s.coupler_wait);
        }
        tm.add_row({std::to_string(rpr), std::to_string(world.size()),
                    util::Table::num(static_cast<double>(mx) / static_cast<double>(mn), 3),
                    util::Table::num(static_cast<double>(bytes) / hs / 1e6, 3),
                    util::Table::num(wait / steps, 4),
                    util::Table::num(search / steps, 4)});
        const std::string k = "rpr" + std::to_string(rpr) + "_";
        metrics.emplace_back(k + "world", world.size());
        metrics.emplace_back(k + "imbalance",
                             static_cast<double>(mx) / static_cast<double>(mn));
        metrics.emplace_back(k + "halo_mb_per_rank",
                             static_cast<double>(bytes) / hs / 1e6);
        metrics.emplace_back(k + "coupler_wait_s_per_step", wait / steps);
        metrics.emplace_back(k + "cu_search_s_per_step", search / steps);
      }
    });
  }
  tm.print_text(std::cout);
  util::write_csv(tm, csv_prefix + "_measured_mini.csv");

  if (ts.active()) {
    ts.finish();  // prints the per-span summary, writes the Chrome trace
    const auto phases = perf::attribute_phases(trace::summary());
    section("trace: measured phase attribution (all ranks, all sweep points)");
    util::Table tp({"phase", "seconds", "% of attributed"});
    const double tot = std::max(phases.total(), 1e-12);
    const auto row = [&](const char* n, double s) {
      tp.add_row({n, util::Table::num(s, 4), util::Table::num(100.0 * s / tot, 1)});
    };
    row("compute (par_loops)", phases.compute);
    row("halo exchange", phases.halo);
    row("coupler wait", phases.coupler_wait);
    row("CU search+interp", phases.search);
    tp.print_text(std::cout);
    std::cout << "mailbox-blocked (inside the above): "
              << util::Table::num(phases.mpi_wait, 4) << " s\n";
    metrics.emplace_back("trace_compute_s", phases.compute);
    metrics.emplace_back("trace_halo_s", phases.halo);
    metrics.emplace_back("trace_coupler_wait_s", phases.coupler_wait);
    metrics.emplace_back("trace_search_s", phases.search);
  }
  if (!spec.bench_name.empty()) write_bench_json(spec.bench_name, metrics);
}

}  // namespace vcgt::bench
