// Table IV reproduction: achieved/projected times to solution (hours) for
// one Rig250 revolution — monolithic vs coupled, ARCHER2 vs Cirrus.
//
// Layer 1 (measured): coupled vs monolithic wall time per step on the real
// mini system (same rank budget), demonstrating the coupled configuration's
// advantage mechanically.
// Layer 2 (model): every Table IV row at the paper's node counts.
#include "bench/bench_common.hpp"
#include "src/jm76/coupled.hpp"
#include "src/jm76/monolithic.hpp"
#include "src/perf/costmodel.hpp"
#include "src/util/timer.hpp"

using namespace vcgt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int steps = static_cast<int>(cli.get_int("steps", 4));

  bench::header("Table IV: time to solution for 1 revolution", "paper Table IV, SS IV-B4/5");

  // --- measured mini comparison -------------------------------------------
  bench::section(util::fmt(
      "measured: 3-row rig, tiny mesh, {} steps — coupled vs monolithic wall s/step",
      steps));
  const auto rig3 = rig::rig250_spec(3);
  const auto res = rig::resolution_tier("tiny");
  hydra::FlowConfig flow;
  flow.inner_iters = 3;

  double coupled_sps = 0.0, coupled_wait = 0.0;
  {
    jm76::CoupledConfig cfg;
    cfg.rig = rig3;
    cfg.res = res;
    cfg.flow = flow;
    cfg.hs_ranks = {2, 2, 2};
    cfg.cus_per_interface = 1;
    cfg.search = jm76::SearchKind::Adt;
    minimpi::World::run(cfg.layout().world_size(), [&](minimpi::Comm& world) {
      jm76::CoupledRig run(world, cfg);
      run.run(steps);
      const auto all = jm76::CoupledRig::collect(world, run.stats());
      if (world.rank() == 0) {
        double worst = 0, wait = 0;
        for (const auto& s : all) {
          if (!s.is_cu) {
            worst = std::max(worst, s.step_seconds);
            wait = std::max(wait, s.coupler_wait);
          }
        }
        coupled_sps = worst / steps;
        coupled_wait = wait / steps;
      }
    });
  }

  double mono_sps = 0.0, mono_iface = 0.0;
  {
    jm76::MonolithicConfig cfg;
    cfg.rig = rig3;
    cfg.res = res;
    cfg.flow = flow;
    cfg.search = jm76::SearchKind::BruteForce;  // production baseline
    minimpi::World::run(8, [&](minimpi::Comm& world) {
      jm76::MonolithicRig run(world, cfg);
      run.run(steps);
      if (world.rank() == 0) {
        mono_sps = run.stats().step_seconds / steps;
        mono_iface = run.stats().interface_seconds / steps;
      }
    });
  }

  util::Table mini({"config", "wall s/step", "interface/wait s/step"});
  mini.add_row({"coupled (8 ranks: 6 HS + 2 CU, ADT, pipelined)",
                util::Table::num(coupled_sps, 4), util::Table::num(coupled_wait, 4)});
  mini.add_row({"monolithic (8 ranks, inline BF search)", util::Table::num(mono_sps, 4),
                util::Table::num(mono_iface, 4)});
  mini.print_text(std::cout);
  util::write_csv(mini, "table4_measured_mini.csv");
  std::cout << "(Rank-threads share one physical core here; the comparison shows the\n"
               " monolithic in-step interface cost vs the coupled overlap, not speedup.)\n";

  // --- model: the full Table IV -------------------------------------------
  bench::section("model: hours per revolution at the paper's configurations");
  struct Row {
    const char* problem;
    const char* config;
    perf::MachineSpec machine;
    perf::WorkloadSpec wl;
    int nodes;
    bool monolithic;
    double paper_hours;  // <0: not reported
  };
  const Row rows[] = {
      {"1-10_430M", "Monolithic", perf::archer2(), perf::w430m(), 8, true, 93.0},
      {"1-10_430M", "Coupled", perf::archer2(), perf::w430m(), 8, false, 85.0},
      {"1-10_430M", "Coupled", perf::archer2(), perf::w430m(), 80, false, 3.3},
      {"1-10_430M", "Coupled", perf::cirrus(), perf::w430m(), 25, false, -1.0},
      {"1-2_653M", "Monolithic", perf::archer2(), perf::w653m(), 8, true, 110.0},
      {"1-2_653M", "Coupled", perf::archer2(), perf::w653m(), 8, false, 40.0},
      {"1-2_653M", "Coupled", perf::archer2(), perf::w653m(), 40, false, 8.2},
      {"1-2_653M", "Coupled", perf::cirrus(), perf::w653m(), 29, false, -1.0},
      {"1-10_4.58B", "Coupled", perf::archer2(), perf::w458b(), 166, false, 14.5},
      {"1-10_4.58B", "Coupled", perf::archer2(), perf::w458b(), 256, false, 9.4},
      {"1-10_4.58B", "Coupled", perf::archer2(), perf::w458b(), 512, false, 5.5},
      {"1-10_4.58B", "Coupled", perf::cirrus(), perf::w458b(), 122, false, 4.7},
  };
  util::Table t4({"problem", "config", "system", "nodes", "model h/rev", "paper h/rev"});
  for (const auto& r : rows) {
    perf::ScalingModel model(r.machine, r.wl);
    perf::ModelOptions opt;
    opt.monolithic = r.monolithic;
    opt.search = r.monolithic ? jm76::SearchKind::BruteForce : jm76::SearchKind::Adt;
    opt.cus_per_interface = r.machine.is_gpu() ? 40 : 30;
    opt.grouped_halos = r.machine.is_gpu();
    opt.staged_gather = r.machine.is_gpu();
    const double h = model.hours_per_rev(r.nodes, opt);
    t4.add_row({r.problem, r.config, r.machine.name, std::to_string(r.nodes),
                util::Table::num(h, 1),
                r.paper_hours > 0 ? util::Table::num(r.paper_hours, 1) : std::string("-")});
  }
  t4.print_text(std::cout);
  util::write_csv(t4, "table4_model.csv");

  // Headline claims.
  bench::section("headline claims");
  perf::ScalingModel a2(perf::archer2(), perf::w458b());
  perf::ModelOptions coupled;
  coupled.grouped_halos = false;
  std::cout << "1 revolution on 512 ARCHER2 nodes: "
            << util::Table::num(a2.hours_per_rev(512, coupled), 2)
            << " h (paper: 5.5 h, < 6 h goal)\n";
  perf::ScalingModel a1(perf::archer1(), perf::w458b());
  perf::ModelOptions mono;
  mono.monolithic = true;
  mono.search = jm76::SearchKind::BruteForce;
  const double prod = a1.hours_per_rev(100000 / 24, mono);
  std::cout << "production capability (monolithic, 100K ARCHER1 cores): "
            << util::Table::num(prod / 24.0, 1) << " days (paper estimate: 9 days)\n";
  std::cout << "speedup over production: x"
            << util::Table::num(prod / a2.hours_per_rev(512, coupled), 0)
            << " (paper: ~30x order of magnitude)\n";
  return 0;
}
