// Table III reproduction: OP2 communication optimizations — partial halo
// exchanges (PH), grouped halo messages (GH) and the staged/GPU-side gather
// for coupler payloads (GG).
//
// Layer 1 (measured): a distributed hydra row over minimpi rank-threads with
// each optimization toggled, metering exchanged halo bytes and message
// counts (the quantities the optimizations exist to reduce), plus the
// coupled staged-gather message shape.
// Layer 2 (model): projected per-step runtimes at the paper's ARCHER2 and
// Cirrus configurations next to the published Table III values.
//
// Zero-copy transport layer (ISSUE 10): halo-exchange A/B of the pooled
// send_owned/recv_owned path against the legacy copying path, the
// steady-state allocation gate, and the coupled-rig bit-identity matrix.
// Results land in BENCH_halo.json; floor violations fail the exit status
// (--quick shrinks sizes for the CI gate without relaxing the floors).
#include <cstring>

#include "bench/bench_common.hpp"
#include "src/hydra/solver.hpp"
#include "src/jm76/coupled.hpp"
#include "src/minimpi/minimpi.hpp"
#include "src/perf/costmodel.hpp"
#include "src/util/timer.hpp"

using namespace vcgt;

namespace {

struct HaloMeasurement {
  std::uint64_t bytes = 0;
  std::uint64_t msgs = 0;
};

HaloMeasurement run_row(bool partial, bool grouped, int nranks, int steps) {
  HaloMeasurement out;
  const auto rig = rig::rig250_spec(1);
  const auto res = rig::resolution_tier("coarse");
  const auto mesh = rig::generate_row_mesh(rig.rows[0], res);
  hydra::FlowConfig flow;
  flow.inner_iters = 3;
  minimpi::World::run(nranks, [&](minimpi::Comm& comm) {
    op2::Config cfg;
    cfg.partial_halos = partial;
    cfg.grouped_halos = grouped;
    op2::Context ctx(comm, cfg);
    hydra::RowSolver solver(ctx, mesh, rig.rows[0], rig.omega(), flow);
    ctx.partition(op2::Partitioner::Rcb, solver.cell_center());
    solver.initialize();
    for (int t = 0; t < steps; ++t) {
      solver.advance_inner(flow.inner_iters);
      solver.shift_time_levels();
    }
    if (comm.rank() == 0) {
      const auto s = ctx.total_stats();
      out.bytes = s.halo_bytes;
      out.msgs = s.halo_msgs;
    }
    // Meters are per-rank; aggregate across ranks.
    const auto bytes = comm.allreduce_sum_u64(ctx.total_stats().halo_bytes);
    const auto msgs = comm.allreduce_sum_u64(ctx.total_stats().halo_msgs);
    if (comm.rank() == 0) {
      out.bytes = bytes;
      out.msgs = msgs;
    }
  });
  return out;
}

/// One timed zero-copy A/B run: a two-loop epoch (direct write, then an
/// indirect read through a half-shift map) over `ncell` elements whose halo
/// is half the mesh — every epoch moves ncell/2 * ncomp doubles per rank
/// each way, so the exchange dominates and the regime is set by
/// ncell * ncomp (large = bandwidth, small = latency).
struct ZcRun {
  double seconds = 0;               ///< timed epochs, barrier-fenced wall
  std::uint64_t site_allocs = 0;    ///< halo_buffer_allocs delta (sum over ranks)
  std::uint64_t slab_allocs = 0;    ///< pool freelist misses delta (world pool)
  std::uint64_t msgs = 0;           ///< halo messages delta (sum over ranks)
  std::uint64_t bytes = 0;          ///< halo payload bytes delta
  std::uint64_t copies_avoided = 0; ///< send_owned moves delta (world pool)
};

ZcRun run_zc_micro(bool zero_copy, int nranks, op2::index_t ncell, int ncomp, int warm,
                   int epochs) {
  ZcRun out;
  minimpi::World::run(nranks, [&](minimpi::Comm& comm) {
    op2::Config cfg;
    cfg.zero_copy_transport = zero_copy;
    op2::Context ctx(comm, cfg);
    auto& cells = ctx.decl_set("cells", ncell);
    std::vector<double> centers(static_cast<std::size_t>(ncell) * 3, 0.0);
    for (op2::index_t i = 0; i < ncell; ++i) {
      centers[static_cast<std::size_t>(i) * 3] = static_cast<double>(i);
    }
    std::vector<op2::index_t> shift(static_cast<std::size_t>(ncell));
    for (op2::index_t i = 0; i < ncell; ++i) {
      shift[static_cast<std::size_t>(i)] = (i + ncell / 2) % ncell;
    }
    auto& map = ctx.decl_map("shift", cells, cells, 1, std::move(shift));
    auto& cc = ctx.decl_dat<double>(cells, 3, "cc", centers);
    auto& v = ctx.decl_dat<double>(cells, ncomp, "v");
    auto& acc = ctx.decl_dat<double>(cells, 1, "acc");
    ctx.partition(op2::Partitioner::Rcb, cc);
    auto epoch = [&] {
      op2::par_loop("write_v", cells, [](double* x) { x[0] += 1.0; }, op2::write(v));
      op2::par_loop("read_shift", cells,
                    [](const double* x, double* a) { *a = x[0]; },
                    op2::read(v, map, 0), op2::write(acc));
    };
    for (int i = 0; i < warm; ++i) epoch();
    comm.barrier();
    const auto allocs0 = ctx.halo_buffer_allocs();
    const auto stats0 = ctx.total_stats();
    const auto pool0 = comm.pool_stats();
    comm.barrier();
    util::Timer t;
    for (int i = 0; i < epochs; ++i) epoch();
    comm.barrier();
    const double sec = t.elapsed();
    const auto site = comm.allreduce_sum_u64(ctx.halo_buffer_allocs() - allocs0);
    const auto stats1 = ctx.total_stats();
    const auto msgs = comm.allreduce_sum_u64(stats1.halo_msgs - stats0.halo_msgs);
    const auto bytes = comm.allreduce_sum_u64(stats1.halo_bytes - stats0.halo_bytes);
    if (comm.rank() == 0) {
      const auto pool1 = comm.pool_stats();
      out.seconds = sec;
      out.site_allocs = site;
      out.msgs = msgs;
      out.bytes = bytes;
      out.slab_allocs = pool1.slab_allocs - pool0.slab_allocs;
      out.copies_avoided = pool1.copies_avoided - pool0.copies_avoided;
    }
  });
  return out;
}

/// Coupled two-row rig for `steps` steps; returns the row-1 global flow
/// state (captured on the row's rank 0; fetch_global is row-collective).
std::vector<double> run_coupled_state(bool zero_copy, const std::vector<int>& hs_ranks,
                                      op2::Layout layout) {
  jm76::CoupledConfig cfg;
  cfg.rig = rig::rig250_spec(2);
  cfg.res = rig::resolution_tier("tiny");
  cfg.flow.inner_iters = 2;
  cfg.flow.dt_phys = 5e-5;
  cfg.flow.rotor_swirl_frac = 0.05;
  cfg.flow.stator_swirl_frac = 0.02;
  cfg.hs_ranks = hs_ranks;
  cfg.cus_per_interface = 1;
  cfg.pipelined = false;
  cfg.op2cfg.zero_copy_transport = zero_copy;
  cfg.op2cfg.default_layout = layout;
  std::vector<double> out;
  minimpi::World::run(cfg.layout().world_size(), [&](minimpi::Comm& world) {
    jm76::CoupledRig rigrun(world, cfg);
    rigrun.run(3);
    if (rigrun.solver() != nullptr) {
      auto g = rigrun.solver()->context().fetch_global(rigrun.solver()->q());
      if (rigrun.role().row == 1 && rigrun.role().rank_in_row == 0) out = std::move(g);
    }
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.has("quick");
  const int nranks = static_cast<int>(cli.get_int("ranks", 8));
  const int steps = static_cast<int>(cli.get_int("steps", quick ? 2 : 4));

  bench::header("Table III: OP2 communication optimizations (PH / GH / GG)",
                "paper Table III, SS IV-A5");

  bench::section(util::fmt(
      "measured: one coarse Rig250 row on {} rank-threads, {} steps — halo traffic", nranks,
      steps));
  util::Table meas({"config", "halo MB", "halo msgs", "bytes vs default", "msgs vs default"});
  const auto base = run_row(false, false, nranks, steps);
  struct Case {
    const char* name;
    bool ph, gh;
  };
  for (const Case c : {Case{"default", false, false}, Case{"+PH", true, false},
                       Case{"+GH", false, true}, Case{"+PH+GH", true, true}}) {
    const auto m = run_row(c.ph, c.gh, nranks, steps);
    meas.add_row({c.name, util::Table::num(m.bytes / 1e6, 3), std::to_string(m.msgs),
                  util::Table::num(static_cast<double>(m.bytes) / base.bytes, 3),
                  util::Table::num(static_cast<double>(m.msgs) / base.msgs, 3)});
  }
  meas.print_text(std::cout);
  util::write_csv(meas, "table3_measured_halo.csv");

  // PH's motivating pattern (paper SS IV-A5): "sets representing the
  // boundary of the mesh ... only have connectivity with a few internal
  // mesh elements", so when a boundary loop is the first reader of a dirty
  // dat, only those few halo elements need exchanging. The full hydra step
  // above refreshes halos via interior loops first, which masks PH; this
  // micro-sequence isolates it: write a cell dat, then read it only through
  // a boundary-face map.
  bench::section("measured: boundary-only reader micro-sequence (PH's motivating case)");
  util::Table phm({"config", "halo bytes", "halo msgs"});
  for (const bool partial : {false, true}) {
    const auto rig1 = rig::rig250_spec(1);
    const auto mesh1 = rig::generate_row_mesh(rig1.rows[0], rig::resolution_tier("coarse"));
    std::uint64_t bytes = 0, msgs = 0;
    minimpi::World::run(nranks, [&](minimpi::Comm& comm) {
      op2::Config ocfg;
      ocfg.partial_halos = partial;
      op2::Context ctx(comm, ocfg);
      auto& cells = ctx.decl_set("cells", mesh1.ncell);
      auto& hub = ctx.decl_set("hub", mesh1.group_size(rig::BoundaryGroup::Hub));
      // Two entries per boundary face: its own cell plus the next face's
      // cell around the annulus — the second hop crosses partitions and is
      // what creates (small) halo demand.
      std::vector<op2::index_t> b2c;
      const auto hb = mesh1.group_begin[static_cast<std::size_t>(rig::BoundaryGroup::Hub)];
      const auto nhub = hub.global_size();
      for (op2::index_t b = 0; b < nhub; ++b) {
        b2c.push_back(mesh1.bface2cell[static_cast<std::size_t>(hb + b)]);
        b2c.push_back(mesh1.bface2cell[static_cast<std::size_t>(hb + (b + 1) % nhub)]);
      }
      auto& map = ctx.decl_map("b2c", hub, cells, 2, std::move(b2c));
      auto& cc = ctx.decl_dat<double>(cells, 3, "cc", mesh1.cell_center);
      auto& v = ctx.decl_dat<double>(cells, 5, "v");
      auto& acc = ctx.decl_dat<double>(hub, 1, "acc");
      ctx.partition(op2::Partitioner::Rcb, cc);
      for (int t = 0; t < steps; ++t) {
        op2::par_loop("write_v", cells,
                      [](double* x) {
                        for (int c = 0; c < 5; ++c) x[c] = 1.0;
                      },
                      op2::write(v));
        op2::par_loop("read_boundary", hub,
                      [](const double* x, const double* y, double* a) { *a = x[0] + y[0]; },
                      op2::read(v, map, 0),
                      op2::read(v, map, 1),
                      op2::write(acc));
      }
      const auto b = comm.allreduce_sum_u64(ctx.total_stats().halo_bytes);
      const auto mm = comm.allreduce_sum_u64(ctx.total_stats().halo_msgs);
      if (comm.rank() == 0) {
        bytes = b;
        msgs = mm;
      }
    });
    phm.add_row({partial ? "+PH" : "default", std::to_string(bytes), std::to_string(msgs)});
  }
  phm.print_text(std::cout);
  util::write_csv(phm, "table3_measured_ph_micro.csv");

  // Staged gather (GG): message count per coupled step with the toggle.
  bench::section("measured: coupler payload messages per interface step (GG toggle)");
  util::Table gg({"staged_gather", "world msgs", "world bytes"});
  for (const bool staged : {false, true}) {
    jm76::CoupledConfig ccfg;
    ccfg.rig = rig::rig250_spec(2);
    ccfg.res = rig::resolution_tier("coarse");
    ccfg.flow.inner_iters = 1;
    ccfg.hs_ranks = {2, 2};
    ccfg.cus_per_interface = 2;
    ccfg.staged_gather = staged;
    ccfg.pipelined = false;
    std::uint64_t msgs = 0, bytes = 0;
    minimpi::World::run(ccfg.layout().world_size(), [&](minimpi::Comm& world) {
      jm76::CoupledRig rigrun(world, ccfg);
      world.barrier();
      if (world.rank() == 0) world.reset_traffic();  // ignore setup traffic
      world.barrier();
      rigrun.run(3);
      world.barrier();
      if (world.rank() == 0) {
        const auto t = world.traffic();
        msgs = t.messages;
        bytes = t.bytes;
      }
    });
    gg.add_row({staged ? "on (GG)" : "off", std::to_string(msgs), std::to_string(bytes)});
  }
  gg.print_text(std::cout);
  util::write_csv(gg, "table3_measured_gg.csv");

  // -------------------------------------------------------------------------
  // Zero-copy transport: A/B, steady-state allocation gate, bit-identity.
  int gate_failures = 0;
  auto gate = [&](bool ok, const std::string& what) {
    if (!ok) {
      ++gate_failures;
      std::cout << "GATE FAIL: " << what << "\n";
    }
  };

  bench::section("measured: zero-copy transport A/B — halo exchange regimes");
  const int bw_cells = quick ? 12000 : 40000;
  const int bw_comp = 64;
  const int bw_epochs = quick ? 6 : 10;
  const int lat_cells = 2048;
  const int lat_comp = 2;
  const int lat_epochs = quick ? 40 : 100;
  const int trials = quick ? 2 : 3;

  // Best-of-N wall time per mode; the meters are gated on every trial.
  double bw_legacy = 1e30, bw_zc = 1e30, lat_legacy = 1e30, lat_zc = 1e30;
  ZcRun bw_zc_run, bw_legacy_run;
  for (int r = 0; r < trials; ++r) {
    const auto a = run_zc_micro(false, 2, bw_cells, bw_comp, 3, bw_epochs);
    const auto b = run_zc_micro(true, 2, bw_cells, bw_comp, 3, bw_epochs);
    if (a.seconds < bw_legacy) { bw_legacy = a.seconds; bw_legacy_run = a; }
    if (b.seconds < bw_zc) { bw_zc = b.seconds; bw_zc_run = b; }
    // Deterministic per-site meter: zero growth after warm-up, both modes.
    gate(a.site_allocs == 0, "legacy steady-state pack-buffer growth != 0");
    gate(b.site_allocs == 0, "zero-copy steady-state buffer growth != 0");
    // Every steady-state message moved its payload (no copies on the
    // clean path); pool growth, if any, is transient warm-up — never
    // per-message.
    gate(b.copies_avoided == b.msgs, "zero-copy mode copied a payload");
    gate(b.slab_allocs * 4 <= b.msgs, "pool allocating per message");
    lat_legacy = std::min(lat_legacy, run_zc_micro(false, 2, lat_cells, lat_comp, 3, lat_epochs).seconds);
    lat_zc = std::min(lat_zc, run_zc_micro(true, 2, lat_cells, lat_comp, 3, lat_epochs).seconds);
  }
  const double bw_speedup = bw_legacy / bw_zc;
  const double lat_speedup = lat_legacy / lat_zc;
  util::Table zc({"regime", "payload/epoch", "legacy s", "zero-copy s", "speedup"});
  zc.add_row({"bandwidth", util::fmt("{} MB", bw_cells / 2 * bw_comp * 8 / 1000000),
              util::Table::num(bw_legacy, 4), util::Table::num(bw_zc, 4),
              util::Table::num(bw_speedup, 3)});
  zc.add_row({"latency", util::fmt("{} KB", lat_cells / 2 * lat_comp * 8 / 1000),
              util::Table::num(lat_legacy, 4), util::Table::num(lat_zc, 4),
              util::Table::num(lat_speedup, 3)});
  zc.print_text(std::cout);
  std::cout << util::fmt(
      "steady state (zero-copy, {} msgs): site allocs {}, pool slab allocs {}, "
      "payload moves {}\n",
      bw_zc_run.msgs, bw_zc_run.site_allocs, bw_zc_run.slab_allocs,
      bw_zc_run.copies_avoided);
  // Floor: the bandwidth regime is where removing the send-side copy pays;
  // the latency regime is reported but not gated (per-message overhead is
  // mailbox bookkeeping, not payload motion).
  gate(bw_speedup >= 1.25,
       util::fmt("bandwidth-regime speedup {} < 1.25 floor", util::Table::num(bw_speedup, 3)));

  bench::section("measured: coupled-rig bit-identity (transport on vs off)");
  util::Table bits({"hs ranks/row", "layout", "identical"});
  bool all_identical = true;
  for (const int rr : {1, 2, 3}) {
    for (const op2::Layout lay : {op2::Layout::AoS, op2::Layout::SoA, op2::Layout::AoSoA}) {
      const auto on = run_coupled_state(true, {rr, rr}, lay);
      const auto off = run_coupled_state(false, {rr, rr}, lay);
      const bool same = on.size() == off.size() && !on.empty() &&
                        std::memcmp(on.data(), off.data(), on.size() * sizeof(double)) == 0;
      all_identical = all_identical && same;
      bits.add_row({std::to_string(rr), op2::layout_name(lay), same ? "yes" : "NO"});
    }
  }
  bits.print_text(std::cout);
  gate(all_identical, "coupled-rig state differs between transport on/off");

  bench::write_bench_json(
      "halo", {{"bw_speedup", bw_speedup},
               {"bw_legacy_seconds", bw_legacy},
               {"bw_zero_copy_seconds", bw_zc},
               {"lat_speedup", lat_speedup},
               {"steady_site_allocs", static_cast<double>(bw_zc_run.site_allocs)},
               {"steady_slab_allocs", static_cast<double>(bw_zc_run.slab_allocs)},
               {"steady_msgs", static_cast<double>(bw_zc_run.msgs)},
               {"steady_copies_avoided", static_cast<double>(bw_zc_run.copies_avoided)},
               {"bit_identical", all_identical ? 1.0 : 0.0},
               {"gate_failures", static_cast<double>(gate_failures)}});

  // Model layer: communication cost (halo + coupler transfer) per step at
  // the paper's configs. The paper's Table III runtimes cover an unspecified
  // iteration count, so the reproduction target is the *ordering and
  // relative gains* of the optimization ladder, not absolute seconds.
  bench::section("model: projected communication s/step at the paper's node counts");
  util::Table proj({"system", "mesh", "nodes", "default comm", "+PH", "+GG+GH+PH",
                    "best/default", "paper best/default"});
  struct PaperRow {
    const char* system;
    perf::MachineSpec machine;
    perf::WorkloadSpec wl;
    int nodes;
    double paper_default, paper_best;
  };
  const PaperRow rows[] = {
      {"ARCHER2", perf::archer2(), perf::w430m(), 27, 41.62, 39.87},
      {"ARCHER2", perf::archer2(), perf::w458b(), 288, 41.24, 18.19},
      {"Cirrus", perf::cirrus(), perf::w430m(), 25, 19.07, 5.09},
      {"Cirrus", perf::cirrus(), perf::w653m(), 29, 23.79, 6.74},
  };
  auto comm_cost = [](const perf::StepCost& c) { return c.halo + c.coupler_wait; };
  for (const auto& r : rows) {
    perf::ScalingModel model(r.machine, r.wl);
    perf::ModelOptions def, ph, all;
    def.partial_halos = ph.partial_halos = all.partial_halos = false;
    def.grouped_halos = ph.grouped_halos = all.grouped_halos = false;
    def.staged_gather = ph.staged_gather = all.staged_gather = false;
    ph.partial_halos = true;
    all.partial_halos = all.grouped_halos = all.staged_gather = true;
    const double cd = comm_cost(model.step_cost(r.nodes, def));
    const double cp = comm_cost(model.step_cost(r.nodes, ph));
    const double ca = comm_cost(model.step_cost(r.nodes, all));
    proj.add_row({r.system, r.wl.name, std::to_string(r.nodes), util::Table::num(cd, 3),
                  util::Table::num(cp, 3), util::Table::num(ca, 3),
                  util::Table::num(ca / cd, 2),
                  util::Table::num(r.paper_best / r.paper_default, 2)});
  }
  proj.print_text(std::cout);
  util::write_csv(proj, "table3_model.csv");

  std::cout << "\nPaper shape check: PH trims a few percent of halo bytes on CPU; grouping\n"
               "plus the staged gather removes most per-message device-copy overhead on\n"
               "GPU nodes (paper: 60-70% runtime reduction on Cirrus, modest on ARCHER2\n"
               "where packing outweighs latency).\n";
  if (gate_failures > 0) {
    std::cout << "\n" << gate_failures << " transport gate(s) FAILED\n";
    return 1;
  }
  return 0;
}
