// Table III reproduction: OP2 communication optimizations — partial halo
// exchanges (PH), grouped halo messages (GH) and the staged/GPU-side gather
// for coupler payloads (GG).
//
// Layer 1 (measured): a distributed hydra row over minimpi rank-threads with
// each optimization toggled, metering exchanged halo bytes and message
// counts (the quantities the optimizations exist to reduce), plus the
// coupled staged-gather message shape.
// Layer 2 (model): projected per-step runtimes at the paper's ARCHER2 and
// Cirrus configurations next to the published Table III values.
#include "bench/bench_common.hpp"
#include "src/hydra/solver.hpp"
#include "src/jm76/coupled.hpp"
#include "src/minimpi/minimpi.hpp"
#include "src/perf/costmodel.hpp"

using namespace vcgt;

namespace {

struct HaloMeasurement {
  std::uint64_t bytes = 0;
  std::uint64_t msgs = 0;
};

HaloMeasurement run_row(bool partial, bool grouped, int nranks, int steps) {
  HaloMeasurement out;
  const auto rig = rig::rig250_spec(1);
  const auto res = rig::resolution_tier("coarse");
  const auto mesh = rig::generate_row_mesh(rig.rows[0], res);
  hydra::FlowConfig flow;
  flow.inner_iters = 3;
  minimpi::World::run(nranks, [&](minimpi::Comm& comm) {
    op2::Config cfg;
    cfg.partial_halos = partial;
    cfg.grouped_halos = grouped;
    op2::Context ctx(comm, cfg);
    hydra::RowSolver solver(ctx, mesh, rig.rows[0], rig.omega(), flow);
    ctx.partition(op2::Partitioner::Rcb, solver.cell_center());
    solver.initialize();
    for (int t = 0; t < steps; ++t) {
      solver.advance_inner(flow.inner_iters);
      solver.shift_time_levels();
    }
    if (comm.rank() == 0) {
      const auto s = ctx.total_stats();
      out.bytes = s.halo_bytes;
      out.msgs = s.halo_msgs;
    }
    // Meters are per-rank; aggregate across ranks.
    const auto bytes = comm.allreduce_sum_u64(ctx.total_stats().halo_bytes);
    const auto msgs = comm.allreduce_sum_u64(ctx.total_stats().halo_msgs);
    if (comm.rank() == 0) {
      out.bytes = bytes;
      out.msgs = msgs;
    }
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int nranks = static_cast<int>(cli.get_int("ranks", 8));
  const int steps = static_cast<int>(cli.get_int("steps", 4));

  bench::header("Table III: OP2 communication optimizations (PH / GH / GG)",
                "paper Table III, SS IV-A5");

  bench::section(util::fmt(
      "measured: one coarse Rig250 row on {} rank-threads, {} steps — halo traffic", nranks,
      steps));
  util::Table meas({"config", "halo MB", "halo msgs", "bytes vs default", "msgs vs default"});
  const auto base = run_row(false, false, nranks, steps);
  struct Case {
    const char* name;
    bool ph, gh;
  };
  for (const Case c : {Case{"default", false, false}, Case{"+PH", true, false},
                       Case{"+GH", false, true}, Case{"+PH+GH", true, true}}) {
    const auto m = run_row(c.ph, c.gh, nranks, steps);
    meas.add_row({c.name, util::Table::num(m.bytes / 1e6, 3), std::to_string(m.msgs),
                  util::Table::num(static_cast<double>(m.bytes) / base.bytes, 3),
                  util::Table::num(static_cast<double>(m.msgs) / base.msgs, 3)});
  }
  meas.print_text(std::cout);
  util::write_csv(meas, "table3_measured_halo.csv");

  // PH's motivating pattern (paper SS IV-A5): "sets representing the
  // boundary of the mesh ... only have connectivity with a few internal
  // mesh elements", so when a boundary loop is the first reader of a dirty
  // dat, only those few halo elements need exchanging. The full hydra step
  // above refreshes halos via interior loops first, which masks PH; this
  // micro-sequence isolates it: write a cell dat, then read it only through
  // a boundary-face map.
  bench::section("measured: boundary-only reader micro-sequence (PH's motivating case)");
  util::Table phm({"config", "halo bytes", "halo msgs"});
  for (const bool partial : {false, true}) {
    const auto rig1 = rig::rig250_spec(1);
    const auto mesh1 = rig::generate_row_mesh(rig1.rows[0], rig::resolution_tier("coarse"));
    std::uint64_t bytes = 0, msgs = 0;
    minimpi::World::run(nranks, [&](minimpi::Comm& comm) {
      op2::Config ocfg;
      ocfg.partial_halos = partial;
      op2::Context ctx(comm, ocfg);
      auto& cells = ctx.decl_set("cells", mesh1.ncell);
      auto& hub = ctx.decl_set("hub", mesh1.group_size(rig::BoundaryGroup::Hub));
      // Two entries per boundary face: its own cell plus the next face's
      // cell around the annulus — the second hop crosses partitions and is
      // what creates (small) halo demand.
      std::vector<op2::index_t> b2c;
      const auto hb = mesh1.group_begin[static_cast<std::size_t>(rig::BoundaryGroup::Hub)];
      const auto nhub = hub.global_size();
      for (op2::index_t b = 0; b < nhub; ++b) {
        b2c.push_back(mesh1.bface2cell[static_cast<std::size_t>(hb + b)]);
        b2c.push_back(mesh1.bface2cell[static_cast<std::size_t>(hb + (b + 1) % nhub)]);
      }
      auto& map = ctx.decl_map("b2c", hub, cells, 2, std::move(b2c));
      auto& cc = ctx.decl_dat<double>(cells, 3, "cc", mesh1.cell_center);
      auto& v = ctx.decl_dat<double>(cells, 5, "v");
      auto& acc = ctx.decl_dat<double>(hub, 1, "acc");
      ctx.partition(op2::Partitioner::Rcb, cc);
      for (int t = 0; t < steps; ++t) {
        op2::par_loop("write_v", cells,
                      [](double* x) {
                        for (int c = 0; c < 5; ++c) x[c] = 1.0;
                      },
                      op2::write(v));
        op2::par_loop("read_boundary", hub,
                      [](const double* x, const double* y, double* a) { *a = x[0] + y[0]; },
                      op2::read(v, map, 0),
                      op2::read(v, map, 1),
                      op2::write(acc));
      }
      const auto b = comm.allreduce_sum_u64(ctx.total_stats().halo_bytes);
      const auto mm = comm.allreduce_sum_u64(ctx.total_stats().halo_msgs);
      if (comm.rank() == 0) {
        bytes = b;
        msgs = mm;
      }
    });
    phm.add_row({partial ? "+PH" : "default", std::to_string(bytes), std::to_string(msgs)});
  }
  phm.print_text(std::cout);
  util::write_csv(phm, "table3_measured_ph_micro.csv");

  // Staged gather (GG): message count per coupled step with the toggle.
  bench::section("measured: coupler payload messages per interface step (GG toggle)");
  util::Table gg({"staged_gather", "world msgs", "world bytes"});
  for (const bool staged : {false, true}) {
    jm76::CoupledConfig ccfg;
    ccfg.rig = rig::rig250_spec(2);
    ccfg.res = rig::resolution_tier("coarse");
    ccfg.flow.inner_iters = 1;
    ccfg.hs_ranks = {2, 2};
    ccfg.cus_per_interface = 2;
    ccfg.staged_gather = staged;
    ccfg.pipelined = false;
    std::uint64_t msgs = 0, bytes = 0;
    minimpi::World::run(ccfg.layout().world_size(), [&](minimpi::Comm& world) {
      jm76::CoupledRig rigrun(world, ccfg);
      world.barrier();
      if (world.rank() == 0) world.reset_traffic();  // ignore setup traffic
      world.barrier();
      rigrun.run(3);
      world.barrier();
      if (world.rank() == 0) {
        const auto t = world.traffic();
        msgs = t.messages;
        bytes = t.bytes;
      }
    });
    gg.add_row({staged ? "on (GG)" : "off", std::to_string(msgs), std::to_string(bytes)});
  }
  gg.print_text(std::cout);
  util::write_csv(gg, "table3_measured_gg.csv");

  // Model layer: communication cost (halo + coupler transfer) per step at
  // the paper's configs. The paper's Table III runtimes cover an unspecified
  // iteration count, so the reproduction target is the *ordering and
  // relative gains* of the optimization ladder, not absolute seconds.
  bench::section("model: projected communication s/step at the paper's node counts");
  util::Table proj({"system", "mesh", "nodes", "default comm", "+PH", "+GG+GH+PH",
                    "best/default", "paper best/default"});
  struct PaperRow {
    const char* system;
    perf::MachineSpec machine;
    perf::WorkloadSpec wl;
    int nodes;
    double paper_default, paper_best;
  };
  const PaperRow rows[] = {
      {"ARCHER2", perf::archer2(), perf::w430m(), 27, 41.62, 39.87},
      {"ARCHER2", perf::archer2(), perf::w458b(), 288, 41.24, 18.19},
      {"Cirrus", perf::cirrus(), perf::w430m(), 25, 19.07, 5.09},
      {"Cirrus", perf::cirrus(), perf::w653m(), 29, 23.79, 6.74},
  };
  auto comm_cost = [](const perf::StepCost& c) { return c.halo + c.coupler_wait; };
  for (const auto& r : rows) {
    perf::ScalingModel model(r.machine, r.wl);
    perf::ModelOptions def, ph, all;
    def.partial_halos = ph.partial_halos = all.partial_halos = false;
    def.grouped_halos = ph.grouped_halos = all.grouped_halos = false;
    def.staged_gather = ph.staged_gather = all.staged_gather = false;
    ph.partial_halos = true;
    all.partial_halos = all.grouped_halos = all.staged_gather = true;
    const double cd = comm_cost(model.step_cost(r.nodes, def));
    const double cp = comm_cost(model.step_cost(r.nodes, ph));
    const double ca = comm_cost(model.step_cost(r.nodes, all));
    proj.add_row({r.system, r.wl.name, std::to_string(r.nodes), util::Table::num(cd, 3),
                  util::Table::num(cp, 3), util::Table::num(ca, 3),
                  util::Table::num(ca / cd, 2),
                  util::Table::num(r.paper_best / r.paper_default, 2)});
  }
  proj.print_text(std::cout);
  util::write_csv(proj, "table3_model.csv");

  std::cout << "\nPaper shape check: PH trims a few percent of halo bytes on CPU; grouping\n"
               "plus the staged gather removes most per-message device-copy overhead on\n"
               "GPU nodes (paper: 60-70% runtime reduction on Cirrus, modest on ARCHER2\n"
               "where packing outweighs latency).\n";
  return 0;
}
