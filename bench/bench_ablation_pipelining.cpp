// Ablation: pipelined (overlapped) coupling vs blocking same-step transfer —
// the paper's claim that the coupler's search "can be overlapped with the
// work done by the processes dedicated to CFD" (§II-C). Measures the HS
// coupler-wait on the real system both ways, and the model's projection of
// the same toggle at paper scale.
#include "bench/bench_common.hpp"
#include "src/jm76/coupled.hpp"
#include "src/perf/costmodel.hpp"

using namespace vcgt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int steps = static_cast<int>(cli.get_int("steps", 6));

  bench::header("Ablation: pipelined (overlapped) vs blocking coupling",
                "paper SS II-C overlap discussion");

  bench::section("measured: 3-row coarse rig, max HS coupler wait per step");
  util::Table t({"mode", "search", "HS wait s/step", "CU search s/step", "CU idle s/step"});
  for (const bool pipelined : {false, true}) {
    for (const auto kind : {jm76::SearchKind::BruteForce, jm76::SearchKind::Adt}) {
      jm76::CoupledConfig cfg;
      cfg.rig = rig::rig250_spec(3);
      cfg.res = rig::resolution_tier("coarse");
      cfg.flow.inner_iters = 3;
      cfg.hs_ranks = {1, 1, 1};
      cfg.cus_per_interface = 1;
      cfg.pipelined = pipelined;
      cfg.search = kind;
      double wait = 0, search = 0, idle = 0;
      minimpi::World::run(cfg.layout().world_size(), [&](minimpi::Comm& world) {
        jm76::CoupledRig run(world, cfg);
        run.run(steps);
        const auto all = jm76::CoupledRig::collect(world, run.stats());
        if (world.rank() == 0) {
          for (const auto& s : all) {
            if (s.is_cu) {
              search = std::max(search, s.search_seconds);
              idle = std::max(idle, s.cu_idle_seconds);
            } else {
              wait = std::max(wait, s.coupler_wait);
            }
          }
        }
      });
      t.add_row({pipelined ? "pipelined" : "blocking", jm76::search_kind_name(kind),
                 util::Table::num(wait / steps, 5), util::Table::num(search / steps, 5),
                 util::Table::num(idle / steps, 5)});
    }
  }
  t.print_text(std::cout);
  util::write_csv(t, "ablation_pipelining.csv");
  std::cout << "(rank-threads timeshare one physical core, so mini wall times are noisy;\n"
               " the CU idle column dropping under pipelining shows the overlap working)\n";

  bench::section("model: coupler wait at paper scale (430M, 27 ARCHER2 nodes)");
  perf::ScalingModel model(perf::archer2(), perf::w430m());
  util::Table m({"mode", "search", "coupler wait s/step"});
  for (const bool pipelined : {false, true}) {
    for (const auto kind : {jm76::SearchKind::BruteForce, jm76::SearchKind::Adt}) {
      perf::ModelOptions o;
      o.pipelined = pipelined;
      o.search = kind;
      o.grouped_halos = false;
      m.add_row({pipelined ? "pipelined" : "blocking", jm76::search_kind_name(kind),
                 util::Table::num(model.step_cost(27, o).coupler_wait, 3)});
    }
  }
  m.print_text(std::cout);
  util::write_csv(m, "ablation_pipelining_model.csv");
  std::cout << "\nExpected: pipelining hides most of the search behind the inner\n"
               "iterations; with the ADT search the residual wait approaches the\n"
               "transfer/imbalance floor.\n";
  return 0;
}
