// bench_krylov — measures what the implicit dual-time path (DESIGN.md §11)
// buys over the explicit RK march at a stiff steady operating point: a
// throttled duct (elevated back-pressure) marched with local time stepping.
// The explicit path is CFL-bound at ~O(1); the implicit path solves the
// spectral-radius-Jacobian system M·dq = res with vcgt::krylov (CG + Jacobi,
// SpMV through the fused-halo LoopChain) each inner step, so its pseudo-CFL
// can sit an order of magnitude higher and the outer iteration count
// collapses. (Not arbitrarily higher: the first-order Jacobian overshoots
// at very large pseudo-CFL — sweep with --icfl to see the stability edge.)
//
//  1. Outer-iteration count to a fixed residual drop, explicit vs implicit.
//     The headline metric is outer_reduction = iters_explicit /
//     iters_implicit, with a >= 2x acceptance floor (ISSUE 7 / CI gate).
//  2. Wall-clock for the same marches: the implicit step is individually
//     more expensive (a Krylov solve per step), so this reports whether the
//     iteration collapse survives as end-to-end speedup at mini scale.
//
// Writes BENCH_krylov.json (iters_explicit, iters_implicit, outer_reduction,
// wall seconds and speedup, final residuals). Options: --scale=N (mesh
// scale, default 2), --drop=X (relative residual target, default 1e-3),
// --max_iters=N (march cap, default 4000), --quick (CI smoke: scale 1,
// cap 1500).
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/hydra/solver.hpp"
#include "src/op2/op2.hpp"
#include "src/rig/annulus.hpp"
#include "src/rig/rowspec.hpp"
#include "src/util/timer.hpp"

using namespace vcgt;

namespace {

rig::RowSpec bench_row() {
  rig::RowSpec row;
  row.name = "B";
  row.rotor = false;
  row.x_min = 0.0;
  row.x_max = 0.1;
  row.r_hub = 0.3;
  row.r_casing = 0.5;
  return row;
}

/// Throttled steady duct: the back-pressure rise makes the inflow/outflow
/// balance stiff — the explicit march crawls toward it at CFL-limited pace.
hydra::FlowConfig stiff_flow(bool implicit, double icfl) {
  hydra::FlowConfig cfg;
  cfg.steady = true;
  cfg.p_back_ratio = 1.05;
  cfg.implicit_dual_time = implicit;
  cfg.implicit_cfl = icfl;
  cfg.implicit_max_iters = 120;
  cfg.implicit_rtol = 1e-5;
  return cfg;
}

struct March {
  int iters = 0;          ///< outer (inner_iteration) steps taken
  bool reached = false;   ///< hit the residual-drop target before the cap
  double rms0 = 0.0;
  double rms = 0.0;
  double seconds = 0.0;
};

/// Marches a fresh solver until residual_rms falls below drop * initial
/// (checked every `check` steps) or `cap` steps elapse.
March run_march(const rig::AnnulusMesh& mesh, bool implicit, double icfl,
                double drop, int cap, int check) {
  op2::Context ctx;
  const auto row = bench_row();
  hydra::RowSolver solver(ctx, mesh, row, /*omega=*/0.0, stiff_flow(implicit, icfl));
  ctx.partition(op2::Partitioner::Rcb, solver.cell_center());
  solver.initialize();

  March out;
  util::Timer t;
  solver.inner_iteration();  // populates res_ for the baseline RMS
  out.iters = 1;
  out.rms0 = solver.residual_rms();
  out.rms = out.rms0;
  const double target = drop * out.rms0;
  while (out.iters < cap) {
    solver.advance_inner(check);
    out.iters += check;
    out.rms = solver.residual_rms();
    if (!std::isfinite(out.rms)) break;
    if (out.rms <= target) {
      out.reached = true;
      break;
    }
  }
  out.seconds = t.elapsed();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.has("quick");
  const int scale = static_cast<int>(cli.get_int("scale", quick ? 1 : 2));
  const double drop = cli.get_double("drop", 1e-3);
  const int cap = static_cast<int>(cli.get_int("max_iters", quick ? 1500 : 4000));

  bench::header("Implicit dual-time (vcgt::krylov) vs explicit RK march",
                "DESIGN.md §11; paper §III implicit smoothing / solver stack");

  const auto row = bench_row();
  const rig::AnnulusMesh mesh =
      rig::generate_row_mesh(row, {4 * scale, 3 * scale, 12 * scale});
  std::cout << util::fmt("mesh: {} cells, {} faces; target residual drop {}\n",
                         mesh.ncell, mesh.nface, util::Table::num(drop, 1));

  const double icfl = cli.get_double("icfl", hydra::FlowConfig{}.implicit_cfl);
  bench::section("outer iterations to target at the stiff operating point");
  const March ex = run_march(mesh, /*implicit=*/false, icfl, drop, cap, /*check=*/10);
  const March im = run_march(mesh, /*implicit=*/true, icfl, drop, cap, /*check=*/1);

  util::Table tbl({"path", "outer iters", "reached", "rms0", "rms", "seconds"});
  tbl.add_row({"explicit RK", std::to_string(ex.iters), ex.reached ? "yes" : "NO",
               util::Table::num(ex.rms0, 3), util::Table::num(ex.rms, 3),
               util::Table::num(ex.seconds, 3)});
  tbl.add_row({"implicit CG", std::to_string(im.iters), im.reached ? "yes" : "NO",
               util::Table::num(im.rms0, 3), util::Table::num(im.rms, 3),
               util::Table::num(im.seconds, 3)});
  tbl.print_text(std::cout);

  const double reduction =
      im.iters > 0 ? static_cast<double>(ex.iters) / static_cast<double>(im.iters)
                   : 0.0;
  const double wall_speedup = im.seconds > 0.0 ? ex.seconds / im.seconds : 0.0;
  std::cout << util::fmt(
      "  outer-iteration reduction {}x (acceptance floor 2x), wall speedup {}x\n",
      util::Table::num(reduction, 2), util::Table::num(wall_speedup, 2));
  if (!im.reached) {
    std::cout << "  WARNING: implicit march missed the target within the cap\n";
  }

  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("ncell", static_cast<double>(mesh.ncell));
  metrics.emplace_back("target_drop", drop);
  metrics.emplace_back("iters_explicit", static_cast<double>(ex.iters));
  metrics.emplace_back("iters_implicit", static_cast<double>(im.iters));
  metrics.emplace_back("explicit_reached", ex.reached ? 1.0 : 0.0);
  metrics.emplace_back("implicit_reached", im.reached ? 1.0 : 0.0);
  metrics.emplace_back("outer_reduction", reduction);
  metrics.emplace_back("seconds_explicit", ex.seconds);
  metrics.emplace_back("seconds_implicit", im.seconds);
  metrics.emplace_back("wall_speedup", wall_speedup);
  metrics.emplace_back("rms_final_explicit", ex.rms);
  metrics.emplace_back("rms_final_implicit", im.rms);
  bench::write_bench_json("krylov", metrics);

  // CI gate: the implicit path must reach the target in at least 2x fewer
  // outer iterations than the explicit march.
  return (im.reached && reduction >= 2.0) ? 0 : 1;
}
