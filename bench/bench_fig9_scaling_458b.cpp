// Figure 9 reproduction: scaling of the grand-challenge 1-10_4.58B mesh on
// ARCHER2 (the mesh exceeds the Cirrus cluster's total GPU memory; the
// 122-node Cirrus point is the paper's projection, included via the model).
#include "bench/fig_scaling_common.hpp"
#include "src/perf/shardproj.hpp"

int main(int argc, char** argv) {
  const vcgt::util::Cli cli(argc, argv);
  vcgt::bench::FigureSpec spec;
  spec.title = "Figure 9: 1-10_4.58B mesh scaling (grand challenge)";
  spec.paper_ref = "paper Fig. 9, SS IV-B2/4";
  spec.workload = vcgt::perf::w458b();
  spec.archer2_nodes = {107, 166, 256, 363, 512};
  spec.cirrus_nodes = {122};  // projected: minimum node count that fits memory
  spec.base_node_index = 0;
  spec.paper_efficiency = 0.82;  // 107 -> 512 nodes
  spec.mini_rows = 4;
  spec.bench_name = "fig9_scaling_458b";
  vcgt::bench::run_scaling_figure(spec, static_cast<int>(cli.get_int("steps", 3)),
                                  "fig9", cli);

  vcgt::perf::ScalingModel gpu(vcgt::perf::cirrus(), vcgt::perf::w458b());
  std::cout << "\nGPU memory gate: minimum Cirrus nodes for 4.58B = " << gpu.min_gpu_nodes()
            << " (paper: 122; the 36-node cluster cannot hold it)\n";

  // Sharded-setup projection (DESIGN.md §13): per-rank shard windows of the
  // 4.58B mesh over two-level node x core rank counts, 64-bit throughout.
  const auto proj = vcgt::perf::project_sharded_scaling(
      vcgt::perf::archer2(), vcgt::perf::w458b(), vcgt::perf::fig9_row_resolution(),
      {8, 16, 32, 64, 128, 256, 512});
  std::cout << "\n" << vcgt::perf::format_shard_table(proj);
  std::cout << "Paper shape check: 82% efficiency 107->512 nodes, coupling overhead\n"
               "8-15%; 1 revolution in < 6 h at 512 nodes; projected 4.7 h on 122\n"
               "Cirrus nodes (>3x over the power-equivalent 166 ARCHER2 nodes).\n";
  return 0;
}
