// Figure 8 reproduction: scaling of the 1-2_653M two-row problem (the
// largest configuration that fits Cirrus' GPU memory).
#include "bench/fig_scaling_common.hpp"

int main(int argc, char** argv) {
  const vcgt::util::Cli cli(argc, argv);
  vcgt::bench::FigureSpec spec;
  spec.title = "Figure 8: 1-2_653M mesh scaling";
  spec.paper_ref = "paper Fig. 8, SS IV-B3";
  spec.workload = vcgt::perf::w653m();
  spec.archer2_nodes = {15, 23, 40, 80};
  spec.cirrus_nodes = {17, 23, 29};
  spec.base_node_index = 0;
  spec.paper_efficiency = 0.88;  // 15 -> 80 nodes
  spec.mini_rows = 2;
  spec.bench_name = "fig8_scaling_2row";
  vcgt::bench::run_scaling_figure(spec, static_cast<int>(cli.get_int("steps", 4)),
                                  "fig8", cli);
  std::cout << "\nPaper shape check: 88% efficiency 15->80 ARCHER2 nodes with only 2-8%\n"
               "coupling overhead (two rows balance easily); Cirrus 98% efficient\n"
               "17->29 nodes with 10-12% overhead, 3.3-3.4x faster at equal power.\n";
  return 0;
}
