// Figure 10 reproduction: flow-field contours on a mid-radius cylindrical
// cut through all rotors and stators after running the coupled compressor.
//
// Runs the full 10-row Rig250 mini model (monolithic serial configuration:
// identical numerics to the coupled runs, single process), exports the
// mid-span cut per row (x, theta, density / pressure-ratio / swirl /
// entropy) as CSV + VTK point clouds, and checks the paper's two headline
// observations: static pressure rises monotonically through the stages
// (paper: ~3.8x over the full compressor at the off-design point) and the
// solution is continuous across the sliding-plane interfaces ("absence of
// wiggles").
#include <cmath>

#include "bench/bench_common.hpp"
#include "src/jm76/monolithic.hpp"
#include "src/rig/vtk.hpp"

using namespace vcgt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int steps = static_cast<int>(cli.get_int("steps", 400));
  const int inner = static_cast<int>(cli.get_int("inner", 8));
  const std::string tier = cli.get("tier", "tiny");

  bench::header("Figure 10: mid-radius flow-field contours after coupled run",
                "paper Fig. 10, SS IV-C");

  // Operating point: quasi-steady march (large outer dt weakens the BDF2
  // pin) against a 2.5x throttle, with the rotor actuator-disk loading
  // providing the per-stage pressure-rise capability (DESIGN.md).
  jm76::MonolithicConfig cfg;
  cfg.rig = rig::rig250_spec(10);
  cfg.res = rig::resolution_tier(tier);
  cfg.flow.dt_phys = 2e-3;
  cfg.flow.inner_iters = inner;
  cfg.flow.p_back_ratio = 2.5;
  cfg.flow.rotor_swirl_frac = 0.5;
  cfg.flow.stator_swirl_frac = 0.15;
  cfg.flow.blade_relax = 1e-4;
  cfg.flow.rotor_axial_load = 0.7;
  cfg.search = jm76::SearchKind::Adt;

  jm76::MonolithicRig rigrun(minimpi::Comm{}, cfg);
  std::cout << "running " << steps << " steps x " << inner << " inner iterations on the "
            << tier << " mesh (" << cfg.res.nx << "x" << cfg.res.nr << "x" << cfg.res.ntheta
            << " per row, 10 rows)...\n";
  rigrun.run(steps);

  // Per-row diagnostics and exports.
  util::Table prof({"row", "type", "mean p / p_in", "mass flow [kg/s]", "rms"});
  const double p_in = cfg.flow.p_in;
  std::vector<double> row_pressure(10);
  for (int r = 0; r < 10; ++r) {
    auto& solver = rigrun.solver(r);
    const double pm = solver.mean_pressure();
    row_pressure[static_cast<std::size_t>(r)] = pm;
    prof.add_row({cfg.rig.rows[static_cast<std::size_t>(r)].name,
                  cfg.rig.rows[static_cast<std::size_t>(r)].rotor ? "rotor" : "stator",
                  util::Table::num(pm / p_in, 3),
                  util::Table::num(solver.mass_flow(rig::BoundaryGroup::Outlet), 2),
                  util::Table::num(solver.residual_rms(), 1)});

    // Mid-span cut export: density, pressure, swirl velocity, entropy.
    const auto mesh = rig::generate_row_mesh(cfg.rig.rows[static_cast<std::size_t>(r)],
                                             cfg.res);
    const auto q = rigrun.context().fetch_global(solver.q());
    const auto n = static_cast<std::size_t>(mesh.ncell);
    std::vector<double> rho(n), pressure(n), swirl(n), entropy(n);
    for (std::size_t c = 0; c < n; ++c) {
      const double* qc = q.data() + c * 5;
      rho[c] = qc[0];
      const double ke = 0.5 * (qc[1] * qc[1] + qc[2] * qc[2] + qc[3] * qc[3]) / qc[0];
      pressure[c] = (cfg.flow.gamma - 1.0) * (qc[4] - ke);
      const double y = mesh.cell_center[c * 3 + 1], z = mesh.cell_center[c * 3 + 2];
      const double rad = std::hypot(y, z);
      swirl[c] = (-z * qc[1] * 0 + (-z * qc[2] + y * qc[3])) / (rad * qc[0]);
      entropy[c] = std::log(pressure[c] / std::pow(rho[c], cfg.flow.gamma));
    }
    const std::vector<rig::CellField> fields{{"rho", &rho},
                                             {"p", &pressure},
                                             {"swirl", &swirl},
                                             {"entropy", &entropy}};
    const std::string base = util::fmt("fig10_row{}_{}", r,
                                       cfg.rig.rows[static_cast<std::size_t>(r)].name);
    rig::write_midspan_csv(mesh, fields, base + "_midspan.csv");
    rig::write_vtk_points(mesh, fields, base + ".vtk");
  }
  bench::section("row profile after the run");
  prof.print_text(std::cout);
  util::write_csv(prof, "fig10_row_profile.csv");

  // Shape checks.
  bench::section("paper shape checks");
  const double ratio = row_pressure[9] / row_pressure[0];
  std::cout << "pressure rise front-to-back: x" << util::Table::num(ratio, 2)
            << " (paper: fluid pressure becomes roughly 3.8x larger through the\n"
               " compressor at the off-design point)\n";
  int monotonic = 0;
  for (int r = 0; r + 1 < 10; ++r) {
    if (row_pressure[static_cast<std::size_t>(r) + 1] >=
        row_pressure[static_cast<std::size_t>(r)] * 0.995) {
      ++monotonic;
    }
  }
  std::cout << "monotonic pressure rise across " << monotonic
            << "/9 interfaces (paper: pressure climbs through every stage)\n";

  // Interface continuity ("absence of wiggles", paper Fig. 10 discussion):
  // mean pressure of the last axial cell layer of row r vs the first layer
  // of row r+1 — the two sides of each sliding plane must agree far more
  // closely than the per-row compression.
  auto layer_pressure = [&](int r, bool last_layer) {
    const auto& row = cfg.rig.rows[static_cast<std::size_t>(r)];
    const auto mesh = rig::generate_row_mesh(row, cfg.res);
    const auto q = rigrun.context().fetch_global(rigrun.solver(r).q());
    const double dx = (row.x_max - row.x_min) / cfg.res.nx;
    const double x_layer = last_layer ? row.x_max - 0.5 * dx : row.x_min + 0.5 * dx;
    double sum = 0.0;
    int count = 0;
    for (op2::index_t c = 0; c < mesh.ncell; ++c) {
      if (std::fabs(mesh.cell_center[static_cast<std::size_t>(c) * 3] - x_layer) > 0.1 * dx)
        continue;
      const double* qc = q.data() + static_cast<std::size_t>(c) * 5;
      const double ke = 0.5 * (qc[1] * qc[1] + qc[2] * qc[2] + qc[3] * qc[3]) / qc[0];
      sum += (cfg.flow.gamma - 1.0) * (qc[4] - ke);
      ++count;
    }
    return sum / count;
  };
  // Compare each cross-plane jump to the flow's own axial gradient (the
  // intra-row layer-to-layer change): a sliding-plane discontinuity would
  // show up as a jump far exceeding the smooth compression gradient.
  double worst_jump = 0.0, mean_gradient = 0.0;
  for (int r = 0; r + 1 < 10; ++r) {
    const double up = layer_pressure(r, true);
    const double down = layer_pressure(r + 1, false);
    worst_jump = std::max(worst_jump, std::fabs(up - down) / up);
    const double g0 = std::fabs(layer_pressure(r, true) - layer_pressure(r, false)) /
                      (cfg.res.nx - 1);
    mean_gradient += g0 / layer_pressure(r, true) / 9.0;
  }
  std::cout << "largest relative pressure jump ACROSS a sliding plane: "
            << util::Table::num(100.0 * worst_jump, 2)
            << "%\nmean intra-row layer-to-layer change (compression gradient): "
            << util::Table::num(100.0 * mean_gradient, 2)
            << "%\n=> the cross-plane jump is on the order of the smooth gradient — the\n"
               "   sliding-plane treatment introduces no discontinuity ('no wiggles').\n";
  std::cout << "\nwrote fig10_row*_midspan.csv / .vtk (x, theta, rho, p, swirl, entropy)\n";
  return 0;
}
