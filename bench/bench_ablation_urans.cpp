// Ablation: steady RANS + mixing planes (the industrial standard, paper §I:
// "circumferential averaging is enforced at the interfaces") vs URANS +
// sliding planes (the paper's approach). With discrete blade wakes enabled,
// the blade-passing harmonics that drive unsteady rotor-stator interaction
// cross the sliding planes but are annihilated by the mixing planes —
// quantifying WHY virtual certification needs the full-annulus URANS whose
// cost the paper's coupler+DSL stack makes tractable.
#include <cmath>

#include "bench/bench_common.hpp"
#include "src/jm76/monolithic.hpp"
#include "src/util/spectrum.hpp"
#include "src/util/timer.hpp"

using namespace vcgt;

namespace {

struct RunResult {
  std::vector<double> harmonic;  ///< per interface: downstream blade-harmonic amplitude
  std::vector<double> mean;      ///< per interface: downstream mean (same signal)
  double seconds = 0.0;
};

RunResult run(jm76::TransferKind transfer, bool steady, int steps, int nrows,
              const rig::MeshResolution& res) {
  jm76::MonolithicConfig cfg;
  cfg.rig = rig::rig250_spec(nrows);
  // Blade counts resolvable on the mini lattice.
  for (auto& row : cfg.rig.rows) row.nblades = row.rotor ? 3 : 4;
  cfg.res = res;
  cfg.flow.inner_iters = 3;
  cfg.flow.dt_phys = steady ? 1e-3 : 5e-5;
  cfg.flow.steady = steady;
  cfg.flow.blade_wake_frac = 0.5;
  cfg.flow.rotor_swirl_frac = 0.3;
  cfg.flow.stator_swirl_frac = 0.1;
  cfg.transfer = transfer;
  cfg.search = jm76::SearchKind::Adt;

  jm76::MonolithicRig rigrun(minimpi::Comm{}, cfg);
  util::Timer t;
  rigrun.run(steps);
  RunResult out;
  out.seconds = t.elapsed();
  for (int i = 0; i + 1 < nrows; ++i) {
    auto& down = rigrun.solver(i + 1);
    const auto ghost = rigrun.context().fetch_global(down.ghost(rig::BoundaryGroup::Inlet));
    std::vector<double> ring(static_cast<std::size_t>(res.ntheta));
    for (int k = 0; k < res.ntheta; ++k) {
      const int gid = k * res.nr + res.nr / 2;
      ring[static_cast<std::size_t>(k)] = ghost[static_cast<std::size_t>(gid) * 6 + 2];
    }
    const int nb = cfg.rig.rows[static_cast<std::size_t>(i)].nblades;
    const auto mag = util::theta_harmonics(ring, nb + 1);
    out.harmonic.push_back(mag[static_cast<std::size_t>(nb)]);
    out.mean.push_back(mag[0]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int steps = static_cast<int>(cli.get_int("steps", 10));
  const int nrows = static_cast<int>(cli.get_int("rows", 3));
  const auto res = rig::resolution_tier(cli.get("tier", "tiny"));

  bench::header(
      "Ablation: steady RANS + mixing planes vs URANS + sliding planes",
      "paper SS I-II motivation (rotor-stator interaction, full-annulus URANS)");

  const auto urans = run(jm76::TransferKind::SlidingPlane, false, steps, nrows, res);
  const auto rans = run(jm76::TransferKind::MixingPlane, true, steps, nrows, res);

  util::Table t({"interface", "upstream blades", "URANS harmonic", "RANS harmonic",
                 "retained by URANS vs RANS"});
  const auto rig = rig::rig250_spec(nrows);
  for (int i = 0; i + 1 < nrows; ++i) {
    const double u = urans.harmonic[static_cast<std::size_t>(i)];
    const double m = rans.harmonic[static_cast<std::size_t>(i)];
    t.add_row({util::fmt("{} -> {}", rig.rows[static_cast<std::size_t>(i)].name,
                         rig.rows[static_cast<std::size_t>(i) + 1].name),
               std::to_string(rig.rows[static_cast<std::size_t>(i)].rotor ? 3 : 4),
               util::Table::num(u, 6), util::Table::num(m, 6),
               m > 1e-9 * u ? util::Table::num(u / m, 0) + "x"
                            : std::string("fully removed")});
  }
  t.print_text(std::cout, "blade-passing harmonic amplitude in the downstream ghost state");
  util::write_csv(t, "ablation_urans.csv");

  std::cout << "\nwall seconds: URANS+sliding " << util::Table::num(urans.seconds, 2)
            << " vs steady RANS+mixing " << util::Table::num(rans.seconds, 2) << "\n";
  std::cout
      << "\nReading: the mixing plane removes the blade-passing content entirely\n"
         "(the steady model cannot represent it by construction), while the sliding\n"
         "plane transmits it downstream — the unsteady rotor-stator interaction the\n"
         "paper's URANS exists to capture, at the cost its DSL+coupler stack makes\n"
         "tractable (~2 orders more mesh for full annulus, SS I).\n";
  return 0;
}
