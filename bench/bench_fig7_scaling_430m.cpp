// Figure 7 reproduction: scaling of the 1-10_430M full-machine problem on
// ARCHER2 and Cirrus (runtime/timestep vs node count, parallel efficiency,
// coupling overhead fraction).
#include "bench/fig_scaling_common.hpp"

int main(int argc, char** argv) {
  const vcgt::util::Cli cli(argc, argv);
  vcgt::bench::FigureSpec spec;
  spec.title = "Figure 7: 1-10_430M mesh scaling";
  spec.paper_ref = "paper Fig. 7, SS IV-B1";
  spec.workload = vcgt::perf::w430m();
  spec.archer2_nodes = {10, 20, 27, 34, 55, 82};
  spec.cirrus_nodes = {15, 20, 25};
  spec.base_node_index = 0;
  spec.paper_efficiency = 0.824;  // 10 -> 82 nodes
  spec.mini_rows = 3;
  spec.bench_name = "fig7_scaling_430m";
  vcgt::bench::run_scaling_figure(spec, static_cast<int>(cli.get_int("steps", 4)),
                                  "fig7", cli);
  std::cout << "\nPaper shape check: 94% efficiency to 34 nodes, 82.4% to 82 nodes;\n"
               "coupling wait grows from 5-10% to ~20%; Cirrus 3.75-3.95x faster at\n"
               "equal power (5.1-5.37x node-to-node).\n";
  return 0;
}
