// Fuzz-throughput bench: how many differential cases per second the
// vcgt::verify harness sustains, split by phase (generation+taint alone,
// oracle execution, full matrix check). The cases/s number sizes the smoke
// and nightly campaign budgets (ISSUE 4: 200 cases < 60 s in CI, 10k
// nightly); a regression here silently shrinks the nightly's bug-finding
// power, so the number is tracked like any other bench metric.
//
//   ./bench_fuzz [--cases=N] [--seed=S]
#include <cstdint>

#include "bench/bench_common.hpp"
#include "src/util/timer.hpp"
#include "src/verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace vcgt;
  util::Cli cli(argc, argv);
  const auto cases = static_cast<std::uint64_t>(cli.get_int("cases", 100));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  bench::header("Fuzz harness throughput",
                "nothing in the paper; sizes the vcgt::verify CI budgets");

  // Phase 1: generation + taint analysis only (no execution).
  util::Timer t_gen;
  std::uint64_t total_loops = 0;
  for (std::uint64_t i = 0; i < cases; ++i) {
    const auto spec = verify::gen_case(seed, i);
    const auto tables = verify::make_tables(spec.mesh);
    const auto taint = verify::analyze_taint(spec, tables);
    total_loops += spec.loops.size() + (taint.dat.empty() ? 1 : 0);
  }
  const double gen_s = t_gen.elapsed();

  // Phase 2: the serial-AoS oracle alone.
  util::Timer t_oracle;
  verify::ExecConfig oracle;
  oracle.name = "serial-aos";
  for (std::uint64_t i = 0; i < cases; ++i) {
    const auto spec = verify::gen_case(seed, i);
    const auto tables = verify::make_tables(spec.mesh);
    const auto r = verify::run_case(spec, tables, oracle);
    if (!r.ok) {
      util::error("bench_fuzz: oracle failed on case {}: {}", i, r.error);
      return 1;
    }
  }
  const double oracle_s = t_oracle.elapsed();

  // Phase 3: the full matrix (what the smoke tier and campaigns run).
  verify::CampaignOptions opts;
  opts.seed = seed;
  opts.cases = cases;
  const auto rep = verify::run_campaign(opts);
  if (rep.mismatches != 0) {
    util::error("bench_fuzz: {} unexpected mismatches — fix before timing",
                static_cast<std::uint64_t>(rep.mismatches));
    return 1;
  }

  bench::section("throughput");
  util::Table t({"phase", "cases/s", "ms/case"});
  const auto row = [&](const char* name, double secs) {
    t.add_row({name, util::Table::num(static_cast<double>(cases) / secs, 1),
               util::Table::num(1e3 * secs / static_cast<double>(cases), 2)});
  };
  row("gen+taint", gen_s);
  row("oracle only", oracle_s);
  row("full matrix", rep.seconds);
  t.print_text(std::cout);
  std::cout << "avg program length: "
            << static_cast<double>(total_loops) / static_cast<double>(cases)
            << " loops\n";

  bench::write_bench_json(
      "fuzz", {{"cases", static_cast<double>(cases)},
               {"gen_cases_per_s", static_cast<double>(cases) / gen_s},
               {"oracle_cases_per_s", static_cast<double>(cases) / oracle_s},
               {"matrix_cases_per_s", static_cast<double>(cases) / rep.seconds}});
  return 0;
}
