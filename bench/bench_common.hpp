#pragma once
// Shared helpers for the table/figure reproduction benches. Every bench
// prints (1) measured numbers from real mini-scale runs of this repository's
// system and (2) the calibrated scaling model evaluated at the paper's node
// counts, next to the paper's published values where the paper gives them.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "src/util/cli.hpp"
#include "src/util/fmt.hpp"
#include "src/util/log.hpp"
#include "src/util/table.hpp"
#include "src/util/trace.hpp"

namespace vcgt::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n================================================================\n"
            << title << "\n(reproduces " << paper_ref << ")\n"
            << "================================================================\n";
}

inline void section(const std::string& name) {
  std::cout << "\n--- " << name << " ---\n";
}

/// "x.xx (paper y.yy)" cell.
inline std::string vs_paper(double value, double paper, int precision = 2) {
  return util::Table::num(value, precision) + " (paper " +
         util::Table::num(paper, precision) + ")";
}

/// Resolves the `--trace` option. Both spellings work: `--trace=out.json`
/// (the Cli's native form) and `--trace out.json` (which the Cli parses as a
/// boolean flag plus a positional — picked up here). Bare `--trace` defaults
/// to "trace.json". Empty string = tracing not requested.
inline std::string trace_path(const util::Cli& cli) {
  if (!cli.has("trace")) return "";
  const std::string p = cli.get("trace", "");
  if (!p.empty() && p != "1" && p != "true") return p;
  for (const auto& pos : cli.positional()) {
    if (pos.size() > 5 && pos.compare(pos.size() - 5, 5, ".json") == 0) return pos;
  }
  return "trace.json";
}

/// RAII trace capture for a bench run: when `--trace[=<path>]` is given,
/// enables vcgt::trace for the session's lifetime; finish() (or the
/// destructor) prints the per-span summary, writes the Chrome-trace JSON and
/// disables tracing. Without the flag every call is a no-op.
class TraceSession {
 public:
  explicit TraceSession(const util::Cli& cli) : path_(trace_path(cli)) {
    if (active()) trace::enable();
  }
  ~TraceSession() { finish(); }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  [[nodiscard]] bool active() const { return !path_.empty(); }

  /// Stops recording, prints the span summary and writes the JSON file.
  /// Events stay readable (trace::summary()) until the next enable().
  void finish() {
    if (!active() || finished_) return;
    finished_ = true;
    trace::disable();
    section("trace: per-span summary");
    trace::write_summary(std::cout);
    if (trace::write_chrome_trace(path_)) {
      std::cout << "chrome-trace written to " << path_
                << " (load in chrome://tracing or ui.perfetto.dev)\n";
    }
  }

 private:
  std::string path_;
  bool finished_ = false;
};

/// Writes a machine-readable run summary as BENCH_<name>.json — a flat
/// {"name": ..., "metrics": {key: number}} object for scripted comparison
/// across runs. Keys are emitted in the order given.
inline bool write_bench_json(const std::string& name,
                             const std::vector<std::pair<std::string, double>>& metrics) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream os(path);
  if (!os) {
    util::warn("write_bench_json: cannot open {}", path);
    return false;
  }
  os << "{\n  \"name\": \"" << name << "\",\n  \"metrics\": {";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", metrics[i].second);
    os << (i ? "," : "") << "\n    \"" << metrics[i].first << "\": " << buf;
  }
  os << "\n  }\n}\n";
  std::cout << "bench summary written to " << path << "\n";
  return true;
}

}  // namespace vcgt::bench
