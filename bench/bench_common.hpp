#pragma once
// Shared helpers for the table/figure reproduction benches. Every bench
// prints (1) measured numbers from real mini-scale runs of this repository's
// system and (2) the calibrated scaling model evaluated at the paper's node
// counts, next to the paper's published values where the paper gives them.
#include <iostream>
#include <string>

#include "src/util/cli.hpp"
#include "src/util/fmt.hpp"
#include "src/util/table.hpp"

namespace vcgt::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n================================================================\n"
            << title << "\n(reproduces " << paper_ref << ")\n"
            << "================================================================\n";
}

inline void section(const std::string& name) {
  std::cout << "\n--- " << name << " ---\n";
}

/// "x.xx (paper y.yy)" cell.
inline std::string vs_paper(double value, double paper, int precision = 2) {
  return util::Table::num(value, precision) + " (paper " +
         util::Table::num(paper, precision) + ")";
}

}  // namespace vcgt::bench
