// Ablation: sliding-plane interpolation order. Transfers an analytic field
// across a rotated interface with the first-order donor-cell scheme and the
// second-order bilinear scheme and measures the L2 transfer error — the
// design choice behind the paper's "interpolated, after appropriate
// rotation" step (the paper does not specify its interpolation order; this
// quantifies the trade).
#include <cmath>
#include <numbers>

#include "bench/bench_common.hpp"
#include "src/jm76/interp.hpp"
#include "src/rig/annulus.hpp"
#include "src/rig/interface.hpp"

using namespace vcgt;

namespace {

double transfer_error(const rig::InterfaceSide& donor, const rig::InterfaceSide& target,
                      jm76::InterpKind kind, double rotation) {
  // Smooth analytic field in (r, theta), sampled at nominal donor lattice
  // positions (what a converged donor-side solution represents).
  const double dr = (donor.r_max - donor.r_min) / donor.nr;
  auto field = [&](double r, double th) {
    return std::sin(3.0 * th) * (r - donor.r_min) / (donor.r_max - donor.r_min) +
           0.5 * std::cos(th);
  };
  std::vector<double> values(static_cast<std::size_t>(donor.size()));
  for (op2::index_t i = 0; i < donor.size(); ++i) {
    const int j = static_cast<int>(i % donor.nr);
    const int k = static_cast<int>(i / donor.nr);
    const double r = donor.r_min + (j + 0.5) * dr;
    const double th = (k + 0.5) * 2.0 * std::numbers::pi / donor.ntheta;
    values[static_cast<std::size_t>(i)] = field(r, th);
  }

  const jm76::Interpolator interp(donor, jm76::SearchKind::Adt, kind);
  double err2 = 0.0;
  const double tdr = (target.r_max - target.r_min) / target.nr;
  for (op2::index_t i = 0; i < target.size(); ++i) {
    const int j = static_cast<int>(i % target.nr);
    const int k = static_cast<int>(i / target.nr);
    const double r = target.r_min + (j + 0.5) * tdr;
    const double th = (k + 0.5) * 2.0 * std::numbers::pi / target.ntheta;
    const auto s = interp.stencil(r, th, rotation);
    double got = 0.0;
    for (int n = 0; n < s.count; ++n) {
      got += s.weight[static_cast<std::size_t>(n)] *
             values[static_cast<std::size_t>(s.face[static_cast<std::size_t>(n)])];
    }
    const double want = field(r, th - rotation);
    err2 += (got - want) * (got - want);
  }
  return std::sqrt(err2 / target.size());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  (void)argc;
  (void)argv;
  bench::header("Ablation: sliding-plane interpolation order (donor-cell vs bilinear)",
                "paper SS II-C interpolation step");

  rig::RowSpec row;
  row.x_min = 0;
  row.x_max = 0.08;
  row.r_hub = 0.28;
  row.r_casing = 0.40;

  util::Table t({"donor lattice", "rotation", "donor-cell L2 err", "bilinear L2 err",
                 "improvement"});
  for (const int scale : {1, 2, 4}) {
    const rig::MeshResolution res{2, 4 * scale, 24 * scale};
    const auto mesh = rig::generate_row_mesh(row, res);
    const auto donor = rig::extract_interface(mesh, row, rig::BoundaryGroup::Outlet);
    const auto target = rig::extract_interface(mesh, row, rig::BoundaryGroup::Inlet);
    for (const double rot : {0.13, 0.41}) {
      const double e1 = transfer_error(donor, target, jm76::InterpKind::DonorCell, rot);
      const double e2 = transfer_error(donor, target, jm76::InterpKind::Bilinear, rot);
      t.add_row({util::fmt("{}x{}", res.nr, res.ntheta), util::Table::num(rot, 2),
                 util::Table::num(e1, 5), util::Table::num(e2, 5),
                 util::Table::num(e1 / e2, 1)});
    }
  }
  t.print_text(std::cout);
  util::write_csv(t, "ablation_interp.csv");
  std::cout << "\nExpected: donor-cell error falls ~1st order with resolution; bilinear\n"
               "falls ~2nd order, widening the improvement factor as the lattice\n"
               "refines (and both are exact at zero rotation on matched lattices).\n";
  return 0;
}
