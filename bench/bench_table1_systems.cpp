// Table I reproduction: the systems specification table. The machine models
// in vcgt::perf encode the published ARCHER2/Cirrus parameters (plus the
// production baselines §IV-B5 references); this bench prints them alongside
// the paper's numbers so any drift in the presets is visible.
#include "bench/bench_common.hpp"
#include "src/perf/costmodel.hpp"

using namespace vcgt;

int main() {
  bench::header("Table I: systems specifications", "paper Table I, SS IV-A3/4");

  util::Table t({"system", "node", "cores/node", "GPUs/node", "node power W",
                 "interconnect (model)", "GPU mem GB"});
  struct Row {
    perf::MachineSpec m;
    const char* node_desc;
    const char* paper_net;
  };
  const Row rows[] = {
      {perf::archer2(), "2x AMD EPYC 7742 (HPE Cray EX)", "Slingshot 2x100 Gb/s"},
      {perf::cirrus(), "4x NVIDIA V100 16GB + 2x Xeon 6248 (SGI/HPE 8600)",
       "FDR-class fat tree"},
      {perf::haswell_production(), "Intel Haswell production cluster", "(baseline)"},
      {perf::archer1(), "2x 12-core E5-2697v2 (Cray XC30)", "Aries"},
  };
  for (const auto& r : rows) {
    t.add_row({r.m.name, r.node_desc, std::to_string(r.m.cores_per_node),
               std::to_string(r.m.gpus_per_node), util::Table::num(r.m.node_power_w, 0),
               util::fmt("{} us + {} GB/s ({})", r.m.net_latency_s * 1e6,
                         r.m.net_bandwidth_Bps / 1e9, r.paper_net),
               r.m.gpus_per_node ? util::Table::num(r.m.gpu_mem_gb, 0) : std::string("-")});
  }
  t.print_text(std::cout);
  util::write_csv(t, "table1_systems.csv");

  bench::section("paper anchors encoded in the presets");
  std::cout << "ARCHER2 node power 660 W (slurm-measured, SS IV-A4)        -> "
            << perf::archer2().node_power_w << " W\n";
  std::cout << "Cirrus node power ~900 W (4x182 W GPU + ~172 W host)       -> "
            << perf::cirrus().node_power_w << " W\n";
  std::cout << "power ratio Cirrus/ARCHER2 = 1.36 (node-equivalence basis) -> "
            << util::Table::num(perf::cirrus().node_power_w / perf::archer2().node_power_w, 2)
            << "\n";
  std::cout << "ARCHER2 cores/node = 128; full machine 5,860 nodes (750,080 cores);\n"
               "benchmarks scale to 512 nodes / 65,536 cores (paper SS IV-A3).\n";
  return 0;
}
