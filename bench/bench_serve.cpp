// bench_serve — vcgt::serve session throughput and latency (DESIGN.md §12).
//
// Three parts, each enforced by exit status where the ISSUE demands it:
//
//  1. Cold vs warm session setup on one persistent world. The first job of
//     a spec builds mesh + partition + plans; the second reuses the parked
//     rig through reinitialize(). ASSERTS warm setup >= 5x faster than
//     cold (the tentpole's acceptance floor). Also reports the
//     cold-on-a-fresh-world setup, which pays rig construction but pulls
//     every artifact from the plan cache.
//
//  2. An open-loop client storm: seeded Poisson arrivals against a bounded
//     admission queue, reporting sessions/s and p50/p99 completion latency
//     into BENCH_serve.json.
//
//  3. A chaos storm under a seeded delay/drop/kill fault plan. ASSERTS
//     zero hung jobs (every accepted job resolves — the stall watchdog
//     converts deadlocks into structured failures), that a scheduled
//     KillRank job reports a structured per-rank error, and that the plan
//     cache still serves hits afterwards (a killed job never exports).
//
// --quick shrinks the storm for CI gates.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/serve/server.hpp"
#include "src/serve/session_spec.hpp"
#include "src/serve/storm.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace vcgt;

namespace {

serve::SessionSpec base_spec() {
  serve::SessionSpec spec;
  spec.nrows = 2;
  spec.tier = "tiny";
  spec.hs_ranks = {1, 1};
  spec.cus_per_interface = 1;
  spec.nsteps = 2;
  spec.flow.inner_iters = 4;
  return spec;
}

int failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::cout << "  [ok] " << what << "\n";
  } else {
    std::cout << "  [FAIL] " << what << "\n";
    ++failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.has("quick");
  bench::header("vcgt::serve — session service throughput & latency",
                "DESIGN.md §12 (serving front end; no paper counterpart)");

  std::vector<std::pair<std::string, double>> metrics;

  // --- part 1: cold vs warm setup ----------------------------------------
  bench::section("cold vs warm session setup (one persistent world)");
  double cold_setup = 0.0;
  double warm_setup = 0.0;
  {
    serve::Server server;
    // At "tiny" scale fixed overheads swamp the comparison; "medium" makes
    // mesh gen + RCB + plan construction the dominant cold cost, which is
    // what the warm path actually skips.
    auto spec = base_spec();
    spec.tier = "medium";
    const auto t1 = server.submit(spec);
    const auto oc1 = server.wait(t1.job_id);
    const auto t2 = server.submit(spec);
    const auto oc2 = server.wait(t2.job_id);
    check(oc1.ok && oc2.ok, "both jobs completed");
    check(!oc1.warm && oc2.warm, "first cold, second warm");
    cold_setup = oc1.setup_seconds;
    warm_setup = oc2.setup_seconds;
    const double speedup = cold_setup / std::max(warm_setup, 1e-12);
    util::Table t({"path", "setup [ms]", "speedup"});
    t.add_row({"cold (mesh+partition+plans)", util::Table::num(cold_setup * 1e3, 3), "1.00"});
    t.add_row({"warm (reinitialize)", util::Table::num(warm_setup * 1e3, 3),
               util::Table::num(speedup, 1)});
    t.print_text(std::cout);
    check(speedup >= 5.0, "warm setup >= 5x faster than cold (acceptance floor)");
    metrics.emplace_back("cold_setup_seconds", cold_setup);
    metrics.emplace_back("warm_setup_seconds", warm_setup);
    metrics.emplace_back("warm_speedup", speedup);

    // Same spec on a different world (distinct fault hash forces a second
    // pool): rig construction runs again, but meshes/partitions/plans all
    // come from the shared plan cache.
    auto chaos_free = spec;
    chaos_free.fault.seed = 99;
    chaos_free.fault.p_delay = 1e-9;  // enabled() but effectively silent
    const auto t3 = server.submit(chaos_free);
    const auto oc3 = server.wait(t3.job_id);
    check(oc3.ok && !oc3.warm, "fresh-world job completed cold");
    check(oc3.partition_cached && oc3.plans_cached,
          "fresh-world setup pulled partition and plans from the cache");
    std::cout << util::fmt("  cold-on-fresh-world (cache-fed): {} ms\n",
                           util::Table::num(oc3.setup_seconds * 1e3, 3));
    metrics.emplace_back("cold_cached_setup_seconds", oc3.setup_seconds);
  }

  // --- part 2: open-loop client storm ------------------------------------
  bench::section("open-loop client storm (bounded admission queue)");
  {
    serve::ServerOptions opts;
    opts.queue_capacity = 4;
    serve::Server server(opts);
    serve::StormConfig storm;
    storm.jobs = quick ? 8 : 32;
    storm.rate_hz = quick ? 20.0 : 30.0;
    storm.seed = 1;
    storm.specs.push_back(base_spec());
    const auto res = serve::run_storm(server, storm);
    util::Table t({"metric", "value"});
    t.add_row({"submitted", std::to_string(res.submitted)});
    t.add_row({"accepted", std::to_string(res.accepted)});
    t.add_row({"rejected (backpressure)", std::to_string(res.rejected)});
    t.add_row({"completed", std::to_string(res.completed)});
    t.add_row({"sessions/s", util::Table::num(res.sessions_per_second, 2)});
    t.add_row({"p50 latency [ms]", util::Table::num(res.p50_ms, 2)});
    t.add_row({"p99 latency [ms]", util::Table::num(res.p99_ms, 2)});
    t.print_text(std::cout);
    check(res.hung == 0, "no hung jobs");
    check(res.completed > 0, "storm completed sessions");
    metrics.emplace_back("storm_jobs", res.submitted);
    metrics.emplace_back("storm_accepted", res.accepted);
    metrics.emplace_back("storm_rejected", res.rejected);
    metrics.emplace_back("sessions_per_second", res.sessions_per_second);
    metrics.emplace_back("p50_latency_ms", res.p50_ms);
    metrics.emplace_back("p99_latency_ms", res.p99_ms);
  }

  // --- part 3: chaos storm ------------------------------------------------
  bench::section("chaos storm (seeded delay/drop/kill fault plans)");
  {
    serve::ServerOptions opts;
    opts.queue_capacity = 4;
    opts.stall_timeout = 5.0;
    serve::Server server(opts);

    auto flaky = base_spec();
    flaky.fault.seed = 1234;
    flaky.fault.p_delay = 0.02;
    flaky.fault.p_duplicate = 0.01;
    flaky.fault.p_reorder = 0.01;
    auto killer = base_spec();
    killer.fault.seed = 77;
    // Op 5 lands during world construction on every machine; with a hot
    // plan cache, rank 1 may run fewer than a few dozen comm ops total, so
    // a late op index would silently never fire.
    killer.fault.schedule.push_back({1, 5, minimpi::FaultKind::KillRank});

    serve::StormConfig storm;
    storm.jobs = quick ? 6 : 18;
    storm.rate_hz = quick ? 10.0 : 15.0;
    storm.seed = 2;
    storm.specs = {flaky, killer, base_spec()};
    const auto cache_before = server.plan_cache().stats();
    const auto res = serve::run_storm(server, storm);
    util::Table t({"metric", "value"});
    t.add_row({"accepted", std::to_string(res.accepted)});
    t.add_row({"completed", std::to_string(res.completed)});
    t.add_row({"failed (structured)", std::to_string(res.failed)});
    t.add_row({"worlds rebuilt", std::to_string(res.rebuilt)});
    t.add_row({"hung", std::to_string(res.hung)});
    t.print_text(std::cout);
    for (const auto& e : res.errors) std::cout << "  error: " << e << "\n";
    check(res.hung == 0, "zero hung jobs under chaos (acceptance)");
    check(res.failed > 0, "scheduled KillRank produced structured failures");
    check(res.completed > 0, "clean specs completed despite chaos neighbours");
    const auto cache_after = server.plan_cache().stats();
    check(cache_after.hits > cache_before.hits,
          "plan cache kept serving hits after killed jobs (not poisoned)");
    metrics.emplace_back("chaos_jobs", res.accepted);
    metrics.emplace_back("chaos_failed", res.failed);
    metrics.emplace_back("chaos_hung", res.hung);
  }

  metrics.emplace_back("failures", failures);
  bench::write_bench_json("serve", metrics);
  if (failures != 0) {
    std::cout << "\n" << failures << " acceptance check(s) FAILED\n";
    return 1;
  }
  std::cout << "\nall acceptance checks passed\n";
  return 0;
}
