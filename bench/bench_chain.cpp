// bench_chain — measures what loop-chain fusion (DESIGN.md §10) buys on the
// hydra RK stage pipeline, the tentpole workload it was built for:
//
//  1. Serial fusion speedup: chained vs unchained advance_inner on a mesh
//     whose per-cell state far exceeds the last-level cache, sweeping the
//     cross-loop tile width. The chained path revisits each tile's cells
//     across every member loop while they are still cache-resident instead
//     of streaming the whole field once per loop.
//  2. Distributed halo accounting (--ranks, default 2): fused chain epochs
//     pack every dirty dat needed by a segment into one message per
//     neighbor, vs one message per dat per loop on the unchained path.
//     Reports message and epoch counts plus bit-identity of the resulting
//     flow field. Both paths run with latency hiding off so they fold in
//     the same flat ascending order (bit-exact comparison; see
//     src/op2/chain.cpp's execution-order contract).
//  3. Latency-dominated limit: same comparison on a small per-rank mesh
//     with an emulated per-message interconnect latency (minimpi fault
//     Delay, --latency_us, default 500). Fewer fused epochs -> fewer
//     latency payments; this is the headline chain_speedup.
//  4. SIMT-emulation divergence profile: one chained run under the
//     warp-width lane executor, reporting warp occupancy and branch
//     divergence counters for the RK pipeline's kernels.
//
// Writes BENCH_chain.json (chain_speedup, halo message counts, divergence
// stats). Options: --scale=N (mesh scale, default 10), --iters=N (timed
// inner iterations, default 8), --quick (scale 4, 3 iters, for CI smoke).
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/hydra/solver.hpp"
#include "src/minimpi/fault.hpp"
#include "src/minimpi/minimpi.hpp"
#include "src/op2/op2.hpp"
#include "src/rig/annulus.hpp"
#include "src/rig/rowspec.hpp"
#include "src/util/timer.hpp"

using namespace vcgt;

namespace {

rig::RowSpec bench_row() {
  rig::RowSpec row;
  row.name = "B";
  row.rotor = false;
  row.x_min = 0.0;
  row.x_max = 0.1;
  row.r_hub = 0.3;
  row.r_casing = 0.5;
  return row;
}

hydra::FlowConfig bench_flow(bool chained) {
  hydra::FlowConfig cfg;
  // Second-order + viscous turns on the gradient/limiter loops, so the RK
  // stage chain carries the full ~17-member pipeline the solver fuses.
  cfg.second_order = true;
  cfg.viscous = true;
  cfg.chain_rk = chained;
  // Applied to chained AND unchained runs (same mesh numbering both sides,
  // so the comparison stays bit-identical): face-by-cell ordering is what
  // lets cross-loop tiles keep a face member's cells cache-hot.
  cfg.sort_faces = true;
  return cfg;
}

struct RkRun {
  double seconds = 0.0;
  double halo_seconds = 0.0;
  std::uint64_t halo_msgs = 0;
  std::uint64_t halo_bytes = 0;
  std::uint64_t chain_epochs = 0;
  std::uint64_t chain_msgs = 0;
  std::vector<double> q;  ///< gathered flow field (bit-identity checks)
};

/// One fresh solver on `comm` (or serial), `iters` timed inner iterations
/// after a one-iteration warmup that builds and caches all plans.
///
/// Distributed callers pass latency_hiding=false: the solo executor's
/// core/tail overlap folds indirect increments in core-then-tail order
/// instead of flat ascending order (see the execution-order contract in
/// src/op2/chain.cpp), so disabling it keeps the chained-vs-unchained
/// comparison bit-exact at every rank count — and on this harness's
/// threads-as-ranks transport the "overlap" is only time-sharing anyway.
RkRun run_rk(const rig::AnnulusMesh& mesh, bool chained, int tile, int iters,
             minimpi::Comm comm = {}, bool latency_hiding = true) {
  op2::Config oc;
  oc.chain_tile = tile;
  oc.latency_hiding = latency_hiding;
  op2::Context ctx(comm, oc);
  const auto row = bench_row();
  hydra::RowSolver solver(ctx, mesh, row, /*omega=*/0.0, bench_flow(chained));
  ctx.partition(op2::Partitioner::Rcb, solver.cell_center());
  solver.initialize();
  solver.advance_inner(1);  // warmup: plan build + first-touch
  ctx.reset_stats();
  util::Timer t;
  solver.advance_inner(iters);
  RkRun out;
  out.seconds = t.elapsed();
  const auto total = ctx.total_stats();
  out.halo_msgs = total.halo_msgs;
  out.halo_seconds = total.halo_seconds;
  out.halo_bytes = total.halo_bytes;
  if (const auto* chain = ctx.find_chain(row.name + ":rk_stage")) {
    out.chain_epochs = chain->halo_epochs;
    out.chain_msgs = chain->halo_msgs;
  }
  out.q = ctx.fetch_global(solver.q());
  return out;
}

bool bit_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.has("quick");
  const int scale = static_cast<int>(cli.get_int("scale", quick ? 4 : 10));
  const int iters = static_cast<int>(cli.get_int("iters", quick ? 3 : 8));

  bench::header("Loop-chain fusion on the hydra RK pipeline",
                "DESIGN.md §10; paper §III loop-level execution plans");

  const auto row = bench_row();
  const rig::AnnulusMesh mesh =
      rig::generate_row_mesh(row, {4 * scale, 3 * scale, 12 * scale});
  std::cout << "mesh: " << mesh.ncell << " cells, " << mesh.nface << " faces ("
            << iters << " timed inner iterations)\n";

  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("ncell", static_cast<double>(mesh.ncell));
  metrics.emplace_back("iters", static_cast<double>(iters));

  // --- 1. serial fusion speedup, sweeping the cross-loop tile width -------
  bench::section("serial RK: chained vs unchained (tile sweep)");
  const RkRun plain = run_rk(mesh, /*chained=*/false, /*tile=*/4096, iters);
  std::cout << util::fmt("  unchained: {} s\n", util::Table::num(plain.seconds, 3));

  util::Table sweep({"chain_tile", "seconds", "speedup", "bit-identical"});
  double best_s = 0.0;
  int best_tile = 0;
  RkRun best;
  for (const int tile : {512, 1024, 2048, 4096, 8192}) {
    const RkRun r = run_rk(mesh, /*chained=*/true, tile, iters);
    const double sp = plain.seconds / r.seconds;
    sweep.add_row({std::to_string(tile), util::Table::num(r.seconds, 3),
               util::Table::num(sp, 2), bit_equal(r.q, plain.q) ? "yes" : "NO"});
    if (sp > best_s) {
      best_s = sp;
      best_tile = tile;
      best = r;
    }
  }
  sweep.print_text(std::cout);
  std::cout << util::fmt("  best: tile {} -> {}x\n", best_tile,
                         util::Table::num(best_s, 2));
  metrics.emplace_back("rk_seconds_unchained", plain.seconds);
  metrics.emplace_back("rk_seconds_chained", plain.seconds / best_s);
  metrics.emplace_back("chain_speedup_serial", best_s);
  metrics.emplace_back("chain_tile_best", static_cast<double>(best_tile));
  metrics.emplace_back("serial_bit_identical", bit_equal(best.q, plain.q) ? 1.0 : 0.0);

  // --- 2. distributed RK: fused halo epochs --------------------------------
  // The headline chain win. Every unchained par_loop with stale indirect
  // reads opens its own halo epoch — one message per dirty dat per neighbor
  // plus a rendezvous with every neighbor rank — so an RK stage pays tens of
  // exchange latencies. The chained segments prefetch everything a segment
  // needs in one grouped epoch up front.
  const int nranks = static_cast<int>(cli.get_int("ranks", 2));
  const int dscale = static_cast<int>(cli.get_int("dscale", std::max(2, scale / 2)));
  bench::section(util::fmt("distributed ({} ranks): RK time and fused halo epochs", nranks));
  const rig::AnnulusMesh dmesh =
      rig::generate_row_mesh(row, {4 * dscale, 3 * dscale, 12 * dscale});
  const int diters = iters;
  RkRun dplain, dchain;
  minimpi::World::run(nranks, [&](minimpi::Comm& comm) {
    const RkRun p = run_rk(dmesh, /*chained=*/false, best_tile, diters, comm,
                           /*latency_hiding=*/false);
    const RkRun c = run_rk(dmesh, /*chained=*/true, best_tile, diters, comm,
                           /*latency_hiding=*/false);
    if (comm.rank() == 0) {
      dplain = p;
      dchain = c;
    }
  });
  const double dist_speedup = dplain.seconds / dchain.seconds;
  util::Table halo({"path", "seconds", "halo s", "halo msgs", "halo MB", "fused epochs"});
  halo.add_row({"unchained", util::Table::num(dplain.seconds, 3),
                util::Table::num(dplain.halo_seconds, 3),
                std::to_string(dplain.halo_msgs),
                util::Table::num(static_cast<double>(dplain.halo_bytes) / 1e6, 2), "-"});
  halo.add_row({"chained", util::Table::num(dchain.seconds, 3),
                util::Table::num(dchain.halo_seconds, 3),
                std::to_string(dchain.halo_msgs),
                util::Table::num(static_cast<double>(dchain.halo_bytes) / 1e6, 2),
                std::to_string(dchain.chain_epochs)});
  halo.print_text(std::cout);
  std::cout << util::fmt("  chained speedup {}x; rank-0 field bit-identical: {}\n",
                         util::Table::num(dist_speedup, 2),
                         bit_equal(dchain.q, dplain.q) ? "yes" : "NO");
  metrics.emplace_back("dist_seconds_unchained", dplain.seconds);
  metrics.emplace_back("dist_seconds_chained", dchain.seconds);
  metrics.emplace_back("chain_speedup_dist", dist_speedup);
  metrics.emplace_back("halo_msgs_unchained", static_cast<double>(dplain.halo_msgs));
  metrics.emplace_back("halo_msgs_chained", static_cast<double>(dchain.halo_msgs));
  metrics.emplace_back("halo_epochs_chained", static_cast<double>(dchain.chain_epochs));
  metrics.emplace_back("dist_bit_identical", bit_equal(dchain.q, dplain.q) ? 1.0 : 0.0);

  // --- 3. emulated interconnect: the latency-dominated limit ---------------
  // The threads-as-ranks transport above delivers messages at memcpy speed,
  // so halo traffic barely shows up in wall-clock. Real interconnects charge
  // ~fixed latency per message, and strong scaling drives per-rank meshes
  // small enough that those latencies dominate — precisely the regime the
  // paper's fused/grouped exchanges target. Emulate it with the minimpi
  // fault plan's Delay (wall-clock sleep per send op, never touches
  // content): every halo message pays a fixed latency, so the chained
  // path's fewer fused epochs convert directly into wall-clock speedup.
  // This is the headline chain_speedup.
  // 500 us per message models a commodity-ethernet-class rendezvous (TCP
  // stack + congestion), the interconnect the paper's clusters explicitly
  // avoid; see EXPERIMENTS.md for the sweep across latencies.
  const double net_lat = cli.get_double("latency_us", 500.0) * 1e-6;
  const int lscale = static_cast<int>(cli.get_int("lscale", 2));
  bench::section(util::fmt("latency-dominated limit ({} ranks, {} us/message)", nranks,
                           util::Table::num(net_lat * 1e6, 0)));
  const rig::AnnulusMesh lmesh =
      rig::generate_row_mesh(row, {4 * lscale, 3 * lscale, 12 * lscale});
  minimpi::WorldOptions lopts;
  {
    minimpi::FaultConfig fc;
    fc.seed = 1;
    fc.p_delay = 1.0;  // every send pays the emulated wire latency
    fc.delay_seconds = net_lat;
    lopts.fault = std::make_shared<minimpi::FaultPlan>(fc);
  }
  RkRun lplain, lchain;
  minimpi::World::run(
      nranks,
      [&](minimpi::Comm& comm) {
        const RkRun p = run_rk(lmesh, /*chained=*/false, best_tile, diters, comm,
                               /*latency_hiding=*/false);
        const RkRun c = run_rk(lmesh, /*chained=*/true, best_tile, diters, comm,
                               /*latency_hiding=*/false);
        if (comm.rank() == 0) {
          lplain = p;
          lchain = c;
        }
      },
      lopts);
  const double lat_speedup = lplain.seconds / lchain.seconds;
  util::Table lat({"path", "seconds", "halo s", "halo msgs", "fused epochs"});
  lat.add_row({"unchained", util::Table::num(lplain.seconds, 3),
               util::Table::num(lplain.halo_seconds, 3),
               std::to_string(lplain.halo_msgs), "-"});
  lat.add_row({"chained", util::Table::num(lchain.seconds, 3),
               util::Table::num(lchain.halo_seconds, 3),
               std::to_string(lchain.halo_msgs), std::to_string(lchain.chain_epochs)});
  lat.print_text(std::cout);
  std::cout << util::fmt("  chained speedup {}x; rank-0 field bit-identical: {}\n",
                         util::Table::num(lat_speedup, 2),
                         bit_equal(lchain.q, lplain.q) ? "yes" : "NO");
  metrics.emplace_back("lat_seconds_unchained", lplain.seconds);
  metrics.emplace_back("lat_seconds_chained", lchain.seconds);
  metrics.emplace_back("chain_speedup", lat_speedup);
  metrics.emplace_back("lat_halo_msgs_unchained", static_cast<double>(lplain.halo_msgs));
  metrics.emplace_back("lat_halo_msgs_chained", static_cast<double>(lchain.halo_msgs));
  metrics.emplace_back("lat_bit_identical", bit_equal(lchain.q, lplain.q) ? 1.0 : 0.0);

  // --- 4. SIMT-emulation divergence profile -------------------------------
  bench::section("SIMT emulation: warp occupancy and divergence");
  {
    op2::Config oc;
    oc.simt = true;
    oc.chain_tile = best_tile;
    op2::Context ctx(oc);
    const int sscale = std::max(2, scale / 2);
    const auto smesh = rig::generate_row_mesh(row, {4 * sscale, 3 * sscale, 12 * sscale});
    hydra::RowSolver solver(ctx, smesh, row, 0.0, bench_flow(/*chained=*/true));
    ctx.partition(op2::Partitioner::Rcb, solver.cell_center());
    solver.initialize();
    op2::simt::reset();
    solver.advance_inner(2);
    const auto s = op2::simt::stats();
    const double dfrac =
        s.branch_slots ? static_cast<double>(s.divergent_branches) /
                             static_cast<double>(s.branch_slots)
                       : 0.0;
    std::cout << util::fmt(
        "  warps {} (full {}, partial {}), lanes {}\n  branch slots {}: {} divergent, "
        "{} convergent ({}% divergence)\n",
        s.warps, s.full_warps, s.partial_warps, s.lanes, s.branch_slots,
        s.divergent_branches, s.convergent_branches, util::Table::num(100.0 * dfrac, 1));
    metrics.emplace_back("simt_warps", static_cast<double>(s.warps));
    metrics.emplace_back("simt_partial_warps", static_cast<double>(s.partial_warps));
    metrics.emplace_back("simt_divergent_branches", static_cast<double>(s.divergent_branches));
    metrics.emplace_back("simt_convergent_branches", static_cast<double>(s.convergent_branches));
    metrics.emplace_back("simt_divergence_frac", dfrac);
  }

  bench::write_bench_json("chain", metrics);
  return 0;
}
