// Table II reproduction: brute-force vs binary-tree (ADT) donor search in
// the JM76 coupler as a function of the coupler-unit count.
//
// Layer 1 (measured): the real DonorLocator over a sliding-plane interface
// at a host-feasible size — per-CU search time and candidate counts for the
// paper's 10..90 CU grid, both search kinds, including the rotation sweep a
// full revolution performs.
// Layer 2 (model): the calibrated ScalingModel evaluated at the paper's
// configuration (1-10_430M on ARCHER2, 27 nodes), printed next to the
// published Table II values.
#include <numbers>

#include "bench/bench_common.hpp"
#include "src/jm76/search.hpp"
#include "src/perf/costmodel.hpp"
#include "src/rig/annulus.hpp"
#include "src/rig/interface.hpp"
#include "src/util/timer.hpp"

using namespace vcgt;
using jm76::DonorLocator;
using jm76::SearchKind;

namespace {

struct MeasuredRow {
  int cus;
  double bf_seconds;
  double adt_seconds;
  double bins_seconds;
  std::uint64_t bf_candidates;
  std::uint64_t adt_candidates;
};

MeasuredRow measure(const rig::InterfaceSide& donor, const rig::InterfaceSide& target,
                    int cus, int steps, double omega_dt) {
  MeasuredRow row{cus, 0, 0, 0, 0, 0};
  const auto n_targets = static_cast<std::size_t>(target.size());
  const std::size_t per_cu = (n_targets + static_cast<std::size_t>(cus) - 1) /
                             static_cast<std::size_t>(cus);
  // Time the busiest CU (the paper's wait is set by the slowest unit).
  // Bins (uniform hashing) is our extra data point beyond the paper's
  // BF-vs-ADT pair.
  for (const auto kind : {SearchKind::BruteForce, SearchKind::Adt, SearchKind::Bins}) {
    const DonorLocator loc(donor, kind);
    util::Timer t;
    for (int s = 0; s < steps; ++s) {
      const double rot = omega_dt * (s + 1);
      for (std::size_t i = 0; i < per_cu && i < n_targets; ++i) {
        const double r = target.rtheta[i * 2];
        const double th = target.rtheta[i * 2 + 1];
        if (loc.locate(r, th, rot) < 0) std::abort();
      }
    }
    const double secs = t.elapsed();
    if (kind == SearchKind::BruteForce) {
      row.bf_seconds = secs;
      row.bf_candidates = loc.candidates_tested();
    } else if (kind == SearchKind::Adt) {
      row.adt_seconds = secs;
      row.adt_candidates = loc.candidates_tested();
    } else {
      row.bins_seconds = secs;
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int steps = static_cast<int>(cli.get_int("steps", 20));

  bench::header("Table II: Brute Force vs Binary Tree (ADT) coupler search",
                "paper Table II, SS III-B / IV-A5");

  // Measured layer: one Rig250 interface at a dense host-feasible
  // resolution (the paper's interfaces hold ~1e5-1e6 faces; shape, not
  // absolute seconds, is the reproduction target).
  const auto rig = rig::rig250_spec(2);
  rig::MeshResolution res{4, 24, 384};  // 9216 faces per interface side
  const auto mesh_u = rig::generate_row_mesh(rig.rows[0], res);
  const auto mesh_d = rig::generate_row_mesh(rig.rows[1], res);
  const auto donor = rig::extract_interface(mesh_u, rig.rows[0], rig::BoundaryGroup::Outlet);
  const auto target = rig::extract_interface(mesh_d, rig.rows[1], rig::BoundaryGroup::Inlet);
  const double omega_dt = rig.omega() * 2.75e-6;

  bench::section(util::fmt("measured: per-CU search seconds for {} steps, {} donor faces",
                           steps, donor.size()));
  util::Table meas({"CUs", "BF s", "ADT s", "bins s", "BF/ADT", "BF cand/locate",
                    "ADT cand/locate"});
  for (const int cus : {10, 20, 30, 40, 50, 60, 70, 80, 90}) {
    const auto row = measure(donor, target, cus, steps, omega_dt);
    const double locates =
        static_cast<double>(steps) *
        static_cast<double>((target.size() + cus - 1) / cus);
    meas.add_row({std::to_string(row.cus), util::Table::num(row.bf_seconds, 3),
                  util::Table::num(row.adt_seconds, 4),
                  util::Table::num(row.bins_seconds, 4),
                  util::Table::num(row.bf_seconds / row.adt_seconds, 1),
                  util::Table::num(static_cast<double>(row.bf_candidates) / locates, 0),
                  util::Table::num(static_cast<double>(row.adt_candidates) / locates, 1)});
  }
  meas.print_text(std::cout);
  util::write_csv(meas, "table2_measured.csv");

  // Model layer at the paper's configuration.
  bench::section("model: 1-10_430M on 27 ARCHER2 nodes, un-overlapped coupler seconds/step");
  perf::ScalingModel model(perf::archer2(), perf::w430m());
  util::Table proj({"CUs", "BF s/step", "ADT s/step", "BF/ADT"});
  for (const int cus : {10, 20, 30, 40, 50, 60, 70, 80, 90}) {
    perf::ModelOptions bf, adt;
    bf.search = SearchKind::BruteForce;
    adt.search = SearchKind::Adt;
    bf.cus_per_interface = adt.cus_per_interface = cus;
    bf.pipelined = adt.pipelined = false;  // Table II exposes the raw search
    bf.grouped_halos = adt.grouped_halos = false;
    const double tb = model.step_cost(27, bf).coupler_wait;
    const double ta = model.step_cost(27, adt).coupler_wait;
    proj.add_row({std::to_string(cus), util::Table::num(tb, 2), util::Table::num(ta, 2),
                  util::Table::num(tb / ta, 1)});
  }
  proj.print_text(std::cout);
  util::write_csv(proj, "table2_model.csv");

  std::cout << "\nPaper shape check: BF cost falls steeply from 10 to 40-50 CUs and the\n"
               "binary tree search removes the bulk of it (paper: 35% total coupler\n"
               "improvement at 30-40 CUs, enabling fewer CUs and more HS ranks).\n";
  return 0;
}
