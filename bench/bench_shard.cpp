// bench_shard — sharded-setup memory and timing (DESIGN.md §13).
//
// Three parts, the first enforced by exit status (the ISSUE's CI gate):
//
//  1. Per-rank mesh-synthesis memory: bytes materialized by
//     rig::generate_row_shard (shard arrays + gid lists, max over ranks)
//     vs the monolithic rig::generate_row_mesh every rank pays today.
//     ASSERTS the 4-rank shard is <= 0.6x the monolithic footprint — the
//     whole point of the sharded path is that per-rank setup memory falls
//     with the rank count instead of staying flat.
//
//  2. Coupled setup + short run, monolithic vs sharded, on one world;
//     reports wall time and ASSERTS the final flow states are bit-equal
//     (the cheap end-to-end echo of the tests/test_shard.cpp matrix).
//
//  3. The fig. 9 4.58B projection: per-rank shard windows over two-level
//     node x core rank counts, 64-bit throughout. ASSERTS every modeled
//     window fits op2::index_t and the sweep reaches >= 1024 ranks.
//
// --quick shrinks part 1's resolution and part 2's step count for CI.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/jm76/coupled.hpp"
#include "src/minimpi/minimpi.hpp"
#include "src/perf/shardproj.hpp"
#include "src/rig/annulus.hpp"
#include "src/rig/shard.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

using namespace vcgt;

namespace {

int failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::cout << "  [ok] " << what << "\n";
  } else {
    std::cout << "  [FAIL] " << what << "\n";
    ++failures;
  }
}

template <class T>
std::size_t vec_bytes(const std::vector<T>& v) {
  return v.size() * sizeof(T);
}

/// Bytes materialized by one rank for a row mesh's flat arrays.
std::size_t mesh_bytes(const rig::AnnulusMesh& m) {
  return vec_bytes(m.face2cell) + vec_bytes(m.bface2cell) + vec_bytes(m.cell_center) +
         vec_bytes(m.cell_vol) + vec_bytes(m.cell_rtheta) + vec_bytes(m.face_normal) +
         vec_bytes(m.face_center) + vec_bytes(m.bface_normal) +
         vec_bytes(m.bface_center) + vec_bytes(m.bface_rtheta) +
         vec_bytes(m.bface_group);
}

/// Shard arrays plus the gid lists tying them to the global numbering.
std::size_t shard_bytes(const rig::RowShard& s) {
  std::size_t b = mesh_bytes(s.local) + vec_bytes(s.cell_gids) + vec_bytes(s.face_gids);
  for (const auto& g : s.bface_gids) b += vec_bytes(g);
  return b;
}

hydra::FlowConfig bench_flow() {
  hydra::FlowConfig cfg;
  cfg.inner_iters = 2;
  cfg.dt_phys = 5e-5;
  cfg.rotor_swirl_frac = 0.05;
  cfg.stator_swirl_frac = 0.02;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.has("quick");
  bench::header("sharded setup — per-rank memory, setup time & 4.58B projection",
                "DESIGN.md §13; paper Fig. 9, SS IV-B2 (billion-node path)");

  std::vector<std::pair<std::string, double>> metrics;

  // --- part 1: per-rank mesh-synthesis memory ------------------------------
  bench::section("per-rank mesh synthesis memory (monolithic vs sharded)");
  double ratio_r4 = 0.0;
  {
    const auto spec = rig::rig250_spec(1);
    const auto res = rig::resolution_tier(quick ? "medium" : "fine");
    const auto mono = rig::generate_row_mesh(spec.rows[0], res);
    const auto mono_b = mesh_bytes(mono);

    util::Table t({"setup", "cells (max/rank)", "bytes (max/rank)", "vs monolithic"});
    t.add_row({"monolithic", std::to_string(mono.ncell),
               std::to_string(mono_b), "1.00"});
    for (const int nranks : {2, 4}) {
      std::size_t max_b = 0;
      op2::index_t max_cells = 0;
      for (int r = 0; r < nranks; ++r) {
        const auto shard = rig::generate_row_shard(spec.rows[0], res, {r, nranks});
        max_b = std::max(max_b, shard_bytes(shard));
        max_cells = std::max(max_cells, shard.local.ncell);
      }
      const double ratio = static_cast<double>(max_b) / static_cast<double>(mono_b);
      t.add_row({util::fmt("sharded, {} ranks", nranks), std::to_string(max_cells),
                 std::to_string(max_b), util::Table::num(ratio, 3)});
      metrics.emplace_back(util::fmt("shard_bytes_r{}_max", nranks),
                           static_cast<double>(max_b));
      metrics.emplace_back(util::fmt("shard_mem_ratio_r{}", nranks), ratio);
      if (nranks == 4) ratio_r4 = ratio;
    }
    t.print_text(std::cout);
    metrics.emplace_back("mono_mesh_bytes", static_cast<double>(mono_b));
    check(ratio_r4 <= 0.6,
          "4-rank shard memory <= 0.6x monolithic (ISSUE acceptance floor)");
  }

  // --- part 2: coupled setup + run, monolithic vs sharded ------------------
  bench::section("coupled setup + run wall time (2 rows x 2 HS ranks, tiny tier)");
  {
    jm76::CoupledConfig cfg;
    cfg.rig = rig::rig250_spec(2);
    cfg.res = rig::resolution_tier("tiny");
    cfg.flow = bench_flow();
    cfg.hs_ranks = {2, 2};
    cfg.cus_per_interface = 1;
    cfg.pipelined = false;
    cfg.partitioner = op2::Partitioner::Block;
    const int nsteps = quick ? 2 : 5;

    // fetch_global is collective over the solver's row communicator, so
    // every HS rank participates; the comparison uses all ranks' copies.
    const auto run_once = [&](bool sharded, std::vector<std::vector<double>>* q) {
      auto c = cfg;
      c.sharded_setup = sharded;
      q->assign(static_cast<std::size_t>(c.layout().world_size()), {});
      util::Timer timer;
      minimpi::World::run(c.layout().world_size(), [&](minimpi::Comm& world) {
        jm76::CoupledRig rigrun(world, c);
        rigrun.run(nsteps);
        if (auto* solver = rigrun.solver()) {
          (*q)[static_cast<std::size_t>(world.rank())] =
              solver->context().fetch_global(solver->q());
        }
      });
      return timer.elapsed();
    };

    std::vector<std::vector<double>> q_mono, q_shard;
    const double t_mono = run_once(false, &q_mono);
    const double t_shard = run_once(true, &q_shard);
    util::Table t({"setup path", "wall [ms]"});
    t.add_row({"monolithic", util::Table::num(t_mono * 1e3, 1)});
    t.add_row({"sharded", util::Table::num(t_shard * 1e3, 1)});
    t.print_text(std::cout);
    check(!q_mono.empty() && q_mono == q_shard,
          "sharded final flow state bit-equal to monolithic");
    metrics.emplace_back("mono_setup_run_seconds", t_mono);
    metrics.emplace_back("shard_setup_run_seconds", t_shard);
  }

  // --- part 3: fig. 9 4.58B sharded projection -----------------------------
  bench::section("fig. 9 4.58B sharded-setup projection (two-level node x core)");
  {
    const auto proj = perf::project_sharded_scaling(
        perf::archer2(), perf::w458b(), perf::fig9_row_resolution(),
        {8, 16, 32, 64, 128, 256, 512});
    std::cout << perf::format_shard_table(proj);
    bool all_fit = true;
    int max_ranks = 0;
    for (const auto& p : proj.points) {
      all_fit = all_fit && p.fits_index_t;
      max_ranks = std::max(max_ranks, p.ranks);
    }
    check(proj.ncell_total > op2::kMaxMonolithicSetSize,
          "modeled mesh exceeds index_t (the monolithic path cannot hold it)");
    check(all_fit, "every per-rank shard window fits op2::index_t");
    check(max_ranks >= 1024, "projection sweeps >= 1024 modeled ranks");
    metrics.emplace_back("proj_ncell_total", static_cast<double>(proj.ncell_total));
    metrics.emplace_back("proj_max_ranks", max_ranks);
    metrics.emplace_back("proj_all_fit_index_t", all_fit ? 1.0 : 0.0);
  }

  metrics.emplace_back("failures", failures);
  bench::write_bench_json("shard", metrics);
  if (failures != 0) {
    std::cout << "\n" << failures << " acceptance check(s) FAILED\n";
    return 1;
  }
  std::cout << "\nall acceptance checks passed\n";
  return 0;
}
