// Micro-benchmarks (google-benchmark) of the op2 runtime and coupler
// primitives: par_loop dispatch, indirect increments, coloring, partitioner
// cost, ADT build/query vs brute force. These quantify the constants behind
// the execution plans the paper's OP2 code generator emits.
#include <benchmark/benchmark.h>

#include "src/jm76/adt.hpp"
#include "src/op2/op2.hpp"
#include "src/rig/annulus.hpp"
#include "src/rig/interface.hpp"
#include "src/rig/rowspec.hpp"
#include "src/util/rng.hpp"

using namespace vcgt;
using op2::Access;
using op2::index_t;

namespace {

rig::AnnulusMesh bench_mesh(int scale) {
  rig::RowSpec row;
  row.x_min = 0;
  row.x_max = 0.1;
  row.r_hub = 0.3;
  row.r_casing = 0.5;
  return rig::generate_row_mesh(row, {4 * scale, 3 * scale, 12 * scale});
}

struct LoopFixture {
  explicit LoopFixture(int scale)
      : mesh(bench_mesh(scale)),
        cells(ctx.decl_set("cells", mesh.ncell)),
        faces(ctx.decl_set("faces", mesh.nface)),
        f2c(ctx.decl_map("f2c", faces, cells, 2, mesh.face2cell)),
        x(ctx.decl_dat<double>(cells, 1, "x")),
        res(ctx.decl_dat<double>(cells, 1, "res")) {
    op2::par_loop("init", cells, [](double* v) { *v = 1.0; }, op2::arg(x, Access::Write));
  }
  op2::Context ctx;
  rig::AnnulusMesh mesh;
  op2::Set& cells;
  op2::Set& faces;
  op2::Map& f2c;
  op2::Dat<double>& x;
  op2::Dat<double>& res;
};

void BM_ParLoopDirect(benchmark::State& state) {
  LoopFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    op2::par_loop("direct", f.cells, [](const double* a, double* b) { *b = 2.0 * *a; },
                  op2::arg(f.x, Access::Read), op2::arg(f.res, Access::Write));
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.ncell);
}
BENCHMARK(BM_ParLoopDirect)->Arg(1)->Arg(2)->Arg(4);

void BM_ParLoopIndirectInc(benchmark::State& state) {
  LoopFixture f(static_cast<int>(state.range(0)));
  op2::par_loop("zero", f.cells, [](double* v) { *v = 0.0; }, op2::arg(f.res, Access::Write));
  for (auto _ : state) {
    op2::par_loop("flux", f.faces,
                  [](const double* a, const double* b, double* ra, double* rb) {
                    const double fl = 0.5 * (*a + *b);
                    *ra += fl;
                    *rb -= fl;
                  },
                  op2::arg(f.x, 0, f.f2c, Access::Read), op2::arg(f.x, 1, f.f2c, Access::Read),
                  op2::arg(f.res, 0, f.f2c, Access::Inc),
                  op2::arg(f.res, 1, f.f2c, Access::Inc));
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nface);
}
BENCHMARK(BM_ParLoopIndirectInc)->Arg(1)->Arg(2)->Arg(4);

void BM_ColoringBuild(benchmark::State& state) {
  const auto mesh = bench_mesh(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    op2::Config cfg;
    cfg.force_coloring = true;
    op2::Context ctx(cfg);
    auto& cells = ctx.decl_set("cells", mesh.ncell);
    auto& faces = ctx.decl_set("faces", mesh.nface);
    auto& f2c = ctx.decl_map("f2c", faces, cells, 2, mesh.face2cell);
    auto& x = ctx.decl_dat<double>(cells, 1, "x");
    // First invocation builds and caches the colored plan.
    op2::par_loop("color_me", faces,
                  [](double* a, double* b) {
                    *a += 1;
                    *b += 1;
                  },
                  op2::arg(x, 0, f2c, Access::Inc), op2::arg(x, 1, f2c, Access::Inc));
    benchmark::DoNotOptimize(ctx);
  }
  state.SetItemsProcessed(state.iterations() * mesh.nface);
}
BENCHMARK(BM_ColoringBuild)->Arg(1)->Arg(2);

void BM_MeshGeneration(benchmark::State& state) {
  for (auto _ : state) {
    const auto mesh = bench_mesh(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(mesh.ncell);
  }
}
BENCHMARK(BM_MeshGeneration)->Arg(1)->Arg(2)->Arg(4);

std::vector<double> interface_boxes(int scale) {
  rig::RowSpec row;
  row.x_min = 0;
  row.x_max = 0.1;
  row.r_hub = 0.3;
  row.r_casing = 0.5;
  const auto mesh = rig::generate_row_mesh(row, {2, 4 * scale, 48 * scale});
  const auto side = rig::extract_interface(mesh, row, rig::BoundaryGroup::Outlet);
  std::vector<double> boxes;
  for (index_t i = 0; i < side.size(); ++i) {
    boxes.insert(boxes.end(), {side.box[static_cast<std::size_t>(i) * 4 + 0],
                               side.box[static_cast<std::size_t>(i) * 4 + 1],
                               side.box[static_cast<std::size_t>(i) * 4 + 2],
                               side.box[static_cast<std::size_t>(i) * 4 + 3]});
  }
  return boxes;
}

void BM_AdtBuild(benchmark::State& state) {
  const auto boxes = interface_boxes(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    jm76::Adt2D adt(boxes);
    benchmark::DoNotOptimize(adt.size());
  }
  state.SetItemsProcessed(state.iterations() * (boxes.size() / 4));
}
BENCHMARK(BM_AdtBuild)->Arg(1)->Arg(4)->Arg(16);

void BM_AdtQuery(benchmark::State& state) {
  const auto boxes = interface_boxes(static_cast<int>(state.range(0)));
  const jm76::Adt2D adt(boxes);
  util::Rng rng(1);
  std::vector<int> hits;
  for (auto _ : state) {
    hits.clear();
    adt.query(rng.uniform(0.3, 0.5), rng.uniform(0.0, 6.28), &hits);
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdtQuery)->Arg(1)->Arg(4)->Arg(16);

void BM_BinsQuery(benchmark::State& state) {
  const auto boxes = interface_boxes(static_cast<int>(state.range(0)));
  const jm76::UniformBins2D bins(boxes);
  util::Rng rng(1);
  std::vector<int> hits;
  for (auto _ : state) {
    hits.clear();
    bins.query(rng.uniform(0.3, 0.5), rng.uniform(0.0, 6.28), &hits);
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BinsQuery)->Arg(1)->Arg(4)->Arg(16);

void BM_BruteForceQuery(benchmark::State& state) {
  const auto boxes = interface_boxes(static_cast<int>(state.range(0)));
  const jm76::BruteForce2D bf(boxes);
  util::Rng rng(1);
  std::vector<int> hits;
  for (auto _ : state) {
    hits.clear();
    bf.query(rng.uniform(0.3, 0.5), rng.uniform(0.0, 6.28), &hits);
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BruteForceQuery)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
