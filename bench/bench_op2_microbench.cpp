// Micro-benchmarks (google-benchmark) of the op2 runtime and coupler
// primitives: par_loop dispatch, indirect increments, coloring, partitioner
// cost, ADT build/query vs brute force. These quantify the constants behind
// the execution plans the paper's OP2 code generator emits.
//
// Before the google-benchmark suite, main() runs the data-layout sweep
// (DESIGN.md §8): AoS / SoA / AoSoA(4) / AoSoA(8) × direct / indirect loops,
// writing elements/s and bytes/s per configuration to BENCH_layout.json.
// Pass --layout-only to skip the google-benchmark part (the CI simd job).
#include <benchmark/benchmark.h>

#include <array>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/jm76/adt.hpp"
#include "src/op2/op2.hpp"
#include "src/rig/annulus.hpp"
#include "src/rig/interface.hpp"
#include "src/rig/rowspec.hpp"
#include "src/util/rng.hpp"
#include "src/util/timer.hpp"

using namespace vcgt;
using op2::Access;
using op2::index_t;

namespace {

rig::AnnulusMesh bench_mesh(int scale) {
  rig::RowSpec row;
  row.x_min = 0;
  row.x_max = 0.1;
  row.r_hub = 0.3;
  row.r_casing = 0.5;
  return rig::generate_row_mesh(row, {4 * scale, 3 * scale, 12 * scale});
}

struct LoopFixture {
  explicit LoopFixture(int scale)
      : mesh(bench_mesh(scale)),
        cells(ctx.decl_set("cells", mesh.ncell)),
        faces(ctx.decl_set("faces", mesh.nface)),
        f2c(ctx.decl_map("f2c", faces, cells, 2, mesh.face2cell)),
        x(ctx.decl_dat<double>(cells, 1, "x")),
        res(ctx.decl_dat<double>(cells, 1, "res")) {
    op2::par_loop("init", cells, [](double* v) { *v = 1.0; }, op2::write(x));
  }
  op2::Context ctx;
  rig::AnnulusMesh mesh;
  op2::Set& cells;
  op2::Set& faces;
  op2::Map& f2c;
  op2::Dat<double>& x;
  op2::Dat<double>& res;
};

void BM_ParLoopDirect(benchmark::State& state) {
  LoopFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    op2::par_loop("direct", f.cells, [](const double* a, double* b) { *b = 2.0 * *a; },
                  op2::read(f.x), op2::write(f.res));
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.ncell);
}
BENCHMARK(BM_ParLoopDirect)->Arg(1)->Arg(2)->Arg(4);

void BM_ParLoopIndirectInc(benchmark::State& state) {
  LoopFixture f(static_cast<int>(state.range(0)));
  op2::par_loop("zero", f.cells, [](double* v) { *v = 0.0; }, op2::write(f.res));
  for (auto _ : state) {
    op2::par_loop("flux", f.faces,
                  [](const double* a, const double* b, double* ra, double* rb) {
                    const double fl = 0.5 * (*a + *b);
                    *ra += fl;
                    *rb -= fl;
                  },
                  op2::read(f.x, f.f2c, 0), op2::read(f.x, f.f2c, 1),
                  op2::inc(f.res, f.f2c, 0),
                  op2::inc(f.res, f.f2c, 1));
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nface);
}
BENCHMARK(BM_ParLoopIndirectInc)->Arg(1)->Arg(2)->Arg(4);

void BM_ColoringBuild(benchmark::State& state) {
  const auto mesh = bench_mesh(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    op2::Config cfg;
    cfg.force_coloring = true;
    op2::Context ctx(cfg);
    auto& cells = ctx.decl_set("cells", mesh.ncell);
    auto& faces = ctx.decl_set("faces", mesh.nface);
    auto& f2c = ctx.decl_map("f2c", faces, cells, 2, mesh.face2cell);
    auto& x = ctx.decl_dat<double>(cells, 1, "x");
    // First invocation builds and caches the colored plan.
    op2::par_loop("color_me", faces,
                  [](double* a, double* b) {
                    *a += 1;
                    *b += 1;
                  },
                  op2::inc(x, f2c, 0), op2::inc(x, f2c, 1));
    benchmark::DoNotOptimize(ctx);
  }
  state.SetItemsProcessed(state.iterations() * mesh.nface);
}
BENCHMARK(BM_ColoringBuild)->Arg(1)->Arg(2);

void BM_MeshGeneration(benchmark::State& state) {
  for (auto _ : state) {
    const auto mesh = bench_mesh(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(mesh.ncell);
  }
}
BENCHMARK(BM_MeshGeneration)->Arg(1)->Arg(2)->Arg(4);

// Chained vs unchained three-loop relax pipeline (zero -> indirect flux ->
// direct update) — the micro-scale version of the hydra RK chain that
// bench_chain times end-to-end. The chained variant declares one LoopChain
// per step so cross-loop tiles keep `res`/`x` cache-resident between loops.
void relax_unchained(LoopFixture& f) {
  op2::par_loop("zero", f.cells, [](double* v) { *v = 0.0; }, op2::write(f.res));
  op2::par_loop("flux", f.faces,
                [](const double* a, const double* b, double* ra, double* rb) {
                  const double fl = 0.5 * (*a + *b);
                  *ra += fl;
                  *rb -= fl;
                },
                op2::read(f.x, f.f2c, 0), op2::read(f.x, f.f2c, 1),
                op2::inc(f.res, f.f2c, 0), op2::inc(f.res, f.f2c, 1));
  op2::par_loop("update", f.cells,
                [](double* x, const double* r) { *x += 0.01 * *r; },
                op2::rw(f.x), op2::read(f.res));
}

void BM_RelaxUnchained(benchmark::State& state) {
  LoopFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) relax_unchained(f);
  state.SetItemsProcessed(state.iterations() * (2 * f.mesh.ncell + f.mesh.nface));
}
BENCHMARK(BM_RelaxUnchained)->Arg(1)->Arg(2)->Arg(4);

void BM_RelaxChained(benchmark::State& state) {
  LoopFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    op2::LoopChain chain(f.ctx, "relax");
    chain.add("zero", f.cells, [](double* v) { *v = 0.0; }, op2::write(f.res));
    chain.add("flux", f.faces,
              [](const double* a, const double* b, double* ra, double* rb) {
                const double fl = 0.5 * (*a + *b);
                *ra += fl;
                *rb -= fl;
              },
              op2::read(f.x, f.f2c, 0), op2::read(f.x, f.f2c, 1),
              op2::inc(f.res, f.f2c, 0), op2::inc(f.res, f.f2c, 1));
    chain.add("update", f.cells,
              [](double* x, const double* r) { *x += 0.01 * *r; },
              op2::rw(f.x), op2::read(f.res));
    chain.execute();
  }
  state.SetItemsProcessed(state.iterations() * (2 * f.mesh.ncell + f.mesh.nface));
}
BENCHMARK(BM_RelaxChained)->Arg(1)->Arg(2)->Arg(4);

std::vector<double> interface_boxes(int scale) {
  rig::RowSpec row;
  row.x_min = 0;
  row.x_max = 0.1;
  row.r_hub = 0.3;
  row.r_casing = 0.5;
  const auto mesh = rig::generate_row_mesh(row, {2, 4 * scale, 48 * scale});
  const auto side = rig::extract_interface(mesh, row, rig::BoundaryGroup::Outlet);
  std::vector<double> boxes;
  for (index_t i = 0; i < side.size(); ++i) {
    boxes.insert(boxes.end(), {side.box[static_cast<std::size_t>(i) * 4 + 0],
                               side.box[static_cast<std::size_t>(i) * 4 + 1],
                               side.box[static_cast<std::size_t>(i) * 4 + 2],
                               side.box[static_cast<std::size_t>(i) * 4 + 3]});
  }
  return boxes;
}

void BM_AdtBuild(benchmark::State& state) {
  const auto boxes = interface_boxes(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    jm76::Adt2D adt(boxes);
    benchmark::DoNotOptimize(adt.size());
  }
  state.SetItemsProcessed(state.iterations() * (boxes.size() / 4));
}
BENCHMARK(BM_AdtBuild)->Arg(1)->Arg(4)->Arg(16);

void BM_AdtQuery(benchmark::State& state) {
  const auto boxes = interface_boxes(static_cast<int>(state.range(0)));
  const jm76::Adt2D adt(boxes);
  util::Rng rng(1);
  std::vector<int> hits;
  for (auto _ : state) {
    hits.clear();
    adt.query(rng.uniform(0.3, 0.5), rng.uniform(0.0, 6.28), &hits);
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdtQuery)->Arg(1)->Arg(4)->Arg(16);

void BM_BinsQuery(benchmark::State& state) {
  const auto boxes = interface_boxes(static_cast<int>(state.range(0)));
  const jm76::UniformBins2D bins(boxes);
  util::Rng rng(1);
  std::vector<int> hits;
  for (auto _ : state) {
    hits.clear();
    bins.query(rng.uniform(0.3, 0.5), rng.uniform(0.0, 6.28), &hits);
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BinsQuery)->Arg(1)->Arg(4)->Arg(16);

void BM_BruteForceQuery(benchmark::State& state) {
  const auto boxes = interface_boxes(static_cast<int>(state.range(0)));
  const jm76::BruteForce2D bf(boxes);
  util::Rng rng(1);
  std::vector<int> hits;
  for (auto _ : state) {
    hits.clear();
    bf.query(rng.uniform(0.3, 0.5), rng.uniform(0.0, 6.28), &hits);
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BruteForceQuery)->Arg(1)->Arg(4)->Arg(16);

// --- data-layout sweep (BENCH_layout.json) ----------------------------------

struct LayoutSpec {
  const char* tag;
  op2::Layout layout;
  int block;
};

constexpr LayoutSpec kLayouts[] = {{"aos", op2::Layout::AoS, 1},
                                   {"soa", op2::Layout::SoA, 1},
                                   {"aosoa4", op2::Layout::AoSoA, 4},
                                   {"aosoa8", op2::Layout::AoSoA, 8}};

/// Runs `body` (one full pass over n elements) repeatedly, doubling the
/// iteration count until a single measurement exceeds ~120 ms, and returns
/// elements per second — best of five repetitions, since the sweep's
/// pass/fail ratios should reflect the code, not scheduler noise. (Dim-1
/// layouts are byte-identical in memory, so indirect-loop ratios near 1.0
/// are all noise; short windows were seen to scatter them by +/-8%.)
template <class F>
double measure_rate(index_t n, F&& body) {
  body();  // warm-up: plans built, halo lists cached, caches touched
  long iters = 1;
  double best = 0.0;
  for (int rep = 0; rep < 5;) {
    util::Timer t;
    for (long i = 0; i < iters; ++i) body();
    const double s = t.elapsed();
    if (s <= 0.12) {
      iters *= 2;
      continue;
    }
    best = std::max(best, static_cast<double>(n) * static_cast<double>(iters) / s);
    ++rep;
  }
  return best;
}

struct LayoutRates {
  double direct_eps;     ///< dim-1 saxpy over cells (vectorized path non-AoS)
  double direct3_eps;    ///< dim-3 direct update (staged path non-AoS)
  double indirect_eps;   ///< dim-1 edge-flux increments through f2c
};

/// Each measurement builds a fresh context so earlier loops cannot pollute
/// the cache state or the adaptive iteration counts of later ones.
struct LayoutCtx {
  LayoutCtx(const rig::AnnulusMesh& mesh, const LayoutSpec& spec)
      : ctx(make_cfg(spec)),
        cells(ctx.decl_set("cells", mesh.ncell)),
        faces(ctx.decl_set("faces", mesh.nface)),
        f2c(ctx.decl_map("f2c", faces, cells, 2, mesh.face2cell)),
        x(ctx.decl_dat<double>(cells, 1, "x")),
        y(ctx.decl_dat<double>(cells, 1, "y")),
        q(ctx.decl_dat<double>(cells, 3, "q")),
        res(ctx.decl_dat<double>(cells, 1, "res")) {
    // A non-uniform static field: keeps the flux differences O(1) so no
    // measurement drifts into denormals regardless of how many passes the
    // adaptive timer runs.
    op2::par_loop("init", cells,
                  [](const op2::gindex_t* gid, double* xv, double* yv, double* qv) {
                    *xv = 1.0 + 0.5 * static_cast<double>(*gid % 17);
                    *yv = 0.5;
                    qv[0] = 1.0;
                    qv[1] = 2.0;
                    qv[2] = 3.0;
                  },
                  op2::arg_idx(), op2::write(x), op2::write(y), op2::write(q));
  }
  static op2::Config make_cfg(const LayoutSpec& spec) {
    op2::Config cfg;
    cfg.default_layout = spec.layout;
    cfg.aosoa_block = spec.block;
    return cfg;
  }
  op2::Context ctx;
  op2::Set& cells;
  op2::Set& faces;
  op2::Map& f2c;
  op2::Dat<double>& x;
  op2::Dat<double>& y;
  op2::Dat<double>& q;
  op2::Dat<double>& res;
};

LayoutRates run_layout_case(const LayoutSpec& spec, const rig::AnnulusMesh& mesh) {
  LayoutRates r{};
  {
    LayoutCtx c(mesh, spec);
    r.direct_eps = measure_rate(mesh.ncell, [&] {
      op2::par_loop("saxpy", c.cells,
                    [](const double* a, double* b) { *b = 0.999 * *b + 0.001 * *a; },
                    op2::read(c.x), op2::rw(c.y));
    });
  }
  {
    LayoutCtx c(mesh, spec);
    r.direct3_eps = measure_rate(mesh.ncell, [&] {
      op2::par_loop("update3", c.cells,
                    [](const double* a, double* qq) {
                      qq[0] += 0.001 * *a;
                      qq[1] -= 0.001 * *a;
                      qq[2] += 0.0005 * (qq[0] - qq[1]);
                    },
                    op2::read(c.x), op2::rw(c.q));
    });
  }
  return r;
}

void flux_pass(LayoutCtx& c) {
  op2::par_loop("flux", c.faces,
                [](const double* a, const double* b, double* ra, double* rb) {
                  const double fl = 0.5 * (*b - *a);
                  *ra += fl;
                  *rb -= fl;
                },
                op2::read(c.x, c.f2c, 0), op2::read(c.x, c.f2c, 1),
                op2::inc(c.res, c.f2c, 0), op2::inc(c.res, c.f2c, 1));
}

struct IndirectSweep {
  std::array<double, std::size(kLayouts)> best_eps;       ///< best-of-reps rate per layout
  std::array<double, std::size(kLayouts)> best_vs_first;  ///< best per-rep ratio vs kLayouts[0]
};

/// Indirect rates, measured round-robin across the layouts: the acceptance
/// ratio is worst-layout / AoS, and with one-layout-at-a-time timing any
/// slow phase of machine load lands on a single layout and the min() turns
/// that drift straight into a spurious "regression". Cycling layouts per
/// repetition biases every layout by the same drift, and the gate ratio is
/// computed per repetition (temporally adjacent windows) with the best rep
/// kept per layout — one clean repetition is enough to clear a layout even
/// on a contended single-core box. (For dim-1 dats all four layouts are
/// byte-identical in memory, so a true ratio far from 1.0 would indicate an
/// executor bug, not a layout cost.)
IndirectSweep measure_indirect_interleaved(const rig::AnnulusMesh& mesh) {
  constexpr std::size_t kNL = std::size(kLayouts);
  constexpr int kReps = 5;
  std::vector<std::unique_ptr<LayoutCtx>> ctxs;
  ctxs.reserve(kNL);
  for (const auto& spec : kLayouts) ctxs.push_back(std::make_unique<LayoutCtx>(mesh, spec));
  IndirectSweep out{};
  std::array<long, kNL> iters;
  iters.fill(1);
  for (auto& c : ctxs) flux_pass(*c);  // warm-up: plans built, caches touched
  for (int rep = 0; rep < kReps; ++rep) {
    std::array<double, kNL> rate{};
    for (std::size_t l = 0; l < kNL; ++l) {
      for (;;) {
        util::Timer t;
        for (long i = 0; i < iters[l]; ++i) flux_pass(*ctxs[l]);
        const double s = t.elapsed();
        if (s <= 0.12) {
          iters[l] *= 2;
          continue;
        }
        rate[l] = static_cast<double>(mesh.nface) * static_cast<double>(iters[l]) / s;
        break;
      }
      out.best_eps[l] = std::max(out.best_eps[l], rate[l]);
      out.best_vs_first[l] =
          std::max(out.best_vs_first[l], rate[0] > 0.0 ? rate[l] / rate[0] : 0.0);
    }
  }
  return out;
}

void run_layout_sweep() {
  bench::header("op2 data-layout sweep: AoS / SoA / AoSoA x direct / indirect",
                "DESIGN.md §8 layout engine");
  const int scale = 8;  // ~74k cells: larger than L2, fits in LLC
  const auto mesh = bench_mesh(scale);

  // Bytes moved per element: saxpy reads x + reads/writes y (24 B); the
  // dim-3 update reads x + reads/writes q (56 B); the flux reads two y and
  // reads/writes two res entries (48 B per face).
  constexpr double kDirectBytes = 24.0;
  constexpr double kDirect3Bytes = 56.0;
  constexpr double kIndirectBytes = 48.0;

  std::vector<std::pair<std::string, double>> metrics;
  double aos_direct = 0.0;
  double soa_direct = 0.0;
  const auto indirect = measure_indirect_interleaved(mesh);
  for (std::size_t li = 0; li < std::size(kLayouts); ++li) {
    const auto& spec = kLayouts[li];
    auto r = run_layout_case(spec, mesh);
    r.indirect_eps = indirect.best_eps[li];
    std::printf("  %-7s direct %8.1f Me/s (%6.2f GB/s)   direct3 %8.1f Me/s   "
                "indirect %8.1f Me/s (%6.2f GB/s)\n",
                spec.tag, r.direct_eps / 1e6, r.direct_eps * kDirectBytes / 1e9,
                r.direct3_eps / 1e6, r.indirect_eps / 1e6,
                r.indirect_eps * kIndirectBytes / 1e9);
    const std::string t = spec.tag;
    metrics.emplace_back("direct_" + t + "_elems_per_s", r.direct_eps);
    metrics.emplace_back("direct_" + t + "_bytes_per_s", r.direct_eps * kDirectBytes);
    metrics.emplace_back("direct3_" + t + "_elems_per_s", r.direct3_eps);
    metrics.emplace_back("direct3_" + t + "_bytes_per_s", r.direct3_eps * kDirect3Bytes);
    metrics.emplace_back("indirect_" + t + "_elems_per_s", r.indirect_eps);
    metrics.emplace_back("indirect_" + t + "_bytes_per_s", r.indirect_eps * kIndirectBytes);
    if (t == "aos") aos_direct = r.direct_eps;
    if (t == "soa") soa_direct = r.direct_eps;
  }
  const double speedup = aos_direct > 0 ? soa_direct / aos_direct : 0.0;
  // Worst layout's best temporally-paired ratio vs AoS (kLayouts[0] = aos,
  // whose own ratio is identically 1), see measure_indirect_interleaved.
  double regression = 1e300;
  for (const double v : indirect.best_vs_first) regression = std::min(regression, v);
  metrics.emplace_back("direct_soa_speedup_vs_aos", speedup);
  metrics.emplace_back("indirect_worst_vs_aos", regression);
  std::printf("  SoA/AoS direct speedup: %.2fx   worst indirect vs AoS: %.3fx\n",
              speedup, regression);
  bench::write_bench_json("layout", metrics);
}

}  // namespace

int main(int argc, char** argv) {
  run_layout_sweep();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--layout-only") == 0) return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
