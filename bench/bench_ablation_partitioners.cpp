// Ablation: partitioner choice (Block vs RCB vs greedy k-way) — the design
// choice behind DESIGN.md's partitioning section and the paper's note that
// production tools rely on Metis/recursive bisection (§II-C). Measures, on a
// real distributed row, the quantities a partitioner controls: ownership
// balance, halo sizes, and the halo traffic a time step generates.
#include "bench/bench_common.hpp"
#include "src/hydra/solver.hpp"
#include "src/minimpi/minimpi.hpp"

using namespace vcgt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int steps = static_cast<int>(cli.get_int("steps", 3));

  bench::header("Ablation: partitioner quality (Block / RCB / k-way)",
                "DESIGN.md SS2; paper SS II-C partitioning discussion");

  const auto rig = rig::rig250_spec(1);
  const auto mesh = rig::generate_row_mesh(rig.rows[0], rig::resolution_tier("coarse"));
  hydra::FlowConfig flow;
  flow.inner_iters = 2;

  util::Table t({"partitioner", "ranks", "cell imbalance", "exec halo", "nonexec halo",
                 "halo MB", "halo msgs"});
  for (const auto part :
       {op2::Partitioner::Block, op2::Partitioner::Rcb, op2::Partitioner::Kway}) {
    for (const int nranks : {4, 8}) {
      double imbalance = 0;
      std::uint64_t exec = 0, nonexec = 0, bytes = 0, msgs = 0;
      minimpi::World::run(nranks, [&](minimpi::Comm& comm) {
        op2::Context ctx(comm);
        hydra::RowSolver solver(ctx, mesh, rig.rows[0], rig.omega(), flow);
        ctx.partition(part, solver.cell_center());
        solver.initialize();
        for (int s = 0; s < steps; ++s) {
          solver.advance_inner(flow.inner_iters);
          solver.shift_time_levels();
        }
        const double mx = comm.allreduce_max(static_cast<double>(solver.cells().n_owned()));
        const double total = comm.allreduce_sum(static_cast<double>(solver.cells().n_owned()));
        const auto ex = comm.allreduce_sum_u64(static_cast<std::uint64_t>(solver.cells().n_exec()));
        const auto ne =
            comm.allreduce_sum_u64(static_cast<std::uint64_t>(solver.cells().n_nonexec()));
        const auto hb = comm.allreduce_sum_u64(ctx.total_stats().halo_bytes);
        const auto hm = comm.allreduce_sum_u64(ctx.total_stats().halo_msgs);
        if (comm.rank() == 0) {
          imbalance = mx / (total / comm.size());
          exec = ex;
          nonexec = ne;
          bytes = hb;
          msgs = hm;
        }
      });
      t.add_row({op2::partitioner_name(part), std::to_string(nranks),
                 util::Table::num(imbalance, 3), std::to_string(exec),
                 std::to_string(nonexec), util::Table::num(bytes / 1e6, 3),
                 std::to_string(msgs)});
    }
  }
  t.print_text(std::cout);
  util::write_csv(t, "ablation_partitioners.csv");
  std::cout << "\nReading: on this structured annulus the index order is theta-major, so\n"
               "Block already produces near-optimal circumferential slabs and RCB matches\n"
               "it; greedy k-way fragments the subdomains and pays in neighbor/message\n"
               "count. On genuinely unstructured industrial meshes the ordering is\n"
               "arbitrary and geometric/graph partitioners are what keep halos this\n"
               "small — the discretization-focused optimization the paper notes leaves\n"
               "sliding-plane work 'trapped' on a few ranks (SS II-C).\n";
  return 0;
}
