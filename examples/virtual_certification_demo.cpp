// The full virtual-certification workflow at mini scale — the usage pattern
// the paper's capability enables (§I, §V):
//
//   1. steady RANS + mixing planes: the cheap industrial bootstrap that
//      establishes the operating point;
//   2. checkpoint it;
//   3. restart into full-annulus URANS + sliding planes with discrete blade
//      wakes: the certification-grade unsteady simulation;
//   4. monitor the run and quantify the blade-passing unsteadiness the
//      steady model could not represent (Fourier analysis per interface);
//   5. export the flow field for post-processing.
//
//   ./virtual_certification_demo --rows=4 --steady-steps=120 --urans-steps=40
#include <cmath>
#include <iostream>

#include "src/jm76/monolithic.hpp"
#include "src/rig/vtk.hpp"
#include "src/util/cli.hpp"
#include "src/util/fmt.hpp"
#include "src/util/spectrum.hpp"
#include "src/util/table.hpp"

using namespace vcgt;

namespace {

jm76::MonolithicConfig base_config(int rows, const std::string& tier) {
  jm76::MonolithicConfig cfg;
  cfg.rig = rig::rig250_spec(rows);
  for (auto& row : cfg.rig.rows) row.nblades = row.rotor ? 3 : 4;  // lattice-resolvable
  cfg.res = rig::resolution_tier(tier);
  cfg.flow.rotor_swirl_frac = 0.4;
  cfg.flow.stator_swirl_frac = 0.12;
  cfg.flow.blade_relax = 2e-4;
  cfg.flow.rotor_axial_load = 0.5;
  cfg.flow.p_back_ratio = 1.8;
  cfg.search = jm76::SearchKind::Adt;
  cfg.interp = jm76::InterpKind::Bilinear;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int rows = static_cast<int>(cli.get_int("rows", 4));
  const int steady_steps = static_cast<int>(cli.get_int("steady-steps", 120));
  const int urans_steps = static_cast<int>(cli.get_int("urans-steps", 40));
  const std::string tier = cli.get("tier", "tiny");
  const std::string ckpt = cli.get("checkpoint", "vc_demo_ckpt");

  // ---- phase 1: steady RANS + mixing planes --------------------------------
  std::cout << "[1/3] steady RANS + mixing planes, " << rows << " rows, " << steady_steps
            << " pseudo-steps...\n";
  {
    auto cfg = base_config(rows, tier);
    cfg.flow.steady = true;
    cfg.flow.dt_phys = 1e-3;
    cfg.flow.inner_iters = 6;
    cfg.transfer = jm76::TransferKind::MixingPlane;
    jm76::MonolithicRig rigrun(minimpi::Comm{}, cfg);
    rigrun.run(steady_steps);
    util::Table t({"row", "mean p/p_in", "rms"});
    for (int r = 0; r < rows; ++r) {
      t.add_row({cfg.rig.rows[static_cast<std::size_t>(r)].name,
                 util::Table::num(rigrun.solver(r).mean_pressure() / cfg.flow.p_in, 3),
                 util::Table::num(rigrun.solver(r).residual_rms(), 1)});
      if (!rigrun.solver(r).save_state(ckpt + "_row" + std::to_string(r))) {
        std::cerr << "checkpoint failed\n";
        return 1;
      }
    }
    t.print_text(std::cout, "steady operating point (checkpointed)");
  }

  // ---- phase 2+3: restart into URANS + sliding planes with blade wakes -----
  std::cout << "\n[2/3] restart into full-annulus URANS + sliding planes with discrete\n"
               "blade wakes, "
            << urans_steps << " dual-time steps...\n";
  auto cfg = base_config(rows, tier);
  cfg.flow.steady = false;
  cfg.flow.dt_phys = 5e-5;
  cfg.flow.inner_iters = 4;
  cfg.flow.blade_wake_frac = 0.4;
  cfg.transfer = jm76::TransferKind::SlidingPlane;
  jm76::MonolithicRig rigrun(minimpi::Comm{}, cfg);
  for (int r = 0; r < rows; ++r) {
    if (!rigrun.solver(r).load_state(ckpt + "_row" + std::to_string(r))) {
      std::cerr << "restart failed (run phase 1 first)\n";
      return 1;
    }
  }
  rigrun.run(urans_steps);

  // ---- phase 4: unsteadiness audit -----------------------------------------
  std::cout << "\n[3/3] blade-passing content per interface (URANS resolves what the\n"
               "steady bootstrap averaged away):\n";
  util::Table spec({"interface", "blade harmonic", "amplitude", "vs mean"});
  for (int i = 0; i + 1 < rows; ++i) {
    auto& down = rigrun.solver(i + 1);
    const auto ghost =
        rigrun.context().fetch_global(down.ghost(rig::BoundaryGroup::Inlet));
    std::vector<double> ring(static_cast<std::size_t>(cfg.res.ntheta));
    for (int k = 0; k < cfg.res.ntheta; ++k) {
      ring[static_cast<std::size_t>(k)] =
          ghost[static_cast<std::size_t>(k * cfg.res.nr + cfg.res.nr / 2) * 6 + 2];
    }
    const int nb = cfg.rig.rows[static_cast<std::size_t>(i)].nblades;
    const auto mag = util::theta_harmonics(ring, nb + 1);
    spec.add_row({util::fmt("{} -> {}", cfg.rig.rows[static_cast<std::size_t>(i)].name,
                            cfg.rig.rows[static_cast<std::size_t>(i) + 1].name),
                  std::to_string(nb), util::Table::num(mag[static_cast<std::size_t>(nb)], 4),
                  util::Table::num(mag[static_cast<std::size_t>(nb)] /
                                       std::max(1e-300, std::fabs(mag[0])),
                                   4)});
  }
  spec.print_text(std::cout);
  util::write_csv(spec, "vc_demo_unsteadiness.csv");

  // ---- phase 5: field export ------------------------------------------------
  for (int r = 0; r < rows; ++r) {
    const auto mesh = rig::generate_row_mesh(cfg.rig.rows[static_cast<std::size_t>(r)],
                                             cfg.res);
    const auto q = rigrun.context().fetch_global(rigrun.solver(r).q());
    std::vector<double> pressure(static_cast<std::size_t>(mesh.ncell));
    for (op2::index_t c = 0; c < mesh.ncell; ++c) {
      const double* qc = q.data() + static_cast<std::size_t>(c) * 5;
      const double ke = 0.5 * (qc[1] * qc[1] + qc[2] * qc[2] + qc[3] * qc[3]) / qc[0];
      pressure[static_cast<std::size_t>(c)] = 0.4 * (qc[4] - ke);
    }
    rig::write_midspan_csv(mesh, {{"p", &pressure}},
                           util::fmt("vc_demo_row{}_midspan.csv", r));
  }
  std::cout << "\nwrote vc_demo_unsteadiness.csv and vc_demo_row*_midspan.csv\n";
  return 0;
}
