// Single blade-row URANS simulation with the hydra solver — the building
// block of every Hydra Session in the coupled runs. Simulates one rotor of
// the Rig250-like compressor with physical inlet/outlet boundaries, dual
// time stepping and the SA turbulence model, and prints convergence
// monitors.
//
//   ./single_row --tier=coarse --steps=20 --inner=5 --ranks=4 --rpm=11000
#include <iostream>

#include "src/hydra/monitors.hpp"
#include "src/hydra/solver.hpp"
#include "src/minimpi/minimpi.hpp"
#include "src/rig/vtk.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace vcgt;

namespace {

void run_row(op2::Context& ctx, const rig::RigSpec& rig, const rig::MeshResolution& res,
             const hydra::FlowConfig& flow, int steps) {
  const auto& row = rig.rows[0];
  const auto mesh = rig::generate_row_mesh(row, res);
  hydra::RowSolver solver(ctx, mesh, row, rig.omega(), flow);
  ctx.partition(op2::Partitioner::Rcb, solver.cell_center());
  solver.initialize();

  hydra::MonitorRecorder recorder(solver);
  util::Table monitors({"step", "residual rms", "mass in", "mass out", "mean p/p_in",
                        "shaft kW"});
  for (int t = 0; t < steps; ++t) {
    solver.advance_inner(flow.inner_iters);
    solver.shift_time_levels();
    const auto& r = recorder.sample(t);
    if (t % std::max(1, steps / 10) == 0 || t == steps - 1) {
      monitors.add_row({std::to_string(t), util::Table::num(r.rms, 2),
                        util::Table::num(r.mdot_in, 2), util::Table::num(r.mdot_out, 2),
                        util::Table::num(r.mean_p / flow.p_in, 4),
                        util::Table::num(r.power / 1e3, 1)});
    }
  }
  if (ctx.rank() == 0) {
    std::cout << "row " << row.name << (row.rotor ? " (rotor, " : " (stator, ")
              << row.nblades << " blades), mesh " << mesh.ncell << " cells, "
              << ctx.nranks() << " rank(s)\n";
    monitors.print_text(std::cout, "convergence monitors");
    std::cout << "mass imbalance: " << recorder.mass_imbalance()
              << ", residual ratio: " << recorder.convergence_ratio() << "\n";
    recorder.write_csv("single_row_monitors.csv");
    const auto stats = ctx.total_stats();
    std::cout << "op2: " << stats.invocations << " loop executions, "
              << stats.halo_msgs << " halo messages, " << stats.halo_bytes / 1024
              << " KiB exchanged\n";
  }

  // Export the final field (rank 0 only, gathered globally).
  if (ctx.rank() == 0 || !ctx.distributed()) {
    const auto q = ctx.fetch_global(solver.q());
    const auto n = static_cast<std::size_t>(mesh.ncell);
    std::vector<double> rho(n);
    for (std::size_t c = 0; c < n; ++c) rho[c] = q[c * 5];
    rig::write_vtk_points(mesh, {{"rho", &rho}}, "single_row.vtk");
    if (ctx.rank() == 0) std::cout << "wrote single_row.vtk\n";
  } else {
    (void)ctx.fetch_global(solver.q());  // collective
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 1));
  const int steps = static_cast<int>(cli.get_int("steps", 20));
  const auto rig = rig::rig250_spec(2, cli.get_double("rpm", 11000.0));
  const auto res = rig::resolution_tier(cli.get("tier", "coarse"));

  hydra::FlowConfig flow;
  flow.inner_iters = static_cast<int>(cli.get_int("inner", 5));
  flow.dt_phys = cli.get_double("dt", 2.75e-6);
  flow.rotor_swirl_frac = cli.get_double("swirl", 0.3);

  // Simulate the rotor (row index 1 of the rig is R1; reorder so rows[0]
  // is the rotor for this single-row study).
  auto rotor_rig = rig;
  rotor_rig.rows = {rig.rows[1]};

  if (ranks <= 1) {
    op2::Context ctx;
    run_row(ctx, rotor_rig, res, flow, steps);
  } else {
    minimpi::World::run(ranks, [&](minimpi::Comm& comm) {
      op2::Context ctx(comm);
      run_row(ctx, rotor_rig, res, flow, steps);
    });
  }
  return 0;
}
