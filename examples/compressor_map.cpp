// Compressor operating map: sweep the throttle (outlet back-pressure ratio)
// and record the operating point — mass flow vs overall pressure ratio —
// the machine settles at. This is the kind of design exploration the paper's
// time-to-solution breakthrough makes tractable (§I, "agile design
// explorations towards virtual certification"); here it runs on the mini
// rig in seconds.
//
//   ./compressor_map --rows=6 --steps=250 --points=1.2,1.6,2.0,2.4
#include <cmath>
#include <iostream>
#include <sstream>

#include "src/jm76/monolithic.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace vcgt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int rows = static_cast<int>(cli.get_int("rows", 10));
  const int steps = static_cast<int>(cli.get_int("steps", 250));

  std::vector<double> throttle;
  std::stringstream ss(cli.get("points", "1.2,1.6,2.0,2.4"));
  for (std::string item; std::getline(ss, item, ',');) throttle.push_back(std::stod(item));

  util::Table map({"p_back/p_in", "mass flow [kg/s]", "pressure ratio",
                   "inlet p/p_in", "exit p/p_in"});
  std::cout << "sweeping " << throttle.size() << " throttle settings on the " << rows
            << "-row rig (" << steps << " quasi-steady steps each)...\n";

  for (const double pr : throttle) {
    jm76::MonolithicConfig cfg;
    cfg.rig = rig::rig250_spec(rows);
    cfg.res = rig::resolution_tier(cli.get("tier", "tiny"));
    cfg.flow.dt_phys = 2e-3;  // quasi-steady march
    cfg.flow.inner_iters = 8;
    cfg.flow.p_back_ratio = pr;
    cfg.flow.rotor_swirl_frac = 0.5;
    cfg.flow.stator_swirl_frac = 0.15;
    cfg.flow.blade_relax = 1e-4;
    cfg.flow.rotor_axial_load = 0.7;
    cfg.search = jm76::SearchKind::Adt;
    cfg.interp = jm76::InterpKind::Bilinear;

    jm76::MonolithicRig rigrun(minimpi::Comm{}, cfg);
    rigrun.run(steps);

    const double mdot = -rigrun.solver(0).mass_flow(rig::BoundaryGroup::Inlet);
    const double p_first = rigrun.solver(0).mean_pressure();
    const double p_last = rigrun.solver(rows - 1).mean_pressure();
    map.add_row({util::Table::num(pr, 2), util::Table::num(mdot, 2),
                 util::Table::num(p_last / p_first, 3),
                 util::Table::num(p_first / cfg.flow.p_in, 3),
                 util::Table::num(p_last / cfg.flow.p_in, 3)});
    std::cout << "  throttle " << pr << ": mdot " << mdot << " kg/s, ratio "
              << p_last / p_first << "\n";
  }

  map.print_text(std::cout, "\noperating map (one point per throttle setting)");
  util::write_csv(map, "compressor_map.csv");
  std::cout << "wrote compressor_map.csv\n";
  return 0;
}
