// Quickstart: the op2 DSL in ~60 lines (the paper's Fig. 3 pattern).
//
// Declares a small unstructured mesh (sets, a map, dats), then runs the
// canonical edge-based loop — gather from nodes, compute a flux, scatter
// increments back — followed by a reduction. Run serially:
//
//   ./quickstart
//
// or distributed over in-process rank-threads:
//
//   ./quickstart --ranks=4
#include <cmath>
#include <iostream>

#include "src/minimpi/minimpi.hpp"
#include "src/op2/op2.hpp"
#include "src/util/cli.hpp"

using namespace vcgt;
using op2::Access;
using op2::index_t;

namespace {

void simulate(op2::Context& ctx) {
  // A ring of N nodes connected by N edges.
  constexpr index_t N = 64;
  auto& nodes = ctx.decl_set("nodes", N);
  auto& edges = ctx.decl_set("edges", N);
  std::vector<index_t> e2n_table;
  for (index_t e = 0; e < N; ++e) {
    e2n_table.push_back(e);
    e2n_table.push_back((e + 1) % N);
  }
  auto& e2n = ctx.decl_map("e2n", edges, nodes, 2, e2n_table);

  // Node coordinates (used for partitioning) and a field to smooth.
  std::vector<double> xy(static_cast<std::size_t>(N) * 2);
  std::vector<double> init(static_cast<std::size_t>(N));
  for (index_t n = 0; n < N; ++n) {
    const double th = 2.0 * 3.14159265358979 * n / N;
    xy[static_cast<std::size_t>(n) * 2 + 0] = std::cos(th);
    xy[static_cast<std::size_t>(n) * 2 + 1] = std::sin(th);
    init[static_cast<std::size_t>(n)] = n % 7;  // something rough
  }
  auto& coords = ctx.decl_dat<double>(nodes, 2, "coords", xy);
  auto& u = ctx.decl_dat<double>(nodes, 1, "u", init);
  auto& res = ctx.decl_dat<double>(nodes, 1, "res");

  ctx.partition(op2::Partitioner::Rcb, coords);  // collective; no-op serially

  // 50 Jacobi smoothing sweeps: the indirect-increment motif of every
  // unstructured FV/FE code (paper SS II).
  for (int it = 0; it < 50; ++it) {
    op2::par_loop("zero", nodes, [](double* r) { *r = 0.0; }, op2::write(res));
    op2::par_loop("edge_diff", edges,
                  [](const double* a, const double* b, double* ra, double* rb) {
                    const double f = 0.5 * (*b - *a);
                    *ra += f;
                    *rb -= f;
                  },
                  op2::read(u, e2n, 0), op2::read(u, e2n, 1),
                  op2::inc(res, e2n, 0), op2::inc(res, e2n, 1));
    op2::par_loop("update", nodes,
                  [](const double* r, double* v) { *v += 0.5 * *r; },
                  op2::read(res), op2::rw(u));
  }

  // Global reduction across every rank.
  auto norm = ctx.decl_global<double>("norm", 1);
  op2::par_loop("norm", nodes, [](const double* v, double* s) { *s += *v * *v; },
                op2::read(u), op2::reduce_sum(norm));
  if (ctx.rank() == 0) {
    std::cout << "rank count: " << ctx.nranks() << "\n";
    std::cout << "||u||^2 after smoothing: " << norm.value() << "\n";
    const auto stats = ctx.total_stats();
    std::cout << "par_loop invocations: " << stats.invocations
              << ", halo messages: " << stats.halo_msgs << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 1));
  if (ranks <= 1) {
    op2::Context ctx;
    simulate(ctx);
  } else {
    minimpi::World::run(ranks, [&](minimpi::Comm& comm) {
      op2::Context ctx(comm);
      simulate(ctx);
    });
  }
  return 0;
}
