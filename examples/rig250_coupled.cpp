// The flagship scenario: the full coupled Rig250 compressor — one Hydra
// Session per blade row on its own sub-communicator, JM76 Coupler Units on
// dedicated ranks performing the sliding-plane donor search (ADT by
// default), pipelined so the search overlaps the CFD inner iterations.
// This is the miniature of the paper's grand-challenge run.
//
//   ./rig250_coupled --rows=10 --tier=tiny --hs=1 --cus=2 --steps=10 \
//                    --search=adt --pipelined=true
#include <iostream>

#include "src/jm76/coupled.hpp"
#include "src/util/cli.hpp"
#include "src/util/fmt.hpp"
#include "src/util/table.hpp"

using namespace vcgt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int rows = static_cast<int>(cli.get_int("rows", 4));
  const int hs = static_cast<int>(cli.get_int("hs", 1));
  const int cus = static_cast<int>(cli.get_int("cus", 1));
  const int steps = static_cast<int>(cli.get_int("steps", 10));

  jm76::CoupledConfig cfg;
  cfg.rig = rig::rig250_spec(rows, cli.get_double("rpm", 11000.0));
  cfg.res = rig::resolution_tier(cli.get("tier", "tiny"));
  cfg.flow.inner_iters = static_cast<int>(cli.get_int("inner", 3));
  cfg.flow.dt_phys = cli.get_double("dt", 5e-5);
  cfg.hs_ranks.assign(static_cast<std::size_t>(rows), hs);
  cfg.cus_per_interface = cus;
  cfg.search = cli.get("search", "adt") == "bf" ? jm76::SearchKind::BruteForce
                                                : jm76::SearchKind::Adt;
  cfg.pipelined = cli.get_bool("pipelined", true);
  cfg.staged_gather = cli.get_bool("gg", true);
  cfg.op2cfg.partial_halos = cli.get_bool("ph", false);
  cfg.op2cfg.grouped_halos = cli.get_bool("gh", false);

  const auto layout = cfg.layout();
  std::cout << "Rig250 coupled run: " << rows << " rows x " << hs << " HS rank(s), "
            << layout.ninterfaces() << " sliding interfaces x " << cus
            << " CU(s) => world of " << layout.world_size() << " ranks; "
            << jm76::search_kind_name(cfg.search) << " search, "
            << (cfg.pipelined ? "pipelined" : "blocking") << " coupling\n";

  minimpi::World::run(layout.world_size(), [&](minimpi::Comm& world) {
    jm76::CoupledRig rigrun(world, cfg);
    rigrun.run(steps);

    // Per-row flow summary (each HS root reports through the gather below).
    double mean_p = 0.0;
    if (rigrun.solver()) mean_p = rigrun.solver()->mean_pressure();

    const auto all = jm76::CoupledRig::collect(world, rigrun.stats());
    const auto pressures = world.gatherv(std::span<const double>(&mean_p, 1), 0);
    if (world.rank() == 0) {
      util::Table t({"rank", "role", "owned cells", "step s", "coupler wait s",
                     "search s", "halo KiB"});
      for (const auto& s : all) {
        t.add_row({std::to_string(s.world_rank),
                   s.is_cu ? util::fmt("CU iface {}", s.row_or_iface)
                           : util::fmt("HS row {}", s.row_or_iface),
                   std::to_string(s.owned_cells), util::Table::num(s.step_seconds, 3),
                   util::Table::num(s.coupler_wait, 4),
                   util::Table::num(s.search_seconds, 4),
                   util::Table::num(static_cast<double>(s.halo_bytes) / 1024.0, 1)});
      }
      t.print_text(std::cout, "per-rank summary");

      util::Table p({"row", "mean p / p_in"});
      for (int r = 0; r < rows; ++r) {
        // The first HS rank of each row reported its session's pressure.
        const auto idx = static_cast<std::size_t>(layout.hs_world_rank(r, 0));
        p.add_row({cfg.rig.rows[static_cast<std::size_t>(r)].name,
                   util::Table::num(pressures[idx] / cfg.flow.p_in, 4)});
      }
      p.print_text(std::cout, "flow state");
    }
  });
  return 0;
}
