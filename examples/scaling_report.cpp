// Scaling-projection tool: evaluate the calibrated machine models at
// arbitrary node counts — the "how many nodes do I need for one revolution
// in N hours" question virtual-certification planning asks.
//
//   ./scaling_report --mesh=458b --machine=archer2 --nodes=128,256,512,1024
#include <iostream>
#include <sstream>

#include "src/perf/costmodel.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace vcgt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string mesh = cli.get("mesh", "458b");
  const std::string machine_name = cli.get("machine", "archer2");

  perf::WorkloadSpec wl = mesh == "430m"   ? perf::w430m()
                          : mesh == "653m" ? perf::w653m()
                                           : perf::w458b();
  perf::MachineSpec machine = machine_name == "cirrus"    ? perf::cirrus()
                              : machine_name == "haswell" ? perf::haswell_production()
                              : machine_name == "archer1" ? perf::archer1()
                                                          : perf::archer2();

  std::vector<int> nodes;
  std::stringstream ss(cli.get("nodes", "64,128,256,512,1024"));
  for (std::string item; std::getline(ss, item, ',');) nodes.push_back(std::stoi(item));

  perf::ModelOptions opt;
  opt.monolithic = cli.get_bool("monolithic", false);
  opt.search = cli.get("search", "adt") == "bf" ? jm76::SearchKind::BruteForce
                                                : jm76::SearchKind::Adt;
  opt.cus_per_interface = static_cast<int>(cli.get_int("cus", machine.is_gpu() ? 40 : 30));
  opt.pipelined = cli.get_bool("pipelined", true);
  opt.grouped_halos = machine.is_gpu();
  opt.staged_gather = machine.is_gpu();

  perf::ScalingModel model(machine, wl);
  std::cout << wl.name << " on " << machine.name
            << (opt.monolithic ? " (monolithic)" : " (coupled)") << ", "
            << opt.cus_per_interface << " CUs/interface, "
            << jm76::search_kind_name(opt.search) << " search\n";
  if (const int min_nodes = model.min_gpu_nodes(); min_nodes > 0) {
    std::cout << "GPU memory requires >= " << min_nodes << " nodes\n";
  }

  util::Table t({"nodes", "s/step", "hours/rev", "efficiency", "coupling %",
                 "node-hours/rev", "MWh/rev"});
  const int base = nodes.front();
  for (const int n : nodes) {
    const auto c = model.step_cost(n, opt);
    t.add_row({std::to_string(n), util::Table::num(c.total(), 2),
               util::Table::num(model.hours_per_rev(n, opt), 2),
               util::Table::num(model.efficiency(base, n, opt), 3),
               util::Table::num(100.0 * c.coupling_fraction(), 1),
               util::Table::num(model.hours_per_rev(n, opt) * n, 0),
               util::Table::num(model.energy_mwh_per_rev(n, opt), 2)});
  }
  t.print_text(std::cout);

  if (cli.has("target-hours")) {
    const double target = cli.get_double("target-hours", 6.0);
    const int need = model.nodes_for_target_hours(target, opt);
    if (need > 0) {
      std::cout << "\n1 revolution in <= " << target << " h needs " << need << " "
                << machine.name << " nodes ("
                << util::Table::num(model.energy_mwh_per_rev(need, opt), 2)
                << " MWh/rev)\n";
    } else {
      std::cout << "\ntarget " << target << " h is unreachable (overheads flatten the "
                << "speedup before the target)\n";
    }
  }
  return 0;
}
