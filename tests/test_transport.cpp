// Zero-copy transport suite: BufferPool lease/recycle semantics, the
// send_owned/recv_owned ownership handoff, legacy byte-vector interop, pool
// convergence over steady-state traffic, and chaos runs proving recycled
// slabs never corrupt in-flight duplicates/reorders (ctest labels:
// transport, chaos for the fault suites).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "src/minimpi/buffer.hpp"
#include "src/minimpi/fault.hpp"
#include "src/minimpi/minimpi.hpp"

namespace {

using namespace vcgt::minimpi;

std::vector<std::byte> pattern_bytes(std::size_t n, unsigned salt) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 131 + salt * 29 + 7) & 0xff);
  }
  return v;
}

// ---------------------------------------------------------------------------
// BufferPool unit tests (no world needed — the pool is freestanding).

TEST(BufferPool, LeaseRecycleReusesSlab) {
  auto pool = std::make_shared<BufferPool>();
  const std::byte* slab = nullptr;
  {
    Buffer b = pool->lease(100);
    EXPECT_TRUE(b.pooled());
    EXPECT_TRUE(b.fresh());
    EXPECT_EQ(b.size(), 100u);
    slab = b.data();
  }  // drop -> recycle
  Buffer again = pool->lease(100);
  EXPECT_FALSE(again.fresh());
  EXPECT_EQ(again.data(), slab);  // same slab, zero allocation
  const PoolStats s = pool->stats();
  EXPECT_EQ(s.leases, 2u);
  EXPECT_EQ(s.slab_allocs, 1u);
  EXPECT_EQ(s.recycles, 1u);
  EXPECT_EQ(s.live, 1u);
}

TEST(BufferPool, LargerClassServesSmallerLease) {
  auto pool = std::make_shared<BufferPool>();
  { Buffer big = pool->lease(4096); }
  // The 4 KiB slab is parked; a small lease must reuse it rather than
  // allocate a fresh 64 B slab (transient class drain fallback).
  Buffer small = pool->lease(8);
  EXPECT_FALSE(small.fresh());
  EXPECT_EQ(pool->stats().slab_allocs, 1u);
}

TEST(BufferPool, GrowOnlyCapacityClasses) {
  auto pool = std::make_shared<BufferPool>();
  // A lease is provisioned at the full class size, so later same-class
  // leases of any size fit the recycled slab without reallocation.
  { Buffer b = pool->lease(65); }    // class 128
  { Buffer b = pool->lease(128); EXPECT_FALSE(b.fresh()); }
  { Buffer b = pool->lease(70); EXPECT_FALSE(b.fresh()); }
  EXPECT_EQ(pool->stats().slab_allocs, 1u);
}

TEST(BufferPool, StatsTrackBytesAndLive) {
  auto pool = std::make_shared<BufferPool>();
  Buffer a = pool->lease(10);
  Buffer b = pool->lease(20);
  PoolStats s = pool->stats();
  EXPECT_EQ(s.bytes_leased, 30u);
  EXPECT_EQ(s.live, 2u);
  { Buffer gone = std::move(a); }
  s = pool->stats();
  EXPECT_EQ(s.live, 1u);
  EXPECT_EQ(s.recycles, 1u);
}

TEST(BufferPool, ReleaseEscapesPool) {
  auto pool = std::make_shared<BufferPool>();
  Buffer b = pool->lease(50);
  std::vector<std::byte> v = std::move(b).release();
  EXPECT_EQ(v.size(), 50u);
  const PoolStats s = pool->stats();
  EXPECT_EQ(s.escaped, 1u);
  EXPECT_EQ(s.live, 0u);
  EXPECT_EQ(s.recycles, 0u);  // escaped slabs never return
}

TEST(BufferPool, AdoptedBufferIsUnpooled) {
  auto src = pattern_bytes(64, 1);
  Buffer b = Buffer::adopt(src);
  EXPECT_FALSE(b.pooled());
  EXPECT_FALSE(b.fresh());
  ASSERT_EQ(b.size(), 64u);
  EXPECT_EQ(std::memcmp(b.data(), src.data(), 64), 0);
}

TEST(BufferPool, CloneIsUnpooledDeepCopy) {
  auto pool = std::make_shared<BufferPool>();
  Buffer b = pool->lease(32);
  std::memset(b.data(), 0x5a, 32);
  Buffer c = b.clone();
  EXPECT_FALSE(c.pooled());
  EXPECT_NE(c.data(), b.data());
  EXPECT_EQ(std::memcmp(c.data(), b.data(), 32), 0);
  // Mutating (or recycling) the original cannot touch the clone.
  std::memset(b.data(), 0, 32);
  EXPECT_EQ(static_cast<unsigned char>(*c.data()), 0x5au);
}

TEST(BufferPool, PoolOutlivesHandleViaSharedPtr) {
  Buffer b;
  {
    auto pool = std::make_shared<BufferPool>();
    b = pool->lease(16);
  }  // pool handle dropped; leased Buffer keeps the pool alive
  std::memset(b.data(), 1, 16);
  SUCCEED();  // destructor recycles into the (still-live) pool, then frees
}

#if defined(VCGT_ASAN)
TEST(BufferPool, RecycledSlabIsPoisoned) {
  auto pool = std::make_shared<BufferPool>();
  const std::byte* slab = nullptr;
  {
    Buffer b = pool->lease(128);
    slab = b.data();
    EXPECT_EQ(__asan_address_is_poisoned(slab), 0);
  }
  // Parked in the freelist: a stale pointer into the payload is now poison —
  // any dereference would be a hard ASan report (use-after-release).
  EXPECT_EQ(__asan_address_is_poisoned(slab), 1);
  Buffer again = pool->lease(128);
  EXPECT_EQ(__asan_address_is_poisoned(again.data()), 0);
}
#endif

// ---------------------------------------------------------------------------
// Transport-level tests (send_owned / recv_owned through a World).

TEST(Transport, OwnedRoundTripMovesSlab) {
  // Zero-copy proof: the receiver observes the sender's slab address.
  std::atomic<const std::byte*> sent_ptr{nullptr};
  World::run(2, [&](Comm& c) {
    if (c.rank() == 0) {
      Buffer b = c.lease(256);
      auto pat = pattern_bytes(256, 3);
      std::memcpy(b.data(), pat.data(), 256);
      sent_ptr.store(b.data());
      c.send_owned(std::move(b), 1, 42);
    } else {
      Buffer b = c.recv_owned(0, 42);
      ASSERT_EQ(b.size(), 256u);
      const auto pat = pattern_bytes(256, 3);
      EXPECT_EQ(std::memcmp(b.data(), pat.data(), 256), 0);
      EXPECT_EQ(b.data(), sent_ptr.load());  // same slab — no copy happened
      const PoolStats s = c.pool_stats();
      EXPECT_EQ(s.copies_avoided, 1u);
      EXPECT_EQ(s.bytes_zero_copied, 256u);
    }
  });
}

TEST(Transport, RecvOwnedWildcardReportsSource) {
  World::run(3, [](Comm& c) {
    if (c.rank() != 0) {
      Buffer b = c.lease(8);
      std::memset(b.data(), c.rank(), 8);
      c.send_owned(std::move(b), 0, 9);
    } else {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        int src = -1;
        Buffer b = c.recv_owned(kAnySource, 9, &src);
        ASSERT_EQ(b.size(), 8u);
        EXPECT_EQ(static_cast<int>(b.data()[0]), src);
        seen += src;
      }
      EXPECT_EQ(seen, 3);
    }
  });
}

TEST(Transport, LegacyInterop) {
  World::run(2, [](Comm& c) {
    const auto pat = pattern_bytes(100, 7);
    if (c.rank() == 0) {
      // send_bytes -> recv_owned
      c.send_bytes(pat, 1, 1);
      // send_owned -> recv_bytes
      Buffer b = c.lease(100);
      std::memcpy(b.data(), pat.data(), 100);
      c.send_owned(std::move(b), 1, 2);
    } else {
      Buffer b = c.recv_owned(0, 1);
      ASSERT_EQ(b.size(), 100u);
      EXPECT_EQ(std::memcmp(b.data(), pat.data(), 100), 0);
      EXPECT_FALSE(b.pooled());  // adopted on the legacy send path
      const auto v = c.recv_bytes(0, 2);
      ASSERT_EQ(v.size(), 100u);
      EXPECT_EQ(std::memcmp(v.data(), pat.data(), 100), 0);
    }
  });
}

TEST(Transport, SteadyStatePingPongAllocatesNothing) {
  // Serialized ping-pong: each side drops its received Buffer before leasing
  // the reply, so the freelist always has a slab ready — after the two
  // warm-up slabs, no epoch allocates.
  World::run(2, [](Comm& c) {
    constexpr int kEpochs = 100;
    constexpr std::size_t kBytes = 2048;
    const int me = c.rank();
    const int peer = 1 - me;
    for (int e = 0; e < kEpochs; ++e) {
      if (me == 0) {
        Buffer b = c.lease(kBytes);
        std::memset(b.data(), e & 0xff, kBytes);
        c.send_owned(std::move(b), peer, 5);
        Buffer r = c.recv_owned(peer, 6);
        EXPECT_EQ(static_cast<int>(r.data()[0]), (e + 1) & 0xff);
      } else {
        int first;
        {
          Buffer r = c.recv_owned(peer, 5);
          first = static_cast<int>(r.data()[0]);
          EXPECT_EQ(first, e & 0xff);
        }  // drop before leasing the reply
        Buffer b = c.lease(kBytes);
        std::memset(b.data(), (first + 1) & 0xff, kBytes);
        c.send_owned(std::move(b), peer, 6);
      }
    }
    c.barrier();
    if (me == 0) {
      const PoolStats s = c.pool_stats();
      // 200 messages; at most one slab per direction ever allocated.
      EXPECT_EQ(s.copies_avoided, 2u * kEpochs);
      EXPECT_LE(s.slab_allocs, 2u);
      EXPECT_GE(s.recycles, 2u * kEpochs - 2);
    }
  });
}

// ---------------------------------------------------------------------------
// Chaos: recycled slabs vs in-flight duplicates/reorders/drops. The payload
// of every message is a function of (src, epoch), so any cross-talk between
// a recycled slab and an in-flight duplicate shows up as a value mismatch.

void chaos_ring(const FaultConfig& fc) {
  constexpr int kRanks = 4;
  constexpr int kEpochs = 40;
  constexpr std::size_t kDoubles = 192;
  WorldOptions opts;
  opts.fault = std::make_shared<FaultPlan>(fc);
  opts.max_send_attempts = 5;
  World::run(
      kRanks,
      [&](Comm& c) {
        const int me = c.rank();
        const int dst = (me + 1) % kRanks;
        const int src = (me + kRanks - 1) % kRanks;
        for (int e = 0; e < kEpochs; ++e) {
          Buffer b = c.lease(kDoubles * sizeof(double));
          auto* d = reinterpret_cast<double*>(b.data());
          for (std::size_t i = 0; i < kDoubles; ++i) {
            d[i] = me * 1e6 + e * 1e3 + static_cast<double>(i);
          }
          c.send_owned(std::move(b), dst, 11);
          Buffer r = c.recv_owned(src, 11);
          ASSERT_EQ(r.size(), kDoubles * sizeof(double));
          const auto* rd = reinterpret_cast<const double*>(r.data());
          for (std::size_t i = 0; i < kDoubles; ++i) {
            ASSERT_EQ(rd[i], src * 1e6 + e * 1e3 + static_cast<double>(i))
                << "rank " << me << " epoch " << e << " word " << i;
          }
        }
      },
      opts);
}

TEST(TransportChaos, DuplicatesNeverSeeRecycledSlabs) {
  FaultConfig fc;
  fc.seed = 1234;
  fc.p_duplicate = 0.5;  // every other message delivered twice
  chaos_ring(fc);
}

TEST(TransportChaos, ReorderKeepsPayloadsIntact) {
  FaultConfig fc;
  fc.seed = 99;
  fc.p_reorder = 0.3;
  chaos_ring(fc);
}

TEST(TransportChaos, MixedFaultSoup) {
  FaultConfig fc;
  fc.seed = 777;
  fc.p_duplicate = 0.2;
  fc.p_reorder = 0.2;
  fc.p_drop = 0.2;  // transient: retried with the same seq
  fc.drop_attempts = 1;
  chaos_ring(fc);
}

TEST(TransportChaos, DuplicateCopiesAreTheOnlyCopies) {
  FaultConfig fc;
  fc.seed = 5;
  fc.p_duplicate = 1.0;  // force the copying path on every send
  constexpr int kMsgs = 10;
  WorldOptions opts;
  opts.fault = std::make_shared<FaultPlan>(fc);
  World::run(
      2,
      [&](Comm& c) {
        if (c.rank() == 0) {
          for (int i = 0; i < kMsgs; ++i) {
            Buffer b = c.lease(64);
            std::memset(b.data(), i, 64);
            c.send_owned(std::move(b), 1, 3);
          }
        } else {
          for (int i = 0; i < kMsgs; ++i) {
            Buffer b = c.recv_owned(0, 3);
            EXPECT_EQ(static_cast<int>(b.data()[0]), i);  // dedup'd, in order
          }
          const PoolStats s = c.pool_stats();
          EXPECT_EQ(s.dup_copies, static_cast<std::uint64_t>(kMsgs));
          EXPECT_EQ(s.copies_avoided, static_cast<std::uint64_t>(kMsgs));
        }
      },
      opts);
}

}  // namespace
